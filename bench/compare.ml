(* Compare a freshly generated BENCH_engine.json against a committed
   baseline and flag regressions.

     dune exec bench/compare.exe -- bench/baseline/BENCH_engine.json BENCH_engine.json
     dune exec bench/compare.exe -- --strict --time-threshold 0.5 OLD NEW
     dune exec bench/compare.exe -- --strict --only E18 OLD NEW

   Checks, per experiment id:
     - wall time: NEW more than (1 + threshold) x OLD seconds is a
       TIME REGRESSION (default threshold 0.25; timing noise on shared CI
       runners is real, so CI runs this warn-only by default);
     - words_moved: any headline number that changed at all is a
       METRIC CHANGE — these are exact counters from a deterministic
       simulator, so any drift means the model or the tiling changed.
       Labels ending in "_ms" or "_ratio" are exempt: those carry
       measured wall times (queue-wait percentiles and their speedups),
       which legitimately differ run to run — gate them with
       --gate-ratio instead;
     - presence: experiments that appear on only one side are reported.

   --gate-timers NAME1,NAME2 additionally compares the named aggregate
   obs timers (obs.timers.<name>.seconds) between the two files: a timer
   missing on either side, or slower than (1 + threshold) x baseline, is
   a finding. This is the hot-path performance gate — the shared-tile
   search and the cache-simulator executor are gated this way so a
   regression in either fails CI even when no single experiment's wall
   time trips the per-experiment check.

   --gate-ratio EXP:LABEL:MIN (repeatable) asserts that experiment EXP
   in the NEW file carries words_moved label LABEL with value >= MIN —
   the gate for measured speedup ratios (e.g. E19's analytic-class
   queue-wait improvement), which the equality check deliberately
   ignores. A missing experiment, missing label, or value below MIN is
   a finding.

   Exit status is 0 unless --strict is given, in which case any finding
   makes it 1.

   Field tolerance: comparison reads only "v", "experiments", and (under
   --gate-timers) obs.timers.<name>.seconds. Everything else in the
   envelope is deliberately ignored so the bench JSON can grow without
   breaking old baselines — in particular the "ts" write timestamp and
   the obs "gauges" section (point-in-time levels, meaningless to diff
   across runs) added with the telemetry exporter. *)

type experiment = { title : string; seconds : float; words : (string * float) list }

(* Measured-time labels: exact byte-equality against a baseline is
   meaningless for these, so the METRIC checks skip them on both sides.
   Use --gate-ratio to bound them instead. *)
let measured_label label =
  let has_suffix s = String.length label >= String.length s
    && String.sub label (String.length label - String.length s) (String.length s) = s
  in
  has_suffix "_ms" || has_suffix "_ratio"

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

(* The wire schema this tool understands; keep in sync with
   Report.schema_version (not referenced directly so compare keeps its
   jsonlite-only dependency footprint). *)
let schema_version = 1.0

let load_json path =
  match Jsonlite.of_file path with
  | Error msg -> die "%s: %s" path msg
  | Ok json ->
    (match Jsonlite.num_member "v" json with
    | Some v when v = schema_version -> ()
    | Some v -> die "%s: unsupported schema version %g (want %g)" path v schema_version
    | None -> die "%s: missing \"v\" schema-version field" path);
    json

(* obs.timers.<name>.seconds, or None when absent. *)
let timer_seconds json name =
  Option.bind (Jsonlite.member "obs" json) (fun obs ->
    Option.bind (Jsonlite.member "timers" obs) (fun timers ->
      Option.bind (Jsonlite.member name timers) (Jsonlite.num_member "seconds")))

let experiments_of path json =
  let exps =
      match Jsonlite.list_member "experiments" json with
      | Some l -> l
      | None -> die "%s: no \"experiments\" array" path
    in
    List.filter_map
      (fun e ->
        match Jsonlite.str_member "experiment" e with
        | None -> None
        | Some id ->
          let words =
            match Jsonlite.member "words_moved" e with
            | Some (Jsonlite.Obj kvs) ->
              List.filter_map
                (fun (k, v) -> Option.map (fun n -> (k, n)) (Jsonlite.to_num v))
                kvs
            | _ -> []
          in
          Some
            ( id,
              {
                title = Option.value ~default:"" (Jsonlite.str_member "title" e);
                seconds = Option.value ~default:0.0 (Jsonlite.num_member "seconds" e);
                words;
              } ))
      exps

let () =
  let strict = ref false in
  let threshold = ref 0.25 in
  let only = ref [] in
  let gate_timers = ref [] in
  let gate_ratios = ref [] in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--strict" :: rest ->
      strict := true;
      parse_args rest
    | "--time-threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> threshold := t
      | _ -> die "--time-threshold: expected a non-negative number, got %S" v);
      parse_args rest
    | "--only" :: ids :: rest ->
      only := !only @ String.split_on_char ',' ids;
      parse_args rest
    | "--gate-timers" :: names :: rest ->
      gate_timers := !gate_timers @ String.split_on_char ',' names;
      parse_args rest
    | "--gate-ratio" :: spec :: rest ->
      (match String.split_on_char ':' spec with
      | [ exp; label; min_s ] -> (
        match float_of_string_opt min_s with
        | Some m -> gate_ratios := !gate_ratios @ [ (exp, label, m) ]
        | None -> die "--gate-ratio: bad minimum %S in %S" min_s spec)
      | _ -> die "--gate-ratio: expected EXP:LABEL:MIN, got %S" spec);
      parse_args rest
    | a :: _ when String.length a > 0 && a.[0] = '-' -> die "unknown option %s" a
    | p :: rest ->
      paths := p :: !paths;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let base_path, new_path =
    match List.rev !paths with
    | [ b; n ] -> (b, n)
    | _ ->
      die
        "usage: compare [--strict] [--time-threshold T] [--only E1,E2] [--gate-timers \
         T1,T2] [--gate-ratio EXP:LABEL:MIN] BASELINE.json NEW.json"
  in
  (* --only narrows the comparison to the named experiment ids (repeatable,
     comma-separable) — the CI gate on the plan-layer experiment uses this
     to be strict about E18 without being strict about timing noise
     elsewhere. *)
  let restrict exps =
    if !only = [] then exps else List.filter (fun (id, _) -> List.mem id !only) exps
  in
  let base_json = load_json base_path and new_json = load_json new_path in
  let base = restrict (experiments_of base_path base_json)
  and fresh = restrict (experiments_of new_path new_json) in
  (if !only <> [] then
     List.iter
       (fun id ->
         if not (List.mem_assoc id base || List.mem_assoc id fresh) then
           die "--only %s: no such experiment in either file" id)
       !only);
  let findings = ref 0 in
  let report fmt =
    incr findings;
    Printf.printf fmt
  in
  List.iter
    (fun (id, b) ->
      match List.assoc_opt id fresh with
      | None -> report "MISSING      %-4s dropped from %s (%s)\n" id new_path b.title
      | Some n ->
        (* Experiments under 50ms are dominated by scheduler noise; only
           the heavyweight simulations carry a meaningful wall time. *)
        if b.seconds > 0.05 && n.seconds > (1.0 +. !threshold) *. b.seconds then
          report "TIME REGRESSION %-4s %.3fs -> %.3fs (%+.0f%%, threshold +%.0f%%)  %s\n" id
            b.seconds n.seconds
            (100.0 *. ((n.seconds /. b.seconds) -. 1.0))
            (100.0 *. !threshold) b.title;
        List.iter
          (fun (label, bw) ->
            if not (measured_label label) then
              match List.assoc_opt label n.words with
              | None -> report "METRIC MISSING %-4s %S dropped\n" id label
              | Some nw ->
                if nw <> bw then
                  report "METRIC CHANGE  %-4s %S: %.17g -> %.17g\n" id label bw nw)
          b.words;
        List.iter
          (fun (label, _) ->
            if (not (measured_label label)) && not (List.mem_assoc label b.words) then
              report "METRIC NEW     %-4s %S appeared\n" id label)
          n.words)
    base;
  List.iter
    (fun (id, n) ->
      if not (List.mem_assoc id base) then
        report "NEW          %-4s not in baseline (%s)\n" id n.title)
    fresh;
  List.iter
    (fun name ->
      match (timer_seconds base_json name, timer_seconds new_json name) with
      | None, _ -> report "TIMER MISSING  %S not in baseline %s\n" name base_path
      | _, None -> report "TIMER MISSING  %S not in %s\n" name new_path
      | Some b, Some n ->
        if n > (1.0 +. !threshold) *. b then
          report "TIMER REGRESSION %S: %.3fs -> %.3fs (%+.0f%%, threshold +%.0f%%)\n" name b
            n
            (100.0 *. ((n /. b) -. 1.0))
            (100.0 *. !threshold)
        else
          Printf.printf "gate ok: timer %S %.3fs -> %.3fs (%+.0f%%)\n" name b n
            (100.0 *. ((n /. b) -. 1.0)))
    !gate_timers;
  (* Ratio gates read only the NEW file: they bound this run's measured
     speedups, not a diff against the baseline's machine. *)
  let all_fresh = experiments_of new_path new_json in
  List.iter
    (fun (exp, label, min_v) ->
      match List.assoc_opt exp all_fresh with
      | None -> report "RATIO GATE     %-4s missing from %s\n" exp new_path
      | Some e -> (
        match List.assoc_opt label e.words with
        | None -> report "RATIO GATE     %-4s has no %S label\n" exp label
        | Some v ->
          if v < min_v then
            report "RATIO GATE     %-4s %S: %.2f below minimum %.2f\n" exp label v min_v
          else Printf.printf "gate ok: %s %S %.2f >= %.2f\n" exp label v min_v))
    !gate_ratios;
  let total = List.length fresh in
  if !findings = 0 then
    Printf.printf "compare: OK — %d experiments match %s (times within +%.0f%%)\n" total
      base_path (100.0 *. !threshold)
  else
    Printf.printf "compare: %d finding(s) across %d experiments (baseline %s)\n" !findings
      total base_path;
  exit (if !findings > 0 && !strict then 1 else 0)
