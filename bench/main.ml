(* Reproduction harness: regenerates every quantitative claim of the
   paper's evaluation (Sections 3-7, worked examples in Section 6) as
   experiment tables E1..E17 (see DESIGN.md for the per-experiment index
   and EXPERIMENTS.md for recorded paper-vs-measured results), followed by
   Bechamel microbenchmarks of the solver components.

   The tables are driven by the unified Engine pipeline (lib/engine):
   repeated (spec, beta, M) analyses hit the memo cache, independent
   sweep points run in parallel over domains (PROJTILE_JOBS overrides the
   pool size), and each experiment's wall time plus its headline
   words-moved numbers are also written to BENCH_engine.json.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- tables  # experiment tables only
     dune exec bench/main.exe -- micro   # microbenchmarks only
*)

let rowf fmt = Printf.printf fmt

let fint = float_of_int

(* ------------------------------------------------------------------ *)
(* Experiment harness: timing + machine-readable results               *)
(* ------------------------------------------------------------------ *)

type outcome = { id : string; title : string; seconds : float; words : (string * float) list }

let outcomes : outcome list ref = ref []
let current_words : (string * float) list ref = ref []

(* Record a headline words-moved (or words-bound) number for the JSON. *)
let note label words = current_words := (label, words) :: !current_words
let note_int label words = note label (fint words)

let experiment id title body =
  Printf.printf "\n==== %s: %s ====\n" id title;
  current_words := [];
  let t0 = Unix.gettimeofday () in
  body ();
  let dt = Unix.gettimeofday () -. t0 in
  outcomes := { id; title; seconds = dt; words = List.rev !current_words } :: !outcomes;
  Printf.printf "[%s: %.3f s]\n" id dt

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
         | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* [s0] is the snapshot taken before any experiment ran: the obs section
   is the delta over this bench invocation, not process-lifetime totals
   (the distinction matters once bench is driven as a library or the
   tables are rerun in-process). *)
let write_json ~s0 path =
  let oc = open_out path in
  let hits, misses = Engine.cache_stats () in
  (* "ts" (write time, unix seconds) is informational: compare.exe
     ignores it, like every other field it does not recognize. *)
  Printf.fprintf oc "{\"v\":%d,\"ts\":%.6f,\"engine_cache\":{" Report.schema_version
    (Unix.gettimeofday ());
  Printf.fprintf oc "\"hits\":%d,\"misses\":%d}," hits misses;
  Printf.fprintf oc "\"obs\":%s,\"experiments\":["
    (Obs.to_json (Obs.diff s0 (Obs.snapshot ())));
  List.iteri
    (fun i o ->
      if i > 0 then output_char oc ',';
      Printf.fprintf oc "{\"experiment\":\"%s\",\"title\":\"%s\",\"seconds\":%.6f,\"words_moved\":{"
        (json_escape o.id) (json_escape o.title) o.seconds;
      List.iteri
        (fun j (label, w) ->
          if j > 0 then output_char oc ',';
          Printf.fprintf oc "\"%s\":%.17g" (json_escape label) w)
        o.words;
      output_string oc "}}")
    (List.rev !outcomes);
  output_string oc "]}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E1 — Section 6.1: matmul lower bound equals                         *)
(*      max(L1 L2 L3 / sqrt M, L1 L2, L2 L3, L1 L3)                    *)
(* ------------------------------------------------------------------ *)

let e1 () =
  rowf "%8s %8s %8s %8s | %14s %14s %8s %14s\n" "L1" "L2" "L3" "M" "ours" "paper formula"
    "ratio" "classic-only";
  let cases =
    [
      (1024, 1024, 1024, 1024);
      (1024, 1024, 256, 1024);
      (1024, 1024, 32, 1024);
      (1024, 1024, 8, 1024);
      (1024, 1024, 1, 1024);
      (4, 4096, 4096, 1024);
      (4096, 2, 4096, 1024);
      (64, 64, 64, 16384);
      (2048, 16, 16, 4096);
      (512, 512, 512, 64);
    ]
  in
  List.iter
    (fun (l1, l2, l3, m) ->
      let spec = Kernels.matmul ~l1 ~l2 ~l3 in
      let b = Engine.lower_bound spec ~m in
      let formula =
        Float.max
          (fint l1 *. fint l2 *. fint l3 /. sqrt (fint m))
          (Float.max (fint l1 *. fint l2) (Float.max (fint l2 *. fint l3) (fint l1 *. fint l3)))
      in
      rowf "%8d %8d %8d %8d | %14.4g %14.4g %8.3f %14.4g\n" l1 l2 l3 m b.Lower_bound.words_paper
        formula
        (b.Lower_bound.words_paper /. formula)
        b.Lower_bound.words_classic)
    cases;
  print_endline
    "expected shape: ratio ~ 1.0, except when all of L1 L2 L3 fit one cache-load (the 64^3 /";
  print_endline
    "M=16384 row), where the model's M-per-tile charge applies (the Section 6.3 caveat);";
  print_endline "'classic-only' collapses when any bound is small."

(* ------------------------------------------------------------------ *)
(* E2 — Section 6.1: the alpha family of optimal tilings               *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let m = 4096 and l3 = 8 in
  let spec = Kernels.matmul ~l1:1024 ~l2:1024 ~l3 in
  rowf "%8s | %24s %10s %10s | %12s\n" "alpha" "tile" "volume" "M*L3" "LRU words";
  let small = Kernels.matmul ~l1:128 ~l2:128 ~l3 in
  List.iter
    (fun (alpha, tile) ->
      let run_tile = Array.map2 min tile small.Spec.bounds in
      let words = Engine.words_moved small ~m:(3 * m) (Engine.Fixed run_tile) in
      rowf "%8s | %24s %10d %10d | %12d\n" (Rat.to_string alpha)
        (Format.asprintf "%a" (Tiling.pp spec) tile)
        (Tiling.volume tile) (m * l3) words;
      note_int ("alpha=" ^ Rat.to_string alpha) words)
    (Alpha_family.sample ~steps:4 spec ~m);
  print_endline
    "expected shape: every alpha gives cardinality ~ M*L3 = 32768 and near-identical traffic;";
  print_endline
    "endpoints are the (M/L3, L3, L3) and (sqrt M, sqrt M, L3) tiles from the paper."

(* ------------------------------------------------------------------ *)
(* E3 — Section 6.2: tensor contractions reduce to the matmul LP       *)
(* ------------------------------------------------------------------ *)

let e3 () =
  rowf "%24s | %12s %12s %8s\n" "(j,k,d) betas" "contraction" "grouped-mm" "equal";
  let r = Rat.of_ints in
  let cases =
    [
      (1, 3, 4, [| r 1 1; r 1 4; r 1 1; r 1 1 |]);
      (1, 3, 4, [| r 1 1; r 1 1; r 1 8; r 1 8 |]);
      (2, 4, 5, [| r 1 2; r 1 2; r 1 4; r 1 1; r 1 1 |]);
      (1, 3, 5, [| r 1 1; r 1 1; r 1 1; r 1 1; r 1 1 |]);
      (2, 4, 6, [| r 1 8; r 1 8; r 1 2; r 1 2; r 1 1; r 1 1 |]);
    ]
  in
  List.iter
    (fun (j, k, d, beta) ->
      let bounds = Array.make d 4 in
      let spec = Kernels.tensor_contraction ~j ~k ~d ~bounds in
      let v = (Engine.solve_lp spec ~beta).Tiling.value in
      (* gamma grouping: gamma1 = x1..xj, gamma2 = x_{j+1}..x_{k-1},
         gamma3 = x_k..x_d; the grouped problem is matmul with box
         constraints Gamma_i. *)
      let sum lo hi =
        let acc = ref Rat.zero in
        for i = lo to hi do
          acc := Rat.add !acc beta.(i - 1)
        done;
        !acc
      in
      let g1 = sum 1 j and g2 = sum (j + 1) (k - 1) and g3 = sum k d in
      let one = Rat.one in
      let lp =
        Lp.make Lp.Maximize [| one; one; one |]
          [
            Lp.constr [| one; Rat.zero; one |] Lp.Le one;
            Lp.constr [| one; one; Rat.zero |] Lp.Le one;
            Lp.constr [| Rat.zero; one; one |] Lp.Le one;
            Lp.constr [| one; Rat.zero; Rat.zero |] Lp.Le g1;
            Lp.constr [| Rat.zero; one; Rat.zero |] Lp.Le g2;
            Lp.constr [| Rat.zero; Rat.zero; one |] Lp.Le g3;
          ]
      in
      let v' = (Simplex.solve_exn lp).Simplex.objective in
      rowf "%24s | %12s %12s %8b\n"
        (Printf.sprintf "(%d,%d,%d)" j k d)
        (Rat.to_string v) (Rat.to_string v') (Rat.equal v v'))
    cases;
  print_endline "expected shape: the two LP values agree exactly on every row."

(* ------------------------------------------------------------------ *)
(* E4 — Section 6.2 / Section 1: pointwise-convolution layers          *)
(* ------------------------------------------------------------------ *)

let std_sims = Engine.[ Pipeline.sim Optimal; Pipeline.sim Classic; Pipeline.sim Untiled ]

(* Words moved by the k-th simulation of a report (request order). *)
let sim_words (r : Report.t) k = (List.nth r.Report.sims k).Report.words_moved

let e4 () =
  let m = 2048 in
  rowf "%-22s | %12s %12s %12s %12s %8s\n" "layer (b,c,k,w,h)" "lower bound" "ours(LRU)"
    "classic(LRU)" "untiled" "ours/LB";
  let layers =
    [
      (4, 8, 16, 28, 28);
      (4, 16, 32, 14, 14);
      (4, 32, 64, 7, 7);
      (4, 4, 128, 7, 7);
      (32, 64, 64, 1, 1);
      (8, 3, 32, 16, 16);
    ]
  in
  let specs =
    List.map (fun (b, c, k, w, h) -> Kernels.pointwise_conv ~b ~c ~k ~w ~h) layers
  in
  let reports = Engine.sweep_grid ~sims:std_sims specs ~ms:[ m ] in
  List.iter2
    (fun (b, c, k, w, h) (r : Report.t) ->
      let label = Printf.sprintf "(%d,%d,%d,%d,%d)" b c k w h in
      let ours = sim_words r 0 and classic = sim_words r 1 and naive = sim_words r 2 in
      rowf "%-22s | %12.0f %12d %12d %12d %8.2f\n" label r.Report.bound.Lower_bound.words
        ours classic naive
        (fint ours /. r.Report.bound.Lower_bound.words);
      note_int ("conv" ^ label ^ " ours") ours;
      note_int ("conv" ^ label ^ " classic") classic)
    layers reports;
  print_endline
    "expected shape: ours stays within a small constant of the bound on every layer;";
  print_endline "classic degrades by up to an order of magnitude when c (or w,h) is small."

(* ------------------------------------------------------------------ *)
(* E5 — Section 6.3: n-body pairwise interactions                      *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let m = 256 in
  rowf "%8s %8s | %12s %12s | %12s %12s %8s\n" "L1" "L2" "tile vol" "formula" "LB words"
    "formula" "ratio";
  List.iter
    (fun (l1, l2) ->
      let spec = Kernels.nbody ~l1 ~l2 in
      let beta = Lower_bound.beta_of_bounds ~m spec.Spec.bounds in
      let sol = Engine.solve_lp spec ~beta in
      let cap = Float.exp (Rat.to_float sol.Tiling.value *. log (fint m)) in
      let tile_formula = min (fint m *. fint m) (min (fint l1 *. fint m) (min (fint l2 *. fint m) (fint l1 *. fint l2))) in
      let b = Engine.lower_bound spec ~m in
      (* Section 6.3's min(L1L2/M, L2, L1, M) terms correspond to the four
         candidate tile sizes; communication in words is
         L1 L2 M / (max feasible tile) with the max tile being the min of
         the four candidates. *)
      let comm_formula = fint l1 *. fint l2 *. fint m /. tile_formula in
      rowf "%8d %8d | %12.4g %12.4g | %12.4g %12.4g %8.3f\n" l1 l2 cap tile_formula
        b.Lower_bound.words_paper comm_formula
        (b.Lower_bound.words_paper /. comm_formula))
    [ (4096, 4096); (32, 4096); (4096, 32); (256, 256); (32, 32); (4096, 2); (2, 4096) ];
  print_endline
    "expected shape: both ratios ~ 1.0; the last regimes show the Section-6.3 caveat where";
  print_endline "the whole problem fits in cache and the model still charges M per tile."

(* ------------------------------------------------------------------ *)
(* E6 — Sections 4-5: tightness of bound vs constructed tiling         *)
(* ------------------------------------------------------------------ *)

let e6 () =
  rowf "%-28s %6s | %12s %12s %12s %12s | %8s\n" "kernel" "M" "LB words" "analytic"
    "LRU" "OPT" "LRU/LB";
  let cases =
    List.concat
      [
        List.map (fun m -> ("matmul 64^3", Kernels.matmul ~l1:64 ~l2:64 ~l3:64, m))
          [ 256; 1024; 4096 ];
        List.map (fun m -> ("matmul 128x128x8", Kernels.matmul ~l1:128 ~l2:128 ~l3:8, m))
          [ 256; 1024; 4096 ];
        List.map
          (fun m ->
            ("conv (4,8,16,14,14)", Kernels.pointwise_conv ~b:4 ~c:8 ~k:16 ~w:14 ~h:14, m))
          [ 512; 2048 ];
      ]
  in
  let sims = Engine.[ Pipeline.sim Optimal; Pipeline.sim ~policy:Policy.Opt Optimal ] in
  let reports =
    Engine.sweep
      (List.map (fun (_, spec, m) -> Pipeline.request ~sims ~shared:true spec ~m) cases)
  in
  List.iter2
    (fun (name, spec, m) (r : Report.t) ->
      let shared = Option.get r.Report.tile_shared in
      let analytic = Tiling.analytic_traffic spec shared in
      let a_total = analytic.Tiling.reads +. analytic.Tiling.writes in
      let lru = sim_words r 0 and opt = sim_words r 1 in
      rowf "%-28s %6d | %12.0f %12.0f %12d %12d | %8.2f\n" name m
        r.Report.bound.Lower_bound.words a_total lru opt
        (fint lru /. r.Report.bound.Lower_bound.words);
      note_int (Printf.sprintf "%s M=%d LRU" name m) lru)
    cases reports;
  print_endline
    "expected shape: LRU/LB stays a small constant (< ~5) across kernels and cache sizes:";
  print_endline
    "the bound is tight up to the model's constant factors (Theorem 3; the paper charges";
  print_endline
    "each array a separate M-word budget, a real cache shares one). 'analytic' is the";
  print_endline
    "pessimistic per-tile-reload model; measured LRU beats it because the tile search";
  print_endline "exploits block retention across adjacent tiles."

(* ------------------------------------------------------------------ *)
(* E7 — Section 1: who wins when bounds are small                      *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let m = 1024 in
  rowf "%-24s | %12s %12s %12s %12s | %18s\n" "kernel" "LB" "untiled" "classic" "ours"
    "winner";
  let cases =
    [
      ("matmul 128^3", Kernels.matmul ~l1:128 ~l2:128 ~l3:128);
      ("matmul 256x256x4", Kernels.matmul ~l1:256 ~l2:256 ~l3:4);
      ("matvec 512x512", Kernels.matvec ~m:512 ~n:512);
      ("outer 512x512", Kernels.outer_product ~m:512 ~n:512);
      ("nbody 1024x64", Kernels.nbody ~l1:1024 ~l2:64);
      ("conv (4,4,64,14,14)", Kernels.pointwise_conv ~b:4 ~c:4 ~k:64 ~w:14 ~h:14);
    ]
  in
  let reports = Engine.sweep_grid ~sims:std_sims (List.map snd cases) ~ms:[ m ] in
  List.iter2
    (fun (name, _) (r : Report.t) ->
      let ours = sim_words r 0 and classic = sim_words r 1 and naive = sim_words r 2 in
      let winner =
        if ours <= classic && ours <= naive then "ours"
        else if classic <= naive then "classic"
        else "untiled"
      in
      rowf "%-24s | %12.0f %12d %12d %12d | %18s\n" name r.Report.bound.Lower_bound.words
        naive classic ours winner;
      note_int (name ^ " ours") ours)
    cases reports;
  print_endline
    "expected shape: ours wins on every row; the margin grows as loop bounds shrink";
  print_endline "below sqrt(M), where classic wastes its tile budget."

(* ------------------------------------------------------------------ *)
(* E8 — Theorem 3: LP = dual = 2^d enumeration on random programs      *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let rng = Random.State.make [| 0x5eed |] in
  let trials = 60 in
  let max_d = ref 0 in
  let agreements = ref 0 in
  for _ = 1 to trials do
    let d = 2 + Random.State.int rng 4 in
    let n = 2 + Random.State.int rng 3 in
    max_d := max !max_d d;
    let arrays =
      Array.init n (fun j ->
        let support =
          List.filter (fun i -> i mod n = j || Random.State.bool rng) (List.init d (fun i -> i))
        in
        Spec.array_ref
          ~mode:(if j = 0 then Spec.Update else Spec.Read)
          (Printf.sprintf "A%d" j) support)
    in
    let loops = Array.init d (fun i -> Printf.sprintf "x%d" (i + 1)) in
    let bounds = Array.init d (fun _ -> 1 + Random.State.int rng 64) in
    match Spec.create ~name:"rand" ~loops ~bounds ~arrays with
    | Error _ -> ()
    | Ok spec ->
      let beta =
        Array.init d (fun _ -> Rat.of_ints (Random.State.int rng 17) 8)
      in
      let v1 = (Engine.solve_lp spec ~beta).Tiling.value in
      let v2 = (Simplex.solve_exn (Hbl_lp.dual_tiling spec ~beta)).Simplex.objective in
      let v3 = (Lower_bound.exponent_by_enumeration spec ~beta).Lower_bound.k_hat in
      if Rat.equal v1 v2 && Rat.equal v1 v3 then incr agreements
      else
        rowf "DISAGREEMENT: %s  lp=%s dual=%s enum=%s\n"
          (Format.asprintf "%a" Spec.pp spec)
          (Rat.to_string v1) (Rat.to_string v2) (Rat.to_string v3)
  done;
  rowf "%d/%d random programs (d <= %d): LP(5.1) = dual (5.5/5.6) = min_Q Theorem-2 bound\n"
    !agreements trials !max_d;
  print_endline "expected shape: agreement on every trial (exact rational equality)."

(* ------------------------------------------------------------------ *)
(* E9 — Section 7: piecewise-linear closed forms                       *)
(* ------------------------------------------------------------------ *)

let e9 () =
  List.iter
    (fun (name, spec) ->
      let cf = Closed_form.compute spec in
      rowf "%-18s f(beta) = %s\n" name (Format.asprintf "%a" Closed_form.pp cf))
    [
      ("matmul", Kernels.matmul ~l1:4 ~l2:4 ~l3:4);
      ("matvec", Kernels.matvec ~m:4 ~n:4);
      ("nbody", Kernels.nbody ~l1:4 ~l2:4);
      ("outer_product", Kernels.outer_product ~m:4 ~n:4);
      ("contraction(1,3,4)", Kernels.tensor_contraction ~j:1 ~k:3 ~d:4 ~bounds:[| 4; 4; 4; 4 |]);
      ("pointwise_conv", Kernels.pointwise_conv ~b:4 ~c:4 ~k:4 ~w:4 ~h:4);
    ];
  (* spot-check the forms against the LP at random rational betas *)
  let rng = Random.State.make [| 0xf00d |] in
  let checks = ref 0 and ok = ref 0 in
  List.iter
    (fun spec ->
      let cf = Closed_form.compute spec in
      for _ = 1 to 25 do
        let beta =
          Array.init (Spec.num_loops spec) (fun _ -> Rat.of_ints (Random.State.int rng 33) 8)
        in
        incr checks;
        if Rat.equal (Closed_form.eval cf beta) (Engine.solve_lp spec ~beta).Tiling.value then
          incr ok
      done)
    [ Kernels.matmul ~l1:4 ~l2:4 ~l3:4; Kernels.nbody ~l1:4 ~l2:4;
      Kernels.pointwise_conv ~b:4 ~c:4 ~k:4 ~w:4 ~h:4 ];
  rowf "closed-form evaluations matching the LP: %d/%d\n" !ok !checks;
  print_endline
    "expected shape: matmul renders as min(3/2, 1+b, 1+b, 1+b, sum b) — the Section 6.1/7 form;";
  print_endline "every random evaluation matches LP (5.1) exactly."

(* ------------------------------------------------------------------ *)
(* E10 — Section 7: distributed-memory rectangular partitions          *)
(* ------------------------------------------------------------------ *)

let e10 () =
  rowf "%-20s %4s | %14s %14s %14s %8s\n" "kernel" "P" "best grid" "per-proc words"
    "lower bound" "ratio";
  List.iter
    (fun (name, spec, ps) ->
      List.iter
        (fun p ->
          match Comm_model.best_grid spec ~p with
          | None -> rowf "%-20s %4d | %14s\n" name p "(no grid)"
          | Some g ->
            let lb = Comm_model.lower_bound spec ~p in
            rowf "%-20s %4d | %14s %14s %14.0f %8.2f\n" name p
              (String.concat "x" (Array.to_list (Array.map string_of_int g.Comm_model.grid)))
              (Bigint.to_string g.Comm_model.words)
              lb
              (Bigint.to_float g.Comm_model.words /. lb))
        ps)
    [
      ("matmul 512^3", Kernels.matmul ~l1:512 ~l2:512 ~l3:512, [ 4; 8; 16; 64 ]);
      ("matmul 512x512x4", Kernels.matmul ~l1:512 ~l2:512 ~l3:4, [ 4; 16; 64 ]);
      ("nbody 4096^2", Kernels.nbody ~l1:4096 ~l2:4096, [ 4; 16; 64 ]);
    ];
  print_endline
    "expected shape: the best rectangular grid tracks the lower bound within the #arrays";
  print_endline
    "constant, and shifts processors away from small dimensions (cf. the 512x512x4 rows)."

(* ------------------------------------------------------------------ *)
(* E11 — multi-level hierarchies and nested tilings (model extension)  *)
(* ------------------------------------------------------------------ *)

let e11 () =
  rowf "%-22s %-28s | %12s %12s\n" "kernel" "schedule" "L1<->L2" "L2<->mem";
  let run_case name spec caps =
    let show label sched =
      let r = Executor.run_hierarchy spec ~schedule:sched ~capacities:caps in
      rowf "%-22s %-28s | %12d %12d\n" name label r.Executor.boundary_words.(0)
        r.Executor.boundary_words.(1)
    in
    show "untiled" Schedules.Untiled;
    show
      (Printf.sprintf "tile for L1 (%d)" caps.(0))
      (Schedules.Tiled (Engine.tile_shared spec ~m:caps.(0)));
    show
      (Printf.sprintf "tile for L2 (%d)" caps.(1))
      (Schedules.Tiled (Engine.tile_shared spec ~m:caps.(1)));
    let h = Engine.hierarchy spec ~capacities:caps in
    rowf "%-22s %-28s | %12d %12d\n" name "nested (both)"
      h.Pipeline.hresult.Executor.boundary_words.(0)
      h.Pipeline.hresult.Executor.boundary_words.(1);
    note_int (name ^ " nested L1<->L2") h.Pipeline.hresult.Executor.boundary_words.(0);
    rowf "%-22s %-28s | %12.0f %12.0f\n" name "per-level lower bound"
      (Engine.lower_bound spec ~m:caps.(0)).Lower_bound.words
      (Engine.lower_bound spec ~m:caps.(1)).Lower_bound.words
  in
  run_case "matmul 64^3" (Kernels.matmul ~l1:64 ~l2:64 ~l3:64) [| 256; 4096 |];
  run_case "conv (4,8,16,14,14)" (Kernels.pointwise_conv ~b:4 ~c:8 ~k:16 ~w:14 ~h:14)
    [| 256; 4096 |];
  print_endline
    "expected shape: each single-level tile wins at its own boundary and loses at the";
  print_endline
    "other; the nested tiling is close to each specialist's strong boundary and strictly";
  print_endline
    "better on its weak one, i.e. the model composes across levels. (When one tile is";
  print_endline
    "already optimal at both levels, as for the conv layer, nesting adds only a small";
  print_endline "block-clipping overhead.)"

(* ------------------------------------------------------------------ *)
(* E12 — ablation: integer-tile construction strategies                *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let m = 2048 in
  rowf "%-24s | %14s %14s %14s %14s\n" "kernel" "classic" "per-array M/n" "per-array M"
    "shared search";
  List.iter
    (fun (name, spec) ->
      let n = Spec.num_arrays spec in
      let traffic t =
        let tr = Tiling.analytic_traffic_retained spec t in
        tr.Tiling.reads +. tr.Tiling.writes
      in
      rowf "%-24s | %14.4g %14.4g %14.4g %14.4g\n" name
        (traffic (Schedules.classic_tile spec ~m))
        (traffic (Engine.tile spec ~m:(m / n)))
        (traffic (Engine.tile spec ~m))
        (traffic (Engine.tile_shared spec ~m)))
    [
      ("matmul 256^3", Kernels.matmul ~l1:256 ~l2:256 ~l3:256);
      ("matmul 512x512x8", Kernels.matmul ~l1:512 ~l2:512 ~l3:8);
      ("conv (8,4,32,14,14)", Kernels.pointwise_conv ~b:8 ~c:4 ~k:32 ~w:14 ~h:14);
      ("nbody 4096x4096", Kernels.nbody ~l1:4096 ~l2:4096);
      ("contraction(1,3,4)", Kernels.tensor_contraction ~j:1 ~k:3 ~d:4 ~bounds:[| 64; 64; 16; 16 |]);
    ];
  print_endline
    "expected shape: traffic is the retention-aware analytic model (what LRU approximates";
  print_endline
    "when the working set leaves headroom). 'per-array M' ignores that the cache is shared";
  print_endline
    "(its tiles overflow a real cache; paper-model reference only); among executable";
  print_endline
    "strategies the shared-budget search matches or beats classic and the M/n scaling on";
  print_endline "nearly every row (within a few percent elsewhere)."

(* ------------------------------------------------------------------ *)
(* E13 — loop interchange alone cannot reach the bound                 *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let m = 512 in
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let bound = Engine.lower_bound spec ~m in
  rowf "%-26s | %12s %8s\n" "schedule" "LRU words" "x LB";
  let show label choice =
    let w = Engine.words_moved spec ~m choice in
    rowf "%-26s | %12d %8.2f\n" label w (fint w /. bound.Lower_bound.words);
    note_int label w
  in
  let perms = [ [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |]; [| 1; 2; 0 |]; [| 2; 0; 1 |]; [| 2; 1; 0 |] ] in
  List.iter
    (fun p ->
      show
        (Printf.sprintf "order %s"
           (String.concat "," (Array.to_list (Array.map (fun i -> spec.Spec.loops.(i)) p))))
        (Engine.Permuted p))
    perms;
  show "optimal tiling" Engine.Optimal;
  rowf "%-26s | %12.0f %8.2f\n" "lower bound" bound.Lower_bound.words 1.0;
  print_endline
    "expected shape: every loop order stays an order of magnitude above the bound (matmul";
  print_endline
    "64^3, M = 512); only blocking closes the gap — interchange is not a substitute."

(* ------------------------------------------------------------------ *)
(* E14 — kernels beyond the paper's worked examples                    *)
(* ------------------------------------------------------------------ *)

let e14 () =
  let m = 1024 in
  rowf "%-28s | %6s %14s %12s %12s %8s\n" "kernel" "s_HBL" "k_hat" "LB words" "ours(LRU)"
    "ours/LB";
  let cases =
    [
      ("mttkrp 64^3 x r=16", Kernels.mttkrp ~i:64 ~j:64 ~k:64 ~r:16);
      ("mttkrp 64^3 x r=2", Kernels.mttkrp ~i:64 ~j:64 ~k:64 ~r:2);
      ("batched mm 8x(48^3)", Kernels.batched_matmul ~batch:8 ~l1:48 ~l2:48 ~l3:48);
      ("batched mm 128x(16^3)", Kernels.batched_matmul ~batch:128 ~l1:16 ~l2:16 ~l3:16);
      ("three_body 128^3", Kernels.three_body ~l1:128 ~l2:128 ~l3:128);
      ("three_body 4x128x128", Kernels.three_body ~l1:4 ~l2:128 ~l3:128);
    ]
  in
  let reports =
    Engine.sweep_grid ~sims:[ Pipeline.sim Engine.Optimal ] (List.map snd cases) ~ms:[ m ]
  in
  List.iter2
    (fun (name, spec) (r : Report.t) ->
      let w = sim_words r 0 in
      rowf "%-28s | %6s %14s %12.0f %12d %8.2f\n" name
        (Rat.to_string (Hbl_lp.s_hbl spec))
        (Rat.to_string r.Report.bound.Lower_bound.exponent.Lower_bound.k_hat)
        r.Report.bound.Lower_bound.words w
        (fint w /. r.Report.bound.Lower_bound.words);
      note_int (name ^ " ours") w)
    cases reports;
  print_endline
    "expected shape: the machinery handles every shape uniformly (the paper's point about";
  print_endline
    "niche kernels); measured traffic stays within a small constant of the bound, including";
  print_endline "the tiny-rank / tiny-batch cases where classical analyses do not apply."

(* ------------------------------------------------------------------ *)
(* E15 — cache-line granularity (model refinement)                     *)
(* ------------------------------------------------------------------ *)

let e15 () =
  let m = 1024 in
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let bound = Engine.lower_bound spec ~m in
  rowf "%-24s | %12s %12s %12s\n" "schedule" "line=1" "line=4" "line=8";
  List.iter
    (fun (label, choice) ->
      let words lw = Engine.words_moved ~line_words:lw spec ~m choice in
      rowf "%-24s | %12d %12d %12d\n" label (words 1) (words 4) (words 8))
    [ ("untiled", Engine.Untiled); ("optimal tiling", Engine.Optimal) ];
  rowf "%-24s | %12.0f (word-granular model)\n" "lower bound" bound.Lower_bound.words;
  print_endline
    "expected shape: matmul walks rows contiguously in either schedule, so traffic is";
  print_endline
    "nearly line-size-invariant (the tiled version pays a small edge penalty: tile rows";
  print_endline
    "are not line-multiples); the tiling's advantage (4.4x at 1-word lines) persists at";
  print_endline "every line size, and the word-granular bound stays valid throughout."

(* ------------------------------------------------------------------ *)
(* E17 — distributed: memory-dependent per-processor traffic           *)
(* ------------------------------------------------------------------ *)

let e17 () =
  let spec = Kernels.matmul ~l1:128 ~l2:128 ~l3:128 in
  rowf "%4s | %12s %16s | per-processor simulated words at M_local =\n" "P" "best grid"
    "gather volume";
  rowf "%4s | %12s %16s | %10s %10s %10s\n" "" "" "(mem-independent)" "256" "1024" "8192";
  List.iter
    (fun p ->
      match Comm_model.best_grid spec ~p with
      | None -> ()
      | Some g ->
        let sim m =
          (Comm_model.simulate_processor spec ~grid:g.Comm_model.grid ~m_local:m)
            .Comm_model.words_per_proc
        in
        rowf "%4d | %12s %16s | %10d %10d %10d\n" p
          (String.concat "x" (Array.to_list (Array.map string_of_int g.Comm_model.grid)))
          (Bigint.to_string g.Comm_model.words)
          (sim 256) (sim 1024) (sim 8192))
    [ 1; 8; 64 ];
  print_endline
    "expected shape: with small local memories the simulated per-processor traffic exceeds";
  print_endline
    "the memory-independent gather volume (data is re-fetched), and it converges toward the";
  print_endline
    "gather volume as M_local grows — the classical memory-dependent/independent crossover;";
  print_endline "more processors shrink both (smaller blocks per processor)."

(* ------------------------------------------------------------------ *)
(* E18 — tiling plans: plan-served vs LP-served on repeat shapes       *)
(* ------------------------------------------------------------------ *)

let e18 () =
  (* A service-shaped workload: few distinct kernel shapes, many
     (bounds, M) points each — the regime the plan layer targets. The
     same requests run twice, plans off then on; the gate (also enforced
     by compare.exe --strict against the baseline) is that every report
     is byte-identical and the LP-memo misses collapse from one per
     point to one per distinct shape. *)
  let specs =
    [
      Kernels.matmul ~l1:64 ~l2:64 ~l3:64;
      Kernels.matmul ~l1:1024 ~l2:1024 ~l3:8;
      Kernels.matmul ~l1:4096 ~l2:2 ~l3:4096;
      Kernels.matvec ~m:512 ~n:512;
      Kernels.matvec ~m:4096 ~n:16;
      Kernels.nbody ~l1:1024 ~l2:64;
      Kernels.nbody ~l1:32 ~l2:4096;
    ]
  in
  let ms = [ 64; 256; 1024; 4096; 16384 ] in
  let reqs =
    List.concat_map
      (fun spec -> List.map (fun m -> Pipeline.request ~shared:true spec ~m) ms)
      specs
  in
  let distinct_shapes =
    List.length (List.sort_uniq compare (List.map Memo.key_of_shape specs))
  in
  let c_lp_misses = Obs.counter "memo.lp.misses" in
  (* jobs:1 keeps the miss accounting exact: with a parallel pool,
     concurrent first requests for one shape could each pay the LP. *)
  let run_with mode =
    Engine.set_plan_mode mode;
    Engine.reset_caches ();
    let misses0 = Obs.value c_lp_misses in
    let results = Engine.sweep_checked ~jobs:1 reqs in
    let jsons =
      List.map
        (function
          | Ok r -> Report.to_json ~timings:false r
          | Error e -> "error:" ^ Engine_error.code e)
        results
    in
    (jsons, Obs.value c_lp_misses - misses0)
  in
  let mode0 = Engine.plan_mode () in
  let off_jsons, off_misses = run_with Engine.Plan_off in
  let on_jsons, on_misses = run_with Engine.Plan_inline in
  Engine.set_plan_mode mode0;
  Engine.reset_caches ();
  let identical = off_jsons = on_jsons in
  rowf "%d requests over %d kernels (%d distinct shapes), M in {%s}:\n" (List.length reqs)
    (List.length specs) distinct_shapes
    (String.concat ", " (List.map string_of_int ms));
  rowf "  %-12s | %14s %18s\n" "plans" "lp-memo misses" "reports identical";
  rowf "  %-12s | %14d %18s\n" "off" off_misses "(reference)";
  rowf "  %-12s | %14d %18s\n" "on (inline)" on_misses (if identical then "yes" else "NO");
  note_int "plan_identical" (if identical then 1 else 0);
  note_int "lp_misses_plan_off" off_misses;
  note_int "lp_misses_plan_on" on_misses;
  note_int "distinct_shapes" distinct_shapes;
  print_endline
    "expected shape: with plans off the LP memo misses once per (shape, bounds, M) point;";
  print_endline
    "with plans on it misses exactly once per distinct shape (the compile trigger) and every";
  print_endline
    "later point is answered from the compiled dual-vertex tables — byte-identical reports,";
  print_endline "zero simplex solves."

(* ------------------------------------------------------------------ *)
(* E19 — serve concurrency: class-aware work stealing vs coarse FIFO   *)
(* ------------------------------------------------------------------ *)

let e19 () =
  (* The concurrent-serve regime: slow simulation requests land just
     ahead of a burst of cheap analytic ones — the adversarial order for
     a class-blind FIFO, where every analytic request queues behind all
     the simulation work. The class-aware scheduler (per-domain
     work-stealing deques, all analytic work claimed before any
     simulation work, simulation tails split off as separate tasks) is
     the arm under test; [~coarse:true] is the pre-split scheduler kept
     as the ablation baseline. The gate is the analytic-class p99 queue
     wait, enforced against the baseline by compare.exe --gate-ratio
     (the absolute milliseconds are machine-dependent and exempt from
     the byte-equality check — only deterministic fields and the ratio
     are gated). *)
  let sim_reqs =
    List.map
      (fun (spec, m) ->
        Pipeline.request ~shared:true ~sims:[ Pipeline.sim Pipeline.Optimal ] spec ~m)
      [
        (Kernels.matmul ~l1:128 ~l2:128 ~l3:128, 1024);
        (Kernels.matmul ~l1:128 ~l2:96 ~l3:96, 512);
        (Kernels.nbody ~l1:768 ~l2:768, 256);
        (Kernels.matmul ~l1:96 ~l2:128 ~l3:96, 2048);
        (Kernels.nbody ~l1:1024 ~l2:512, 1024);
        (Kernels.matmul ~l1:96 ~l2:96 ~l3:128, 4096);
      ]
  in
  let analytic_reqs =
    List.concat_map
      (fun spec ->
        List.map
          (fun m -> Pipeline.request ~shared:true spec ~m)
          [ 64; 256; 1024; 4096; 16384; 65536 ])
      [
        Kernels.matmul ~l1:64 ~l2:64 ~l3:64;
        Kernels.matmul ~l1:1024 ~l2:1024 ~l3:8;
        Kernels.matvec ~m:512 ~n:512;
        Kernels.matvec ~m:4096 ~n:16;
        Kernels.nbody ~l1:1024 ~l2:64;
        Kernels.matmul ~l1:4096 ~l2:2 ~l3:4096;
        Kernels.nbody ~l1:32 ~l2:4096;
      ]
  in
  let reqs = sim_reqs @ analytic_reqs in
  let jobs = 4 in
  let run_arm ~coarse =
    Engine.reset_caches ();
    let s0 = Obs.snapshot () in
    let results = Engine.sweep_checked ~jobs ~coarse reqs in
    let d = Obs.diff s0 (Obs.snapshot ()) in
    let p99 name =
      match List.assoc_opt name d.Obs.stimers with
      | Some t -> Obs.percentile t.Obs.tdist 99.0 /. 1e6
      | None -> 0.0
    in
    let counter name =
      match List.assoc_opt name d.Obs.scounters with Some n -> n | None -> 0
    in
    let jsons =
      List.map
        (function
          | Ok r -> Report.to_json ~timings:false r
          | Error e -> "error:" ^ Engine_error.code e)
        results
    in
    (jsons, p99 "pool.queue_wait.analytic", p99 "pool.queue_wait.simulation",
     counter "pool.steals")
  in
  let coarse_jsons, coarse_p99, coarse_sim_p99, _ = run_arm ~coarse:true in
  let split_jsons, split_p99, split_sim_p99, steals = run_arm ~coarse:false in
  Engine.reset_caches ();
  let identical = coarse_jsons = split_jsons in
  let ratio = coarse_p99 /. Float.max split_p99 1e-3 in
  rowf "%d requests (%d simulation-class first, then %d analytic-class), %d jobs:\n"
    (List.length reqs) (List.length sim_reqs) (List.length analytic_reqs) jobs;
  rowf "  %-22s | %16s %16s %18s\n" "scheduler" "analytic p99" "simulation p99"
    "reports identical";
  rowf "  %-22s | %13.3f ms %13.3f ms %18s\n" "coarse FIFO (ablation)" coarse_p99
    coarse_sim_p99 "(reference)";
  rowf "  %-22s | %13.3f ms %13.3f ms %18s\n" "class-aware stealing" split_p99 split_sim_p99
    (if identical then "yes" else "NO");
  rowf "  analytic p99 improvement: %.1fx (steals observed: %d)\n" ratio steals;
  note_int "requests" (List.length reqs);
  note_int "split_identical" (if identical then 1 else 0);
  (* _ms / _ratio suffixes: machine-dependent, exempt from compare.exe's
     byte-equality; the ratio is gated separately via --gate-ratio. *)
  note "queue_p99_coarse_ms" coarse_p99;
  note "queue_p99_split_ms" split_p99;
  note "queue_p99_ratio" ratio;
  print_endline
    "expected shape: under the coarse FIFO every analytic request waits behind the slow";
  print_endline
    "simulation requests submitted ahead of it, so the analytic-class p99 queue wait is the";
  print_endline
    "length of the simulation backlog; the class-aware scheduler answers the whole analytic";
  print_endline
    "burst before touching simulation tails, collapsing that p99 by >=10x with byte-identical";
  print_endline "reports."

(* ------------------------------------------------------------------ *)
(* E20 — partition solver: Pool-simulated schedule = model, exactly;   *)
(*       memory-independent points vs the Al Daas et al. closed forms  *)
(* ------------------------------------------------------------------ *)

let e20 () =
  (* The end-to-end acceptance gate of `tilings partition`: for every
     (kernel, P, M_local) point the chosen grid's P-processor schedule
     is replayed on the Pool (one domain per distinct block shape) and
     the simulated per-processor maximum must equal the model's gather
     volume EXACTLY — bit-for-bit Bigint equality, noted as a ratio so
     compare.exe can gate on 1.0. Memory-independent points are also
     checked against the continuous per-processor lower bounds of
     Al Daas-Ballard-Grigori-Kumar-Rouse (arXiv:2205.13407); discrete
     ceil-divided grids can only sit on or above the continuous min. *)
  let aldaas ~l1 ~l2 ~l3 ~p =
    (* closed forms want L1 >= L2 >= L3 *)
    let s = List.sort (fun a b -> compare b a) [ l1; l2; l3 ] in
    let l1, l2, l3 =
      match s with [ a; b; c ] -> (fint a, fint b, fint c) | _ -> assert false
    in
    let p = fint p in
    if p >= l1 *. l2 /. (l3 *. l3) then 3.0 *. Float.pow (l1 *. l2 *. l3 /. p) (2.0 /. 3.0)
    else if p >= l1 /. l2 then (l1 *. l2 /. p) +. (2.0 *. l3 *. sqrt (l1 *. l2 /. p))
    else (l1 *. (l2 +. l3) /. p) +. (l2 *. l3)
  in
  let ps = [ 4; 16; 64; 256; 1024; 4096 ] in
  let kernels =
    [ ("mm-ragged", 120, 128, 96); ("mm-flat", 512, 512, 16) ]
  in
  let m_small = 512 and m_big = 1 lsl 22 in
  let worst_ratio = ref 1.0 in
  let all_match = ref true in
  let aldaas_min = ref infinity in
  let crossover = ref None in
  let points = ref 0 in
  rowf "%-10s %5s %6s | %12s %9s | %16s %8s %8s\n" "kernel" "P" "M_loc" "grid" "regime"
    "words/proc" "sim=mod" "vs AlD";
  List.iter
    (fun (name, l1, l2, l3) ->
      let spec = Kernels.matmul ~l1 ~l2 ~l3 in
      List.iter
        (fun p ->
          List.iter
            (fun m_local ->
              match Engine.partition_checked spec ~p ~m_local ~net:Partition_solve.Words with
              | Error e -> Printf.printf "  %s P=%d: %s\n" name p (Engine_error.code e)
              | Ok sol ->
                incr points;
                let v =
                  match Engine.partition_validate spec sol with
                  | Ok v -> v
                  | Error e ->
                    Printf.ksprintf failwith "E20 %s P=%d validate: %s" name p
                      (Engine_error.code e)
                in
                let ratio =
                  Bigint.to_float v.Pipeline.pv_max_words
                  /. Bigint.to_float sol.Partition_solve.gather_words
                in
                if ratio > !worst_ratio then worst_ratio := ratio;
                if not v.Pipeline.pv_matches then all_match := false;
                let independent =
                  sol.Partition_solve.regime = Partition_solve.Memory_independent
                in
                let ald = aldaas ~l1 ~l2 ~l3 ~p in
                let vs_ald =
                  if independent then begin
                    let r = Bigint.to_float sol.Partition_solve.words /. ald in
                    if r < !aldaas_min then aldaas_min := r;
                    Printf.sprintf "%8.3f" r
                  end
                  else "       -"
                in
                if name = "mm-ragged" && m_local = m_small && independent
                   && !crossover = None
                then crossover := Some p;
                rowf "%-10s %5d %6d | %12s %9s | %16s %8s %s\n" name p m_local
                  (String.concat "x"
                     (Array.to_list (Array.map string_of_int sol.Partition_solve.grid)))
                  (if independent then "indep" else "dep")
                  (Bigint.to_string sol.Partition_solve.words)
                  (if v.Pipeline.pv_matches then "yes" else "NO")
                  vs_ald)
            [ m_small; m_big ])
        ps)
    kernels;
  note "model_vs_simulated_ratio" !worst_ratio;
  note_int "all_points_match" (if !all_match then 1 else 0);
  note "aldaas_min_ratio" !aldaas_min;
  note_int "points" !points;
  (match !crossover with
  | Some p -> note_int "crossover_p" p
  | None -> ());
  Printf.printf
    "memory regimes: at M_local = %d the ragged kernel is memory-dependent until P = %s\n"
    m_small
    (match !crossover with Some p -> string_of_int p | None -> "beyond 4096");
  print_endline
    "expected shape: sim=mod is 'yes' on every row (the analytic gather model and the";
  print_endline
    "literal address-set replay agree exactly; compare.exe gates the ratio at 1.0), and";
  print_endline
    "memory-independent rows sit on or just above the Al Daas continuous bound (ratio >=";
  print_endline
    "~1.0); small local memories keep the solver in the memory-dependent regime until the";
  print_endline "per-processor block shrinks under M — the per-regime crossover in P."

(* ------------------------------------------------------------------ *)
(* E16 — ablation: exact rational vs floating-point simplex            *)
(* ------------------------------------------------------------------ *)

let e16 () =
  let rng = Random.State.make [| 0xacc |] in
  let trials = 200 in
  let max_dev = ref 0.0 in
  let exact_rationals = ref 0 in
  let tie_cases = ref 0 in
  for _ = 1 to trials do
    let d = 2 + Random.State.int rng 3 in
    let n = 2 + Random.State.int rng 2 in
    let arrays =
      Array.init n (fun j ->
        Spec.array_ref
          ~mode:(if j = 0 then Spec.Update else Spec.Read)
          (Printf.sprintf "A%d" j)
          (List.filter (fun i -> i mod n = j || Random.State.bool rng) (List.init d (fun i -> i))))
    in
    let loops = Array.init d (fun i -> Printf.sprintf "x%d" (i + 1)) in
    match
      Spec.create ~name:"r" ~loops ~bounds:(Array.make d 4) ~arrays
    with
    | Error _ -> ()
    | Ok spec ->
      (* betas on a non-dyadic grid (thirds and sevenths): the exact
         rationals have no finite binary representation, so the float
         solver works with perturbed data throughout *)
      let beta =
        Array.init d (fun _ ->
          Rat.of_ints (Random.State.int rng 9) (if Random.State.bool rng then 3 else 7))
      in
      let lp = Hbl_lp.tiling spec ~beta in
      let exact = (Simplex.solve_exn lp).Simplex.objective in
      if Bigint.to_int (Rat.den exact) > 1 then incr exact_rationals;
      (match Simplex_float.solve lp with
      | Simplex_float.Optimal f ->
        let dev = Float.abs (f.Simplex_float.objective -. Rat.to_float exact) in
        if dev > !max_dev then max_dev := dev;
        (* a downstream exact comparison the float solver cannot make *)
        if Rat.equal exact (Rat.of_ints 3 2) then incr tie_cases
      | _ -> ())
  done;
  rowf "%d random degenerate tiling LPs (betas on thirds/sevenths):\n" trials;
  rowf "  max |float - exact| objective deviation: %.3g\n" !max_dev;
  rowf "  optima that are non-integer rationals (need exact arithmetic to state): %d\n"
    !exact_rationals;
  rowf "  optima exactly equal to 3/2 (Theorem-2 case boundary): %d\n" !tie_cases;
  print_endline
    "expected shape: float deviations are tiny but nonzero, and a large fraction of optima";
  print_endline
    "are non-integer rationals sitting exactly on Theorem-2 case boundaries — the equality";
  print_endline
    "tests that Theorem 3 requires (E8) are only possible with the exact solver.";
  print_endline
    "(The microbenchmarks below price this choice: exact solves are ~10-100x slower, but";
  print_endline "still microseconds.)"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbenches () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\n==== MICRO: solver microbenchmarks (Bechamel, monotonic clock) ====\n";
  let mm = Kernels.matmul ~l1:1024 ~l2:1024 ~l3:8 in
  let conv = Kernels.pointwise_conv ~b:8 ~c:4 ~k:32 ~w:14 ~h:14 in
  let beta_mm = Lower_bound.beta_of_bounds ~m:4096 mm.Spec.bounds in
  let beta_conv = Lower_bound.beta_of_bounds ~m:4096 conv.Spec.bounds in
  let small_mm = Kernels.matmul ~l1:32 ~l2:32 ~l3:32 in
  let tile32 = Tiling.optimal_shared small_mm ~m:512 in
  let tests =
    Test.make_grouped ~name:"tilings"
      [
        Test.make ~name:"hbl-lp-matmul" (Staged.stage (fun () -> Hbl_lp.s_hbl mm));
        Test.make ~name:"tiling-lp-matmul"
          (Staged.stage (fun () -> Tiling.solve_lp mm ~beta:beta_mm));
        Test.make ~name:"tiling-lp-matmul-memoized"
          (Staged.stage (fun () -> Engine.solve_lp mm ~beta:beta_mm));
        Test.make ~name:"tiling-lp-matmul-float"
          (Staged.stage (fun () -> Simplex_float.solve (Hbl_lp.tiling mm ~beta:beta_mm)));
        Test.make ~name:"tiling-lp-conv"
          (Staged.stage (fun () -> Tiling.solve_lp conv ~beta:beta_conv));
        Test.make ~name:"lower-bound-enum-conv(2^5 Q)"
          (Staged.stage (fun () -> Lower_bound.exponent_by_enumeration conv ~beta:beta_conv));
        Test.make ~name:"lower-bound-dual-conv"
          (Staged.stage (fun () -> Lower_bound.exponent_by_lp conv ~beta:beta_conv));
        Test.make ~name:"closed-form-matmul" (Staged.stage (fun () -> Closed_form.compute mm));
        Test.make ~name:"integer-tile-shared-conv"
          (Staged.stage (fun () -> Tiling.optimal_shared conv ~m:4096));
        Test.make ~name:"simulate-matmul-32^3-lru"
          (Staged.stage (fun () ->
             Executor.run small_mm ~schedule:(Schedules.Tiled tile32) ~capacity:512));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
  in
  rowf "%-42s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      rowf "%-42s %16s\n" name pretty)
    (List.sort compare rows)

let tables ~s0 () =
  List.iter
    (fun (id, title, body) -> experiment id title body)
    [
      ("E1", "matmul bound = max(L1L2L3/sqrt(M), L1L2, L2L3, L1L3)  [Sec 6.1]", e1);
      ("E2", "alpha-parameterized family of optimal matmul tiles  [Sec 6.1]", e2);
      ("E3", "tensor contraction LP = gamma-grouped matmul LP  [Sec 6.2]", e3);
      ("E4", "pointwise convolutions with small channel counts  [Sec 1, 6.2]", e4);
      ( "E5",
        "n-body: tile min(M^2, L1 M, L2 M, L1 L2), comm min(L1L2/M, L2, L1, M)  [Sec 6.3]",
        e5 );
      ("E6", "tightness: constructed tiling vs lower bound  [Sec 4-5]", e6);
      ("E7", "who wins: untiled vs classic vs arbitrary-bounds tiling  [Sec 1]", e7);
      ("E8", "Theorem 3 on random projective programs  [Sec 4-5]", e8);
      ("E9", "piecewise-linear closed form of the tile exponent  [Sec 7]", e9);
      ("E10", "rectangular partitions over P processors  [Sec 7]", e10);
      ("E11", "nested tilings on a two-level hierarchy  [Sec 1/7 extension]", e11);
      ("E12", "ablation: tile construction strategies (retention-model traffic)  [DESIGN.md]", e12);
      ("E13", "loop interchange vs tiling  [Sec 1 motivation]", e13);
      ("E14", "generality: MTTKRP, batched matmul, 3-body (no hand analysis needed)", e14);
      ("E15", "cache lines: the word-granular model under 1/4/8-word lines", e15);
      ("E16", "ablation: exact vs float simplex on the tiling LPs  [DESIGN.md]", e16);
      ("E17", "distributed memory-dependent regime (Irony-Toledo-Tiskin shape)  [Sec 7]", e17);
      ("E18", "tiling plans: plan-served vs LP-served, byte-identity and miss collapse", e18);
      ("E19", "serve concurrency: class-aware work stealing vs coarse FIFO queue wait", e19);
      ("E20", "partition: Pool-simulated schedule = model exactly; Al Daas bounds  [Sec 7]", e20);
    ];
  write_json ~s0 "BENCH_engine.json"

(* Usage: bench/main.exe [tables|micro] [--metrics] [--trace FILE]
                         [--telemetry FILE] *)
let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let metrics = List.mem "--metrics" args in
  let rec keyed flag = function
    | f :: file :: _ when f = flag -> Some file
    | _ :: rest -> keyed flag rest
    | [] -> None
  in
  let trace = keyed "--trace" args in
  let telemetry = keyed "--telemetry" args in
  let rec strip = function
    | [] -> []
    | "--metrics" :: rest -> strip rest
    | "--trace" :: _ :: rest -> strip rest
    | "--telemetry" :: _ :: rest -> strip rest
    | a :: rest -> a :: strip rest
  in
  let what = match strip args with w :: _ -> w | [] -> "all" in
  if trace <> None then begin
    Obs.Trace.enable ();
    Obs.Trace.set_lane_name "main"
  end;
  let tel =
    Option.map
      (fun path ->
        match Telemetry.start ~interval_s:1.0 path with
        | Ok t -> t
        | Error msg ->
          Printf.eprintf "bench: --telemetry %s: %s\n%!" path msg;
          exit 2)
      telemetry
  in
  let s0 = Obs.snapshot () in
  if what = "tables" || what = "all" then tables ~s0 ();
  if what = "micro" || what = "all" then microbenches ();
  Option.iter Telemetry.stop tel;
  Option.iter
    (fun file ->
      Obs.Trace.disable ();
      Obs.Trace.write_file file;
      Printf.printf "wrote %s (%s spans, %s dropped)\n" file
        (Obs.group_int (Obs.Trace.span_count ()))
        (Obs.group_int (Obs.Trace.dropped ())))
    trace;
  if metrics then Format.printf "@.%a@." Obs.pp (Obs.diff s0 (Obs.snapshot ()))
