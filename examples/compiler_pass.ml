(* A miniature "compiler pass" (the application Section 7 proposes):
   take kernels as text, derive the communication-optimal tile for the
   target cache, and emit compilable blocked C — no hand analysis, no
   vendor library, works for arbitrary (including niche) projective
   kernels. The engine memoizes the per-kernel analysis, so recompiling a
   translation unit full of repeated shapes re-solves nothing.

     dune exec examples/compiler_pass.exe            # print to stdout
     dune exec examples/compiler_pass.exe -- out_dir # also write .c files
*)

let kernels =
  [
    ( "matmul_skinny",
      "i = 2048, j = 2048, k = 4 : C[i,k] += A[i,j] * B[j,k]" );
    ( "pointwise_conv",
      "b = 32, c = 8, k = 64, w = 28, h = 28 : Out[b,k,w,h] += Image[b,c,w,h] * Filter[c,k]" );
    ( "pairwise",
      "p = 100000, q = 100000 : F[p] += X[p] * Y[q]" );
  ]

let () =
  let m = 32768 (* a 256 KiB L2 at 8-byte words *) in
  let out_dir = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  (match out_dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  List.iter
    (fun (name, dsl) ->
      let spec = Parser.parse_exn ~name dsl in
      let bound = Engine.lower_bound spec ~m in
      let tile = Engine.tile_shared spec ~m in
      Format.printf "// ------------------------------------------------------------@.";
      Format.printf "// %s: lower bound %.3g words (classical formula says %.3g)@." name
        bound.Lower_bound.words bound.Lower_bound.words_classic;
      Format.printf "// chosen tile: %a@." (Tiling.pp spec) tile;
      let code = Codegen.emit ~lang:Codegen.C ~function_name:name spec ~tile in
      (match out_dir with
      | Some d ->
        let path = Filename.concat d (name ^ ".c") in
        let oc = open_out path in
        output_string oc code;
        close_out oc;
        Format.printf "// wrote %s@.@." path
      | None -> Format.printf "%s@." code))
    kernels
