(* n-body pairwise interactions (Section 6.3 of the paper).

   A two-loop nest where every particle interacts with every other:
   A1[x1] += f(A2[x1], A3[x2]). The optimal tile is
   min(M^2, L1*M, L2*M, L1*L2) points; its shape changes regime as the
   particle counts shrink relative to the cache. This example walks the
   four regimes, printing the analytic tile, its simulated traffic, and
   the Section-6.3 caveat case where everything fits in cache.

     dune exec examples/nbody.exe
*)

let () =
  let m = 256 in
  Format.printf "n-body pairwise interactions, cache M = %d words@.@." m;
  let cases =
    [
      ("both large (M^2 regime)", 4096, 4096);
      ("L1 small (L1*M regime)", 32, 4096);
      ("L2 small (L2*M regime)", 4096, 32);
      ("both small (L1*L2 regime: all fits)", 32, 32);
    ]
  in
  Format.printf "%-38s %12s %14s %12s %10s@." "case" "tile" "tile volume" "LB words"
    "LRU words";
  let reports =
    Engine.sweep_grid
      ~sims:[ Pipeline.sim Engine.Optimal ]
      ~shared:true
      (List.map (fun (_, l1, l2) -> Kernels.nbody ~l1 ~l2) cases)
      ~ms:[ m ]
  in
  List.iter2
    (fun (label, _, _) (r : Report.t) ->
      let spec = r.Report.spec in
      let tile = Option.get r.Report.tile_shared in
      Format.printf "%-38s %12s %14d %12.0f %10d@." label
        (Format.asprintf "%a" (Tiling.pp spec) tile)
        (Tiling.volume tile) r.Report.bound.Lower_bound.words
        (List.hd r.Report.sims).Report.words_moved)
    cases reports;
  Format.printf
    "@.Note (Section 6.3): in the last regime the whole problem fits in cache, and the@.";
  Format.printf
    "model's M-word-per-tile charge makes the printed bound conservative; the measured@.";
  Format.printf "traffic is just the compulsory reads and writes.@."
