(* Pointwise-convolution layer sweep — the paper's machine-learning
   motivation (Sections 1 and 6.2).

   1x1 ("pointwise") convolutions appear throughout depthwise-separable
   architectures (MobileNet-style). Their channel counts are often small,
   so the classical square tiling is infeasible and the classical lower
   bound is wrong; the arbitrary-bounds machinery handles every layer
   uniformly. The whole stack goes through the engine as one sweep
   (parallel across layers when domains are available); for each layer we
   print the lower bound and the simulated traffic of (a) our tiling,
   (b) the clamped classical tiling and (c) the untiled loops.

     dune exec examples/conv_layers.exe
*)

type layer = { name : string; b : int; c : int; k : int; w : int; h : int }

(* Shapes follow the pointwise (1x1) convolutions of a MobileNet-v1-style
   network, scaled down so the cache simulation stays fast. *)
let layers =
  [
    { name = "pw1"; b = 4; c = 8; k = 16; w = 28; h = 28 };
    { name = "pw2"; b = 4; c = 16; k = 32; w = 14; h = 14 };
    { name = "pw3"; b = 4; c = 32; k = 64; w = 7; h = 7 };
    { name = "pw4-narrow"; b = 4; c = 4; k = 128; w = 7; h = 7 };
    { name = "pw5-1x1 image"; b = 32; c = 64; k = 64; w = 1; h = 1 };
  ]

let () =
  let m = 2048 in
  Format.printf "Pointwise convolution layers, cache M = %d words@." m;
  Format.printf "%-14s %12s %12s %12s %12s %8s@." "layer" "lower bound" "ours(LRU)"
    "classic(LRU)" "untiled" "ours/LB";
  let sims = Engine.[ Pipeline.sim Optimal; Pipeline.sim Classic; Pipeline.sim Untiled ] in
  let specs =
    List.map (fun l -> Kernels.pointwise_conv ~b:l.b ~c:l.c ~k:l.k ~w:l.w ~h:l.h) layers
  in
  let reports = Engine.sweep_grid ~sims specs ~ms:[ m ] in
  List.iter2
    (fun l (r : Report.t) ->
      let words k = (List.nth r.Report.sims k).Report.words_moved in
      Format.printf "%-14s %12.0f %12d %12d %12d %8.2f@." l.name
        r.Report.bound.Lower_bound.words (words 0) (words 1) (words 2)
        (float_of_int (words 0) /. r.Report.bound.Lower_bound.words))
    layers reports;
  Format.printf
    "@.'classic' clamps the square %s-style tile to the loop bounds; with small channel@."
    "sqrt(M/3)";
  Format.printf
    "counts it wastes most of the cache, which is exactly the gap the paper closes.@."
