(* An "unconventional kernel" tensor contraction — the Section 1
   motivation about architectures (capsule networks and friends) that lack
   hand-optimized kernels.

   The point of the paper's generality: you do not need a vendor library
   or a hand analysis to get a communication-optimal schedule for a niche
   contraction. We take a 5-loop contraction with deliberately lopsided
   bounds, derive its bound + tiling automatically, print the piecewise
   closed form of the tile exponent, and check the schedule on the
   simulator. Also shows the DSL and the Theorem-2 witness set Q.

     dune exec examples/capsule_contraction.exe
*)

let () =
  let m = 4096 in
  (* A capsule-style routing contraction: poses indexed by (input capsule
     i, output capsule o, pose row p, pose col q), batch b. Small pose
     dims (4) and modest capsule counts make every classical analysis
     break: several loop bounds are far below sqrt(M). *)
  let spec =
    Parser.parse_exn ~name:"capsule-routing"
      "b = 128, i = 64, o = 64, p = 4, q = 4 : V[b,i,o,p] += Pose[b,i,p,q] * W[i,o,q]"
  in
  Format.printf "%a@.@." Spec.pp spec;

  (* One engine request covers the analysis, the shared-cache tile, and
     all three simulated schedules. *)
  let report =
    Engine.analyze
      ~sims:Engine.[ Pipeline.sim Optimal; Pipeline.sim Classic; Pipeline.sim Untiled ]
      ~shared:true spec ~m
  in
  Format.printf "%a@.@." Report.pp report;

  let e = report.Report.bound.Lower_bound.exponent in
  Format.printf "Theorem-2 witness Q (small loops) = {%s}@."
    (String.concat ", "
       (List.map (fun i -> spec.Spec.loops.(i)) e.Lower_bound.witness_q));

  let cf = Closed_form.compute spec in
  Format.printf "tile exponent closed form: %a@.@." Closed_form.pp cf;

  let words k = (List.nth report.Report.sims k).Report.words_moved in
  Format.printf "simulated words moved (LRU, M = %d):@." m;
  Format.printf "  bound-aware tile %-18s: %8d@."
    (Format.asprintf "%a" (Tiling.pp spec) (Option.get report.Report.tile_shared))
    (words 0);
  Format.printf "  clamped classic  %-18s: %8d@."
    (Format.asprintf "%a" (Tiling.pp spec) (Schedules.classic_tile spec ~m))
    (words 1);
  Format.printf "  untiled                            : %8d@." (words 2);
  Format.printf "  lower bound                        : %8.0f@."
    report.Report.bound.Lower_bound.words
