(* Quickstart: analyze one kernel end to end.

   Describe a projective loop nest in the one-line DSL, then ask the
   engine for (1) the arbitrary-bounds communication lower bound, (2) an
   optimal rectangular tile, and (3) simulated traffic confirming the tile
   attains the bound. Run with:

     dune exec examples/quickstart.exe
*)

let () =
  let m = 4096 (* cache words *) in

  (* A matmul whose k-dimension is small — the regime where classical
     "large bounds" analyses break down. *)
  let spec = Parser.parse_exn ~name:"matmul(1024x1024x8)"
      "i = 1024, j = 1024, k = 8 : C[i,k] += A[i,j] * B[j,k]"
  in

  (* One call gives the full analysis. *)
  let report = Engine.analyze spec ~m in
  Format.printf "%a@.@." Report.pp report;

  (* Piece together the story by hand as well. *)
  let bound = report.Report.bound in
  Format.printf "lower bound: any execution moves >= %.3g words@." bound.Lower_bound.words;
  Format.printf "optimal tile: %a@." (Tiling.pp spec) report.Report.tile;

  (* The closed form of the tile-size exponent as a function of the
     log-bounds (Section 7 of the paper). *)
  let cf = Closed_form.compute spec in
  Format.printf "tile exponent f(beta) = %a@." Closed_form.pp cf;

  (* Simulate on an LRU cache. The paper's model gives each array its own
     budget of M words; the engine's [Optimal] schedule uses the tile
     re-optimized for a single shared cache of M words instead. *)
  let ours = Engine.words_moved spec ~m Engine.Optimal in
  let naive = Engine.words_moved spec ~m Engine.Untiled in
  Format.printf "@.simulated words moved (LRU, M = %d):@." m;
  Format.printf "  optimal tiling : %d  (%.2fx the lower bound)@." ours
    (float_of_int ours /. bound.Lower_bound.words);
  Format.printf "  untiled loops  : %d  (%.2fx the lower bound)@." naive
    (float_of_int naive /. bound.Lower_bound.words)
