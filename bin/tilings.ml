(* Command-line interface to the tiling library, built on the unified
   Engine pipeline (lib/engine): every subcommand is a thin veneer that
   builds a Pipeline request and renders the Report.

   Examples:

     tilings analyze -k "i=1024, j=1024, k=8 : C[i,k] += A[i,j]*B[j,k]" -m 4096
     tilings lower-bound --preset matvec -m 1024
     tilings tile -k "x=4096, y=4096 : A[x] += B[x] * C[y]" -m 256
     tilings closed-form --preset matmul
     tilings simulate --preset matmul -m 512 --schedule optimal --policy lru
     tilings sweep --preset matmul -m 256,1024,4096 --schedules optimal,classic
     tilings profile mm --mem 4096 --iters 50
     tilings partition -k mm -p 64 -M 4096
     tilings presets

   Observability: every subcommand takes --metrics (print the counter /
   timer-histogram tables for this invocation) and --trace FILE (write a
   Chrome trace-event JSON of the run, loadable in Perfetto or
   chrome://tracing, with one lane per Pool worker domain). *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Kernel selection                                                   *)
(* ------------------------------------------------------------------ *)

let preset_specs = Kernels.all ()

(* Errors in two tiers: misuse of the command line itself stays a
   cmdliner usage error (`Usage, exit 124); anything the engine can
   diagnose becomes a typed Engine_error (`Typed) rendered with its own
   exit code — see Engine_error.exit_code for the map. *)
let resolve_spec kernel preset =
  match (kernel, preset) with
  | Some dsl, None -> (
    match Parser.parse dsl with
    | Ok s -> Ok s
    | Error e ->
      Error
        (`Typed
           (Engine_error.Parse_error
              {
                line = e.Parser.pos.Parser.line;
                col = e.Parser.pos.Parser.col;
                message = e.Parser.message;
              })))
  | None, Some name -> (
    match List.assoc_opt name preset_specs with
    | Some s -> Ok s
    | None ->
      Error
        (`Typed
           (Engine_error.Invalid_spec
              (Printf.sprintf "unknown preset %S (try: %s)" name
                 (String.concat ", " (List.map fst preset_specs))))))
  | Some _, Some _ -> Error (`Usage "give either --kernel or --preset, not both")
  | None, None ->
    Error (`Usage "a kernel is required: --kernel \"<dsl>\" or --preset <name>")

(* A positional kernel (profile): DSL, preset name, alias, or unique
   preset-name prefix — shared with the serve protocol (Kernels.resolve). *)
let resolve_named = Kernels.resolve

let kernel_arg =
  let doc =
    "Kernel in the one-line DSL, e.g. \"i = 64, j = 64, k = 8 : C[i,k] += A[i,j] * B[j,k]\"."
  in
  Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~docv:"DSL" ~doc)

let preset_arg =
  let doc = "Use a stock kernel; see the $(b,presets) command for the list." in
  Arg.(value & opt (some string) None & info [ "p"; "preset" ] ~docv:"NAME" ~doc)

let cache_arg =
  let doc = "Fast-memory (cache) size in words." in
  Arg.(value & opt int 4096 & info [ "m"; "cache" ] ~docv:"WORDS" ~doc)

let fail fmt = Printf.ksprintf (fun s -> `Error (false, s)) fmt

(* Typed engine errors render as one diagnostic line with the stable
   wire code, and exit with the code's own status (parse_error 2,
   invalid_spec 3, cache_too_small 4, ... — Engine_error.exit_code).
   Exiting here also guarantees a failed invocation never writes a
   --trace file or metrics table (the with_obs postlude only runs on
   success). *)
let fail_error e : 'a =
  Printf.eprintf "tilings: error [%s]: %s\n%!" (Engine_error.code e)
    (Engine_error.to_string e);
  exit (Engine_error.exit_code e)

(* Library aborts (Closed_form / Tiling_plan refusing an oversized
   shape, say) rendered through the typed-error map, so the CLI exits
   with the same stable code ([shape_too_large], 11) the server would
   put on the wire. *)
let fail_typed_exn exn : 'a =
  match Engine_error.of_exn exn with
  | Some e -> fail_error e
  | None -> raise exn

let pp_bounds spec =
  String.concat " x " (List.map string_of_int (Array.to_list spec.Spec.bounds))

let with_spec kernel preset f =
  match resolve_spec kernel preset with
  | Error (`Usage msg) -> fail "%s" msg
  | Error (`Typed e) -> fail_error e
  | Ok spec -> (
    (* Library-level aborts (e.g. a bound whose exact footprint exceeds
       native int range reaching Bigint.to_int) become a rendered typed
       error naming the kernel and its bounds, not an uncaught
       exception. *)
    try f spec with
    | Engine_error.Error e -> fail_error e
    | Failure msg ->
      fail_error
        (Engine_error.Internal
           (Printf.sprintf "kernel %s (bounds %s): %s" spec.Spec.name (pp_bounds spec) msg)))

let simulable spec =
  (* Exact comparison: the native product wraps (to 0 for 2^21-cubed
     bounds) and would sail straight past this guard. *)
  let n = Spec.iteration_count_big spec in
  if Bigint.compare n (Bigint.of_int 20_000_000) > 0 then
    Error
      (Printf.sprintf
         "kernel too large to simulate (%s iterations > 2*10^7); shrink the bounds"
         (Bigint.to_string n))
  else Ok ()

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the observability tables (solver counters, cache/memo \
           hit rates, stage timers with p50/p90/p99 latencies) for this \
           invocation. The $(b,sweep) command instead wraps its JSON as \
           {\"reports\": ..., \"obs\": ...}.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans (pipeline stages, simplex solves, cache \
           simulations, pool tasks) and write a Chrome trace-event JSON \
           file on success — load it in Perfetto (ui.perfetto.dev) or \
           chrome://tracing. Parallel sweeps render one lane per worker \
           domain.")

(* Wraps a command body: enables tracing up front when asked, and on
   success appends the per-invocation metrics delta and/or writes the
   trace file. The snapshot diff keeps earlier in-process work (there is
   none in the CLI, but the engine does warm registry handles at module
   init) out of the emitted numbers. *)
let with_obs metrics trace body =
  if trace <> None then begin
    Obs.Trace.enable ();
    Obs.Trace.set_lane_name "main"
  end;
  let s0 = Obs.snapshot () in
  let result = body () in
  (match result with
  | `Ok () ->
    if metrics then Format.printf "%a@." Obs.pp (Obs.diff s0 (Obs.snapshot ()));
    Option.iter
      (fun file ->
        Obs.Trace.disable ();
        Obs.Trace.write_file file;
        Printf.eprintf "trace: %s spans (%s dropped) -> %s\n%!"
          (Obs.group_int (Obs.Trace.span_count ()))
          (Obs.group_int (Obs.Trace.dropped ()))
          file)
      trace
  | _ -> ());
  result

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Export periodic metric snapshots while running: append JSONL \
           time-series records ({\"ts\",\"seq\",\"obs\"}) to $(docv), or — \
           when $(docv) ends in $(b,.om) — atomically rewrite it as an \
           OpenMetrics/Prometheus text exposition each tick. One snapshot \
           is always taken at start and one at exit. $(b,tilings top) \
           tails the JSONL form live.")

let telemetry_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "telemetry-interval" ] ~docv:"SECONDS"
        ~doc:"Ticker period for --telemetry (default 1s).")

(* Runs the body with the periodic exporter ticking; the final snapshot
   lands in [finally] so a clean run always closes its trail. A typed
   engine failure exits the process directly (fail_error), leaving the
   start-of-run snapshot as the trail's last record — acceptable for a
   failed invocation. *)
let with_telemetry telemetry interval body =
  match telemetry with
  | None -> body ()
  | Some path -> (
    match Telemetry.start ~interval_s:interval path with
    | Error msg -> fail "--telemetry %s: %s" path msg
    | Ok t -> Fun.protect ~finally:(fun () -> Telemetry.stop t) body)

(* ------------------------------------------------------------------ *)
(* Commands                                                           *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let run kernel preset m metrics trace =
    with_obs metrics trace (fun () ->
      with_spec kernel preset (fun spec ->
        match Engine.analyze_checked spec ~m with
        | Error e -> fail_error e
        | Ok r ->
          Format.printf "%a@." Report.pp r;
          `Ok ()))
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Lower bound, optimal tile, and attainment for a kernel")
    Term.(ret (const run $ kernel_arg $ preset_arg $ cache_arg $ metrics_arg $ trace_arg))

let lower_bound_cmd =
  let run kernel preset m metrics trace =
    with_obs metrics trace (fun () ->
      with_spec kernel preset (fun spec ->
        if m < 2 then fail_error (Engine_error.Cache_too_small { m; min_words = 2 })
        else begin
          Format.printf "%a@.%a@." Spec.pp spec Lower_bound.pp_bound
            (Engine.lower_bound spec ~m);
          `Ok ()
        end))
  in
  Cmd.v
    (Cmd.info "lower-bound" ~doc:"Arbitrary-bounds communication lower bound (Theorem 2)")
    Term.(ret (const run $ kernel_arg $ preset_arg $ cache_arg $ metrics_arg $ trace_arg))

let tile_cmd =
  let run kernel preset m metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      match Engine.analyze_checked ~shared:true spec ~m with
      | Error e -> fail_error e
      | Ok r ->
        let sol = r.Report.lp in
        Format.printf "%a@." Spec.pp spec;
        Format.printf "LP (5.1) value: %a (tile cardinality M^%.4f)@." Rat.pp sol.Tiling.value
          (Rat.to_float sol.Tiling.value);
        Format.printf "lambda: [%s]@."
          (String.concat "; " (List.map Rat.to_string (Array.to_list sol.Tiling.lambda)));
        Format.printf "tile (paper model, M per array): %a  volume %d@." (Tiling.pp spec)
          r.Report.tile r.Report.tile_volume;
        (match r.Report.tile_shared with
        | Some shared ->
          Format.printf "tile (shared cache of M words):  %a  volume %d@." (Tiling.pp spec)
            shared (Tiling.volume shared)
        | None -> ());
        `Ok ())
  in
  Cmd.v
    (Cmd.info "tile" ~doc:"Communication-optimal rectangular tile (Section 5)")
    Term.(ret (const run $ kernel_arg $ preset_arg $ cache_arg $ metrics_arg $ trace_arg))

let closed_form_cmd =
  let run kernel preset metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      match Closed_form.compute spec with
      | cf ->
        Format.printf "%a@." Spec.pp spec;
        Format.printf
          "optimal tile cardinality = M^f with beta_i = log_M L_i and@.f(beta) = %a@."
          Closed_form.pp cf;
        `Ok ()
      | exception (Invalid_argument _ as exn) -> fail_typed_exn exn)
  in
  Cmd.v
    (Cmd.info "closed-form"
       ~doc:"Piecewise-linear closed form of the tile exponent (Section 7)")
    Term.(ret (const run $ kernel_arg $ preset_arg $ metrics_arg $ trace_arg))

(* A versioned plan bundle, the interchange format between [compile -o]
   and [serve --plans]. *)
let plans_doc plans =
  Printf.sprintf "{\"v\":1,\"plans\":[%s]}"
    (String.concat "," (List.map Tiling_plan.to_json plans))

let load_plans file =
  match Jsonlite.of_file file with
  | Error msg -> Error (Printf.sprintf "--plans %s: %s" file msg)
  | Ok json -> (
    match Jsonlite.num_member "v" json with
    | Some 1.0 -> (
      match Jsonlite.list_member "plans" json with
      | None -> Error (Printf.sprintf "--plans %s: expected a \"plans\" array" file)
      | Some items ->
        let rec go n = function
          | [] -> Ok n
          | item :: rest -> (
            match Tiling_plan.of_json item with
            | Error msg -> Error (Printf.sprintf "--plans %s: plan %d: %s" file n msg)
            | Ok plan ->
              Engine.install_plan plan;
              go (n + 1) rest)
        in
        go 0 items)
    | Some v -> Error (Printf.sprintf "--plans %s: unsupported version %g (expected 1)" file v)
    | None -> Error (Printf.sprintf "--plans %s: expected {\"v\":1,\"plans\":[...]}" file))

let compile_cmd =
  let run kernel preset all out metrics trace =
    with_obs metrics trace
    @@ fun () ->
    let specs =
      if all then
        if kernel <> None || preset <> None then
          Error (`Usage "give --all alone, without --kernel/--preset")
        else Ok (List.map snd preset_specs)
      else Result.map (fun s -> [ s ]) (resolve_spec kernel preset)
    in
    match specs with
    | Error (`Usage msg) -> fail "%s" msg
    | Error (`Typed e) -> fail_error e
    | Ok specs ->
      (* Distinct presets can share a canonical shape (matvec and a
         transposed matvec, say); one plan per shape is all a preload
         needs, so deduplicate by plan key. *)
      let seen = Hashtbl.create 16 in
      let plans =
        List.filter_map
          (fun spec ->
            match Engine.plan_of spec with
            | Error e -> fail_error e
            | Ok plan ->
              let k = Tiling_plan.key plan in
              if Hashtbl.mem seen k then None
              else begin
                Hashtbl.add seen k ();
                Some plan
              end)
          specs
      in
      let doc = plans_doc plans in
      (match out with
      | None -> print_endline doc
      | Some file ->
        let oc = open_out file in
        output_string oc doc;
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "compile: %d plan%s -> %s\n%!" (List.length plans)
          (if List.length plans = 1 then "" else "s")
          file);
      `Ok ()
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Compile a plan for every stock preset (deduplicated by kernel shape).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the plan bundle to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile the per-shape tiling plan (Section 7 dual-vertex tables) for a \
          kernel — or every preset — as a versioned JSON bundle that $(b,serve \
          --plans) preloads; answering any (bounds, M) request from a plan needs \
          no LP solves")
    Term.(
      ret (const run $ kernel_arg $ preset_arg $ all_arg $ out_arg $ metrics_arg $ trace_arg))

let schedule_conv =
  Arg.enum
    [ ("optimal", Engine.Optimal); ("classic", Engine.Classic); ("untiled", Engine.Untiled) ]

let policy_conv =
  Arg.enum [ ("lru", Policy.Lru); ("fifo", Policy.Fifo); ("opt", Policy.Opt) ]

let simulate_cmd =
  let run kernel preset m schedule policy metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      match Engine.analyze_checked ~sims:[ Pipeline.sim ~policy schedule ] spec ~m with
      | Error e -> fail_error e
      | Ok r ->
        Format.printf "%a@." Spec.pp spec;
        List.iter
          (fun s -> Format.printf "%a@." (Report.pp_sim ~bound:r.Report.bound ~m) s)
          r.Report.sims;
        `Ok ())
  in
  let schedule_arg =
    Arg.(value & opt schedule_conv Engine.Optimal & info [ "schedule" ] ~docv:"SCHED"
           ~doc:"One of $(b,optimal), $(b,classic), $(b,untiled).")
  in
  let policy_arg =
    Arg.(value & opt policy_conv Policy.Lru & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Replacement policy: $(b,lru), $(b,fifo) or $(b,opt) (Belady).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the kernel on the cache simulator and count traffic")
    Term.(
      ret
        (const run $ kernel_arg $ preset_arg $ cache_arg $ schedule_arg $ policy_arg
       $ metrics_arg $ trace_arg))

let sweep_cmd =
  let run kernel preset ms schedules policies jobs timings metrics trace =
    with_obs false trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      if ms = [] then fail "give at least one cache size with -m"
      else begin
        let sims =
          List.concat_map
            (fun sched -> List.map (fun policy -> Pipeline.sim ~policy sched) policies)
            schedules
        in
        let reqs = List.map (fun m -> Pipeline.request ~sims ~shared:true spec ~m) ms in
        (* The obs section is the delta over this sweep alone, not
           process-lifetime totals. *)
        let s0 = Obs.snapshot () in
        let results = Engine.sweep_checked ?jobs reqs in
        (* All-or-nothing at the CLI: a single bad point (cache too
           small, kernel too large to simulate) fails the invocation
           with its typed code — partial sweeps are the server's job. *)
        match
          List.find_map (function Error e -> Some e | Ok _ -> None) results
        with
        | Some e -> fail_error e
        | None ->
          let reports =
            List.filter_map (function Ok r -> Some r | Error _ -> None) results
          in
          let obs =
            if metrics then Some (Obs.to_json (Obs.diff s0 (Obs.snapshot ()))) else None
          in
          print_endline (Report.json_of_sweep ~timings ?obs reports);
          `Ok ()
      end)
  in
  let ms_arg =
    Arg.(value & opt (list int) [ 256; 1024; 4096 ]
           & info [ "m"; "cache" ] ~docv:"M1,M2,.."
               ~doc:"Cache sizes (words) to sweep over.")
  in
  let schedules_arg =
    Arg.(value & opt (list schedule_conv) []
           & info [ "schedules" ] ~docv:"S1,S2,.."
               ~doc:"Schedules to simulate at each point ($(b,optimal), $(b,classic), \
                     $(b,untiled)); empty for analysis only.")
  in
  let policies_arg =
    Arg.(value & opt (list policy_conv) [ Policy.Lru ]
           & info [ "policies" ] ~docv:"P1,P2,.."
               ~doc:"Replacement policies to cross with the schedules.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
           & info [ "jobs" ] ~docv:"N"
               ~doc:"Worker domains for the sweep (default: PROJTILE_JOBS or the \
                     recommended domain count).")
  in
  let timings_arg =
    Arg.(value & flag & info [ "timings" ] ~doc:"Include per-stage wall times in the JSON.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep cache sizes (and schedules/policies) in parallel; emit JSON reports")
    Term.(
      ret
        (const run $ kernel_arg $ preset_arg $ ms_arg $ schedules_arg $ policies_arg
       $ jobs_arg $ timings_arg $ metrics_arg $ trace_arg))

let profile_cmd =
  let run name m iters cold schedule policy jobs trace telemetry telemetry_interval =
    with_obs false trace
    @@ fun () ->
    with_telemetry telemetry telemetry_interval
    @@ fun () ->
    match resolve_named name with
    | Error msg -> fail "%s" msg
    | Ok spec -> (
      try
        if iters < 1 then fail "need at least one iteration (--iters)"
        else if m < max 2 (Spec.num_arrays spec) then
          fail_error
            (Engine_error.Cache_too_small { m; min_words = max 2 (Spec.num_arrays spec) })
        else begin
          let sims =
            match schedule with None -> [] | Some s -> [ Pipeline.sim ~policy s ]
          in
          match (if sims = [] then Ok () else simulable spec) with
          | Error msg -> fail "%s" msg
          | Ok () ->
            let t_iter = Obs.timer "profile.iteration" in
            let s0 = Obs.snapshot () in
            let reqs =
              List.init iters (fun _ -> Pipeline.request ~sims ~shared:true spec ~m)
            in
            (match jobs with
            | None ->
              List.iter
                (fun req ->
                  if cold then Engine.reset_caches ();
                  Obs.time t_iter (fun () -> ignore (Pipeline.run req)))
                reqs
            | Some jobs ->
              (* Parallel profiling: iteration latency includes queue
                 contention; that is the point of --jobs. *)
              if cold then Engine.reset_caches ();
              ignore
                (Pool.map_list ~jobs
                   (fun req -> Obs.time t_iter (fun () -> ignore (Pipeline.run req)))
                   reqs));
            let d = Obs.diff s0 (Obs.snapshot ()) in
            Format.printf "profile: %s  (bounds %s)  m = %d  iters = %d%s%s@." spec.Spec.name
              (pp_bounds spec) m iters
              (match schedule with None -> "  (analysis only)" | Some _ -> "  (with simulation)")
              (if cold then "  (cold: caches reset per iteration)" else "");
            (match List.assoc_opt "profile.iteration" d.Obs.stimers with
            | Some t ->
              let dd = t.Obs.tdist in
              Format.printf "@.%-12s %10s %10s %10s %10s %10s %10s@." "" "count" "mean"
                "p50" "p90" "p99" "max";
              Format.printf "%-12s %10s %10s %10s %10s %10s %10s@." "iteration"
                (Obs.group_int dd.Obs.dcount)
                (Obs.pp_dur_ns (Obs.mean_ns dd))
                (Obs.pp_dur_ns (Obs.percentile dd 50.0))
                (Obs.pp_dur_ns (Obs.percentile dd 90.0))
                (Obs.pp_dur_ns (Obs.percentile dd 99.0))
                (Obs.pp_dur_ns (float_of_int dd.Obs.dmax_ns))
            | None -> ());
            Format.printf "@.%a@." Obs.pp d;
            `Ok ()
        end
      with
      | Engine_error.Error e -> fail_error e
      | Failure msg ->
        fail_error
          (Engine_error.Internal
             (Printf.sprintf "kernel %s (bounds %s): %s" spec.Spec.name (pp_bounds spec) msg)))
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KERNEL"
          ~doc:
            "Kernel to profile: a preset name ($(b,matmul)), a shorthand \
             ($(b,mm), $(b,mv), $(b,conv), $(b,fc), $(b,bmm)), a unique \
             preset-name prefix, or a one-line DSL string.")
  in
  let mem_arg =
    let doc = "Fast-memory (cache) size in words." in
    Arg.(value & opt int 4096 & info [ "m"; "mem"; "cache" ] ~docv:"WORDS" ~doc)
  in
  let iters_arg =
    Arg.(value & opt int 50 & info [ "iters" ] ~docv:"N" ~doc:"Number of pipeline runs.")
  in
  let cold_arg =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Reset the engine memo caches before each iteration, so every \
             run pays the full LP/analysis cost instead of profiling the \
             memoized path.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some schedule_conv) None
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:
            "Also simulate this schedule each iteration ($(b,optimal), \
             $(b,classic), $(b,untiled)); default is analysis only.")
  in
  let policy_arg =
    Arg.(value & opt policy_conv Policy.Lru & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Replacement policy when --schedule is given.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run the iterations through the worker pool with N domains \
             instead of sequentially; iteration latency then includes \
             queue wait.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a kernel through the pipeline repeatedly and print latency \
          percentiles (p50/p90/p99) per stage")
    Term.(
      ret
        (const run $ name_arg $ mem_arg $ iters_arg $ cold_arg $ schedule_arg $ policy_arg
       $ jobs_arg $ trace_arg $ telemetry_arg $ telemetry_interval_arg))

let serve_cmd =
  let run socket tcp cache_dir queue jobs deadline_ms plans slow_ms log log_level
      telemetry telemetry_interval metrics trace =
    if queue < 1 then fail "queue capacity must be at least 1"
    else if deadline_ms < 0 then fail "--deadline-ms must be non-negative"
    else if (match slow_ms with Some s -> s < 0.0 | None -> false) then
      fail "--slow-ms must be non-negative"
    else if (match tcp with Some p -> p < 0 || p > 65535 | None -> false) then
      fail "--tcp must be a port number (0 picks a free one)"
    else begin
      (* Structured logging first, so startup events are captured too.
         stdout is the protocol stream, so "-" means stderr here. *)
      Obs.Log.set_level log_level;
      (match log with
      | None -> ()
      | Some "-" -> Obs.Log.to_channel stderr
      | Some file -> (
        match Obs.Log.to_file file with
        | Ok () -> ()
        | Error msg ->
          Printf.eprintf "tilings: --log %s: %s\n%!" file msg;
          exit 124));
      (* The daemon defers plan compilation to batch boundaries: a new
         shape is answered on the LP path first, its plan compiles after
         the responses flush (Serve's warm-up contract). Preloaded plans
         skip even that first LP round. *)
      Engine.set_plan_mode Engine.Plan_deferred;
      (match plans with
      | None -> ()
      | Some file -> (
        match load_plans file with
        | Ok n -> Printf.eprintf "serve: plans: %d preloaded\n%!" n
        | Error msg -> fail_error (Engine_error.Invalid_request msg)));
      (* Warm boot: restore the memo + plan caches snapshotted by a
         previous run's drain. A missing file is a cold boot; a corrupt
         or stale one only costs the entries it damaged (reject and
         continue) — the daemon must come up either way. *)
      (match cache_dir with
      | None -> ()
      | Some dir -> (
        match Cache_store.load ~dir with
        | Ok (0, 0) -> Printf.eprintf "serve: cache: cold boot (%s)\n%!" dir
        | Ok (loaded, rejected) ->
          Printf.eprintf "serve: cache: %d entries restored, %d rejected (%s)\n%!"
            loaded rejected dir
        | Error msg -> Printf.eprintf "serve: cache: load failed, cold boot: %s\n%!" msg));
      if trace <> None then begin
        Obs.Trace.enable ();
        Obs.Trace.set_lane_name "main"
      end;
      let s0 = Obs.snapshot () in
      (* Pool sizing is decided exactly once, here at daemon start —
         requests never re-read PROJTILE_JOBS — and both logged and
         recorded as the serve.pool_jobs gauge. *)
      let jobs, jobs_source =
        match jobs with
        | Some j -> (max 1 j, "--jobs")
        | None ->
          ( Pool.default_jobs (),
            match Sys.getenv_opt "PROJTILE_JOBS" with
            | Some s when Pool.validate_jobs s <> None -> "PROJTILE_JOBS"
            | _ -> "default" )
      in
      Obs.record_max (Obs.counter "serve.pool_jobs") jobs;
      let cfg =
        {
          Serve.jobs;
          queue_capacity = queue;
          default_deadline_s =
            (if deadline_ms = 0 then None else Some (float_of_int deadline_ms /. 1000.0));
          slow_s = Option.map (fun s -> s /. 1000.0) slow_ms;
        }
      in
      let mode =
        match (socket, tcp) with
        | None, None -> "pipe (stdin/stdout)"
        | Some p, None -> "socket " ^ p
        | None, Some port -> Printf.sprintf "tcp 127.0.0.1:%d" port
        | Some p, Some port -> Printf.sprintf "socket %s + tcp 127.0.0.1:%d" p port
      in
      Printf.eprintf "serve: pool: %d job%s (%s); queue capacity %d; mode: %s\n%!" jobs
        (if jobs = 1 then "" else "s")
        jobs_source queue mode;
      Obs.Log.info "serve.start"
        [
          ("jobs", `I jobs);
          ("queue_capacity", `I queue);
          ("mode", `S mode);
          ("level", `S (Obs.Log.level_name (Obs.Log.current_level ())));
        ];
      (* SIGTERM/SIGINT flip a flag: the in-flight batch completes and
         flushes before the loop exits (graceful drain). SIGPIPE is
         ignored so a vanished client surfaces as EPIPE, handled per
         connection. *)
      let stopped = Atomic.make false in
      let on_stop = Sys.Signal_handle (fun _ -> Atomic.set stopped true) in
      (try Sys.set_signal Sys.sigterm on_stop with Invalid_argument _ | Sys_error _ -> ());
      (try Sys.set_signal Sys.sigint on_stop with Invalid_argument _ | Sys_error _ -> ());
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ());
      let stop () = Atomic.get stopped in
      let tel =
        match telemetry with
        | None -> None
        | Some path -> (
          match Telemetry.start ~interval_s:telemetry_interval path with
          | Ok t -> Some t
          | Error msg ->
            Printf.eprintf "tilings: --telemetry %s: %s\n%!" path msg;
            exit 124)
      in
      (match (socket, tcp) with
      | None, None -> Serve.run_pipe ~stop cfg
      | socket_path, tcp_port -> Serve.run_daemon ~stop cfg ?socket_path ?tcp_port ());
      Obs.Log.info "serve.stop"
        [
          ("requests", `I (Obs.value (Obs.counter "serve.requests")));
          ("responses", `I (Obs.value (Obs.counter "serve.responses")));
        ];
      (* Drain-time snapshot: persist what this run learned so the next
         boot starts warm. Best-effort — a full disk must not turn a
         clean drain into a failure. *)
      (match cache_dir with
      | None -> ()
      | Some dir -> (
        match Cache_store.save ~dir with
        | Ok n -> Printf.eprintf "serve: cache: %d entries saved to %s\n%!" n (Cache_store.path ~dir)
        | Error msg -> Printf.eprintf "serve: cache: save failed: %s\n%!" msg));
      Option.iter Telemetry.stop tel;
      Obs.Log.disable ();
      (* Diagnostics go to stderr: stdout is the protocol stream. *)
      if metrics then Format.eprintf "%a@." Obs.pp (Obs.diff s0 (Obs.snapshot ()));
      Option.iter
        (fun file ->
          Obs.Trace.disable ();
          Obs.Trace.write_file file;
          Printf.eprintf "trace: %s spans (%s dropped) -> %s\n%!"
            (Obs.group_int (Obs.Trace.span_count ()))
            (Obs.group_int (Obs.Trace.dropped ()))
            file)
        trace;
      `Ok ()
    end
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of serving \
             stdin/stdout; concurrent connections are NDJSON sessions \
             batched fairly into the shared pool, each with its own \
             minted-id sequence.")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Also (or instead) listen on TCP 127.0.0.1:$(docv); 0 picks a \
             free port, announced on stderr. Combines with $(b,--socket); \
             both listeners feed the same batch loop.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the memo and compiled-plan caches: load a versioned \
             snapshot from $(docv) at boot (corrupt entries are rejected \
             individually; a missing file is a cold boot) and write one \
             back on drain, so a restarted daemon answers repeat shapes \
             without re-solving.")
  in
  let queue_arg =
    Arg.(
      value & opt int 512
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission-queue capacity: at most $(docv) requests are admitted \
             per batch cycle; further already-waiting lines are answered with \
             a structured $(b,overloaded) error instead of buffered without \
             bound.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for batch execution (default: PROJTILE_JOBS or the \
             recommended domain count). Resolved once at daemon start.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request budget applied when a request carries no \
             $(b,deadline_ms) field; 0 means no default deadline.")
  in
  let plans_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plans" ] ~docv:"FILE"
          ~doc:
            "Preload a plan bundle written by $(b,tilings compile -o) (schema \
             {\"v\":1,\"plans\":[...]}), so requests for those kernel shapes \
             are plan-served from the very first batch, with no LP warm-up.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Log a $(b,serve.slow_request) warning (with the request's \
             per-stage wall times) for every request taking at least $(docv) \
             milliseconds. Requires a --log sink to be visible.")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Write structured JSONL log events (ts, level, event, correlation \
             id, fields) to $(docv); $(b,-) means stderr (stdout carries the \
             protocol stream). Request events carry the same id as the \
             response line, minted $(b,srv-N) when the client sent none.")
  in
  let log_level_arg =
    let level =
      Arg.enum
        [
          ("debug", Obs.Log.Debug);
          ("info", Obs.Log.Info);
          ("warn", Obs.Log.Warn);
          ("error", Obs.Log.Error);
        ]
    in
    Arg.(
      value & opt level Obs.Log.Info
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Minimum level written to the --log sink: $(b,debug) (adds \
             per-batch and per-pipeline-stage events), $(b,info), $(b,warn), \
             $(b,error).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running analysis daemon: newline-delimited JSON requests in, one \
          JSON response per request in arrival order; batches concurrent \
          requests into one parallel sweep over a warm memo cache")
    Term.(
      ret
        (const run $ socket_arg $ tcp_arg $ cache_dir_arg $ queue_arg $ jobs_arg
       $ deadline_arg $ plans_arg $ slow_ms_arg $ log_arg $ log_level_arg
       $ telemetry_arg $ telemetry_interval_arg $ metrics_arg $ trace_arg))

(* The distributed-memory scenario class as a one-shot command. The
   printed "partition" object is Partition_solve.to_json verbatim — the
   same bytes a serve op:"partition" response embeds, which is what the
   CLI/serve byte-identity test compares. Typed failures exit with their
   stable codes: unfactorable_p 12, network_model_invalid 13,
   cache_too_small 4, shape_too_large 11. *)
let partition_cmd =
  let run kernel procs m_local net validate jobs metrics trace =
    with_obs metrics trace
    @@ fun () ->
    match resolve_named kernel with
    | Error msg -> fail "%s" msg
    | Ok spec -> (
      let net =
        match net with
        | None | Some "words" -> Ok Partition_solve.Words
        | Some s -> (
          match String.split_on_char ',' s with
          | [ a; b ] -> (
            match (Rat.of_string_opt a, Rat.of_string_opt b) with
            | Some alpha, Some beta -> Ok (Partition_solve.Alpha_beta { alpha; beta })
            | _ ->
              Error
                (Engine_error.Network_model_invalid
                   (Printf.sprintf "cannot parse %S as ALPHA,BETA rationals" s)))
          | _ ->
            Error
              (Engine_error.Network_model_invalid
                 (Printf.sprintf "unknown network model %S (words, or ALPHA,BETA)" s)))
      in
      match net with
      | Error e -> fail_error e
      | Ok net -> (
        match Engine.partition_checked spec ~p:procs ~m_local ~net with
        | Error e -> fail_error e
        | Ok sol ->
          let validation =
            if not validate then ""
            else
              match Engine.partition_validate ?jobs spec sol with
              | Error e -> fail_error e
              | Ok v ->
                Printf.sprintf
                  ",\"validation\":{\"matches\":%b,\"simulated_words\":\"%s\",\"groups\":%d}"
                  v.Pipeline.pv_matches
                  (Bigint.to_string v.Pipeline.pv_max_words)
                  (List.length v.Pipeline.pv_groups)
          in
          Printf.printf "{\"v\":2,\"partition\":%s%s}\n"
            (Partition_solve.to_json sol) validation;
          `Ok ()))
  in
  let kernel_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "k"; "kernel" ] ~docv:"KERNEL"
          ~doc:"Kernel: preset name, alias, unique prefix, or one-line DSL.")
  in
  let procs_arg =
    Arg.(value & opt int 8 & info [ "p"; "procs" ] ~docv:"P" ~doc:"Number of processors.")
  in
  let mlocal_arg =
    Arg.(
      value & opt int 4096
      & info [ "M"; "memory" ] ~docv:"WORDS"
          ~doc:"Per-processor fast-memory size in words.")
  in
  let net_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "net" ] ~docv:"MODEL"
          ~doc:
            "Network cost model: $(b,words) (default, minimize per-processor \
             words) or $(b,ALPHA,BETA) rationals (minimize alpha*messages + \
             beta*words, e.g. $(b,--net 100,1) or $(b,--net 1/2,3)).")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Also execute the P-processor schedule on the worker pool (one \
             domain per distinct block shape) and append a \"validation\" \
             object asserting the simulated per-processor words equal the \
             model exactly.")
  in
  let jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains for --validate.")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:
         "Optimal processor grid, per-processor block and local tile for a \
          distributed-memory machine (Section 7)")
    Term.(
      ret
        (const run $ kernel_arg $ procs_arg $ mlocal_arg $ net_arg $ validate_arg
       $ jobs_arg $ metrics_arg $ trace_arg))

let codegen_cmd =
  let run kernel preset m lang untiled metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      let lang = match lang with `C -> Codegen.C | `OCaml -> Codegen.OCaml in
      if untiled then begin
        print_string (Codegen.emit_untiled ~lang spec);
        `Ok ()
      end
      else if m < Spec.num_arrays spec then fail "cache too small for this kernel"
      else begin
        let tile = Engine.tile_shared spec ~m in
        print_string (Codegen.emit ~lang spec ~tile);
        `Ok ()
      end)
  in
  let lang_arg =
    Arg.(value & opt (enum [ ("c", `C); ("ocaml", `OCaml) ]) `C
           & info [ "lang" ] ~docv:"LANG" ~doc:"Target language: $(b,c) or $(b,ocaml).")
  in
  let untiled_arg =
    Arg.(value & flag & info [ "untiled" ] ~doc:"Emit the nest as written, without tiling.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Emit compilable source for the communication-optimal tiled nest")
    Term.(
      ret
        (const run $ kernel_arg $ preset_arg $ cache_arg $ lang_arg $ untiled_arg
       $ metrics_arg $ trace_arg))

let hierarchy_cmd =
  let run kernel preset caps metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      match caps with
      | [] -> fail "give at least one cache level with --levels"
      | _ ->
        let capacities = Array.of_list caps in
        let ok = ref true in
        Array.iteri
          (fun k c ->
            if c < Spec.num_arrays spec || (k > 0 && c <= capacities.(k - 1)) then ok := false)
          capacities;
        if not !ok then fail "levels must be strictly increasing and large enough"
        else
          match simulable spec with
          | Error msg -> fail "%s" msg
          | Ok () ->
            let h = Engine.hierarchy spec ~capacities in
            Format.printf "%a@." Spec.pp spec;
            List.iteri
              (fun k t ->
                Format.printf "level %d (M = %d words): tile %a@." (k + 1) capacities.(k)
                  (Tiling.pp spec) t)
              h.Pipeline.htiles;
            Array.iteri
              (fun k w ->
                let dest =
                  if k = Array.length capacities - 1 then "memory"
                  else Printf.sprintf "L%d" (k + 2)
                in
                Format.printf "traffic L%d -> %s: %d words@." (k + 1) dest w)
              h.Pipeline.hresult.Executor.boundary_words;
            `Ok ())
  in
  let levels_arg =
    Arg.(value & opt (list int) [ 512; 16384 ]
           & info [ "levels" ] ~docv:"M1,M2,.."
               ~doc:"Cache capacities in words, fastest first (strictly increasing).")
  in
  Cmd.v
    (Cmd.info "hierarchy"
       ~doc:"Nested tiling for a multi-level memory hierarchy, with simulated traffic")
    Term.(ret (const run $ kernel_arg $ preset_arg $ levels_arg $ metrics_arg $ trace_arg))

let regions_cmd =
  let run kernel preset metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      match Closed_form.compute spec with
      | cf ->
        Format.printf "%a@.f(beta) = %a@.@." Spec.pp spec Closed_form.pp cf;
        List.iter
          (fun r -> Format.printf "%a@.@." (Closed_form.pp_region ~loops:spec.Spec.loops) r)
          (Closed_form.regions cf);
        `Ok ()
      | exception (Invalid_argument _ as exn) -> fail_typed_exn exn)
  in
  Cmd.v
    (Cmd.info "regions"
       ~doc:"Critical regions of the piecewise-linear tile exponent (multiparametric view)")
    Term.(ret (const run $ kernel_arg $ preset_arg $ metrics_arg $ trace_arg))

let top_cmd =
  let run file interval once window =
    if interval <= 0.0 then fail "--interval must be positive"
    else if window < 2 then fail "--window must be at least 2"
    else begin
      (* Tail the JSONL trail by byte offset: each pass reads only what
         the exporter appended since the last one, carrying any partial
         final line to the next pass. A shrinking file (rotation,
         truncation) restarts the tail from the top. *)
      let samples = ref [] (* newest first, trimmed to the window *) in
      let carry = Buffer.create 256 in
      let offset = ref 0 in
      let read_more () =
        match open_in_bin file with
        | exception Sys_error _ -> false
        | ic ->
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let len = in_channel_length ic in
              if len < !offset then begin
                offset := 0;
                Buffer.clear carry
              end;
              if len > !offset then begin
                seek_in ic !offset;
                let fresh = really_input_string ic (len - !offset) in
                offset := len;
                Buffer.add_string carry fresh;
                let data = Buffer.contents carry in
                Buffer.clear carry;
                let rec go = function
                  | [] -> ()
                  | [ partial ] -> Buffer.add_string carry partial
                  | line :: rest ->
                    (match Dashboard.parse_line line with
                    | Ok s -> samples := s :: !samples
                    | Error _ -> () (* torn or foreign line: skip *));
                    go rest
                in
                go (String.split_on_char '\n' data);
                samples := List.filteri (fun i _ -> i < window) !samples
              end;
              true)
      in
      let frame () = Dashboard.render (List.rev !samples) in
      if once then
        if not (read_more ()) then fail "cannot read %s" file
        else begin
          print_string (frame ());
          `Ok ()
        end
      else begin
        let stopped = Atomic.make false in
        let on_stop = Sys.Signal_handle (fun _ -> Atomic.set stopped true) in
        (try Sys.set_signal Sys.sigterm on_stop with Invalid_argument _ | Sys_error _ -> ());
        (try Sys.set_signal Sys.sigint on_stop with Invalid_argument _ | Sys_error _ -> ());
        while not (Atomic.get stopped) do
          let readable = read_more () in
          (* ANSI home + clear; plain enough for any terminal. *)
          print_string "\027[H\027[2J";
          print_string (frame ());
          if not readable then Printf.printf "(waiting for %s)\n" file;
          flush stdout;
          if not (Atomic.get stopped) then Thread.delay interval
        done;
        `Ok ()
      end
    end
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Telemetry JSONL trail to tail — the file a running daemon is \
             writing via $(b,serve --telemetry FILE).")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period (default 1s).")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Render a single frame from the current contents and exit \
             (no screen clearing) — for scripts and CI.")
  in
  let window_arg =
    Arg.(
      value & opt int 60
      & info [ "window" ] ~docv:"N"
          ~doc:"Number of recent samples kept for sparklines (default 60).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a telemetry trail: counters as rates, \
          gauges with sparklines, timer p50/p99 columns, refreshed in place")
    Term.(ret (const run $ file_arg $ interval_arg $ once_arg $ window_arg))

let presets_cmd =
  let run metrics trace =
    with_obs metrics trace
    @@ fun () ->
    List.iter
      (fun (name, spec) -> Format.printf "%-20s %a@." name Spec.pp spec)
      preset_specs;
    `Ok ()
  in
  Cmd.v (Cmd.info "presets" ~doc:"List the stock kernels")
    Term.(ret (const run $ metrics_arg $ trace_arg))

let () =
  let doc = "communication-optimal tilings for projective nested loops (Dinh & Demmel, SPAA 2020)" in
  let info = Cmd.info "tilings" ~version:"1.2.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            analyze_cmd;
            lower_bound_cmd;
            tile_cmd;
            closed_form_cmd;
            compile_cmd;
            regions_cmd;
            simulate_cmd;
            sweep_cmd;
            serve_cmd;
            profile_cmd;
            hierarchy_cmd;
            partition_cmd;
            codegen_cmd;
            presets_cmd;
            top_cmd;
          ]))
