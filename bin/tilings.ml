(* Command-line interface to the tiling library, built on the unified
   Engine pipeline (lib/engine): every subcommand is a thin veneer that
   builds a Pipeline request and renders the Report.

   Examples:

     tilings analyze -k "i=1024, j=1024, k=8 : C[i,k] += A[i,j]*B[j,k]" -m 4096
     tilings lower-bound --preset matvec -m 1024
     tilings tile -k "x=4096, y=4096 : A[x] += B[x] * C[y]" -m 256
     tilings closed-form --preset matmul
     tilings simulate --preset matmul -m 512 --schedule optimal --policy lru
     tilings sweep --preset matmul -m 256,1024,4096 --schedules optimal,classic
     tilings profile mm --mem 4096 --iters 50
     tilings partition --preset matmul -m 4096 --procs 8
     tilings presets

   Observability: every subcommand takes --metrics (print the counter /
   timer-histogram tables for this invocation) and --trace FILE (write a
   Chrome trace-event JSON of the run, loadable in Perfetto or
   chrome://tracing, with one lane per Pool worker domain). *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Kernel selection                                                   *)
(* ------------------------------------------------------------------ *)

let preset_specs = Kernels.all ()

let resolve_spec kernel preset =
  match (kernel, preset) with
  | Some dsl, None -> (
    match Parser.parse dsl with
    | Ok s -> Ok s
    | Error e -> Error (Printf.sprintf "cannot parse kernel: %s" (Parser.string_of_error e)))
  | None, Some name -> (
    match List.assoc_opt name preset_specs with
    | Some s -> Ok s
    | None ->
      Error
        (Printf.sprintf "unknown preset %S (try: %s)" name
           (String.concat ", " (List.map fst preset_specs))))
  | Some _, Some _ -> Error "give either --kernel or --preset, not both"
  | None, None -> Error "a kernel is required: --kernel \"<dsl>\" or --preset <name>"

(* Shorthands accepted where a kernel is named positionally (profile). *)
let preset_aliases =
  [
    ("mm", "matmul");
    ("mv", "matvec");
    ("conv", "pointwise_conv");
    ("fc", "fully_connected");
    ("bmm", "batched_matmul");
  ]

(* A positional kernel: DSL if it contains ':', otherwise a preset name,
   alias, or unique preset-name prefix. *)
let resolve_named name =
  if String.contains name ':' then resolve_spec (Some name) None
  else
    let canonical =
      match List.assoc_opt name preset_aliases with Some n -> n | None -> name
    in
    match List.assoc_opt canonical preset_specs with
    | Some s -> Ok s
    | None -> (
      match
        List.filter (fun (n, _) -> String.starts_with ~prefix:canonical n) preset_specs
      with
      | [ (_, s) ] -> Ok s
      | [] ->
        Error
          (Printf.sprintf "unknown kernel %S (try: %s)" name
             (String.concat ", " (List.map fst preset_specs)))
      | multiple ->
        Error
          (Printf.sprintf "ambiguous kernel %S (matches: %s)" name
             (String.concat ", " (List.map fst multiple))))

let kernel_arg =
  let doc =
    "Kernel in the one-line DSL, e.g. \"i = 64, j = 64, k = 8 : C[i,k] += A[i,j] * B[j,k]\"."
  in
  Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~docv:"DSL" ~doc)

let preset_arg =
  let doc = "Use a stock kernel; see the $(b,presets) command for the list." in
  Arg.(value & opt (some string) None & info [ "p"; "preset" ] ~docv:"NAME" ~doc)

let cache_arg =
  let doc = "Fast-memory (cache) size in words." in
  Arg.(value & opt int 4096 & info [ "m"; "cache" ] ~docv:"WORDS" ~doc)

let fail fmt = Printf.ksprintf (fun s -> `Error (false, s)) fmt

let pp_bounds spec =
  String.concat " x " (List.map string_of_int (Array.to_list spec.Spec.bounds))

let with_spec kernel preset f =
  match resolve_spec kernel preset with
  | Error msg -> fail "%s" msg
  | Ok spec -> (
    (* Library-level aborts (e.g. a bound whose exact footprint exceeds
       native int range reaching Bigint.to_int) become a structured CLI
       error naming the kernel and its bounds, not an uncaught exception. *)
    try f spec
    with Failure msg -> fail "kernel %s (bounds %s): %s" spec.Spec.name (pp_bounds spec) msg)

let simulable spec =
  (* Exact comparison: the native product wraps (to 0 for 2^21-cubed
     bounds) and would sail straight past this guard. *)
  let n = Spec.iteration_count_big spec in
  if Bigint.compare n (Bigint.of_int 20_000_000) > 0 then
    Error
      (Printf.sprintf
         "kernel too large to simulate (%s iterations > 2*10^7); shrink the bounds"
         (Bigint.to_string n))
  else Ok ()

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the observability tables (solver counters, cache/memo \
           hit rates, stage timers with p50/p90/p99 latencies) for this \
           invocation. The $(b,sweep) command instead wraps its JSON as \
           {\"reports\": ..., \"obs\": ...}.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans (pipeline stages, simplex solves, cache \
           simulations, pool tasks) and write a Chrome trace-event JSON \
           file on success — load it in Perfetto (ui.perfetto.dev) or \
           chrome://tracing. Parallel sweeps render one lane per worker \
           domain.")

(* Wraps a command body: enables tracing up front when asked, and on
   success appends the per-invocation metrics delta and/or writes the
   trace file. The snapshot diff keeps earlier in-process work (there is
   none in the CLI, but the engine does warm registry handles at module
   init) out of the emitted numbers. *)
let with_obs metrics trace body =
  if trace <> None then begin
    Obs.Trace.enable ();
    Obs.Trace.set_lane_name "main"
  end;
  let s0 = Obs.snapshot () in
  let result = body () in
  (match result with
  | `Ok () ->
    if metrics then Format.printf "%a@." Obs.pp (Obs.diff s0 (Obs.snapshot ()));
    Option.iter
      (fun file ->
        Obs.Trace.disable ();
        Obs.Trace.write_file file;
        Printf.eprintf "trace: %s spans (%s dropped) -> %s\n%!"
          (Obs.group_int (Obs.Trace.span_count ()))
          (Obs.group_int (Obs.Trace.dropped ()))
          file)
      trace
  | _ -> ());
  result

(* ------------------------------------------------------------------ *)
(* Commands                                                           *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let run kernel preset m metrics trace =
    with_obs metrics trace (fun () ->
      with_spec kernel preset (fun spec ->
        if m < 2 then fail "cache must be at least 2 words"
        else begin
          Format.printf "%a@." Report.pp (Engine.analyze spec ~m);
          `Ok ()
        end))
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Lower bound, optimal tile, and attainment for a kernel")
    Term.(ret (const run $ kernel_arg $ preset_arg $ cache_arg $ metrics_arg $ trace_arg))

let lower_bound_cmd =
  let run kernel preset m metrics trace =
    with_obs metrics trace (fun () ->
      with_spec kernel preset (fun spec ->
        if m < 2 then fail "cache must be at least 2 words"
        else begin
          Format.printf "%a@.%a@." Spec.pp spec Lower_bound.pp_bound
            (Engine.lower_bound spec ~m);
          `Ok ()
        end))
  in
  Cmd.v
    (Cmd.info "lower-bound" ~doc:"Arbitrary-bounds communication lower bound (Theorem 2)")
    Term.(ret (const run $ kernel_arg $ preset_arg $ cache_arg $ metrics_arg $ trace_arg))

let tile_cmd =
  let run kernel preset m metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      if m < Spec.num_arrays spec then fail "cache too small for this kernel"
      else begin
        let r = Engine.analyze ~shared:true spec ~m in
        let sol = r.Report.lp in
        Format.printf "%a@." Spec.pp spec;
        Format.printf "LP (5.1) value: %a (tile cardinality M^%.4f)@." Rat.pp sol.Tiling.value
          (Rat.to_float sol.Tiling.value);
        Format.printf "lambda: [%s]@."
          (String.concat "; " (List.map Rat.to_string (Array.to_list sol.Tiling.lambda)));
        Format.printf "tile (paper model, M per array): %a  volume %d@." (Tiling.pp spec)
          r.Report.tile r.Report.tile_volume;
        (match r.Report.tile_shared with
        | Some shared ->
          Format.printf "tile (shared cache of M words):  %a  volume %d@." (Tiling.pp spec)
            shared (Tiling.volume shared)
        | None -> ());
        `Ok ()
      end)
  in
  Cmd.v
    (Cmd.info "tile" ~doc:"Communication-optimal rectangular tile (Section 5)")
    Term.(ret (const run $ kernel_arg $ preset_arg $ cache_arg $ metrics_arg $ trace_arg))

let closed_form_cmd =
  let run kernel preset metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      match Closed_form.compute spec with
      | cf ->
        Format.printf "%a@." Spec.pp spec;
        Format.printf
          "optimal tile cardinality = M^f with beta_i = log_M L_i and@.f(beta) = %a@."
          Closed_form.pp cf;
        `Ok ()
      | exception Invalid_argument msg -> fail "%s" msg)
  in
  Cmd.v
    (Cmd.info "closed-form"
       ~doc:"Piecewise-linear closed form of the tile exponent (Section 7)")
    Term.(ret (const run $ kernel_arg $ preset_arg $ metrics_arg $ trace_arg))

let schedule_conv =
  Arg.enum
    [ ("optimal", Engine.Optimal); ("classic", Engine.Classic); ("untiled", Engine.Untiled) ]

let policy_conv =
  Arg.enum [ ("lru", Policy.Lru); ("fifo", Policy.Fifo); ("opt", Policy.Opt) ]

let simulate_cmd =
  let run kernel preset m schedule policy metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      if m < Spec.num_arrays spec then fail "cache too small for this kernel"
      else
        match simulable spec with
        | Error msg -> fail "%s" msg
        | Ok () ->
          let r =
            Engine.analyze ~sims:[ Pipeline.sim ~policy schedule ] spec ~m
          in
          Format.printf "%a@." Spec.pp spec;
          List.iter
            (fun s -> Format.printf "%a@." (Report.pp_sim ~bound:r.Report.bound ~m) s)
            r.Report.sims;
          `Ok ())
  in
  let schedule_arg =
    Arg.(value & opt schedule_conv Engine.Optimal & info [ "schedule" ] ~docv:"SCHED"
           ~doc:"One of $(b,optimal), $(b,classic), $(b,untiled).")
  in
  let policy_arg =
    Arg.(value & opt policy_conv Policy.Lru & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Replacement policy: $(b,lru), $(b,fifo) or $(b,opt) (Belady).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the kernel on the cache simulator and count traffic")
    Term.(
      ret
        (const run $ kernel_arg $ preset_arg $ cache_arg $ schedule_arg $ policy_arg
       $ metrics_arg $ trace_arg))

let sweep_cmd =
  let run kernel preset ms schedules policies jobs timings metrics trace =
    with_obs false trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      match List.find_opt (fun m -> m < max 2 (Spec.num_arrays spec)) ms with
      | Some m -> fail "cache size %d too small for this kernel" m
      | None ->
        if ms = [] then fail "give at least one cache size with -m"
        else begin
          let sims =
            List.concat_map
              (fun sched -> List.map (fun policy -> Pipeline.sim ~policy sched) policies)
              schedules
          in
          match (if sims = [] then Ok () else simulable spec) with
          | Error msg -> fail "%s" msg
          | Ok () ->
            let reqs = List.map (fun m -> Pipeline.request ~sims ~shared:true spec ~m) ms in
            (* The obs section is the delta over this sweep alone, not
               process-lifetime totals. *)
            let s0 = Obs.snapshot () in
            let reports = Engine.sweep ?jobs reqs in
            let obs =
              if metrics then Some (Obs.to_json (Obs.diff s0 (Obs.snapshot ()))) else None
            in
            print_endline (Report.json_of_sweep ~timings ?obs reports);
            `Ok ()
        end)
  in
  let ms_arg =
    Arg.(value & opt (list int) [ 256; 1024; 4096 ]
           & info [ "m"; "cache" ] ~docv:"M1,M2,.."
               ~doc:"Cache sizes (words) to sweep over.")
  in
  let schedules_arg =
    Arg.(value & opt (list schedule_conv) []
           & info [ "schedules" ] ~docv:"S1,S2,.."
               ~doc:"Schedules to simulate at each point ($(b,optimal), $(b,classic), \
                     $(b,untiled)); empty for analysis only.")
  in
  let policies_arg =
    Arg.(value & opt (list policy_conv) [ Policy.Lru ]
           & info [ "policies" ] ~docv:"P1,P2,.."
               ~doc:"Replacement policies to cross with the schedules.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
           & info [ "jobs" ] ~docv:"N"
               ~doc:"Worker domains for the sweep (default: PROJTILE_JOBS or the \
                     recommended domain count).")
  in
  let timings_arg =
    Arg.(value & flag & info [ "timings" ] ~doc:"Include per-stage wall times in the JSON.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep cache sizes (and schedules/policies) in parallel; emit JSON reports")
    Term.(
      ret
        (const run $ kernel_arg $ preset_arg $ ms_arg $ schedules_arg $ policies_arg
       $ jobs_arg $ timings_arg $ metrics_arg $ trace_arg))

let profile_cmd =
  let run name m iters cold schedule policy jobs trace =
    with_obs false trace
    @@ fun () ->
    match resolve_named name with
    | Error msg -> fail "%s" msg
    | Ok spec -> (
      try
        if iters < 1 then fail "need at least one iteration (--iters)"
        else if m < max 2 (Spec.num_arrays spec) then fail "cache too small for this kernel"
        else begin
          let sims =
            match schedule with None -> [] | Some s -> [ Pipeline.sim ~policy s ]
          in
          match (if sims = [] then Ok () else simulable spec) with
          | Error msg -> fail "%s" msg
          | Ok () ->
            let t_iter = Obs.timer "profile.iteration" in
            let s0 = Obs.snapshot () in
            let reqs =
              List.init iters (fun _ -> Pipeline.request ~sims ~shared:true spec ~m)
            in
            (match jobs with
            | None ->
              List.iter
                (fun req ->
                  if cold then Engine.reset_caches ();
                  Obs.time t_iter (fun () -> ignore (Pipeline.run req)))
                reqs
            | Some jobs ->
              (* Parallel profiling: iteration latency includes queue
                 contention; that is the point of --jobs. *)
              if cold then Engine.reset_caches ();
              ignore
                (Pool.map_list ~jobs
                   (fun req -> Obs.time t_iter (fun () -> ignore (Pipeline.run req)))
                   reqs));
            let d = Obs.diff s0 (Obs.snapshot ()) in
            Format.printf "profile: %s  (bounds %s)  m = %d  iters = %d%s%s@." spec.Spec.name
              (pp_bounds spec) m iters
              (match schedule with None -> "  (analysis only)" | Some _ -> "  (with simulation)")
              (if cold then "  (cold: caches reset per iteration)" else "");
            (match List.assoc_opt "profile.iteration" d.Obs.stimers with
            | Some t ->
              let dd = t.Obs.tdist in
              Format.printf "@.%-12s %10s %10s %10s %10s %10s %10s@." "" "count" "mean"
                "p50" "p90" "p99" "max";
              Format.printf "%-12s %10s %10s %10s %10s %10s %10s@." "iteration"
                (Obs.group_int dd.Obs.dcount)
                (Obs.pp_dur_ns (Obs.mean_ns dd))
                (Obs.pp_dur_ns (Obs.percentile dd 50.0))
                (Obs.pp_dur_ns (Obs.percentile dd 90.0))
                (Obs.pp_dur_ns (Obs.percentile dd 99.0))
                (Obs.pp_dur_ns (float_of_int dd.Obs.dmax_ns))
            | None -> ());
            Format.printf "@.%a@." Obs.pp d;
            `Ok ()
        end
      with Failure msg -> fail "kernel %s (bounds %s): %s" spec.Spec.name (pp_bounds spec) msg)
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KERNEL"
          ~doc:
            "Kernel to profile: a preset name ($(b,matmul)), a shorthand \
             ($(b,mm), $(b,mv), $(b,conv), $(b,fc), $(b,bmm)), a unique \
             preset-name prefix, or a one-line DSL string.")
  in
  let mem_arg =
    let doc = "Fast-memory (cache) size in words." in
    Arg.(value & opt int 4096 & info [ "m"; "mem"; "cache" ] ~docv:"WORDS" ~doc)
  in
  let iters_arg =
    Arg.(value & opt int 50 & info [ "iters" ] ~docv:"N" ~doc:"Number of pipeline runs.")
  in
  let cold_arg =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Reset the engine memo caches before each iteration, so every \
             run pays the full LP/analysis cost instead of profiling the \
             memoized path.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some schedule_conv) None
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:
            "Also simulate this schedule each iteration ($(b,optimal), \
             $(b,classic), $(b,untiled)); default is analysis only.")
  in
  let policy_arg =
    Arg.(value & opt policy_conv Policy.Lru & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Replacement policy when --schedule is given.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run the iterations through the worker pool with N domains \
             instead of sequentially; iteration latency then includes \
             queue wait.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a kernel through the pipeline repeatedly and print latency \
          percentiles (p50/p90/p99) per stage")
    Term.(
      ret
        (const run $ name_arg $ mem_arg $ iters_arg $ cold_arg $ schedule_arg $ policy_arg
       $ jobs_arg $ trace_arg))

let partition_cmd =
  let run kernel preset procs metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      if procs < 1 then fail "need at least one processor"
      else begin
        Format.printf "%a@." Spec.pp spec;
        (match Comm_model.best_grid spec ~p:procs with
        | None -> Format.printf "P = %d does not factor within the loop bounds@." procs
        | Some g ->
          Format.printf "best rectangular grid for P = %d: %s@." procs
            (String.concat " x " (Array.to_list (Array.map string_of_int g.Comm_model.grid)));
          Format.printf "per-processor block: %s   communication: %s words@."
            (String.concat " x " (Array.to_list (Array.map string_of_int g.Comm_model.block)))
            (Bigint.to_string g.Comm_model.words);
          Format.printf "per-processor lower bound: %.0f words@."
            (Comm_model.lower_bound spec ~p:procs));
        `Ok ()
      end)
  in
  let procs_arg =
    Arg.(value & opt int 8 & info [ "procs" ] ~docv:"P" ~doc:"Number of processors.")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Distributed-memory rectangular partition and its lower bound (Section 7)")
    Term.(ret (const run $ kernel_arg $ preset_arg $ procs_arg $ metrics_arg $ trace_arg))

let codegen_cmd =
  let run kernel preset m lang untiled metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      let lang = match lang with `C -> Codegen.C | `OCaml -> Codegen.OCaml in
      if untiled then begin
        print_string (Codegen.emit_untiled ~lang spec);
        `Ok ()
      end
      else if m < Spec.num_arrays spec then fail "cache too small for this kernel"
      else begin
        let tile = Engine.tile_shared spec ~m in
        print_string (Codegen.emit ~lang spec ~tile);
        `Ok ()
      end)
  in
  let lang_arg =
    Arg.(value & opt (enum [ ("c", `C); ("ocaml", `OCaml) ]) `C
           & info [ "lang" ] ~docv:"LANG" ~doc:"Target language: $(b,c) or $(b,ocaml).")
  in
  let untiled_arg =
    Arg.(value & flag & info [ "untiled" ] ~doc:"Emit the nest as written, without tiling.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Emit compilable source for the communication-optimal tiled nest")
    Term.(
      ret
        (const run $ kernel_arg $ preset_arg $ cache_arg $ lang_arg $ untiled_arg
       $ metrics_arg $ trace_arg))

let hierarchy_cmd =
  let run kernel preset caps metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      match caps with
      | [] -> fail "give at least one cache level with --levels"
      | _ ->
        let capacities = Array.of_list caps in
        let ok = ref true in
        Array.iteri
          (fun k c ->
            if c < Spec.num_arrays spec || (k > 0 && c <= capacities.(k - 1)) then ok := false)
          capacities;
        if not !ok then fail "levels must be strictly increasing and large enough"
        else
          match simulable spec with
          | Error msg -> fail "%s" msg
          | Ok () ->
            let h = Engine.hierarchy spec ~capacities in
            Format.printf "%a@." Spec.pp spec;
            List.iteri
              (fun k t ->
                Format.printf "level %d (M = %d words): tile %a@." (k + 1) capacities.(k)
                  (Tiling.pp spec) t)
              h.Pipeline.htiles;
            Array.iteri
              (fun k w ->
                let dest =
                  if k = Array.length capacities - 1 then "memory"
                  else Printf.sprintf "L%d" (k + 2)
                in
                Format.printf "traffic L%d -> %s: %d words@." (k + 1) dest w)
              h.Pipeline.hresult.Executor.boundary_words;
            `Ok ())
  in
  let levels_arg =
    Arg.(value & opt (list int) [ 512; 16384 ]
           & info [ "levels" ] ~docv:"M1,M2,.."
               ~doc:"Cache capacities in words, fastest first (strictly increasing).")
  in
  Cmd.v
    (Cmd.info "hierarchy"
       ~doc:"Nested tiling for a multi-level memory hierarchy, with simulated traffic")
    Term.(ret (const run $ kernel_arg $ preset_arg $ levels_arg $ metrics_arg $ trace_arg))

let regions_cmd =
  let run kernel preset metrics trace =
    with_obs metrics trace
    @@ fun () ->
    with_spec kernel preset (fun spec ->
      match Closed_form.compute spec with
      | cf ->
        Format.printf "%a@.f(beta) = %a@.@." Spec.pp spec Closed_form.pp cf;
        List.iter
          (fun r -> Format.printf "%a@.@." (Closed_form.pp_region ~loops:spec.Spec.loops) r)
          (Closed_form.regions cf);
        `Ok ()
      | exception Invalid_argument msg -> fail "%s" msg)
  in
  Cmd.v
    (Cmd.info "regions"
       ~doc:"Critical regions of the piecewise-linear tile exponent (multiparametric view)")
    Term.(ret (const run $ kernel_arg $ preset_arg $ metrics_arg $ trace_arg))

let presets_cmd =
  let run metrics trace =
    with_obs metrics trace
    @@ fun () ->
    List.iter
      (fun (name, spec) -> Format.printf "%-20s %a@." name Spec.pp spec)
      preset_specs;
    `Ok ()
  in
  Cmd.v (Cmd.info "presets" ~doc:"List the stock kernels")
    Term.(ret (const run $ metrics_arg $ trace_arg))

let () =
  let doc = "communication-optimal tilings for projective nested loops (Dinh & Demmel, SPAA 2020)" in
  let info = Cmd.info "tilings" ~version:"1.2.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            analyze_cmd;
            lower_bound_cmd;
            tile_cmd;
            closed_form_cmd;
            regions_cmd;
            simulate_cmd;
            sweep_cmd;
            profile_cmd;
            hierarchy_cmd;
            partition_cmd;
            codegen_cmd;
            presets_cmd;
          ]))
