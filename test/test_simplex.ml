(* Tests for the exact two-phase simplex solver: hand-checked LPs,
   degenerate and pathological cases, and duality properties on random
   feasible/bounded programs. *)

let r = Rat.of_int
let rr = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal

let solve_opt lp = match Simplex.solve lp with Simplex.Optimal s -> s | _ -> Alcotest.fail "expected Optimal"

let check_strong_duality lp (s : Simplex.solution) =
  Alcotest.check rat "strong duality" s.Simplex.objective (Simplex.dual_objective lp s.Simplex.dual);
  Alcotest.(check bool) "primal feasible" true (Lp.satisfies lp s.Simplex.primal);
  Alcotest.check rat "objective consistent" s.Simplex.objective
    (Lp.eval_objective lp s.Simplex.primal)

(* ------------------------------------------------------------------ *)
(* Hand-checked problems                                              *)
(* ------------------------------------------------------------------ *)

let test_textbook_max () =
  let lp =
    Lp.make Lp.Maximize [| r 3; r 5 |]
      [
        Lp.constr [| r 1; r 0 |] Lp.Le (r 4);
        Lp.constr [| r 0; r 2 |] Lp.Le (r 12);
        Lp.constr [| r 3; r 2 |] Lp.Le (r 18);
      ]
  in
  let s = solve_opt lp in
  Alcotest.check rat "objective" (r 36) s.Simplex.objective;
  Alcotest.check rat "x1" (r 2) s.Simplex.primal.(0);
  Alcotest.check rat "x2" (r 6) s.Simplex.primal.(1);
  check_strong_duality lp s

let test_fractional_optimum () =
  let lp =
    Lp.make Lp.Maximize [| r 1; r 1 |]
      [
        Lp.constr [| r 1; r 2 |] Lp.Le (r 4);
        Lp.constr [| r 4; r 2 |] Lp.Le (r 12);
      ]
  in
  let s = solve_opt lp in
  Alcotest.check rat "objective 10/3" (rr 10 3) s.Simplex.objective;
  check_strong_duality lp s

let test_min_with_ge () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 1 -> x=4,y=0? cost 8; or x=1,y=3 cost 11.
     Optimum x=4, y=0, objective 8. *)
  let lp =
    Lp.make Lp.Minimize [| r 2; r 3 |]
      [ Lp.constr [| r 1; r 1 |] Lp.Ge (r 4); Lp.constr [| r 1; r 0 |] Lp.Ge (r 1) ]
  in
  let s = solve_opt lp in
  Alcotest.check rat "objective" (r 8) s.Simplex.objective;
  check_strong_duality lp s

let test_equality_constraints () =
  let lp =
    Lp.make Lp.Minimize [| r 1; r 2; r 3 |]
      [
        Lp.constr [| r 1; r 1; r 1 |] Lp.Eq (r 10);
        Lp.constr [| r 1; r (-1); r 0 |] Lp.Eq (r 2);
      ]
  in
  let s = solve_opt lp in
  (* Cheapest: put everything in x1/x2: x1 - x2 = 2, x1 + x2 = 10 -> (6,4,0), cost 14 *)
  Alcotest.check rat "objective" (r 14) s.Simplex.objective;
  check_strong_duality lp s

let test_infeasible () =
  let lp =
    Lp.make Lp.Minimize [| r 1 |]
      [ Lp.constr [| r 1 |] Lp.Le (r 1); Lp.constr [| r 1 |] Lp.Ge (r 2) ]
  in
  (match Simplex.solve lp with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible");
  (* equality version *)
  let lp2 =
    Lp.make Lp.Maximize [| r 1; r 1 |]
      [
        Lp.constr [| r 1; r 1 |] Lp.Eq (r 1);
        Lp.constr [| r 1; r 1 |] Lp.Eq (r 2);
      ]
  in
  match Simplex.solve lp2 with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible (eq)"

let test_unbounded () =
  let lp = Lp.make Lp.Maximize [| r 1; r 1 |] [ Lp.constr [| r 1; r (-1) |] Lp.Le (r 1) ] in
  match Simplex.solve lp with
  | Simplex.Unbounded { direction } ->
    (* The ray must not decrease the objective and must preserve
       feasibility from any feasible point. *)
    Alcotest.(check bool) "ray improves" true (Rat.sign (Vec.sum direction) > 0);
    let x0 = [| Rat.zero; Rat.zero |] in
    let step k = Array.mapi (fun i x -> Rat.add x (Rat.mul (r k) direction.(i))) x0 in
    Alcotest.(check bool) "ray stays feasible" true
      (Lp.satisfies lp (step 5) && Lp.satisfies lp (step 50))
  | _ -> Alcotest.fail "expected Unbounded"

let test_degenerate_cycling () =
  (* Beale's classic cycling example — Bland's rule must terminate. *)
  let lp =
    Lp.make Lp.Minimize
      [| rr (-3) 4; r 150; rr (-1) 50; r 6 |]
      [
        Lp.constr [| rr 1 4; r (-60); rr (-1) 25; r 9 |] Lp.Le (r 0);
        Lp.constr [| rr 1 2; r (-90); rr (-1) 50; r 3 |] Lp.Le (r 0);
        Lp.constr [| r 0; r 0; r 1; r 0 |] Lp.Le (r 1);
      ]
  in
  let s = solve_opt lp in
  Alcotest.check rat "beale optimum" (rr (-1) 20) s.Simplex.objective;
  check_strong_duality lp s

let test_zero_rhs_degenerate () =
  let lp =
    Lp.make Lp.Maximize [| r 1; r 1 |]
      [
        Lp.constr [| r 1; r (-1) |] Lp.Le (r 0);
        Lp.constr [| r (-1); r 1 |] Lp.Le (r 0);
        Lp.constr [| r 1; r 1 |] Lp.Le (r 2);
      ]
  in
  let s = solve_opt lp in
  Alcotest.check rat "objective" (r 2) s.Simplex.objective;
  Alcotest.check rat "x1 = x2" s.Simplex.primal.(0) s.Simplex.primal.(1)

let test_no_constraints () =
  let lp = Lp.make Lp.Minimize [| r 1; r 5 |] [] in
  let s = solve_opt lp in
  Alcotest.check rat "trivial optimum" Rat.zero s.Simplex.objective;
  let lp2 = Lp.make Lp.Maximize [| r 1 |] [] in
  match Simplex.solve lp2 with
  | Simplex.Unbounded _ -> ()
  | _ -> Alcotest.fail "expected Unbounded"

let test_redundant_equalities () =
  (* Duplicated equality leaves an artificial basic at zero; the solver
     must survive the redundant row. *)
  let lp =
    Lp.make Lp.Maximize [| r 1; r 1 |]
      [
        Lp.constr [| r 1; r 1 |] Lp.Eq (r 3);
        Lp.constr [| r 2; r 2 |] Lp.Eq (r 6);
      ]
  in
  let s = solve_opt lp in
  Alcotest.check rat "objective" (r 3) s.Simplex.objective

let test_negative_rhs_duals () =
  (* min x1 s.t. -x1 <= -5 (i.e. x1 >= 5). Dual of the written row is -1. *)
  let lp = Lp.make Lp.Minimize [| r 1 |] [ Lp.constr [| r (-1) |] Lp.Le (r (-5)) ] in
  let s = solve_opt lp in
  Alcotest.check rat "objective" (r 5) s.Simplex.objective;
  Alcotest.check rat "dual" (r (-1)) s.Simplex.dual.(0);
  check_strong_duality lp s

let test_solve_exn () =
  let lp = Lp.make Lp.Maximize [| r 1 |] [] in
  Alcotest.check_raises "unbounded raises" (Failure "Simplex.solve_exn: unbounded") (fun () ->
    ignore (Simplex.solve_exn lp))

let test_lp_validation () =
  Alcotest.check_raises "arity" (Invalid_argument "Lp.make: constraint 0 arity mismatch")
    (fun () -> ignore (Lp.make Lp.Minimize [| r 1 |] [ Lp.constr [| r 1; r 2 |] Lp.Le (r 1) ]))


(* ------------------------------------------------------------------ *)
(* Float-simplex foil                                                 *)
(* ------------------------------------------------------------------ *)

let test_float_agrees_on_textbook () =
  let lp =
    Lp.make Lp.Maximize [| r 3; r 5 |]
      [
        Lp.constr [| r 1; r 0 |] Lp.Le (r 4);
        Lp.constr [| r 0; r 2 |] Lp.Le (r 12);
        Lp.constr [| r 3; r 2 |] Lp.Le (r 18);
      ]
  in
  match Simplex_float.solve lp with
  | Simplex_float.Optimal s -> Alcotest.(check (float 1e-6)) "objective" 36.0 s.Simplex_float.objective
  | _ -> Alcotest.fail "expected Optimal"

let test_float_outcomes_match_exact () =
  (* On integer-coefficient problems with moderate values, the float
     solver should reach the exact optimum to ~1e-6. *)
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 200 do
    let n = 1 + Random.State.int rng 4 in
    let m = 1 + Random.State.int rng 4 in
    let coeff () = r (Random.State.int rng 11 - 5) in
    let constrs =
      List.init m (fun _ ->
        Lp.constr (Array.init n (fun _ -> coeff ())) Lp.Le (r (Random.State.int rng 20)))
      @ List.init n (fun i ->
          let c = Array.make n Rat.zero in
          c.(i) <- Rat.one;
          Lp.constr c Lp.Le (r 10))
    in
    let lp = Lp.make Lp.Maximize (Array.init n (fun _ -> coeff ())) constrs in
    match (Simplex.solve lp, Simplex_float.solve lp) with
    | Simplex.Optimal e, Simplex_float.Optimal f ->
      let exact = Rat.to_float e.Simplex.objective in
      if Float.abs (exact -. f.Simplex_float.objective) > 1e-6 *. (1.0 +. Float.abs exact) then
        Alcotest.failf "float %.12f vs exact %.12f" f.Simplex_float.objective exact
    | Simplex.Optimal _, _ -> Alcotest.fail "float solver missed a solvable problem"
    | _ -> Alcotest.fail "base problems are feasible and bounded by construction"
  done

let test_float_cannot_certify_exact_ties () =
  (* The design argument in one assertion: at beta3 = 1/2 the matmul
     tiling LP has two optimal faces meeting exactly; the exact solver
     returns 3/2 as a rational, the float solver only something within
     epsilon — downstream exact comparisons (Theorem 2's case split)
     are impossible with it. *)
  let spec = Kernels.matmul ~l1:4 ~l2:4 ~l3:4 in
  let beta = [| Rat.one; Rat.one; Rat.half |] in
  let exact = (Simplex.solve_exn (Hbl_lp.tiling spec ~beta)).Simplex.objective in
  Alcotest.(check bool) "exact is exactly 3/2" true (Rat.equal exact (rr 3 2));
  match Simplex_float.solve (Hbl_lp.tiling spec ~beta) with
  | Simplex_float.Optimal s ->
    (* float is close, but == 1.5 cannot be relied on in general *)
    Alcotest.(check (float 1e-9)) "float approximately" 1.5 s.Simplex_float.objective
  | _ -> Alcotest.fail "expected Optimal"

(* ------------------------------------------------------------------ *)
(* Basis certification                                                *)
(* ------------------------------------------------------------------ *)

let textbook_lp () =
  Lp.make Lp.Maximize [| r 3; r 5 |]
    [
      Lp.constr [| r 1; r 0 |] Lp.Le (r 4);
      Lp.constr [| r 0; r 2 |] Lp.Le (r 12);
      Lp.constr [| r 3; r 2 |] Lp.Le (r 18);
    ]

let test_certify_roundtrip () =
  let lp = textbook_lp () in
  let s = solve_opt lp in
  match Simplex.certify lp ~basis:s.Simplex.basis with
  | None -> Alcotest.fail "the solver's own optimal basis must certify"
  | Some c ->
    Alcotest.check rat "objective" s.Simplex.objective c.Simplex.objective;
    Array.iteri
      (fun i v -> Alcotest.check rat (Printf.sprintf "primal %d" i) v c.Simplex.primal.(i))
      s.Simplex.primal;
    Array.iteri
      (fun i v -> Alcotest.check rat (Printf.sprintf "dual %d" i) v c.Simplex.dual.(i))
      s.Simplex.dual

let test_certify_rejects_bad_bases () =
  let lp = textbook_lp () in
  let none name basis =
    match Simplex.certify lp ~basis with
    | None -> ()
    | Some _ -> Alcotest.failf "%s: expected None" name
  in
  none "wrong length" [| 0; 1 |];
  none "column out of range" [| 0; 1; 99 |];
  none "negative column" [| -1; 1; 2 |];
  none "duplicate columns" [| 2; 2; 3 |];
  (* all-slack basis: primal feasible (the origin) but not optimal for
     max 3x + 5y, so dual feasibility must fail *)
  none "feasible but suboptimal" [| 2; 3; 4 |]

(* ------------------------------------------------------------------ *)
(* Random-LP duality properties                                       *)
(* ------------------------------------------------------------------ *)

(* Random bounded-feasible problems: max c.x s.t. A x <= b with b >= 0
   (origin feasible) plus a box x_i <= 10 guaranteeing boundedness. *)
let gen_bounded_lp =
  QCheck.Gen.(
    let dim = int_range 1 5 in
    let coeff = map Rat.of_int (int_range (-5) 5) in
    dim >>= fun n ->
    int_range 1 5 >>= fun m ->
    list_size (return m)
      (pair (array_size (return n) coeff) (map Rat.of_int (int_range 0 20)))
    >>= fun rows ->
    array_size (return n) coeff >>= fun obj ->
    let constrs =
      List.map (fun (coeffs, rhs) -> Lp.constr coeffs Lp.Le rhs) rows
      @ List.init n (fun i ->
          let c = Array.make n Rat.zero in
          c.(i) <- Rat.one;
          Lp.constr c Lp.Le (Rat.of_int 10))
    in
    return (Lp.make Lp.Maximize obj constrs))

let arb_bounded_lp = QCheck.make ~print:(Format.asprintf "%a" Lp.pp) gen_bounded_lp

let props =
  [
    QCheck.Test.make ~name:"optimal => feasible + duality" ~count:300 arb_bounded_lp
      (fun lp ->
        match Simplex.solve lp with
        | Simplex.Optimal s ->
          Lp.satisfies lp s.Simplex.primal
          && Rat.equal s.Simplex.objective (Lp.eval_objective lp s.Simplex.primal)
          && Rat.equal s.Simplex.objective (Simplex.dual_objective lp s.Simplex.dual)
        | Simplex.Unbounded _ | Simplex.Infeasible -> false
        (* origin feasible & box-bounded: must be Optimal *));
    QCheck.Test.make ~name:"dual feasibility (max form)" ~count:300 arb_bounded_lp
      (fun lp ->
        match Simplex.solve lp with
        | Simplex.Optimal s ->
          (* For max c.x, A x <= b: duals y >= 0 and A^T y >= c. *)
          let constrs = Lp.constraints lp in
          let n = Lp.num_vars lp in
          Array.for_all (fun y -> Rat.sign y >= 0) s.Simplex.dual
          && List.for_all
               (fun j ->
                 let col =
                   Array.to_list (Array.mapi (fun i (c : Lp.constr) -> Rat.mul s.Simplex.dual.(i) c.Lp.coeffs.(j)) constrs)
                 in
                 let aty = List.fold_left Rat.add Rat.zero col in
                 Rat.compare aty (Lp.objective lp).(j) >= 0)
               (List.init n (fun j -> j))
        | _ -> false);
    QCheck.Test.make ~name:"complementary slackness" ~count:300 arb_bounded_lp (fun lp ->
      match Simplex.solve lp with
      | Simplex.Optimal s ->
        let constrs = Lp.constraints lp in
        Array.for_all
          (fun i ->
            let c = constrs.(i) in
            let slack = Rat.sub c.Lp.rhs (Vec.dot c.Lp.coeffs s.Simplex.primal) in
            Rat.is_zero (Rat.mul slack s.Simplex.dual.(i)))
          (Array.init (Array.length constrs) (fun i -> i))
      | _ -> false);
    QCheck.Test.make ~name:"primal optimality vs random feasible points" ~count:200
      (QCheck.pair arb_bounded_lp (QCheck.array_of_size (QCheck.Gen.return 5) (QCheck.int_range 0 10)))
      (fun (lp, raw) ->
        match Simplex.solve lp with
        | Simplex.Optimal s ->
          let n = Lp.num_vars lp in
          let x = Array.init n (fun i -> Rat.of_int raw.(i mod Array.length raw)) in
          (not (Lp.satisfies lp x))
          || Rat.compare (Lp.eval_objective lp x) s.Simplex.objective <= 0
        | _ -> false);
    QCheck.Test.make ~name:"certify round-trips the solver's own basis" ~count:300
      arb_bounded_lp (fun lp ->
        (* Le-only problems have no artificials, so the final basis is
           always certifiable; the certified solution must be identical
           in every field. *)
        match Simplex.solve lp with
        | Simplex.Optimal s -> (
          match Simplex.certify lp ~basis:s.Simplex.basis with
          | Some c ->
            Rat.equal c.Simplex.objective s.Simplex.objective
            && Array.for_all2 Rat.equal c.Simplex.primal s.Simplex.primal
            && Array.for_all2 Rat.equal c.Simplex.dual s.Simplex.dual
          | None -> false)
        | _ -> false);
    QCheck.Test.make ~name:"certified float basis gives the exact optimum" ~count:300
      arb_bounded_lp (fun lp ->
        match (Simplex.solve lp, Simplex_float.solve lp) with
        | Simplex.Optimal e, Simplex_float.Optimal f -> (
          (* Certification may refuse a mis-pivoted float basis (the
             exact-fallback path exists for that); when it accepts, the
             answer must be the exact optimum. *)
          match Simplex.certify lp ~basis:f.Simplex_float.basis with
          | Some c -> Rat.equal c.Simplex.objective e.Simplex.objective
          | None -> true)
        | _ -> true);
  ]


(* A second random family in >= form: min c.x, A x >= b, with c >= 0 so
   the problem is bounded below by 0 whenever feasible. *)
let gen_ge_lp =
  QCheck.Gen.(
    let dim = int_range 1 4 in
    dim >>= fun n ->
    int_range 1 4 >>= fun m ->
    list_size (return m)
      (pair
         (array_size (return n) (map Rat.of_int (int_range (-4) 6)))
         (map Rat.of_int (int_range (-5) 10)))
    >>= fun rows ->
    array_size (return n) (map Rat.of_int (int_range 0 5)) >>= fun obj ->
    let constrs = List.map (fun (coeffs, rhs) -> Lp.constr coeffs Lp.Ge rhs) rows in
    return (Lp.make Lp.Minimize obj constrs))

let arb_ge_lp = QCheck.make ~print:(Format.asprintf "%a" Lp.pp) gen_ge_lp

let ge_props =
  [
    QCheck.Test.make ~name:"min/>= form: outcomes are self-consistent" ~count:300 arb_ge_lp
      (fun lp ->
        match Simplex.solve lp with
        | Simplex.Optimal s ->
          Lp.satisfies lp s.Simplex.primal
          && Rat.equal s.Simplex.objective (Lp.eval_objective lp s.Simplex.primal)
          && Rat.equal s.Simplex.objective (Simplex.dual_objective lp s.Simplex.dual)
          && Rat.sign s.Simplex.objective >= 0
          && s.Simplex.pivots >= 0
        | Simplex.Unbounded _ -> false (* c >= 0, x >= 0: never unbounded below *)
        | Simplex.Infeasible ->
          (* the all-tens point must also violate some constraint, or the
             instance is genuinely feasible and this is a bug; all-tens
             satisfies any row whose positive coefficients outweigh rhs,
             so only accept Infeasible when it fails too *)
          not (Lp.satisfies lp (Array.make (Lp.num_vars lp) (Rat.of_int 10))));
    QCheck.Test.make ~name:"duals of >= rows are nonnegative for min" ~count:300 arb_ge_lp
      (fun lp ->
        match Simplex.solve lp with
        | Simplex.Optimal s ->
          (* For min with >= rows, raising a rhs can only raise the
             optimum: dual >= 0 in the standard convention where dual.(i)
             is d(objective)/d(rhs_i). *)
          Array.for_all (fun y -> Rat.sign y >= 0) s.Simplex.dual
        | _ -> true);
    QCheck.Test.make ~name:"scaling a constraint row leaves the optimum" ~count:200 arb_ge_lp
      (fun lp ->
        match Simplex.solve lp with
        | Simplex.Optimal s ->
          let constrs =
            Array.to_list
              (Array.map
                 (fun (c : Lp.constr) ->
                   Lp.constr (Array.map (Rat.mul Rat.two) c.Lp.coeffs) c.Lp.relation
                     (Rat.mul Rat.two c.Lp.rhs))
                 (Lp.constraints lp))
          in
          let lp2 = Lp.make Lp.Minimize (Lp.objective lp) constrs in
          (match Simplex.solve lp2 with
          | Simplex.Optimal s2 -> Rat.equal s.Simplex.objective s2.Simplex.objective
          | _ -> false)
        | _ -> true);
  ]

let () =
  Alcotest.run "simplex"
    [
      ( "unit",
        [
          Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "fractional optimum" `Quick test_fractional_optimum;
          Alcotest.test_case "min with >=" `Quick test_min_with_ge;
          Alcotest.test_case "equalities" `Quick test_equality_constraints;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "Beale cycling" `Quick test_degenerate_cycling;
          Alcotest.test_case "degenerate zero rhs" `Quick test_zero_rhs_degenerate;
          Alcotest.test_case "no constraints" `Quick test_no_constraints;
          Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
          Alcotest.test_case "negative rhs duals" `Quick test_negative_rhs_duals;
          Alcotest.test_case "solve_exn" `Quick test_solve_exn;
          Alcotest.test_case "lp validation" `Quick test_lp_validation;
        ] );
      ( "float-foil",
        [
          Alcotest.test_case "textbook" `Quick test_float_agrees_on_textbook;
          Alcotest.test_case "matches exact" `Quick test_float_outcomes_match_exact;
          Alcotest.test_case "exact ties" `Quick test_float_cannot_certify_exact_ties;
        ] );
      ( "certify",
        [
          Alcotest.test_case "round-trip" `Quick test_certify_roundtrip;
          Alcotest.test_case "rejects bad bases" `Quick test_certify_rejects_bad_bases;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
      ("ge-form properties", List.map QCheck_alcotest.to_alcotest ge_props);
    ]
