(* Tests for the dependency-free JSON parser backing bench/compare and
   the trace-validity tests. *)

open Jsonlite

let rec pp_json fmt = function
  | Null -> Format.fprintf fmt "null"
  | Bool b -> Format.fprintf fmt "%b" b
  | Num n -> Format.fprintf fmt "%.17g" n
  | Str s -> Format.fprintf fmt "%S" s
  | Arr l -> Format.fprintf fmt "[%a]" (Format.pp_print_list pp_json) l
  | Obj kvs ->
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list (fun fmt (k, v) -> Format.fprintf fmt "%S:%a" k pp_json v))
      kvs

let json = Alcotest.testable pp_json ( = )

let ok s = match parse s with Ok v -> v | Error e -> Alcotest.failf "parse %S: %s" s e
let bad name s =
  match parse s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: %S should not parse" name s

let test_scalars () =
  Alcotest.check json "null" Null (ok "null");
  Alcotest.check json "true" (Bool true) (ok "true");
  Alcotest.check json "false" (Bool false) (ok " false ");
  Alcotest.check json "int" (Num 42.0) (ok "42");
  Alcotest.check json "negative" (Num (-17.0)) (ok "-17");
  Alcotest.check json "float" (Num 3.25) (ok "3.25");
  Alcotest.check json "exponent" (Num 1.5e3) (ok "1.5e3");
  Alcotest.check json "neg exponent" (Num 2.5e-3) (ok "25E-4");
  Alcotest.check json "string" (Str "hi") (ok "\"hi\"")

let test_escapes () =
  Alcotest.check json "quote/backslash" (Str "a\"b\\c") (ok {|"a\"b\\c"|});
  Alcotest.check json "controls" (Str "\n\t\r\b\012/") (ok {|"\n\t\r\b\f\/"|});
  Alcotest.check json "unicode ascii" (Str "A") (ok {|"A"|});
  Alcotest.check json "unicode 2-byte" (Str "\xc3\xa9") (ok {|"é"|});
  Alcotest.check json "unicode 3-byte" (Str "\xe2\x82\xac") (ok {|"€"|})

let test_containers () =
  Alcotest.check json "empty array" (Arr []) (ok "[]");
  Alcotest.check json "empty object" (Obj []) (ok "{}");
  Alcotest.check json "nested"
    (Obj [ ("a", Arr [ Num 1.0; Obj [ ("b", Null) ] ]); ("c", Str "x") ])
    (ok {|{"a": [1, {"b": null}], "c": "x"}|})

let test_rejects () =
  bad "empty" "";
  bad "trailing garbage" "42 x";
  bad "trailing comma array" "[1,]";
  bad "trailing comma object" {|{"a":1,}|};
  bad "unterminated string" "\"abc";
  bad "unterminated array" "[1, 2";
  bad "bare word" "nope";
  bad "single quotes" "{'a': 1}";
  bad "unquoted key" "{a: 1}";
  bad "lone minus" "-";
  bad "two documents" "{} {}"

let test_accessors () =
  let v = ok {|{"n": 2.5, "s": "str", "l": [1, 2], "o": {"k": 1}}|} in
  Alcotest.(check (option (float 0.0))) "num_member" (Some 2.5) (num_member "n" v);
  Alcotest.(check (option string)) "str_member" (Some "str") (str_member "s" v);
  Alcotest.(check (option int)) "list_member"
    (Some 2)
    (Option.map List.length (list_member "l" v));
  Alcotest.(check bool) "member object" true (member "o" v <> None);
  Alcotest.(check (option (float 0.0))) "missing" None (num_member "zz" v);
  Alcotest.(check (option (float 0.0))) "shape mismatch" None (num_member "s" v);
  Alcotest.(check bool) "to_obj" true (to_obj v <> None);
  Alcotest.(check (option (float 0.0))) "to_num on string" None (to_num (Str "x"))

let test_roundtrips_own_writers () =
  (* the parser must read everything the repo's writers emit *)
  Obs.reset ();
  Obs.incr ~by:3 (Obs.counter "j.count \"quoted\"");
  Obs.add_seconds (Obs.timer "j.timer") 0.25;
  (match parse (Obs.to_json (Obs.snapshot ())) with
  | Error e -> Alcotest.failf "Obs.to_json: %s" e
  | Ok v ->
    Alcotest.(check (option (float 0.0))) "escaped counter name survives" (Some 3.0)
      (Option.bind (member "counters" v) (num_member "j.count \"quoted\"")));
  Obs.reset ();
  Obs.Trace.enable ();
  Obs.Trace.with_span "j.span" (fun () -> ());
  Obs.Trace.disable ();
  match parse (Obs.Trace.export_json ()) with
  | Error e -> Alcotest.failf "Trace.export_json: %s" e
  | Ok v -> Alcotest.(check bool) "trace parses" true (list_member "traceEvents" v <> None)

let () =
  Alcotest.run "jsonlite"
    [
      ( "parse",
        [
          Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "containers" `Quick test_containers;
          Alcotest.test_case "rejects malformed input" `Quick test_rejects;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "roundtrips this repo's writers" `Quick
            test_roundtrips_own_writers;
        ] );
    ]
