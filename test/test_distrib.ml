(* Tests for the Section-7 distributed-memory extension. *)

let bigint =
  Alcotest.testable
    (fun fmt b -> Format.pp_print_string fmt (Bigint.to_string b))
    (fun a b -> Bigint.compare a b = 0)

let test_grids_enumeration () =
  let spec = Kernels.matmul ~l1:8 ~l2:8 ~l3:8 in
  let gs = Partition.grids spec ~p:4 in
  (* factorizations of 4 into 3 parts: (1,1,4),(1,2,2),(1,4,1),(2,1,2),
     (2,2,1),(4,1,1) *)
  Alcotest.(check int) "count" 6 (List.length gs);
  List.iter
    (fun g -> Alcotest.(check int) "product" 4 (Array.fold_left ( * ) 1 g))
    gs

let test_grids_respect_bounds () =
  let spec = Kernels.matmul ~l1:2 ~l2:8 ~l3:8 in
  let gs = Partition.grids spec ~p:4 in
  List.iter
    (fun g -> Alcotest.(check bool) "p1 <= L1" true (g.(0) <= 2))
    gs;
  (* p too large to factor within bounds *)
  let tiny = Kernels.nbody ~l1:2 ~l2:2 in
  Alcotest.(check (list (array int))) "no grid" [] (Partition.grids tiny ~p:8)

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Partition.divisors 12);
  Alcotest.(check (list int)) "1" [ 1 ] (Partition.divisors 1);
  Alcotest.(check (list int)) "prime" [ 1; 97 ] (Partition.divisors 97);
  Alcotest.(check (list int)) "square" [ 1; 2; 4; 8; 16 ] (Partition.divisors 16)

let spec_d6 l =
  (* a 6-deep nest (grid enumeration only looks at the bounds) *)
  Spec.create_exn ~name:"d6"
    ~loops:[| "a"; "b"; "c"; "d"; "e"; "f" |]
    ~bounds:(Array.make 6 l)
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "Z" [ 0; 1; 2 ];
        Spec.array_ref "A" [ 3; 4; 5 ];
      |]

let test_grids_highly_composite () =
  (* P = 4096 over d = 6: the divisor ladder walks only divisor chains,
     so the worst-named case of the old dense enumerator stays far under
     the default budget. 4096 = 2^12 into 6 ordered factors, each <= 16:
     compositions of 12 into 6 parts of at most 4 -> 1751 grids. *)
  let gs = Partition.grids (spec_d6 16) ~p:4096 in
  Alcotest.(check int) "grid count" 1751 (List.length gs);
  List.iter
    (fun g ->
      Alcotest.(check int) "product" 4096 (Array.fold_left ( * ) 1 g);
      Array.iter (fun f -> Alcotest.(check bool) "within bounds" true (f >= 1 && f <= 16)) g)
    gs

let test_grids_budget () =
  (* an explicit tiny budget trips the typed refusal; the default does not *)
  (try
     ignore (Partition.grids ~budget:10 (spec_d6 16) ~p:4096);
     Alcotest.fail "budget 10 accepted 4096^6"
   with Invalid_argument msg ->
     Alcotest.(check bool) "carries the shape-too-large marker" true
       (Astring.String.is_infix ~affix:"shape too large" msg));
  Alcotest.(check bool) "engine maps it to Shape_too_large" true
    (match
       Engine_error.of_exn (Invalid_argument "Partition.grids: shape too large: budget")
     with
    | Some (Engine_error.Shape_too_large _) -> true
    | _ -> false)

let test_block_dims () =
  let spec = Kernels.matmul ~l1:10 ~l2:8 ~l3:8 in
  Alcotest.(check (array int)) "ceil division" [| 4; 4; 8 |]
    (Partition.block_dims spec ~grid:[| 3; 2; 1 |]);
  Alcotest.check bigint "block iterations" (Bigint.of_int (4 * 4 * 8))
    (Partition.block_iterations spec ~grid:[| 3; 2; 1 |])

let test_cost_matmul () =
  let spec = Kernels.matmul ~l1:8 ~l2:8 ~l3:8 in
  let c = Comm_model.cost spec ~grid:[| 2; 2; 2 |] in
  (* block 4x4x4; each array footprint 16 -> 48 words *)
  Alcotest.check bigint "cost" (Bigint.of_int 48) c.Comm_model.words;
  let c2 = Comm_model.cost spec ~grid:[| 8; 1; 1 |] in
  (* block 1x8x8: C 1*8=8, A 1*8=8, B 64 -> 80 *)
  Alcotest.check bigint "1d cost" (Bigint.of_int 80) c2.Comm_model.words

let test_best_grid_is_balanced () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  match Comm_model.best_grid spec ~p:8 with
  | None -> Alcotest.fail "factorable"
  | Some g ->
    Alcotest.(check (array int)) "cube grid" [| 2; 2; 2 |] g.Comm_model.grid

let test_best_grid_adapts_to_small_bound () =
  (* L3 tiny: splitting the x3 dimension is useless; the best grid should
     put the processors on x1/x2. *)
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:2 in
  match Comm_model.best_grid spec ~p:16 with
  | None -> Alcotest.fail "factorable"
  | Some g ->
    Alcotest.(check int) "x3 not split" 1 g.Comm_model.grid.(2);
    Alcotest.(check int) "4x4 on the big dims" 16 (g.Comm_model.grid.(0) * g.Comm_model.grid.(1))

let test_lower_bound_sane () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let lb = Comm_model.lower_bound spec ~p:8 in
  (match Comm_model.best_grid spec ~p:8 with
  | None -> Alcotest.fail "factorable"
  | Some g ->
    (* best-grid cost within a small constant (n = 3 arrays) of the bound *)
    let ratio = Bigint.to_float g.Comm_model.words /. lb in
    if ratio < 1.0 || ratio > 4.0 then
      Alcotest.failf "ratio %.2f outside [1, 4] (cost %s, lb %.1f)" ratio
        (Bigint.to_string g.Comm_model.words) lb);
  (* single processor: needs at least enough footprint for everything *)
  let lb1 = Comm_model.lower_bound spec ~p:1 in
  Alcotest.(check bool) "P=1 >= P=8" true (lb1 >= lb)

let test_min_footprint_monotone () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let f1 = Comm_model.min_footprint spec ~iterations:1000.0 in
  let f2 = Comm_model.min_footprint spec ~iterations:100000.0 in
  Alcotest.(check bool) "monotone" true (f2 >= f1);
  Alcotest.(check (float 0.01)) "trivial" 1.0 (Comm_model.min_footprint spec ~iterations:1.0)

let test_min_footprint_matches_hk () =
  (* Large-bounds matmul: V iterations need footprint ~ V^(2/3)
     (Hong-Kung / Irony-Toledo-Tiskin shape). *)
  let spec = Kernels.matmul ~l1:4096 ~l2:4096 ~l3:4096 in
  let v = 1.0e6 in
  let f = Comm_model.min_footprint spec ~iterations:v in
  let expect = Float.pow v (2.0 /. 3.0) in
  let ratio = f /. expect in
  Alcotest.(check bool) "within 10%" true (ratio > 0.9 && ratio < 1.1)


let test_simulated_cost_matches_analytic () =
  List.iter
    (fun (spec, p) ->
      List.iter
        (fun grid ->
          Alcotest.check bigint
            (Printf.sprintf "grid %s"
               (String.concat "x" (Array.to_list (Array.map string_of_int grid))))
            (Comm_model.cost spec ~grid).Comm_model.words
            (Bigint.of_int (Comm_model.simulated_cost spec ~grid)))
        (Partition.grids spec ~p))
    [
      (Kernels.matmul ~l1:12 ~l2:10 ~l3:8, 4);
      (Kernels.nbody ~l1:16 ~l2:12, 6);
      (Kernels.pointwise_conv ~b:4 ~c:4 ~k:4 ~w:4 ~h:4, 8);
    ]


let test_block_groups () =
  (* ragged 10x8x8 over a 3x2x1 grid: two distinct block shapes — the
     full 4x4x8 block (4 processors) and the 2-wide remainder (2) *)
  let spec = Kernels.matmul ~l1:10 ~l2:8 ~l3:8 in
  let groups = Comm_model.block_groups spec ~grid:[| 3; 2; 1 |] in
  (match groups with
  | (shape, count) :: _ ->
    Alcotest.(check (array int)) "full-size block first" [| 4; 4; 8 |] shape;
    Alcotest.(check int) "four full blocks" 4 count
  | [] -> Alcotest.fail "no groups");
  Alcotest.(check int) "two shapes" 2 (List.length groups);
  Alcotest.(check int) "every processor accounted for" 6
    (List.fold_left (fun a (_, c) -> a + c) 0 groups);
  (* per-group simulation: the full block dominates, and its distinct
     addresses equal the analytic per-processor cost *)
  let full = Comm_model.simulated_block spec ~block:[| 4; 4; 8 |] in
  List.iter
    (fun (shape, _) ->
      Alcotest.(check bool) "full block dominates" true
        (Comm_model.simulated_block spec ~block:shape <= full))
    groups;
  Alcotest.check bigint "max group = analytic cost"
    (Comm_model.cost spec ~grid:[| 3; 2; 1 |]).Comm_model.words
    (Bigint.of_int full);
  (* an evenly divisible nest collapses to a single group of P blocks *)
  let even = Kernels.matmul ~l1:8 ~l2:8 ~l3:8 in
  Alcotest.(check int) "uniform nest: one group" 1
    (List.length (Comm_model.block_groups even ~grid:[| 2; 2; 2 |]))

let rat_str = Alcotest.testable (fun fmt r -> Format.pp_print_string fmt (Rat.to_string r)) Rat.equal

let test_partition_solve_regimes () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  (match Partition_solve.solve spec ~p:64 ~m_local:4096 ~net:Partition_solve.Words with
  | None -> Alcotest.fail "factorable"
  | Some s ->
    Alcotest.(check (array int)) "cube grid" [| 4; 4; 4 |] s.Partition_solve.grid;
    Alcotest.(check (array int)) "block" [| 16; 16; 16 |] s.Partition_solve.block;
    Alcotest.(check bool) "memory-independent" true
      (s.Partition_solve.regime = Partition_solve.Memory_independent);
    Alcotest.check bigint "words = gather (tile covers the block)"
      s.Partition_solve.gather_words s.Partition_solve.words;
    Alcotest.(check string) "exact words" "768" (Bigint.to_string s.Partition_solve.words);
    Alcotest.(check bool) "above the continuous lower bound" true
      (Bigint.to_float s.Partition_solve.words >= s.Partition_solve.lower_bound);
    Alcotest.(check int) "all candidates seen" 28 s.Partition_solve.grids_enumerated);
  (* a tight per-processor memory flips to the memory-dependent regime:
     the tile no longer covers the block, so words exceed the gather *)
  (match Partition_solve.solve spec ~p:64 ~m_local:24 ~net:Partition_solve.Words with
  | None -> Alcotest.fail "factorable"
  | Some s ->
    Alcotest.(check bool) "memory-dependent" true
      (s.Partition_solve.regime = Partition_solve.Memory_dependent);
    Alcotest.(check bool) "words > gather" true
      (Bigint.compare s.Partition_solve.words s.Partition_solve.gather_words > 0));
  (* a prime p beyond every bound has no grid *)
  let tiny = Kernels.nbody ~l1:7 ~l2:7 in
  Alcotest.(check bool) "unfactorable" true
    (Partition_solve.solve tiny ~p:11 ~m_local:64 ~net:Partition_solve.Words = None)

let test_partition_solve_alpha_beta () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let alpha = Rat.of_int 100 and beta = Rat.of_ints 1 2 in
  match
    Partition_solve.solve spec ~p:64 ~m_local:4096
      ~net:(Partition_solve.Alpha_beta { alpha; beta })
  with
  | None -> Alcotest.fail "factorable"
  | Some s ->
    (* the objective is exactly alpha x messages + beta x words *)
    Alcotest.check rat_str "time decomposes"
      (Rat.add
         (Rat.mul_int alpha s.Partition_solve.messages)
         (Rat.mul beta (Rat.of_bigint s.Partition_solve.words)))
      s.Partition_solve.time;
    (* all-gather rounds: one per grid dimension split, ceil(log2 fiber) *)
    Alcotest.(check int) "messages for the 4x4x4 grid" 6 s.Partition_solve.messages

let test_memory_independent_matches_aldaas () =
  (* The memory-independent per-processor volume lands exactly on the
     Al Daas-Ballard-Grigori-Kumar-Rouse closed forms (arXiv:2205.13407)
     when the bounds divide evenly — one point per regime, L1>=L2>=L3:
       3D (P >= L1L2/L3^2):          3 (L1 L2 L3 / P)^(2/3)
       2D (L1/L2 <= P <= L1L2/L3^2): L1 L2 / P + 2 L3 sqrt(L1 L2 / P)
       1D (P <= L1/L2):              L1 (L2 + L3) / P + L2 L3 *)
  let check_point name ~l1 ~l2 ~l3 ~p expect =
    let spec = Kernels.matmul ~l1 ~l2 ~l3 in
    match Partition_solve.solve spec ~p ~m_local:(1 lsl 22) ~net:Partition_solve.Words with
    | None -> Alcotest.failf "%s: unfactorable" name
    | Some s ->
      Alcotest.(check bool) (name ^ " memory-independent") true
        (s.Partition_solve.regime = Partition_solve.Memory_independent);
      Alcotest.(check (float 1e-9)) (name ^ " = closed form") expect
        (Bigint.to_float s.Partition_solve.words)
  in
  (* 3D: cube, P = 64 >= 64^2/64^2 = 1: 3 (64^3/64)^(2/3) = 768 *)
  check_point "3D" ~l1:64 ~l2:64 ~l3:64 ~p:64 768.0;
  (* 2D: 256x256x8, P = 16 in [1, 1024]: 65536/16 + 2*8*sqrt(4096) = 5120 *)
  check_point "2D" ~l1:256 ~l2:256 ~l3:8 ~p:16 5120.0;
  (* 1D: 1024x4x4, P = 8 <= 256: 1024*8/8 + 16 = 1040 *)
  check_point "1D" ~l1:1024 ~l2:4 ~l3:4 ~p:8 1040.0

let test_simulate_processor_regimes () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let grid = [| 2; 2; 2 |] in
  let gather = Bigint.to_int (Comm_model.cost spec ~grid).Comm_model.words in
  let sim m = (Comm_model.simulate_processor spec ~grid ~m_local:m).Comm_model.words_per_proc in
  (* tiny local memory: re-fetching dominates, cost above the gather volume *)
  Alcotest.(check bool) "small M exceeds gather" true (sim 128 > gather);
  (* big local memory: everything is fetched once (plus output writeback) *)
  let big = sim 16384 in
  Alcotest.(check bool) "big M near gather" true
    (float_of_int big < 1.5 *. float_of_int gather);
  (* monotone in local memory *)
  Alcotest.(check bool) "monotone" true (sim 128 >= sim 512 && sim 512 >= sim 4096);
  Alcotest.check_raises "oversized block"
    (Invalid_argument "Comm_model.simulate_processor: block too large to simulate") (fun () ->
    ignore
      (Comm_model.simulate_processor
         (Kernels.matmul ~l1:4096 ~l2:4096 ~l3:4096)
         ~grid:[| 1; 1; 1 |] ~m_local:256))

(* Overflow regressions: with native-int arithmetic both of these wrapped
   negative on 63-bit ints (2^21 cubed = 2^63), silently corrupting grid
   selection and simulability guards. *)

let overflow_spec =
  (* C has full 3-loop support, so one processor's block footprint alone
     is 2^63 words. *)
  let l = 1 lsl 21 in
  Spec.create_exn ~name:"overflow" ~loops:[| "i"; "j"; "k" |] ~bounds:[| l; l; l |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "C" [ 0; 1; 2 ];
        Spec.array_ref "A" [ 0; 1 ];
      |]

let test_block_iterations_overflow () =
  let n = Partition.block_iterations overflow_spec ~grid:[| 1; 1; 1 |] in
  Alcotest.(check string) "exact 2^63" "9223372036854775808" (Bigint.to_string n);
  Alcotest.(check bool) "exceeds max_int" true (Bigint.compare n (Bigint.of_int max_int) > 0);
  (* the native product is 2^63 mod 2^63 = 0 on 63-bit ints — the old
     code reported zero iterations for this nest *)
  Alcotest.(check int) "native product wraps" 0
    (Array.fold_left ( * ) 1 overflow_spec.Spec.bounds)

let test_cost_overflow () =
  let c = Comm_model.cost overflow_spec ~grid:[| 1; 1; 1 |] in
  (* C footprint 2^63 + A footprint 2^42 *)
  let expect =
    Bigint.add (Bigint.pow (Bigint.of_int 2) 63) (Bigint.pow (Bigint.of_int 2) 42)
  in
  Alcotest.check bigint "exact footprint" expect c.Comm_model.words;
  Alcotest.(check bool) "exceeds max_int" true
    (Bigint.compare c.Comm_model.words (Bigint.of_int max_int) > 0)

let test_best_grid_overflow_ordering () =
  (* With wrapped costs the 1x1x1 grid looked negative, i.e. "cheapest";
     exact arithmetic must still order grids correctly. *)
  match Comm_model.best_grid overflow_spec ~p:8 with
  | None -> Alcotest.fail "factorable"
  | Some g ->
    Alcotest.(check bool) "best grid splits the nest" true
      (Array.fold_left ( * ) 1 g.Comm_model.grid = 8);
    let worst = Comm_model.cost overflow_spec ~grid:[| 1; 1; 1 |] in
    Alcotest.(check bool) "cheaper than the unsplit block" true
      (Bigint.compare g.Comm_model.words worst.Comm_model.words < 0)

let test_min_footprint_overflow () =
  (* The doubling search used to wrap a native int at 2^62 and spin
     forever at 0 once the needed footprint passed max_int. *)
  let lb = Comm_model.lower_bound overflow_spec ~p:1 in
  Alcotest.(check bool) "terminates with a finite bound" true (Float.is_finite lb);
  Alcotest.(check bool) "past max_int" true (lb > float_of_int max_int)

let test_simulate_processor_overflow_guard () =
  (* The simulability guard must reject the 2^63-iteration block rather
     than wrap negative and start allocating. *)
  Alcotest.check_raises "oversized block"
    (Invalid_argument "Comm_model.simulate_processor: block too large to simulate")
    (fun () ->
      ignore (Comm_model.simulate_processor overflow_spec ~grid:[| 1; 1; 1 |] ~m_local:256))

let props =
  [
    (* the acceptance property of the partition solver's cost model: the
       analytic per-processor gather volume equals a literal address-set
       simulation of the block, over random kernels and every grid *)
    QCheck.Test.make ~name:"analytic cost = simulated cost" ~count:40
      (QCheck.make
         ~print:(fun (k, l1, l2, p) -> Printf.sprintf "kernel=%d L1=%d L2=%d P=%d" k l1 l2 p)
         QCheck.Gen.(
           quad (int_range 0 2) (int_range 4 14) (int_range 4 14) (oneofl [ 2; 3; 4; 6; 8; 12 ])))
      (fun (k, l1, l2, p) ->
        let spec =
          match k with
          | 0 -> Kernels.matmul ~l1 ~l2 ~l3:((l1 + l2) / 2)
          | 1 -> Kernels.nbody ~l1 ~l2
          | _ -> Kernels.pointwise_conv ~b:2 ~c:(1 + (l1 / 2)) ~k:(1 + (l2 / 2)) ~w:3 ~h:3
        in
        List.for_all
          (fun grid ->
            Bigint.compare
              (Comm_model.cost spec ~grid).Comm_model.words
              (Bigint.of_int (Comm_model.simulated_cost spec ~grid))
            = 0)
          (Partition.grids spec ~p));
    (* the divisor ladder is a pure re-enumeration: same grids, same
       (ascending lexicographic) order as the definitional generator *)
    QCheck.Test.make ~name:"divisor ladder = brute force" ~count:40
      (QCheck.make
         ~print:(fun (l, p) -> Printf.sprintf "L=%d P=%d" l p)
         QCheck.Gen.(pair (int_range 2 20) (int_range 1 36)))
      (fun (l, p) ->
        let spec = Kernels.matmul ~l1:l ~l2:(l + 1) ~l3:(l + 2) in
        let brute =
          (* all ordered triples of [1..p] within bounds whose product is p *)
          List.concat_map
            (fun a ->
              List.concat_map
                (fun b ->
                  List.filter_map
                    (fun c ->
                      if a * b * c = p && a <= l && b <= l + 1 && c <= l + 2 then
                        Some [| a; b; c |]
                      else None)
                    (List.init p (fun i -> i + 1)))
                (List.init p (fun i -> i + 1)))
            (List.init p (fun i -> i + 1))
        in
        Partition.grids spec ~p = brute);
    QCheck.Test.make ~name:"grid costs bounded below by the LB" ~count:50
      (QCheck.make
         ~print:(fun (l, p) -> Printf.sprintf "L=%d P=%d" l p)
         QCheck.Gen.(pair (int_range 8 64) (oneofl [ 2; 4; 8; 16 ])))
      (fun (l, p) ->
        let spec = Kernels.matmul ~l1:l ~l2:l ~l3:l in
        let lb = Comm_model.lower_bound spec ~p in
        List.for_all
          (fun grid ->
            (* the per-array bound can't exceed the summed footprint *)
            Bigint.to_float (Comm_model.cost spec ~grid).Comm_model.words >= lb *. 0.999)
          (Partition.grids spec ~p));
    QCheck.Test.make ~name:"block covers iteration share" ~count:50
      (QCheck.make
         ~print:(fun (l, p) -> Printf.sprintf "L=%d P=%d" l p)
         QCheck.Gen.(pair (int_range 4 32) (oneofl [ 2; 3; 4; 6; 8 ])))
      (fun (l, p) ->
        let spec = Kernels.matmul ~l1:l ~l2:l ~l3:l in
        List.for_all
          (fun grid ->
            Bigint.compare
              (Bigint.mul (Partition.block_iterations spec ~grid) (Bigint.of_int p))
              (Spec.iteration_count_big spec)
            >= 0)
          (Partition.grids spec ~p));
  ]

let () =
  Alcotest.run "distrib"
    [
      ( "partition",
        [
          Alcotest.test_case "grids enumeration" `Quick test_grids_enumeration;
          Alcotest.test_case "bounds respected" `Quick test_grids_respect_bounds;
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "highly composite p" `Quick test_grids_highly_composite;
          Alcotest.test_case "enumeration budget" `Quick test_grids_budget;
          Alcotest.test_case "block dims" `Quick test_block_dims;
        ] );
      ( "comm-model",
        [
          Alcotest.test_case "cost matmul" `Quick test_cost_matmul;
          Alcotest.test_case "best grid balanced" `Quick test_best_grid_is_balanced;
          Alcotest.test_case "best grid small bound" `Quick test_best_grid_adapts_to_small_bound;
          Alcotest.test_case "lower bound sane" `Quick test_lower_bound_sane;
          Alcotest.test_case "min footprint monotone" `Quick test_min_footprint_monotone;
          Alcotest.test_case "Hong-Kung shape" `Quick test_min_footprint_matches_hk;
          Alcotest.test_case "simulated = analytic cost" `Quick test_simulated_cost_matches_analytic;
          Alcotest.test_case "block groups" `Quick test_block_groups;
          Alcotest.test_case "processor simulation regimes" `Quick test_simulate_processor_regimes;
        ] );
      ( "partition-solve",
        [
          Alcotest.test_case "two regimes" `Quick test_partition_solve_regimes;
          Alcotest.test_case "alpha-beta objective" `Quick test_partition_solve_alpha_beta;
          Alcotest.test_case "Al Daas closed forms" `Quick test_memory_independent_matches_aldaas;
        ] );
      ( "overflow",
        [
          Alcotest.test_case "block iterations exact" `Quick test_block_iterations_overflow;
          Alcotest.test_case "cost exact" `Quick test_cost_overflow;
          Alcotest.test_case "best grid ordering" `Quick test_best_grid_overflow_ordering;
          Alcotest.test_case "min footprint search" `Quick test_min_footprint_overflow;
          Alcotest.test_case "simulate guard" `Quick test_simulate_processor_overflow_guard;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
