(* Tests for the Section-7 distributed-memory extension. *)

let bigint =
  Alcotest.testable
    (fun fmt b -> Format.pp_print_string fmt (Bigint.to_string b))
    (fun a b -> Bigint.compare a b = 0)

let test_grids_enumeration () =
  let spec = Kernels.matmul ~l1:8 ~l2:8 ~l3:8 in
  let gs = Partition.grids spec ~p:4 in
  (* factorizations of 4 into 3 parts: (1,1,4),(1,2,2),(1,4,1),(2,1,2),
     (2,2,1),(4,1,1) *)
  Alcotest.(check int) "count" 6 (List.length gs);
  List.iter
    (fun g -> Alcotest.(check int) "product" 4 (Array.fold_left ( * ) 1 g))
    gs

let test_grids_respect_bounds () =
  let spec = Kernels.matmul ~l1:2 ~l2:8 ~l3:8 in
  let gs = Partition.grids spec ~p:4 in
  List.iter
    (fun g -> Alcotest.(check bool) "p1 <= L1" true (g.(0) <= 2))
    gs;
  (* p too large to factor within bounds *)
  let tiny = Kernels.nbody ~l1:2 ~l2:2 in
  Alcotest.(check (list (array int))) "no grid" [] (Partition.grids tiny ~p:8)

let test_block_dims () =
  let spec = Kernels.matmul ~l1:10 ~l2:8 ~l3:8 in
  Alcotest.(check (array int)) "ceil division" [| 4; 4; 8 |]
    (Partition.block_dims spec ~grid:[| 3; 2; 1 |]);
  Alcotest.check bigint "block iterations" (Bigint.of_int (4 * 4 * 8))
    (Partition.block_iterations spec ~grid:[| 3; 2; 1 |])

let test_cost_matmul () =
  let spec = Kernels.matmul ~l1:8 ~l2:8 ~l3:8 in
  let c = Comm_model.cost spec ~grid:[| 2; 2; 2 |] in
  (* block 4x4x4; each array footprint 16 -> 48 words *)
  Alcotest.check bigint "cost" (Bigint.of_int 48) c.Comm_model.words;
  let c2 = Comm_model.cost spec ~grid:[| 8; 1; 1 |] in
  (* block 1x8x8: C 1*8=8, A 1*8=8, B 64 -> 80 *)
  Alcotest.check bigint "1d cost" (Bigint.of_int 80) c2.Comm_model.words

let test_best_grid_is_balanced () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  match Comm_model.best_grid spec ~p:8 with
  | None -> Alcotest.fail "factorable"
  | Some g ->
    Alcotest.(check (array int)) "cube grid" [| 2; 2; 2 |] g.Comm_model.grid

let test_best_grid_adapts_to_small_bound () =
  (* L3 tiny: splitting the x3 dimension is useless; the best grid should
     put the processors on x1/x2. *)
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:2 in
  match Comm_model.best_grid spec ~p:16 with
  | None -> Alcotest.fail "factorable"
  | Some g ->
    Alcotest.(check int) "x3 not split" 1 g.Comm_model.grid.(2);
    Alcotest.(check int) "4x4 on the big dims" 16 (g.Comm_model.grid.(0) * g.Comm_model.grid.(1))

let test_lower_bound_sane () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let lb = Comm_model.lower_bound spec ~p:8 in
  (match Comm_model.best_grid spec ~p:8 with
  | None -> Alcotest.fail "factorable"
  | Some g ->
    (* best-grid cost within a small constant (n = 3 arrays) of the bound *)
    let ratio = Bigint.to_float g.Comm_model.words /. lb in
    if ratio < 1.0 || ratio > 4.0 then
      Alcotest.failf "ratio %.2f outside [1, 4] (cost %s, lb %.1f)" ratio
        (Bigint.to_string g.Comm_model.words) lb);
  (* single processor: needs at least enough footprint for everything *)
  let lb1 = Comm_model.lower_bound spec ~p:1 in
  Alcotest.(check bool) "P=1 >= P=8" true (lb1 >= lb)

let test_min_footprint_monotone () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let f1 = Comm_model.min_footprint spec ~iterations:1000.0 in
  let f2 = Comm_model.min_footprint spec ~iterations:100000.0 in
  Alcotest.(check bool) "monotone" true (f2 >= f1);
  Alcotest.(check (float 0.01)) "trivial" 1.0 (Comm_model.min_footprint spec ~iterations:1.0)

let test_min_footprint_matches_hk () =
  (* Large-bounds matmul: V iterations need footprint ~ V^(2/3)
     (Hong-Kung / Irony-Toledo-Tiskin shape). *)
  let spec = Kernels.matmul ~l1:4096 ~l2:4096 ~l3:4096 in
  let v = 1.0e6 in
  let f = Comm_model.min_footprint spec ~iterations:v in
  let expect = Float.pow v (2.0 /. 3.0) in
  let ratio = f /. expect in
  Alcotest.(check bool) "within 10%" true (ratio > 0.9 && ratio < 1.1)


let test_simulated_cost_matches_analytic () =
  List.iter
    (fun (spec, p) ->
      List.iter
        (fun grid ->
          Alcotest.check bigint
            (Printf.sprintf "grid %s"
               (String.concat "x" (Array.to_list (Array.map string_of_int grid))))
            (Comm_model.cost spec ~grid).Comm_model.words
            (Bigint.of_int (Comm_model.simulated_cost spec ~grid)))
        (Partition.grids spec ~p))
    [
      (Kernels.matmul ~l1:12 ~l2:10 ~l3:8, 4);
      (Kernels.nbody ~l1:16 ~l2:12, 6);
      (Kernels.pointwise_conv ~b:4 ~c:4 ~k:4 ~w:4 ~h:4, 8);
    ]


let test_simulate_processor_regimes () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let grid = [| 2; 2; 2 |] in
  let gather = Bigint.to_int (Comm_model.cost spec ~grid).Comm_model.words in
  let sim m = (Comm_model.simulate_processor spec ~grid ~m_local:m).Comm_model.words_per_proc in
  (* tiny local memory: re-fetching dominates, cost above the gather volume *)
  Alcotest.(check bool) "small M exceeds gather" true (sim 128 > gather);
  (* big local memory: everything is fetched once (plus output writeback) *)
  let big = sim 16384 in
  Alcotest.(check bool) "big M near gather" true
    (float_of_int big < 1.5 *. float_of_int gather);
  (* monotone in local memory *)
  Alcotest.(check bool) "monotone" true (sim 128 >= sim 512 && sim 512 >= sim 4096);
  Alcotest.check_raises "oversized block"
    (Invalid_argument "Comm_model.simulate_processor: block too large to simulate") (fun () ->
    ignore
      (Comm_model.simulate_processor
         (Kernels.matmul ~l1:4096 ~l2:4096 ~l3:4096)
         ~grid:[| 1; 1; 1 |] ~m_local:256))

(* Overflow regressions: with native-int arithmetic both of these wrapped
   negative on 63-bit ints (2^21 cubed = 2^63), silently corrupting grid
   selection and simulability guards. *)

let overflow_spec =
  (* C has full 3-loop support, so one processor's block footprint alone
     is 2^63 words. *)
  let l = 1 lsl 21 in
  Spec.create_exn ~name:"overflow" ~loops:[| "i"; "j"; "k" |] ~bounds:[| l; l; l |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "C" [ 0; 1; 2 ];
        Spec.array_ref "A" [ 0; 1 ];
      |]

let test_block_iterations_overflow () =
  let n = Partition.block_iterations overflow_spec ~grid:[| 1; 1; 1 |] in
  Alcotest.(check string) "exact 2^63" "9223372036854775808" (Bigint.to_string n);
  Alcotest.(check bool) "exceeds max_int" true (Bigint.compare n (Bigint.of_int max_int) > 0);
  (* the native product is 2^63 mod 2^63 = 0 on 63-bit ints — the old
     code reported zero iterations for this nest *)
  Alcotest.(check int) "native product wraps" 0
    (Array.fold_left ( * ) 1 overflow_spec.Spec.bounds)

let test_cost_overflow () =
  let c = Comm_model.cost overflow_spec ~grid:[| 1; 1; 1 |] in
  (* C footprint 2^63 + A footprint 2^42 *)
  let expect =
    Bigint.add (Bigint.pow (Bigint.of_int 2) 63) (Bigint.pow (Bigint.of_int 2) 42)
  in
  Alcotest.check bigint "exact footprint" expect c.Comm_model.words;
  Alcotest.(check bool) "exceeds max_int" true
    (Bigint.compare c.Comm_model.words (Bigint.of_int max_int) > 0)

let test_best_grid_overflow_ordering () =
  (* With wrapped costs the 1x1x1 grid looked negative, i.e. "cheapest";
     exact arithmetic must still order grids correctly. *)
  match Comm_model.best_grid overflow_spec ~p:8 with
  | None -> Alcotest.fail "factorable"
  | Some g ->
    Alcotest.(check bool) "best grid splits the nest" true
      (Array.fold_left ( * ) 1 g.Comm_model.grid = 8);
    let worst = Comm_model.cost overflow_spec ~grid:[| 1; 1; 1 |] in
    Alcotest.(check bool) "cheaper than the unsplit block" true
      (Bigint.compare g.Comm_model.words worst.Comm_model.words < 0)

let test_min_footprint_overflow () =
  (* The doubling search used to wrap a native int at 2^62 and spin
     forever at 0 once the needed footprint passed max_int. *)
  let lb = Comm_model.lower_bound overflow_spec ~p:1 in
  Alcotest.(check bool) "terminates with a finite bound" true (Float.is_finite lb);
  Alcotest.(check bool) "past max_int" true (lb > float_of_int max_int)

let test_simulate_processor_overflow_guard () =
  (* The simulability guard must reject the 2^63-iteration block rather
     than wrap negative and start allocating. *)
  Alcotest.check_raises "oversized block"
    (Invalid_argument "Comm_model.simulate_processor: block too large to simulate")
    (fun () ->
      ignore (Comm_model.simulate_processor overflow_spec ~grid:[| 1; 1; 1 |] ~m_local:256))

let props =
  [
    QCheck.Test.make ~name:"grid costs bounded below by the LB" ~count:50
      (QCheck.make
         ~print:(fun (l, p) -> Printf.sprintf "L=%d P=%d" l p)
         QCheck.Gen.(pair (int_range 8 64) (oneofl [ 2; 4; 8; 16 ])))
      (fun (l, p) ->
        let spec = Kernels.matmul ~l1:l ~l2:l ~l3:l in
        let lb = Comm_model.lower_bound spec ~p in
        List.for_all
          (fun grid ->
            (* the per-array bound can't exceed the summed footprint *)
            Bigint.to_float (Comm_model.cost spec ~grid).Comm_model.words >= lb *. 0.999)
          (Partition.grids spec ~p));
    QCheck.Test.make ~name:"block covers iteration share" ~count:50
      (QCheck.make
         ~print:(fun (l, p) -> Printf.sprintf "L=%d P=%d" l p)
         QCheck.Gen.(pair (int_range 4 32) (oneofl [ 2; 3; 4; 6; 8 ])))
      (fun (l, p) ->
        let spec = Kernels.matmul ~l1:l ~l2:l ~l3:l in
        List.for_all
          (fun grid ->
            Bigint.compare
              (Bigint.mul (Partition.block_iterations spec ~grid) (Bigint.of_int p))
              (Spec.iteration_count_big spec)
            >= 0)
          (Partition.grids spec ~p));
  ]

let () =
  Alcotest.run "distrib"
    [
      ( "partition",
        [
          Alcotest.test_case "grids enumeration" `Quick test_grids_enumeration;
          Alcotest.test_case "bounds respected" `Quick test_grids_respect_bounds;
          Alcotest.test_case "block dims" `Quick test_block_dims;
        ] );
      ( "comm-model",
        [
          Alcotest.test_case "cost matmul" `Quick test_cost_matmul;
          Alcotest.test_case "best grid balanced" `Quick test_best_grid_is_balanced;
          Alcotest.test_case "best grid small bound" `Quick test_best_grid_adapts_to_small_bound;
          Alcotest.test_case "lower bound sane" `Quick test_lower_bound_sane;
          Alcotest.test_case "min footprint monotone" `Quick test_min_footprint_monotone;
          Alcotest.test_case "Hong-Kung shape" `Quick test_min_footprint_matches_hk;
          Alcotest.test_case "simulated = analytic cost" `Quick test_simulated_cost_matches_analytic;
          Alcotest.test_case "processor simulation regimes" `Quick test_simulate_processor_regimes;
        ] );
      ( "overflow",
        [
          Alcotest.test_case "block iterations exact" `Quick test_block_iterations_overflow;
          Alcotest.test_case "cost exact" `Quick test_cost_overflow;
          Alcotest.test_case "best grid ordering" `Quick test_best_grid_overflow_ordering;
          Alcotest.test_case "min footprint search" `Quick test_min_footprint_overflow;
          Alcotest.test_case "simulate guard" `Quick test_simulate_processor_overflow_guard;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
