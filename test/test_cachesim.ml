(* Tests for the cache simulator: hand-traced LRU/FIFO behaviour, Belady
   OPT correctness on small traces (vs brute force), and classical
   replacement-theory properties. *)

let reads addrs = Array.of_list (List.map Trace.read addrs)

let stats_of ?(line_words = 1) policy capacity addrs =
  Trace.simulate ~line_words ~policy ~capacity (reads addrs)

(* ------------------------------------------------------------------ *)
(* Hand-traced behaviour                                              *)
(* ------------------------------------------------------------------ *)

let test_cold_misses () =
  let s = stats_of Policy.Lru 4 [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "misses" 4 s.Cache.misses;
  Alcotest.(check int) "hits" 0 s.Cache.hits;
  (* no capacity evictions during the run; the end-of-trace flush then
     evicts all four resident lines *)
  Alcotest.(check int) "flush evictions" 4 s.Cache.evictions

let test_hits_when_fits () =
  let s = stats_of Policy.Lru 4 [ 0; 1; 2; 3; 0; 1; 2; 3; 3; 2 ] in
  Alcotest.(check int) "misses" 4 s.Cache.misses;
  Alcotest.(check int) "hits" 6 s.Cache.hits

let test_lru_eviction_order () =
  (* capacity 2: 0 1 2 -> evicts 0; touching 0 again misses, 2 hits *)
  let s = stats_of Policy.Lru 2 [ 0; 1; 2; 2; 0 ] in
  Alcotest.(check int) "misses" 4 s.Cache.misses;
  Alcotest.(check int) "hits" 1 s.Cache.hits

let test_lru_recency_update () =
  (* capacity 2: 0 1 0 2 -> on 2, victim is 1 (0 was refreshed); then 0 hits *)
  let s = stats_of Policy.Lru 2 [ 0; 1; 0; 2; 0 ] in
  Alcotest.(check int) "misses" 3 s.Cache.misses;
  Alcotest.(check int) "hits" 2 s.Cache.hits

let test_fifo_ignores_recency () =
  (* same trace under FIFO: victim on 2 is 0 (inserted first) -> final 0 misses *)
  let s = stats_of Policy.Fifo 2 [ 0; 1; 0; 2; 0 ] in
  Alcotest.(check int) "misses" 4 s.Cache.misses;
  Alcotest.(check int) "hits" 1 s.Cache.hits

let test_opt_keeps_nearest_use () =
  (* capacity 2, trace 0 1 2 0: OPT evicts 1 (never reused), keeping 0. *)
  let s = stats_of Policy.Opt 2 [ 0; 1; 2; 0 ] in
  Alcotest.(check int) "misses" 3 s.Cache.misses;
  Alcotest.(check int) "hits" 1 s.Cache.hits

let test_writeback_accounting () =
  let t = [| Trace.write 0; Trace.read 1; Trace.read 2 |] in
  let s = Trace.simulate ~policy:Policy.Lru ~capacity:2 t in
  (* 0 written (dirty), evicted by 2 -> 1 writeback during run; nothing
     dirty at flush. *)
  Alcotest.(check int) "writebacks" 1 s.Cache.writebacks;
  Alcotest.(check int) "words moved" 4 (Cache.words_moved ~line_words:1 s)

let test_flush_writes_dirty () =
  let t = [| Trace.write 0; Trace.write 1 |] in
  let s = Trace.simulate ~policy:Policy.Lru ~capacity:4 t in
  Alcotest.(check int) "flush writebacks" 2 s.Cache.writebacks

let test_clean_eviction_no_writeback () =
  let s = stats_of Policy.Lru 1 [ 0; 1; 2 ] in
  Alcotest.(check int) "no writebacks" 0 s.Cache.writebacks;
  (* two capacity evictions plus the final flush of line 2 *)
  Alcotest.(check int) "evictions" 3 s.Cache.evictions

let test_rewrite_dirty_once () =
  (* Writing the same line twice then evicting = one writeback. *)
  let t = [| Trace.write 5; Trace.write 5; Trace.read 6 |] in
  let s = Trace.simulate ~policy:Policy.Lru ~capacity:1 t in
  Alcotest.(check int) "one writeback" 1 s.Cache.writebacks

let test_line_granularity () =
  (* line_words = 4: addresses 0..7 are 2 lines. *)
  let s = stats_of ~line_words:4 Policy.Lru 8 [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check int) "2 misses" 2 s.Cache.misses;
  Alcotest.(check int) "6 hits" 6 s.Cache.hits;
  Alcotest.(check int) "words moved" 8 (Cache.words_moved ~line_words:4 s)

let test_online_cache_api () =
  let c = Cache.create ~policy:Policy.Lru ~capacity:2 () in
  Cache.access c ~write:false 10;
  Cache.access c ~write:true 11;
  Alcotest.(check bool) "resident" true (Cache.resident c 10);
  Cache.access c ~write:false 12;
  Alcotest.(check bool) "10 evicted" false (Cache.resident c 10);
  Cache.flush c;
  let s = Cache.stats c in
  Alcotest.(check int) "accesses" 3 s.Cache.accesses;
  Alcotest.(check int) "dirty flush" 1 s.Cache.writebacks;
  Alcotest.(check int) "capacity lines" 2 (Cache.capacity_lines c)

let test_create_validation () =
  Alcotest.check_raises "opt online"
    (Invalid_argument "Cache.create: OPT needs the full trace; use Trace.simulate") (fun () ->
    ignore (Cache.create ~policy:Policy.Opt ~capacity:4 ()));
  Alcotest.check_raises "capacity" (Invalid_argument "Cache.create: capacity below one line")
    (fun () -> ignore (Cache.create ~policy:Policy.Lru ~capacity:0 ()));
  Alcotest.check_raises "line_words" (Invalid_argument "Cache.create: line_words must be positive")
    (fun () -> ignore (Cache.create ~line_words:0 ~policy:Policy.Lru ~capacity:4 ()))

let test_words_touched () =
  Alcotest.(check int) "distinct" 3 (Trace.words_touched (reads [ 0; 1; 0; 2; 1 ]))

(* ------------------------------------------------------------------ *)
(* Brute-force OPT verification                                       *)
(* ------------------------------------------------------------------ *)

(* Minimum achievable misses for a read-only trace by exhaustive search
   over eviction choices. Exponential: keep traces tiny. *)
let brute_force_min_misses capacity trace =
  let n = Array.length trace in
  let module SS = Set.Make (Int) in
  let rec go i cached =
    if i = n then 0
    else begin
      let a = trace.(i).Trace.addr in
      if SS.mem a cached then go (i + 1) cached
      else if SS.cardinal cached < capacity then 1 + go (i + 1) (SS.add a cached)
      else begin
        (* try every victim *)
        SS.fold
          (fun victim best ->
            min best (1 + go (i + 1) (SS.add a (SS.remove victim cached))))
          cached max_int
      end
    end
  in
  go 0 SS.empty

let test_opt_matches_brute_force () =
  let cases =
    [
      (2, [ 0; 1; 2; 0; 1; 2 ]);
      (2, [ 0; 1; 2; 1; 0; 2; 0 ]);
      (3, [ 0; 1; 2; 3; 0; 1; 2; 3 ]);
      (2, [ 4; 4; 4; 4 ]);
      (3, [ 0; 1; 2; 3; 2; 1; 0; 3; 1 ]);
    ]
  in
  List.iter
    (fun (cap, addrs) ->
      let t = reads addrs in
      let opt = (Trace.simulate ~policy:Policy.Opt ~capacity:cap t).Cache.misses in
      let best = brute_force_min_misses cap t in
      Alcotest.(check int)
        (Printf.sprintf "cap=%d trace=%s" cap (String.concat "," (List.map string_of_int addrs)))
        best opt)
    cases

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let gen_trace =
  QCheck.Gen.(
    list_size (int_range 1 200) (pair (int_range 0 20) bool) >>= fun l ->
    return (Array.of_list (List.map (fun (a, w) -> { Trace.addr = a; write = w }) l)))

let arb_trace =
  QCheck.make
    ~print:(fun t ->
      String.concat ","
        (Array.to_list (Array.map (fun a -> Printf.sprintf "%s%d" (if a.Trace.write then "w" else "r") a.Trace.addr) t)))
    gen_trace

let arb_trace_cap = QCheck.pair arb_trace (QCheck.int_range 1 8)

let props =
  [
    QCheck.Test.make ~name:"OPT <= LRU misses" ~count:300 arb_trace_cap (fun (t, cap) ->
      (Trace.simulate ~policy:Policy.Opt ~capacity:cap t).Cache.misses
      <= (Trace.simulate ~policy:Policy.Lru ~capacity:cap t).Cache.misses);
    QCheck.Test.make ~name:"OPT <= FIFO misses" ~count:300 arb_trace_cap (fun (t, cap) ->
      (Trace.simulate ~policy:Policy.Opt ~capacity:cap t).Cache.misses
      <= (Trace.simulate ~policy:Policy.Fifo ~capacity:cap t).Cache.misses);
    QCheck.Test.make ~name:"LRU inclusion: more capacity never hurts" ~count:200
      arb_trace_cap (fun (t, cap) ->
        (Trace.simulate ~policy:Policy.Lru ~capacity:(cap + 1) t).Cache.misses
        <= (Trace.simulate ~policy:Policy.Lru ~capacity:cap t).Cache.misses);
    QCheck.Test.make ~name:"misses >= distinct lines (cold)" ~count:200 arb_trace_cap
      (fun (t, cap) ->
        List.for_all
          (fun p -> (Trace.simulate ~policy:p ~capacity:cap t).Cache.misses >= Trace.words_touched t)
          [ Policy.Lru; Policy.Fifo; Policy.Opt ]);
    QCheck.Test.make ~name:"hits + misses = accesses" ~count:200 arb_trace_cap
      (fun (t, cap) ->
        List.for_all
          (fun p ->
            let s = Trace.simulate ~policy:p ~capacity:cap t in
            s.Cache.hits + s.Cache.misses = Array.length t && s.Cache.accesses = Array.length t)
          [ Policy.Lru; Policy.Fifo; Policy.Opt ]);
    QCheck.Test.make ~name:"writebacks bounded by distinct written lines * misses" ~count:200
      arb_trace_cap (fun (t, cap) ->
        List.for_all
          (fun p ->
            let s = Trace.simulate ~policy:p ~capacity:cap t in
            s.Cache.writebacks <= s.Cache.misses (* each writeback needs a prior allocate *))
          [ Policy.Lru; Policy.Fifo; Policy.Opt ]);
    QCheck.Test.make ~name:"big cache: exactly one miss per distinct line" ~count:200 arb_trace
      (fun t ->
        (* no capacity evictions, so every resident line leaves at the
           flush: evictions = distinct lines = misses *)
        let s = Trace.simulate ~policy:Policy.Lru ~capacity:1024 t in
        s.Cache.misses = Trace.words_touched t && s.Cache.evictions = Trace.words_touched t);
    QCheck.Test.make ~name:"OPT matches brute force (tiny)" ~count:60
      (QCheck.pair
         (QCheck.make
            ~print:(fun t -> String.concat "," (Array.to_list (Array.map (fun a -> string_of_int a.Trace.addr) t)))
            QCheck.Gen.(
              list_size (int_range 1 10) (int_range 0 5) >>= fun l ->
              return (Array.of_list (List.map Trace.read l))))
         (QCheck.int_range 1 3))
      (fun (t, cap) ->
        (Trace.simulate ~policy:Policy.Opt ~capacity:cap t).Cache.misses
        = brute_force_min_misses cap t);
  ]


(* ------------------------------------------------------------------ *)
(* Negative addresses and line mapping                                *)
(* ------------------------------------------------------------------ *)

let test_negative_address_lines () =
  (* Floor-division line mapping: with line_words = 4, words -4..-1 are
     one line and 0..3 another. Truncating division used to fold words
     -3..3 onto just two lines, one of them seven words wide. *)
  let c = Cache.create ~line_words:4 ~policy:Policy.Lru ~capacity:64 () in
  Cache.access c ~write:false (-1);
  Alcotest.(check bool) "-4 same line" true (Cache.resident c (-4));
  Alcotest.(check bool) "-5 other line" false (Cache.resident c (-5));
  Alcotest.(check bool) "0 other line" false (Cache.resident c 0);
  Cache.access c ~write:false (-2);
  Cache.access c ~write:false 1;
  let s = Cache.stats c in
  (* -1/-2 share a line; 1 is a distinct line (not folded onto it) *)
  Alcotest.(check int) "two lines, two misses" 2 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits

let test_negative_address_opt_matches_lru_mapping () =
  (* OPT uses the same floor line mapping as the online caches: a
     single-line working set of negative words stays one line. *)
  let t = reads [ -1; -2; -3; -4; -1 ] in
  let s = Trace.simulate ~line_words:4 ~policy:Policy.Opt ~capacity:8 t in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "four hits" 4 s.Cache.hits

(* ------------------------------------------------------------------ *)
(* Naive reference model and batched-run equivalence                  *)
(* ------------------------------------------------------------------ *)

let line_of ~line_words addr =
  if addr >= 0 then addr / line_words else -1 - ((-1 - addr) / line_words)

(* Obviously-correct list-based model: the resident set is an assoc list
   (line, dirty), most recent (LRU) / newest (FIFO) first, victim last.
   The flat-array simulator must match it field for field. *)
let naive_simulate ~line_words ~policy ~capacity (t : Trace.t) : Cache.stats =
  let cap_lines = capacity / line_words in
  let lst = ref [] in
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 and writebacks = ref 0 in
  Array.iter
    (fun (a : Trace.access) ->
      let line = line_of ~line_words a.Trace.addr in
      match List.assoc_opt line !lst with
      | Some d ->
        incr hits;
        let d = d || a.Trace.write in
        if policy = Policy.Lru then lst := (line, d) :: List.remove_assoc line !lst
        else lst := List.map (fun (l, dd) -> if l = line then (l, d) else (l, dd)) !lst
      | None ->
        incr misses;
        if List.length !lst >= cap_lines then begin
          match List.rev !lst with
          | (vl, vd) :: _ ->
            incr evictions;
            if vd then incr writebacks;
            lst := List.remove_assoc vl !lst
          | [] -> assert false
        end;
        lst := (line, a.Trace.write) :: !lst)
    t;
  List.iter
    (fun (_, d) ->
      incr evictions;
      if d then incr writebacks)
    !lst;
  {
    Cache.accesses = Array.length t;
    hits = !hits;
    misses = !misses;
    evictions = !evictions;
    writebacks = !writebacks;
  }

(* Replay a trace through access_run, merging maximal runs of
   consecutive same-line accesses exactly as the executor does. *)
let simulate_batched ~line_words ~policy ~capacity (t : Trace.t) : Cache.stats =
  let c = Cache.create ~line_words ~policy ~capacity () in
  let n = Array.length t in
  let i = ref 0 in
  while !i < n do
    let line = line_of ~line_words t.(!i).Trace.addr in
    let j = ref !i and any_write = ref false in
    while !j < n && line_of ~line_words t.(!j).Trace.addr = line do
      any_write := !any_write || t.(!j).Trace.write;
      incr j
    done;
    Cache.access_run c ~write:!any_write ~count:(!j - !i) t.(!i).Trace.addr;
    i := !j
  done;
  Cache.flush c;
  Cache.stats c

let simulate_hierarchy_per_word ~line_words ~capacities (t : Trace.t) =
  let h = Hierarchy.create ~line_words ~capacities () in
  Array.iter (fun (a : Trace.access) -> Hierarchy.access h ~write:a.Trace.write a.Trace.addr) t;
  Hierarchy.flush h;
  Hierarchy.stats h

let simulate_hierarchy_batched ~line_words ~capacities (t : Trace.t) =
  let h = Hierarchy.create ~line_words ~capacities () in
  let n = Array.length t in
  let i = ref 0 in
  while !i < n do
    let line = line_of ~line_words t.(!i).Trace.addr in
    let j = ref !i and any_write = ref false in
    while !j < n && line_of ~line_words t.(!j).Trace.addr = line do
      any_write := !any_write || t.(!j).Trace.write;
      incr j
    done;
    Hierarchy.access_run h ~first_write:t.(!i).Trace.write ~any_write:!any_write
      ~count:(!j - !i) t.(!i).Trace.addr;
    i := !j
  done;
  Hierarchy.flush h;
  Hierarchy.stats h

let stats_equal (a : Cache.stats) (b : Cache.stats) =
  a.Cache.accesses = b.Cache.accesses && a.Cache.hits = b.Cache.hits
  && a.Cache.misses = b.Cache.misses && a.Cache.evictions = b.Cache.evictions
  && a.Cache.writebacks = b.Cache.writebacks

(* Traces with negative addresses too, so the floor line mapping is
   exercised on both sides of the origin. *)
let gen_trace_signed =
  QCheck.Gen.(
    list_size (int_range 1 200) (pair (int_range (-20) 20) bool) >>= fun l ->
    return (Array.of_list (List.map (fun (a, w) -> { Trace.addr = a; write = w }) l)))

let arb_trace_signed =
  QCheck.make
    ~print:(fun t ->
      String.concat ","
        (Array.to_list
           (Array.map
              (fun a -> Printf.sprintf "%s%d" (if a.Trace.write then "w" else "r") a.Trace.addr)
              t)))
    gen_trace_signed

let batched_props =
  [
    QCheck.Test.make ~name:"flat cache = naive reference model" ~count:300
      (QCheck.triple arb_trace_signed (QCheck.int_range 1 8) (QCheck.int_range 1 4))
      (fun (t, cap_lines, line_words) ->
        List.for_all
          (fun policy ->
            let capacity = cap_lines * line_words in
            stats_equal
              (Trace.simulate ~line_words ~policy ~capacity t)
              (naive_simulate ~line_words ~policy ~capacity t))
          [ Policy.Lru; Policy.Fifo ]);
    QCheck.Test.make ~name:"access_run = word-by-word" ~count:300
      (QCheck.triple arb_trace_signed (QCheck.int_range 1 8) (QCheck.oneofl [ 1; 4; 8 ]))
      (fun (t, cap_lines, line_words) ->
        List.for_all
          (fun policy ->
            let capacity = cap_lines * line_words in
            stats_equal
              (Trace.simulate ~line_words ~policy ~capacity t)
              (simulate_batched ~line_words ~policy ~capacity t))
          [ Policy.Lru; Policy.Fifo ]);
    QCheck.Test.make ~name:"hierarchy access_run = word-by-word" ~count:200
      (QCheck.triple arb_trace_signed (QCheck.int_range 1 6) (QCheck.oneofl [ 1; 4 ]))
      (fun (t, cap_lines, line_words) ->
        let capacities = [| cap_lines * line_words; 4 * cap_lines * line_words |] in
        let a = simulate_hierarchy_per_word ~line_words ~capacities t in
        let b = simulate_hierarchy_batched ~line_words ~capacities t in
        Array.for_all2 stats_equal a b);
    QCheck.Test.make ~name:"after flush: evictions = misses at every level" ~count:200
      (QCheck.pair arb_trace_signed (QCheck.int_range 1 6))
      (fun (t, cap) ->
        (* every line that was ever allocated (a miss) eventually leaves,
           by capacity eviction or by the flush — at each level *)
        let s = simulate_hierarchy_per_word ~line_words:1 ~capacities:[| cap; 4 * cap |] t in
        Array.for_all (fun (l : Cache.stats) -> l.Cache.evictions = l.Cache.misses) s);
  ]

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                          *)
(* ------------------------------------------------------------------ *)

let test_hierarchy_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Hierarchy.create: need at least one level")
    (fun () -> ignore (Hierarchy.create ~capacities:[||] ()));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Hierarchy.create: capacities must be strictly increasing") (fun () ->
    ignore (Hierarchy.create ~capacities:[| 8; 8 |] ()));
  Alcotest.check_raises "opt" (Invalid_argument "Hierarchy.create: OPT is offline-only")
    (fun () -> ignore (Hierarchy.create ~policy:Policy.Opt ~capacities:[| 2; 4 |] ()))

let test_hierarchy_filtering () =
  (* L1 of 2 words, L2 of 4 words; stream 0 1 2 0 1 2:
     L1 thrashes (all 6 miss); L2 holds all three lines (3 misses). *)
  let h = Hierarchy.create ~capacities:[| 2; 4 |] () in
  List.iter (fun a -> Hierarchy.access h ~write:false a) [ 0; 1; 2; 0; 1; 2 ];
  let s = Hierarchy.stats h in
  Alcotest.(check int) "L1 misses" 6 s.(0).Cache.misses;
  Alcotest.(check int) "L2 accesses = L1 misses" 6 s.(1).Cache.accesses;
  Alcotest.(check int) "L2 misses" 3 s.(1).Cache.misses;
  Alcotest.(check int) "L2 hits" 3 s.(1).Cache.hits

let test_hierarchy_hit_in_l1 () =
  let h = Hierarchy.create ~capacities:[| 4; 16 |] () in
  List.iter (fun a -> Hierarchy.access h ~write:false a) [ 7; 7; 7; 7 ];
  let s = Hierarchy.stats h in
  Alcotest.(check int) "one L1 miss" 1 s.(0).Cache.misses;
  Alcotest.(check int) "L2 sees only the miss" 1 s.(1).Cache.accesses

let test_hierarchy_writeback_cascade () =
  (* Dirty line evicted from L1 must be written into L2. *)
  let h = Hierarchy.create ~capacities:[| 1; 8 |] () in
  Hierarchy.access h ~write:true 0;
  Hierarchy.access h ~write:false 1;
  (* evicts dirty 0 from L1 -> write access hits/installs in L2 *)
  let s = Hierarchy.stats h in
  Alcotest.(check int) "L1 writebacks" 1 s.(0).Cache.writebacks;
  (* L2 saw: miss(0), miss(1), writeback-write(0) = 3 accesses *)
  Alcotest.(check int) "L2 accesses" 3 s.(1).Cache.accesses;
  Hierarchy.flush h;
  let s = Hierarchy.stats h in
  (* after flush, the dirty 0 line leaves L2 too *)
  Alcotest.(check bool) "L2 flushed dirty" true (s.(1).Cache.writebacks >= 1)

let test_hierarchy_traffic_vector () =
  let h = Hierarchy.create ~capacities:[| 2; 8 |] () in
  List.iter (fun a -> Hierarchy.access h ~write:false a) [ 0; 1; 2; 3; 0; 1; 2; 3 ];
  Hierarchy.flush h;
  let t = Hierarchy.traffic h in
  Alcotest.(check int) "two boundaries" 2 (Array.length t);
  Alcotest.(check int) "L1 boundary = 8 (thrash)" 8 t.(0);
  Alcotest.(check int) "memory boundary = 4 (fits)" 4 t.(1);
  Alcotest.(check int) "levels" 2 (Hierarchy.levels h)


let test_hierarchy_fifo_and_lines () =
  (* hierarchy honors both policy and line granularity *)
  let h = Hierarchy.create ~line_words:2 ~policy:Policy.Fifo ~capacities:[| 4; 16 |] () in
  List.iter (fun a -> Hierarchy.access h ~write:false a) [ 0; 1; 2; 3; 0; 1 ];
  let s = Hierarchy.stats h in
  (* lines {0,1} and {2,3}: both fit L1 (2 lines) -> 2 misses, 4 hits *)
  Alcotest.(check int) "L1 misses" 2 s.(0).Cache.misses;
  Alcotest.(check int) "L1 hits" 4 s.(0).Cache.hits;
  Hierarchy.flush h;
  Alcotest.(check int) "memory words" 4 (Hierarchy.traffic h).(1)

let hierarchy_props =
  [
    QCheck.Test.make ~name:"level-k accesses = level-(k-1) misses + writebacks" ~count:150
      (QCheck.pair arb_trace (QCheck.int_range 1 6))
      (fun (t, cap) ->
        let h = Hierarchy.create ~capacities:[| cap; 4 * cap |] () in
        Array.iter (fun a -> Hierarchy.access h ~write:a.Trace.write a.Trace.addr) t;
        let s = Hierarchy.stats h in
        (* before flush: every L1 miss and every dirty L1 eviction reaches L2 *)
        s.(1).Cache.accesses = s.(0).Cache.misses + s.(0).Cache.writebacks);
    QCheck.Test.make ~name:"single-level hierarchy = plain cache" ~count:150
      (QCheck.pair arb_trace (QCheck.int_range 1 8))
      (fun (t, cap) ->
        let h = Hierarchy.create ~capacities:[| cap |] () in
        Array.iter (fun a -> Hierarchy.access h ~write:a.Trace.write a.Trace.addr) t;
        Hierarchy.flush h;
        let hs = (Hierarchy.stats h).(0) in
        let cs = Trace.simulate ~policy:Policy.Lru ~capacity:cap t in
        hs.Cache.misses = cs.Cache.misses && hs.Cache.writebacks = cs.Cache.writebacks);
    QCheck.Test.make ~name:"memory traffic <= single-small-cache traffic" ~count:150
      (QCheck.pair arb_trace (QCheck.int_range 1 6))
      (fun (t, cap) ->
        let h = Hierarchy.create ~capacities:[| cap; 8 * cap |] () in
        Array.iter (fun a -> Hierarchy.access h ~write:a.Trace.write a.Trace.addr) t;
        Hierarchy.flush h;
        let mem = (Hierarchy.traffic h).(1) in
        let single = Cache.words_moved ~line_words:1 (Trace.simulate ~policy:Policy.Lru ~capacity:cap t) in
        mem <= single);
  ]

let () =
  Alcotest.run "cachesim"
    [
      ( "unit",
        [
          Alcotest.test_case "cold misses" `Quick test_cold_misses;
          Alcotest.test_case "hits when fits" `Quick test_hits_when_fits;
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "LRU recency" `Quick test_lru_recency_update;
          Alcotest.test_case "FIFO vs recency" `Quick test_fifo_ignores_recency;
          Alcotest.test_case "OPT lookahead" `Quick test_opt_keeps_nearest_use;
          Alcotest.test_case "writeback accounting" `Quick test_writeback_accounting;
          Alcotest.test_case "flush dirty" `Quick test_flush_writes_dirty;
          Alcotest.test_case "clean eviction" `Quick test_clean_eviction_no_writeback;
          Alcotest.test_case "rewrite dirty once" `Quick test_rewrite_dirty_once;
          Alcotest.test_case "line granularity" `Quick test_line_granularity;
          Alcotest.test_case "online API" `Quick test_online_cache_api;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "words_touched" `Quick test_words_touched;
          Alcotest.test_case "OPT = brute force" `Quick test_opt_matches_brute_force;
          Alcotest.test_case "negative address lines" `Quick test_negative_address_lines;
          Alcotest.test_case "negative address OPT" `Quick
            test_negative_address_opt_matches_lru_mapping;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "validation" `Quick test_hierarchy_validation;
          Alcotest.test_case "filtering" `Quick test_hierarchy_filtering;
          Alcotest.test_case "hit in L1" `Quick test_hierarchy_hit_in_l1;
          Alcotest.test_case "writeback cascade" `Quick test_hierarchy_writeback_cascade;
          Alcotest.test_case "traffic vector" `Quick test_hierarchy_traffic_vector;
          Alcotest.test_case "fifo + lines" `Quick test_hierarchy_fifo_and_lines;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
      ("batched-properties", List.map QCheck_alcotest.to_alcotest batched_props);
      ("hierarchy-properties", List.map QCheck_alcotest.to_alcotest hierarchy_props);
    ]
