(* The tiling-plan layer (lib/plan + the Pipeline fast path): compiled
   per-shape dual-vertex tables must answer every (bounds, M) request
   with exactly the bytes the LP pipeline produces — these tests pin
   that equivalence (exact rational equality, then report-level byte
   identity), the JSON interchange format, and the oversized-shape
   refusal. *)

let rr a b = Rat.of_ints a b

let pp_beta beta =
  String.concat "," (Array.to_list (Array.map Rat.to_string beta))

(* ------------------------------------------------------------------ *)
(* Random projective programs (every loop covered by some array)       *)
(* ------------------------------------------------------------------ *)

let rand_spec rng =
  let d = 1 + Random.State.int rng 5 in
  let n = 1 + Random.State.int rng 4 in
  let rec arrays tries =
    if tries = 0 then None
    else begin
      let arrs =
        Array.init n (fun j ->
          let sup = List.filter (fun _ -> Random.State.bool rng) (List.init d Fun.id) in
          let sup = if sup = [] then [ Random.State.int rng d ] else sup in
          let mode =
            match Random.State.int rng 3 with
            | 0 -> Spec.Read
            | 1 -> Spec.Write
            | _ -> Spec.Update
          in
          Spec.array_ref ~mode (Printf.sprintf "A%d" j) sup)
      in
      let covered = Array.make d false in
      Array.iter
        (fun (a : Spec.array_ref) -> Array.iter (fun i -> covered.(i) <- true) a.Spec.support)
        arrs;
      if Array.for_all Fun.id covered then Some arrs else arrays (tries - 1)
    end
  in
  match arrays 50 with
  | None -> None
  | Some arrs -> (
    match
      Spec.create ~name:"rand"
        ~loops:(Array.init d (fun i -> Printf.sprintf "x%d" i))
        ~bounds:(Array.make d 8) ~arrays:arrs
    with
    | Ok s -> Some s
    | Error _ -> None)

(* Betas well past the [0, log_M max-bound] box (numerators up to 24,
   integer values up to 8) and with exact-zero components: the plan
   stores the unpruned vertex sets, so it must be exact everywhere. *)
let rand_beta rng d =
  Array.init d (fun _ ->
    match Random.State.int rng 6 with
    | 0 -> Rat.zero
    | 1 -> Rat.of_int (Random.State.int rng 9)
    | _ -> rr (Random.State.int rng 25) (1 + Random.State.int rng 6))

let check_point spec plan beta =
  let pl, pv = Tiling_plan.answer plan ~beta in
  let sol = Tiling.solve_lp_lexmax spec ~beta in
  if not (Rat.equal pv sol.Tiling.value && Array.for_all2 Rat.equal pl sol.Tiling.lambda)
  then
    Alcotest.failf "plan <> LP on %s at beta=[%s]: plan (%s, [%s]) vs lp (%s, [%s])"
      (Tiling_plan.key plan) (pp_beta beta) (Rat.to_string pv) (pp_beta pl)
      (Rat.to_string sol.Tiling.value) (pp_beta sol.Tiling.lambda)

let test_plan_matches_lp_random () =
  let rng = Random.State.make [| 0x9a7 |] in
  let trials = 120 in
  let done_ = ref 0 in
  while !done_ < trials do
    match rand_spec rng with
    | None -> ()
    | Some spec ->
      incr done_;
      let plan = Tiling_plan.compile spec in
      for _ = 1 to 3 do
        check_point spec plan (rand_beta rng (Spec.num_loops spec))
      done
  done

let test_out_of_box_boundary () =
  (* Regression for the closed-form box: Closed_form.compute prunes its
     vertex list to beta in [0,4]^d, a plan must not — probe exactly the
     boundary and beyond it. *)
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let plan = Tiling_plan.compile spec in
  List.iter
    (fun beta -> check_point spec plan beta)
    [
      [| Rat.of_int 4; Rat.of_int 4; Rat.of_int 4 |];
      (* the box corner *)
      [| Rat.of_int 5; rr 9 2; Rat.of_int 6 |];
      (* strictly outside *)
      [| Rat.of_int 100; Rat.of_int 100; Rat.of_int 100 |];
      [| Rat.zero; Rat.of_int 7; rr 1 3 |];
      (* mixed: a collapsed loop next to an out-of-box one *)
    ];
  (* deep outside the box the optimum saturates at the LP's cap *)
  let _, v = Tiling_plan.answer plan ~beta:[| Rat.of_int 100; Rat.of_int 100; Rat.of_int 100 |] in
  Alcotest.(check string) "saturated matmul exponent" "3/2" (Rat.to_string v)

let test_dual_is_feasible_witness () =
  (* The plan's dual is a genuine Theorem-2 witness: y >= 0 with, for
     every loop i, sum over rows covering i plus the loop's own row >= 1
     — checked through the public Report path in test_engine; here just
     arity and non-negativity via the plan API. *)
  let spec = Kernels.pointwise_conv ~b:2 ~c:4 ~k:8 ~w:7 ~h:7 in
  let plan = Tiling_plan.compile spec in
  let beta = Lower_bound.beta_of_bounds ~m:128 spec.Spec.bounds in
  let dual = Tiling_plan.dual plan spec ~beta in
  Alcotest.(check int) "dual arity = arrays + loops"
    (Spec.num_arrays spec + Spec.num_loops spec)
    (Array.length dual);
  Array.iter
    (fun y -> Alcotest.(check bool) "dual >= 0" true (Rat.sign y >= 0))
    dual

(* ------------------------------------------------------------------ *)
(* JSON interchange                                                    *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let rng = Random.State.make [| 0x715 |] in
  List.iter
    (fun spec ->
      let plan = Tiling_plan.compile spec in
      let json = Tiling_plan.to_json plan in
      match Jsonlite.parse json with
      | Error msg -> Alcotest.failf "plan JSON unparseable: %s" msg
      | Ok doc -> (
        match Tiling_plan.of_json doc with
        | Error msg -> Alcotest.failf "plan JSON rejected on re-read: %s" msg
        | Ok plan' ->
          (* canonical rendering: decode . encode is the identity *)
          Alcotest.(check string) "re-render byte-identical" json (Tiling_plan.to_json plan');
          Alcotest.(check string) "key survives" (Tiling_plan.key plan) (Tiling_plan.key plan');
          for _ = 1 to 5 do
            let beta = rand_beta rng (Spec.num_loops spec) in
            let l, v = Tiling_plan.answer plan ~beta in
            let l', v' = Tiling_plan.answer plan' ~beta in
            Alcotest.(check bool) "answers survive the round-trip" true
              (Rat.equal v v' && Array.for_all2 Rat.equal l l')
          done))
    [
      Kernels.matmul ~l1:64 ~l2:64 ~l3:64;
      Kernels.nbody ~l1:256 ~l2:256;
      Kernels.mttkrp ~i:8 ~j:8 ~k:8 ~r:4;
    ]

let test_json_rejects_corruption () =
  let plan = Tiling_plan.compile (Kernels.matmul ~l1:8 ~l2:8 ~l3:8) in
  let json = Tiling_plan.to_json plan in
  let expect_error label doc =
    match Jsonlite.parse doc with
    | Error _ -> ()
    | Ok j -> (
      match Tiling_plan.of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: corrupted plan accepted" label)
  in
  expect_error "not an object" "[1,2,3]";
  expect_error "missing levels" "{\"shape\":\"x\",\"d\":2,\"supports\":[[0],[1]]}";
  expect_error "negative rational"
    (Astring.String.cuts ~sep:"\"1\"" json |> String.concat "\"-1\"");
  expect_error "truncated levels"
    (Astring.String.cuts ~sep:"\"d\":3" json |> String.concat "\"d\":2")

(* ------------------------------------------------------------------ *)
(* Oversized shapes                                                    *)
(* ------------------------------------------------------------------ *)

(* 6 arrays over 20 loops, every array covering 19 of them: ~9*10^5
   candidate bases, far past the 2*10^5 compile budget. *)
let big_spec () =
  let d = 20 and n = 6 in
  let arrays =
    Array.init n (fun j ->
      let mode = if j = 0 then Spec.Update else Spec.Read in
      Spec.array_ref ~mode
        (Printf.sprintf "T%d" j)
        (List.filter (fun i -> i <> j) (List.init d Fun.id)))
  in
  Spec.create_exn ~name:"big"
    ~loops:(Array.init d (fun i -> Printf.sprintf "x%d" i))
    ~bounds:(Array.make d 2) ~arrays

let test_shape_too_large () =
  let spec = big_spec () in
  match Tiling_plan.compile spec with
  | _ -> Alcotest.fail "oversized shape compiled"
  | exception Invalid_argument msg -> (
    match Engine_error.of_exn (Invalid_argument msg) with
    | Some (Engine_error.Shape_too_large _ as e) ->
      Alcotest.(check string) "wire code" "shape_too_large" (Engine_error.code e);
      Alcotest.(check int) "exit code" 11 (Engine_error.exit_code e)
    | Some e -> Alcotest.failf "classified as %s" (Engine_error.code e)
    | None -> Alcotest.fail "not classified at all")

let test_plan_of_negative_cache () =
  Engine.reset_caches ();
  let spec = big_spec () in
  (match Engine.plan_of spec with
  | Ok _ -> Alcotest.fail "plan_of accepted an oversized shape"
  | Error (Engine_error.Shape_too_large _) -> ()
  | Error e -> Alcotest.failf "plan_of: wrong error %s" (Engine_error.code e));
  (* the failure is cached: asking again must not re-enumerate, and an
     analyze-path request for the same shape still succeeds via LP *)
  (match Engine.plan_of spec with
  | Error (Engine_error.Shape_too_large _) -> ()
  | _ -> Alcotest.fail "second plan_of not a cached refusal");
  (match Engine.analyze_checked spec ~m:128 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "analyze of oversized shape failed: %s" (Engine_error.code e));
  Engine.reset_caches ()

(* ------------------------------------------------------------------ *)
(* Pipeline integration: modes, byte identity, miss collapse           *)
(* ------------------------------------------------------------------ *)

let c_lp_misses = Obs.counter "memo.lp.misses"
let c_plan_hits = Obs.counter "memo.plan.hits"

let repeat_shape_reqs () =
  let specs =
    [
      Kernels.matmul ~l1:32 ~l2:32 ~l3:32;
      Kernels.matmul ~l1:512 ~l2:512 ~l3:4;
      Kernels.nbody ~l1:128 ~l2:1024;
      Kernels.nbody ~l1:64 ~l2:64;
    ]
  in
  ( List.concat_map
      (fun spec ->
        List.map (fun m -> Pipeline.request ~shared:true spec ~m) [ 64; 256; 1024 ])
      specs,
    List.length (List.sort_uniq compare (List.map Memo.key_of_shape specs)) )

let with_mode mode body =
  let m0 = Engine.plan_mode () in
  Engine.set_plan_mode mode;
  Fun.protect ~finally:(fun () ->
      Engine.set_plan_mode m0;
      Engine.reset_caches ())
    body

let run_reports reqs =
  List.map
    (function
      | Ok r -> Report.to_json ~timings:false r
      | Error e -> "error:" ^ Engine_error.code e)
    (Engine.sweep_checked ~jobs:1 reqs)

let test_plan_off_vs_inline_identical () =
  let reqs, distinct = repeat_shape_reqs () in
  let off =
    with_mode Engine.Plan_off (fun () ->
      Engine.reset_caches ();
      let m0 = Obs.value c_lp_misses in
      let r = run_reports reqs in
      (r, Obs.value c_lp_misses - m0))
  in
  let on =
    with_mode Engine.Plan_inline (fun () ->
      Engine.reset_caches ();
      let m0 = Obs.value c_lp_misses in
      let h0 = Obs.value c_plan_hits in
      let r = run_reports reqs in
      (r, Obs.value c_lp_misses - m0, Obs.value c_plan_hits - h0))
  in
  let off_jsons, off_misses = off in
  let on_jsons, on_misses, on_plan_hits = on in
  Alcotest.(check (list string)) "reports byte-identical" off_jsons on_jsons;
  Alcotest.(check int) "plans off: LP missed per point" (List.length reqs) off_misses;
  Alcotest.(check bool)
    (Printf.sprintf "plans on: <= 1 LP miss per distinct shape (%d <= %d)" on_misses distinct)
    true (on_misses <= distinct);
  Alcotest.(check bool) "plan cache actually hit" true (on_plan_hits > 0)

let test_deferred_compiles_between_batches () =
  with_mode Engine.Plan_deferred (fun () ->
    Engine.reset_caches ();
    let spec = Kernels.matmul ~l1:48 ~l2:48 ~l3:48 in
    (* first request: LP-served, shape queued rather than compiled *)
    (match Engine.analyze_checked spec ~m:256 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "analyze: %s" (Engine_error.code e));
    Alcotest.(check int) "shape pending after first touch" 1 (Pipeline.pending_count ());
    Alcotest.(check int) "batch boundary compiles it" 1 (Pipeline.compile_pending ());
    Alcotest.(check int) "queue drained" 0 (Pipeline.pending_count ());
    (* an unseen (bounds, M) point of the same shape is now plan-served:
       no new LP-memo miss *)
    let m0 = Obs.value c_lp_misses in
    (match Engine.analyze_checked (Kernels.matmul ~l1:96 ~l2:24 ~l3:48) ~m:512 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "analyze: %s" (Engine_error.code e));
    Alcotest.(check int) "plan-served: zero LP misses" 0 (Obs.value c_lp_misses - m0))

let test_install_preloaded_plan () =
  with_mode Engine.Plan_deferred (fun () ->
    Engine.reset_caches ();
    let spec = Kernels.mttkrp ~i:16 ~j:16 ~k:16 ~r:8 in
    (* simulate `serve --plans`: install a plan decoded from JSON, then
       even the first request avoids the LP *)
    let plan =
      match Jsonlite.parse (Tiling_plan.to_json (Tiling_plan.compile spec)) with
      | Ok doc -> (
        match Tiling_plan.of_json doc with
        | Ok p -> p
        | Error msg -> Alcotest.failf "of_json: %s" msg)
      | Error msg -> Alcotest.failf "parse: %s" msg
    in
    Engine.install_plan plan;
    let m0 = Obs.value c_lp_misses in
    (match Engine.analyze_checked spec ~m:4096 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "analyze: %s" (Engine_error.code e));
    Alcotest.(check int) "first request already plan-served" 0 (Obs.value c_lp_misses - m0);
    Alcotest.(check int) "nothing queued for compilation" 0 (Pipeline.pending_count ()))

let () =
  Alcotest.run "plan"
    [
      ( "exactness",
        [
          Alcotest.test_case "plan = lex-max LP on random programs" `Quick
            test_plan_matches_lp_random;
          Alcotest.test_case "out-of-box beta boundary" `Quick test_out_of_box_boundary;
          Alcotest.test_case "dual witness arity/sign" `Quick test_dual_is_feasible_witness;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip is the identity" `Quick test_json_roundtrip;
          Alcotest.test_case "corrupted bundles rejected" `Quick test_json_rejects_corruption;
        ] );
      ( "limits",
        [
          Alcotest.test_case "shape_too_large classification" `Quick test_shape_too_large;
          Alcotest.test_case "plan_of caches the refusal" `Quick test_plan_of_negative_cache;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "off vs inline: byte identity + miss collapse" `Quick
            test_plan_off_vs_inline_identical;
          Alcotest.test_case "deferred: compile between batches" `Quick
            test_deferred_compiles_between_batches;
          Alcotest.test_case "preloaded plan skips the LP" `Quick test_install_preloaded_plan;
        ] );
    ]
