(* The serve layer: request decoding, response encoding, and the
   transport-agnostic batching loop (driven by scripted events — no
   pipes or sockets, so every scenario is deterministic), plus the
   checked engine API underneath it. *)

let spec_of name =
  match Kernels.lookup name with
  | Ok s -> s
  | Error msg -> Alcotest.failf "preset %s: %s" name msg

(* ------------------------------------------------------------------ *)
(* Response-line probes (responses are JSON — parse them back)         *)
(* ------------------------------------------------------------------ *)

let parse_line line =
  match Jsonlite.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e

let resp_id line = Jsonlite.str_member "id" (parse_line line)

let resp_ok line =
  match Jsonlite.member "ok" (parse_line line) with
  | Some (Jsonlite.Bool b) -> b
  | _ -> Alcotest.failf "response missing \"ok\": %s" line

let resp_error_code line =
  match Jsonlite.member "error" (parse_line line) with
  | Some err -> Jsonlite.str_member "code" err
  | None -> None

let resp_version line =
  match Jsonlite.num_member "v" (parse_line line) with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "response missing \"v\": %s" line

(* ------------------------------------------------------------------ *)
(* Protocol: decoding                                                  *)
(* ------------------------------------------------------------------ *)

let test_decode_minimal () =
  match Request.decode {|{"kernel":"matmul","m":64}|} with
  | Error _ -> Alcotest.fail "minimal request rejected"
  | Ok req ->
    Alcotest.(check (option string)) "no id" None req.Request.id;
    Alcotest.(check int) "defaults to v1" 1 req.Request.v;
    Alcotest.(check string) "kernel" "matmul" req.Request.spec.Spec.name;
    (match req.Request.body with
    | Request.Analyze { m; sims; shared; timings } ->
      Alcotest.(check int) "m" 64 m;
      Alcotest.(check int) "no sims by default" 0 (List.length sims);
      Alcotest.(check bool) "shared defaults on" true shared;
      Alcotest.(check bool) "timings off" false timings
    | b -> Alcotest.failf "op-less v1 should decode as analyze, got %s" (Request.op_name b));
    Alcotest.(check bool) "no deadline" true (req.Request.deadline_s = None);
    (* the implicit op earns exactly one deprecated_field warning *)
    (match req.Request.warnings with
    | [ w ] ->
      Alcotest.(check string) "warning code" "deprecated_field" w.Serve_protocol.w_code;
      Alcotest.(check string) "warned field" "op" w.Serve_protocol.w_field
    | ws -> Alcotest.failf "expected 1 warning, got %d" (List.length ws))

let test_decode_full () =
  let line =
    {|{"v":1,"id":"q7","op":"analyze","kernel":"mv","m":256,"schedules":["optimal","classic"],|}
    ^ {|"policies":["lru","fifo"],"shared":false,"deadline_ms":1500,"timings":true}|}
  in
  match Request.decode line with
  | Error _ -> Alcotest.fail "full request rejected"
  | Ok req ->
    Alcotest.(check (option string)) "id" (Some "q7") req.Request.id;
    (* "mv" is the matvec alias *)
    Alcotest.(check string) "alias resolved" "matvec" req.Request.spec.Spec.name;
    (match req.Request.body with
    | Request.Analyze { sims; shared; timings; _ } ->
      Alcotest.(check int) "schedules x policies" 4 (List.length sims);
      Alcotest.(check bool) "shared off" false shared;
      Alcotest.(check bool) "timings on" true timings
    | b -> Alcotest.failf "wanted analyze, got %s" (Request.op_name b));
    Alcotest.(check (option (float 1e-9))) "deadline in seconds" (Some 1.5)
      req.Request.deadline_s;
    Alcotest.(check int) "explicit op: no warnings" 0 (List.length req.Request.warnings)

let test_decode_dsl () =
  match Request.decode {|{"kernel":"i = 8, j = 8 : A[i] += B[i,j]","m":32}|} with
  | Error _ -> Alcotest.fail "DSL kernel rejected"
  | Ok req -> Alcotest.(check int) "two loops" 2 (Array.length req.Request.spec.Spec.loops)

let expect_error name line pred =
  match Request.decode line with
  | Ok _ -> Alcotest.failf "%s: expected a decode error" name
  | Error { Request.err_id; err; _ } -> pred err_id err

let test_decode_errors () =
  expect_error "not json" "this is not json" (fun id err ->
    Alcotest.(check (option string)) "no id recoverable" None id;
    match err with
    | Engine_error.Parse_error { line = 0; col = 0; _ } -> ()
    | e -> Alcotest.failf "wanted parse_error at 0:0, got %s" (Engine_error.code e));
  expect_error "missing m" {|{"id":"x1","kernel":"matmul"}|} (fun id err ->
    (* the id still rides along so the error response can carry it *)
    Alcotest.(check (option string)) "id preserved" (Some "x1") id;
    Alcotest.(check string) "code" "invalid_request" (Engine_error.code err));
  expect_error "missing kernel" {|{"m":64}|} (fun _ err ->
    Alcotest.(check string) "code" "invalid_request" (Engine_error.code err));
  expect_error "bad version" {|{"v":3,"kernel":"matmul","m":64}|} (fun _ err ->
    Alcotest.(check string) "code" "invalid_request" (Engine_error.code err));
  (* v2 makes the op mandatory; the same line at v1 is fine *)
  expect_error "v2 without op" {|{"v":2,"kernel":"matmul","m":64}|} (fun _ err ->
    Alcotest.(check string) "code" "invalid_request" (Engine_error.code err));
  expect_error "unknown kernel" {|{"kernel":"nosuch","m":64}|} (fun _ err ->
    Alcotest.(check string) "code" "invalid_spec" (Engine_error.code err));
  expect_error "bad schedule" {|{"kernel":"matmul","m":64,"schedules":["zig"]}|}
    (fun _ err -> Alcotest.(check string) "code" "invalid_request" (Engine_error.code err));
  expect_error "bad dsl has position" {|{"kernel":"i = 4 : garbage[","m":64}|}
    (fun _ err ->
      match err with
      | Engine_error.Parse_error { line; _ } ->
        Alcotest.(check bool) "line set" true (line >= 1)
      | e -> Alcotest.failf "wanted parse_error, got %s" (Engine_error.code e))

let test_decode_compile_op () =
  (* op:"compile" needs only the kernel (a plan is size-independent) *)
  (match Request.decode {|{"id":"c1","op":"compile","kernel":"matmul"}|} with
  | Error _ -> Alcotest.fail "compile request rejected"
  | Ok req ->
    Alcotest.(check bool) "op decoded" true (req.Request.body = Request.Compile));
  (match Request.decode {|{"op":"analyze","kernel":"matmul","m":64}|} with
  | Error _ -> Alcotest.fail "explicit analyze rejected"
  | Ok req -> (
    match req.Request.body with
    | Request.Analyze _ -> ()
    | b -> Alcotest.failf "wanted analyze, got %s" (Request.op_name b)));
  expect_error "unknown op" {|{"op":"frobnicate","kernel":"matmul","m":64}|} (fun _ err ->
    Alcotest.(check string) "code" "invalid_request" (Engine_error.code err));
  (* analyze still requires m even when op is implicit *)
  expect_error "compile does not waive analyze's m" {|{"op":"analyze","kernel":"matmul"}|}
    (fun _ err ->
      Alcotest.(check string) "code" "invalid_request" (Engine_error.code err))

let test_decode_sweep_op () =
  (match Request.decode {|{"op":"sweep","kernel":"matmul","ms":[64,256,1024]}|} with
  | Error _ -> Alcotest.fail "sweep request rejected"
  | Ok req -> (
    match req.Request.body with
    | Request.Sweep { ms; sims; shared; _ } ->
      Alcotest.(check (list int)) "sizes in order" [ 64; 256; 1024 ] ms;
      Alcotest.(check int) "no sims by default" 0 (List.length sims);
      Alcotest.(check bool) "shared defaults on" true shared
    | b -> Alcotest.failf "wanted sweep, got %s" (Request.op_name b)));
  expect_error "missing ms" {|{"op":"sweep","kernel":"matmul"}|} (fun _ err ->
    Alcotest.(check string) "code" "invalid_request" (Engine_error.code err));
  expect_error "empty ms" {|{"op":"sweep","kernel":"matmul","ms":[]}|} (fun _ err ->
    Alcotest.(check string) "code" "invalid_request" (Engine_error.code err))

let test_decode_partition_op () =
  (match
     Request.decode {|{"v":2,"id":"p1","op":"partition","kernel":"matmul","p":64,"m":4096}|}
   with
  | Error _ -> Alcotest.fail "partition request rejected"
  | Ok req ->
    Alcotest.(check int) "v echoed" 2 req.Request.v;
    Alcotest.(check int) "no warnings at v2" 0 (List.length req.Request.warnings);
    (match req.Request.body with
    | Request.Partition { procs; m_local; net } ->
      Alcotest.(check int) "p" 64 procs;
      Alcotest.(check int) "m_local" 4096 m_local;
      Alcotest.(check bool) "net defaults to words" true (net = Partition_solve.Words)
    | b -> Alcotest.failf "wanted partition, got %s" (Request.op_name b)));
  (* alpha-beta network: numbers and "p/q" strings are both rationals *)
  (match
     Request.decode
       {|{"op":"partition","kernel":"matmul","p":8,"m":64,"net":{"alpha":2,"beta":"1/2"}}|}
   with
  | Ok { Request.body = Request.Partition { net = Partition_solve.Alpha_beta { alpha; beta }; _ }; _ }
    ->
    Alcotest.(check string) "alpha" "2" (Rat.to_string alpha);
    Alcotest.(check string) "beta" "1/2" (Rat.to_string beta)
  | _ -> Alcotest.fail "alpha-beta net rejected");
  expect_error "missing p" {|{"op":"partition","kernel":"matmul","m":64}|} (fun _ err ->
    Alcotest.(check string) "code" "invalid_request" (Engine_error.code err));
  expect_error "missing m" {|{"op":"partition","kernel":"matmul","p":8}|} (fun _ err ->
    Alcotest.(check string) "code" "invalid_request" (Engine_error.code err));
  expect_error "unknown net" {|{"op":"partition","kernel":"matmul","p":8,"m":64,"net":"rings"}|}
    (fun _ err ->
      Alcotest.(check string) "code" "network_model_invalid" (Engine_error.code err));
  expect_error "net not an object"
    {|{"op":"partition","kernel":"matmul","p":8,"m":64,"net":7}|} (fun _ err ->
      Alcotest.(check string) "code" "network_model_invalid" (Engine_error.code err))

let test_peek_id () =
  Alcotest.(check (option string)) "valid" (Some "a")
    (Serve_protocol.peek_id {|{"id":"a","kernel":"nosuch","m":1}|});
  Alcotest.(check (option string)) "malformed" None (Serve_protocol.peek_id "garbage")

let test_response_shapes () =
  let ok = Serve_protocol.ok_response ~v:1 ~id:(Some "a") ~report_json:{|{"x":1}|} () in
  Alcotest.(check string) "ok line" {|{"v":1,"id":"a","ok":true,"report":{"x":1}}|} ok;
  let warned =
    Serve_protocol.ok_response
      ~warnings:[ Serve_protocol.deprecated_field ~field:"op" ~message:"say the op" ]
      ~v:1 ~id:(Some "a") ~report_json:{|{"x":1}|} ()
  in
  Alcotest.(check string) "warnings sit between ok and the payload"
    {|{"v":1,"id":"a","ok":true,"warnings":[{"code":"deprecated_field","field":"op","message":"say the op"}],"report":{"x":1}}|}
    warned;
  let swept = Serve_protocol.sweep_response ~v:2 ~id:(Some "s") ~report_jsons:[ "{}"; "{}" ] () in
  Alcotest.(check string) "sweep line" {|{"v":2,"id":"s","ok":true,"reports":[{},{}]}|} swept;
  let part =
    Serve_protocol.partition_response ~v:2 ~id:(Some "p") ~partition_json:{|{"p":4}|} ()
  in
  Alcotest.(check string) "partition line" {|{"v":2,"id":"p","ok":true,"partition":{"p":4}}|}
    part;
  let err =
    Serve_protocol.error_response ~v:1 ~id:None
      (Engine_error.Parse_error { line = 3; col = 9; message = "boom" })
  in
  Alcotest.(check string) "error line"
    {|{"v":1,"id":null,"ok":false,"error":{"code":"parse_error","message":"parse error: line 3, col 9: boom","line":3,"col":9}}|}
    err

(* ------------------------------------------------------------------ *)
(* Checked engine API                                                  *)
(* ------------------------------------------------------------------ *)

let test_run_checked () =
  let spec = spec_of "matmul" in
  (match Engine.analyze_checked spec ~m:64 with
  | Ok r -> Alcotest.(check int) "m echoed" 64 r.Report.m
  | Error e -> Alcotest.failf "valid request failed: %s" (Engine_error.to_string e));
  (match Engine.analyze_checked spec ~m:1 with
  | Error (Engine_error.Cache_too_small { m = 1; _ }) -> ()
  | Error e -> Alcotest.failf "wanted cache_too_small, got %s" (Engine_error.code e)
  | Ok _ -> Alcotest.fail "m=1 accepted");
  (* an already-expired deadline trips before any work *)
  (match Engine.analyze_checked ~deadline:0.0 spec ~m:64 with
  | Error (Engine_error.Deadline_exceeded _) -> ()
  | Error e -> Alcotest.failf "wanted deadline_exceeded, got %s" (Engine_error.code e)
  | Ok _ -> Alcotest.fail "expired deadline accepted");
  (* the raising wrapper surfaces the same typed error *)
  match Pipeline.run (Pipeline.request spec ~m:1) with
  | _ -> Alcotest.fail "raising wrapper did not raise"
  | exception Engine_error.Error (Engine_error.Cache_too_small _) -> ()

let test_run_checked_too_large () =
  match Parser.parse_string "i = 2097152, j = 2097152, k = 2097152 : C[i,j,k] += A[i,j]" with
  | Error e -> Alcotest.failf "spec: %s" e
  | Ok spec -> (
    let sims = [ Pipeline.sim ~policy:Policy.Lru Pipeline.Optimal ] in
    match Engine.analyze_checked ~sims spec ~m:1024 with
    | Error (Engine_error.Kernel_too_large { iterations; _ }) ->
      Alcotest.(check string) "exact count" "9223372036854775808" iterations
    | Error e -> Alcotest.failf "wanted kernel_too_large, got %s" (Engine_error.code e)
    | Ok _ -> Alcotest.fail "2^63 iterations accepted for simulation")

(* ------------------------------------------------------------------ *)
(* The serve loop, driven by scripted events                           *)
(* ------------------------------------------------------------------ *)

let feeder events =
  let q = ref events in
  fun ~block:_ ->
    match !q with
    | [] -> Serve.Eof
    | e :: rest ->
      q := rest;
      e

let run_loop ?(cfg = { (Serve.default_config ()) with jobs = 1 }) events =
  let out = ref [] in
  Serve.serve cfg ~next:(feeder events) ~emit:(fun l -> out := l :: !out);
  List.rev !out

let req ?(extra = "") i = Printf.sprintf {|{"id":"r%d","kernel":"matvec","m":64%s}|} i extra

let test_loop_order () =
  (* one batch of four: responses come back in arrival order *)
  let events = [ Serve.Line (req 0); Line (req 1); Line (req 2); Line (req 3); Eof ] in
  let out = run_loop events in
  Alcotest.(check (list (option string))) "arrival order"
    [ Some "r0"; Some "r1"; Some "r2"; Some "r3" ]
    (List.map resp_id out);
  List.iter (fun l ->
    Alcotest.(check bool) "ok" true (resp_ok l);
    Alcotest.(check int) "versioned" 1 (resp_version l))
    out

let test_loop_wait_splits_batches () =
  (* Wait closes the current batch; the loop then blocks for the next *)
  let events = [ Serve.Line (req 0); Wait; Line (req 1); Eof ] in
  let out = run_loop events in
  Alcotest.(check int) "both answered" 2 (List.length out)

let test_loop_malformed_recovery () =
  (* a garbage line gets an error response under a minted "srv-N" id
     (the mint counter is process-wide, so only the prefix is stable
     within the test binary); the loop keeps serving *)
  let events =
    [ Serve.Line (req 0); Line "garbage"; Line {|{"id":"r2","kernel":"matvec"}|};
      Line (req 3); Eof ]
  in
  let out = run_loop events in
  let ids = List.map resp_id out in
  (match ids with
  | [ _; Some minted; _; _ ] ->
    Alcotest.(check bool)
      ("id-less line got a minted id: " ^ minted)
      true
      (String.length minted > 4 && String.sub minted 0 4 = "srv-")
  | _ -> Alcotest.failf "expected 4 responses, got %d" (List.length out));
  Alcotest.(check (list (option string))) "order kept, errors included"
    [ Some "r0"; List.nth ids 1; Some "r2"; Some "r3" ]
    ids;
  Alcotest.(check (list (option string))) "codes"
    [ None; Some "parse_error"; Some "invalid_request"; None ]
    (List.map resp_error_code out)

let test_loop_deadline () =
  (* deadline_ms 0 is the liveness probe: fails before any work *)
  let out = run_loop [ Serve.Line (req ~extra:{|,"deadline_ms":0|} 0); Eof ] in
  match out with
  | [ l ] ->
    Alcotest.(check bool) "not ok" false (resp_ok l);
    Alcotest.(check (option string)) "code" (Some "deadline_exceeded") (resp_error_code l)
  | _ -> Alcotest.failf "expected 1 response, got %d" (List.length out)

let test_loop_default_deadline () =
  (* config-level default applies only to requests without their own *)
  let cfg = { (Serve.default_config ()) with jobs = 1; default_deadline_s = Some 0.0 } in
  let out =
    run_loop ~cfg
      [ Serve.Line (req 0); Line (req ~extra:{|,"deadline_ms":60000|} 1); Eof ]
  in
  Alcotest.(check (list (option string))) "only r0 expired"
    [ Some "deadline_exceeded"; None ]
    (List.map resp_error_code out)

let test_loop_overloaded () =
  (* capacity 1: of three immediately-available lines, the first is
     admitted, the second rejected as overloaded (with its id), and the
     third — beyond this cycle's bounded reads — is served next cycle *)
  let cfg = { (Serve.default_config ()) with jobs = 1; queue_capacity = 1 } in
  let out = run_loop ~cfg [ Serve.Line (req 0); Line (req 1); Line (req 2); Eof ] in
  Alcotest.(check (list (option string))) "order"
    [ Some "r0"; Some "r1"; Some "r2" ]
    (List.map resp_id out);
  Alcotest.(check (list (option string))) "middle rejected"
    [ None; Some "overloaded"; None ]
    (List.map resp_error_code out)

let test_loop_eof_drains () =
  (* EOF seen while draining: the whole admitted batch is still answered *)
  let out = run_loop [ Serve.Line (req 0); Line (req 1); Line (req 2); Eof ] in
  Alcotest.(check int) "all three answered" 3 (List.length out)

let test_loop_stop_flag () =
  let out = ref [] in
  Serve.serve ~stop:(fun () -> true)
    { (Serve.default_config ()) with jobs = 1 }
    ~next:(feeder [ Serve.Line (req 0) ])
    ~emit:(fun l -> out := l :: !out);
  Alcotest.(check int) "stop before reading" 0 (List.length !out)

let test_batch_matches_sequential () =
  (* the same requests, batched wide vs one at a time, produce
     byte-identical response lines *)
  let reqs =
    List.init 8 (fun i ->
      Printf.sprintf
        {|{"id":"r%d","kernel":"%s","m":%d,"schedules":["optimal"]}|} i
        (if i mod 2 = 0 then "matvec" else "outer_product")
        (64 * (1 + (i mod 3))))
  in
  let wide =
    run_loop
      ~cfg:{ (Serve.default_config ()) with jobs = 4 }
      (List.map (fun l -> Serve.Line l) reqs @ [ Serve.Eof ])
  in
  let narrow =
    run_loop (List.concat_map (fun l -> [ Serve.Line l; Serve.Wait ]) reqs @ [ Serve.Eof ])
  in
  Alcotest.(check (list string)) "byte-identical" narrow wide

let test_report_matches_engine () =
  (* a serve response embeds exactly the report the engine API returns *)
  let spec = spec_of "matmul" in
  let expected =
    (* serve defaults shared:true, analyze_checked defaults it off *)
    match Engine.analyze_checked ~shared:true spec ~m:256 with
    | Ok r -> Report.to_json ~timings:false r
    | Error e -> Alcotest.failf "engine: %s" (Engine_error.to_string e)
  in
  let out =
    run_loop [ Serve.Line {|{"id":"a","op":"analyze","kernel":"matmul","m":256}|}; Eof ]
  in
  match out with
  | [ line ] ->
    Alcotest.(check string) "embedded verbatim"
      (Serve_protocol.ok_response ~v:1 ~id:(Some "a") ~report_json:expected ())
      line
  | _ -> Alcotest.failf "expected 1 response, got %d" (List.length out)

let test_loop_compile_op () =
  (* a compile request rides in a normal batch and returns the plan
     envelope; the plan is byte-identical to Tiling_plan.to_json *)
  let expected = Tiling_plan.to_json (Tiling_plan.compile (spec_of "matmul")) in
  let out =
    run_loop
      [
        Serve.Line {|{"id":"c1","op":"compile","kernel":"matmul"}|};
        Line (req 1);
        Eof;
      ]
  in
  match out with
  | [ plan_line; analyze_line ] ->
    Alcotest.(check string) "plan envelope"
      (Serve_protocol.plan_response ~v:1 ~id:(Some "c1") ~plan_json:expected ())
      plan_line;
    Alcotest.(check bool) "analyze unaffected" true (resp_ok analyze_line)
  | _ -> Alcotest.failf "expected 2 responses, got %d" (List.length out)

let test_loop_sweep_op () =
  (* a sweep request returns one envelope holding the same reports, in
     size order, that per-size analyze calls produce *)
  let spec = spec_of "matvec" in
  let expected =
    List.map
      (fun m ->
        match Engine.analyze_checked ~shared:true spec ~m with
        | Ok r -> Report.to_json ~timings:false r
        | Error e -> Alcotest.failf "engine: %s" (Engine_error.to_string e))
      [ 64; 256 ]
  in
  let out =
    run_loop [ Serve.Line {|{"id":"s1","op":"sweep","kernel":"matvec","ms":[64,256]}|}; Eof ]
  in
  match out with
  | [ line ] ->
    Alcotest.(check string) "sweep envelope"
      (Serve_protocol.sweep_response ~v:1 ~id:(Some "s1") ~report_jsons:expected ())
      line
  | _ -> Alcotest.failf "expected 1 response, got %d" (List.length out)

let test_loop_partition_op () =
  (* the serve partition payload is byte-identical to what the engine
     (and hence the CLI) renders for the same request *)
  let spec = spec_of "matmul" in
  let expected =
    match Engine.partition_checked spec ~p:64 ~m_local:4096 ~net:Partition_solve.Words with
    | Ok sol -> Partition_solve.to_json sol
    | Error e -> Alcotest.failf "engine: %s" (Engine_error.to_string e)
  in
  let out =
    run_loop
      [
        Serve.Line {|{"v":2,"id":"p1","op":"partition","kernel":"matmul","p":64,"m":4096}|};
        Eof;
      ]
  in
  match out with
  | [ line ] ->
    Alcotest.(check string) "partition envelope, v2 echoed"
      (Serve_protocol.partition_response ~v:2 ~id:(Some "p1") ~partition_json:expected ())
      line
  | _ -> Alcotest.failf "expected 1 response, got %d" (List.length out)

let test_loop_partition_errors () =
  (* typed partition failures ride the normal error envelope: a prime p
     that exceeds every loop bound cannot be factored into a grid, and a
     malformed or negative network model is rejected at decode/validate *)
  let out =
    run_loop
      [
        Serve.Line
          {|{"id":"e1","op":"partition","kernel":"i = 7, j = 7 : A[i] += B[i,j]","p":11,"m":64}|};
        Line {|{"id":"e2","op":"partition","kernel":"matmul","p":8,"m":64,"net":"rings"}|};
        Line
          {|{"id":"e3","op":"partition","kernel":"matmul","p":8,"m":64,"net":{"alpha":-1}}|};
        Eof;
      ]
  in
  Alcotest.(check (list (option string))) "ids"
    [ Some "e1"; Some "e2"; Some "e3" ]
    (List.map resp_id out);
  Alcotest.(check (list (option string))) "codes"
    [ Some "unfactorable_p"; Some "network_model_invalid"; Some "network_model_invalid" ]
    (List.map resp_error_code out)

let test_loop_version_echo_and_warnings () =
  (* responses echo the request's wire version; an op-less v1 line earns
     the structured deprecation warning, an explicit op does not *)
  let out =
    run_loop
      [
        Serve.Line {|{"id":"v2","v":2,"op":"analyze","kernel":"matvec","m":64}|};
        Line {|{"id":"v1","kernel":"matvec","m":64}|};
        Line {|{"id":"x","op":"analyze","kernel":"matvec","m":64}|};
        Eof;
      ]
  in
  Alcotest.(check (list int)) "versions echoed" [ 2; 1; 1 ] (List.map resp_version out);
  List.iter (fun l -> Alcotest.(check bool) "ok" true (resp_ok l)) out;
  let warning_fields line =
    match Jsonlite.member "warnings" (parse_line line) with
    | Some (Jsonlite.Arr ws) ->
      List.map
        (fun w ->
          ( Jsonlite.str_member "code" w |> Option.value ~default:"?",
            Jsonlite.str_member "field" w |> Option.value ~default:"?" ))
        ws
    | _ -> []
  in
  match out with
  | [ v2; v1; explicit ] ->
    Alcotest.(check (list (pair string string))) "v2 clean" [] (warning_fields v2);
    Alcotest.(check (list (pair string string))) "v1 op-less warned"
      [ ("deprecated_field", "op") ]
      (warning_fields v1);
    Alcotest.(check (list (pair string string))) "explicit op clean" []
      (warning_fields explicit)
  | _ -> Alcotest.failf "expected 3 responses, got %d" (List.length out)

let test_loop_deferred_warmup () =
  (* the daemon's contract: under Plan_deferred a batch's new shapes
     compile after its responses are flushed, so the next batch is
     plan-served with zero LP misses *)
  let mode0 = Engine.plan_mode () in
  Engine.set_plan_mode Engine.Plan_deferred;
  Fun.protect ~finally:(fun () ->
      Engine.set_plan_mode mode0;
      Engine.reset_caches ())
  @@ fun () ->
  Engine.reset_caches ();
  let c_lp = Obs.counter "memo.lp.misses" in
  let first = run_loop [ Serve.Line (req 0); Eof ] in
  Alcotest.(check int) "first batch answered" 1 (List.length first);
  Alcotest.(check int) "its shapes compiled at the batch boundary" 0
    (Pipeline.pending_count ());
  let m0 = Obs.value c_lp in
  let second =
    run_loop [ Serve.Line {|{"id":"warm","kernel":"matvec","m":4096}|}; Eof ]
  in
  Alcotest.(check int) "second batch answered" 1 (List.length second);
  Alcotest.(check int) "unseen M plan-served: zero LP misses" 0 (Obs.value c_lp - m0)

let test_serve_counters () =
  Obs.reset ();
  let cv name =
    let s = Obs.snapshot () in
    match List.assoc_opt name s.Obs.scounters with Some v -> v | None -> 0
  in
  let _ =
    run_loop
      [ Serve.Line (req 0); Line "garbage"; Line (req ~extra:{|,"deadline_ms":0|} 2); Eof ]
  in
  Alcotest.(check int) "requests" 3 (cv "serve.requests");
  Alcotest.(check int) "responses" 3 (cv "serve.responses");
  Alcotest.(check int) "errors" 2 (cv "serve.errors");
  Alcotest.(check int) "parse errors" 1 (cv "serve.parse_errors");
  Alcotest.(check int) "deadline exceeded" 1 (cv "serve.deadline_exceeded");
  Alcotest.(check int) "batches" 1 (cv "serve.batches");
  Alcotest.(check int) "batch high-watermark" 3 (cv "serve.batch_size_max")

let test_minted_ids () =
  (* id-less requests get consecutive "srv-N" ids in arrival order;
     client-supplied ids are echoed byte-for-byte, untouched by minting *)
  let noid = {|{"kernel":"matvec","m":64}|} in
  let out = run_loop [ Serve.Line noid; Line (req 1); Line noid; Eof ] in
  match List.map resp_id out with
  | [ Some a; Some b; Some c ] ->
    Alcotest.(check string) "client id echoed" "r1" b;
    let num id =
      Alcotest.(check bool) ("minted prefix: " ^ id) true
        (String.length id > 4 && String.sub id 0 4 = "srv-");
      int_of_string (String.sub id 4 (String.length id - 4))
    in
    Alcotest.(check int) "minted ids consecutive in arrival order" (num a + 1) (num c)
  | ids -> Alcotest.failf "expected 3 ids, got %d" (List.length ids)

let test_serve_gauges () =
  Obs.reset ();
  (* between batches both levels sit at zero; the watermark window shows
     the batch actually drove them up *)
  let _ = run_loop [ Serve.Line (req 0); Line (req 1); Line (req 2); Eof ] in
  let g = (Obs.snapshot ()).Obs.sgauges in
  (match List.assoc_opt "serve.queue_depth" g with
  | None -> Alcotest.fail "serve.queue_depth gauge missing"
  | Some st ->
    Alcotest.(check int) "queue idle after the batch" 0 st.Obs.gvalue;
    Alcotest.(check int) "window max saw the batch depth" 3 st.Obs.gmax);
  match List.assoc_opt "serve.inflight" g with
  | None -> Alcotest.fail "serve.inflight gauge missing"
  | Some st ->
    Alcotest.(check int) "nothing inflight after the batch" 0 st.Obs.gvalue;
    Alcotest.(check bool) "window max saw execution" true (st.Obs.gmax >= 1)

let test_loop_class_admission () =
  (* Per-class seats: with queue_capacity 1, one analytic and one
     simulation-class request are both admitted in the same cycle — the
     simulation line does not consume the analytic class's seat (the
     class-blind queue would have rejected it). The second analytic line
     overflows its own class and is rejected; the line after the
     rejection cap is left for the next cycle and served fine. *)
  let sim = {|,"schedules":["optimal"]|} in
  let cfg = { (Serve.default_config ()) with jobs = 1; queue_capacity = 1 } in
  let out =
    run_loop ~cfg
      [
        Serve.Line (req 0); Line (req ~extra:sim 1); Line (req 2);
        Line (req ~extra:sim 3); Eof;
      ]
  in
  Alcotest.(check (list (option string))) "arrival order"
    [ Some "r0"; Some "r1"; Some "r2"; Some "r3" ]
    (List.map resp_id out);
  Alcotest.(check (list (option string)))
    "both classes admitted; only the class overflow rejected"
    [ None; None; Some "overloaded"; None ]
    (List.map resp_error_code out)

let test_serve_class_telemetry () =
  (* One request per class: each lands in its own latency histogram and
     its own queue-depth gauge watermark. *)
  Obs.reset ();
  let out =
    run_loop
      [ Serve.Line (req 0); Line (req ~extra:{|,"schedules":["optimal"]|} 1); Eof ]
  in
  Alcotest.(check int) "both answered" 2 (List.length out);
  let s = Obs.snapshot () in
  let calls n =
    match List.assoc_opt n s.Obs.stimers with Some t -> t.Obs.tcalls | None -> 0
  in
  Alcotest.(check int) "one analytic-class request timed" 1
    (calls "serve.request.analytic");
  Alcotest.(check int) "one simulation-class request timed" 1
    (calls "serve.request.simulation");
  Alcotest.(check int) "the class histograms partition serve.request" 2
    (calls "serve.request");
  let gauge n =
    match List.assoc_opt n s.Obs.sgauges with
    | Some st -> st
    | None -> Alcotest.failf "gauge %s missing" n
  in
  List.iter
    (fun n ->
      let st = gauge n in
      Alcotest.(check int) (n ^ " idle after the batch") 0 st.Obs.gvalue;
      Alcotest.(check int) (n ^ " watermark saw its class") 1 st.Obs.gmax)
    [ "serve.queue_depth.analytic"; "serve.queue_depth.simulation" ]

let read_lines file =
  let ic = open_in file in
  let out = ref [] in
  (try
     while true do
       out := input_line ic :: !out
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out

let test_request_log_and_slow_log () =
  Obs.reset ();
  let path = Filename.temp_file "serve_log" ".jsonl" in
  Fun.protect ~finally:(fun () -> Obs.Log.disable (); Sys.remove path) @@ fun () ->
  (match Obs.Log.to_file path with
  | Error msg -> Alcotest.failf "to_file: %s" msg
  | Ok () -> ());
  Obs.Log.set_level Obs.Log.Info;
  (* slow_s = 0: every request trips the slow log *)
  let cfg = { (Serve.default_config ()) with jobs = 1; slow_s = Some 0.0 } in
  let out = run_loop ~cfg [ Serve.Line (req 0); Line {|{"kernel":"matvec","m":64}|}; Eof ] in
  Obs.Log.disable ();
  let events =
    List.map
      (fun l -> Result.get_ok (Jsonlite.parse l))
      (List.filter (fun l -> l <> "") (read_lines path))
  in
  let named name =
    List.filter (fun j -> Jsonlite.str_member "event" j = Some name) events
  in
  let field m j = Jsonlite.str_member m j in
  (* every response id appears, byte-for-byte, as a serve.request log id
     (and as the line's ambient correlation id) *)
  let log_ids = List.filter_map (field "id") (named "serve.request") in
  let resp_ids = List.filter_map resp_id out in
  Alcotest.(check (list string)) "log ids match response ids byte-for-byte"
    resp_ids log_ids;
  List.iter
    (fun j ->
      Alcotest.(check (option string)) "corr = id" (field "id" j) (field "corr" j);
      Alcotest.(check (option string)) "status ok" (Some "ok") (field "status" j))
    (named "serve.request");
  (* the slow log fired for both and carries per-stage wall times *)
  let slow = named "serve.slow_request" in
  Alcotest.(check int) "slow log per request" 2 (List.length slow);
  List.iter
    (fun j ->
      Alcotest.(check bool) "stage delta present" true
        (Jsonlite.num_member "analysis_ms" j <> None);
      Alcotest.(check bool) "total present" true (Jsonlite.num_member "ms" j <> None))
    slow

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "decode minimal" `Quick test_decode_minimal;
          Alcotest.test_case "decode full" `Quick test_decode_full;
          Alcotest.test_case "decode dsl" `Quick test_decode_dsl;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "decode compile op" `Quick test_decode_compile_op;
          Alcotest.test_case "decode sweep op" `Quick test_decode_sweep_op;
          Alcotest.test_case "decode partition op" `Quick test_decode_partition_op;
          Alcotest.test_case "peek id" `Quick test_peek_id;
          Alcotest.test_case "response shapes" `Quick test_response_shapes;
        ] );
      ( "checked",
        [
          Alcotest.test_case "run_checked" `Quick test_run_checked;
          Alcotest.test_case "kernel too large" `Quick test_run_checked_too_large;
        ] );
      ( "loop",
        [
          Alcotest.test_case "arrival order" `Quick test_loop_order;
          Alcotest.test_case "wait splits batches" `Quick test_loop_wait_splits_batches;
          Alcotest.test_case "malformed recovery" `Quick test_loop_malformed_recovery;
          Alcotest.test_case "deadline" `Quick test_loop_deadline;
          Alcotest.test_case "default deadline" `Quick test_loop_default_deadline;
          Alcotest.test_case "overloaded" `Quick test_loop_overloaded;
          Alcotest.test_case "eof drains batch" `Quick test_loop_eof_drains;
          Alcotest.test_case "stop flag" `Quick test_loop_stop_flag;
          Alcotest.test_case "batch = sequential" `Quick test_batch_matches_sequential;
          Alcotest.test_case "compile op" `Quick test_loop_compile_op;
          Alcotest.test_case "sweep op" `Quick test_loop_sweep_op;
          Alcotest.test_case "partition op" `Quick test_loop_partition_op;
          Alcotest.test_case "partition errors" `Quick test_loop_partition_errors;
          Alcotest.test_case "version echo and warnings" `Quick
            test_loop_version_echo_and_warnings;
          Alcotest.test_case "deferred warm-up" `Quick test_loop_deferred_warmup;
          Alcotest.test_case "report matches engine" `Quick test_report_matches_engine;
          Alcotest.test_case "serve counters" `Quick test_serve_counters;
          Alcotest.test_case "minted ids" `Quick test_minted_ids;
          Alcotest.test_case "queue and inflight gauges" `Quick test_serve_gauges;
          Alcotest.test_case "per-class admission" `Quick test_loop_class_admission;
          Alcotest.test_case "per-class telemetry" `Quick test_serve_class_telemetry;
          Alcotest.test_case "request and slow-request log" `Quick
            test_request_log_and_slow_log;
        ] );
    ]
