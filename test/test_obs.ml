(* Tests for the observability registry (lib/obs) and its wiring through
   the engine. The registry is global, so every test starts from
   Obs.reset (); the suite runs in its own executable. *)

let counter_value snap name = List.assoc_opt name snap.Obs.scounters
let timer_stat snap name = List.assoc_opt name snap.Obs.stimers

let test_counter_basics () =
  Obs.reset ();
  let c = Obs.counter "t.basic" in
  Alcotest.(check int) "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr ~by:41 c;
  Alcotest.(check int) "accumulates" 42 (Obs.value c);
  Alcotest.(check bool) "same name, same cell" true (Obs.counter "t.basic" == c);
  Obs.record_max c 10;
  Alcotest.(check int) "record_max keeps larger current" 42 (Obs.value c);
  Obs.record_max c 100;
  Alcotest.(check int) "record_max raises" 100 (Obs.value c)

let test_timer_basics () =
  Obs.reset ();
  let t = Obs.timer "t.timer" in
  let v = Obs.time t (fun () -> 7 * 6) in
  Alcotest.(check int) "returns the value" 42 v;
  Obs.add_seconds t 0.25;
  Alcotest.(check int) "two recordings" 2 (Obs.calls t);
  Alcotest.(check bool) "seconds accumulated" true (Obs.seconds t >= 0.25);
  Alcotest.check_raises "exceptions pass through but are recorded"
    (Failure "boom")
    (fun () -> Obs.time t (fun () -> failwith "boom"));
  Alcotest.(check int) "failed call counted" 3 (Obs.calls t)

let test_counter_under_pool_concurrency () =
  Obs.reset ();
  let c = Obs.counter "t.conc" in
  let n = 2000 in
  ignore (Pool.map ~jobs:4 (fun i -> Obs.incr ~by:i c) (Array.init n (fun i -> i)));
  Alcotest.(check int) "no lost increments" (n * (n - 1) / 2) (Obs.value c)

let test_record_max_under_pool_concurrency () =
  Obs.reset ();
  let c = Obs.counter "t.max" in
  ignore (Pool.map ~jobs:4 (fun i -> Obs.record_max c i) (Array.init 500 (fun i -> i)));
  Alcotest.(check int) "max survives races" 499 (Obs.value c)

let test_timer_under_pool_concurrency () =
  Obs.reset ();
  let t = Obs.timer "t.tconc" in
  let n = 200 in
  ignore (Pool.map ~jobs:4 (fun _ -> Obs.time t (fun () -> ())) (Array.make n ()));
  Alcotest.(check int) "every timing counted" n (Obs.calls t);
  Alcotest.(check bool) "non-negative total" true (Obs.seconds t >= 0.0)

let test_snapshot_sorted_and_reset () =
  Obs.reset ();
  Obs.incr (Obs.counter "t.zz");
  Obs.incr (Obs.counter "t.aa");
  Obs.add_seconds (Obs.timer "t.zt") 0.1;
  Obs.add_seconds (Obs.timer "t.at") 0.1;
  let s = Obs.snapshot () in
  let names = List.map fst s.Obs.scounters in
  Alcotest.(check (list string)) "counters sorted" (List.sort compare names) names;
  let tnames = List.map fst s.Obs.stimers in
  Alcotest.(check (list string)) "timers sorted" (List.sort compare tnames) tnames;
  Obs.reset ();
  let s' = Obs.snapshot () in
  Alcotest.(check int) "reset zeroes counters" 0
    (List.fold_left (fun acc (_, v) -> acc + v) 0 s'.Obs.scounters);
  (* handles created before the reset stay valid *)
  Obs.incr (Obs.counter "t.aa");
  Alcotest.(check int) "handle survives reset" 1 (Obs.value (Obs.counter "t.aa"))

let test_json_shape () =
  Obs.reset ();
  Obs.incr ~by:3 (Obs.counter "t.json \"quoted\"");
  Obs.add_seconds (Obs.timer "t.jt") 0.5;
  let j = Obs.to_json (Obs.snapshot ()) in
  let contains sub = Astring.String.is_infix ~affix:sub j in
  Alcotest.(check bool) "counters key" true (contains "\"counters\"");
  Alcotest.(check bool) "timers key" true (contains "\"timers\"");
  Alcotest.(check bool) "escaped name" true (contains "\\\"quoted\\\"");
  Alcotest.(check bool) "calls field" true (contains "\"calls\":1");
  let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 j in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check bool) "object" true
    (String.length j > 1 && j.[0] = '{' && j.[String.length j - 1] = '}')

(* ------------------------------------------------------------------ *)
(* Histograms and percentiles                                          *)
(* ------------------------------------------------------------------ *)

(* Log buckets (4 per octave) put ~19% worst-case relative error on any
   percentile estimate; 25% is a safe assertion margin. *)
let check_near name expected actual =
  let rel = Float.abs (actual -. expected) /. expected in
  if rel > 0.25 then Alcotest.failf "%s = %.0f, expected ~%.0f (err %.0f%%)" name actual expected (100. *. rel)

let test_histogram_percentiles () =
  Obs.reset ();
  let h = Obs.histogram "t.hist" in
  (* a long-tailed distribution with known quantiles: 900 fast samples,
     90 medium, 10 slow *)
  for _ = 1 to 900 do Obs.observe_ns h 1_000 done;
  for _ = 1 to 90 do Obs.observe_ns h 100_000 done;
  for _ = 1 to 10 do Obs.observe_ns h 10_000_000 done;
  Alcotest.(check int) "observations" 1000 (Obs.observations h);
  let d = List.assoc "t.hist" (Obs.snapshot ()).Obs.shists in
  Alcotest.(check int) "count" 1000 d.Obs.dcount;
  Alcotest.(check int) "sum exact" (900 * 1_000 + 90 * 100_000 + 10 * 10_000_000) d.Obs.dsum_ns;
  Alcotest.(check int) "max exact" 10_000_000 d.Obs.dmax_ns;
  check_near "mean" 109_900.0 (Obs.mean_ns d);
  check_near "p50" 1_000.0 (Obs.percentile d 50.0);
  check_near "p90" 1_000.0 (Obs.percentile d 90.0);
  check_near "p95" 100_000.0 (Obs.percentile d 95.0);
  check_near "p99.5" 10_000_000.0 (Obs.percentile d 99.5);
  (* the estimate never exceeds the recorded max *)
  Alcotest.(check bool) "p100 clamped to max" true
    (Obs.percentile d 100.0 <= float_of_int d.Obs.dmax_ns);
  Alcotest.(check (float 0.0)) "empty distribution" 0.0
    (Obs.percentile { Obs.dbuckets = [||]; dcount = 0; dsum_ns = 0; dmax_ns = 0 } 50.0)

let test_timer_feeds_histogram () =
  Obs.reset ();
  let t = Obs.timer "t.th" in
  for _ = 1 to 32 do Obs.add_seconds t 0.001 done;
  let st = List.assoc "t.th" (Obs.snapshot ()).Obs.stimers in
  Alcotest.(check int) "distribution count = calls" 32 st.Obs.tdist.Obs.dcount;
  check_near "p50 = 1ms" 1e6 (Obs.percentile st.Obs.tdist 50.0);
  check_near "p99 = 1ms" 1e6 (Obs.percentile st.Obs.tdist 99.0)

let test_diff () =
  Obs.reset ();
  let c = Obs.counter "t.dc" and t = Obs.timer "t.dt" in
  Obs.incr ~by:5 c;
  Obs.add_seconds t 0.01;
  let s0 = Obs.snapshot () in
  Obs.incr ~by:3 c;
  Obs.add_seconds t 0.02;
  Obs.add_seconds t 0.02;
  Obs.observe_ns (Obs.histogram "t.dh") 1_000;
  let d = Obs.diff s0 (Obs.snapshot ()) in
  Alcotest.(check (option int)) "counter delta" (Some 3) (counter_value d "t.dc");
  (match timer_stat d "t.dt" with
  | None -> Alcotest.fail "timer missing from diff"
  | Some st ->
    Alcotest.(check int) "timer call delta" 2 st.Obs.tcalls;
    Alcotest.(check bool) "timer seconds delta" true
      (Float.abs (st.Obs.tseconds -. 0.04) < 1e-3);
    Alcotest.(check int) "distribution delta" 2 st.Obs.tdist.Obs.dcount);
  (* a histogram born inside the window diffs against nothing *)
  let dh = List.assoc "t.dh" d.Obs.shists in
  Alcotest.(check int) "new histogram kept whole" 1 dh.Obs.dcount;
  (* never negative: when before > after (interleaved reset, or a diff
     taken backwards) the delta degrades to after's raw value *)
  let back = Obs.diff (Obs.snapshot ()) s0 in
  Alcotest.(check (option int)) "degrades to after's value" (Some 5)
    (counter_value back "t.dc")

let test_reset_clears_histograms () =
  Obs.reset ();
  let h = Obs.histogram "t.rh" in
  let t = Obs.timer "t.rt" in
  Obs.observe_ns h 500;
  Obs.add_seconds t 0.5;
  Obs.reset ();
  Alcotest.(check int) "observations cleared" 0 (Obs.observations h);
  Alcotest.(check int) "timer calls cleared" 0 (Obs.calls t);
  let d = List.assoc "t.rh" (Obs.snapshot ()).Obs.shists in
  Alcotest.(check int) "count cleared" 0 d.Obs.dcount;
  Alcotest.(check bool) "all buckets zero" true (Array.for_all (( = ) 0) d.Obs.dbuckets);
  Alcotest.(check int) "max cleared" 0 d.Obs.dmax_ns;
  (* handles stay live after the reset *)
  Obs.observe_ns h 500;
  Alcotest.(check int) "handle survives" 1 (Obs.observations h)

let test_histogram_under_pool_concurrency () =
  Obs.reset ();
  let h = Obs.histogram "t.hconc" in
  let n = 2000 in
  ignore (Pool.map ~jobs:4 (fun i -> Obs.observe_ns h (1 + i)) (Array.init n (fun i -> i)));
  let d = List.assoc "t.hconc" (Obs.snapshot ()).Obs.shists in
  Alcotest.(check int) "no lost observations" n d.Obs.dcount;
  Alcotest.(check int) "bucket totals agree" n (Array.fold_left ( + ) 0 d.Obs.dbuckets);
  Alcotest.(check int) "sum exact" (n * (n + 1) / 2) d.Obs.dsum_ns;
  Alcotest.(check int) "max exact" n d.Obs.dmax_ns

let test_pp_format () =
  Obs.reset ();
  Obs.incr ~by:1234567 (Obs.counter "t.big");
  Obs.add_seconds (Obs.timer "t.pt") 0.5;
  Obs.observe_s (Obs.histogram "t.ph") 0.25;
  let out = Format.asprintf "%a" Obs.pp (Obs.snapshot ()) in
  let contains sub = Astring.String.is_infix ~affix:sub out in
  Alcotest.(check bool) "thousands separators" true (contains "1,234,567");
  Alcotest.(check bool) "percentile columns" true (contains "p99");
  Alcotest.(check bool) "mean column" true (contains "mean");
  Alcotest.(check bool) "histogram section" true (contains "histograms:");
  Alcotest.(check bool) "human duration" true (contains "500.0ms");
  Alcotest.(check string) "group_int" "1,234,567" (Obs.group_int 1234567);
  Alcotest.(check string) "group_int small" "42" (Obs.group_int 42);
  Alcotest.(check string) "group_int negative" "-1,000" (Obs.group_int (-1000));
  Alcotest.(check string) "dur ns" "412ns" (Obs.pp_dur_ns 412.0);
  Alcotest.(check string) "dur us" "3.4us" (Obs.pp_dur_ns 3_400.0);
  Alcotest.(check string) "dur ms" "12.8ms" (Obs.pp_dur_ns 12_800_000.0);
  Alcotest.(check string) "dur s" "1.25s" (Obs.pp_dur_ns 1.25e9);
  Alcotest.(check string) "dur zero" "0" (Obs.pp_dur_ns 0.0)

let test_json_histogram_fields () =
  Obs.reset ();
  Obs.add_seconds (Obs.timer "t.jh") 0.125;
  Obs.observe_s (Obs.histogram "t.jhh") 0.125;
  let j = Obs.to_json (Obs.snapshot ()) in
  match Jsonlite.parse j with
  | Error msg -> Alcotest.failf "to_json unparseable: %s\n%s" msg j
  | Ok json ->
    let timer =
      Option.get (Jsonlite.member "t.jh" (Option.get (Jsonlite.member "timers" json)))
    in
    Alcotest.(check (option (float 1e-9))) "calls" (Some 1.0) (Jsonlite.num_member "calls" timer);
    (match Jsonlite.num_member "p50_s" timer with
    | None -> Alcotest.fail "p50_s missing"
    | Some p -> check_near "p50_s" 0.125 p);
    (match Jsonlite.num_member "max_s" timer with
    | None -> Alcotest.fail "max_s missing"
    | Some p -> check_near "max_s" 0.125 p);
    let hist =
      Jsonlite.member "t.jhh" (Option.get (Jsonlite.member "histograms" json))
    in
    Alcotest.(check bool) "histograms section carries the entry" true (hist <> None)

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

let test_gauge_basics () =
  Obs.reset ();
  let g = Obs.gauge "t.g" in
  Alcotest.(check int) "starts at zero" 0 (Obs.gauge_value g);
  Obs.set_gauge g 5;
  Obs.add_gauge g 3;
  Obs.add_gauge g (-6);
  Alcotest.(check int) "level after set/add" 2 (Obs.gauge_value g);
  Alcotest.(check bool) "same name, same cell" true (Obs.gauge "t.g" == g);
  let st = List.assoc "t.g" (Obs.snapshot ()).Obs.sgauges in
  Alcotest.(check int) "snapshot value" 2 st.Obs.gvalue;
  Alcotest.(check int) "window min saw the start" 0 st.Obs.gmin;
  Alcotest.(check int) "window max saw the peak" 8 st.Obs.gmax;
  (* rewind collapses the window to the current level *)
  Obs.rewind_gauges ();
  let st = List.assoc "t.g" (Obs.snapshot ()).Obs.sgauges in
  Alcotest.(check int) "rewound min" 2 st.Obs.gmin;
  Alcotest.(check int) "rewound max" 2 st.Obs.gmax;
  Obs.set_gauge g 7;
  let st = List.assoc "t.g" (Obs.snapshot ()).Obs.sgauges in
  Alcotest.(check int) "fresh window min" 2 st.Obs.gmin;
  Alcotest.(check int) "fresh window max" 7 st.Obs.gmax;
  (* the snapshot invariant holds by construction *)
  Alcotest.(check bool) "min <= value <= max" true
    (st.Obs.gmin <= st.Obs.gvalue && st.Obs.gvalue <= st.Obs.gmax);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes gauges" 0 (Obs.gauge_value g)

let test_gauge_diff_and_json () =
  Obs.reset ();
  let g = Obs.gauge "t.gd" in
  Obs.set_gauge g 10;
  let s0 = Obs.snapshot () in
  Obs.set_gauge g 4;
  (* levels, not flows: diff keeps after's stats verbatim *)
  let d = Obs.diff s0 (Obs.snapshot ()) in
  let st = List.assoc "t.gd" d.Obs.sgauges in
  Alcotest.(check int) "diff keeps the level" 4 st.Obs.gvalue;
  Alcotest.(check int) "diff keeps the max watermark" 10 st.Obs.gmax;
  match Jsonlite.parse (Obs.to_json (Obs.snapshot ())) with
  | Error msg -> Alcotest.failf "to_json unparseable: %s" msg
  | Ok json ->
    let gj =
      Option.get (Jsonlite.member "t.gd" (Option.get (Jsonlite.member "gauges" json)))
    in
    Alcotest.(check (option (float 0.0))) "json value" (Some 4.0)
      (Jsonlite.num_member "value" gj);
    Alcotest.(check (option (float 0.0))) "json min" (Some 0.0)
      (Jsonlite.num_member "min" gj);
    Alcotest.(check (option (float 0.0))) "json max" (Some 10.0)
      (Jsonlite.num_member "max" gj)

let test_gauge_under_pool_concurrency () =
  Obs.reset ();
  let g = Obs.gauge "t.gconc" in
  let n = 2000 in
  ignore
    (Pool.map ~jobs:4
       (fun _ ->
         Obs.add_gauge g 1;
         Obs.add_gauge g (-1))
       (Array.make n ()));
  Alcotest.(check int) "balanced adds return to zero" 0 (Obs.gauge_value g);
  let st = List.assoc "t.gconc" (Obs.snapshot ()).Obs.sgauges in
  Alcotest.(check bool) "max watermark saw at least one up" true (st.Obs.gmax >= 1);
  Alcotest.(check bool) "watermarks bracket the level" true
    (st.Obs.gmin <= 0 && st.Obs.gmax >= 0)

(* ------------------------------------------------------------------ *)
(* Structured logging                                                  *)
(* ------------------------------------------------------------------ *)

let read_lines file =
  let ic = open_in file in
  let out = ref [] in
  (try
     while true do
       out := input_line ic :: !out
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out

let test_log_jsonl_sink () =
  Obs.reset ();
  let path = Filename.temp_file "obs_log" ".jsonl" in
  Fun.protect ~finally:(fun () -> Obs.Log.disable (); Sys.remove path) @@ fun () ->
  (match Obs.Log.to_file path with
  | Error msg -> Alcotest.failf "to_file: %s" msg
  | Ok () -> ());
  Obs.Log.set_level Obs.Log.Info;
  Alcotest.(check bool) "info enabled" true (Obs.Log.is_enabled Obs.Log.Info);
  Alcotest.(check bool) "debug filtered" false (Obs.Log.is_enabled Obs.Log.Debug);
  Obs.Log.debug "t.invisible" [];
  Obs.Log.info "t.event"
    [ ("n", `I 42); ("f", `F 0.5); ("ok", `B true); ("s", `S "x\"y\\z") ];
  Obs.Log.with_corr "req-1" (fun () ->
      Alcotest.(check (option string)) "ambient corr" (Some "req-1") (Obs.Log.corr ());
      Obs.Log.with_corr "req-2" (fun () ->
          Alcotest.(check (option string)) "corr nests" (Some "req-2") (Obs.Log.corr ()));
      Obs.Log.warn "t.correlated" []);
  Alcotest.(check (option string)) "corr restored" None (Obs.Log.corr ());
  Obs.Log.disable ();
  Obs.Log.info "t.after_disable" [];
  let lines = read_lines path in
  Alcotest.(check int) "two lines reached the sink" 2 (List.length lines);
  Alcotest.(check int) "obs.log.lines counted them" 2
    (Obs.value (Obs.counter "obs.log.lines"));
  List.iter
    (fun line ->
      match Jsonlite.parse line with
      | Error msg -> Alcotest.failf "log line unparseable (%s): %s" msg line
      | Ok _ -> ())
    lines;
  let first = Result.get_ok (Jsonlite.parse (List.nth lines 0)) in
  Alcotest.(check (option string)) "event" (Some "t.event")
    (Jsonlite.str_member "event" first);
  Alcotest.(check (option string)) "level" (Some "info")
    (Jsonlite.str_member "level" first);
  Alcotest.(check (option (float 0.0))) "int field" (Some 42.0)
    (Jsonlite.num_member "n" first);
  Alcotest.(check (option string)) "escaped string field" (Some "x\"y\\z")
    (Jsonlite.str_member "s" first);
  Alcotest.(check bool) "ts present and recent" true
    (match Jsonlite.num_member "ts" first with
    | Some ts -> Float.abs (ts -. Unix.gettimeofday ()) < 3600.0
    | None -> false);
  let second = Result.get_ok (Jsonlite.parse (List.nth lines 1)) in
  Alcotest.(check (option string)) "corr stamped" (Some "req-1")
    (Jsonlite.str_member "corr" second);
  Alcotest.(check (option string)) "warn level" (Some "warn")
    (Jsonlite.str_member "level" second)

let test_log_levels () =
  Alcotest.(check (option string)) "parse warn"
    (Some "warn")
    (Option.map Obs.Log.level_name (Obs.Log.level_of_string "WARNING"));
  Alcotest.(check (option string)) "parse debug"
    (Some "debug")
    (Option.map Obs.Log.level_name (Obs.Log.level_of_string "debug"));
  Alcotest.(check bool) "garbage rejected" true
    (Obs.Log.level_of_string "loud" = None);
  Alcotest.(check bool) "no sink, nothing enabled" true
    (Obs.Log.disable (); not (Obs.Log.is_enabled Obs.Log.Error))

(* ------------------------------------------------------------------ *)
(* Histogram edges and metric-name escaping                            *)
(* ------------------------------------------------------------------ *)

let test_histogram_zero_and_single () =
  Obs.reset ();
  let _zero = Obs.histogram "t.zero" in
  let h1 = Obs.histogram "t.one" in
  Obs.observe_ns h1 5_000;
  let s = Obs.snapshot () in
  let dz = List.assoc "t.zero" s.Obs.shists in
  Alcotest.(check int) "zero samples: count" 0 dz.Obs.dcount;
  Alcotest.(check int) "zero samples: sum" 0 dz.Obs.dsum_ns;
  Alcotest.(check (float 0.0)) "zero samples: percentile" 0.0 (Obs.percentile dz 99.0);
  let d1 = List.assoc "t.one" s.Obs.shists in
  Alcotest.(check int) "single sample: count" 1 d1.Obs.dcount;
  Alcotest.(check int) "single sample: max exact" 5_000 d1.Obs.dmax_ns;
  check_near "single sample: p50" 5_000.0 (Obs.percentile d1 50.0);
  check_near "single sample: p99" 5_000.0 (Obs.percentile d1 99.0);
  Alcotest.(check bool) "single sample: clamped to max" true
    (Obs.percentile d1 100.0 <= float_of_int d1.Obs.dmax_ns);
  (* the empty histogram still renders as valid JSON *)
  match Jsonlite.parse (Obs.to_json s) with
  | Error msg -> Alcotest.failf "to_json with empty histogram: %s" msg
  | Ok _ -> ()

let test_histogram_saturating_sum () =
  Obs.reset ();
  let h = Obs.histogram "t.sat" in
  Obs.observe_ns h max_int;
  Obs.observe_ns h max_int;
  let d = List.assoc "t.sat" (Obs.snapshot ()).Obs.shists in
  Alcotest.(check int) "both observations counted" 2 d.Obs.dcount;
  Alcotest.(check int) "sum saturates instead of wrapping" max_int d.Obs.dsum_ns;
  Alcotest.(check bool) "mean stays non-negative" true (Obs.mean_ns d >= 0.0)

let test_diff_across_reset () =
  Obs.reset ();
  let c = Obs.counter "t.rst" and h = Obs.histogram "t.rsth" in
  Obs.incr ~by:9 c;
  Obs.observe_ns h 1_000;
  Obs.observe_ns h 1_000;
  let s0 = Obs.snapshot () in
  Obs.reset ();
  Obs.incr ~by:2 c;
  Obs.observe_ns h 3_000;
  let d = Obs.diff s0 (Obs.snapshot ()) in
  (* before > after everywhere the reset rolled back: each field
     degrades to after's raw value, never goes negative *)
  Alcotest.(check (option int)) "counter degrades" (Some 2) (counter_value d "t.rst");
  let dh = List.assoc "t.rsth" d.Obs.shists in
  Alcotest.(check int) "count degrades" 1 dh.Obs.dcount;
  Alcotest.(check bool) "no negative buckets" true
    (Array.for_all (fun v -> v >= 0) dh.Obs.dbuckets);
  Alcotest.(check bool) "sum non-negative" true (dh.Obs.dsum_ns >= 0)

(* A metric name round-trips through to_json + jsonlite byte-for-byte:
   quotes, backslashes, control characters and raw high bytes included.
   The snapshot is built directly so arbitrary names never pollute the
   global registry. *)
let name_roundtrips name =
  let snap =
    { Obs.scounters = [ (name, 1) ]; sgauges = []; stimers = []; shists = [] }
  in
  match Jsonlite.parse (Obs.to_json snap) with
  | Error _ -> false
  | Ok json -> (
    match Jsonlite.member "counters" json with
    | Some (Jsonlite.Obj [ (k, _) ]) -> String.equal k name
    | _ -> false)

let test_name_escaping_all_bytes () =
  let nasty = String.init 256 Char.chr in
  Alcotest.(check bool) "all 256 bytes round-trip" true (name_roundtrips nasty);
  List.iter
    (fun name ->
      Alcotest.(check bool) ("round-trips: " ^ String.escaped name) true
        (name_roundtrips name))
    [ "plain"; "with \"quotes\""; "back\\slash"; "new\nline"; "tab\there";
      "nul\000byte"; "del\127char"; "high\xc3\xa9bytes"; "" ]

let qcheck_name_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"metric names survive to_json round-trip"
       QCheck.string name_roundtrips)

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)
(* ------------------------------------------------------------------ *)

let sweep_reports () =
  let spec = Kernels.matmul ~l1:16 ~l2:16 ~l3:16 in
  let sims = Engine.[ Pipeline.sim Optimal; Pipeline.sim Classic ] in
  let reqs =
    List.map (fun m -> Pipeline.request ~sims ~shared:true spec ~m) [ 64; 128; 64 ]
  in
  Engine.sweep ~jobs:2 reqs

let test_engine_instrumentation () =
  Obs.reset ();
  Engine.reset_caches ();
  let reports = sweep_reports () in
  Alcotest.(check int) "three reports" 3 (List.length reports);
  let s = Obs.snapshot () in
  let cv name = Option.value ~default:0 (counter_value s name) in
  Alcotest.(check bool) "simplex solved something" true (cv "simplex.solves" > 0);
  Alcotest.(check bool) "simplex pivoted" true (cv "simplex.pivots" > 0);
  Alcotest.(check bool) "cachesim hits recorded" true (cv "cachesim.L1.hits" > 0);
  Alcotest.(check bool) "cachesim misses recorded" true (cv "cachesim.L1.misses" > 0);
  Alcotest.(check int) "requests counted" 3 (cv "pipeline.requests");
  Alcotest.(check int) "simulations counted" 6 (cv "pipeline.simulations");
  Alcotest.(check bool) "pool ran" true (cv "pool.maps" > 0);
  (* obs memo counters mirror the per-table counters exactly *)
  let hits, misses = Engine.cache_stats () in
  let sum suffix =
    List.fold_left
      (fun acc name -> acc + cv ("memo." ^ name ^ "." ^ suffix))
      0
      [ "lp"; "analysis"; "shared"; "nested"; "plan" ]
  in
  Alcotest.(check int) "memo hits mirrored" hits (sum "hits");
  Alcotest.(check int) "memo misses mirrored" misses (sum "misses");
  Alcotest.(check bool) "repeated m=64 request hit a cache" true (hits > 0);
  (* stage timers saw every request *)
  (match timer_stat s "pipeline.analysis" with
  | None -> Alcotest.fail "pipeline.analysis timer missing"
  | Some t ->
    Alcotest.(check int) "analysis timed per request" 3 t.Obs.tcalls;
    Alcotest.(check bool) "non-negative" true (t.Obs.tseconds >= 0.0))

let test_json_of_sweep_obs_section () =
  Obs.reset ();
  Engine.reset_caches ();
  let reports = sweep_reports () in
  let plain = Report.json_of_sweep ~timings:false reports in
  Alcotest.(check bool) "no obs: versioned object" true
    (String.length plain > 0 && plain.[0] = '{');
  Alcotest.(check bool) "no obs: schema version" true
    (Astring.String.is_prefix ~affix:"{\"v\":1," plain);
  Alcotest.(check bool) "no obs: reports key" true
    (Astring.String.is_infix ~affix:"\"reports\":[" plain);
  Alcotest.(check bool) "no obs: no obs key" true
    (not (Astring.String.is_infix ~affix:"\"obs\"" plain));
  let j = Report.json_of_sweep ~timings:false ~obs:(Obs.to_json (Obs.snapshot ())) reports in
  let contains sub = Astring.String.is_infix ~affix:sub j in
  Alcotest.(check bool) "wrapped object" true (j.[0] = '{');
  Alcotest.(check bool) "reports key" true (contains "\"reports\"");
  Alcotest.(check bool) "obs key" true (contains "\"obs\"");
  Alcotest.(check bool) "solver counters inside" true (contains "simplex.pivots")

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "timer basics" `Quick test_timer_basics;
          Alcotest.test_case "snapshot sorted; reset" `Quick test_snapshot_sorted_and_reset;
          Alcotest.test_case "json shape" `Quick test_json_shape;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "percentiles on a known distribution" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "timer feeds its histogram" `Quick test_timer_feeds_histogram;
          Alcotest.test_case "snapshot diff" `Quick test_diff;
          Alcotest.test_case "reset clears buckets" `Quick test_reset_clears_histograms;
          Alcotest.test_case "pp formatting" `Quick test_pp_format;
          Alcotest.test_case "json percentile fields" `Quick test_json_histogram_fields;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "set/add, watermarks, rewind" `Quick test_gauge_basics;
          Alcotest.test_case "diff keeps levels; json shape" `Quick test_gauge_diff_and_json;
        ] );
      ( "log",
        [
          Alcotest.test_case "jsonl sink, fields, correlation" `Quick test_log_jsonl_sink;
          Alcotest.test_case "level parsing and gating" `Quick test_log_levels;
        ] );
      ( "edges",
        [
          Alcotest.test_case "zero- and single-sample histograms" `Quick
            test_histogram_zero_and_single;
          Alcotest.test_case "saturating sum" `Quick test_histogram_saturating_sum;
          Alcotest.test_case "diff across a registry reset" `Quick test_diff_across_reset;
          Alcotest.test_case "name escaping, all bytes" `Quick test_name_escaping_all_bytes;
          qcheck_name_roundtrip;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "counters under Pool.map" `Quick test_counter_under_pool_concurrency;
          Alcotest.test_case "record_max under Pool.map" `Quick
            test_record_max_under_pool_concurrency;
          Alcotest.test_case "timers under Pool.map" `Quick test_timer_under_pool_concurrency;
          Alcotest.test_case "histograms under Pool.map" `Quick
            test_histogram_under_pool_concurrency;
          Alcotest.test_case "gauges under Pool.map" `Quick test_gauge_under_pool_concurrency;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sweep instrumentation" `Quick test_engine_instrumentation;
          Alcotest.test_case "json_of_sweep obs section" `Quick test_json_of_sweep_obs_section;
        ] );
    ]
