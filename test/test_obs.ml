(* Tests for the observability registry (lib/obs) and its wiring through
   the engine. The registry is global, so every test starts from
   Obs.reset (); the suite runs in its own executable. *)

let counter_value snap name = List.assoc_opt name snap.Obs.scounters
let timer_stat snap name = List.assoc_opt name snap.Obs.stimers

let test_counter_basics () =
  Obs.reset ();
  let c = Obs.counter "t.basic" in
  Alcotest.(check int) "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr ~by:41 c;
  Alcotest.(check int) "accumulates" 42 (Obs.value c);
  Alcotest.(check bool) "same name, same cell" true (Obs.counter "t.basic" == c);
  Obs.record_max c 10;
  Alcotest.(check int) "record_max keeps larger current" 42 (Obs.value c);
  Obs.record_max c 100;
  Alcotest.(check int) "record_max raises" 100 (Obs.value c)

let test_timer_basics () =
  Obs.reset ();
  let t = Obs.timer "t.timer" in
  let v = Obs.time t (fun () -> 7 * 6) in
  Alcotest.(check int) "returns the value" 42 v;
  Obs.add_seconds t 0.25;
  Alcotest.(check int) "two recordings" 2 (Obs.calls t);
  Alcotest.(check bool) "seconds accumulated" true (Obs.seconds t >= 0.25);
  Alcotest.check_raises "exceptions pass through but are recorded"
    (Failure "boom")
    (fun () -> Obs.time t (fun () -> failwith "boom"));
  Alcotest.(check int) "failed call counted" 3 (Obs.calls t)

let test_counter_under_pool_concurrency () =
  Obs.reset ();
  let c = Obs.counter "t.conc" in
  let n = 2000 in
  ignore (Pool.map ~jobs:4 (fun i -> Obs.incr ~by:i c) (Array.init n (fun i -> i)));
  Alcotest.(check int) "no lost increments" (n * (n - 1) / 2) (Obs.value c)

let test_record_max_under_pool_concurrency () =
  Obs.reset ();
  let c = Obs.counter "t.max" in
  ignore (Pool.map ~jobs:4 (fun i -> Obs.record_max c i) (Array.init 500 (fun i -> i)));
  Alcotest.(check int) "max survives races" 499 (Obs.value c)

let test_timer_under_pool_concurrency () =
  Obs.reset ();
  let t = Obs.timer "t.tconc" in
  let n = 200 in
  ignore (Pool.map ~jobs:4 (fun _ -> Obs.time t (fun () -> ())) (Array.make n ()));
  Alcotest.(check int) "every timing counted" n (Obs.calls t);
  Alcotest.(check bool) "non-negative total" true (Obs.seconds t >= 0.0)

let test_snapshot_sorted_and_reset () =
  Obs.reset ();
  Obs.incr (Obs.counter "t.zz");
  Obs.incr (Obs.counter "t.aa");
  Obs.add_seconds (Obs.timer "t.zt") 0.1;
  Obs.add_seconds (Obs.timer "t.at") 0.1;
  let s = Obs.snapshot () in
  let names = List.map fst s.Obs.scounters in
  Alcotest.(check (list string)) "counters sorted" (List.sort compare names) names;
  let tnames = List.map fst s.Obs.stimers in
  Alcotest.(check (list string)) "timers sorted" (List.sort compare tnames) tnames;
  Obs.reset ();
  let s' = Obs.snapshot () in
  Alcotest.(check int) "reset zeroes counters" 0
    (List.fold_left (fun acc (_, v) -> acc + v) 0 s'.Obs.scounters);
  (* handles created before the reset stay valid *)
  Obs.incr (Obs.counter "t.aa");
  Alcotest.(check int) "handle survives reset" 1 (Obs.value (Obs.counter "t.aa"))

let test_json_shape () =
  Obs.reset ();
  Obs.incr ~by:3 (Obs.counter "t.json \"quoted\"");
  Obs.add_seconds (Obs.timer "t.jt") 0.5;
  let j = Obs.to_json (Obs.snapshot ()) in
  let contains sub = Astring.String.is_infix ~affix:sub j in
  Alcotest.(check bool) "counters key" true (contains "\"counters\"");
  Alcotest.(check bool) "timers key" true (contains "\"timers\"");
  Alcotest.(check bool) "escaped name" true (contains "\\\"quoted\\\"");
  Alcotest.(check bool) "calls field" true (contains "\"calls\":1");
  let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 j in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check bool) "object" true
    (String.length j > 1 && j.[0] = '{' && j.[String.length j - 1] = '}')

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)
(* ------------------------------------------------------------------ *)

let sweep_reports () =
  let spec = Kernels.matmul ~l1:16 ~l2:16 ~l3:16 in
  let sims = Engine.[ Pipeline.sim Optimal; Pipeline.sim Classic ] in
  let reqs =
    List.map (fun m -> Pipeline.request ~sims ~shared:true spec ~m) [ 64; 128; 64 ]
  in
  Engine.sweep ~jobs:2 reqs

let test_engine_instrumentation () =
  Obs.reset ();
  Engine.reset_caches ();
  let reports = sweep_reports () in
  Alcotest.(check int) "three reports" 3 (List.length reports);
  let s = Obs.snapshot () in
  let cv name = Option.value ~default:0 (counter_value s name) in
  Alcotest.(check bool) "simplex solved something" true (cv "simplex.solves" > 0);
  Alcotest.(check bool) "simplex pivoted" true (cv "simplex.pivots" > 0);
  Alcotest.(check bool) "cachesim hits recorded" true (cv "cachesim.L1.hits" > 0);
  Alcotest.(check bool) "cachesim misses recorded" true (cv "cachesim.L1.misses" > 0);
  Alcotest.(check int) "requests counted" 3 (cv "pipeline.requests");
  Alcotest.(check int) "simulations counted" 6 (cv "pipeline.simulations");
  Alcotest.(check bool) "pool ran" true (cv "pool.maps" > 0);
  (* obs memo counters mirror the per-table counters exactly *)
  let hits, misses = Engine.cache_stats () in
  let sum suffix =
    List.fold_left
      (fun acc name -> acc + cv ("memo." ^ name ^ "." ^ suffix))
      0
      [ "lp"; "analysis"; "shared"; "nested" ]
  in
  Alcotest.(check int) "memo hits mirrored" hits (sum "hits");
  Alcotest.(check int) "memo misses mirrored" misses (sum "misses");
  Alcotest.(check bool) "repeated m=64 request hit a cache" true (hits > 0);
  (* stage timers saw every request *)
  (match timer_stat s "pipeline.analysis" with
  | None -> Alcotest.fail "pipeline.analysis timer missing"
  | Some t ->
    Alcotest.(check int) "analysis timed per request" 3 t.Obs.tcalls;
    Alcotest.(check bool) "non-negative" true (t.Obs.tseconds >= 0.0))

let test_json_of_sweep_obs_section () =
  Obs.reset ();
  Engine.reset_caches ();
  let reports = sweep_reports () in
  let plain = Report.json_of_sweep ~timings:false reports in
  Alcotest.(check bool) "no obs: bare array" true
    (String.length plain > 0 && plain.[0] = '[');
  let j = Report.json_of_sweep ~timings:false ~obs:(Obs.to_json (Obs.snapshot ())) reports in
  let contains sub = Astring.String.is_infix ~affix:sub j in
  Alcotest.(check bool) "wrapped object" true (j.[0] = '{');
  Alcotest.(check bool) "reports key" true (contains "\"reports\"");
  Alcotest.(check bool) "obs key" true (contains "\"obs\"");
  Alcotest.(check bool) "solver counters inside" true (contains "simplex.pivots")

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "timer basics" `Quick test_timer_basics;
          Alcotest.test_case "snapshot sorted; reset" `Quick test_snapshot_sorted_and_reset;
          Alcotest.test_case "json shape" `Quick test_json_shape;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "counters under Pool.map" `Quick test_counter_under_pool_concurrency;
          Alcotest.test_case "record_max under Pool.map" `Quick
            test_record_max_under_pool_concurrency;
          Alcotest.test_case "timers under Pool.map" `Quick test_timer_under_pool_concurrency;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sweep instrumentation" `Quick test_engine_instrumentation;
          Alcotest.test_case "json_of_sweep obs section" `Quick test_json_of_sweep_obs_section;
        ] );
    ]
