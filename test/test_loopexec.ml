(* Tests for layout, schedules, and the executor. *)

(* ------------------------------------------------------------------ *)
(* Layout                                                             *)
(* ------------------------------------------------------------------ *)

let test_layout_disjoint_and_dense () =
  let spec = Kernels.matmul ~l1:4 ~l2:5 ~l3:6 in
  let lay = Layout.make spec in
  Alcotest.(check int) "total words" (Spec.total_array_words spec) (Layout.total_words lay);
  (* every element of every array has a unique in-range address *)
  let seen = Hashtbl.create 64 in
  for j = 0 to Spec.num_arrays spec - 1 do
    let dims = Spec.array_dims spec j in
    let rec go idx k =
      if k = Array.length dims then begin
        let a = Layout.address_of_index lay j (Array.of_list (List.rev idx)) in
        Alcotest.(check bool) "in range" true (a >= 0 && a < Layout.total_words lay);
        Alcotest.(check bool) "unique" false (Hashtbl.mem seen a);
        Hashtbl.add seen a ()
      end
      else
        for v = 0 to dims.(k) - 1 do
          go (v :: idx) (k + 1)
        done
    in
    go [] 0
  done;
  Alcotest.(check int) "all addresses used" (Layout.total_words lay) (Hashtbl.length seen)

let test_layout_projection () =
  let spec = Kernels.matmul ~l1:4 ~l2:5 ~l3:6 in
  let lay = Layout.make spec in
  (* A(x1, x2) ignores x3 *)
  let a1 = Layout.address lay 1 [| 2; 3; 0 |] in
  let a2 = Layout.address lay 1 [| 2; 3; 5 |] in
  Alcotest.(check int) "projection drops x3" a1 a2;
  let a3 = Layout.address lay 1 [| 2; 4; 0 |] in
  Alcotest.(check bool) "distinct elements differ" true (a1 <> a3)

let test_layout_reverse () =
  let spec = Kernels.pointwise_conv ~b:2 ~c:3 ~k:4 ~w:5 ~h:6 in
  let lay = Layout.make spec in
  let addr = Layout.address_of_index lay 1 [| 1; 2; 3; 4 |] in
  (match Layout.array_of_address lay addr with
  | Some (j, idx) ->
    Alcotest.(check int) "array" 1 j;
    Alcotest.(check (array int)) "index" [| 1; 2; 3; 4 |] idx
  | None -> Alcotest.fail "reverse failed");
  Alcotest.(check bool) "out of range" true (Layout.array_of_address lay (-1) = None);
  Alcotest.(check bool) "past end" true
    (Layout.array_of_address lay (Layout.total_words lay) = None)

(* ------------------------------------------------------------------ *)
(* Schedules                                                          *)
(* ------------------------------------------------------------------ *)

let collect spec sched =
  let acc = ref [] in
  Schedules.iterate spec sched (fun p -> acc := Array.copy p :: !acc);
  List.rev !acc

let test_untiled_order () =
  let spec = Kernels.nbody ~l1:2 ~l2:3 in
  Alcotest.(check (list (array int)))
    "lexicographic"
    [ [| 0; 0 |]; [| 0; 1 |]; [| 0; 2 |]; [| 1; 0 |]; [| 1; 1 |]; [| 1; 2 |] ]
    (collect spec Schedules.Untiled)

let test_tiled_order () =
  let spec = Kernels.nbody ~l1:4 ~l2:2 in
  Alcotest.(check (list (array int)))
    "2x2 tiles"
    [
      [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |];
      [| 2; 0 |]; [| 2; 1 |]; [| 3; 0 |]; [| 3; 1 |];
    ]
    (collect spec (Schedules.Tiled [| 2; 2 |]))

let test_tiled_clipping () =
  (* bounds 5 with tile 2: edge tile of width 1; still every point once *)
  let spec = Kernels.nbody ~l1:5 ~l2:3 in
  let pts = collect spec (Schedules.Tiled [| 2; 2 |]) in
  Alcotest.(check int) "count" 15 (List.length pts);
  let tbl = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace tbl (p.(0), p.(1)) ()) pts;
  Alcotest.(check int) "all distinct" 15 (Hashtbl.length tbl)

let test_schedule_validation () =
  let spec = Kernels.nbody ~l1:4 ~l2:4 in
  (match Schedules.validate spec (Schedules.Tiled [| 2 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "arity must fail");
  (match Schedules.validate spec (Schedules.Tiled [| 0; 2 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero tile must fail");
  (match Schedules.validate spec (Schedules.Tiled [| 5; 2 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oversize tile must fail");
  match Schedules.validate spec (Schedules.Tiled [| 4; 1 |]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid tile rejected: %s" e

let test_classic_tile () =
  let spec = Kernels.matmul ~l1:1024 ~l2:1024 ~l3:1024 in
  let t = Schedules.classic_tile spec ~m:3072 in
  (* side = floor(sqrt(3072/3)) = 32 *)
  Alcotest.(check (array int)) "cube" [| 32; 32; 32 |] t;
  (* clamping against a small bound *)
  let small = Kernels.matmul ~l1:1024 ~l2:1024 ~l3:4 in
  let tc = Schedules.classic_tile small ~m:3072 in
  Alcotest.(check (array int)) "clamped" [| 32; 32; 4 |] tc;
  let tu = Schedules.classic_tile ~clamp:false small ~m:3072 in
  Alcotest.(check (array int)) "unclamped is infeasible" [| 32; 32; 32 |] tu;
  match Schedules.validate small (Schedules.Tiled tu) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unclamped classic tile should be invalid for small bounds"

(* ------------------------------------------------------------------ *)
(* Executor                                                           *)
(* ------------------------------------------------------------------ *)

let test_trace_shape () =
  let spec = Kernels.matmul ~l1:2 ~l2:2 ~l3:2 in
  (* per point: C read + C write + A read + B read = 4 accesses *)
  Alcotest.(check int) "trace length" (8 * 4) (Executor.trace_length spec);
  let t = Executor.trace_of spec ~schedule:Schedules.Untiled in
  Alcotest.(check int) "materialized" 32 (Array.length t);
  (* first point (0,0,0): C read, C write, A read, B read *)
  Alcotest.(check bool) "first is C read" true (not t.(0).Trace.write);
  Alcotest.(check bool) "second is C write" true t.(1).Trace.write;
  Alcotest.(check int) "same C address" t.(0).Trace.addr t.(1).Trace.addr

let test_infinite_cache_traffic () =
  (* Cache big enough for everything: words moved = compulsory misses +
     writebacks of outputs = total words + output words. *)
  let spec = Kernels.matmul ~l1:8 ~l2:8 ~l3:8 in
  let r = Executor.run spec ~schedule:Schedules.Untiled ~capacity:100000 in
  let c_words = Spec.array_words spec 0 in
  Alcotest.(check int) "words moved"
    (Spec.total_array_words spec + c_words)
    r.Executor.words_moved

let test_tiled_beats_untiled () =
  let spec = Kernels.matmul ~l1:48 ~l2:48 ~l3:48 in
  let m = 512 in
  let tile = Tiling.optimal spec ~m:(m / 3) in
  let tiled = Executor.run spec ~schedule:(Schedules.Tiled tile) ~capacity:m in
  let naive = Executor.run spec ~schedule:Schedules.Untiled ~capacity:m in
  Alcotest.(check bool) "tiled wins by 2x+" true
    (tiled.Executor.words_moved * 2 < naive.Executor.words_moved)

let test_measured_respects_lower_bound () =
  let spec = Kernels.matmul ~l1:48 ~l2:48 ~l3:48 in
  let m = 512 in
  let bound = Lower_bound.communication spec ~m in
  List.iter
    (fun sched ->
      List.iter
        (fun policy ->
          let r = Executor.run ~policy spec ~schedule:sched ~capacity:m in
          if float_of_int r.Executor.words_moved < bound.Lower_bound.words *. 0.999 then
            Alcotest.failf "%s/%s moved %d < bound %.1f"
              (Schedules.description spec sched)
              (Policy.to_string policy) r.Executor.words_moved bound.Lower_bound.words)
        [ Policy.Lru; Policy.Fifo; Policy.Opt ])
    [
      Schedules.Untiled;
      Schedules.Tiled (Tiling.optimal spec ~m:(m / 3));
      Schedules.Tiled (Schedules.classic_tile spec ~m);
    ]

let test_optimal_tiling_attains_bound () =
  (* The heart of the reproduction: the constructed tiling's measured
     traffic is within a small constant of the lower bound. *)
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let m = 768 in
  let bound = Lower_bound.communication spec ~m in
  let tile = Tiling.optimal spec ~m:(m / 3) in
  let r = Executor.run spec ~schedule:(Schedules.Tiled tile) ~capacity:m in
  let ratio = float_of_int r.Executor.words_moved /. bound.Lower_bound.words in
  if ratio > 8.0 then Alcotest.failf "attainment ratio %.2f too large" ratio

let test_matvec_traffic_near_matrix_size () =
  let spec = Kernels.matvec ~m:128 ~n:128 in
  let cap = 1024 in
  let tile = Tiling.optimal spec ~m:(cap / 3) in
  let r = Executor.run spec ~schedule:(Schedules.Tiled tile) ~capacity:cap in
  (* must read the 16384-word matrix once; little else *)
  let ratio = float_of_int r.Executor.words_moved /. 16384.0 in
  Alcotest.(check bool) "within 20% of matrix size" true (ratio >= 1.0 && ratio < 1.2)

let test_opt_policy_via_executor () =
  let spec = Kernels.matmul ~l1:12 ~l2:12 ~l3:12 in
  let tile = Tiling.optimal spec ~m:32 in
  let lru = Executor.run spec ~schedule:(Schedules.Tiled tile) ~capacity:96 in
  let opt = Executor.run ~policy:Policy.Opt spec ~schedule:(Schedules.Tiled tile) ~capacity:96 in
  Alcotest.(check bool) "OPT <= LRU" true
    (opt.Executor.stats.Cache.misses <= lru.Executor.stats.Cache.misses)


(* ------------------------------------------------------------------ *)
(* Permuted and Nested schedules, hierarchy execution                 *)
(* ------------------------------------------------------------------ *)

let test_permuted_order () =
  let spec = Kernels.nbody ~l1:2 ~l2:3 in
  Alcotest.(check (list (array int)))
    "x2 outermost"
    [ [| 0; 0 |]; [| 1; 0 |]; [| 0; 1 |]; [| 1; 1 |]; [| 0; 2 |]; [| 1; 2 |] ]
    (collect spec (Schedules.Permuted [| 1; 0 |]));
  (* identity permutation = untiled *)
  Alcotest.(check (list (array int)))
    "identity" (collect spec Schedules.Untiled)
    (collect spec (Schedules.Permuted [| 0; 1 |]))

let test_permuted_validation () =
  let spec = Kernels.nbody ~l1:2 ~l2:2 in
  List.iter
    (fun p ->
      match Schedules.validate spec (Schedules.Permuted p) with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted bad permutation")
    [ [| 0 |]; [| 0; 0 |]; [| 0; 2 |]; [| 1; -1 |] ]

let test_permuted_changes_traffic () =
  (* Matvec: y[i] += A[i,j] x[j]. With i outermost, x is re-read L1 times
     but streamed; with j outermost, A is walked column-wise. In both
     orders total distinct words are equal, but cache behaviour differs
     for a small cache. *)
  let spec = Kernels.matvec ~m:64 ~n:64 in
  let cap = 70 in
  let w_ij = (Executor.run spec ~schedule:(Schedules.Permuted [| 0; 1; 2 |]) ~capacity:cap).Executor.words_moved in
  let w_ji = (Executor.run spec ~schedule:(Schedules.Permuted [| 1; 0; 2 |]) ~capacity:cap).Executor.words_moved in
  Alcotest.(check bool)
    (Printf.sprintf "orders differ (%d vs %d)" w_ij w_ji)
    true (w_ij <> w_ji)

let test_nested_validation () =
  let spec = Kernels.matmul ~l1:8 ~l2:8 ~l3:8 in
  (match Schedules.validate spec (Schedules.Nested []) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty nested accepted");
  (match Schedules.validate spec (Schedules.Nested [ [| 4; 4; 4 |]; [| 2; 4; 4 |] ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "shrinking nested accepted");
  match Schedules.validate spec (Schedules.Nested [ [| 2; 2; 2 |]; [| 4; 4; 8 |] ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid nested rejected: %s" e

let test_nested_malformed () =
  (* Malformed Nested stacks: every failure mode of validate, with the
     message identifying the problem. *)
  let spec = Kernels.matmul ~l1:8 ~l2:8 ~l3:8 in
  let err sched =
    match Schedules.validate spec sched with
    | Error msg -> msg
    | Ok () -> Alcotest.fail "malformed nested schedule accepted"
  in
  Alcotest.(check bool) "empty stack" true
    (Astring.String.is_infix ~affix:"at least one level" (err (Schedules.Nested [])));
  Alcotest.(check bool) "wrong arity level" true
    (Astring.String.is_infix ~affix:"arity"
       (err (Schedules.Nested [ [| 2; 2 |]; [| 4; 4; 4 |] ])));
  Alcotest.(check bool) "zero tile dimension" true
    (Astring.String.is_infix ~affix:"outside"
       (err (Schedules.Nested [ [| 0; 2; 2 |]; [| 4; 4; 4 |] ])));
  Alcotest.(check bool) "dimension above loop bound" true
    (Astring.String.is_infix ~affix:"outside"
       (err (Schedules.Nested [ [| 2; 2; 2 |]; [| 4; 9; 4 |] ])));
  Alcotest.(check bool) "middle level shrinks" true
    (Astring.String.is_infix ~affix:"grow"
       (err (Schedules.Nested [ [| 2; 2; 2 |]; [| 4; 1; 4 |]; [| 8; 8; 8 |] ])));
  Alcotest.(check bool) "outermost level shrinks" true
    (Astring.String.is_infix ~affix:"grow"
       (err (Schedules.Nested [ [| 2; 2; 2 |]; [| 4; 4; 4 |]; [| 4; 4; 2 |] ])));
  (* equal adjacent levels are legal (a degenerate but valid nesting) *)
  match Schedules.validate spec (Schedules.Nested [ [| 2; 2; 2 |]; [| 2; 2; 2 |] ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "equal levels rejected: %s" e

let test_nested_visits_once () =
  let spec = Kernels.matmul ~l1:7 ~l2:5 ~l3:6 in
  let sched = Schedules.Nested [ [| 2; 2; 2 |]; [| 4; 4; 5 |] ] in
  let pts = collect spec sched in
  Alcotest.(check int) "count" 210 (List.length pts);
  let tbl = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace tbl (Array.to_list p) ()) pts;
  Alcotest.(check int) "distinct" 210 (Hashtbl.length tbl)

let test_nested_respects_outer_blocks () =
  (* All points of an outer block appear before any point of the next
     outer block. *)
  let spec = Kernels.nbody ~l1:8 ~l2:8 in
  let sched = Schedules.Nested [ [| 2; 2 |]; [| 4; 4 |] ] in
  let pts = collect spec sched in
  let block p = (p.(0) / 4, p.(1) / 4) in
  let seen = Hashtbl.create 8 in
  let current = ref None in
  List.iter
    (fun p ->
      let b = block p in
      match !current with
      | Some c when c = b -> ()
      | _ ->
        if Hashtbl.mem seen b then Alcotest.fail "re-entered an outer block";
        Hashtbl.add seen b ();
        current := Some b)
    pts

let test_nested_tiling_construction () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let tiles = Tiling.nested spec ~ms:[| 64; 1024 |] in
  Alcotest.(check int) "two levels" 2 (List.length tiles);
  (match tiles with
  | [ inner; outer ] ->
    Alcotest.(check bool) "monotone" true (Array.for_all2 ( <= ) inner outer);
    (match Schedules.validate spec (Schedules.Nested tiles) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid nested tiles: %s" e)
  | _ -> Alcotest.fail "level count");
  Alcotest.check_raises "bad ladder"
    (Invalid_argument "Tiling.nested: capacities must be strictly increasing") (fun () ->
    ignore (Tiling.nested spec ~ms:[| 64; 64 |]))

let test_hierarchy_execution_nested_wins () =
  (* The headline multi-level result, on a shape where the levels
     genuinely trade off: the nested tiling is simultaneously close to
     each single-level specialist on its strong boundary and strictly
     better on its weak one. (Single-level specialists lean on LRU to do
     implicit second-level blocking, so "close" carries a modest
     constant.) *)
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let caps = [| 256; 4096 |] in
  let run sched = (Executor.run_hierarchy spec ~schedule:sched ~capacities:caps).Executor.boundary_words in
  let inner = run (Schedules.Tiled (Tiling.optimal_shared spec ~m:caps.(0))) in
  let outer = run (Schedules.Tiled (Tiling.optimal_shared spec ~m:caps.(1))) in
  let naive = run Schedules.Untiled in
  let nested = run (Schedules.Nested (Tiling.nested spec ~ms:caps)) in
  Alcotest.(check bool)
    (Printf.sprintf "L1: nested %d within 2.2x of inner %d" nested.(0) inner.(0))
    true
    (float_of_int nested.(0) <= 2.2 *. float_of_int inner.(0));
  Alcotest.(check bool)
    (Printf.sprintf "mem: nested %d within 1.9x of outer %d" nested.(1) outer.(1))
    true
    (float_of_int nested.(1) <= 1.9 *. float_of_int outer.(1));
  Alcotest.(check bool)
    (Printf.sprintf "L1: nested %d halves outer %d" nested.(0) outer.(0))
    true
    (2 * nested.(0) < outer.(0));
  Alcotest.(check bool)
    (Printf.sprintf "mem: nested %d beats inner %d" nested.(1) inner.(1))
    true
    (nested.(1) < inner.(1));
  Alcotest.(check bool) "beats untiled at both boundaries" true
    (nested.(0) < naive.(0) && nested.(1) < naive.(1))

let test_hierarchy_execution_stats_shape () =
  let spec = Kernels.nbody ~l1:32 ~l2:32 in
  let r = Executor.run_hierarchy spec ~schedule:Schedules.Untiled ~capacities:[| 8; 64; 512 |] in
  Alcotest.(check int) "three levels" 3 (Array.length r.Executor.hstats);
  Alcotest.(check int) "three boundaries" 3 (Array.length r.Executor.boundary_words);
  (* traffic decreases (or stays equal) as we go outward for this nest *)
  Alcotest.(check bool) "monotone traffic" true
    (r.Executor.boundary_words.(0) >= r.Executor.boundary_words.(1)
     && r.Executor.boundary_words.(1) >= r.Executor.boundary_words.(2))

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let gen_small_spec =
  QCheck.Gen.(
    int_range 2 4 >>= fun d ->
    array_size (return d) (int_range 1 6) >>= fun bounds ->
    let loops = Array.init d (fun i -> Printf.sprintf "x%d" (i + 1)) in
    int_range 2 3 >>= fun n ->
    let mk_arrays () =
      Array.init n (fun j ->
        Spec.array_ref
          ~mode:(if j = 0 then Spec.Update else Spec.Read)
          (Printf.sprintf "A%d" j)
          (List.filter (fun i -> (i + j) mod n <> 0 || i mod n = j mod n) (List.init d (fun i -> i))))
    in
    let arrays = mk_arrays () in
    (* ensure coverage *)
    let covered = Array.make d false in
    Array.iter (fun (a : Spec.array_ref) -> Array.iter (fun i -> covered.(i) <- true) a.Spec.support) arrays;
    let arrays =
      Array.mapi
        (fun j (a : Spec.array_ref) ->
          if j = 0 then
            Spec.array_ref ~mode:a.Spec.mode a.Spec.aname
              (Array.to_list a.Spec.support
              @ List.filteri (fun i _ -> not covered.(i)) (List.init d (fun i -> i)))
          else a)
        arrays
    in
    match Spec.create ~name:"rand" ~loops ~bounds ~arrays with
    | Ok s -> return s
    | Error e -> failwith (Spec.string_of_error e))

let gen_tile spec =
  QCheck.Gen.(
    let d = Spec.num_loops spec in
    array_size (return d) (int_range 1 6) >>= fun raw ->
    return (Array.mapi (fun i v -> 1 + (v mod spec.Spec.bounds.(i))) raw))

let arb_spec_sched =
  QCheck.make
    ~print:(fun (s, sched) ->
      Format.asprintf "%a / %s" Spec.pp s (Schedules.description s sched))
    QCheck.Gen.(
      gen_small_spec >>= fun s ->
      oneof [ return Schedules.Untiled; map (fun t -> Schedules.Tiled t) (gen_tile s) ]
      >>= fun sched -> return (s, sched))

let props =
  [
    QCheck.Test.make ~name:"every schedule visits each point exactly once" ~count:150
      arb_spec_sched (fun (spec, sched) ->
        let tbl = Hashtbl.create 64 in
        Schedules.iterate spec sched (fun p ->
          let key = Array.to_list p in
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)));
        Hashtbl.length tbl = Spec.iteration_count spec
        && Hashtbl.fold (fun _ v acc -> acc && v = 1) tbl true);
    QCheck.Test.make ~name:"trace length formula" ~count:100 arb_spec_sched
      (fun (spec, sched) ->
        Array.length (Executor.trace_of spec ~schedule:sched) = Executor.trace_length spec);
    QCheck.Test.make ~name:"words moved >= compulsory" ~count:60 arb_spec_sched
      (fun (spec, sched) ->
        let r = Executor.run spec ~schedule:sched ~capacity:16 in
        r.Executor.words_moved >= Spec.total_array_words spec);
    QCheck.Test.make ~name:"schedule does not change infinite-cache traffic" ~count:60
      arb_spec_sched (fun (spec, sched) ->
        let big = 1 lsl 22 in
        let a = Executor.run spec ~schedule:sched ~capacity:big in
        let b = Executor.run spec ~schedule:Schedules.Untiled ~capacity:big in
        a.Executor.words_moved = b.Executor.words_moved);
  ]

let () =
  Alcotest.run "loopexec"
    [
      ( "layout",
        [
          Alcotest.test_case "dense and disjoint" `Quick test_layout_disjoint_and_dense;
          Alcotest.test_case "projection" `Quick test_layout_projection;
          Alcotest.test_case "reverse lookup" `Quick test_layout_reverse;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "untiled order" `Quick test_untiled_order;
          Alcotest.test_case "tiled order" `Quick test_tiled_order;
          Alcotest.test_case "clipping" `Quick test_tiled_clipping;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          Alcotest.test_case "classic tile" `Quick test_classic_tile;
        ] );
      ( "executor",
        [
          Alcotest.test_case "trace shape" `Quick test_trace_shape;
          Alcotest.test_case "infinite cache" `Quick test_infinite_cache_traffic;
          Alcotest.test_case "tiled beats untiled" `Quick test_tiled_beats_untiled;
          Alcotest.test_case "respects lower bound" `Quick test_measured_respects_lower_bound;
          Alcotest.test_case "attains bound" `Quick test_optimal_tiling_attains_bound;
          Alcotest.test_case "matvec traffic" `Quick test_matvec_traffic_near_matrix_size;
          Alcotest.test_case "OPT policy" `Quick test_opt_policy_via_executor;
        ] );
      ( "nested-permuted",
        [
          Alcotest.test_case "permuted order" `Quick test_permuted_order;
          Alcotest.test_case "permuted validation" `Quick test_permuted_validation;
          Alcotest.test_case "permuted traffic" `Quick test_permuted_changes_traffic;
          Alcotest.test_case "nested validation" `Quick test_nested_validation;
          Alcotest.test_case "nested malformed stacks" `Quick test_nested_malformed;
          Alcotest.test_case "nested visits once" `Quick test_nested_visits_once;
          Alcotest.test_case "nested block order" `Quick test_nested_respects_outer_blocks;
          Alcotest.test_case "nested tiling construction" `Quick test_nested_tiling_construction;
          Alcotest.test_case "hierarchy: nested wins" `Quick test_hierarchy_execution_nested_wins;
          Alcotest.test_case "hierarchy stats shape" `Quick test_hierarchy_execution_stats_shape;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
