(* Tests for the loop-nest IR: spec validation, stock kernels, and the
   textual DSL parser. *)

let spec_ok = function Ok s -> s | Error e -> Alcotest.failf "spec error: %s" (Spec.string_of_error e)

let mk ?(name = "t") loops bounds arrays =
  Spec.create ~name ~loops:(Array.of_list loops) ~bounds:(Array.of_list bounds)
    ~arrays:(Array.of_list arrays)

(* ------------------------------------------------------------------ *)
(* Spec                                                               *)
(* ------------------------------------------------------------------ *)

let test_create_valid () =
  let s = spec_ok (mk [ "i"; "j" ] [ 4; 5 ] [ Spec.array_ref "A" [ 0 ]; Spec.array_ref "B" [ 1 ] ]) in
  Alcotest.(check int) "loops" 2 (Spec.num_loops s);
  Alcotest.(check int) "arrays" 2 (Spec.num_arrays s);
  Alcotest.(check int) "iterations" 20 (Spec.iteration_count s)

let expect_error expected result =
  match result with
  | Ok _ -> Alcotest.fail "expected validation error"
  | Error e ->
    if e <> expected then
      Alcotest.failf "expected %s, got %s" (Spec.string_of_error expected)
        (Spec.string_of_error e)

let test_create_invalid () =
  expect_error Spec.Empty_loops (mk [] [] [ Spec.array_ref "A" [] ]);
  expect_error (Spec.Bad_bound { loop = "i"; bound = 0 })
    (mk [ "i" ] [ 0 ] [ Spec.array_ref "A" [ 0 ] ]);
  expect_error (Spec.Bad_bound { loop = "j"; bound = -2 })
    (mk [ "i"; "j" ] [ 3; -2 ] [ Spec.array_ref "A" [ 0; 1 ] ]);
  expect_error (Spec.Duplicate_loop "i")
    (mk [ "i"; "i" ] [ 3; 3 ] [ Spec.array_ref "A" [ 0; 1 ] ]);
  expect_error Spec.Empty_arrays (mk [ "i" ] [ 3 ] []);
  expect_error (Spec.Duplicate_array "A")
    (mk [ "i" ] [ 3 ] [ Spec.array_ref "A" [ 0 ]; Spec.array_ref "A" [ 0 ] ]);
  expect_error (Spec.Bad_support { array_name = "A"; index = 5 })
    (mk [ "i" ] [ 3 ] [ Spec.array_ref "A" [ 5 ] ]);
  expect_error (Spec.Unused_loop "j")
    (mk [ "i"; "j" ] [ 3; 3 ] [ Spec.array_ref "A" [ 0 ] ])

let test_unsorted_support_rejected () =
  (* Bypass array_ref's sort to hit the validator directly. *)
  let bad = { Spec.aname = "A"; support = [| 1; 0 |]; mode = Spec.Read } in
  expect_error (Spec.Unsorted_support "A")
    (Spec.create ~name:"t" ~loops:[| "i"; "j" |] ~bounds:[| 2; 2 |] ~arrays:[| bad |])

let test_array_ref_normalizes () =
  let a = Spec.array_ref "A" [ 2; 0; 2; 1 ] in
  Alcotest.(check (list int)) "sorted dedup" [ 0; 1; 2 ] (Array.to_list a.Spec.support)

let test_derived_quantities () =
  let s = Kernels.matmul ~l1:4 ~l2:5 ~l3:6 in
  Alcotest.(check int) "iterations" 120 (Spec.iteration_count s);
  Alcotest.(check int) "C words" 24 (Spec.array_words s 0);
  Alcotest.(check int) "A words" 20 (Spec.array_words s 1);
  Alcotest.(check int) "B words" 30 (Spec.array_words s 2);
  Alcotest.(check int) "total" 74 (Spec.total_array_words s);
  Alcotest.(check (list int)) "R_1 (x2)" [ 1; 2 ] (Spec.touching_arrays s 1);
  Alcotest.(check (list int)) "R_0 (x1)" [ 0; 1 ] (Spec.touching_arrays s 0);
  Alcotest.(check (list int)) "R_2 (x3)" [ 0; 2 ] (Spec.touching_arrays s 2);
  let phi = Spec.support_matrix s in
  Alcotest.(check (array (array int))) "support matrix"
    [| [| 1; 0; 1 |]; [| 1; 1; 0 |]; [| 0; 1; 1 |] |]
    phi;
  Alcotest.(check (option int)) "loop_index" (Some 1) (Spec.loop_index s "x2");
  Alcotest.(check (option int)) "loop_index missing" None (Spec.loop_index s "zz")

let test_with_bounds () =
  let s = Kernels.matmul ~l1:4 ~l2:5 ~l3:6 in
  let s2 = Spec.with_bounds s [| 7; 8; 9 |] in
  Alcotest.(check int) "new iterations" 504 (Spec.iteration_count s2);
  Alcotest.check_raises "arity" (Invalid_argument "Spec.with_bounds: arity mismatch") (fun () ->
    ignore (Spec.with_bounds s [| 1; 2 |]));
  Alcotest.check_raises "positive" (Invalid_argument "Spec.with_bounds: non-positive bound")
    (fun () -> ignore (Spec.with_bounds s [| 1; 2; 0 |]))

let test_equal_shape () =
  let a = Kernels.matmul ~l1:4 ~l2:5 ~l3:6 in
  let b = Kernels.fully_connected ~batch:10 ~cin:20 ~cout:30 in
  Alcotest.(check bool) "matmul ~ fully_connected" true (Spec.equal_shape a b);
  Alcotest.(check bool) "matmul != nbody" false
    (Spec.equal_shape a (Kernels.nbody ~l1:4 ~l2:4))

(* ------------------------------------------------------------------ *)
(* Kernels                                                            *)
(* ------------------------------------------------------------------ *)

let test_kernels_validate () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " nonempty") true (Spec.num_arrays s > 0))
    (Kernels.all ())

let test_tensor_contraction_shape () =
  (* j=1, k=3, d=4: A1(x1, x3, x4), A2(x1, x2), A3(x2, x3, x4) *)
  let s = Kernels.tensor_contraction ~j:1 ~k:3 ~d:4 ~bounds:[| 2; 3; 4; 5 |] in
  let sup j = Array.to_list s.Spec.arrays.(j).Spec.support in
  Alcotest.(check (list int)) "A1" [ 0; 2; 3 ] (sup 0);
  Alcotest.(check (list int)) "A2" [ 0; 1 ] (sup 1);
  Alcotest.(check (list int)) "A3" [ 1; 2; 3 ] (sup 2);
  Alcotest.check_raises "bad pattern"
    (Invalid_argument "Kernels.tensor_contraction: need 1 <= j < k-1 < d") (fun () ->
    ignore (Kernels.tensor_contraction ~j:2 ~k:3 ~d:4 ~bounds:[| 2; 2; 2; 2 |]))

let test_pointwise_conv_shape () =
  let s = Kernels.pointwise_conv ~b:2 ~c:3 ~k:4 ~w:5 ~h:6 in
  let sup j = Array.to_list s.Spec.arrays.(j).Spec.support in
  Alcotest.(check (list int)) "Out over b,k,w,h" [ 0; 2; 3; 4 ] (sup 0);
  Alcotest.(check (list int)) "Image over b,c,w,h" [ 0; 1; 3; 4 ] (sup 1);
  Alcotest.(check (list int)) "Filter over c,k" [ 1; 2 ] (sup 2);
  Alcotest.(check int) "Out words" (2 * 4 * 5 * 6) (Spec.array_words s 0)

let test_matvec_is_matmul_l3_1 () =
  let s = Kernels.matvec ~m:7 ~n:9 in
  Alcotest.(check int) "L3 = 1" 1 s.Spec.bounds.(2);
  Alcotest.(check bool) "shape" true (Spec.equal_shape s (Kernels.matmul ~l1:2 ~l2:2 ~l3:2))


let test_new_kernels_shapes () =
  let bm = Kernels.batched_matmul ~batch:4 ~l1:8 ~l2:8 ~l3:8 in
  Alcotest.(check int) "batched loops" 4 (Spec.num_loops bm);
  Alcotest.(check (list int)) "batch in C" [ 0; 1; 3 ]
    (Array.to_list bm.Spec.arrays.(0).Spec.support);
  let mt = Kernels.mttkrp ~i:4 ~j:4 ~k:4 ~r:4 in
  Alcotest.(check int) "mttkrp arrays" 4 (Spec.num_arrays mt);
  Alcotest.(check (list int)) "T support" [ 0; 1; 2 ]
    (Array.to_list mt.Spec.arrays.(1).Spec.support);
  let tb = Kernels.three_body ~l1:4 ~l2:4 ~l3:4 in
  Alcotest.(check int) "three_body arrays" 4 (Spec.num_arrays tb);
  Alcotest.(check (list int)) "R of x1" [ 0; 1 ] (Spec.touching_arrays tb 0)

let test_new_kernels_hbl_values () =
  (* batched matmul: constraints b: s_C+s_A+s_B >= 1, x1: C+A, x2: A+B,
     x3: C+B; the matmul point (1/2,1/2,1/2) still works -> s_HBL = 3/2 *)
  Alcotest.(check bool) "batched = 3/2" true
    (Rat.equal
       (Hbl_lp.s_hbl (Kernels.batched_matmul ~batch:4 ~l1:8 ~l2:8 ~l3:8))
       (Rat.of_ints 3 2));
  (* mttkrp rows: i: M+T >= 1, j: T+B >= 1, k: T+C >= 1, r: M+B+C >= 1.
     Minimizing M+T+B+C = T + max(1, 3(1-T)) over T gives T = 2/3 with
     M = B = C = 1/3: optimum 5/3. *)
  Alcotest.(check bool) "mttkrp = 5/3" true
    (Rat.equal (Hbl_lp.s_hbl (Kernels.mttkrp ~i:4 ~j:4 ~k:4 ~r:4)) (Rat.of_ints 5 3));
  (* three_body: x2: s3 >= 1, x3: s4 >= 1, x1: s1+s2 >= 1 -> 3 *)
  Alcotest.(check bool) "three_body = 3" true
    (Rat.equal (Hbl_lp.s_hbl (Kernels.three_body ~l1:4 ~l2:4 ~l3:4)) (Rat.of_int 3))

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

let parse_ok src =
  match Parser.parse src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %s" (Parser.string_of_error e)

let parse_err src =
  match Parser.parse src with
  | Ok _ -> Alcotest.failf "expected parse failure for %S" src
  | Error e -> e

let test_parse_matmul () =
  let s = parse_ok "i = 64, j = 32, k = 16 : C[i,k] += A[i,j] * B[j,k]" in
  Alcotest.(check (array string)) "loops" [| "i"; "j"; "k" |] s.Spec.loops;
  Alcotest.(check (array int)) "bounds" [| 64; 32; 16 |] s.Spec.bounds;
  Alcotest.(check int) "arrays" 3 (Spec.num_arrays s);
  Alcotest.(check bool) "target update" true (s.Spec.arrays.(0).Spec.mode = Spec.Update);
  Alcotest.(check string) "target name" "C" s.Spec.arrays.(0).Spec.aname;
  Alcotest.(check bool) "matmul shaped" true
    (Spec.equal_shape s (Kernels.matmul ~l1:2 ~l2:2 ~l3:2))

let test_parse_write_mode () =
  let s = parse_ok "i = 8, j = 8 : O[i] = X[i] * Y[j]" in
  Alcotest.(check bool) "write" true (s.Spec.arrays.(0).Spec.mode = Spec.Write)

let test_parse_scalars_ignored () =
  let s = parse_ok "i = 8, j = 4 : O[i,j] = alpha * X[i] + Y[j]" in
  Alcotest.(check int) "3 arrays (alpha dropped)" 3 (Spec.num_arrays s)

let test_parse_self_update () =
  let s = parse_ok "i = 8, j = 8 : A[i] += A[i] * B[j]" in
  Alcotest.(check int) "self-read merged" 2 (Spec.num_arrays s);
  Alcotest.(check bool) "update" true (s.Spec.arrays.(0).Spec.mode = Spec.Update)

let test_parse_duplicate_reads_merged () =
  let s = parse_ok "i = 8, j = 8 : O[i,j] = X[i] * X[i] + Y[j]" in
  Alcotest.(check int) "X deduped" 3 (Spec.num_arrays s)

let test_parse_repeated_index_collapses () =
  let s = parse_ok "i = 8 : O[i] = X[i,i]" in
  Alcotest.(check (list int)) "X support" [ 0 ]
    (Array.to_list s.Spec.arrays.(1).Spec.support)

let test_parse_comments_and_whitespace () =
  let s = parse_ok "# a comment\n  i = 8, # inline\n  j = 4 :\n  O[i,j] = X[i] * Y[j]\n# end" in
  Alcotest.(check (array int)) "bounds" [| 8; 4 |] s.Spec.bounds

let test_parse_underscored_bounds () =
  let s = parse_ok "i = 1_024 : O[i] = X[i]" in
  Alcotest.(check int) "bound" 1024 s.Spec.bounds.(0)

let test_parse_errors () =
  let cases =
    [
      ("", "a loop name");
      ("i = : O[i] = X[i]", "loop bound");
      ("i = 8 O[i] = X[i]", "':'");
      ("i = 8 : 5 = X[i]", "array name");
      ("i = 8 : O[i] X[i]", "'='");
      ("i = 8 : O[i] = X[q]", "not a declared loop");
      ("i = 8 : alpha = X[i]", "must be an array");
      ("i = 8, j = 4 : O[i] = X[i]", "loop j is not used");
      ("i = 8 : O[i] = X[i] extra [", "end of input");
      ("i = 8 : O[i] = X[i,j] * X[i]", "not a declared loop");
      ("i = 8, i = 4 : O[i] = X[i]", "duplicate loop");
      ("i = 8 : O[i] @ X[i]", "unexpected character");
    ]
  in
  List.iter
    (fun (src, fragment) ->
      let e = parse_err src in
      let msg = Parser.string_of_error e in
      if
        not
          (Astring.String.is_infix ~affix:fragment msg
           || (* fall back: plain substring search *) false)
      then Alcotest.failf "error %S does not mention %S" msg fragment)
    cases

let test_parse_error_details () =
  (* The three classic authoring mistakes must produce messages that name
     the offending identifier, not just a generic failure. *)
  let msg src = Parser.string_of_error (parse_err src) in
  let contains affix s = Astring.String.is_infix ~affix s in
  Alcotest.(check bool) "duplicate loop names i" true
    (contains "duplicate loop name i" (msg "i = 2, i = 3 : O[i] = X[i]"));
  Alcotest.(check bool) "duplicate among many loops" true
    (contains "duplicate loop name j" (msg "i = 2, j = 3, j = 4 : O[i,j] = X[i] * Y[j]"));
  Alcotest.(check bool) "unknown index named" true
    (contains "index q is not a declared loop" (msg "i = 8 : O[i] = X[q]"));
  Alcotest.(check bool) "unknown index in target" true
    (contains "index k is not a declared loop" (msg "i = 8 : O[k] = X[i]"));
  Alcotest.(check bool) "empty bound" true
    (contains "loop bound" (msg "i = : O[i] = X[i]"));
  Alcotest.(check bool) "missing bound at end of loop list" true
    (contains "loop bound" (msg "i = 4, j = : O[i,j] = X[i] * Y[j]"));
  Alcotest.(check bool) "zero bound rejected via Spec" true
    (contains "non-positive bound" (msg "i = 0 : O[i] = X[i]"));
  Alcotest.(check bool) "negative bound rejected at the lexer" true
    (contains "unexpected character" (msg "i = -3 : O[i] = X[i]"))

let test_parse_inconsistent_supports () =
  let e = parse_err "i = 8, j = 8 : O[i] = X[i] * X[j]" in
  Alcotest.(check bool) "mentions two index sets" true
    (Astring.String.is_infix ~affix:"two different index sets" (Parser.string_of_error e))

let test_parse_positions () =
  let e = parse_err "i = 8 :\n  O[i] = X[zz]" in
  Alcotest.(check int) "line 2" 2 e.Parser.pos.Parser.line

let test_parse_roundtrip_with_analysis () =
  (* End-to-end: parsed kernels feed the LP machinery. *)
  let s = parse_ok "i = 64, j = 64, k = 64 : C[i,k] += A[i,j] * B[j,k]" in
  Alcotest.(check bool) "s_hbl = 3/2" true (Rat.equal (Hbl_lp.s_hbl s) (Rat.of_ints 3 2))


(* ------------------------------------------------------------------ *)
(* Fuzzing                                                            *)
(* ------------------------------------------------------------------ *)

let fuzz_props =
  [
    (* arbitrary strings never crash the parser: it returns Ok or Error *)
    QCheck.Test.make ~name:"parser total on random strings" ~count:500
      QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.printable)
      (fun s -> match Parser.parse s with Ok _ | Error _ -> true);
    (* random token soup from the DSL alphabet never crashes either *)
    QCheck.Test.make ~name:"parser total on token soup" ~count:500
      (QCheck.make
         ~print:(fun x -> x)
         QCheck.Gen.(
           let tok =
             oneofl
               [ "i"; "j"; "k"; "A"; "B"; "C"; "8"; "64"; "="; "+="; "*"; "+"; "[";
                 "]"; ","; ":"; "#c\n"; " " ]
           in
           map (String.concat "") (list_size (int_range 0 40) tok)))
      (fun s -> match Parser.parse s with Ok _ | Error _ -> true);
    (* Spec -> DSL -> Spec round trip on the stock kernels and random shapes *)
    QCheck.Test.make ~name:"to_dsl round trip (stock kernels)" ~count:1
      QCheck.(always ())
      (fun () ->
        List.for_all
          (fun (_, spec) ->
            match Parser.to_dsl spec with
            | None -> false
            | Some dsl -> (
              match Parser.parse dsl with
              | Error _ -> false
              | Ok spec2 ->
                Spec.equal_shape spec spec2 && spec.Spec.bounds = spec2.Spec.bounds))
          (Kernels.all ()));
    (* valid programs round-trip: pretty-printed DSL-ish forms reparse *)
    QCheck.Test.make ~name:"generated matmul-family reparses" ~count:200
      QCheck.(triple (int_range 1 512) (int_range 1 512) (int_range 1 512))
      (fun (a, b, c) ->
        let src = Printf.sprintf "i = %d, j = %d, k = %d : C[i,k] += A[i,j] * B[j,k]" a b c in
        match Parser.parse src with
        | Ok spec -> spec.Spec.bounds = [| a; b; c |]
        | Error _ -> false);
  ]

let () =
  Alcotest.run "loopnest"
    [
      ( "spec",
        [
          Alcotest.test_case "create valid" `Quick test_create_valid;
          Alcotest.test_case "create invalid" `Quick test_create_invalid;
          Alcotest.test_case "unsorted support" `Quick test_unsorted_support_rejected;
          Alcotest.test_case "array_ref normalizes" `Quick test_array_ref_normalizes;
          Alcotest.test_case "derived quantities" `Quick test_derived_quantities;
          Alcotest.test_case "with_bounds" `Quick test_with_bounds;
          Alcotest.test_case "equal_shape" `Quick test_equal_shape;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "all validate" `Quick test_kernels_validate;
          Alcotest.test_case "tensor contraction" `Quick test_tensor_contraction_shape;
          Alcotest.test_case "pointwise conv" `Quick test_pointwise_conv_shape;
          Alcotest.test_case "matvec" `Quick test_matvec_is_matmul_l3_1;
          Alcotest.test_case "new kernels shapes" `Quick test_new_kernels_shapes;
          Alcotest.test_case "new kernels s_hbl" `Quick test_new_kernels_hbl_values;
        ] );
      ( "parser",
        [
          Alcotest.test_case "matmul" `Quick test_parse_matmul;
          Alcotest.test_case "write mode" `Quick test_parse_write_mode;
          Alcotest.test_case "scalars ignored" `Quick test_parse_scalars_ignored;
          Alcotest.test_case "self update" `Quick test_parse_self_update;
          Alcotest.test_case "duplicate reads" `Quick test_parse_duplicate_reads_merged;
          Alcotest.test_case "repeated index" `Quick test_parse_repeated_index_collapses;
          Alcotest.test_case "comments/whitespace" `Quick test_parse_comments_and_whitespace;
          Alcotest.test_case "underscored bounds" `Quick test_parse_underscored_bounds;
          Alcotest.test_case "error messages" `Quick test_parse_errors;
          Alcotest.test_case "error details" `Quick test_parse_error_details;
          Alcotest.test_case "inconsistent supports" `Quick test_parse_inconsistent_supports;
          Alcotest.test_case "error positions" `Quick test_parse_positions;
          Alcotest.test_case "roundtrip to analysis" `Quick test_parse_roundtrip_with_analysis;
        ] );
      ("fuzz", List.map QCheck_alcotest.to_alcotest fuzz_props);
    ]
