(* Tests for Obs.Trace: span bookkeeping across Pool worker domains and
   the Chrome trace-event JSON export (validated with Jsonlite, the same
   parser bench/compare uses). The trace state is global, so every test
   starts from Obs.reset () and re-enables tracing itself. *)

let events_named name =
  List.filter (fun (e : Obs.Trace.event) -> e.Obs.Trace.ename = name) (Obs.Trace.events ())

let test_span_roundtrip () =
  Obs.reset ();
  Obs.Trace.enable ();
  let v = Obs.Trace.with_span ~arg:7 "t.one" (fun () -> 42) in
  Obs.Trace.disable ();
  Alcotest.(check int) "thunk value" 42 v;
  match events_named "t.one" with
  | [ e ] ->
    Alcotest.(check bool) "positive sid" true (e.Obs.Trace.sid > 0);
    Alcotest.(check int) "root parent" 0 e.Obs.Trace.parent;
    Alcotest.(check int) "arg tag" 7 e.Obs.Trace.earg;
    Alcotest.(check bool) "non-negative duration" true (e.Obs.Trace.dur_ns >= 0)
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es)

let test_disabled_records_nothing () =
  Obs.reset ();
  (* disabled is the default; spans must be free no-ops *)
  Obs.Trace.with_span "t.off" (fun () -> ());
  Alcotest.(check int) "no spans" 0 (Obs.Trace.span_count ());
  Alcotest.(check int) "no events" 0 (List.length (Obs.Trace.events ()))

let test_parent_links () =
  Obs.reset ();
  Obs.Trace.enable ();
  Obs.Trace.with_span "t.outer" (fun () ->
    Obs.Trace.with_span "t.mid" (fun () -> Obs.Trace.with_span "t.leaf" (fun () -> ()));
    Obs.Trace.with_span "t.mid2" (fun () -> ()));
  Obs.Trace.disable ();
  let one name = match events_named name with [ e ] -> e | _ -> Alcotest.failf "missing %s" name in
  let outer = one "t.outer" and mid = one "t.mid" and leaf = one "t.leaf" and mid2 = one "t.mid2" in
  Alcotest.(check int) "outer is a root" 0 outer.Obs.Trace.parent;
  Alcotest.(check int) "mid nests in outer" outer.Obs.Trace.sid mid.Obs.Trace.parent;
  Alcotest.(check int) "leaf nests in mid" mid.Obs.Trace.sid leaf.Obs.Trace.parent;
  Alcotest.(check int) "sibling shares the parent" outer.Obs.Trace.sid mid2.Obs.Trace.parent;
  Alcotest.(check bool) "sids distinct" true
    (List.length
       (List.sort_uniq compare
          [ outer.Obs.Trace.sid; mid.Obs.Trace.sid; leaf.Obs.Trace.sid; mid2.Obs.Trace.sid ])
    = 4)

let test_exact_span_counts_under_pool () =
  Obs.reset ();
  Obs.Trace.enable ();
  let n = 500 in
  ignore
    (Pool.map ~jobs:4
       (fun i -> Obs.Trace.with_span "t.work" (fun () -> i * 2))
       (Array.init n (fun i -> i)));
  Obs.Trace.disable ();
  (* every task also gets Pool's own "pool.task" span *)
  Alcotest.(check int) "user spans exact" n (List.length (events_named "t.work"));
  Alcotest.(check int) "pool spans exact" n (List.length (events_named "pool.task"));
  Alcotest.(check int) "span_count covers both" (2 * n) (Obs.Trace.span_count ());
  Alcotest.(check int) "nothing dropped" 0 (Obs.Trace.dropped ());
  (* user spans are children of their pool.task span, on the same lane *)
  let tasks = events_named "pool.task" in
  List.iter
    (fun (w : Obs.Trace.event) ->
      match
        List.find_opt (fun (t : Obs.Trace.event) -> t.Obs.Trace.sid = w.Obs.Trace.parent) tasks
      with
      | None -> Alcotest.fail "work span not parented to a pool.task span"
      | Some t -> Alcotest.(check int) "same lane as parent" t.Obs.Trace.tid w.Obs.Trace.tid)
    (events_named "t.work")

let test_worker_lanes_distinct () =
  Obs.reset ();
  Obs.Trace.enable ();
  let jobs = 4 in
  (* enough sleepy tasks that every worker domain claims at least one *)
  ignore
    (Pool.map ~jobs
       (fun _ -> Obs.Trace.with_span "t.sleep" (fun () -> Unix.sleepf 0.003))
       (Array.make 48 ()));
  Obs.Trace.disable ();
  let tids =
    List.sort_uniq compare
      (List.map (fun (e : Obs.Trace.event) -> e.Obs.Trace.tid) (events_named "pool.task"))
  in
  Alcotest.(check int) "one lane per worker" jobs (List.length tids);
  let lanes = Obs.Trace.lanes () in
  Alcotest.(check int) "lanes reported" jobs (List.length lanes);
  (* spawned workers carry worker-N names; worker 0 runs on the caller *)
  let named =
    List.filter (fun (_, n) -> Astring.String.is_prefix ~affix:"worker-" n) lanes
  in
  Alcotest.(check int) "spawned workers named" (jobs - 1) (List.length named)

let test_reset_clears_trace () =
  Obs.reset ();
  Obs.Trace.enable ();
  Obs.Trace.with_span "t.gone" (fun () -> ());
  Alcotest.(check int) "recorded" 1 (Obs.Trace.span_count ());
  Obs.reset ();
  Alcotest.(check int) "span_count cleared" 0 (Obs.Trace.span_count ());
  Alcotest.(check int) "events cleared" 0 (List.length (Obs.Trace.events ()));
  Alcotest.(check int) "dropped cleared" 0 (Obs.Trace.dropped ());
  Obs.Trace.disable ()

let test_ring_overwrite_counts_drops () =
  Obs.reset ();
  Obs.Trace.set_capacity 64;
  Obs.Trace.enable ();
  (* fresh capacity applies to rings created after the call; this test's
     spans run on the main domain whose ring may predate it, so drive
     enough spans to wrap either way *)
  let n = 100_000 in
  for i = 1 to n do
    Obs.Trace.with_span ~arg:i "t.wrap" (fun () -> ())
  done;
  Obs.Trace.disable ();
  Obs.Trace.set_capacity 16384;
  Alcotest.(check int) "all spans counted" n (Obs.Trace.span_count ());
  let retained = List.length (events_named "t.wrap") in
  Alcotest.(check bool) "ring bounded" true (retained < n);
  Alcotest.(check int) "dropped = recorded - retained" (n - retained) (Obs.Trace.dropped ());
  (* drops also surface as a plain registry counter, so a telemetry
     exporter sees ring pressure without calling into Trace *)
  Alcotest.(check int) "obs.trace.dropped counter mirrors Trace.dropped"
    (Obs.Trace.dropped ())
    (Obs.value (Obs.counter "obs.trace.dropped"));
  (* the ring keeps the most recent spans *)
  let max_tag =
    List.fold_left
      (fun acc (e : Obs.Trace.event) -> max acc e.Obs.Trace.earg)
      0 (events_named "t.wrap")
  in
  Alcotest.(check int) "newest retained" n max_tag

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let export_parallel_trace () =
  Obs.reset ();
  Obs.Trace.enable ();
  Obs.Trace.set_lane_name "main";
  let spec = Kernels.matmul ~l1:16 ~l2:16 ~l3:16 in
  let reqs =
    List.map
      (fun m -> Pipeline.request ~sims:[ Pipeline.sim Engine.Optimal ] ~shared:true spec ~m)
      [ 64; 128; 256; 512 ]
  in
  ignore (Engine.sweep ~jobs:3 reqs);
  Obs.Trace.disable ();
  Obs.Trace.export_json ()

let test_chrome_json_valid () =
  Engine.reset_caches ();
  let j = export_parallel_trace () in
  match Jsonlite.parse j with
  | Error msg -> Alcotest.failf "export not valid JSON: %s" msg
  | Ok json ->
    let events = Option.get (Jsonlite.list_member "traceEvents" json) in
    Alcotest.(check bool) "has events" true (List.length events > 0);
    let phases = List.filter_map (Jsonlite.str_member "ph") events in
    Alcotest.(check int) "every event has a phase" (List.length events) (List.length phases);
    Alcotest.(check bool) "only complete + metadata events" true
      (List.for_all (fun p -> p = "X" || p = "M") phases);
    let xs = List.filter (fun e -> Jsonlite.str_member "ph" e = Some "X") events in
    let ms = List.filter (fun e -> Jsonlite.str_member "ph" e = Some "M") events in
    Alcotest.(check bool) "spans present" true (xs <> []);
    (* every X event is well-formed: named, non-negative monotonic ts,
       non-negative dur, a pid/tid, and its sid in args *)
    let ts =
      List.map
        (fun e ->
          Alcotest.(check bool) "has name" true (Jsonlite.str_member "name" e <> None);
          Alcotest.(check bool) "has tid" true (Jsonlite.num_member "tid" e <> None);
          Alcotest.(check bool) "has pid" true (Jsonlite.num_member "pid" e <> None);
          let dur = Option.get (Jsonlite.num_member "dur" e) in
          Alcotest.(check bool) "dur >= 0" true (dur >= 0.0);
          let args = Option.get (Jsonlite.member "args" e) in
          Alcotest.(check bool) "sid arg" true
            (match Jsonlite.num_member "sid" args with Some s -> s > 0.0 | None -> false);
          let t = Option.get (Jsonlite.num_member "ts" e) in
          Alcotest.(check bool) "ts >= 0" true (t >= 0.0);
          t)
        xs
    in
    let rec monotonic = function
      | a :: (b :: _ as rest) -> a <= b && monotonic rest
      | _ -> true
    in
    Alcotest.(check bool) "timestamps sorted" true (monotonic ts);
    (* one thread_name metadata record per lane, lanes distinct, and a
       worker lane for each spawned domain *)
    let lane_names =
      List.filter_map
        (fun e ->
          match (Jsonlite.str_member "name" e, Jsonlite.member "args" e) with
          | Some "thread_name", Some args -> Jsonlite.str_member "name" args
          | _ -> None)
        ms
    in
    Alcotest.(check int) "every metadata record is a thread name"
      (List.length ms) (List.length lane_names);
    let x_tids =
      List.sort_uniq compare (List.filter_map (Jsonlite.num_member "tid") xs)
    in
    let m_tids =
      List.sort_uniq compare (List.filter_map (Jsonlite.num_member "tid") ms)
    in
    Alcotest.(check (list (float 0.0))) "each span lane is named" x_tids m_tids;
    Alcotest.(check int) "lane names distinct" (List.length lane_names)
      (List.length (List.sort_uniq compare lane_names));
    Alcotest.(check bool) "worker lanes present" true
      (List.exists (fun n -> Astring.String.is_prefix ~affix:"worker-" n) lane_names);
    Alcotest.(check bool) "pipeline stages traced" true
      (List.exists (fun e -> Jsonlite.str_member "name" e = Some "pipeline.analysis") xs);
    Alcotest.(check bool) "simplex solves traced" true
      (List.exists (fun e -> Jsonlite.str_member "name" e = Some "simplex.solve") xs)

let test_write_file () =
  Engine.reset_caches ();
  let j = export_parallel_trace () in
  let path = Filename.temp_file "trace_test" ".json" in
  Obs.Trace.write_file path;
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file matches export" (j ^ "\n") contents

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "roundtrip" `Quick test_span_roundtrip;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_records_nothing;
          Alcotest.test_case "parent links" `Quick test_parent_links;
          Alcotest.test_case "exact counts under Pool.map" `Quick
            test_exact_span_counts_under_pool;
          Alcotest.test_case "distinct worker lanes" `Quick test_worker_lanes_distinct;
          Alcotest.test_case "reset clears rings" `Quick test_reset_clears_trace;
          Alcotest.test_case "ring wrap counts drops" `Quick test_ring_overwrite_counts_drops;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome JSON validity" `Quick test_chrome_json_valid;
          Alcotest.test_case "write_file" `Quick test_write_file;
        ] );
    ]
