(* Tests for the periodic exporter (lib/obs/telemetry.ml) and the
   [tilings top] frame renderer (lib/obs/dashboard.ml). The pure
   renderers are exercised directly; one test runs a real ticker thread
   against a temp file. *)

let read_lines file =
  let ic = open_in file in
  let out = ref [] in
  (try
     while true do
       out := input_line ic :: !out
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out

let with_temp suffix f =
  let path = Filename.temp_file "telemetry" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* A snapshot with one of everything, built via the registry so the
   timer/histogram bucket encodings are the real ones. *)
let sample_snapshot () =
  Obs.reset ();
  Obs.incr ~by:7 (Obs.counter "t.count");
  Obs.set_gauge (Obs.gauge "t.level") 3;
  Obs.add_seconds (Obs.timer "t.span") 0.25;
  Obs.observe_ns (Obs.histogram "t.dist") 1_000_000;
  Obs.snapshot ()

(* ------------------------------------------------------------------ *)
(* json_line + Dashboard.parse_line round-trip                         *)
(* ------------------------------------------------------------------ *)

let test_json_line_roundtrip () =
  let snap = sample_snapshot () in
  let line = Telemetry.json_line ~ts:1722000000.5 ~seq:3 snap in
  (match Jsonlite.parse line with
  | Error msg -> Alcotest.failf "json_line unparseable: %s\n%s" msg line
  | Ok json ->
    Alcotest.(check (option (float 1e-3))) "ts" (Some 1722000000.5)
      (Jsonlite.num_member "ts" json);
    Alcotest.(check (option (float 0.0))) "seq" (Some 3.0)
      (Jsonlite.num_member "seq" json);
    Alcotest.(check bool) "obs payload present" true
      (Jsonlite.member "obs" json <> None));
  match Dashboard.parse_line line with
  | Error msg -> Alcotest.failf "parse_line rejected json_line output: %s" msg
  | Ok s ->
    Alcotest.(check int) "seq survives" 3 s.Dashboard.seq;
    Alcotest.(check (option (float 0.0))) "counter survives" (Some 7.0)
      (List.assoc_opt "t.count" s.Dashboard.counters);
    (match List.assoc_opt "t.level" s.Dashboard.gauges with
    | Some (v, mn, mx) ->
      Alcotest.(check (float 0.0)) "gauge value" 3.0 v;
      Alcotest.(check bool) "gauge watermarks bracket" true (mn <= v && v <= mx)
    | None -> Alcotest.fail "gauge missing from sample");
    (match List.assoc_opt "t.span" s.Dashboard.timers with
    | Some row ->
      Alcotest.(check int) "timer calls" 1 row.Dashboard.calls;
      Alcotest.(check bool) "timer p50 near 250ms" true
        (Float.abs (row.Dashboard.p50_s -. 0.25) /. 0.25 < 0.25)
    | None -> Alcotest.fail "timer missing from sample");
    Alcotest.(check bool) "histogram row present" true
      (List.mem_assoc "t.dist" s.Dashboard.hists)

let test_parse_line_rejects_garbage () =
  Alcotest.(check bool) "not json" true (Result.is_error (Dashboard.parse_line "junk"));
  Alcotest.(check bool) "json but wrong shape" true
    (Result.is_error (Dashboard.parse_line "{\"nope\":1}"))

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                              *)
(* ------------------------------------------------------------------ *)

let name_re = "^[a-zA-Z_:][a-zA-Z0-9_:]*$"

let valid_metric_name n =
  String.length n > 0
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       n

let test_openmetrics_exposition () =
  Obs.reset ();
  Obs.incr ~by:7 (Obs.counter "t.count");
  (* names that collide after sanitization must stay distinct *)
  Obs.incr (Obs.counter "t.na/me");
  Obs.incr (Obs.counter "t.na\\me");
  Obs.set_gauge (Obs.gauge "t.level") 3;
  Obs.add_seconds (Obs.timer "t.span") 0.25;
  Obs.observe_ns (Obs.histogram "t.dist") 1_000_000;
  let text = Telemetry.openmetrics (Obs.snapshot ()) in
  let lines = String.split_on_char '\n' text in
  let lines = List.filter (fun l -> l <> "") lines in
  Alcotest.(check string) "EOF terminated" "# EOF" (List.nth lines (List.length lines - 1));
  let seen = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if not (Astring.String.is_prefix ~affix:"#" line) then begin
        (* sample line: <name>[{labels}] <value> *)
        match String.index_opt line ' ' with
        | None -> Alcotest.failf "sample line without value: %s" line
        | Some sp ->
          let name_part = String.sub line 0 sp in
          let name =
            match String.index_opt name_part '{' with
            | Some b -> String.sub name_part 0 b
            | None -> name_part
          in
          Alcotest.(check bool)
            (Printf.sprintf "name %S matches %s" name name_re)
            true (valid_metric_name name);
          Alcotest.(check bool) ("prefixed: " ^ name) true
            (Astring.String.is_prefix ~affix:"tilings_" name);
          let v = float_of_string_opt (String.sub line (sp + 1) (String.length line - sp - 1)) in
          Alcotest.(check bool) ("numeric value: " ^ line) true (v <> None);
          Hashtbl.replace seen name ()
      end)
    lines;
  (* TYPE headers are unique per family *)
  let types = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if Astring.String.is_prefix ~affix:"# TYPE " line then begin
        let fam = List.nth (String.split_on_char ' ' line) 2 in
        Alcotest.(check bool) ("duplicate TYPE for " ^ fam) false (Hashtbl.mem types fam);
        Hashtbl.add types fam ()
      end)
    lines;
  Alcotest.(check bool) "counter family present" true
    (Hashtbl.mem seen "tilings_t_count_total");
  Alcotest.(check bool) "gauge family present" true (Hashtbl.mem seen "tilings_t_level");
  Alcotest.(check bool) "gauge min present" true (Hashtbl.mem seen "tilings_t_level_min");
  Alcotest.(check bool) "timer count present" true (Hashtbl.mem seen "tilings_t_span_count");
  (* both collided names survived as distinct families *)
  let collided =
    Hashtbl.fold
      (fun k () acc -> if Astring.String.is_prefix ~affix:"tilings_t_na_me" k then k :: acc else acc)
      seen []
  in
  Alcotest.(check int) "sanitization collision deduplicated" 2
    (List.length (List.filter (fun n -> Astring.String.is_suffix ~affix:"_total" n) collided))

(* ------------------------------------------------------------------ *)
(* The live ticker                                                     *)
(* ------------------------------------------------------------------ *)

let test_ticker_jsonl () =
  with_temp ".jsonl" @@ fun path ->
  Obs.reset ();
  Obs.incr ~by:5 (Obs.counter "t.live");
  (match Telemetry.start ~interval_s:0.02 path with
  | Error msg -> Alcotest.failf "start: %s" msg
  | Ok t ->
    Alcotest.(check (float 1e-9)) "interval clamped later, kept here" 0.02
      (Telemetry.interval t);
    Alcotest.(check string) "path recorded" path (Telemetry.path t);
    Obs.incr ~by:2 (Obs.counter "t.live");
    Thread.delay 0.06;
    Telemetry.stop t;
    Telemetry.stop t (* idempotent *));
  let lines = read_lines path in
  Alcotest.(check bool)
    (Printf.sprintf "at least two snapshots (got %d)" (List.length lines))
    true
    (List.length lines >= 2);
  let samples =
    List.map
      (fun l ->
        match Dashboard.parse_line l with
        | Ok s -> s
        | Error msg -> Alcotest.failf "bad trail line (%s): %s" msg l)
      lines
  in
  (* seq increases, timestamps never go backwards *)
  ignore
    (List.fold_left
       (fun (pseq, pts) s ->
         Alcotest.(check bool) "seq strictly increasing" true (s.Dashboard.seq > pseq);
         Alcotest.(check bool) "ts monotone" true (s.Dashboard.ts >= pts);
         (s.Dashboard.seq, s.Dashboard.ts))
       (-1, 0.0) samples);
  let final = List.nth samples (List.length samples - 1) in
  Alcotest.(check (option (float 0.0))) "final snapshot saw all increments" (Some 7.0)
    (List.assoc_opt "t.live" final.Dashboard.counters)

let test_ticker_openmetrics () =
  with_temp ".om" @@ fun path ->
  Obs.reset ();
  Obs.incr ~by:3 (Obs.counter "t.om");
  (match Telemetry.start ~interval_s:0.02 path with
  | Error msg -> Alcotest.failf "start: %s" msg
  | Ok t ->
    Thread.delay 0.05;
    Telemetry.stop t);
  let text = String.concat "\n" (read_lines path) in
  Alcotest.(check bool) "exposition written" true
    (Astring.String.is_infix ~affix:"tilings_t_om_total 3" text);
  Alcotest.(check bool) "EOF terminator" true (Astring.String.is_suffix ~affix:"# EOF" text)

let test_start_error () =
  match Telemetry.start "/nonexistent-dir-xyz/trail.jsonl" with
  | Ok t ->
    Telemetry.stop t;
    Alcotest.fail "start into a missing directory should fail"
  | Error msg -> Alcotest.(check bool) "error message non-empty" true (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Dashboard rendering                                                 *)
(* ------------------------------------------------------------------ *)

let mk_sample ts seq count =
  {
    Dashboard.ts;
    seq;
    counters = [ ("t.reqs", float_of_int count) ];
    gauges = [ ("t.depth", (float_of_int (count mod 5), 0.0, 5.0)) ];
    timers =
      [ ("t.lat", { Dashboard.calls = count; total_s = 0.1; p50_s = 0.001; p99_s = 0.004; max_s = 0.01 }) ];
    hists = [];
  }

let test_sparkline () =
  let s = Dashboard.sparkline [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check bool) "non-empty" true (String.length s > 0);
  (* 4 glyphs, 3 bytes each (UTF-8 block elements) *)
  Alcotest.(check int) "one glyph per value" 12 (String.length s);
  Alcotest.(check bool) "ramp ends at full block" true
    (Astring.String.is_suffix ~affix:"\xe2\x96\x88" s);
  let flat = Dashboard.sparkline [ 2.0; 2.0; 2.0 ] in
  Alcotest.(check bool) "flat series is lowest bar" true
    (Astring.String.is_prefix ~affix:"\xe2\x96\x81" flat);
  Alcotest.(check string) "empty series" "" (Dashboard.sparkline [])

let test_render_frames () =
  let one = Dashboard.render [ mk_sample 100.0 0 10 ] in
  Alcotest.(check bool) "single sample renders" true (String.length one > 0);
  Alcotest.(check bool) "rate needs two samples" true
    (Astring.String.is_infix ~affix:"-" one);
  Alcotest.(check bool) "counter named" true (Astring.String.is_infix ~affix:"t.reqs" one);
  let two = Dashboard.render [ mk_sample 100.0 0 10; mk_sample 102.0 1 30 ] in
  (* 20 counts over 2 seconds *)
  Alcotest.(check bool) "rate computed" true (Astring.String.is_infix ~affix:"10.0/s" two);
  Alcotest.(check bool) "gauge section" true (Astring.String.is_infix ~affix:"t.depth" two);
  Alcotest.(check bool) "latency columns" true (Astring.String.is_infix ~affix:"t.lat" two);
  Alcotest.(check bool) "empty trail renders a placeholder" true
    (String.length (Dashboard.render []) > 0)

let () =
  Alcotest.run "telemetry"
    [
      ( "jsonl",
        [
          Alcotest.test_case "json_line round-trips through parse_line" `Quick
            test_json_line_roundtrip;
          Alcotest.test_case "parse_line rejects garbage" `Quick test_parse_line_rejects_garbage;
        ] );
      ( "openmetrics",
        [ Alcotest.test_case "exposition lints clean" `Quick test_openmetrics_exposition ] );
      ( "ticker",
        [
          Alcotest.test_case "jsonl trail, >=2 snapshots" `Quick test_ticker_jsonl;
          Alcotest.test_case "openmetrics rewrite" `Quick test_ticker_openmetrics;
          Alcotest.test_case "unopenable sink" `Quick test_start_error;
        ] );
      ( "dashboard",
        [
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "render" `Quick test_render_frames;
        ] );
    ]
