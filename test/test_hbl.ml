(* Tests for the core contribution: HBL LPs, the arbitrary-bounds lower
   bound (Theorem 2), the matching tiling (Theorem 3 / Section 5), the
   alpha family (Section 6.1), and the piecewise-linear closed form
   (Section 7). *)

let rat = Alcotest.testable Rat.pp Rat.equal
let rr = Rat.of_ints
let check_r = Alcotest.check rat

(* ------------------------------------------------------------------ *)
(* Shared generators                                                  *)
(* ------------------------------------------------------------------ *)

(* Random valid projective loop nest: every loop covered by some array. *)
let gen_spec =
  QCheck.Gen.(
    int_range 2 5 >>= fun d ->
    int_range 2 4 >>= fun n ->
    let gen_support = list_size (int_range 1 d) (int_range 0 (d - 1)) in
    list_size (return n) gen_support >>= fun supports ->
    let supports = Array.of_list supports in
    (* Guarantee coverage: assign loop i to array (i mod n) as well. *)
    let supports = Array.mapi (fun j s -> List.init d (fun i -> i) |> List.filter (fun i -> i mod n = j) |> ( @ ) s) supports in
    array_size (return d) (int_range 1 64) >>= fun bounds ->
    let arrays =
      Array.mapi
        (fun j s ->
          Spec.array_ref
            ~mode:(if j = 0 then Spec.Update else Spec.Read)
            (Printf.sprintf "A%d" j) s)
        supports
    in
    let loops = Array.init d (fun i -> Printf.sprintf "x%d" (i + 1)) in
    match Spec.create ~name:"random" ~loops ~bounds ~arrays with
    | Ok s -> return s
    | Error e -> failwith (Spec.string_of_error e))

let print_spec s = Format.asprintf "%a" Spec.pp s
let arb_spec = QCheck.make ~print:print_spec gen_spec

let gen_beta d = QCheck.Gen.(array_size (return d) (map2 Rat.of_ints (int_range 0 16) (return 8)))

let arb_spec_beta =
  QCheck.make
    ~print:(fun (s, beta) ->
      Printf.sprintf "%s\nbeta=[%s]" (print_spec s)
        (String.concat ";" (List.map Rat.to_string (Array.to_list beta))))
    QCheck.Gen.(gen_spec >>= fun s -> gen_beta (Spec.num_loops s) >>= fun b -> return (s, b))

(* ------------------------------------------------------------------ *)
(* HBL LP (3.2), Section 3                                            *)
(* ------------------------------------------------------------------ *)

let test_s_hbl_values () =
  check_r "matmul" (rr 3 2) (Hbl_lp.s_hbl (Kernels.matmul ~l1:8 ~l2:8 ~l3:8));
  check_r "fully connected" (rr 3 2) (Hbl_lp.s_hbl (Kernels.fully_connected ~batch:4 ~cin:4 ~cout:4));
  check_r "pointwise conv" (rr 3 2) (Hbl_lp.s_hbl (Kernels.pointwise_conv ~b:2 ~c:2 ~k:2 ~w:2 ~h:2));
  check_r "contraction" (rr 3 2)
    (Hbl_lp.s_hbl (Kernels.tensor_contraction ~j:1 ~k:3 ~d:4 ~bounds:[| 4; 4; 4; 4 |]));
  check_r "nbody" (Rat.of_int 2) (Hbl_lp.s_hbl (Kernels.nbody ~l1:8 ~l2:8));
  check_r "outer product" (Rat.of_int 1) (Hbl_lp.s_hbl (Kernels.outer_product ~m:8 ~n:8))

let test_hbl_lp_matmul_solution () =
  let lp = Hbl_lp.hbl (Kernels.matmul ~l1:8 ~l2:8 ~l3:8) in
  Alcotest.(check int) "3 constraints" 3 (Lp.num_constraints lp);
  Alcotest.(check int) "3 vars" 3 (Lp.num_vars lp);
  let s = Simplex.solve_exn lp in
  Array.iter (fun si -> check_r "s_i = 1/2" Rat.half si) s.Simplex.primal

let test_reduced_hbl () =
  let mm = Kernels.matmul ~l1:8 ~l2:8 ~l3:8 in
  let lp = Hbl_lp.reduced_hbl mm ~removed:[ 2 ] in
  Alcotest.(check int) "2 constraints" 2 (Lp.num_constraints lp);
  (* removing x3's row lets s = (0,1,0) i.e. only A be charged *)
  check_r "optimum 1" Rat.one (Simplex.solve_exn lp).Simplex.objective;
  Alcotest.check_raises "bad index" (Invalid_argument "Hbl_lp.reduced_hbl: index out of range")
    (fun () -> ignore (Hbl_lp.reduced_hbl mm ~removed:[ 7 ]))

(* ------------------------------------------------------------------ *)
(* Lower bound (Theorem 2), Section 4                                 *)
(* ------------------------------------------------------------------ *)

let mm = Kernels.matmul ~l1:64 ~l2:64 ~l3:64

let test_matmul_exponent_cases () =
  (* Section 6.1: k = min(3/2, 1 + beta3) for beta1 = beta2 = 1 (large). *)
  let cases =
    [ (Rat.one, rr 3 2); (rr 1 2, rr 3 2); (rr 1 4, rr 5 4); (Rat.zero, Rat.one); (rr 3 8, rr 11 8) ]
  in
  List.iter
    (fun (b3, expect) ->
      let beta = [| Rat.one; Rat.one; b3 |] in
      check_r
        (Printf.sprintf "k at beta3=%s" (Rat.to_string b3))
        expect
        (Lower_bound.exponent_by_lp mm ~beta).Lower_bound.k_hat)
    cases

let test_matmul_symmetric_small () =
  (* All three bounds small: k = beta1 + beta2 + beta3 when that is < the
     other pieces. *)
  let beta = [| rr 1 4; rr 1 4; rr 1 4 |] in
  check_r "tiny bounds" (rr 3 4) (Lower_bound.exponent_by_lp mm ~beta).Lower_bound.k_hat

let test_witness_q_matvec () =
  let e = Lower_bound.exponent_by_lp mm ~beta:[| Rat.one; Rat.one; Rat.zero |] in
  Alcotest.(check (list int)) "Q = {x3}" [ 2 ] e.Lower_bound.witness_q

let test_nbody_exponent () =
  (* Section 6.3: max tile size = min(M^2, L1 M, L2 M, L1 L2), i.e.
     k = min(2, 1 + b1, 1 + b2, b1 + b2). *)
  let nb = Kernels.nbody ~l1:8 ~l2:8 in
  let check b1 b2 expect =
    check_r
      (Printf.sprintf "k(%s,%s)" (Rat.to_string b1) (Rat.to_string b2))
      expect
      (Lower_bound.exponent_by_lp nb ~beta:[| b1; b2 |]).Lower_bound.k_hat
  in
  check (Rat.of_int 2) (Rat.of_int 2) (Rat.of_int 2);
  check Rat.half (Rat.of_int 2) (rr 3 2);
  check (Rat.of_int 2) (rr 1 4) (rr 5 4);
  check Rat.half Rat.half Rat.one

let test_contraction_reduces_to_matmul () =
  (* Section 6.2: the gamma-grouped LP equals matmul's: optimum is
     min(3/2, 1 + min(sum of each group's betas)). *)
  let spec = Kernels.tensor_contraction ~j:1 ~k:3 ~d:4 ~bounds:[| 4; 4; 4; 4 |] in
  (* groups: gamma1 = {x1}, gamma2 = {x2}, gamma3 = {x3, x4} *)
  let beta = [| Rat.one; rr 1 4; Rat.one; Rat.one |] in
  check_r "small middle group" (rr 5 4)
    (Lower_bound.exponent_by_lp spec ~beta).Lower_bound.k_hat;
  let beta2 = [| Rat.one; Rat.one; rr 1 8; rr 1 8 |] in
  check_r "small third group" (rr 5 4)
    (Lower_bound.exponent_by_lp spec ~beta:beta2).Lower_bound.k_hat;
  let beta3 = [| Rat.one; Rat.one; Rat.one; Rat.one |] in
  check_r "large" (rr 3 2) (Lower_bound.exponent_by_lp spec ~beta:beta3).Lower_bound.k_hat

let test_k_of_q_empty_is_s_hbl () =
  let beta = [| Rat.one; Rat.one; Rat.one |] in
  check_r "Q empty" (Hbl_lp.s_hbl mm) (Lower_bound.k_of_q mm ~beta ~q:[])

let test_k_of_q_literal_vs_lp () =
  let beta = [| Rat.one; Rat.one; rr 1 4 |] in
  let k_lp = Lower_bound.k_of_q mm ~beta ~q:[ 2 ] in
  let k_lit = Lower_bound.k_of_q_literal mm ~beta ~q:[ 2 ] in
  check_r "matmul Q={x3} LP" (rr 5 4) k_lp;
  Alcotest.(check bool) "literal >= LP" true (Rat.compare k_lit k_lp >= 0)

let test_beta_of_bounds () =
  let beta = Lower_bound.beta_of_bounds ~m:1024 [| 1; 1024; 32 |] in
  check_r "L=1 -> 0" Rat.zero beta.(0);
  check_r "L=M -> 1" Rat.one beta.(1);
  check_r "L=sqrt M -> 1/2" Rat.half beta.(2);
  Alcotest.check_raises "m too small"
    (Invalid_argument "Lower_bound.beta_of_bounds: cache size must be >= 2") (fun () ->
    ignore (Lower_bound.beta_of_bounds ~m:1 [| 4 |]))

let test_beta_pow () =
  check_r "8 at M=2^12" (rr 3 12) (Lower_bound.beta_pow ~base:2 ~m_exp:12 8);
  check_r "1" Rat.zero (Lower_bound.beta_pow ~base:2 ~m_exp:10 1);
  Alcotest.check_raises "not a power"
    (Invalid_argument "Lower_bound.beta_pow: 12 is not a power of 2") (fun () ->
    ignore (Lower_bound.beta_pow ~base:2 ~m_exp:10 12))

let test_section_6_1_formula () =
  (* The tight matmul bound max(L1 L2 L3 / sqrt M, L1 L2, L2 L3, L1 L3),
     checked across regimes with power-of-two sizes (so beta is exact). *)
  let m = 1 lsl 10 in
  let check_case (l1, l2, l3) =
    let spec = Kernels.matmul ~l1 ~l2 ~l3 in
    let b = Lower_bound.communication spec ~m in
    let f = float_of_int in
    let expect =
      Float.max
        (f l1 *. f l2 *. f l3 /. sqrt (f m))
        (Float.max (f l1 *. f l2) (Float.max (f l2 *. f l3) (f l1 *. f l3)))
    in
    let ratio = b.Lower_bound.words_paper /. expect in
    if ratio < 0.95 || ratio > 1.05 then
      Alcotest.failf "L=(%d,%d,%d): bound %.1f vs formula %.1f" l1 l2 l3 b.Lower_bound.words
        expect
  in
  List.iter check_case
    [
      (1024, 1024, 1024);
      (1024, 1024, 1);
      (1024, 1024, 4);
      (1024, 1024, 32);
      (4, 1024, 1024);
      (1024, 2, 1024);
      (64, 64, 64);
      (2048, 16, 16);
    ]

let test_matvec_bound_words () =
  let spec = Kernels.matvec ~m:512 ~n:512 in
  let b = Lower_bound.communication spec ~m:4096 in
  Alcotest.(check bool) "LB ~ L1 L2" true
    (Float.abs (b.Lower_bound.words -. 262144.0) /. 262144.0 < 0.02);
  (* the classic formula is far too weak here *)
  Alcotest.(check bool) "classic under-estimates" true
    (b.Lower_bound.words_classic < b.Lower_bound.words /. 10.0)

(* ------------------------------------------------------------------ *)
(* Tiling (Theorem 3 / Section 5)                                     *)
(* ------------------------------------------------------------------ *)

let test_tiling_lp_matmul () =
  let sol = Tiling.solve_lp mm ~beta:[| Rat.one; Rat.one; rr 1 4 |] in
  check_r "value" (rr 5 4) sol.Tiling.value;
  check_r "lambda3 at bound" (rr 1 4) sol.Tiling.lambda.(2)

let test_integer_tile_matmul_small_l3 () =
  let spec = Kernels.matmul ~l1:1024 ~l2:1024 ~l3:8 in
  let m = 4096 in
  let tile = Tiling.optimal spec ~m in
  Alcotest.(check bool) "feasible" true (Tiling.is_feasible spec ~m tile);
  Alcotest.(check int) "volume = M L3" (m * 8) (Tiling.volume tile);
  Alcotest.(check int) "L3 dimension filled" 8 tile.(2)

let test_integer_tile_cube () =
  let spec = Kernels.matmul ~l1:1024 ~l2:1024 ~l3:1024 in
  let m = 4096 in
  let tile = Tiling.optimal spec ~m in
  Alcotest.(check bool) "feasible" true (Tiling.is_feasible spec ~m tile);
  Array.iter (fun b -> Alcotest.(check int) "side = 64" 64 b) tile

let test_of_lambda_repairs_infeasible () =
  let spec = Kernels.matmul ~l1:1024 ~l2:1024 ~l3:1024 in
  let m = 256 in
  (* lambda = all ones is wildly infeasible (M x M x M tile). *)
  let tile = Tiling.of_lambda spec ~m [| Rat.one; Rat.one; Rat.one |] in
  Alcotest.(check bool) "repaired to feasible" true (Tiling.is_feasible spec ~m tile)

let test_of_lambda_validation () =
  Alcotest.check_raises "arity" (Invalid_argument "Tiling.of_lambda: arity mismatch") (fun () ->
    ignore (Tiling.of_lambda mm ~m:64 [| Rat.one |]));
  Alcotest.check_raises "bad m" (Invalid_argument "Tiling.of_lambda: cache size must be positive")
    (fun () -> ignore (Tiling.of_lambda mm ~m:0 [| Rat.one; Rat.one; Rat.one |]))

let test_footprints () =
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  let b = [| 8; 4; 2 |] in
  Alcotest.(check int) "C = b1 b3" 16 (Tiling.footprint spec b 0);
  Alcotest.(check int) "A = b1 b2" 32 (Tiling.footprint spec b 1);
  Alcotest.(check int) "B = b2 b3" 8 (Tiling.footprint spec b 2);
  Alcotest.(check int) "max" 32 (Tiling.max_footprint spec b);
  Alcotest.(check int) "total" 56 (Tiling.total_footprint spec b);
  Alcotest.(check int) "tiles" (8 * 16 * 32) (Tiling.num_tiles spec b)

let test_analytic_traffic () =
  let spec = Kernels.matmul ~l1:16 ~l2:16 ~l3:16 in
  let b = [| 4; 4; 4 |] in
  (* 4 tiles per dim. A (update? no, read): loaded once per x3-tile:
     16*16 * 4. B: 16*16 * 4. C (update): read+write 16*16 * 4 each. *)
  let t = Tiling.analytic_traffic spec b in
  Alcotest.(check (float 0.01)) "reads" (float_of_int ((256 * 4) + (256 * 4) + (256 * 4))) t.Tiling.reads;
  Alcotest.(check (float 0.01)) "writes" (float_of_int (256 * 4)) t.Tiling.writes

let test_analytic_traffic_clipped () =
  (* Non-dividing tile sizes: accounting must still be exact. *)
  let spec = Kernels.matmul ~l1:10 ~l2:7 ~l3:5 in
  let b = [| 3; 3; 2 |] in
  (* tiles along: ceil(10/3)=4, ceil(7/3)=3, ceil(5/2)=3 *)
  let t = Tiling.analytic_traffic spec b in
  (* C(10x5): once per x2-tile: 50*3 reads + 50*3 writes.
     A(10x7): once per x3-tile: 70*3. B(7x5): once per x1-tile: 35*4. *)
  Alcotest.(check (float 0.01)) "reads" (float_of_int ((50 * 3) + (70 * 3) + (35 * 4))) t.Tiling.reads;
  Alcotest.(check (float 0.01)) "writes" (float_of_int (50 * 3)) t.Tiling.writes

(* ------------------------------------------------------------------ *)
(* Alpha family (Section 6.1)                                         *)
(* ------------------------------------------------------------------ *)

let test_alpha_lambda_endpoints () =
  let beta3 = rr 1 4 in
  let l0 = Alpha_family.lambda ~beta3 ~alpha:Rat.zero in
  check_r "alpha=0: 1-b3" (rr 3 4) l0.(0);
  check_r "alpha=0: b3" (rr 1 4) l0.(1);
  let l1 = Alpha_family.lambda ~beta3 ~alpha:Rat.one in
  check_r "alpha=1: 1/2" Rat.half l1.(0);
  check_r "alpha=1: 1/2" Rat.half l1.(1);
  check_r "lambda3 = b3 always" beta3 l1.(2)

let test_alpha_all_optimal () =
  (* Every alpha gives sum(lambda) = 1 + beta3, the LP optimum. *)
  let beta3 = rr 3 8 in
  List.iter
    (fun a ->
      let l = Alpha_family.lambda ~beta3 ~alpha:(rr a 8) in
      check_r
        (Printf.sprintf "alpha=%d/8" a)
        (Rat.add Rat.one beta3)
        (Array.fold_left Rat.add Rat.zero l))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_alpha_tiles_feasible () =
  let spec = Kernels.matmul ~l1:1024 ~l2:1024 ~l3:8 in
  let m = 4096 in
  List.iter
    (fun (_, tile) ->
      Alcotest.(check bool) "feasible" true (Tiling.is_feasible spec ~m tile);
      (* within a factor 2 of the optimal M*L3 cardinality *)
      Alcotest.(check bool) "volume" true (Tiling.volume tile * 2 >= m * 8))
    (Alpha_family.sample ~steps:8 spec ~m)

let test_alpha_validation () =
  Alcotest.check_raises "alpha range"
    (Invalid_argument "Alpha_family.lambda: alpha must lie in [0, 1]") (fun () ->
    ignore (Alpha_family.lambda ~beta3:Rat.zero ~alpha:(Rat.of_int 2)));
  Alcotest.check_raises "beta3 range"
    (Invalid_argument "Alpha_family.lambda: beta3 must lie in [0, 1/2]") (fun () ->
    ignore (Alpha_family.lambda ~beta3:Rat.one ~alpha:Rat.zero));
  Alcotest.(check bool) "is_matmul_shaped" true (Alpha_family.is_matmul_shaped mm);
  Alcotest.(check bool) "nbody not matmul" false
    (Alpha_family.is_matmul_shaped (Kernels.nbody ~l1:4 ~l2:4));
  Alcotest.check_raises "tile wants small L3"
    (Invalid_argument "Alpha_family.tile: L3 exceeds sqrt M; use the classical cube tile")
    (fun () ->
      ignore (Alpha_family.tile (Kernels.matmul ~l1:64 ~l2:64 ~l3:64) ~m:16 ~alpha:Rat.zero))

(* ------------------------------------------------------------------ *)
(* Closed form (Section 7)                                            *)
(* ------------------------------------------------------------------ *)

let test_closed_form_matmul_pieces () =
  let cf = Closed_form.compute mm in
  let rendered = Format.asprintf "%a" Closed_form.pp cf in
  (* min(b1+b2+b3, 1+b3, 1+b2, 1+b1, 3/2) in some order *)
  Alcotest.(check int) "5 pieces" 5 (Closed_form.num_pieces cf);
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " present") true (Astring.String.is_infix ~affix:frag rendered))
    [ "3/2"; "1 + b(x1)"; "1 + b(x2)"; "1 + b(x3)"; "b(x1) + b(x2) + b(x3)" ]

let test_closed_form_nbody () =
  let cf = Closed_form.compute (Kernels.nbody ~l1:8 ~l2:8) in
  (* min(2, 1 + b1, 1 + b2, b1 + b2) — Section 6.3 *)
  Alcotest.(check int) "4 pieces" 4 (Closed_form.num_pieces cf)

let test_closed_form_eval_matches_lp () =
  let cf = Closed_form.compute mm in
  let betas =
    [
      [| Rat.one; Rat.one; Rat.one |];
      [| rr 1 3; rr 1 5; rr 2 7 |];
      [| Rat.zero; Rat.zero; Rat.zero |];
      [| Rat.of_int 3; Rat.one; rr 1 2 |];
    ]
  in
  List.iter
    (fun beta ->
      check_r "cf = lp" (Tiling.solve_lp mm ~beta).Tiling.value (Closed_form.eval cf beta))
    betas

(* ------------------------------------------------------------------ *)
(* Analyze                                                            *)
(* ------------------------------------------------------------------ *)

let test_analyze_matmul () =
  let r = Analyze.run (Kernels.matmul ~l1:256 ~l2:256 ~l3:256) ~m:1024 in
  Alcotest.(check bool) "tile feasible" true
    (Tiling.is_feasible r.Analyze.spec ~m:1024 r.Analyze.tile);
  Alcotest.(check bool) "attainment close" true
    (r.Analyze.attainment >= 0.9 && r.Analyze.attainment <= 6.0)


(* ------------------------------------------------------------------ *)
(* Subgroup constraints (Theorem 6.6 of [CDK+13], quoted in Sec 3)    *)
(* ------------------------------------------------------------------ *)

let test_subgroup_ranks () =
  let spec = Kernels.matmul ~l1:4 ~l2:4 ~l3:4 in
  (* H = <e1, e2>: rank 2; phi_A(H) (support {x1,x2}) has rank 2,
     phi_C (support {x1,x3}) rank 1, phi_B (support {x2,x3}) rank 1. *)
  let gens = [| [| 1; 0; 0 |]; [| 0; 1; 0 |] |] in
  Alcotest.(check int) "rank H" 2 (Subgroup_check.rank_subgroup gens);
  Alcotest.(check int) "rank C(H)" 1 (Subgroup_check.rank_image spec gens 0);
  Alcotest.(check int) "rank A(H)" 2 (Subgroup_check.rank_image spec gens 1);
  Alcotest.(check int) "rank B(H)" 1 (Subgroup_check.rank_image spec gens 2);
  (* dependent generators do not inflate the rank *)
  let gens2 = [| [| 1; 1; 0 |]; [| 2; 2; 0 |] |] in
  Alcotest.(check int) "dependent rank" 1 (Subgroup_check.rank_subgroup gens2)

let test_subgroup_constraint_eval () =
  let spec = Kernels.matmul ~l1:4 ~l2:4 ~l3:4 in
  let s_opt = (Simplex.solve_exn (Hbl_lp.hbl spec)).Simplex.primal in
  (* the diagonal subgroup <(1,1,1)>: each projection has rank 1, so
     1/2+1/2+1/2 >= 1 holds *)
  Alcotest.(check bool) "diagonal" true
    (Subgroup_check.constraint_holds spec ~s:s_opt [| [| 1; 1; 1 |] |]);
  (* an infeasible s violates some axis *)
  let s_bad = [| Rat.zero; Rat.zero; Rat.zero |] in
  Alcotest.(check bool) "zero s fails" false (Subgroup_check.axis_constraints_hold spec ~s:s_bad)

let test_subgroup_axis_subsets () =
  List.iter
    (fun (_, spec) ->
      let s = (Simplex.solve_exn (Hbl_lp.hbl spec)).Simplex.primal in
      Alcotest.(check bool) "axis subsets" true (Subgroup_check.verify_all_axis_subsets spec ~s))
    (Kernels.all ())

(* ------------------------------------------------------------------ *)
(* Critical regions (Section 7)                                       *)
(* ------------------------------------------------------------------ *)

let test_regions_matmul () =
  let cf = Closed_form.compute mm in
  let regions = Closed_form.regions cf in
  Alcotest.(check int) "one region per piece" (Closed_form.num_pieces cf)
    (List.length regions);
  List.iter
    (fun r ->
      (* the witness lies in its own region and evaluates the piece as
         the minimum *)
      Alcotest.(check bool) "witness in region" true (Closed_form.region_contains r r.Closed_form.witness);
      Alcotest.(check bool) "witness minimizes piece" true
        (Rat.equal
           (Closed_form.eval cf r.Closed_form.witness)
           (Closed_form.eval_piece r.Closed_form.piece r.Closed_form.witness)))
    regions

let test_regions_cover_box () =
  (* every sampled beta belongs to at least one region, and the
     containing region's piece achieves the minimum there *)
  let cf = Closed_form.compute (Kernels.nbody ~l1:4 ~l2:4) in
  let regions = Closed_form.regions cf in
  let rng = Random.State.make [| 77 |] in
  for _ = 1 to 100 do
    let beta = Array.init 2 (fun _ -> Rat.of_ints (Random.State.int rng 33) 8) in
    let containing = List.filter (fun r -> Closed_form.region_contains r beta) regions in
    if containing = [] then Alcotest.fail "uncovered beta";
    List.iter
      (fun r ->
        Alcotest.(check bool) "region piece is minimal there" true
          (Rat.equal (Closed_form.eval cf beta) (Closed_form.eval_piece r.Closed_form.piece beta)))
      containing
  done

let test_region_rendering () =
  let cf = Closed_form.compute mm in
  let r = List.hd (Closed_form.regions cf) in
  let s = Format.asprintf "%a" (Closed_form.pp_region ~loops:mm.Spec.loops) r in
  Alcotest.(check bool) "mentions witness" true (Astring.String.is_infix ~affix:"witness" s)

(* ------------------------------------------------------------------ *)
(* Shared-budget tiles                                                *)
(* ------------------------------------------------------------------ *)

let test_optimal_shared_fits_total () =
  List.iter
    (fun (name, spec) ->
      List.iter
        (fun m ->
          let tile = Tiling.optimal_shared spec ~m in
          if Tiling.total_footprint spec tile > m then
            Alcotest.failf "%s M=%d: total footprint %d > %d" name m
              (Tiling.total_footprint spec tile) m;
          Alcotest.(check bool) (name ^ " within bounds") true
            (Array.for_all2 (fun b l -> 1 <= b && b <= l) tile spec.Spec.bounds))
        [ 16; 256; 4096 ])
    (Kernels.all ())

let test_optimal_shared_no_worse_than_scaled () =
  (* The shared-budget search should never lose badly, under real LRU
     simulation, to the naive per-array M/n heuristic. (Exact ordering is
     not guaranteed — the search optimizes an analytic model — so allow a
     modest tolerance.) *)
  List.iter
    (fun (name, spec) ->
      let m = 1024 in
      let n = Spec.num_arrays spec in
      let measure tile =
        (Executor.run spec ~schedule:(Schedules.Tiled tile) ~capacity:m).Executor.words_moved
      in
      let shared = measure (Tiling.optimal_shared spec ~m) in
      let scaled = measure (Tiling.optimal spec ~m:(m / n)) in
      if float_of_int shared > (1.25 *. float_of_int scaled) +. 64.0 then
        Alcotest.failf "%s: shared %d much worse than scaled %d (LRU words)" name shared scaled)
    (Kernels.all ())

let test_optimal_shared_validation () =
  Alcotest.check_raises "tiny cache"
    (Invalid_argument "Tiling.optimal_shared: cache smaller than one word per array") (fun () ->
    ignore (Tiling.optimal_shared mm ~m:2))

(* Small specs (2-3 loops, modest bounds) where the reference search's
   per-candidate tile-grid walk is affordable, for byte-identity checks
   of the pruned search and the closed-form retained model. *)
let gen_small_spec =
  QCheck.Gen.(
    int_range 2 3 >>= fun d ->
    int_range 2 3 >>= fun n ->
    let gen_support = list_size (int_range 1 d) (int_range 0 (d - 1)) in
    list_size (return n) gen_support >>= fun supports ->
    let supports = Array.of_list supports in
    let supports =
      Array.mapi
        (fun j s -> (List.init d (fun i -> i) |> List.filter (fun i -> i mod n = j)) @ s)
        supports
    in
    array_size (return d) (int_range 1 24) >>= fun bounds ->
    let arrays =
      Array.mapi
        (fun j s ->
          Spec.array_ref
            ~mode:(if j = 0 then Spec.Update else Spec.Read)
            (Printf.sprintf "A%d" j) s)
        supports
    in
    let loops = Array.init d (fun i -> Printf.sprintf "x%d" (i + 1)) in
    match Spec.create ~name:"small" ~loops ~bounds ~arrays with
    | Ok s -> return s
    | Error e -> failwith (Spec.string_of_error e))

let arb_small_spec = QCheck.make ~print:print_spec gen_small_spec

let gen_tile_for spec =
  QCheck.Gen.(
    let d = Spec.num_loops spec in
    array_size (return d) (float_range 0.0 1.0) >>= fun fs ->
    return
      (Array.init d (fun i ->
         let l = spec.Spec.bounds.(i) in
         Stdlib.max 1 (Stdlib.min l (1 + int_of_float (fs.(i) *. float_of_int l))))))

let arb_small_spec_tile =
  QCheck.make
    ~print:(fun (s, b) ->
      Printf.sprintf "%s\ntile=[%s]" (print_spec s)
        (String.concat ";" (List.map string_of_int (Array.to_list b))))
    QCheck.Gen.(gen_small_spec >>= fun s -> gen_tile_for s >>= fun b -> return (s, b))

let shared_props =
  [
    (* The closed-form retained model must reproduce the tile-grid walk
       bit for bit: both compute exact integer word counts below 2^53,
       so even the float accumulation agrees exactly. *)
    QCheck.Test.make ~name:"closed-form retained traffic = grid walk" ~count:300
      arb_small_spec_tile (fun (spec, b) ->
        let cf = Tiling.analytic_traffic_retained spec b in
        let walk = Tiling.analytic_traffic_retained_walk spec b in
        cf.Tiling.reads = walk.Tiling.reads && cf.Tiling.writes = walk.Tiling.writes);
    (* The pruned branch-and-bound with the closed-form objective must
       return byte-identical tiles to the original exhaustive search
       with the walk objective. *)
    QCheck.Test.make ~name:"pruned optimal_shared = reference search" ~count:120
      (QCheck.pair arb_small_spec (QCheck.int_range 8 512))
      (fun (spec, m) ->
        QCheck.assume (m >= Spec.num_arrays spec);
        Tiling.optimal_shared spec ~m = Tiling.optimal_shared_reference spec ~m);
  ]

(* Regression: bounds near max_int. The power-of-two ladder used to loop
   forever (v * 2 wraps negative before v >= l can hold), the tile-count
   product wrapped negative which defeated the walk's cap check, and the
   4*fp <= 3*m headroom test wrapped. All must now terminate and return
   finite, sane answers. *)
let test_huge_bounds_terminate () =
  let huge = (max_int / 2) + 11 in
  let arrays =
    [|
      Spec.array_ref ~mode:Spec.Update "C" [ 0; 1 ];
      Spec.array_ref ~mode:Spec.Read "A" [ 0; 2 ];
      Spec.array_ref ~mode:Spec.Read "B" [ 2; 1 ];
    |]
  in
  let spec =
    match
      Spec.create ~name:"huge" ~loops:[| "i"; "j"; "k" |] ~bounds:[| huge; huge; huge |] ~arrays
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Spec.string_of_error e)
  in
  let m = 4096 in
  let tile = Tiling.optimal_shared spec ~m in
  Alcotest.(check bool) "total footprint fits" true (Tiling.total_footprint spec tile <= m);
  Alcotest.(check bool) "tile within bounds" true
    (Array.for_all2 (fun b l -> 1 <= b && b <= l) tile spec.Spec.bounds);
  let check_traffic name (tr : Tiling.traffic) =
    Alcotest.(check bool)
      (name ^ " finite & positive")
      true
      (Float.is_finite tr.Tiling.reads && Float.is_finite tr.Tiling.writes
     && tr.Tiling.reads > 0.0 && tr.Tiling.writes > 0.0)
  in
  check_traffic "analytic" (Tiling.analytic_traffic spec tile);
  check_traffic "retained" (Tiling.analytic_traffic_retained spec tile);
  Alcotest.(check bool) "num_tiles saturates positive" true (Tiling.num_tiles spec tile > 0)

(* The warm-start hooks can only change the cost of solve_lp_lexmax,
   never its answer: with a hooks-backed cache serving every repeat, the
   solutions must be identical field for field. *)
let test_lexmax_hooks_identity () =
  let tbl : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let hooks =
    {
      Tiling.lookup = (fun k -> Hashtbl.find_opt tbl k);
      store = (fun k b -> Hashtbl.replace tbl k b);
    }
  in
  List.iter
    (fun (_, spec) ->
      let beta = Lower_bound.beta_of_bounds ~m:256 spec.Spec.bounds in
      let cold = Tiling.solve_lp_lexmax spec ~beta in
      let warm1 = Tiling.solve_lp_lexmax ~hooks spec ~beta in
      (* second warm run is served from the stored bases *)
      let warm2 = Tiling.solve_lp_lexmax ~hooks spec ~beta in
      List.iter
        (fun (sol : Tiling.lp_solution) ->
          check_r "value" cold.Tiling.value sol.Tiling.value;
          Array.iteri
            (fun i v -> check_r (Printf.sprintf "lambda %d" i) cold.Tiling.lambda.(i) v)
            sol.Tiling.lambda;
          Array.iteri
            (fun i v -> check_r (Printf.sprintf "dual %d" i) cold.Tiling.dual.(i) v)
            sol.Tiling.dual)
        [ warm1; warm2 ];
      Hashtbl.reset tbl)
    (Kernels.all ())


let test_theorem2_q_validation () =
  Alcotest.check_raises "bad q index" (Invalid_argument "Hbl_lp.theorem2_q: index out of range")
    (fun () -> ignore (Hbl_lp.theorem2_q mm ~beta:[| Rat.one; Rat.one; Rat.one |] ~q:[ 5 ]));
  Alcotest.check_raises "beta arity" (Invalid_argument "beta arity mismatch") (fun () ->
    ignore (Hbl_lp.tiling mm ~beta:[| Rat.one |]));
  Alcotest.check_raises "negative beta" (Invalid_argument "beta must be non-negative")
    (fun () -> ignore (Hbl_lp.dual_tiling mm ~beta:[| Rat.one; Rat.minus_one; Rat.one |]))

let test_enumeration_dim_guard () =
  (* a 21-loop nest exceeds the default 2^d guard *)
  let d = 21 in
  let arrays = [| Spec.array_ref ~mode:Spec.Update "A" (List.init d (fun i -> i)) |] in
  let spec =
    Spec.create_exn ~name:"big"
      ~loops:(Array.init d (fun i -> Printf.sprintf "x%d" i))
      ~bounds:(Array.make d 2) ~arrays
  in
  let beta = Array.make d Rat.one in
  (match Lower_bound.exponent_by_enumeration spec ~beta with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "mentions max_dim" true (Astring.String.is_infix ~affix:"max_dim" msg)
  | _ -> Alcotest.fail "expected guard to trip");
  (* the LP route still works at this dimension *)
  let e = Lower_bound.exponent_by_lp spec ~beta in
  Alcotest.(check bool) "LP route fine" true (Rat.equal e.Lower_bound.k_hat Rat.one)

let test_closed_form_box_argument () =
  (* a piece dominated inside a small box but useful in a big one *)
  let spec = Kernels.nbody ~l1:4 ~l2:4 in
  let small = Closed_form.compute ~box:(Rat.of_ints 1 2) spec in
  let big = Closed_form.compute ~box:(Rat.of_int 4) spec in
  (* within [0, 1/2]^2 the constant piece 2 is never strictly minimal *)
  Alcotest.(check bool) "small box has fewer pieces" true
    (Closed_form.num_pieces small < Closed_form.num_pieces big);
  (* both agree with the LP inside the small box *)
  let beta = [| Rat.of_ints 1 4; Rat.of_ints 3 8 |] in
  Alcotest.(check bool) "agree inside" true
    (Rat.equal (Closed_form.eval small beta) (Closed_form.eval big beta))

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let props =
  [
    (* Theorem 6.6: axis feasibility implies every subgroup constraint. *)
    QCheck.Test.make ~name:"axis-feasible s satisfies random subgroups" ~count:60 arb_spec
      (fun spec ->
        let s = (Simplex.solve_exn (Hbl_lp.hbl spec)).Simplex.primal in
        Subgroup_check.axis_constraints_hold spec ~s
        && Subgroup_check.verify_random_subgroups ~trials:50 ~seed:42 spec ~s
        && Subgroup_check.verify_all_axis_subsets spec ~s);
    QCheck.Test.make ~name:"beta_of_bounds matches beta_pow on powers of two" ~count:100
      (QCheck.pair (QCheck.int_range 1 20) (QCheck.int_range 2 20))
      (fun (l_exp, m_exp) ->
        let m = 1 lsl m_exp and l = 1 lsl l_exp in
        let via_float = (Lower_bound.beta_of_bounds ~m [| l |]).(0) in
        let exact = Lower_bound.beta_pow ~base:2 ~m_exp l in
        Rat.equal via_float exact);
    (* The centerpiece: Theorem 3. LP (5.1) optimum, its explicit dual,
       and the 2^d Theorem-2 enumeration all agree. *)
    QCheck.Test.make ~name:"theorem3: LP = dual = enumeration" ~count:120 arb_spec_beta
      (fun (spec, beta) ->
        let v_tiling = (Tiling.solve_lp spec ~beta).Tiling.value in
        let v_dual = (Simplex.solve_exn (Hbl_lp.dual_tiling spec ~beta)).Simplex.objective in
        let v_enum = (Lower_bound.exponent_by_enumeration spec ~beta).Lower_bound.k_hat in
        let v_lp = (Lower_bound.exponent_by_lp spec ~beta).Lower_bound.k_hat in
        Rat.equal v_tiling v_dual && Rat.equal v_tiling v_enum && Rat.equal v_tiling v_lp);
    QCheck.Test.make ~name:"literal Theorem-2 formula is a valid (weaker) bound" ~count:80
      arb_spec_beta (fun (spec, beta) ->
        let d = Spec.num_loops spec in
        let k_hat = (Lower_bound.exponent_by_lp spec ~beta).Lower_bound.k_hat in
        List.for_all
          (fun mask ->
            let q = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init d (fun i -> i)) in
            let k_lit = Lower_bound.k_of_q_literal spec ~beta ~q in
            let k_q = Lower_bound.k_of_q spec ~beta ~q in
            Rat.compare k_lit k_q >= 0 && Rat.compare k_q k_hat >= 0)
          (List.init (1 lsl d) (fun m -> m)));
    QCheck.Test.make ~name:"k_hat monotone in beta" ~count:80 arb_spec_beta
      (fun (spec, beta) ->
        let bigger = Array.map (fun b -> Rat.add b (rr 1 8)) beta in
        Rat.compare
          (Lower_bound.exponent_by_lp spec ~beta).Lower_bound.k_hat
          (Lower_bound.exponent_by_lp spec ~beta:bigger).Lower_bound.k_hat
        <= 0);
    QCheck.Test.make ~name:"k_hat capped by s_hbl and sum beta" ~count:80 arb_spec_beta
      (fun (spec, beta) ->
        let k = (Lower_bound.exponent_by_lp spec ~beta).Lower_bound.k_hat in
        Rat.compare k (Hbl_lp.s_hbl spec) <= 0
        && Rat.compare k (Array.fold_left Rat.add Rat.zero beta) <= 0);
    QCheck.Test.make ~name:"optimal integer tile always feasible" ~count:80
      (QCheck.pair arb_spec (QCheck.int_range 4 4096))
      (fun (spec, m) -> Tiling.is_feasible spec ~m (Tiling.optimal spec ~m));
    (* The rounding repair inside of_lambda: after shrinking an
       overflowing dimension, the tile must end up feasible but must not
       collapse to the all-ones tile when the budget admits any larger
       one (i.e. some single dimension could still be 2). *)
    QCheck.Test.make ~name:"of_lambda repair: feasible, never needlessly all-ones"
      ~count:150
      (QCheck.pair arb_spec (QCheck.int_range 2 4096))
      (fun (spec, m) ->
        let beta = Lower_bound.beta_of_bounds ~m spec.Spec.bounds in
        let tile = Tiling.of_lambda spec ~m (Tiling.solve_lp spec ~beta).Tiling.lambda in
        let d = Spec.num_loops spec in
        let grown_feasible i =
          spec.Spec.bounds.(i) >= 2
          && Tiling.is_feasible spec ~m
               (Array.init d (fun j -> if j = i then 2 else 1))
        in
        Tiling.is_feasible spec ~m tile
        && (Tiling.volume tile > 1
            || not (List.exists grown_feasible (List.init d (fun i -> i)))));
    QCheck.Test.make ~name:"lambda solution respects beta box" ~count:80 arb_spec_beta
      (fun (spec, beta) ->
        let sol = Tiling.solve_lp spec ~beta in
        Array.for_all2 (fun l b -> Rat.compare l b <= 0) sol.Tiling.lambda beta);
    QCheck.Test.make ~name:"closed form = LP inside box" ~count:40
      (QCheck.make ~print:(fun ((s, b), _) ->
           Printf.sprintf "%s beta=[%s]" (print_spec s)
             (String.concat ";" (List.map Rat.to_string (Array.to_list b))))
         QCheck.Gen.(
           gen_spec >>= fun s ->
           (* keep shapes small so vertex enumeration stays fast *)
           if Spec.num_loops s + Spec.num_arrays s > 8 then
             return ((Kernels.nbody ~l1:4 ~l2:4, [| Rat.one; Rat.half |]), true)
           else gen_beta (Spec.num_loops s) >>= fun b -> return ((s, b), false)))
      (fun ((spec, beta), _) ->
        let beta = Array.map (fun b -> Rat.min b (Rat.of_int 4)) beta in
        let cf = Closed_form.compute spec in
        Rat.equal (Closed_form.eval cf beta) (Tiling.solve_lp spec ~beta).Tiling.value);
    QCheck.Test.make ~name:"tile volume near brute-force optimum (tiny cases)" ~count:30
      (QCheck.make
         ~print:(fun (s, m) -> Printf.sprintf "%s M=%d" (print_spec s) m)
         QCheck.Gen.(
           (* 2-3 loops, bounds <= 8, so exhaustive search is cheap *)
           int_range 2 3 >>= fun d ->
           array_size (return d) (int_range 1 8) >>= fun bounds ->
           let arrays =
             if d = 2 then
               [| Spec.array_ref ~mode:Spec.Update "C" [ 0; 1 ]; Spec.array_ref "a" [ 0 ];
                  Spec.array_ref "b" [ 1 ] |]
             else
               [| Spec.array_ref ~mode:Spec.Update "C" [ 0; 2 ]; Spec.array_ref "A" [ 0; 1 ];
                  Spec.array_ref "B" [ 1; 2 ] |]
           in
           let loops = Array.init d (fun i -> Printf.sprintf "x%d" (i + 1)) in
           int_range 2 64 >>= fun m ->
           match Spec.create ~name:"tiny" ~loops ~bounds ~arrays with
           | Ok s -> return (s, m)
           | Error e -> failwith (Spec.string_of_error e)))
      (fun (spec, m) ->
        let d = Spec.num_loops spec in
        let tile = Tiling.optimal spec ~m in
        (* brute force best feasible rectangle *)
        let best = ref 0 in
        let b = Array.make d 1 in
        let rec go i =
          if i = d then begin
            if Tiling.is_feasible spec ~m b then best := max !best (Tiling.volume b)
          end
          else
            for v = 1 to spec.Spec.bounds.(i) do
              b.(i) <- v;
              go (i + 1)
            done
        in
        go 0;
        (* The grown integer tile is maximal; it should be within the
           constant factor 4 of the absolute best rectangle. *)
        Tiling.volume tile * 4 >= !best);
    QCheck.Test.make ~name:"analytic traffic >= trivial array sizes" ~count:60
      (QCheck.pair arb_spec (QCheck.int_range 4 1024))
      (fun (spec, m) ->
        let tile = Tiling.optimal spec ~m in
        let t = Tiling.analytic_traffic spec tile in
        t.Tiling.reads +. t.Tiling.writes >= 0.99 *. float_of_int (Spec.total_array_words spec));
  ]

let () =
  Alcotest.run "hbl"
    [
      ( "hbl-lp",
        [
          Alcotest.test_case "s_hbl values" `Quick test_s_hbl_values;
          Alcotest.test_case "matmul LP solution" `Quick test_hbl_lp_matmul_solution;
          Alcotest.test_case "reduced LP" `Quick test_reduced_hbl;
        ] );
      ( "lower-bound",
        [
          Alcotest.test_case "matmul exponent" `Quick test_matmul_exponent_cases;
          Alcotest.test_case "symmetric small" `Quick test_matmul_symmetric_small;
          Alcotest.test_case "matvec witness" `Quick test_witness_q_matvec;
          Alcotest.test_case "nbody exponent" `Quick test_nbody_exponent;
          Alcotest.test_case "contraction = matmul" `Quick test_contraction_reduces_to_matmul;
          Alcotest.test_case "k_of_q empty" `Quick test_k_of_q_empty_is_s_hbl;
          Alcotest.test_case "literal vs LP" `Quick test_k_of_q_literal_vs_lp;
          Alcotest.test_case "beta_of_bounds" `Quick test_beta_of_bounds;
          Alcotest.test_case "beta_pow" `Quick test_beta_pow;
          Alcotest.test_case "Section 6.1 formula" `Quick test_section_6_1_formula;
          Alcotest.test_case "matvec words" `Quick test_matvec_bound_words;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "LP matmul" `Quick test_tiling_lp_matmul;
          Alcotest.test_case "integer tile small L3" `Quick test_integer_tile_matmul_small_l3;
          Alcotest.test_case "integer tile cube" `Quick test_integer_tile_cube;
          Alcotest.test_case "repair" `Quick test_of_lambda_repairs_infeasible;
          Alcotest.test_case "validation" `Quick test_of_lambda_validation;
          Alcotest.test_case "footprints" `Quick test_footprints;
          Alcotest.test_case "analytic traffic" `Quick test_analytic_traffic;
          Alcotest.test_case "clipped traffic" `Quick test_analytic_traffic_clipped;
        ] );
      ( "alpha-family",
        [
          Alcotest.test_case "endpoints" `Quick test_alpha_lambda_endpoints;
          Alcotest.test_case "all optimal" `Quick test_alpha_all_optimal;
          Alcotest.test_case "tiles feasible" `Quick test_alpha_tiles_feasible;
          Alcotest.test_case "validation" `Quick test_alpha_validation;
        ] );
      ( "closed-form",
        [
          Alcotest.test_case "matmul pieces" `Quick test_closed_form_matmul_pieces;
          Alcotest.test_case "nbody pieces" `Quick test_closed_form_nbody;
          Alcotest.test_case "eval matches LP" `Quick test_closed_form_eval_matches_lp;
        ] );
      ("analyze", [ Alcotest.test_case "matmul report" `Quick test_analyze_matmul ]);
      ( "subgroups",
        [
          Alcotest.test_case "ranks" `Quick test_subgroup_ranks;
          Alcotest.test_case "constraint eval" `Quick test_subgroup_constraint_eval;
          Alcotest.test_case "axis subsets" `Quick test_subgroup_axis_subsets;
        ] );
      ( "regions",
        [
          Alcotest.test_case "matmul regions" `Quick test_regions_matmul;
          Alcotest.test_case "regions cover box" `Quick test_regions_cover_box;
          Alcotest.test_case "rendering" `Quick test_region_rendering;
        ] );
      ( "guards",
        [
          Alcotest.test_case "theorem2_q validation" `Quick test_theorem2_q_validation;
          Alcotest.test_case "enumeration dim guard" `Quick test_enumeration_dim_guard;
          Alcotest.test_case "closed-form box" `Quick test_closed_form_box_argument;
        ] );
      ( "shared-tiles",
        [
          Alcotest.test_case "fits total budget" `Quick test_optimal_shared_fits_total;
          Alcotest.test_case "no worse than scaled" `Quick test_optimal_shared_no_worse_than_scaled;
          Alcotest.test_case "validation" `Quick test_optimal_shared_validation;
          Alcotest.test_case "huge bounds terminate" `Quick test_huge_bounds_terminate;
          Alcotest.test_case "lexmax hooks identity" `Quick test_lexmax_hooks_identity;
        ] );
      ("shared-tile properties", List.map QCheck_alcotest.to_alcotest shared_props);
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
