(* Tests for the unified engine pipeline (lib/engine): request/report
   plumbing, the canonicalized memo cache, and the domain-parallel sweep
   pool. The determinism tests force jobs > 1 explicitly — CI boxes may
   report a single core, which would otherwise make the parallel path
   degenerate to the sequential one. *)

let report_text (r : Report.t) = Format.asprintf "%a" Report.pp r

let mk_requests () =
  let sims = Engine.[ Pipeline.sim Optimal; Pipeline.sim Classic; Pipeline.sim Untiled ] in
  List.concat_map
    (fun spec ->
      List.map (fun m -> Pipeline.request ~sims ~shared:true spec ~m) [ 64; 256 ])
    [
      Kernels.matmul ~l1:24 ~l2:24 ~l3:24;
      Kernels.matmul ~l1:64 ~l2:64 ~l3:4;
      Kernels.nbody ~l1:96 ~l2:96;
      Kernels.pointwise_conv ~b:2 ~c:4 ~k:8 ~w:7 ~h:7;
      Kernels.outer_product ~m:48 ~n:48;
    ]

(* ------------------------------------------------------------------ *)
(* Memo cache                                                         *)
(* ------------------------------------------------------------------ *)

let test_second_request_hits_cache () =
  Engine.reset_caches ();
  let spec = Kernels.matmul ~l1:32 ~l2:32 ~l3:32 in
  let r1 = Engine.analyze spec ~m:256 in
  Alcotest.(check bool) "first analysis is computed" false r1.Report.from_cache;
  let hits_before, _ = Engine.cache_stats () in
  let r2 = Engine.analyze spec ~m:256 in
  Alcotest.(check bool) "second identical request served from cache" true
    r2.Report.from_cache;
  let hits_after, _ = Engine.cache_stats () in
  Alcotest.(check bool) "cache hit counter advanced" true (hits_after > hits_before);
  (* cached and fresh reports agree on everything the renderer shows *)
  Alcotest.(check string) "identical rendering" (report_text r1) (report_text r2)

let test_cache_ignores_names () =
  (* The key canonicalizes away loop/array names: a renamed matmul with
     the same bounds and supports must share the cache line. *)
  Engine.reset_caches ();
  let a = Parser.parse_exn "i = 16, j = 16, k = 16 : C[i,k] += A[i,j] * B[j,k]" in
  let b = Parser.parse_exn "p = 16, q = 16, r = 16 : Z[p,r] += X[p,q] * Y[q,r]" in
  ignore (Engine.analyze a ~m:64);
  let hits_before, _ = Engine.cache_stats () in
  let rb = Engine.analyze b ~m:64 in
  Alcotest.(check bool) "renamed spec hits the same entry" true rb.Report.from_cache;
  let hits_after, _ = Engine.cache_stats () in
  Alcotest.(check bool) "hit counted" true (hits_after > hits_before)

let test_cache_distinguishes_m () =
  (* beta alone does not determine the integer tile: m is in the key. *)
  Engine.reset_caches ();
  let spec = Kernels.matmul ~l1:4 ~l2:4 ~l3:4 in
  ignore (Engine.analyze spec ~m:16);
  let r = Engine.analyze spec ~m:256 in
  Alcotest.(check bool) "different m misses" false r.Report.from_cache

let test_memoized_stages_agree () =
  Engine.reset_caches ();
  let spec = Kernels.pointwise_conv ~b:2 ~c:4 ~k:8 ~w:7 ~h:7 in
  let m = 128 in
  let beta = Lower_bound.beta_of_bounds ~m spec.Spec.bounds in
  Alcotest.(check bool) "solve_lp = Tiling.solve_lp" true
    (Rat.equal (Engine.solve_lp spec ~beta).Tiling.value
       (Tiling.solve_lp spec ~beta).Tiling.value);
  Alcotest.(check (array int)) "tile_shared = Tiling.optimal_shared"
    (Tiling.optimal_shared spec ~m) (Engine.tile_shared spec ~m);
  (* The engine canonicalizes to the lex-max optimum (so the plan fast
     path and the LP path agree bit-for-bit); of_lambda of that lambda
     is the pinned tile contract. *)
  Alcotest.(check (array int)) "tile = Tiling.of_lambda (lex-max)"
    (Tiling.of_lambda spec ~m (Tiling.solve_lp_lexmax spec ~beta).Tiling.lambda)
    (Engine.tile spec ~m)

(* ------------------------------------------------------------------ *)
(* Parallel sweep                                                     *)
(* ------------------------------------------------------------------ *)

let test_parallel_sweep_matches_sequential () =
  Engine.reset_caches ();
  let sequential = Engine.sweep ~jobs:1 (mk_requests ()) in
  Engine.reset_caches ();
  let parallel = Engine.sweep ~jobs:4 (mk_requests ()) in
  Alcotest.(check int) "same number of reports" (List.length sequential)
    (List.length parallel);
  List.iteri
    (fun i (s, p) ->
      Alcotest.(check string)
        (Printf.sprintf "report %d byte-identical" i)
        (report_text s) (report_text p))
    (List.combine sequential parallel);
  (* the JSON rendering (sans timings) must agree too *)
  Alcotest.(check string) "identical JSON"
    (Report.json_of_reports ~timings:false sequential)
    (Report.json_of_reports ~timings:false parallel)

let test_parallel_sweep_with_warm_cache () =
  (* Concurrent workers racing on the same memo entries must still
     produce the sequential answer. Duplicate kernels maximize races. *)
  Engine.reset_caches ();
  let reqs = mk_requests () @ mk_requests () in
  let seq = List.map report_text (Engine.sweep ~jobs:1 reqs) in
  Engine.reset_caches ();
  let par = List.map report_text (Engine.sweep ~jobs:3 reqs) in
  Alcotest.(check (list string)) "duplicated requests, warm cache" seq par

let test_sweep_order_is_input_order () =
  Engine.reset_caches ();
  let specs =
    [ Kernels.matmul ~l1:8 ~l2:8 ~l3:8; Kernels.nbody ~l1:16 ~l2:16;
      Kernels.outer_product ~m:12 ~n:12 ]
  in
  let reports = Engine.sweep_grid ~jobs:4 specs ~ms:[ 16; 64 ] in
  let got = List.map (fun (r : Report.t) -> (r.Report.spec.Spec.name, r.Report.m)) reports in
  let expected =
    List.concat_map (fun s -> [ (s.Spec.name, 16); (s.Spec.name, 64) ]) specs
  in
  Alcotest.(check (list (pair string int))) "kernels outermost, ms inner" expected got

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order_and_values () =
  let xs = Array.init 100 (fun i -> i) in
  let doubled = Pool.map ~jobs:4 (fun x -> 2 * x) xs in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> 2 * x) xs) doubled;
  Alcotest.(check (list int)) "map_list too" [ 2; 4; 6 ]
    (Pool.map_list ~jobs:2 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_propagates_exceptions () =
  Alcotest.check_raises "worker exception resurfaces" (Failure "boom") (fun () ->
    ignore (Pool.map ~jobs:3 (fun x -> if x = 17 then failwith "boom" else x)
              (Array.init 64 (fun i -> i))))

let test_pool_jobs_env_override () =
  Unix.putenv "PROJTILE_JOBS" "7";
  let n = Pool.default_jobs () in
  Unix.putenv "PROJTILE_JOBS" "not-a-number";
  let fallback = Pool.default_jobs () in
  Unix.putenv "PROJTILE_JOBS" "";
  Alcotest.(check int) "env override respected" 7 n;
  Alcotest.(check bool) "garbage falls back to >= 1" true (fallback >= 1)

let test_pool_validate_jobs () =
  let check label s expect =
    Alcotest.(check (option int)) label expect (Pool.validate_jobs s)
  in
  check "positive" "7" (Some 7);
  check "trimmed" " 3 " (Some 3);
  check "zero rejected" "0" None;
  check "negative rejected" "-3" None;
  check "garbage rejected" "abc" None;
  check "empty rejected" "" None;
  check "float rejected" "2.5" None

(* ------------------------------------------------------------------ *)
(* Staged scheduling and worker instrumentation                       *)
(* ------------------------------------------------------------------ *)

let test_pool_staged_values_and_order () =
  (* A mixed workload: every third task carries a second stage (the
     simulation-tail shape). Values and order must match the plain map
     whatever the scheduler does, on the split scheduler, the coarse
     ablation arm, and the sequential path. *)
  let xs = List.init 50 Fun.id in
  let classify i = if i mod 3 = 0 then Pool.Simulation else Pool.Analytic in
  let f i =
    if i mod 3 = 0 then Pool.More (fun () -> (i * 10) + 1) else Pool.Done (i * 10)
  in
  let expect = List.map (fun i -> if i mod 3 = 0 then (i * 10) + 1 else i * 10) xs in
  Alcotest.(check (list int)) "split scheduler" expect
    (Pool.map_staged_list ~jobs:4 ~classify f xs);
  Alcotest.(check (list int)) "coarse ablation arm" expect
    (Pool.map_staged_list ~jobs:4 ~coarse:true ~classify f xs);
  Alcotest.(check (list int)) "sequential path" expect
    (Pool.map_staged_list ~jobs:1 ~classify f xs)

let test_pool_staged_continuation_exception () =
  Alcotest.check_raises "exception from the second stage resurfaces"
    (Failure "boom2") (fun () ->
      ignore
        (Pool.map_staged_list ~jobs:3
           ~classify:(fun _ -> Pool.Analytic)
           (fun i ->
             if i = 7 then Pool.More (fun () -> failwith "boom2") else Pool.Done i)
           (List.init 32 Fun.id)))

let test_pool_worker_instrumentation () =
  (* Regression: these were dead before the work-stealing rewrite — the
     spawn/busy/idle accounting only ran on a code path that a 1-core
     host never took. Forcing jobs:3 must light all of it up. *)
  let s0 = Obs.snapshot () in
  let out = Pool.map ~jobs:3 (fun x -> x * x) (Array.init 40 Fun.id) in
  let d = Obs.diff s0 (Obs.snapshot ()) in
  let counter n = Option.value ~default:0 (List.assoc_opt n d.Obs.scounters) in
  let timer_calls n =
    match List.assoc_opt n d.Obs.stimers with Some t -> t.Obs.tcalls | None -> 0
  in
  Alcotest.(check (array int)) "results correct" (Array.init 40 (fun i -> i * i)) out;
  Alcotest.(check int) "jobs - 1 domains spawned" 2 (counter "pool.domains_spawned");
  Alcotest.(check bool) "worker busy time measured" true
    (timer_calls "pool.worker_busy" > 0);
  Alcotest.(check bool) "worker idle time measured" true
    (timer_calls "pool.worker_idle" > 0);
  Alcotest.(check int) "queue wait recorded per task" 40 (timer_calls "pool.queue_wait");
  Alcotest.(check int) "analytic-class wait recorded per task" 40
    (timer_calls "pool.queue_wait.analytic")

(* Satellite regression: warm-start bases used to be keyed under the
   (spec, beta) memo key from inside that very key's miss closure, so a
   lookup could never fire on a key that existed — 0 hits against
   hundreds of insertions. Shape-keying makes repeat shapes (same kernel,
   different M, hence different beta) reuse each other's optimal bases:
   both the memo-level hit counter and the solver's certified-warm-start
   counter must move. Plans are forced off so every point takes the LP
   path. *)
let test_warm_basis_hits_on_repeat_shapes () =
  let mode0 = Engine.plan_mode () in
  Engine.set_plan_mode Engine.Plan_off;
  Engine.reset_caches ();
  let spec = Kernels.matmul ~l1:48 ~l2:48 ~l3:48 in
  let s0 = Obs.snapshot () in
  List.iter (fun m -> ignore (Engine.analyze spec ~m)) [ 16; 64; 256; 1024; 4096 ];
  let d = Obs.diff s0 (Obs.snapshot ()) in
  Engine.set_plan_mode mode0;
  Engine.reset_caches ();
  let counter n = Option.value ~default:0 (List.assoc_opt n d.Obs.scounters) in
  Alcotest.(check bool) "memo.basis.hits advanced" true (counter "memo.basis.hits" > 0);
  Alcotest.(check bool) "tiling.search.warm_basis_hits advanced" true
    (counter "tiling.search.warm_basis_hits" > 0)

(* ------------------------------------------------------------------ *)
(* Sharded memo under concurrent domains                              *)
(* ------------------------------------------------------------------ *)

let test_memo_sharded_domain_stress () =
  (* N domains hammer one sharded table with overlapping keys: no update
     may be lost (every find_or_add returns the key's own value), the
     final table holds exactly the distinct keys, and the hit/miss
     accounting stays exact under races. *)
  let memo : int Memo.t = Memo.create ~shards:8 () in
  let keys = 64 and per_domain = 2000 and domains = 4 in
  let value_of k = (k * 7919) + 13 in
  let bad = Atomic.make 0 in
  let worker seed () =
    let st = Random.State.make [| seed; 0x5eed |] in
    for _ = 1 to per_domain do
      let k = Random.State.int st keys in
      let v = Memo.find_or_add memo (Printf.sprintf "key-%03d" k) (fun () -> value_of k) in
      if v <> value_of k then Atomic.incr bad
    done
  in
  let spawned = List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  Alcotest.(check int) "no lost or cross-wired updates" 0 (Atomic.get bad);
  (* a final sequential sweep fills in any key the random walks missed *)
  for k = 0 to keys - 1 do
    ignore (Memo.find_or_add memo (Printf.sprintf "key-%03d" k) (fun () -> value_of k))
  done;
  Alcotest.(check int) "distinct keys" keys (Memo.length memo);
  Alcotest.(check int) "accounting exact" ((domains * per_domain) + keys)
    (Memo.hits memo + Memo.misses memo);
  let alist = Memo.to_alist memo in
  Alcotest.(check int) "to_alist covers the table" keys (List.length alist);
  Alcotest.(check bool) "to_alist sorted by key" true
    (List.sort compare alist = alist);
  List.iter
    (fun (key, v) ->
      Alcotest.(check int) (key ^ " holds its own value")
        (value_of (int_of_string (String.sub key 4 3))) v)
    alist

let prop_memo_sharding_invisible =
  (* Whatever the shard count (1 rounds up from anything), the table
     behaves like one hashtable: add is first-writer-wins, replace is
     last-writer-wins, find_opt sees exactly the surviving writes. *)
  QCheck.Test.make ~name:"sharding is semantically invisible" ~count:100
    QCheck.(
      pair (int_range 1 32)
        (small_list (pair (int_range 0 15) (pair bool small_int))))
    (fun (shards, ops) ->
      let memo : int Memo.t = Memo.create ~shards () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, (use_replace, v)) ->
          let key = Printf.sprintf "k%02d" k in
          if use_replace then begin
            Memo.replace memo key v;
            Hashtbl.replace model key v
          end
          else begin
            Memo.add memo key v;
            if not (Hashtbl.mem model key) then Hashtbl.add model key v
          end)
        ops;
      Hashtbl.fold
        (fun key v acc -> acc && Memo.find_opt memo key = Some v)
        model
        (Memo.length memo = Hashtbl.length model))

(* ------------------------------------------------------------------ *)
(* Cache persistence                                                  *)
(* ------------------------------------------------------------------ *)

let fill_caches () =
  List.iter
    (fun (spec, m) -> ignore (Engine.analyze ~shared:true spec ~m))
    [
      (Kernels.matmul ~l1:24 ~l2:24 ~l3:24, 64);
      (Kernels.matmul ~l1:24 ~l2:24 ~l3:24, 256);
      (Kernels.matvec ~m:64 ~n:64, 64);
      (Kernels.nbody ~l1:48 ~l2:48, 128);
    ];
  ignore (Engine.hierarchy (Kernels.matmul ~l1:16 ~l2:16 ~l3:16) ~capacities:[| 32; 256 |])

let test_cache_snapshot_roundtrip () =
  let mode0 = Engine.plan_mode () in
  Engine.set_plan_mode Engine.Plan_inline;
  Engine.reset_caches ();
  fill_caches ();
  let snap1 = Engine.cache_snapshot () in
  Engine.reset_caches ();
  (match Engine.cache_restore snap1 with
  | Error msg -> Alcotest.failf "restore failed: %s" msg
  | Ok (loaded, rejected) ->
    Alcotest.(check bool) "entries restored" true (loaded > 0);
    Alcotest.(check int) "nothing rejected" 0 rejected);
  (* snapshot -> restore -> snapshot is byte-identical: entries are
     written in sorted key order with exact rationals, so the cycle is
     lossless and the on-disk file is deterministic. *)
  Alcotest.(check string) "snapshot byte-stable across restore" snap1
    (Engine.cache_snapshot ());
  (* a restored cache actually serves: the same sweep again must not
     touch the LP solver *)
  let s0 = Obs.snapshot () in
  fill_caches ();
  let d = Obs.diff s0 (Obs.snapshot ()) in
  let counter n = Option.value ~default:0 (List.assoc_opt n d.Obs.scounters) in
  Alcotest.(check int) "no LP misses after restore" 0 (counter "memo.lp.misses");
  Engine.set_plan_mode mode0;
  Engine.reset_caches ()

let test_cache_restore_tolerates_corruption () =
  Engine.reset_caches ();
  (match Engine.cache_restore "not json at all {" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (match Engine.cache_restore "{\"v\":99,\"lp\":[]}" with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error _ -> ());
  (* Per-entry damage must not poison the rest: the bad lp value and the
     keyless shared entry are rejected individually, the good basis
     entry loads. *)
  let mixed =
    "{\"v\":1,"
    ^ "\"lp\":[{\"k\":\"K1\",\"lambda\":[\"1/2\"],\"value\":\"bogus\",\"dual\":[\"0\"]}],"
    ^ "\"basis\":[{\"k\":\"B1;k=0\",\"b\":[1,2,3]}],"
    ^ "\"shared\":[{\"t\":[4,4]}],\"nested\":[],\"plans\":[]}"
  in
  (match Engine.cache_restore mixed with
  | Error msg -> Alcotest.failf "mixed snapshot refused outright: %s" msg
  | Ok (loaded, rejected) ->
    Alcotest.(check int) "good entry loaded" 1 loaded;
    Alcotest.(check int) "damaged entries rejected" 2 rejected);
  Engine.reset_caches ()

(* ------------------------------------------------------------------ *)
(* Reports                                                            *)
(* ------------------------------------------------------------------ *)

let test_report_fields_and_sims () =
  Engine.reset_caches ();
  let spec = Kernels.matmul ~l1:16 ~l2:16 ~l3:16 in
  let r =
    Engine.analyze ~shared:true
      ~sims:Engine.[ Pipeline.sim Optimal; Pipeline.sim ~policy:Policy.Opt Untiled ]
      spec ~m:64
  in
  Alcotest.(check int) "two simulations" 2 (List.length r.Report.sims);
  Alcotest.(check bool) "shared tile present" true (r.Report.tile_shared <> None);
  Alcotest.(check bool) "tile feasible (paper model)" true
    (Tiling.is_feasible spec ~m:64 r.Report.tile);
  let opt = List.nth r.Report.sims 1 in
  Alcotest.(check bool) "OPT policy recorded" true (opt.Report.policy = Policy.Opt);
  List.iter
    (fun (s : Report.sim) ->
      Alcotest.(check bool) "words vs bound ratio is finite" true
        (Float.is_finite s.Report.ratio && s.Report.ratio > 0.0))
    r.Report.sims;
  Alcotest.(check bool) "timings recorded for all three stages" true
    (List.map fst r.Report.timings = [ "analysis"; "shared_tile"; "simulate" ])

let test_report_json_shape () =
  Engine.reset_caches ();
  let spec = Kernels.matvec ~m:32 ~n:32 in
  let r = Engine.analyze ~sims:[ Pipeline.sim Engine.Untiled ] spec ~m:64 in
  let j = Report.to_json r in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "json mentions %s" frag) true
        (Astring.String.is_infix ~affix:frag j))
    [ "\"kernel\""; "\"m\":64"; "\"lower_bound_words\""; "\"lambda\""; "\"tile\"";
      "\"simulations\""; "\"words_moved\""; "\"policy\""; "\"k_hat\"" ];
  Alcotest.(check bool) "timings by default" true
    (Astring.String.is_infix ~affix:"timings" j);
  Alcotest.(check bool) "timings excluded on demand" false
    (Astring.String.is_infix ~affix:"timings" (Report.to_json ~timings:false r));
  (* renderer never emits unescaped newlines inside strings: crude but
     effective structural check — the JSON must balance braces/brackets *)
  let depth = ref 0 in
  String.iter
    (fun c ->
      (match c with
      | '{' | '[' -> incr depth
      | '}' | ']' -> decr depth
      | _ -> ());
      if !depth < 0 then Alcotest.fail "unbalanced JSON")
    j;
  Alcotest.(check int) "balanced JSON" 0 !depth

let test_hierarchy_report () =
  Engine.reset_caches ();
  let spec = Kernels.matmul ~l1:16 ~l2:16 ~l3:16 in
  let h = Engine.hierarchy spec ~capacities:[| 32; 256 |] in
  Alcotest.(check int) "two levels of tiles" 2 (List.length h.Pipeline.htiles);
  Alcotest.(check int) "two boundary measurements" 2
    (Array.length h.Pipeline.hresult.Executor.boundary_words);
  (* second call is served by the nested-tile memo table *)
  let hits_before, _ = Engine.cache_stats () in
  ignore (Engine.hierarchy spec ~capacities:[| 32; 256 |]);
  let hits_after, _ = Engine.cache_stats () in
  Alcotest.(check bool) "nested tiles memoized" true (hits_after > hits_before)

let test_partition_checked () =
  Engine.reset_caches ();
  let spec = Kernels.matmul ~l1:64 ~l2:64 ~l3:64 in
  (match Engine.partition_checked spec ~p:64 ~m_local:4096 ~net:Partition_solve.Words with
  | Error e -> Alcotest.failf "valid partition failed: %s" (Engine_error.to_string e)
  | Ok sol ->
    Alcotest.(check (array int)) "grid" [| 4; 4; 4 |] sol.Partition_solve.grid;
    (* the second identical request is served from the partition memo *)
    let hits_before, _ = Engine.cache_stats () in
    (match Engine.partition_checked spec ~p:64 ~m_local:4096 ~net:Partition_solve.Words with
    | Ok sol2 ->
      Alcotest.(check string) "memoized answer identical"
        (Partition_solve.to_json sol) (Partition_solve.to_json sol2)
    | Error e -> Alcotest.failf "memoized request failed: %s" (Engine_error.to_string e));
    let hits_after, _ = Engine.cache_stats () in
    Alcotest.(check bool) "partition memo hit" true (hits_after > hits_before));
  (* typed refusals, each with its stable wire code and exit code *)
  (match Engine.partition_checked (Kernels.nbody ~l1:7 ~l2:7) ~p:11 ~m_local:64
           ~net:Partition_solve.Words with
  | Error (Engine_error.Unfactorable_p { p = 11 } as e) ->
    Alcotest.(check string) "code" "unfactorable_p" (Engine_error.code e);
    Alcotest.(check int) "exit" 12 (Engine_error.exit_code e)
  | Error e -> Alcotest.failf "wanted unfactorable_p, got %s" (Engine_error.code e)
  | Ok _ -> Alcotest.fail "p=11 accepted on a 7x7 nest");
  (match Engine.partition_checked spec ~p:8 ~m_local:64
           ~net:(Partition_solve.Alpha_beta { alpha = Rat.minus_one; beta = Rat.one }) with
  | Error (Engine_error.Network_model_invalid _ as e) ->
    Alcotest.(check string) "code" "network_model_invalid" (Engine_error.code e);
    Alcotest.(check int) "exit" 13 (Engine_error.exit_code e)
  | Error e -> Alcotest.failf "wanted network_model_invalid, got %s" (Engine_error.code e)
  | Ok _ -> Alcotest.fail "negative alpha accepted");
  (match Engine.partition_checked spec ~p:0 ~m_local:64 ~net:Partition_solve.Words with
  | Error (Engine_error.Invalid_request _) -> ()
  | Error e -> Alcotest.failf "wanted invalid_request, got %s" (Engine_error.code e)
  | Ok _ -> Alcotest.fail "p=0 accepted");
  match Engine.partition_checked ~deadline:0.0 spec ~p:4 ~m_local:64 ~net:Partition_solve.Words with
  | Error (Engine_error.Deadline_exceeded _) -> ()
  | Error e -> Alcotest.failf "wanted deadline_exceeded, got %s" (Engine_error.code e)
  | Ok _ -> Alcotest.fail "expired deadline accepted"

let test_partition_validate () =
  (* the tentpole loop-closer: run the P-processor schedule on the Pool
     (one domain per distinct block shape) and check the simulated
     per-processor maximum equals the model's words exactly — on a
     ragged nest whose remainder blocks differ from the full ones *)
  let spec = Kernels.matmul ~l1:10 ~l2:8 ~l3:8 in
  match Engine.partition_checked spec ~p:6 ~m_local:4096 ~net:Partition_solve.Words with
  | Error e -> Alcotest.failf "partition: %s" (Engine_error.to_string e)
  | Ok sol -> (
    match Engine.partition_validate spec sol with
    | Error e -> Alcotest.failf "validate: %s" (Engine_error.to_string e)
    | Ok v ->
      Alcotest.(check bool) "simulation matches the model exactly" true
        v.Pipeline.pv_matches;
      Alcotest.(check string) "simulated max = gather words"
        (Bigint.to_string sol.Partition_solve.gather_words)
        (Bigint.to_string v.Pipeline.pv_max_words);
      Alcotest.(check bool) "ragged nest: several shape groups" true
        (List.length v.Pipeline.pv_groups >= 2);
      Alcotest.(check int) "every processor simulated" 6
        (List.fold_left (fun a g -> a + g.Pipeline.pg_procs) 0 v.Pipeline.pv_groups))

let () =
  Alcotest.run "engine"
    [
      ( "memo",
        [
          Alcotest.test_case "second request hits" `Quick test_second_request_hits_cache;
          Alcotest.test_case "names canonicalized" `Quick test_cache_ignores_names;
          Alcotest.test_case "m distinguishes" `Quick test_cache_distinguishes_m;
          Alcotest.test_case "stages agree with lib" `Quick test_memoized_stages_agree;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_sweep_matches_sequential;
          Alcotest.test_case "warm cache races" `Quick test_parallel_sweep_with_warm_cache;
          Alcotest.test_case "deterministic order" `Quick test_sweep_order_is_input_order;
        ] );
      ( "pool",
        [
          Alcotest.test_case "order and values" `Quick test_pool_map_order_and_values;
          Alcotest.test_case "exception propagation" `Quick test_pool_propagates_exceptions;
          Alcotest.test_case "validate_jobs" `Quick test_pool_validate_jobs;
          Alcotest.test_case "PROJTILE_JOBS" `Quick test_pool_jobs_env_override;
          Alcotest.test_case "staged values and order" `Quick
            test_pool_staged_values_and_order;
          Alcotest.test_case "staged continuation exception" `Quick
            test_pool_staged_continuation_exception;
          Alcotest.test_case "worker instrumentation" `Quick
            test_pool_worker_instrumentation;
          Alcotest.test_case "warm basis hits on repeat shapes" `Quick
            test_warm_basis_hits_on_repeat_shapes;
        ] );
      ( "memo-sharded",
        [
          Alcotest.test_case "domain stress" `Quick test_memo_sharded_domain_stress;
          QCheck_alcotest.to_alcotest prop_memo_sharding_invisible;
        ] );
      ( "partition",
        [
          Alcotest.test_case "checked path and typed errors" `Quick test_partition_checked;
          Alcotest.test_case "Pool validation = model" `Quick test_partition_validate;
        ] );
      ( "cache-persistence",
        [
          Alcotest.test_case "snapshot round-trip" `Quick test_cache_snapshot_roundtrip;
          Alcotest.test_case "corruption tolerated" `Quick
            test_cache_restore_tolerates_corruption;
        ] );
      ( "report",
        [
          Alcotest.test_case "fields and sims" `Quick test_report_fields_and_sims;
          Alcotest.test_case "json shape" `Quick test_report_json_shape;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy_report;
        ] );
    ]
