(* End-to-end smoke tests of the installed CLI binary: every subcommand
   runs, exits 0 on valid input, exits nonzero with a diagnostic on
   invalid input. *)

let cli = "../bin/tilings.exe"

let run args =
  let cmd = Printf.sprintf "%s %s 2>&1" cli args in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 512 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, Buffer.contents buf)

let check_ok name args fragments =
  let code, out = run args in
  if code <> 0 then Alcotest.failf "%s: exit %d\n%s" name code out;
  List.iter
    (fun f ->
      if not (Astring.String.is_infix ~affix:f out) then
        Alcotest.failf "%s: output missing %S\n%s" name f out)
    fragments

let check_fails name args fragment =
  let code, out = run args in
  if code = 0 then Alcotest.failf "%s: expected failure, got success\n%s" name out;
  if not (Astring.String.is_infix ~affix:fragment out) then
    Alcotest.failf "%s: diagnostic missing %S\n%s" name fragment out

let test_presets () = check_ok "presets" "presets" [ "matmul"; "nbody"; "mttkrp" ]

let test_analyze () =
  check_ok "analyze preset" "analyze -p matvec -m 1024" [ "lower bound"; "tile" ];
  check_ok "analyze dsl"
    "analyze -k 'i = 64, j = 64, k = 4 : C[i,k] += A[i,j] * B[j,k]' -m 512"
    [ "lower bound"; "attainment" ]

let test_lower_bound () =
  check_ok "lower-bound" "lower-bound -p matmul -m 4096" [ "tile-size cap"; "witness" ]

let test_tile () =
  check_ok "tile" "tile -p matmul -m 4096" [ "LP (5.1)"; "lambda"; "shared cache" ]

let test_closed_form () =
  check_ok "closed-form" "closed-form -p nbody" [ "min("; "M^f" ]

(* 6 arrays x 20 loops: past the plan/closed-form enumeration budget *)
let big_dsl =
  "'a=2,b=2,c=2,d=2,e=2,f=2,g=2,h=2,i=2,j=2,k=2,l=2,m=2,n=2,o=2,p=2,q=2,r=2,s=2,t=2 : \
   Z[b,c,d,e,f,g,h,i,j,k,l,m,n,o,p,q,r,s,t] += A[a,c,d,e,f,g,h,i,j,k,l,m,n,o,p,q,r,s,t] * \
   B[a,b,d,e,f,g,h,i,j,k,l,m,n,o,p,q,r,s,t] * C[a,b,c,e,f,g,h,i,j,k,l,m,n,o,p,q,r,s,t] * \
   D[a,b,c,d,f,g,h,i,j,k,l,m,n,o,p,q,r,s,t] * E[a,b,c,d,e,g,h,i,j,k,l,m,n,o,p,q,r,s,t]'"

let test_compile () =
  check_ok "compile preset" "compile -p matmul"
    [ "{\"v\":1,\"plans\":["; "\"shape\":\"d=3;"; "\"levels\":[" ];
  check_ok "compile dsl" "compile -k 'i = 16, j = 16 : A[i] += B[i,j]'"
    [ "\"shape\":\"d=2;" ];
  let tmp = Filename.temp_file "cli_plans" ".json" in
  check_ok "compile all to file" (Printf.sprintf "compile --all -o %s" tmp) [ "plans ->" ];
  let ic = open_in tmp in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  if not (Astring.String.is_prefix ~affix:"{\"v\":1,\"plans\":[" contents) then
    Alcotest.failf "plan bundle envelope wrong: %s" (String.sub contents 0 40);
  check_fails "compile all + preset" "compile --all -p matmul" "alone";
  (* the oversized refusal carries the typed code and its own exit status *)
  let code, out = run (Printf.sprintf "compile -k %s" big_dsl) in
  if code <> 11 then Alcotest.failf "oversized compile: expected exit 11, got %d\n%s" code out;
  if not (Astring.String.is_infix ~affix:"shape_too_large" out) then
    Alcotest.failf "oversized compile: missing typed code\n%s" out

let test_closed_form_too_large () =
  (* the one-shot closed-form path routes the same refusal through the
     typed error map instead of a generic usage error *)
  let code, out = run (Printf.sprintf "closed-form -k %s" big_dsl) in
  if code <> 11 then Alcotest.failf "closed-form: expected exit 11, got %d\n%s" code out;
  if not (Astring.String.is_infix ~affix:"shape_too_large" out) then
    Alcotest.failf "closed-form: missing typed code\n%s" out

let test_regions () = check_ok "regions" "regions -p nbody" [ "is optimal where"; "witness" ]

let test_simulate () =
  check_ok "simulate" "simulate -p matvec -m 512 --schedule optimal --policy lru"
    [ "words moved"; "ratio" ];
  check_ok "simulate opt policy" "simulate -p outer_product -m 256 --policy opt"
    [ "OPT"; "words moved" ]

let test_hierarchy () =
  check_ok "hierarchy" "hierarchy -p matvec --levels 128,1024"
    [ "level 1"; "level 2"; "traffic L1"; "memory" ]

let test_partition () =
  check_ok "partition" "partition -k matmul -p 64 -M 4096"
    [
      {|{"v":2,"partition":{|};
      {|"grid":[4,4,4]|};
      {|"regime":"memory_independent"|};
      {|"gather_words":"768"|};
    ];
  (* the Pool-simulated schedule agrees with the model exactly *)
  check_ok "partition --validate" "partition -k matmul -p 64 -M 4096 --validate"
    [ {|"validation":{"matches":true,"simulated_words":"768"|} ];
  (* a constrained memory budget flips the regime *)
  check_ok "partition memory-dependent" "partition -k matmul -p 64 -M 24"
    [ {|"regime":"memory_dependent"|} ];
  check_ok "partition alpha-beta" "partition -k matmul -p 64 -M 4096 --net 100,1"
    [ {|"net":{"alpha":"100","beta":"1"}|}; {|"messages":6|} ];
  (* typed failures carry their own exit codes *)
  let code, out = run "partition -k 'i = 7, j = 7 : A[i] += B[i,j]' -p 11 -M 64" in
  if code <> 12 then Alcotest.failf "unfactorable p: expected exit 12, got %d\n%s" code out;
  if not (Astring.String.is_infix ~affix:"unfactorable_p" out) then
    Alcotest.failf "unfactorable p: missing typed code\n%s" out;
  let code, out = run "partition -k matmul -p 8 --net nonsense" in
  if code <> 13 then Alcotest.failf "bad net: expected exit 13, got %d\n%s" code out;
  if not (Astring.String.is_infix ~affix:"network_model_invalid" out) then
    Alcotest.failf "bad net: missing typed code\n%s" out

let test_codegen () =
  check_ok "codegen c" "codegen -p nbody -m 256 --lang c" [ "void nbody_tiled"; "for (int" ];
  check_ok "codegen ocaml" "codegen -p nbody -m 256 --lang ocaml" [ "let nbody_tiled"; "done" ];
  check_ok "codegen untiled" "codegen -p nbody --untiled" [ "void nbody(" ]

let test_sweep () =
  check_ok "sweep json" "sweep -p matvec -m 64,256"
    [ "{\"v\":1,\"reports\":["; "\"kernel\""; "\"lower_bound_words\"" ]

let test_metrics () =
  (* sweep --metrics wraps the JSON and embeds the obs snapshot *)
  check_ok "sweep metrics" "sweep -p matvec -m 64,256 --schedules optimal --metrics"
    [ "\"reports\""; "\"obs\""; "\"counters\""; "simplex.pivots"; "memo."; "cachesim.L1.hits" ];
  (* text-mode subcommands append the human-readable table *)
  check_ok "analyze metrics" "analyze -p matvec -m 1024 --metrics"
    [ "counters:"; "timers:"; "simplex.pivots"; "pipeline.analysis" ];
  (* without the flag, the versioned envelope carries no obs section *)
  let code, out = run "sweep -p matvec -m 64" in
  if code <> 0 then Alcotest.failf "sweep: exit %d\n%s" code out;
  if Astring.String.is_infix ~affix:"\"obs\"" out then
    Alcotest.failf "sweep without --metrics must not emit obs\n%s" out

let test_profile () =
  (* preset shorthands and cmdliner's prefix matching: "mm" -> matmul,
     "--m" -> --mem (profile deliberately has no --metrics) *)
  check_ok "profile shorthand" "profile mm --m 4096 --iters 5"
    [ "profile: matmul"; "iteration"; "p50"; "p90"; "p99"; "timers:" ];
  check_ok "profile prefix" "profile matv --iters 3" [ "profile: matvec" ];
  check_ok "profile dsl" "profile 'i = 16, j = 16 : A[i] += B[i,j]' --iters 2"
    [ "iteration" ];
  check_ok "profile cold with sim"
    "profile outer_product --m 256 --iters 3 --cold --schedule optimal"
    [ "cold: caches reset"; "with simulation"; "executor.run" ];
  check_fails "profile unknown" "profile nosuch" "unknown kernel";
  check_fails "profile ambiguous" "profile mat" "ambiguous kernel";
  check_fails "profile bad iters" "profile mm --iters 0" "at least one iteration"

let test_trace_flag () =
  let tmp = Filename.temp_file "cli_trace" ".json" in
  check_ok "sweep with trace"
    (Printf.sprintf "sweep -p matvec -m 64,128 --jobs 2 --trace %s" tmp)
    [ "\"kernel\""; "trace:"; "spans" ];
  let ic = open_in tmp in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  List.iter
    (fun f ->
      if not (Astring.String.is_infix ~affix:f contents) then
        Alcotest.failf "trace file missing %S" f)
    [ "\"traceEvents\""; "\"ph\":\"X\""; "thread_name"; "pipeline.analysis" ];
  (* failed invocations must not leave a trace file behind *)
  let tmp2 = Filename.temp_file "cli_trace2" ".json" in
  Sys.remove tmp2;
  check_fails "trace on failure" (Printf.sprintf "analyze --trace %s" tmp2) "kernel is required";
  if Sys.file_exists tmp2 then begin
    Sys.remove tmp2;
    Alcotest.fail "trace file written despite command failure"
  end

let test_overflow_guards () =
  (* 2^21-cubed bounds: exact guard must reject simulation with the true
     iteration count rather than wrap negative and accept *)
  check_fails "simulate overflow"
    "simulate -k 'i = 2097152, j = 2097152, k = 2097152 : C[i,j,k] += A[i,j]' -m 1024"
    "9223372036854775808";
  (* analysis-only paths still work at these bounds, and partition
     reports the exact (past-max_int) communication volume *)
  check_ok "partition overflow"
    "partition -k 'i = 2097152, j = 2097152, k = 2097152 : C[i,j,k] += A[i,j]' --procs 1"
    [ {|"gather_words":"9223376434901286912"|} ]

(* Pipe [lines] into `tilings serve`, return the response lines. The
   requests (a few KB) fit in the pipe buffer, so writing everything
   before reading cannot deadlock. *)
let run_serve args lines =
  let cmd = Printf.sprintf "%s serve %s 2>/dev/null" cli args in
  let ic, oc = Unix.open_process cmd in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let out = ref [] in
  (try
     while true do
       out := input_line ic :: !out
     done
   with End_of_file -> ());
  ignore (Unix.close_process (ic, oc));
  List.rev !out

let test_serve_pipe () =
  (* one daemon, >=100 mixed preset requests, responses in arrival order *)
  let presets = [| ("mm", 64); ("conv", 128); ("nbody", 256); ("matvec", 64) |] in
  let n = 120 in
  let reqs =
    List.init n (fun i ->
      let k, m = presets.(i mod Array.length presets) in
      Printf.sprintf "{\"id\":\"r%d\",\"kernel\":%S,\"m\":%d}" i k m)
  in
  let out = run_serve "" reqs in
  if List.length out <> n then
    Alcotest.failf "serve: %d requests, %d responses" n (List.length out);
  List.iteri
    (fun i line ->
      let id = Printf.sprintf "\"id\":\"r%d\"" i in
      if not (Astring.String.is_infix ~affix:id line) then
        Alcotest.failf "response %d out of arrival order: %s" i line;
      if not (Astring.String.is_infix ~affix:"\"ok\":true" line) then
        Alcotest.failf "response %d not ok: %s" i line)
    out

let test_serve_matches_sweep () =
  (* the daemon's report is byte-identical to the one-shot CLI's *)
  let code, sweep = run "sweep -p matmul -m 512" in
  if code <> 0 then Alcotest.failf "sweep: exit %d\n%s" code sweep;
  let sweep = String.trim sweep in
  let pre = "{\"v\":1,\"reports\":[" in
  if not (Astring.String.is_prefix ~affix:pre sweep) then
    Alcotest.failf "sweep envelope changed: %s" sweep;
  let report =
    String.sub sweep (String.length pre) (String.length sweep - String.length pre - 2)
  in
  match run_serve "" [ "{\"id\":\"a\",\"op\":\"analyze\",\"kernel\":\"matmul\",\"m\":512}" ] with
  | [ line ] ->
    let expected =
      Printf.sprintf "{\"v\":1,\"id\":\"a\",\"ok\":true,\"report\":%s}" report
    in
    Alcotest.(check string) "byte-identical report" expected line
  | out -> Alcotest.failf "expected 1 response, got %d" (List.length out)

let test_serve_matches_partition () =
  (* the daemon's partition payload is byte-identical to the one-shot
     CLI's: both embed Partition_solve.to_json verbatim *)
  let code, cli_out = run "partition -k matmul -p 64 -M 4096" in
  if code <> 0 then Alcotest.failf "partition: exit %d\n%s" code cli_out;
  let cli_out = String.trim cli_out in
  let pre = {|{"v":2,"partition":|} in
  if not (Astring.String.is_prefix ~affix:pre cli_out) then
    Alcotest.failf "partition envelope changed: %s" cli_out;
  let payload =
    String.sub cli_out (String.length pre) (String.length cli_out - String.length pre - 1)
  in
  match
    run_serve "" [ {|{"v":2,"id":"p","op":"partition","kernel":"matmul","p":64,"m":4096}|} ]
  with
  | [ line ] ->
    let expected =
      Printf.sprintf {|{"v":2,"id":"p","ok":true,"partition":%s}|} payload
    in
    Alcotest.(check string) "byte-identical partition payload" expected line
  | out -> Alcotest.failf "expected 1 response, got %d" (List.length out)

let read_lines file =
  let ic = open_in file in
  let out = ref [] in
  (try
     while true do
       out := input_line ic :: !out
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out

let test_serve_golden () =
  let out = run_serve "" (read_lines "golden/serve_requests.ndjson") in
  Alcotest.(check (list string))
    "transcript byte-identical" (read_lines "golden/serve_transcript.ndjson") out

let test_serve_plans () =
  (* plans harvested by `compile` preload another daemon; plan-served
     responses must be byte-identical to the LP-served golden transcript
     (the repeat-shape acceptance gate, end to end) *)
  let tmp = Filename.temp_file "cli_plans" ".json" in
  let code, out = run (Printf.sprintf "compile --all -o %s" tmp) in
  if code <> 0 then Alcotest.failf "compile --all: exit %d\n%s" code out;
  let preloaded =
    run_serve (Printf.sprintf "--plans %s" tmp) (read_lines "golden/serve_requests.ndjson")
  in
  Sys.remove tmp;
  Alcotest.(check (list string)) "plans-preloaded transcript byte-identical"
    (read_lines "golden/serve_transcript.ndjson")
    preloaded;
  check_fails "missing plans file" "serve --plans /nonexistent/plans.json" "--plans"

let test_serve_metrics () =
  (* serve --metrics prints the serve.* section to stderr after drain *)
  let cmd = Printf.sprintf "echo '%s' | %s serve --metrics 2>&1 >/dev/null"
      "{\"kernel\":\"matvec\",\"m\":64}" cli
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 512 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  let err = Buffer.contents buf in
  List.iter
    (fun f ->
      if not (Astring.String.is_infix ~affix:f err) then
        Alcotest.failf "serve --metrics stderr missing %S\n%s" f err)
    [ "serve.requests"; "serve.responses"; "serve.batch"; "serve.pool_jobs"; "serve: pool:" ]

let test_serve_telemetry_and_top () =
  (* end-to-end: serve writes a telemetry trail and a request log; the
     log ids match the response ids byte-for-byte; `top --once` renders
     a frame from the trail *)
  let trail = Filename.temp_file "cli_telemetry" ".jsonl" in
  let log = Filename.temp_file "cli_servelog" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove trail; Sys.remove log) @@ fun () ->
  let out =
    run_serve
      (Printf.sprintf "--telemetry %s --telemetry-interval 0.05 --log %s --slow-ms 0" trail log)
      [ {|{"id":"t0","kernel":"matvec","m":64}|}; {|{"kernel":"mm","m":64}|} ]
  in
  Alcotest.(check int) "two responses" 2 (List.length out);
  let snaps = List.filter (fun l -> l <> "") (read_lines trail) in
  Alcotest.(check bool)
    (Printf.sprintf "at least two telemetry snapshots (got %d)" (List.length snaps))
    true (List.length snaps >= 2);
  List.iter
    (fun l ->
      match Jsonlite.parse l with
      | Error msg -> Alcotest.failf "telemetry line unparseable (%s): %s" msg l
      | Ok j ->
        Alcotest.(check bool) "ts present" true (Jsonlite.num_member "ts" j <> None);
        Alcotest.(check bool) "obs present" true (Jsonlite.member "obs" j <> None))
    snaps;
  (* request-correlated log: ids match responses byte-for-byte *)
  let log_ids =
    List.filter_map
      (fun l ->
        match Jsonlite.parse l with
        | Ok j when Jsonlite.str_member "event" j = Some "serve.request" ->
          Jsonlite.str_member "id" j
        | _ -> None)
      (read_lines log)
  in
  let resp_ids =
    List.filter_map (fun l -> Jsonlite.str_member "id" (Result.get_ok (Jsonlite.parse l))) out
  in
  Alcotest.(check (list string)) "log ids = response ids" resp_ids log_ids;
  Alcotest.(check bool) "minted id for the id-less request" true
    (match resp_ids with [ _; m ] -> Astring.String.is_prefix ~affix:"srv-" m | _ -> false);
  (* slow log fired (threshold 0) with per-stage wall times *)
  Alcotest.(check bool) "slow-request log with stage deltas" true
    (List.exists
       (fun l -> Astring.String.is_infix ~affix:"serve.slow_request" l
                 && Astring.String.is_infix ~affix:"analysis_ms" l)
       (read_lines log));
  (* the dashboard reads the same trail *)
  check_ok "top --once" (Printf.sprintf "top %s --once" trail)
    [ "telemetry"; "serve.requests"; "serve.queue_depth" ];
  check_fails "top on a missing trail" "top /nonexistent/trail.jsonl --once" "cannot read"

let test_profile_telemetry () =
  let trail = Filename.temp_file "cli_prof" ".om" in
  Fun.protect ~finally:(fun () -> Sys.remove trail) @@ fun () ->
  check_ok "profile --telemetry"
    (Printf.sprintf "profile matvec --iters 2 --telemetry %s" trail)
    [ "profile: matvec" ];
  let text = String.concat "\n" (read_lines trail) in
  Alcotest.(check bool) "OpenMetrics exposition written" true
    (Astring.String.is_infix ~affix:"# TYPE tilings_" text);
  Alcotest.(check bool) "EOF terminator" true (Astring.String.is_suffix ~affix:"# EOF" text)

(* ---- multi-client daemon helpers --------------------------------- *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* Start `tilings serve <args>` in the background with stderr captured
   to a file, run [f ~err], then SIGTERM and reap. The daemon drains and
   exits 0 on SIGTERM; any other exit is a test failure. *)
let with_daemon args f =
  let err = Filename.temp_file "cli_daemon" ".err" in
  let err_fd = Unix.openfile err [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process cli
      (Array.of_list (cli :: "serve" :: args))
      devnull Unix.stdout err_fd
  in
  Unix.close err_fd;
  Unix.close devnull;
  let result =
    try Ok (f ~err) with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  let stderr_text () = String.concat "\n" (read_lines err) in
  let exit_check () =
    match status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED c -> Alcotest.failf "daemon exited %d\n%s" c (stderr_text ())
    | _ -> Alcotest.failf "daemon killed abnormally\n%s" (stderr_text ())
  in
  Fun.protect ~finally:(fun () -> Sys.remove err) @@ fun () ->
  match result with
  | Ok v ->
    exit_check ();
    v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let wait_for ?(timeout = 10.0) pred what =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match pred () with
    | Some v -> v
    | None ->
      if Unix.gettimeofday () -. t0 > timeout then
        Alcotest.failf "timed out waiting for %s" what;
      Unix.sleepf 0.02;
      go ()
  in
  go ()

let send_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  if Unix.write fd b 0 (Bytes.length b) <> Bytes.length b then
    Alcotest.fail "short write to daemon"

(* Half-close the sending side, read the connection to EOF, split into
   lines. The daemon closes the connection after answering everything it
   read, so EOF here means the transcript is complete. *)
let finish_conn fd =
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
  in
  go ();
  Unix.close fd;
  List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))

let test_serve_multi_client () =
  (* two clients interleaved on one Unix-socket daemon: each connection
     sees its own responses in its own arrival order, minted ids restart
     at srv-1 per connection, and every transcript is byte-identical to
     the one-shot pipe transport fed the same lines *)
  let dir = temp_dir "cli_sock" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock = Filename.concat dir "d.sock" in
  with_daemon [ "--socket"; sock ] @@ fun ~err:_ ->
  wait_for (fun () -> if Sys.file_exists sock then Some () else None) "socket file";
  let a_lines =
    [
      {|{"id":"a0","kernel":"matmul","m":512}|};
      {|{"kernel":"matvec","m":64}|};
      {|{"id":"a2","kernel":"nbody","m":256}|};
    ]
  and b_lines =
    [ {|{"kernel":"mm","m":64}|}; {|{"id":"b1","kernel":"conv","m":128}|} ]
  in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    fd
  in
  let a = connect () and b = connect () in
  (* interleave the writes across the two connections *)
  send_line a (List.nth a_lines 0);
  send_line b (List.nth b_lines 0);
  send_line a (List.nth a_lines 1);
  send_line b (List.nth b_lines 1);
  send_line a (List.nth a_lines 2);
  let a_out = finish_conn a in
  let b_out = finish_conn b in
  Alcotest.(check (list string)) "conn A byte-identical to one-shot"
    (run_serve "" a_lines) a_out;
  Alcotest.(check (list string)) "conn B byte-identical to one-shot"
    (run_serve "" b_lines) b_out

let test_serve_tcp () =
  (* --tcp 0 binds an ephemeral loopback port and announces it on
     stderr; a TCP client gets the same bytes as the pipe transport *)
  with_daemon [ "--tcp"; "0" ] @@ fun ~err ->
  let port =
    wait_for
      (fun () ->
        List.find_map
          (fun l ->
            match Astring.String.cut ~sep:"listening on 127.0.0.1:" l with
            | Some (_, p) -> int_of_string_opt (String.trim p)
            | None -> None)
          (read_lines err))
      "tcp port announcement"
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = {|{"id":"t0","kernel":"matvec","m":64}|} in
  send_line fd req;
  Alcotest.(check (list string)) "tcp response = one-shot" (run_serve "" [ req ])
    (finish_conn fd)

let test_serve_cache_dir () =
  (* cold boot fills the caches and snapshots them on drain; a warm boot
     from the same dir answers byte-identically and replays with zero LP
     misses; a corrupt snapshot degrades to a cold boot, not a crash *)
  let dir = temp_dir "cli_cache" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let reqs =
    [
      {|{"id":"c0","kernel":"matmul","m":1024}|};
      {|{"id":"c1","kernel":"nbody","m":256}|};
      {|{"id":"c2","kernel":"matvec","m":64}|};
    ]
  in
  let args = Printf.sprintf "--cache-dir %s" dir in
  let cold = run_serve args reqs in
  Alcotest.(check int) "three responses" 3 (List.length cold);
  Alcotest.(check bool) "snapshot file written" true
    (Sys.file_exists (Filename.concat dir "tilings_caches.json"));
  let warm = run_serve args reqs in
  Alcotest.(check (list string)) "warm-boot transcript byte-identical" cold warm;
  (* stderr view of another warm boot: the restore is announced and the
     replay takes zero LP misses *)
  let cmd = Printf.sprintf "%s serve %s --metrics 2>&1 >/dev/null" cli args in
  let ic, oc = Unix.open_process cmd in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    reqs;
  close_out oc;
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  ignore (Unix.close_process (ic, oc));
  let stderr_lines = List.rev !lines in
  Alcotest.(check bool) "restore announced" true
    (List.exists
       (fun l -> Astring.String.is_infix ~affix:"entries restored" l)
       stderr_lines);
  (match
     List.find_opt
       (fun l -> Astring.String.is_infix ~affix:"memo.lp.misses" l)
       stderr_lines
   with
  | None -> Alcotest.fail "memo.lp.misses missing from --metrics output"
  | Some l -> (
    match List.rev (List.filter (fun t -> t <> "") (String.split_on_char ' ' l)) with
    | v :: _ -> Alcotest.(check string) "zero LP misses on warm replay" "0" v
    | [] -> Alcotest.fail "unparseable memo.lp.misses line"));
  let oc2 = open_out (Filename.concat dir "tilings_caches.json") in
  output_string oc2 "garbage, not a snapshot\n";
  close_out oc2;
  Alcotest.(check (list string)) "corrupt snapshot -> cold boot, same answers" cold
    (run_serve args reqs)

let test_error_paths () =
  check_fails "no kernel" "analyze" "kernel is required";
  check_fails "both sources" "analyze -p matmul -k 'i = 2 : A[i] = B[i]'" "not both";
  check_fails "unknown preset" "analyze -p nosuch" "unknown preset";
  check_fails "bad dsl" "analyze -k 'garbage'" "parse error";
  check_fails "bad dsl position" "analyze -k 'garbage'" "line 1";
  check_fails "bad cache" "analyze -p matmul -m 1" "cache";
  check_fails "bad levels" "hierarchy -p matmul --levels 512,256" "increasing"

let () =
  Alcotest.run "cli"
    [
      ( "smoke",
        [
          Alcotest.test_case "presets" `Quick test_presets;
          Alcotest.test_case "analyze" `Quick test_analyze;
          Alcotest.test_case "lower-bound" `Quick test_lower_bound;
          Alcotest.test_case "tile" `Quick test_tile;
          Alcotest.test_case "closed-form" `Quick test_closed_form;
          Alcotest.test_case "closed-form too large" `Quick test_closed_form_too_large;
          Alcotest.test_case "compile" `Quick test_compile;
          Alcotest.test_case "regions" `Quick test_regions;
          Alcotest.test_case "simulate" `Quick test_simulate;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy;
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "codegen" `Quick test_codegen;
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "profile" `Quick test_profile;
          Alcotest.test_case "trace flag" `Quick test_trace_flag;
          Alcotest.test_case "overflow guards" `Quick test_overflow_guards;
          Alcotest.test_case "error paths" `Quick test_error_paths;
        ] );
      ( "serve",
        [
          Alcotest.test_case "pipe 120 requests" `Quick test_serve_pipe;
          Alcotest.test_case "matches sweep" `Quick test_serve_matches_sweep;
          Alcotest.test_case "matches partition" `Quick test_serve_matches_partition;
          Alcotest.test_case "golden transcript" `Quick test_serve_golden;
          Alcotest.test_case "plans preloaded" `Quick test_serve_plans;
          Alcotest.test_case "metrics" `Quick test_serve_metrics;
          Alcotest.test_case "telemetry, log and top" `Quick test_serve_telemetry_and_top;
          Alcotest.test_case "profile telemetry" `Quick test_profile_telemetry;
          Alcotest.test_case "multi-client unix socket" `Quick test_serve_multi_client;
          Alcotest.test_case "tcp transport" `Quick test_serve_tcp;
          Alcotest.test_case "cache-dir warm boot" `Quick test_serve_cache_dir;
        ] );
    ]
