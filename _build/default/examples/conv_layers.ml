(* Pointwise-convolution layer sweep — the paper's machine-learning
   motivation (Sections 1 and 6.2).

   1x1 ("pointwise") convolutions appear throughout depthwise-separable
   architectures (MobileNet-style). Their channel counts are often small,
   so the classical square tiling is infeasible and the classical lower
   bound is wrong; the arbitrary-bounds machinery handles every layer
   uniformly. For each layer of a MobileNet-like stack we print the lower
   bound, the optimal tile, and the simulated traffic of (a) our tiling
   and (b) the clamped classical tiling.

     dune exec examples/conv_layers.exe
*)

type layer = { name : string; b : int; c : int; k : int; w : int; h : int }

(* Shapes follow the pointwise (1x1) convolutions of a MobileNet-v1-style
   network, scaled down so the cache simulation stays fast. *)
let layers =
  [
    { name = "pw1"; b = 4; c = 8; k = 16; w = 28; h = 28 };
    { name = "pw2"; b = 4; c = 16; k = 32; w = 14; h = 14 };
    { name = "pw3"; b = 4; c = 32; k = 64; w = 7; h = 7 };
    { name = "pw4-narrow"; b = 4; c = 4; k = 128; w = 7; h = 7 };
    { name = "pw5-1x1 image"; b = 32; c = 64; k = 64; w = 1; h = 1 };
  ]

let () =
  let m = 2048 in
  Format.printf "Pointwise convolution layers, cache M = %d words@." m;
  Format.printf "%-14s %12s %12s %12s %12s %8s@." "layer" "lower bound" "ours(LRU)"
    "classic(LRU)" "untiled" "ours/LB";
  List.iter
    (fun l ->
      let spec = Kernels.pointwise_conv ~b:l.b ~c:l.c ~k:l.k ~w:l.w ~h:l.h in
      let bound = Lower_bound.communication spec ~m in
      let ours = Tiling.optimal_shared spec ~m in
      let classic = Schedules.classic_tile spec ~m in
      let run sched = (Executor.run spec ~schedule:sched ~capacity:m).Executor.words_moved in
      let w_ours = run (Schedules.Tiled ours) in
      let w_classic = run (Schedules.Tiled classic) in
      let w_naive = run Schedules.Untiled in
      Format.printf "%-14s %12.0f %12d %12d %12d %8.2f@." l.name bound.Lower_bound.words
        w_ours w_classic w_naive
        (float_of_int w_ours /. bound.Lower_bound.words))
    layers;
  Format.printf
    "@.'classic' clamps the square %s-style tile to the loop bounds; with small channel@."
    "sqrt(M/3)";
  Format.printf
    "counts it wastes most of the cache, which is exactly the gap the paper closes.@."
