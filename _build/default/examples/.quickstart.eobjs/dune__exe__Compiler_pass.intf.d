examples/compiler_pass.mli:
