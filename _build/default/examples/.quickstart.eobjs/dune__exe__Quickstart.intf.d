examples/quickstart.mli:
