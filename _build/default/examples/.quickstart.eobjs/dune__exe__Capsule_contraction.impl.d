examples/capsule_contraction.ml: Analyze Array Closed_form Executor Format List Lower_bound Parser Schedules Spec String Tiling
