examples/conv_layers.mli:
