examples/quickstart.ml: Analyze Closed_form Executor Format Lower_bound Parser Schedules Tiling
