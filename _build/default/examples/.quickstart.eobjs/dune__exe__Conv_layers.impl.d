examples/conv_layers.ml: Executor Format Kernels List Lower_bound Schedules Tiling
