examples/nbody.ml: Executor Format Kernels List Lower_bound Schedules Tiling
