examples/nbody.mli:
