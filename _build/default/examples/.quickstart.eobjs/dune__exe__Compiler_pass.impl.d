examples/compiler_pass.ml: Array Codegen Filename Format List Lower_bound Parser Sys Tiling Unix
