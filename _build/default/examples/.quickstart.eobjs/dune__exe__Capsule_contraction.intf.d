examples/capsule_contraction.mli:
