(* n-body pairwise interactions (Section 6.3 of the paper).

   A two-loop nest where every particle interacts with every other:
   A1[x1] += f(A2[x1], A3[x2]). The optimal tile is
   min(M^2, L1*M, L2*M, L1*L2) points; its shape changes regime as the
   particle counts shrink relative to the cache. This example walks the
   four regimes, printing the analytic tile, its simulated traffic, and
   the Section-6.3 caveat case where everything fits in cache.

     dune exec examples/nbody.exe
*)

let () =
  let m = 256 in
  Format.printf "n-body pairwise interactions, cache M = %d words@.@." m;
  let cases =
    [
      ("both large (M^2 regime)", 4096, 4096);
      ("L1 small (L1*M regime)", 32, 4096);
      ("L2 small (L2*M regime)", 4096, 32);
      ("both small (L1*L2 regime: all fits)", 32, 32);
    ]
  in
  Format.printf "%-38s %12s %14s %12s %10s@." "case" "tile" "tile volume" "LB words"
    "LRU words";
  List.iter
    (fun (label, l1, l2) ->
      let spec = Kernels.nbody ~l1 ~l2 in
      let bound = Lower_bound.communication spec ~m in
      let tile = Tiling.optimal_shared spec ~m in
      let run = Executor.run spec ~schedule:(Schedules.Tiled tile) ~capacity:m in
      Format.printf "%-38s %12s %14d %12.0f %10d@." label
        (Format.asprintf "%a" (Tiling.pp spec) tile)
        (Tiling.volume tile) bound.Lower_bound.words run.Executor.words_moved)
    cases;
  Format.printf
    "@.Note (Section 6.3): in the last regime the whole problem fits in cache, and the@.";
  Format.printf
    "model's M-word-per-tile charge makes the printed bound conservative; the measured@.";
  Format.printf "traffic is just the compulsory reads and writes.@."
