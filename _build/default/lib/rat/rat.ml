(* Exact rationals in canonical form: den > 0, gcd(|num|, den) = 1,
   zero represented as 0/1. *)

module B = Bigint

type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero
  else begin
    let num, den = if B.is_negative den then (B.neg num, B.neg den) else (num, den) in
    if B.is_zero num then { num = B.zero; den = B.one }
    else begin
      let g = B.gcd num den in
      if B.is_one g then { num; den } else { num = B.div num g; den = B.div den g }
    end
  end

let of_bigint n = { num = n; den = B.one }
let of_int i = of_bigint (B.of_int i)
let of_ints n d = make (B.of_int n) (B.of_int d)

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let half = of_ints 1 2

let num t = t.num
let den t = t.den
let sign t = B.sign t.num
let is_zero t = B.is_zero t.num
let is_integer t = B.is_one t.den
let to_bigint_opt t = if is_integer t then Some t.num else None

let to_float t = B.to_float t.num /. B.to_float t.den

let to_int_exn t =
  match to_bigint_opt t with
  | Some b -> B.to_int b
  | None -> failwith "Rat.to_int_exn: not an integer"

let equal a b = B.equal a.num b.num && B.equal a.den b.den

let compare a b =
  (* Canonical form has positive denominators, so cross-multiplication
     preserves order. *)
  B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let hash t = Hashtbl.hash (B.hash t.num, B.hash t.den)

let neg t = { t with num = B.neg t.num }
let abs t = { t with num = B.abs t.num }

let inv t =
  if is_zero t then raise Division_by_zero
  else if B.is_negative t.num then { num = B.neg t.den; den = B.neg t.num }
  else { num = t.den; den = t.num }

let add a b =
  if B.equal a.den b.den then make (B.add a.num b.num) a.den
  else make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (B.mul a.num b.num) (B.mul a.den b.den)
let div a b = mul a (inv b)
let mul_int a i = make (B.mul a.num (B.of_int i)) a.den

let pow t n =
  if n >= 0 then { num = B.pow t.num n; den = B.pow t.den n }
  else inv { num = B.pow t.num (-n); den = B.pow t.den (-n) }

let floor t = fst (B.ediv_rem t.num t.den)

let ceil t =
  let q, r = B.ediv_rem t.num t.den in
  if B.is_zero r then q else B.succ q

let round_nearest t =
  (* Half away from zero: round(|t|) with the sign reapplied. *)
  let a = abs t in
  let q, r = B.ediv_rem a.num a.den in
  let twice_r = B.mul B.two r in
  let m = if B.compare twice_r a.den >= 0 then B.succ q else q in
  if sign t < 0 then B.neg m else m

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Rat.of_float: not finite"
  else if f = 0.0 then zero
  else begin
    let mantissa, exponent = Float.frexp f in
    (* mantissa * 2^53 is an exact integer for finite floats. *)
    let m = Int64.of_float (Float.ldexp mantissa 53) in
    let e = exponent - 53 in
    let n = of_bigint (B.of_string (Int64.to_string m)) in
    if e >= 0 then mul n (of_bigint (B.shift_left B.one e))
    else div n (of_bigint (B.shift_left B.one (-e)))
  end

let rationalize ?(max_den = 1_000_000) f =
  if not (Float.is_finite f) then invalid_arg "Rat.rationalize: not finite"
  else begin
    (* Stern-Brocot / continued-fraction best approximation with bounded
       denominator. *)
    let negative = f < 0.0 in
    let f = Float.abs f in
    let p0 = ref 0 and q0 = ref 1 and p1 = ref 1 and q1 = ref 0 in
    let x = ref f in
    let stop = ref false in
    while not !stop do
      let a = int_of_float (Float.floor !x) in
      let p2 = (a * !p1) + !p0 and q2 = (a * !q1) + !q0 in
      if q2 > max_den || q2 < 0 then stop := true
      else begin
        p0 := !p1;
        q0 := !q1;
        p1 := p2;
        q1 := q2;
        let frac = !x -. Float.of_int a in
        if frac < 1e-12 then stop := true else x := 1.0 /. frac
      end
    done;
    let r = if !q1 = 0 then zero else of_ints !p1 !q1 in
    if negative then neg r else r
  end

let to_string t =
  if is_integer t then B.to_string t.num
  else B.to_string t.num ^ "/" ^ B.to_string t.den

let of_string_opt s =
  match String.index_opt s '/' with
  | Some i ->
    let n = String.sub s 0 i and d = String.sub s (i + 1) (String.length s - i - 1) in
    (match (B.of_string_opt n, B.of_string_opt d) with
    | Some n, Some d when not (B.is_zero d) -> Some (make n d)
    | _ -> None)
  | None -> (
    match String.index_opt s '.' with
    | None -> Option.map of_bigint (B.of_string_opt s)
    | Some i ->
      let int_part = String.sub s 0 i in
      let frac_part = String.sub s (i + 1) (String.length s - i - 1) in
      let valid_frac =
        String.length frac_part > 0 && String.for_all (fun c -> c >= '0' && c <= '9') frac_part
      in
      if not valid_frac then None
      else begin
        let negative = String.length int_part > 0 && int_part.[0] = '-' in
        let int_str = if int_part = "" || int_part = "-" || int_part = "+" then "0" else int_part in
        match B.of_string_opt int_str with
        | None -> None
        | Some ip ->
          let scale = B.pow (B.of_int 10) (String.length frac_part) in
          let fp = B.of_string frac_part in
          let mag = B.add (B.mul (B.abs ip) scale) fp in
          let signed = if negative || B.is_negative ip then B.neg mag else mag in
          Some (make signed scale)
      end)

let of_string s =
  match of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Rat.of_string: %S" s)

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
