(** Exact rational numbers over {!module:Bigint}.

    Values are kept in canonical form: the denominator is strictly positive
    and coprime with the numerator; zero is [0/1]. All operations are exact;
    this is what makes the simplex pivoting in {!module:Simplex} free of the
    tie-breaking errors a floating-point implementation would suffer (the
    paper's case analysis hinges on exact comparisons such as
    [sum s_i = 1]). *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t
val half : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints n d] is [n/d]. @raise Division_by_zero if [d = 0]. *)

val of_float : float -> t
(** Exact dyadic value of a finite float.
    @raise Invalid_argument on NaN or infinities. *)

val rationalize : ?max_den:int -> float -> t
(** Best rational approximation with denominator at most [max_den]
    (default [1_000_000]), via continued fractions. Used to feed float
    [beta = log_M L] values into the exact LP solver. *)

val of_string : string -> t
(** Accepts ["p"], ["p/q"], and decimal literals like ["-3.25"].
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

(** {1 Access} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val to_bigint_opt : t -> Bigint.t option
val to_float : t -> float

val to_int_exn : t -> int
(** @raise Failure if not an integer fitting in [int]. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val mul_int : t -> int -> t
val pow : t -> int -> t
(** Integer exponent; negative exponents invert.
    @raise Division_by_zero on [pow zero n] with [n < 0]. *)

val floor : t -> Bigint.t
val ceil : t -> Bigint.t
val round_nearest : t -> Bigint.t
(** Half-away-from-zero rounding. *)

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Printing} *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
