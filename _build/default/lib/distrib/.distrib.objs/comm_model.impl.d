lib/distrib/comm_model.ml: Array Executor Float Hashtbl Layout List Lower_bound Partition Rat Schedules Spec Tiling
