lib/distrib/comm_model.mli: Spec
