lib/distrib/partition.mli: Spec
