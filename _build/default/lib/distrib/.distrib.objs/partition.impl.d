lib/distrib/partition.ml: Array List Spec
