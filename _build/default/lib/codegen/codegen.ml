type lang = C | OCaml

(* ------------------------------------------------------------------ *)
(* Identifiers                                                        *)
(* ------------------------------------------------------------------ *)

let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b ch
      | _ -> Buffer.add_char b '_')
    name;
  let s = Buffer.contents b in
  if s = "" || match s.[0] with '0' .. '9' -> true | _ -> false then "a" ^ s else s

(* Parameter names: unique, language-appropriate case. *)
let param_names lang spec =
  let n = Spec.num_arrays spec in
  let used = Hashtbl.create 8 in
  Array.init n (fun j ->
    let raw = sanitize spec.Spec.arrays.(j).Spec.aname in
    let base = match lang with C -> raw | OCaml -> String.lowercase_ascii raw in
    let rec fresh cand k =
      if Hashtbl.mem used cand then fresh (Printf.sprintf "%s_%d" base k) (k + 1) else cand
    in
    let name = fresh base 1 in
    Hashtbl.add used name ();
    name)

(* Row-major linearized index expression of array [j] at the loop
   variables, e.g. ((x1) * 8 + x3). *)
let element_index spec j =
  let sup = spec.Spec.arrays.(j).Spec.support in
  let dims = Spec.array_dims spec j in
  let buf = Buffer.create 32 in
  Array.iteri
    (fun k i ->
      if k = 0 then Buffer.add_string buf (sanitize spec.Spec.loops.(i))
      else begin
        let inner = Buffer.contents buf in
        Buffer.clear buf;
        Buffer.add_string buf
          (Printf.sprintf "(%s) * %d + %s" inner dims.(k) (sanitize spec.Spec.loops.(i)))
      end)
    sup;
  if Array.length sup = 0 then "0" else Buffer.contents buf

let element_ref lang spec params j =
  match lang with
  | C -> Printf.sprintf "%s[%s]" params.(j) (element_index spec j)
  | OCaml -> Printf.sprintf "%s.(%s)" params.(j) (element_index spec j)

let default_body spec =
  let n = Spec.num_arrays spec in
  let rhs = String.concat " * " (List.init (n - 1) (fun j -> Printf.sprintf "$%d" (j + 1))) in
  let rhs = if rhs = "" then "$0" else rhs in
  match spec.Spec.arrays.(0).Spec.mode with
  | Spec.Update -> Printf.sprintf "$0 += %s" rhs
  | Spec.Write | Spec.Read -> Printf.sprintf "$0 = %s" rhs

(* Expand $k references; translate C-style "+=" / "*" / "=" assignment
   bodies to OCaml when emitting OCaml. The OCaml rewrite happens on the
   template, before $k expansion, so the integer arithmetic inside
   generated index expressions is untouched. *)
let expand_body lang spec params body =
  let n = Spec.num_arrays spec in
  let substitute body =
    let buf = Buffer.create 64 in
    let len = String.length body in
    let i = ref 0 in
    while !i < len do
      (if body.[!i] = '$' then begin
         let start = !i + 1 in
         let stop = ref start in
         while !stop < len && body.[!stop] >= '0' && body.[!stop] <= '9' do
           incr stop
         done;
         if !stop = start then invalid_arg "Codegen: '$' must be followed by an array index";
         let idx = int_of_string (String.sub body start (!stop - start)) in
         if idx < 0 || idx >= n then
           invalid_arg
             (Printf.sprintf "Codegen: body references $%d but there are %d arrays" idx n);
         Buffer.add_string buf (element_ref lang spec params idx);
         i := !stop
       end
       else begin
         Buffer.add_char buf body.[!i];
         incr i
       end)
    done;
    Buffer.contents buf
  in
  match lang with
  | C -> substitute body ^ ";"
  | OCaml ->
    let float_ops rhs = String.concat "*." (String.split_on_char '*' rhs) in
    let template =
      match String.index_opt body '=' with
      | Some eq when eq > 0 && body.[eq - 1] = '+' ->
        let lhs = String.trim (String.sub body 0 (eq - 1)) in
        let rhs = String.trim (String.sub body (eq + 1) (String.length body - eq - 1)) in
        Printf.sprintf "%s <- %s +. %s" lhs lhs (float_ops rhs)
      | Some eq when eq + 1 < String.length body && body.[eq + 1] <> '=' ->
        let lhs = String.trim (String.sub body 0 eq) in
        let rhs = String.trim (String.sub body (eq + 1) (String.length body - eq - 1)) in
        Printf.sprintf "%s <- %s" lhs (float_ops rhs)
      | _ -> body
    in
    substitute template

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

type emitter = { buf : Buffer.t; mutable depth : int }

let line e fmt =
  Printf.ksprintf
    (fun s ->
      for _ = 1 to e.depth do
        Buffer.add_string e.buf "  "
      done;
      Buffer.add_string e.buf s;
      Buffer.add_char e.buf '\n')
    fmt

let emit_common ?(lang = C) ?body ?function_name spec ~tile_opt =
  (match tile_opt with
  | Some tile -> (
    match Schedules.validate spec (Schedules.Tiled tile) with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Codegen.emit: " ^ msg))
  | None -> ());
  let params = param_names lang spec in
  let body = match body with Some b -> b | None -> default_body spec in
  let stmt = expand_body lang spec params body in
  let d = Spec.num_loops spec in
  let loops = Array.map sanitize spec.Spec.loops in
  let bounds = spec.Spec.bounds in
  let fname =
    match function_name with
    | Some f -> sanitize f
    | None -> sanitize spec.Spec.name ^ match tile_opt with Some _ -> "_tiled" | None -> ""
  in
  let e = { buf = Buffer.create 1024; depth = 0 } in
  (match lang with
  | C ->
    line e "/* %s: %s" fname
      (Format.asprintf "%a" Spec.pp spec |> String.map (fun c -> if c = '\n' then ' ' else c));
    (match tile_opt with
    | Some tile ->
      line e "   tile: %s */"
        (String.concat " x " (Array.to_list (Array.map string_of_int tile)))
    | None -> line e "   untiled */");
    line e "void %s(%s) {" fname
      (String.concat ", " (Array.to_list (Array.map (fun p -> "double *" ^ p) params)));
    e.depth <- 1;
    (match tile_opt with
    | Some tile ->
      Array.iteri
        (fun i x ->
          line e "for (int %s_0 = 0; %s_0 < %d; %s_0 += %d)" x x bounds.(i) x tile.(i);
          e.depth <- e.depth + 1)
        loops;
      Array.iteri
        (fun i x ->
          line e "for (int %s = %s_0; %s < (%s_0 + %d < %d ? %s_0 + %d : %d); %s++)" x x x x
            tile.(i) bounds.(i) x tile.(i) bounds.(i) x;
          e.depth <- e.depth + 1)
        loops
    | None ->
      Array.iteri
        (fun i x ->
          line e "for (int %s = 0; %s < %d; %s++)" x x bounds.(i) x;
          e.depth <- e.depth + 1)
        loops);
    ignore d;
    line e "%s" stmt;
    e.depth <- 0;
    line e "}"
  | OCaml ->
    line e "(* %s; %s *)" fname
      (match tile_opt with
      | Some tile ->
        "tile " ^ String.concat "x" (Array.to_list (Array.map string_of_int tile))
      | None -> "untiled");
    line e "let %s %s =" fname (String.concat " " (Array.to_list params));
    e.depth <- 1;
    (match tile_opt with
    | Some tile ->
      Array.iteri
        (fun i x ->
          line e "for %s_b = 0 to %d do" x (((bounds.(i) + tile.(i) - 1) / tile.(i)) - 1);
          e.depth <- e.depth + 1;
          line e "let %s_0 = %s_b * %d in" x x tile.(i))
        loops;
      Array.iteri
        (fun i x ->
          line e "for %s = %s_0 to min %d (%s_0 + %d) - 1 do" x x bounds.(i) x tile.(i);
          e.depth <- e.depth + 1)
        loops
    | None ->
      Array.iteri
        (fun i x ->
          line e "for %s = 0 to %d do" x (bounds.(i) - 1);
          e.depth <- e.depth + 1)
        loops);
    line e "%s" stmt;
    for _ = 1 to (match tile_opt with Some _ -> 2 * d | None -> d) do
      e.depth <- e.depth - 1;
      line e "done"
    done);
  Buffer.contents e.buf

let emit ?lang ?body ?function_name spec ~tile =
  emit_common ?lang ?body ?function_name spec ~tile_opt:(Some tile)

let emit_untiled ?lang ?body ?function_name spec =
  emit_common ?lang ?body ?function_name spec ~tile_opt:None
