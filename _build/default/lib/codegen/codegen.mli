(** Tiled loop-nest code generation.

    The paper's intended application (Section 7) is a compiler pass that
    blocks projective loop nests automatically. This module is that last
    mile: given a {!Spec.t} and a tile, emit compilable source for the
    tiled nest — C (for dropping into native projects) or OCaml.

    The generated code iterates tiles lexicographically and points inside
    each tile lexicographically, exactly like {!Schedules.Tiled}, so the
    traffic the simulator measures is the traffic the emitted code
    produces under the same cache. Array arguments are flat row-major
    buffers; the loop body is a caller-supplied statement template in
    which [$0, $1, ...] refer to the linearized element expressions of
    the spec's arrays in order. *)

type lang = C | OCaml

val default_body : Spec.t -> string
(** A sensible body when the caller does not supply one:
    [$0 += $1 * $2 * ...] when array 0 is an [Update] (or [=] when it is
    a [Write]) — i.e. the multiply-accumulate the paper's examples use. *)

val emit :
  ?lang:lang ->
  ?body:string ->
  ?function_name:string ->
  Spec.t ->
  tile:int array ->
  string
(** Emit a complete function (C: [void f(double *A1, ...)], OCaml:
    [let f a1 ... = ...]) implementing the tiled nest.
    @raise Invalid_argument if the tile fails {!Schedules.validate} or
    the body references an array index that does not exist. *)

val emit_untiled : ?lang:lang -> ?body:string -> ?function_name:string -> Spec.t -> string
(** The nest as written (for baselines / diffing against the tiled
    version). *)
