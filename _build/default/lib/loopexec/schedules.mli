(** Execution schedules for a loop nest.

    A schedule fixes the order in which the iteration points are visited.
    [Untiled] is plain lexicographic order (innermost loop fastest) — the
    naive nest as written. [Tiled b] visits tiles of dimensions [b] in
    lexicographic order over the tile grid and points inside each tile
    lexicographically; edge tiles are clipped to the loop bounds.
    [Nested [b1; b2; ...]] (innermost tile first, each level elementwise
    no larger than the next) blocks recursively — the schedule matching a
    multi-level memory hierarchy ({!module:Hierarchy}): the level-[k]
    tile is sized for the level-[k] cache. *)

type t =
  | Untiled
  | Permuted of int array
      (** untiled, but with the loops interchanged: entry [k] is the loop
          index at nesting depth [k] (outermost first) — the classic
          loop-interchange baseline *)
  | Tiled of int array
  | Nested of int array list

val classic_tile : ?clamp:bool -> Spec.t -> m:int -> int array
(** The "large bounds" cube tiling of Section 3 discussion: every tile
    dimension equals [floor((m / n_arrays)^(1/a_max))] where [a_max] is
    the largest array arity — the shape classical analyses prescribe
    ([sqrt(M/3)] per side for matmul). With [clamp] (default [true])
    dimensions are clipped to the loop bounds, which is the standard fix
    that makes the tile legal but wastes cache capacity when bounds are
    small; with [~clamp:false] the result can be infeasible, exactly the
    failure the paper's construction removes. *)

val validate : Spec.t -> t -> (unit, string) result
(** Check a schedule is executable for this spec: tile arities match,
    every tile dimension lies in [[1, L_i]], and nested levels are
    elementwise monotone (inner <= outer). *)

val iterate : Spec.t -> t -> (int array -> unit) -> unit
(** Visit every iteration point exactly once in schedule order. The point
    array passed to the callback is reused; copy it if you keep it.
    @raise Invalid_argument if {!validate} fails. *)

val description : Spec.t -> t -> string
