(** Memory layout: assigns every array element a distinct word address.

    Arrays are laid out consecutively, each in row-major order over its
    (projected) extents. The executor uses this to turn an iteration point
    into the set of word addresses the loop body touches. *)

type t

val make : Spec.t -> t

val spec : t -> Spec.t

val base : t -> int -> int
(** Starting address of array [j]. *)

val total_words : t -> int

val address : t -> int -> int array -> int
(** [address t j point] — address of the element of array [j] accessed at
    the full [d]-dimensional iteration [point] (the projection is applied
    here). [point] uses 0-based coordinates. *)

val address_of_index : t -> int -> int array -> int
(** Same, but from the array's own (projected) index vector. *)

val array_of_address : t -> int -> (int * int array) option
(** Reverse mapping (array id, projected index); [None] if out of range.
    Intended for debugging and tests. *)
