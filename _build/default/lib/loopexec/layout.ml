type t = {
  spec : Spec.t;
  bases : int array;
  dims : int array array;  (** per array: extents of its projected index space *)
  total : int;
}

let make spec =
  let n = Spec.num_arrays spec in
  let dims = Array.init n (fun j -> Spec.array_dims spec j) in
  let bases = Array.make n 0 in
  let off = ref 0 in
  for j = 0 to n - 1 do
    bases.(j) <- !off;
    off := !off + Array.fold_left ( * ) 1 dims.(j)
  done;
  { spec; bases; dims; total = !off }

let spec t = t.spec
let base t j = t.bases.(j)
let total_words t = t.total

let address_of_index t j idx =
  let dims = t.dims.(j) in
  let acc = ref 0 in
  for k = 0 to Array.length dims - 1 do
    acc := (!acc * dims.(k)) + idx.(k)
  done;
  t.bases.(j) + !acc

let address t j point =
  let sup = t.spec.Spec.arrays.(j).Spec.support in
  let dims = t.dims.(j) in
  let acc = ref 0 in
  for k = 0 to Array.length sup - 1 do
    acc := (!acc * dims.(k)) + point.(sup.(k))
  done;
  t.bases.(j) + !acc

let array_of_address t addr =
  if addr < 0 || addr >= t.total then None
  else begin
    let j = ref 0 in
    while !j + 1 < Array.length t.bases && t.bases.(!j + 1) <= addr do
      incr j
    done;
    let j = !j in
    let rel = ref (addr - t.bases.(j)) in
    let dims = t.dims.(j) in
    let k = Array.length dims in
    let idx = Array.make k 0 in
    for p = k - 1 downto 0 do
      idx.(p) <- !rel mod dims.(p);
      rel := !rel / dims.(p)
    done;
    Some (j, idx)
  end
