type t = Untiled | Permuted of int array | Tiled of int array | Nested of int array list

let classic_tile ?(clamp = true) spec ~m =
  let n = Spec.num_arrays spec in
  let a_max =
    Array.fold_left
      (fun acc (a : Spec.array_ref) -> max acc (Array.length a.Spec.support))
      1 spec.Spec.arrays
  in
  let budget = float_of_int (max 1 (m / n)) in
  let side = int_of_float (Float.pow budget (1.0 /. float_of_int a_max)) in
  let side = max 1 side in
  Array.init (Spec.num_loops spec) (fun i ->
    if clamp then min side spec.Spec.bounds.(i) else side)

let validate_tile spec b =
  if Array.length b <> Spec.num_loops spec then Error "tile arity mismatch"
  else begin
    let bad = ref None in
    Array.iteri
      (fun i bi ->
        if !bad = None && (bi < 1 || bi > spec.Spec.bounds.(i)) then
          bad :=
            Some
              (Printf.sprintf "tile dimension %d = %d outside [1, %d] for loop %s" i bi
                 spec.Spec.bounds.(i) spec.Spec.loops.(i)))
      b;
    match !bad with None -> Ok () | Some msg -> Error msg
  end

let is_permutation d p =
  Array.length p = d
  &&
  let seen = Array.make d false in
  Array.for_all
    (fun i ->
      if i < 0 || i >= d || seen.(i) then false
      else begin
        seen.(i) <- true;
        true
      end)
    p

let validate spec = function
  | Untiled -> Ok ()
  | Permuted p ->
    if is_permutation (Spec.num_loops spec) p then Ok ()
    else Error "not a permutation of the loop indices"
  | Tiled b -> validate_tile spec b
  | Nested [] -> Error "nested schedule needs at least one level"
  | Nested tiles ->
    let rec check prev = function
      | [] -> Ok ()
      | b :: rest -> (
        match validate_tile spec b with
        | Error _ as e -> e
        | Ok () -> (
          match prev with
          | Some p when not (Array.for_all2 (fun inner outer -> inner <= outer) p b) ->
            Error "nested tiles must grow (elementwise) from inner to outer"
          | _ -> check (Some b) rest))
    in
    check None tiles

let iterate spec sched f =
  (match validate spec sched with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Schedules.iterate: " ^ msg));
  let d = Spec.num_loops spec in
  let bounds = spec.Spec.bounds in
  let point = Array.make d 0 in
  match sched with
  | Untiled | Permuted _ ->
    let order = match sched with Permuted p -> p | _ -> Array.init d (fun i -> i) in
    let rec go k =
      if k = d then f point
      else begin
        let i = order.(k) in
        for v = 0 to bounds.(i) - 1 do
          point.(i) <- v;
          go (k + 1)
        done
      end
    in
    go 0
  | Tiled _ | Nested _ ->
    (* Outermost tile level first; [levels = []] means single points. *)
    let levels =
      match sched with
      | Tiled b -> [ b ]
      | Nested tiles -> List.rev tiles
      | Untiled | Permuted _ -> assert false
    in
    (* Iterate blocks of [tile] inside the box [lo, hi), recursing into
       the remaining levels within each block. *)
    let rec walk levels lo hi =
      match levels with
      | [] ->
        let rec points i =
          if i = d then f point
          else
            for v = lo.(i) to hi.(i) - 1 do
              point.(i) <- v;
              points (i + 1)
            done
        in
        points 0
      | tile :: rest ->
        let block_lo = Array.copy lo and block_hi = Array.copy hi in
        let rec blocks i =
          if i = d then walk rest block_lo block_hi
          else begin
            let v = ref lo.(i) in
            while !v < hi.(i) do
              block_lo.(i) <- !v;
              block_hi.(i) <- min hi.(i) (!v + tile.(i));
              blocks (i + 1);
              v := !v + tile.(i)
            done
          end
        in
        blocks 0
    in
    walk levels (Array.make d 0) (Array.copy bounds)

let description spec = function
  | Untiled -> "untiled (lexicographic)"
  | Permuted p ->
    Printf.sprintf "untiled, loop order %s"
      (String.concat "," (Array.to_list (Array.map (fun i -> spec.Spec.loops.(i)) p)))
  | Tiled b ->
    Printf.sprintf "tiled %s over %s"
      (String.concat "x" (Array.to_list (Array.map string_of_int b)))
      (String.concat "x" (Array.to_list (Array.map string_of_int spec.Spec.bounds)))
  | Nested tiles ->
    Printf.sprintf "nested [%s] over %s"
      (String.concat "; "
         (List.map
            (fun b -> String.concat "x" (Array.to_list (Array.map string_of_int b)))
            tiles))
      (String.concat "x" (Array.to_list (Array.map string_of_int spec.Spec.bounds)))
