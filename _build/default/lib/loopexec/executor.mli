(** Run a loop nest against the cache simulator.

    Each iteration point touches every array of the spec at its projected
    element: [Read] arrays are read, [Write] arrays are written, [Update]
    arrays are read then written (read-modify-write). The resulting word
    trace is fed to the cache; the returned statistics include the final
    flush, so all output data is accounted as traffic.

    This is the empirical side of the reproduction: measured
    [words_moved] for the schedule built by {!Tiling.optimal} is compared
    against {!Lower_bound.communication} in the benchmarks. *)

type result = {
  schedule : Schedules.t;
  policy : Policy.t;
  capacity : int;
  stats : Cache.stats;
  words_moved : int;  (** misses + writebacks, in words *)
}

val run :
  ?line_words:int ->
  ?policy:Policy.t ->
  Spec.t ->
  schedule:Schedules.t ->
  capacity:int ->
  result
(** Default policy is [Lru]. [Opt] materializes the whole trace first;
    {!trace_length} words of memory are needed, and the call refuses
    traces above [10^8] accesses.
    @raise Invalid_argument on an invalid schedule or oversized OPT
    trace. *)

type hierarchy_result = {
  hschedule : Schedules.t;
  capacities : int array;
  hstats : Cache.stats array;  (** one per level *)
  boundary_words : int array;
      (** words crossing each boundary; the last entry is main-memory
          traffic *)
}

val run_hierarchy :
  ?line_words:int ->
  ?policy:Policy.t ->
  Spec.t ->
  schedule:Schedules.t ->
  capacities:int array ->
  hierarchy_result
(** Execute against a {!Hierarchy} of caches (fastest first). Use with
    {!Schedules.Nested} tiles from {!Tiling.nested} to check multi-level
    attainment. Final flush cascades through all levels. *)

val trace_length : Spec.t -> int
(** Number of word accesses one full execution generates:
    [iterations * (n_reads + n_writes)] with [Update] counting twice. *)

val trace_of : Spec.t -> schedule:Schedules.t -> Trace.t
(** Materialize the access trace (for OPT simulation or inspection). *)
