lib/loopexec/schedules.mli: Spec
