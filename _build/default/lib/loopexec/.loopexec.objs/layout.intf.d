lib/loopexec/layout.mli: Spec
