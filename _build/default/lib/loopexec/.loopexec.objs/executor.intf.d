lib/loopexec/executor.mli: Cache Policy Schedules Spec Trace
