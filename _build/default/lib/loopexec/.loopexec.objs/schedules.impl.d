lib/loopexec/schedules.ml: Array Float List Printf Spec String
