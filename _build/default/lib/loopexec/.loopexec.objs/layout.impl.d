lib/loopexec/layout.ml: Array Spec
