lib/loopexec/executor.ml: Array Cache Hierarchy Layout Policy Printf Schedules Spec Trace
