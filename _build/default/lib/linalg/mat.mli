(** Dense matrices of exact rationals with Gaussian elimination.

    Matrices are mutable 2-D arrays; the elimination-based operations
    ([rank], [det], [inverse], [solve]) work on internal copies and leave
    their argument untouched. *)

type t

val make : int -> int -> Rat.t -> t
val zeros : int -> int -> t
val identity : int -> t
val of_rows : Rat.t array array -> t
(** @raise Invalid_argument on ragged input. *)

val of_int_rows : int list list -> t
val init : int -> int -> (int -> int -> Rat.t) -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Rat.t
val set : t -> int -> int -> Rat.t -> unit
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val copy : t -> t
val equal : t -> t -> bool
val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : Rat.t -> t -> t
val mul : t -> t -> t
(** Matrix product. @raise Invalid_argument on dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t

val rank : t -> int
val det : t -> Rat.t
(** @raise Invalid_argument if not square. *)

val inverse : t -> t option
(** [None] if singular. @raise Invalid_argument if not square. *)

val solve : t -> Vec.t -> Vec.t option
(** [solve a b] is some [x] with [a x = b], or [None] if the system is
    inconsistent. Works for any shape; when underdetermined an arbitrary
    solution (free variables set to zero) is returned. *)

val pp : Format.formatter -> t -> unit
