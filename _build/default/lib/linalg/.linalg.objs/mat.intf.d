lib/linalg/mat.mli: Format Rat Vec
