lib/linalg/vec.mli: Format Rat
