lib/linalg/mat.ml: Array Format List Rat Vec
