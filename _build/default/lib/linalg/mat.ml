type t = { m : int; n : int; a : Rat.t array array }

let make m n v = { m; n; a = Array.init m (fun _ -> Array.make n v) }
let zeros m n = make m n Rat.zero

let identity n =
  let t = zeros n n in
  for i = 0 to n - 1 do
    t.a.(i).(i) <- Rat.one
  done;
  t

let of_rows rows =
  let m = Array.length rows in
  if m = 0 then { m = 0; n = 0; a = [||] }
  else begin
    let n = Array.length rows.(0) in
    if not (Array.for_all (fun r -> Array.length r = n) rows) then
      invalid_arg "Mat.of_rows: ragged rows";
    { m; n; a = Array.map Array.copy rows }
  end

let of_int_rows rows =
  of_rows (Array.of_list (List.map (fun r -> Array.of_list (List.map Rat.of_int r)) rows))

let init m n f = { m; n; a = Array.init m (fun i -> Array.init n (fun j -> f i j)) }

let rows t = t.m
let cols t = t.n
let get t i j = t.a.(i).(j)
let set t i j v = t.a.(i).(j) <- v
let row t i = Array.copy t.a.(i)
let col t j = Array.init t.m (fun i -> t.a.(i).(j))
let copy t = { t with a = Array.map Array.copy t.a }

let equal a b =
  a.m = b.m && a.n = b.n && Array.for_all2 (fun r s -> Array.for_all2 Rat.equal r s) a.a b.a

let transpose t = init t.n t.m (fun i j -> t.a.(j).(i))

let lift2 name f a b =
  if a.m <> b.m || a.n <> b.n then invalid_arg ("Mat." ^ name ^ ": dimension mismatch");
  init a.m a.n (fun i j -> f a.a.(i).(j) b.a.(i).(j))

let add a b = lift2 "add" Rat.add a b
let sub a b = lift2 "sub" Rat.sub a b
let scale k t = init t.m t.n (fun i j -> Rat.mul k t.a.(i).(j))

let mul a b =
  if a.n <> b.m then invalid_arg "Mat.mul: dimension mismatch";
  init a.m b.n (fun i j ->
    let acc = ref Rat.zero in
    for k = 0 to a.n - 1 do
      if not (Rat.is_zero a.a.(i).(k)) then acc := Rat.add !acc (Rat.mul a.a.(i).(k) b.a.(k).(j))
    done;
    !acc)

let mul_vec t v =
  if t.n <> Vec.dim v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init t.m (fun i -> Vec.dot t.a.(i) v)

(* In-place fraction-free-ish Gaussian elimination to row echelon form.
   Returns the list of (pivot_row, pivot_col) in order. *)
let echelonize (t : t) : (int * int) list =
  let pivots = ref [] in
  let r = ref 0 in
  let c = ref 0 in
  while !r < t.m && !c < t.n do
    (* Find a pivot in column !c at or below row !r. *)
    let piv = ref (-1) in
    (try
       for i = !r to t.m - 1 do
         if not (Rat.is_zero t.a.(i).(!c)) then begin
           piv := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !piv < 0 then incr c
    else begin
      if !piv <> !r then begin
        let tmp = t.a.(!piv) in
        t.a.(!piv) <- t.a.(!r);
        t.a.(!r) <- tmp
      end;
      let inv_p = Rat.inv t.a.(!r).(!c) in
      for j = !c to t.n - 1 do
        t.a.(!r).(j) <- Rat.mul inv_p t.a.(!r).(j)
      done;
      for i = 0 to t.m - 1 do
        if i <> !r && not (Rat.is_zero t.a.(i).(!c)) then begin
          let f = t.a.(i).(!c) in
          for j = !c to t.n - 1 do
            t.a.(i).(j) <- Rat.sub t.a.(i).(j) (Rat.mul f t.a.(!r).(j))
          done
        end
      done;
      pivots := (!r, !c) :: !pivots;
      incr r;
      incr c
    end
  done;
  List.rev !pivots

let rank t = List.length (echelonize (copy t))

let det t =
  if t.m <> t.n then invalid_arg "Mat.det: not square";
  if t.m = 0 then Rat.one
  else begin
    (* Plain elimination tracking the product of pivots and row swaps. *)
    let a = (copy t).a in
    let n = t.n in
    let d = ref Rat.one in
    (try
       for c = 0 to n - 1 do
         let piv = ref (-1) in
         (try
            for i = c to n - 1 do
              if not (Rat.is_zero a.(i).(c)) then begin
                piv := i;
                raise Exit
              end
            done
          with Exit -> ());
         if !piv < 0 then begin
           d := Rat.zero;
           raise Exit
         end;
         if !piv <> c then begin
           let tmp = a.(!piv) in
           a.(!piv) <- a.(c);
           a.(c) <- tmp;
           d := Rat.neg !d
         end;
         d := Rat.mul !d a.(c).(c);
         let inv_p = Rat.inv a.(c).(c) in
         for i = c + 1 to n - 1 do
           if not (Rat.is_zero a.(i).(c)) then begin
             let f = Rat.mul inv_p a.(i).(c) in
             for j = c to n - 1 do
               a.(i).(j) <- Rat.sub a.(i).(j) (Rat.mul f a.(c).(j))
             done
           end
         done
       done
     with Exit -> ());
    !d
  end

let inverse t =
  if t.m <> t.n then invalid_arg "Mat.inverse: not square";
  let n = t.n in
  (* Eliminate [t | I]; if t reduces to I the right half is the inverse. *)
  let aug = init n (2 * n) (fun i j -> if j < n then t.a.(i).(j) else if j - n = i then Rat.one else Rat.zero) in
  let pivots = echelonize aug in
  if List.length pivots < n || List.exists (fun (_, c) -> c >= n) pivots then None
  else Some (init n n (fun i j -> aug.a.(i).(j + n)))

let solve t b =
  if t.m <> Vec.dim b then invalid_arg "Mat.solve: dimension mismatch";
  let aug = init t.m (t.n + 1) (fun i j -> if j < t.n then t.a.(i).(j) else b.(i)) in
  let pivots = echelonize aug in
  if List.exists (fun (_, c) -> c = t.n) pivots then None (* row [0 .. 0 | nonzero] *)
  else begin
    let x = Vec.zeros t.n in
    List.iter (fun (r, c) -> x.(c) <- aug.a.(r).(t.n)) pivots;
    Some x
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for i = 0 to t.m - 1 do
    Format.fprintf fmt "%a@," Vec.pp t.a.(i)
  done;
  Format.fprintf fmt "@]"
