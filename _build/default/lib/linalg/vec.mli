(** Dense vectors of exact rationals. *)

type t = Rat.t array

val make : int -> Rat.t -> t
val zeros : int -> t
val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of length [n]. *)

val dim : t -> int
val of_list : Rat.t list -> t
val of_ints : int list -> t
val copy : t -> t
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val dot : t -> t -> Rat.t
val sum : t -> Rat.t
val map2 : (Rat.t -> Rat.t -> Rat.t) -> t -> t -> t

val is_zero : t -> bool
val is_nonneg : t -> bool

val pp : Format.formatter -> t -> unit
