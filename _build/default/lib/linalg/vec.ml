type t = Rat.t array

let make n v = Array.make n v
let zeros n = make n Rat.zero

let basis n i =
  let v = zeros n in
  v.(i) <- Rat.one;
  v

let dim = Array.length
let of_list = Array.of_list
let of_ints l = Array.of_list (List.map Rat.of_int l)
let copy = Array.copy
let equal a b = dim a = dim b && Array.for_all2 Rat.equal a b

let check_dims a b = if dim a <> dim b then invalid_arg "Vec: dimension mismatch"

let map2 f a b =
  check_dims a b;
  Array.map2 f a b

let add a b = map2 Rat.add a b
let sub a b = map2 Rat.sub a b
let neg a = Array.map Rat.neg a
let scale k a = Array.map (Rat.mul k) a

let dot a b =
  check_dims a b;
  let acc = ref Rat.zero in
  for i = 0 to dim a - 1 do
    if not (Rat.is_zero a.(i) || Rat.is_zero b.(i)) then
      acc := Rat.add !acc (Rat.mul a.(i) b.(i))
  done;
  !acc

let sum a = Array.fold_left Rat.add Rat.zero a
let is_zero a = Array.for_all Rat.is_zero a
let is_nonneg a = Array.for_all (fun x -> Rat.sign x >= 0) a

let pp fmt v =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_array ~pp_sep:(fun f () -> Format.fprintf f ";@ ") Rat.pp)
    v
