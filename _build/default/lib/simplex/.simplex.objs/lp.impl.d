lib/simplex/lp.ml: Array Format List Printf Rat Vec
