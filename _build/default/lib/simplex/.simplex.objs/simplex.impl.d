lib/simplex/simplex.ml: Array Lp Rat Vec
