lib/simplex/lp.mli: Format Rat
