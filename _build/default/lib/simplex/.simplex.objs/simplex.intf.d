lib/simplex/simplex.mli: Lp Rat
