lib/simplex/simplex_float.mli: Lp
