lib/simplex/simplex_float.ml: Array Float Lp Rat
