(** Linear program descriptions.

    A problem is [dir c^T x] subject to a list of linear constraints and
    the implicit sign constraints [x >= 0]. (All LPs in this codebase —
    the HBL LP (3.2), the bounded tiling LP (5.1) and its dual (5.5)/(5.6)
    — have non-negative variables; free variables can be encoded with the
    usual [x = x+ - x-] split.) *)

type direction = Minimize | Maximize
type relation = Le | Ge | Eq

type constr = {
  cname : string;  (** for diagnostics and pretty-printing *)
  coeffs : Rat.t array;
  relation : relation;
  rhs : Rat.t;
}

type t

val make : ?var_names:string array -> direction -> Rat.t array -> constr list -> t
(** [make dir c constrs] builds a problem over [Array.length c] variables.
    @raise Invalid_argument if any constraint has the wrong arity or a
    variable name array of the wrong length is supplied. *)

val constr : ?name:string -> Rat.t array -> relation -> Rat.t -> constr

val num_vars : t -> int
val num_constraints : t -> int
val direction : t -> direction
val objective : t -> Rat.t array
val constraints : t -> constr array
val var_name : t -> int -> string

val eval_objective : t -> Rat.t array -> Rat.t

val satisfies : t -> Rat.t array -> bool
(** Point feasibility: every constraint holds and the point is
    componentwise non-negative. *)

val pp : Format.formatter -> t -> unit
