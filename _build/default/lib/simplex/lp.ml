
type direction = Minimize | Maximize
type relation = Le | Ge | Eq

type constr = { cname : string; coeffs : Rat.t array; relation : relation; rhs : Rat.t }

type t = {
  dir : direction;
  obj : Rat.t array;
  constrs : constr array;
  var_names : string array;
}

let constr ?(name = "") coeffs relation rhs = { cname = name; coeffs; relation; rhs }

let make ?var_names dir obj constrs =
  let n = Array.length obj in
  let var_names =
    match var_names with
    | Some names ->
      if Array.length names <> n then invalid_arg "Lp.make: var_names arity mismatch";
      names
    | None -> Array.init n (fun i -> Printf.sprintf "x%d" i)
  in
  List.iteri
    (fun i c ->
      if Array.length c.coeffs <> n then
        invalid_arg (Printf.sprintf "Lp.make: constraint %d arity mismatch" i))
    constrs;
  { dir; obj; constrs = Array.of_list constrs; var_names }

let num_vars t = Array.length t.obj
let num_constraints t = Array.length t.constrs
let direction t = t.dir
let objective t = t.obj
let constraints t = t.constrs
let var_name t i = t.var_names.(i)

let eval_objective t x = Vec.dot t.obj x

let satisfies t x =
  Array.length x = num_vars t
  && Array.for_all (fun v -> Rat.sign v >= 0) x
  && Array.for_all
       (fun c ->
         let lhs = Vec.dot c.coeffs x in
         match c.relation with
         | Le -> Rat.compare lhs c.rhs <= 0
         | Ge -> Rat.compare lhs c.rhs >= 0
         | Eq -> Rat.equal lhs c.rhs)
       t.constrs

let pp_relation fmt = function
  | Le -> Format.pp_print_string fmt "<="
  | Ge -> Format.pp_print_string fmt ">="
  | Eq -> Format.pp_print_string fmt "="

let pp_linear fmt (names, coeffs) =
  let first = ref true in
  Array.iteri
    (fun i c ->
      if not (Rat.is_zero c) then begin
        if !first then begin
          first := false;
          if Rat.equal c Rat.minus_one then Format.fprintf fmt "-"
          else if not (Rat.equal c Rat.one) then Format.fprintf fmt "%a*" Rat.pp c
        end
        else if Rat.sign c < 0 then begin
          Format.fprintf fmt " - ";
          let a = Rat.abs c in
          if not (Rat.equal a Rat.one) then Format.fprintf fmt "%a*" Rat.pp a
        end
        else begin
          Format.fprintf fmt " + ";
          if not (Rat.equal c Rat.one) then Format.fprintf fmt "%a*" Rat.pp c
        end;
        Format.pp_print_string fmt names.(i)
      end)
    coeffs;
  if !first then Format.pp_print_string fmt "0"

let pp fmt t =
  Format.fprintf fmt "@[<v>%s %a@,subject to:@,"
    (match t.dir with Minimize -> "minimize" | Maximize -> "maximize")
    pp_linear (t.var_names, t.obj);
  Array.iter
    (fun c ->
      Format.fprintf fmt "  %a %a %a%s@," pp_linear (t.var_names, c.coeffs) pp_relation
        c.relation Rat.pp c.rhs
        (if c.cname = "" then "" else "   (" ^ c.cname ^ ")"))
    t.constrs;
  Format.fprintf fmt "  (all variables >= 0)@]"
