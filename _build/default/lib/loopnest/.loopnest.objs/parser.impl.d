lib/loopnest/parser.ml: Array List Printf Result Spec String
