lib/loopnest/kernels.mli: Spec
