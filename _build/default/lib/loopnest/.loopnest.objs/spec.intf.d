lib/loopnest/spec.mli: Format
