lib/loopnest/spec.ml: Array Format Hashtbl List Printf Stdlib String
