lib/loopnest/parser.mli: Spec
