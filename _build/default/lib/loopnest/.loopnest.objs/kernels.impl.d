lib/loopnest/kernels.ml: Array List Printf Spec
