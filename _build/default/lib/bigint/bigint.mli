(** Arbitrary-precision signed integers.

    This module is a self-contained bignum implementation used as the
    substrate for exact rational arithmetic ({!module:Rat}), which in turn
    backs the exact simplex solver. The representation is sign-magnitude
    with little-endian base-[2^30] digit arrays; multiplication switches to
    Karatsuba above a size threshold and division uses Knuth's Algorithm D.

    All operations are purely functional; values are immutable. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_int_opt : t -> int option
(** [None] if the value does not fit in a native [int]. *)

val fits_int : t -> bool

val of_string : string -> t
(** Parses an optionally-signed decimal literal. Underscores are allowed as
    digit separators, as in OCaml integer literals.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val to_float : t -> float
(** Nearest float; loses precision beyond 53 bits, may be infinite. *)

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val succ : t -> t
val pred : t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|], and [r]
    having the sign of [a] (truncated division, like OCaml's [/] and [mod]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: remainder always in [\[0, |b|)]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t

val shift_left : t -> int -> t
(** Multiplication by [2^n], [n >= 0]. *)

val shift_right : t -> int -> t
(** Arithmetic shift: floor division by [2^n], [n >= 0]. *)

val num_bits : t -> int
(** Number of bits in the magnitude; [num_bits zero = 0]. *)

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
