(* Arbitrary-precision signed integers.

   Representation: sign-magnitude. [mag] is a little-endian array of base
   [2^30] digits with no leading (high-order) zeros; [sign] is -1, 0 or 1
   and is 0 exactly when [mag] is empty. Base 2^30 keeps every
   intermediate product [digit * digit + carry] well inside OCaml's 63-bit
   native [int] range. *)

let bits_per_digit = 30
let base = 1 lsl bits_per_digit
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned digit-array) primitives                        *)
(* ------------------------------------------------------------------ *)

(* Strip high-order zero digits so magnitudes are canonical. *)
let normalize_mag (a : int array) : int array =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let make_signed sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let mcompare (a : int array) (b : int array) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let madd (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr bits_per_digit
  done;
  r.(lr - 1) <- !carry;
  normalize_mag r

(* Precondition: a >= b as magnitudes. *)
let msub (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize_mag r

let mmul_school (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land mask;
          carry := s lsr bits_per_digit
        done;
        (* Propagate the remaining carry; it can span several digits. *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr bits_per_digit;
          incr k
        done
      end
    done;
    normalize_mag r
  end

let karatsuba_threshold = 32

(* Split [a] at digit position [k] into (low, high). *)
let msplit (a : int array) (k : int) : int array * int array =
  let la = Array.length a in
  if la <= k then (a, [||])
  else (normalize_mag (Array.sub a 0 k), Array.sub a k (la - k))

let rec mmul (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la < karatsuba_threshold || lb < karatsuba_threshold then mmul_school a b
  else begin
    (* Karatsuba: a = a1*B^k + a0, b = b1*B^k + b0;
       a*b = z2*B^2k + (z1 - z2 - z0)*B^k + z0 with
       z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)*(b0+b1). *)
    let k = (if la > lb then la else lb) / 2 in
    let a0, a1 = msplit a k and b0, b1 = msplit b k in
    let z0 = mmul a0 b0 in
    let z2 = mmul a1 b1 in
    let z1 = mmul (madd a0 a1) (madd b0 b1) in
    let mid = msub (msub z1 z2) z0 in
    let shift m s =
      let lm = Array.length m in
      if lm = 0 then [||]
      else begin
        let r = Array.make (lm + s) 0 in
        Array.blit m 0 r s lm;
        r
      end
    in
    madd (madd z0 (shift mid k)) (shift z2 (2 * k))
  end

(* Shift magnitude left by [n] bits. *)
let mshift_left (a : int array) (n : int) : int array =
  let la = Array.length a in
  if la = 0 || n = 0 then a
  else begin
    let words = n / bits_per_digit and bits = n mod bits_per_digit in
    let r = Array.make (la + words + 1) 0 in
    if bits = 0 then Array.blit a 0 r words la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bits) lor !carry in
        r.(i + words) <- v land mask;
        carry := v lsr bits_per_digit
      done;
      r.(la + words) <- !carry
    end;
    normalize_mag r
  end

(* Shift magnitude right by [n] bits (truncating). *)
let mshift_right (a : int array) (n : int) : int array =
  let la = Array.length a in
  if la = 0 || n = 0 then a
  else begin
    let words = n / bits_per_digit and bits = n mod bits_per_digit in
    if words >= la then [||]
    else begin
      let lr = la - words in
      let r = Array.make lr 0 in
      if bits = 0 then Array.blit a words r 0 lr
      else begin
        for i = 0 to lr - 1 do
          let lo = a.(i + words) lsr bits in
          let hi = if i + words + 1 < la then (a.(i + words + 1) lsl (bits_per_digit - bits)) land mask else 0 in
          r.(i) <- lo lor hi
        done
      end;
      normalize_mag r
    end
  end

(* Divide magnitude by a single digit; returns (quotient, remainder). *)
let mdivmod_digit (a : int array) (d : int) : int array * int =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl bits_per_digit) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize_mag q, !r)

let digit_bits (d : int) : int =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go d 0

(* Knuth Algorithm D (TAOCP vol. 2, 4.3.1). Requires |b| >= 2 digits and
   |a| >= |b|; returns (quotient, remainder) magnitudes. *)
let mdivmod_knuth (a : int array) (b : int array) : int array * int array =
  let n = Array.length b in
  (* D1: normalize so the top divisor digit is >= base/2. *)
  let s = bits_per_digit - digit_bits b.(n - 1) in
  let v = mshift_left b s in
  let u0 = mshift_left a s in
  let m = Array.length u0 - n in
  (* u gets one extra high digit for the algorithm. *)
  let u = Array.make (Array.length u0 + 1) 0 in
  Array.blit u0 0 u 0 (Array.length u0);
  let q = Array.make (m + 1) 0 in
  let vn1 = v.(n - 1) and vn2 = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    (* D3: estimate qhat from the top two digits of the current remainder. *)
    let num = (u.(j + n) lsl bits_per_digit) lor u.(j + n - 1) in
    let qhat = ref (num / vn1) and rhat = ref (num mod vn1) in
    let adjusting = ref true in
    while !adjusting do
      if !qhat >= base || (!qhat * vn2) > ((!rhat lsl bits_per_digit) lor u.(j + n - 2)) then begin
        decr qhat;
        rhat := !rhat + vn1;
        if !rhat >= base then adjusting := false
      end
      else adjusting := false
    done;
    (* D4: multiply and subtract qhat * v from u[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr bits_per_digit;
      let d = u.(i + j) - (p land mask) - !borrow in
      if d < 0 then begin
        u.(i + j) <- d + base;
        borrow := 1
      end
      else begin
        u.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = u.(j + n) - !carry - !borrow in
    (* D5/D6: if we subtracted too much, add the divisor back once. *)
    if d < 0 then begin
      u.(j + n) <- d + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let s2 = u.(i + j) + v.(i) + !carry2 in
        u.(i + j) <- s2 land mask;
        carry2 := s2 lsr bits_per_digit
      done;
      u.(j + n) <- (u.(j + n) + !carry2) land mask
    end
    else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  (* D8: denormalize the remainder. *)
  let r = mshift_right (normalize_mag (Array.sub u 0 n)) s in
  (normalize_mag q, r)

let mdivmod (a : int array) (b : int array) : int array * int array =
  if Array.length b = 0 then raise Division_by_zero
  else if mcompare a b < 0 then ([||], a)
  else if Array.length b = 1 then begin
    let q, r = mdivmod_digit a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else mdivmod_knuth a b

(* ------------------------------------------------------------------ *)
(* Signed interface                                                   *)
(* ------------------------------------------------------------------ *)

let sign t = t.sign
let is_zero t = t.sign = 0
let is_negative t = t.sign < 0

let rec of_int (i : int) : t =
  if i = 0 then zero
  else if i = min_int then
    (* [abs min_int] overflows; build it as -(2^62). *)
    let m = of_int (min_int / 2) in
    { m with mag = mshift_left m.mag 1 }
  else begin
    let sign = if i < 0 then -1 else 1 in
    let v = abs i in
    let rec digits acc v = if v = 0 then acc else digits ((v land mask) :: acc) (v lsr bits_per_digit) in
    let ds = List.rev (digits [] v) in
    { sign; mag = Array.of_list ds }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let num_bits t =
  let l = Array.length t.mag in
  if l = 0 then 0 else ((l - 1) * bits_per_digit) + digit_bits t.mag.(l - 1)

let fits_int t =
  let b = num_bits t in
  b <= 62 || (t.sign < 0 && b = 63 && Array.for_all (fun d -> d = 0) (Array.sub t.mag 0 (Array.length t.mag - 1)) && t.mag.(Array.length t.mag - 1) = 1 lsl (62 mod bits_per_digit))

let to_int_opt t =
  if not (fits_int t) then None
  else if num_bits t = 63 then Some min_int
  else begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl bits_per_digit) lor t.mag.(i)
    done;
    Some (if t.sign < 0 then - !v else !v)
  end

let to_int t =
  match to_int_opt t with Some v -> v | None -> failwith "Bigint.to_int: overflow"

let equal a b = a.sign = b.sign && mcompare a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mcompare a.mag b.mag
  else mcompare b.mag a.mag

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash t = Hashtbl.hash (t.sign, t.mag)

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then { t with sign = 1 } else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = madd a.mag b.mag }
  else begin
    let c = mcompare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make_signed a.sign (msub a.mag b.mag)
    else make_signed b.sign (msub b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mmul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else begin
    let qm, rm = mdivmod a.mag b.mag in
    let q = make_signed (a.sign * b.sign) qm in
    let r = make_signed a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent"
  else begin
    let rec go acc base n =
      if n = 0 then acc
      else begin
        let acc = if n land 1 = 1 then mul acc base else acc in
        go acc (mul base base) (n lsr 1)
      end
    in
    go one x n
  end

let rec gcd_mag a b = if b.sign = 0 then a else gcd_mag b (rem a b)
let gcd a b = gcd_mag (abs a) (abs b)

let lcm a b =
  if a.sign = 0 || b.sign = 0 then zero
  else abs (div (mul a b) (gcd a b))

let shift_left t n =
  if n < 0 then invalid_arg "Bigint.shift_left: negative shift"
  else if t.sign = 0 then zero
  else { t with mag = mshift_left t.mag n }

let shift_right t n =
  if n < 0 then invalid_arg "Bigint.shift_right: negative shift"
  else if t.sign = 0 then zero
  else begin
    let m = mshift_right t.mag n in
    if t.sign > 0 then make_signed 1 m
    else begin
      (* Arithmetic shift = floor division: round toward -infinity. *)
      let truncated = make_signed (-1) m in
      let back = shift_left truncated n in
      if equal back t then truncated else pred truncated
    end
  end

(* 10^9 is the largest power of ten below base 2^30, so decimal
   conversion proceeds in 9-digit chunks. *)
let decimal_chunk = 1_000_000_000
let decimal_chunk_digits = 9

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks acc mag =
      if Array.length mag = 0 then acc
      else begin
        let q, r = mdivmod_digit mag decimal_chunk in
        chunks (r :: acc) q
      end
    in
    (match chunks [] t.mag with
    | [] -> assert false
    | first :: rest ->
      if t.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string_opt s =
  let len = String.length s in
  if len = 0 then None
  else begin
    let negative, start = match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0) in
    let digits = Buffer.create len in
    let ok = ref (start < len) in
    String.iteri
      (fun i c ->
        if i >= start then
          match c with
          | '0' .. '9' -> Buffer.add_char digits c
          | '_' -> ()
          | _ -> ok := false)
      s;
    let ds = Buffer.contents digits in
    if (not !ok) || String.length ds = 0 then None
    else begin
      let n = String.length ds in
      let first = n mod decimal_chunk_digits in
      let acc = ref zero in
      let chunk_mul = of_int decimal_chunk in
      let feed lo hi =
        let v = int_of_string (String.sub ds lo (hi - lo)) in
        acc := add (mul !acc chunk_mul) (of_int v)
      in
      if first > 0 then feed 0 first;
      let pos = ref first in
      while !pos < n do
        feed !pos (!pos + decimal_chunk_digits);
        pos := !pos + decimal_chunk_digits
      done;
      Some (if negative then neg !acc else !acc)
    end
  end

let of_string s =
  match of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Bigint.of_string: %S" s)

let to_float t =
  let f = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  if t.sign < 0 then -. !f else !f

let is_one t = equal t one

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
