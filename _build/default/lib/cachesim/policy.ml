type t = Lru | Fifo | Opt

let to_string = function Lru -> "LRU" | Fifo -> "FIFO" | Opt -> "OPT"
let pp fmt t = Format.pp_print_string fmt (to_string t)
