(** Offline trace simulation, including Belady's optimal replacement.

    A trace is the full word-level access sequence of a computation. For
    {!Policy.Lru} and {!Policy.Fifo} this just streams into {!Cache}; for
    {!Policy.Opt} it runs Belady's MIN algorithm (evict the resident line
    whose next use is farthest away), which is the offline optimum and
    therefore the fairest stand-in for the paper's idealized cache. *)

type access = { addr : int; write : bool }

type t = access array

val read : int -> access
val write : int -> access

val simulate : ?line_words:int -> policy:Policy.t -> capacity:int -> t -> Cache.stats
(** Simulate the whole trace and a final flush (dirty lines are written
    back and counted).
    @raise Invalid_argument on a non-positive capacity. *)

val words_touched : t -> int
(** Number of distinct word addresses in the trace — a trivial lower
    bound on read traffic for a cold cache. *)
