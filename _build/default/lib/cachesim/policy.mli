(** Cache replacement policies supported by the simulator. *)

type t =
  | Lru  (** least-recently-used — the standard practical policy *)
  | Fifo  (** first-in-first-out — a cheaper, weaker baseline *)
  | Opt
      (** Belady's offline-optimal (MIN) replacement: evict the line whose
          next use is farthest in the future. Only available through
          {!Trace.simulate}, which knows the whole trace. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
