lib/cachesim/cache.ml: Hashtbl Policy
