lib/cachesim/policy.mli: Format
