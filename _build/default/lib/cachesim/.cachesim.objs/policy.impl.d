lib/cachesim/policy.ml: Format
