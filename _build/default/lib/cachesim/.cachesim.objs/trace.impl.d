lib/cachesim/trace.ml: Array Cache Hashtbl Policy
