lib/cachesim/hierarchy.ml: Array Cache Policy
