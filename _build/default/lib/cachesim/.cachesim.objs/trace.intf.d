lib/cachesim/trace.mli: Cache Policy
