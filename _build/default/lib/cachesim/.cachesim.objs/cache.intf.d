lib/cachesim/cache.mli: Policy
