lib/cachesim/hierarchy.mli: Cache Policy
