let mat_of_rows rows =
  Mat.of_rows (Array.map (fun r -> Array.map Rat.of_int r) rows)

let rank_subgroup gens =
  if Array.length gens = 0 then 0 else Mat.rank (mat_of_rows gens)

let rank_image spec gens j =
  if Array.length gens = 0 then 0
  else begin
    let sup = spec.Spec.arrays.(j).Spec.support in
    let projected =
      Array.map (fun row -> Array.map (fun i -> Rat.of_int row.(i)) sup) gens
    in
    if Array.length sup = 0 then 0 else Mat.rank (Mat.of_rows projected)
  end

let constraint_holds spec ~s gens =
  let lhs = ref Rat.zero in
  Array.iteri
    (fun j sj ->
      if not (Rat.is_zero sj) then
        lhs := Rat.add !lhs (Rat.mul sj (Rat.of_int (rank_image spec gens j))))
    s;
  Rat.compare !lhs (Rat.of_int (rank_subgroup gens)) >= 0

let axis_constraints_hold spec ~s =
  let d = Spec.num_loops spec in
  let ok = ref true in
  for i = 0 to d - 1 do
    let axis = Array.make d 0 in
    axis.(i) <- 1;
    if not (constraint_holds spec ~s [| axis |]) then ok := false
  done;
  !ok

let verify_random_subgroups ?(trials = 200) ?(max_entry = 3) ~seed spec ~s =
  let d = Spec.num_loops spec in
  let rng = Random.State.make [| seed |] in
  let ok = ref true in
  for _ = 1 to trials do
    if !ok then begin
      let k = 1 + Random.State.int rng d in
      let gens =
        Array.init k (fun _ ->
          Array.init d (fun _ -> Random.State.int rng ((2 * max_entry) + 1) - max_entry))
      in
      if not (constraint_holds spec ~s gens) then ok := false
    end
  done;
  !ok

let verify_all_axis_subsets spec ~s =
  let d = Spec.num_loops spec in
  let ok = ref true in
  for mask = 0 to (1 lsl d) - 1 do
    if !ok then begin
      let axes =
        List.filter_map
          (fun i ->
            if mask land (1 lsl i) <> 0 then begin
              let axis = Array.make d 0 in
              axis.(i) <- 1;
              Some axis
            end
            else None)
          (List.init d (fun i -> i))
      in
      if not (constraint_holds spec ~s (Array.of_list axes)) then ok := false
    end
  done;
  !ok
