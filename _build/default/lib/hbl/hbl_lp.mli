(** Builders for the paper's linear programs.

    For a projective loop nest with support matrix [Phi] (one 0/1 row per
    array, one column per loop index), the three LPs of the paper are:

    - {b HBL LP (3.2)}: [min 1.s] subject to [Phi^T s >= 1], [s >= 0].
      Its optimum [s_HBL] yields the classical large-bounds tile-size
      bound [M^(sum s_i)].
    - {b Bounded tiling LP (5.1)}: [max 1.lambda] subject to
      [Phi lambda <= 1], [lambda_i <= beta_i], [lambda >= 0], where
      [beta_i = log_M L_i]. Its optimum is the log (base M) of the optimal
      rectangular tile cardinality, for {e arbitrary} loop bounds.
    - {b Dual tiling LP (5.5)/(5.6)}: [min 1.s + beta.zeta] subject to
      [Phi^T s + zeta >= 1], [s, zeta >= 0] — the LP Theorem 3 relates to
      the [min_Q] expression of Theorem 2.

    All variable orders follow the paper: [s] indexed by arrays, [lambda]
    and [zeta] indexed by loops. *)

val hbl : Spec.t -> Lp.t
(** LP (3.2). Variables: [s_j], one per array. *)

val reduced_hbl : Spec.t -> removed:int list -> Lp.t
(** LP (3.2) with the constraint rows of the loop indices in [removed]
    deleted — the [Q]-reduced LP of Section 4 (constraints (4.7)/(5.3)).
    @raise Invalid_argument if an index is out of range. *)

val tiling : Spec.t -> beta:Rat.t array -> Lp.t
(** LP (5.1). Variables: [lambda_i], one per loop.
    @raise Invalid_argument if [beta] has the wrong arity or a negative
    entry. *)

val dual_tiling : Spec.t -> beta:Rat.t array -> Lp.t
(** LP (5.5)/(5.6), built explicitly (not via the simplex solver's dual
    values) so tests can confirm Theorem 3's duality argument end to end.
    Variables: [zeta_1..zeta_d] then [s_1..s_n], matching (5.6). *)

val theorem2_q : Spec.t -> beta:Rat.t array -> q:int list -> Lp.t
(** The tightest Theorem-2 bound for a fixed small-index set [Q]:
    [min sum_i s_i + sum_{j in Q} beta_j t_j] subject to the [Q]-reduced
    support constraints and [t_j >= 1 - sum_{i in R_j} s_i], [t_j >= 0].
    Any feasible [s] of the reduced LP is admissible in Theorem 2, so the
    optimum of this LP is the least upper-bound exponent [k(Q)] the
    theorem can certify for this [Q]. Variables: [s_1..s_n] then one [t_j]
    per element of [Q] (in the order given). *)

val s_hbl : Spec.t -> Rat.t
(** Optimal value of {!hbl} — the exponent [sum s_i] of Section 3. *)
