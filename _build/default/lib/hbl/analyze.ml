type report = {
  spec : Spec.t;
  m : int;
  beta : Rat.t array;
  bound : Lower_bound.bound;
  lp : Tiling.lp_solution;
  tile : int array;
  tile_volume : int;
  tile_max_footprint : int;
  tiles : int;
  traffic : Tiling.traffic;
  attainment : float;
}

let run spec ~m =
  let beta = Lower_bound.beta_of_bounds ~m spec.Spec.bounds in
  let bound = Lower_bound.communication spec ~m in
  let lp = Tiling.solve_lp spec ~beta in
  let tile = Tiling.of_lambda spec ~m lp.Tiling.lambda in
  let traffic = Tiling.analytic_traffic spec tile in
  let moved = traffic.Tiling.reads +. traffic.Tiling.writes in
  {
    spec;
    m;
    beta;
    bound;
    lp;
    tile;
    tile_volume = Tiling.volume tile;
    tile_max_footprint = Tiling.max_footprint spec tile;
    tiles = Tiling.num_tiles spec tile;
    traffic;
    attainment = (if bound.Lower_bound.words > 0.0 then moved /. bound.Lower_bound.words else nan);
  }

let pp fmt r =
  Format.fprintf fmt "@[<v>%a@,%a@,tile = %a  (volume %d, max footprint %d / M = %d, %d tiles)@,\
                      tiled schedule traffic: %.4g reads + %.4g writes@,\
                      attainment (traffic / lower bound) = %.3f@]"
    Spec.pp r.spec Lower_bound.pp_bound r.bound (Tiling.pp r.spec) r.tile r.tile_volume
    r.tile_max_footprint r.m r.tiles r.traffic.Tiling.reads r.traffic.Tiling.writes r.attainment
