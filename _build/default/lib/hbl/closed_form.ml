type piece = { constant : Rat.t; coeffs : Rat.t array }

type t = { loops : string array; box : Rat.t; pieces : piece list }

let eval_piece p beta =
  let acc = ref p.constant in
  Array.iteri (fun i c -> if not (Rat.is_zero c) then acc := Rat.add !acc (Rat.mul c beta.(i))) p.coeffs;
  !acc

let eval t beta =
  if Array.length beta <> Array.length t.loops then invalid_arg "Closed_form.eval: arity";
  match t.pieces with
  | [] -> invalid_arg "Closed_form.eval: empty form"
  | p :: rest -> List.fold_left (fun acc q -> Rat.min acc (eval_piece q beta)) (eval_piece p beta) rest

(* n-choose-k subset enumeration with early cutoff via a callback. *)
let iter_combinations n k f =
  let choice = Array.make k 0 in
  let rec go pos start =
    if pos = k then f choice
    else
      for v = start to n - (k - pos) do
        choice.(pos) <- v;
        go (pos + 1) (v + 1)
      done
  in
  if k <= n then go 0 0

let binomial n k =
  let k = min k (n - k) in
  if k < 0 then 0.0
  else begin
    let acc = ref 1.0 in
    for i = 0 to k - 1 do
      acc := !acc *. float_of_int (n - i) /. float_of_int (i + 1)
    done;
    !acc
  end

let compute ?(box = Rat.of_int 4) spec =
  let d = Spec.num_loops spec and n = Spec.num_arrays spec in
  let nv = d + n in
  (* Constraint rows of the dual polyhedron, as (coeffs, rhs) pairs over
     the variables (zeta_1..zeta_d, s_1..s_n):
       row i < d:        zeta_i + sum_{j in R_i} s_j >= 1
       row d + k:        var_k >= 0 *)
  let rows =
    Array.init (d + nv) (fun r ->
      if r < d then begin
        let coeffs = Array.make nv Rat.zero in
        coeffs.(r) <- Rat.one;
        List.iter (fun j -> coeffs.(d + j) <- Rat.one) (Spec.touching_arrays spec r);
        (coeffs, Rat.one)
      end
      else begin
        let coeffs = Array.make nv Rat.zero in
        coeffs.(r - d) <- Rat.one;
        (coeffs, Rat.zero)
      end)
  in
  if binomial (d + nv) nv > 1e6 then
    invalid_arg "Closed_form.compute: shape too large for vertex enumeration";
  let satisfied point =
    Array.for_all
      (fun (coeffs, rhs) -> Rat.compare (Vec.dot coeffs point) rhs >= 0)
      rows
  in
  let vertices = Hashtbl.create 64 in
  iter_combinations (d + nv) nv (fun choice ->
    let a = Mat.init nv nv (fun i j -> (fst rows.(choice.(i))).(j)) in
    let rhs = Array.init nv (fun i -> snd rows.(choice.(i))) in
    if Mat.rank a = nv then begin
      match Mat.solve a rhs with
      | Some point when satisfied point ->
        let key = String.concat "," (List.map Rat.to_string (Array.to_list point)) in
        if not (Hashtbl.mem vertices key) then Hashtbl.add vertices key point
      | _ -> ()
    end);
  let piece_of_vertex point =
    let constant = ref Rat.zero in
    for j = 0 to n - 1 do
      constant := Rat.add !constant point.(d + j)
    done;
    { constant = !constant; coeffs = Array.sub point 0 d }
  in
  let raw_pieces =
    Hashtbl.fold (fun _ point acc -> piece_of_vertex point :: acc) vertices []
  in
  (* Dedupe identical affine functions. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let key =
        Rat.to_string p.constant ^ "|"
        ^ String.concat "," (List.map Rat.to_string (Array.to_list p.coeffs))
      in
      if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key p)
    raw_pieces;
  let pieces = Hashtbl.fold (fun _ p acc -> p :: acc) tbl [] in
  (* Deterministic order: by constant, then coefficients. *)
  let cmp p q =
    let c = Rat.compare p.constant q.constant in
    if c <> 0 then c
    else begin
      let rec go i =
        if i >= d then 0
        else begin
          let c = Rat.compare p.coeffs.(i) q.coeffs.(i) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    end
  in
  let pieces = List.sort cmp pieces in
  (* Sequentially drop pieces that are nowhere strictly minimal on the
     box: each drop is sound because the remaining pieces pointwise attain
     the same minimum. *)
  let strictly_minimal_somewhere p others =
    match others with
    | [] -> true
    | _ ->
      (* Variables: beta_1..beta_d, delta. Maximize delta subject to
           g_q(beta) - g_p(beta) >= delta   for all other pieces q
           beta_i <= box. *)
      let nvars = d + 1 in
      let obj = Array.init nvars (fun v -> if v = d then Rat.one else Rat.zero) in
      let constrs =
        List.map
          (fun q ->
            let coeffs =
              Array.init nvars (fun v ->
                if v = d then Rat.minus_one else Rat.sub q.coeffs.(v) p.coeffs.(v))
            in
            Lp.constr coeffs Lp.Ge (Rat.sub p.constant q.constant))
          others
        @ List.init d (fun i ->
            let coeffs = Array.make nvars Rat.zero in
            coeffs.(i) <- Rat.one;
            Lp.constr coeffs Lp.Le box)
      in
      (match Simplex.solve (Lp.make Lp.Maximize obj constrs) with
      | Simplex.Optimal sol -> Rat.sign sol.Simplex.objective > 0
      | Simplex.Unbounded _ -> true
      | Simplex.Infeasible -> false)
  in
  let rec prune kept = function
    | [] -> List.rev kept
    | p :: rest ->
      if strictly_minimal_somewhere p (List.rev_append kept rest) then prune (p :: kept) rest
      else prune kept rest
  in
  let pieces = prune [] pieces in
  { loops = spec.Spec.loops; box; pieces }

let num_pieces t = List.length t.pieces

(* ------------------------------------------------------------------ *)
(* Parametric critical regions                                        *)
(* ------------------------------------------------------------------ *)

type region = {
  piece : piece;
  inequalities : (Rat.t array * Rat.t) list;
  witness : Rat.t array;
}

(* A strictly interior point of piece [p]'s region: maximize the margin
   delta with g_q - g_p >= delta for all other pieces, inside the box.
   Kept pieces are strictly minimal somewhere, so delta > 0 exists. *)
let interior_witness ~box ~d p others =
  match others with
  | [] -> Array.make d (Rat.div box Rat.two)
  | _ ->
    let nvars = d + 1 in
    let obj = Array.init nvars (fun v -> if v = d then Rat.one else Rat.zero) in
    let constrs =
      List.map
        (fun q ->
          let coeffs =
            Array.init nvars (fun v ->
              if v = d then Rat.minus_one else Rat.sub q.coeffs.(v) p.coeffs.(v))
          in
          Lp.constr coeffs Lp.Ge (Rat.sub p.constant q.constant))
        others
      @ List.init d (fun i ->
          let coeffs = Array.make nvars Rat.zero in
          coeffs.(i) <- Rat.one;
          Lp.constr coeffs Lp.Le box)
    in
    let sol = Simplex.solve_exn (Lp.make Lp.Maximize obj constrs) in
    Array.sub sol.Simplex.primal 0 d

let regions t =
  let d = Array.length t.loops in
  List.map
    (fun p ->
      let others = List.filter (fun q -> q != p) t.pieces in
      let inequalities =
        List.map
          (fun q ->
            (Array.map2 (fun qc pc -> Rat.sub qc pc) q.coeffs p.coeffs, Rat.sub p.constant q.constant))
          others
      in
      { piece = p; inequalities; witness = interior_witness ~box:t.box ~d p others })
    t.pieces

let region_contains r beta =
  List.for_all
    (fun (a, c) ->
      let lhs = ref Rat.zero in
      Array.iteri (fun i ai -> lhs := Rat.add !lhs (Rat.mul ai beta.(i))) a;
      Rat.compare !lhs c >= 0)
    r.inequalities

let pp_linear loops fmt coeffs =
  let printed = ref false in
  Array.iteri
    (fun i c ->
      if not (Rat.is_zero c) then begin
        if !printed then Format.fprintf fmt " + ";
        if not (Rat.equal c Rat.one) then Format.fprintf fmt "%a*" Rat.pp c;
        Format.fprintf fmt "b(%s)" loops.(i);
        printed := true
      end)
    coeffs;
  if not !printed then Format.pp_print_string fmt "0"

let pp_region ~loops fmt r =
  Format.fprintf fmt "@[<v 2>piece ";
  let p = r.piece in
  if not (Rat.is_zero p.constant) then Format.fprintf fmt "%a" Rat.pp p.constant;
  if not (Rat.is_zero p.constant) && not (Vec.is_zero p.coeffs) then
    Format.fprintf fmt " + ";
  if not (Vec.is_zero p.coeffs) then pp_linear loops fmt p.coeffs;
  if Rat.is_zero p.constant && Vec.is_zero p.coeffs then Format.fprintf fmt "0";
  Format.fprintf fmt " is optimal where:@,";
  List.iter
    (fun (a, c) -> Format.fprintf fmt "%a >= %a@," (pp_linear loops) a Rat.pp c)
    r.inequalities;
  Format.fprintf fmt "(witness beta = [%s])@]"
    (String.concat "; " (List.map Rat.to_string (Array.to_list r.witness)))

let pp fmt t =
  Format.fprintf fmt "min(";
  List.iteri
    (fun idx p ->
      if idx > 0 then Format.fprintf fmt ", ";
      let printed = ref false in
      if not (Rat.is_zero p.constant) then begin
        Format.fprintf fmt "%a" Rat.pp p.constant;
        printed := true
      end;
      Array.iteri
        (fun i c ->
          if not (Rat.is_zero c) then begin
            if !printed then Format.fprintf fmt " + ";
            if not (Rat.equal c Rat.one) then Format.fprintf fmt "%a*" Rat.pp c;
            Format.fprintf fmt "b(%s)" t.loops.(i);
            printed := true
          end)
        p.coeffs;
      if not !printed then Format.fprintf fmt "0")
    t.pieces;
  Format.fprintf fmt ")"
