(** Piecewise-linear closed form of the optimal tile exponent (Section 7).

    For a fixed loop-nest shape, the optimal tile cardinality is
    [M^f(beta_1, .., beta_d)] where [f] is piecewise linear in the
    log-bounds [beta_i = log_M L_i]. The paper obtains [f] by feeding LP
    (5.1) to a multiparametric LP solver; here we compute it directly:
    [f(beta) = min] over the vertices [(zeta, s)] of the dual polyhedron
    [{zeta, s >= 0 : zeta_i + sum_{j in R_i} s_j >= 1}] of the affine
    functions [sum_j s_j + sum_i zeta_i beta_i]. Vertices are enumerated
    exactly (the polyhedra here are tiny), and affine pieces that are
    nowhere strictly minimal on the box [0 <= beta_i <= box] are pruned
    with an auxiliary LP.

    For matmul this yields the familiar
    [f(beta) = min(3/2, 1 + beta_1, 1 + beta_2, 1 + beta_3)]. *)

type piece = {
  constant : Rat.t;  (** [sum_j s_j] at the vertex *)
  coeffs : Rat.t array;  (** [zeta], one coefficient per loop *)
}

type t = private {
  loops : string array;
  box : Rat.t;  (** the pieces form the exact minimum on [[0, box]^d] *)
  pieces : piece list;
}

val compute : ?box:Rat.t -> Spec.t -> t
(** Default box upper bound is 4 (i.e. loop bounds up to [M^4]).
    @raise Invalid_argument if the shape is too large to enumerate
    (more than [10^6] candidate bases). *)

val eval : t -> Rat.t array -> Rat.t
(** [min] of the pieces at [beta]. Agrees with the LP-(5.1) optimum for
    any [beta] inside the box (property-tested). *)

val eval_piece : piece -> Rat.t array -> Rat.t
val num_pieces : t -> int
val pp : Format.formatter -> t -> unit

(** {1 Parametric regions}

    The multiparametric-LP view ([BBM03], as cited in Section 7): each
    affine piece is optimal on a polyhedral {e critical region} of
    beta-space. *)

type region = {
  piece : piece;
  inequalities : (Rat.t array * Rat.t) list;
      (** [(a, c)] meaning the half-space [a . beta >= c]; the region is
          their intersection with the box [0 <= beta_i <= box] *)
  witness : Rat.t array;
      (** a beta strictly inside the region (where the piece is the
          unique minimum) *)
}

val regions : t -> region list
(** One region per piece; regions cover the box and overlap only on
    their boundaries. *)

val region_contains : region -> Rat.t array -> bool
val pp_region : loops:string array -> Format.formatter -> region -> unit
