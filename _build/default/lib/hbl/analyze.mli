(** One-call analysis: lower bound + optimal tile + attainment check.

    This is the high-level entry point the examples and the CLI use; it
    strings together {!Lower_bound}, {!Tiling} and the bookkeeping needed
    to judge how close the constructed tiling comes to the bound. *)

type report = {
  spec : Spec.t;
  m : int;
  beta : Rat.t array;
  bound : Lower_bound.bound;  (** the arbitrary-bounds communication lower bound *)
  lp : Tiling.lp_solution;  (** continuous LP-(5.1) solution *)
  tile : int array;  (** integer tile dimensions *)
  tile_volume : int;
  tile_max_footprint : int;
  tiles : int;  (** number of tiles covering the iteration space *)
  traffic : Tiling.traffic;  (** analytic words moved by the tiled schedule *)
  attainment : float;
      (** (reads+writes) / lower bound — small constant when the theory is
          tight; the interesting experimental quantity *)
}

val run : Spec.t -> m:int -> report

val pp : Format.formatter -> report -> unit
