(** Communication lower bounds for arbitrary loop bounds (Section 4).

    The central quantity is the optimal tile-size exponent
    [k_hat = min_{Q subseteq [d]} k(Q)]: any execution segment that
    touches at most [M] words of each array covers at most [M^k_hat]
    iterations (Theorem 2), hence moving the whole iteration space through
    a cache of [M] words costs at least
    [(prod_i L_i / M^k_hat) * M = prod_i L_i * M^(1 - k_hat)] words of
    traffic.

    Two independent computations of [k_hat] are provided: the literal
    [2^d] enumeration over small-index subsets [Q], and a single solve of
    the dual tiling LP (Theorem 3 says they agree; tests assert it). *)

type exponent = {
  k_hat : Rat.t;  (** [log_M] of the tile-size upper bound *)
  witness_q : int list;  (** a minimizing small-index set [Q] *)
  shat : Rat.t array;  (** the per-array exponents achieving [k(Q)] *)
}

val beta_of_bounds : m:int -> int array -> Rat.t array
(** [beta_of_bounds ~m bounds] is [log_M L_i] for each loop, capped below
    at 0 ([L_i = 1] gives [beta_i = 0]) and converted to an exact rational
    via continued fractions (denominator at most [10^6] — far finer than
    any tile rounding effect).
    @raise Invalid_argument if [m < 2] or some bound is non-positive. *)

val beta_pow : base:int -> m_exp:int -> int -> Rat.t
(** Exact [beta] for power-of-[base] sizes: with [M = base^m_exp] and
    [L = base^l_exp], [beta = l_exp / m_exp] exactly. The argument is the
    actual bound [L]; it must be a power of [base].
    @raise Invalid_argument otherwise. *)

val k_of_q : Spec.t -> beta:Rat.t array -> q:int list -> Rat.t
(** Least Theorem-2 exponent for a fixed [Q] (see {!Hbl_lp.theorem2_q}). *)

val k_of_q_literal : Spec.t -> beta:Rat.t array -> q:int list -> Rat.t
(** The paper's literal formula: solve the [Q]-reduced HBL LP for
    [s_hat], then evaluate
    [sum_i s_hat_i + sum_{j in Q, sum_{i in R_j} s_hat_i <= 1}
       beta_j (1 - sum_{i in R_j} s_hat_i)].
    May exceed {!k_of_q} when the reduced LP has multiple optima; always a
    valid upper-bound exponent. *)

val exponent_by_enumeration : ?max_dim:int -> Spec.t -> beta:Rat.t array -> exponent
(** [min_Q k(Q)] over all [2^d] subsets.
    @raise Invalid_argument if [d > max_dim] (default 20). *)

val exponent_by_lp : Spec.t -> beta:Rat.t array -> exponent
(** Same value via one dual-tiling-LP solve; [witness_q] is read off the
    optimal dual solution ([Q = {i : zeta_i > 0}], Theorem 3 case
    analysis). *)

type bound = {
  exponent : exponent;
  m : int;
  iterations : float;  (** [prod_i L_i] *)
  tile_cap : float;  (** [M^k_hat]: max iterations per cache-full of data *)
  words : float;
      (** the headline bound, valid in every regime:
          [max(words_paper, trivial_words)] when the iteration space
          needs more than one tile, and [trivial_words] when everything
          fits one cache-full (the Section-6.3 caveat, where the paper's
          formula charges a full [M] and over-states the requirement) *)
  words_paper : float;
      (** the paper's literal formula [iterations / tile_cap * M] — what
          the reproduction tables compare against Section 6's closed
          forms *)
  words_classic : float;
      (** the Section-3 large-bounds bound [iterations * M^(1 - s_HBL)],
          for comparison; not valid to quote when bounds are small —
          it can exceed or undershoot the true requirement *)
  trivial_words : float;  (** size of all arrays: read inputs + write outputs once *)
}

val communication : Spec.t -> m:int -> bound
(** The headline result: arbitrary-bounds communication lower bound for
    executing the whole nest with a cache of [m] words. Uses
    {!exponent_by_lp} and {!beta_of_bounds}. *)

val pp_bound : Format.formatter -> bound -> unit
