let ones n = Array.make n Rat.one

let check_beta spec beta =
  if Array.length beta <> Spec.num_loops spec then invalid_arg "beta arity mismatch";
  Array.iter (fun b -> if Rat.sign b < 0 then invalid_arg "beta must be non-negative") beta

(* One >= 1 constraint per loop index i: sum over arrays touching i. *)
let support_constraints spec ~skip =
  let d = Spec.num_loops spec and n = Spec.num_arrays spec in
  let phi = Spec.support_matrix spec in
  let constrs = ref [] in
  for i = d - 1 downto 0 do
    if not (List.mem i skip) then begin
      let coeffs = Array.init n (fun j -> Rat.of_int phi.(j).(i)) in
      constrs :=
        Lp.constr ~name:(Printf.sprintf "cover_%s" spec.Spec.loops.(i)) coeffs Lp.Ge Rat.one
        :: !constrs
    end
  done;
  !constrs

let hbl spec =
  let n = Spec.num_arrays spec in
  let var_names = Array.map (fun (a : Spec.array_ref) -> "s_" ^ a.Spec.aname) spec.Spec.arrays in
  Lp.make ~var_names Lp.Minimize (ones n) (support_constraints spec ~skip:[])

let reduced_hbl spec ~removed =
  let d = Spec.num_loops spec in
  List.iter
    (fun i -> if i < 0 || i >= d then invalid_arg "Hbl_lp.reduced_hbl: index out of range")
    removed;
  let n = Spec.num_arrays spec in
  let var_names = Array.map (fun (a : Spec.array_ref) -> "s_" ^ a.Spec.aname) spec.Spec.arrays in
  Lp.make ~var_names Lp.Minimize (ones n) (support_constraints spec ~skip:removed)

let tiling spec ~beta =
  check_beta spec beta;
  let d = Spec.num_loops spec in
  let phi = Spec.support_matrix spec in
  let array_constrs =
    Array.to_list
      (Array.mapi
         (fun j (a : Spec.array_ref) ->
           let coeffs = Array.init d (fun i -> Rat.of_int phi.(j).(i)) in
           Lp.constr ~name:(Printf.sprintf "fit_%s" a.Spec.aname) coeffs Lp.Le Rat.one)
         spec.Spec.arrays)
  in
  let bound_constrs =
    List.init d (fun i ->
      let coeffs = Array.make d Rat.zero in
      coeffs.(i) <- Rat.one;
      Lp.constr ~name:(Printf.sprintf "loop_%s" spec.Spec.loops.(i)) coeffs Lp.Le beta.(i))
  in
  let var_names = Array.map (fun l -> "lambda_" ^ l) spec.Spec.loops in
  Lp.make ~var_names Lp.Maximize (ones d) (array_constrs @ bound_constrs)

let dual_tiling spec ~beta =
  check_beta spec beta;
  let d = Spec.num_loops spec and n = Spec.num_arrays spec in
  let phi = Spec.support_matrix spec in
  (* Variables: zeta_1..zeta_d then s_1..s_n, as in (5.6). *)
  let obj = Array.init (d + n) (fun v -> if v < d then beta.(v) else Rat.one) in
  let constrs =
    List.init d (fun i ->
      let coeffs =
        Array.init (d + n) (fun v ->
          if v < d then if v = i then Rat.one else Rat.zero
          else Rat.of_int phi.(v - d).(i))
      in
      Lp.constr ~name:(Printf.sprintf "dual_%s" spec.Spec.loops.(i)) coeffs Lp.Ge Rat.one)
  in
  let var_names =
    Array.init (d + n) (fun v ->
      if v < d then "zeta_" ^ spec.Spec.loops.(v)
      else "s_" ^ spec.Spec.arrays.(v - d).Spec.aname)
  in
  Lp.make ~var_names Lp.Minimize obj constrs

let theorem2_q spec ~beta ~q =
  check_beta spec beta;
  let d = Spec.num_loops spec and n = Spec.num_arrays spec in
  List.iter (fun i -> if i < 0 || i >= d then invalid_arg "Hbl_lp.theorem2_q: index out of range") q;
  let phi = Spec.support_matrix spec in
  let nq = List.length q in
  let q_arr = Array.of_list q in
  (* Variables: s_1..s_n then t_j for j in q. *)
  let obj = Array.init (n + nq) (fun v -> if v < n then Rat.one else beta.(q_arr.(v - n))) in
  let reduced =
    List.map
      (fun (c : Lp.constr) ->
        Lp.constr ~name:c.Lp.cname
          (Array.init (n + nq) (fun v -> if v < n then c.Lp.coeffs.(v) else Rat.zero))
          c.Lp.relation c.Lp.rhs)
      (support_constraints spec ~skip:q)
  in
  let slack_constrs =
    List.mapi
      (fun idx j ->
        (* t_j + sum_{i in R_j} s_i >= 1 encodes t_j >= 1 - sum. *)
        let coeffs =
          Array.init (n + nq) (fun v ->
            if v < n then Rat.of_int phi.(v).(j)
            else if v - n = idx then Rat.one
            else Rat.zero)
        in
        Lp.constr ~name:(Printf.sprintf "small_%s" spec.Spec.loops.(j)) coeffs Lp.Ge Rat.one)
      q
  in
  let var_names =
    Array.init (n + nq) (fun v ->
      if v < n then "s_" ^ spec.Spec.arrays.(v).Spec.aname
      else "t_" ^ spec.Spec.loops.(q_arr.(v - n)))
  in
  Lp.make ~var_names Lp.Minimize obj (reduced @ slack_constrs)

let s_hbl spec = (Simplex.solve_exn (hbl spec)).Simplex.objective
