lib/hbl/hbl_lp.ml: Array List Lp Printf Rat Simplex Spec
