lib/hbl/closed_form.ml: Array Format Hashtbl List Lp Mat Rat Simplex Spec String Vec
