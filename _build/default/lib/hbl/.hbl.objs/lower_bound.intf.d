lib/hbl/lower_bound.mli: Format Rat Spec
