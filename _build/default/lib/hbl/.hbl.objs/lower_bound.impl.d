lib/hbl/lower_bound.ml: Array Float Format Hbl_lp List Printf Rat Simplex Spec String
