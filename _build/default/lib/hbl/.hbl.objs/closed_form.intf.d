lib/hbl/closed_form.mli: Format Rat Spec
