lib/hbl/alpha_family.ml: Array List Rat Spec Stdlib Tiling
