lib/hbl/analyze.mli: Format Lower_bound Rat Spec Tiling
