lib/hbl/hbl_lp.mli: Lp Rat Spec
