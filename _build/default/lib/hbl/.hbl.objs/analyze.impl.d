lib/hbl/analyze.ml: Format Lower_bound Rat Spec Tiling
