lib/hbl/tiling.mli: Format Rat Spec
