lib/hbl/subgroup_check.ml: Array List Mat Random Rat Spec
