lib/hbl/alpha_family.mli: Rat Spec
