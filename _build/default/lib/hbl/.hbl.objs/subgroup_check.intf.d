lib/hbl/subgroup_check.mli: Rat Spec
