lib/hbl/tiling.ml: Array Float Format Hbl_lp List Lower_bound Rat Simplex Spec Stdlib
