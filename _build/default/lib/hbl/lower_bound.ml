type exponent = { k_hat : Rat.t; witness_q : int list; shat : Rat.t array }

let beta_of_bounds ~m bounds =
  if m < 2 then invalid_arg "Lower_bound.beta_of_bounds: cache size must be >= 2";
  Array.map
    (fun l ->
      if l < 1 then invalid_arg "Lower_bound.beta_of_bounds: non-positive loop bound"
      else if l = 1 then Rat.zero
      else Rat.rationalize (log (float_of_int l) /. log (float_of_int m)))
    bounds

let beta_pow ~base ~m_exp l =
  if base < 2 || m_exp < 1 then invalid_arg "Lower_bound.beta_pow: need base >= 2, m_exp >= 1";
  let rec log_exact acc v =
    if v = 1 then Some acc else if v mod base <> 0 then None else log_exact (acc + 1) (v / base)
  in
  match log_exact 0 l with
  | Some e -> Rat.of_ints e m_exp
  | None -> invalid_arg (Printf.sprintf "Lower_bound.beta_pow: %d is not a power of %d" l base)

let k_of_q spec ~beta ~q =
  (Simplex.solve_exn (Hbl_lp.theorem2_q spec ~beta ~q)).Simplex.objective

let k_of_q_literal spec ~beta ~q =
  let sol = Simplex.solve_exn (Hbl_lp.reduced_hbl spec ~removed:q) in
  let shat = sol.Simplex.primal in
  let acc = ref (Array.fold_left Rat.add Rat.zero shat) in
  List.iter
    (fun j ->
      let rj = Spec.touching_arrays spec j in
      let s_sum = List.fold_left (fun a i -> Rat.add a shat.(i)) Rat.zero rj in
      if Rat.compare s_sum Rat.one <= 0 then
        acc := Rat.add !acc (Rat.mul beta.(j) (Rat.sub Rat.one s_sum)))
    q;
  !acc

let exponent_by_enumeration ?(max_dim = 20) spec ~beta =
  let d = Spec.num_loops spec in
  if d > max_dim then
    invalid_arg
      (Printf.sprintf "Lower_bound.exponent_by_enumeration: d = %d exceeds max_dim = %d" d max_dim);
  let n = Spec.num_arrays spec in
  let best = ref None in
  for mask = 0 to (1 lsl d) - 1 do
    let q = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init d (fun i -> i)) in
    let sol = Simplex.solve_exn (Hbl_lp.theorem2_q spec ~beta ~q) in
    let k = sol.Simplex.objective in
    match !best with
    | Some (k0, _, _) when Rat.compare k0 k <= 0 -> ()
    | _ -> best := Some (k, q, Array.sub sol.Simplex.primal 0 n)
  done;
  match !best with
  | Some (k_hat, witness_q, shat) -> { k_hat; witness_q; shat }
  | None -> assert false

let exponent_by_lp spec ~beta =
  let d = Spec.num_loops spec and n = Spec.num_arrays spec in
  let sol = Simplex.solve_exn (Hbl_lp.dual_tiling spec ~beta) in
  let zeta = Array.sub sol.Simplex.primal 0 d in
  let shat = Array.sub sol.Simplex.primal d n in
  let witness_q = List.filter (fun i -> Rat.sign zeta.(i) > 0) (List.init d (fun i -> i)) in
  { k_hat = sol.Simplex.objective; witness_q; shat }

type bound = {
  exponent : exponent;
  m : int;
  iterations : float;
  tile_cap : float;
  words : float;
  words_paper : float;
  words_classic : float;
  trivial_words : float;
}

let pow_m ~m (e : Rat.t) = Float.exp (Rat.to_float e *. log (float_of_int m))

let communication spec ~m =
  let beta = beta_of_bounds ~m spec.Spec.bounds in
  let exponent = exponent_by_lp spec ~beta in
  let iterations =
    Array.fold_left (fun acc l -> acc *. float_of_int l) 1.0 spec.Spec.bounds
  in
  let tile_cap = pow_m ~m exponent.k_hat in
  let words_paper = iterations /. tile_cap *. float_of_int m in
  let s_hbl = Hbl_lp.s_hbl spec in
  let words_classic = iterations *. pow_m ~m (Rat.sub Rat.one s_hbl) in
  let trivial_words = float_of_int (Spec.total_array_words spec) in
  (* The formula charges M words per tile; with a single tile that
     over-states the requirement (Section 6.3's caveat), so fall back to
     the compulsory traffic in that regime. *)
  let words =
    if iterations > tile_cap *. 1.0000001 then Float.max words_paper trivial_words
    else trivial_words
  in
  { exponent; m; iterations; tile_cap; words; words_paper; words_classic; trivial_words }

let pp_bound fmt b =
  Format.fprintf fmt
    "@[<v>cache M = %d words@,iterations = %.4g@,tile-size cap M^k = %.4g (k = %a = %.4f)@,\
     small-index witness Q = {%s}@,lower bound = %.4g words (paper formula %.4g)@,\
     classic (large-bounds) formula = %.4g words@,trivial array-size bound = %.4g words@]"
    b.m b.iterations b.tile_cap Rat.pp b.exponent.k_hat
    (Rat.to_float b.exponent.k_hat)
    (String.concat "," (List.map string_of_int b.exponent.witness_q))
    b.words b.words_paper b.words_classic b.trivial_words
