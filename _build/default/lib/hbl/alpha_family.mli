(** The alpha-parameterized family of optimal matmul tilings (Section 6.1).

    When the third matmul bound is small ([beta_3 <= 1/2]), every point of
    the segment between the two extreme optimal tiles

    - [M/L_3 x L_3 x L_3]  ([alpha = 0]) and
    - [sqrt M x sqrt M x L_3]  ([alpha = 1])

    optimizes LP (5.1):
    [lambda_1 = alpha/2 + (1 - alpha)(1 - beta_3)],
    [lambda_2 = alpha/2 + (1 - alpha) beta_3], [lambda_3 = beta_3],
    all with tile cardinality [M * L_3]. The paper notes this freedom is
    what lets a tuner pick tiles aligned with cache lines or vector units.
    These functions are specific to matmul-shaped nests (3 loops, 3 arrays
    with supports [{1,3}, {1,2}, {2,3}]). *)

val lambda : beta3:Rat.t -> alpha:Rat.t -> Rat.t array
(** The lambda vector above.
    @raise Invalid_argument unless [0 <= alpha <= 1] and
    [0 <= beta3 <= 1/2]. *)

val is_matmul_shaped : Spec.t -> bool

val tile : Spec.t -> m:int -> alpha:Rat.t -> int array
(** Integer tile for a matmul-shaped spec whose third bound is small;
    computed via {!Tiling.of_lambda} on {!lambda} with
    [beta3 = log_M L_3].
    @raise Invalid_argument if the spec is not matmul-shaped or
    [L_3 > sqrt M] (the family degenerates to the classical cube there). *)

val sample : ?steps:int -> Spec.t -> m:int -> (Rat.t * int array) list
(** Tiles for [alpha = 0, 1/steps, ..., 1] (default 4 steps). *)
