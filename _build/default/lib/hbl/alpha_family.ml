let lambda ~beta3 ~alpha =
  if Rat.sign alpha < 0 || Rat.compare alpha Rat.one > 0 then
    invalid_arg "Alpha_family.lambda: alpha must lie in [0, 1]";
  if Rat.sign beta3 < 0 || Rat.compare beta3 Rat.half > 0 then
    invalid_arg "Alpha_family.lambda: beta3 must lie in [0, 1/2]";
  let open Rat.Infix in
  let one_minus_alpha = Rat.one - alpha in
  [|
    (alpha * Rat.half) + (one_minus_alpha * (Rat.one - beta3));
    (alpha * Rat.half) + (one_minus_alpha * beta3);
    beta3;
  |]

let is_matmul_shaped spec =
  Spec.num_loops spec = 3
  && Spec.num_arrays spec = 3
  &&
  let supports =
    List.sort Stdlib.compare
      (Array.to_list (Array.map (fun (a : Spec.array_ref) -> Array.to_list a.Spec.support) spec.Spec.arrays))
  in
  supports = [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ]

let tile spec ~m ~alpha =
  if not (is_matmul_shaped spec) then invalid_arg "Alpha_family.tile: spec is not matmul-shaped";
  let l3 = spec.Spec.bounds.(2) in
  if float_of_int (l3 * l3) > float_of_int m then
    invalid_arg "Alpha_family.tile: L3 exceeds sqrt M; use the classical cube tile";
  let beta3 =
    if l3 = 1 then Rat.zero
    else Rat.rationalize (log (float_of_int l3) /. log (float_of_int m))
  in
  let beta3 = Rat.min beta3 Rat.half in
  Tiling.of_lambda spec ~m (lambda ~beta3 ~alpha)

let sample ?(steps = 4) spec ~m =
  List.init (steps + 1) (fun i ->
    let alpha = Rat.of_ints i steps in
    (alpha, tile spec ~m ~alpha))
