(* Tests for the tiled-loop code generator, including full round trips:
   the generated C (compiled with gcc) and generated OCaml (run under the
   ocaml toplevel) must compute exactly what a reference interpretation of
   the spec computes. *)

let contains hay needle = Astring.String.is_infix ~affix:needle hay

let mm_small = Kernels.matmul ~l1:6 ~l2:5 ~l3:4

(* ------------------------------------------------------------------ *)
(* Structure / template                                               *)
(* ------------------------------------------------------------------ *)

let test_default_body () =
  Alcotest.(check string) "matmul" "$0 += $1 * $2" (Codegen.default_body mm_small);
  Alcotest.(check string) "write mode" "$0 = $1 * $2"
    (Codegen.default_body
       (Spec.create_exn ~name:"w" ~loops:[| "i"; "j" |] ~bounds:[| 2; 2 |]
          ~arrays:
            [|
              Spec.array_ref ~mode:Spec.Write "O" [ 0; 1 ];
              Spec.array_ref "X" [ 0 ];
              Spec.array_ref "Y" [ 1 ];
            |]))

let test_c_structure () =
  let code = Codegen.emit ~lang:Codegen.C mm_small ~tile:[| 2; 2; 2 |] in
  List.iter
    (fun frag -> Alcotest.(check bool) (frag ^ " present") true (contains code frag))
    [
      "void matmul_tiled(double *C, double *A, double *B)";
      "for (int x1_0 = 0; x1_0 < 6; x1_0 += 2)";
      "for (int x3 = x3_0;";
      "C[(x1) * 4 + x3] += A[(x1) * 5 + x2] * B[(x2) * 4 + x3];";
    ]

let test_ocaml_structure () =
  let code = Codegen.emit ~lang:Codegen.OCaml mm_small ~tile:[| 2; 2; 2 |] in
  List.iter
    (fun frag -> Alcotest.(check bool) (frag ^ " present") true (contains code frag))
    [
      "let matmul_tiled c a b =";
      "for x1_b = 0 to 2 do";
      "c.((x1) * 4 + x3) <- c.((x1) * 4 + x3) +. a.((x1) * 5 + x2) *. b.((x2) * 4 + x3)";
    ];
  (* balanced dones: 6 loops -> 6 dones *)
  let dones =
    List.length (List.filter (fun l -> String.trim l = "done") (String.split_on_char '\n' code))
  in
  Alcotest.(check int) "done count" 6 dones

let test_untiled_structure () =
  let code = Codegen.emit_untiled ~lang:Codegen.C mm_small in
  Alcotest.(check bool) "plain loop" true (contains code "for (int x1 = 0; x1 < 6; x1++)");
  Alcotest.(check bool) "no tile loops" false (contains code "x1_0")

let test_custom_body_and_name () =
  let code =
    Codegen.emit ~lang:Codegen.C ~body:"$0 = $1 + $2" ~function_name:"my kernel!" mm_small
      ~tile:[| 1; 1; 1 |]
  in
  Alcotest.(check bool) "sanitized name" true (contains code "void my_kernel_(");
  Alcotest.(check bool) "custom body" true (contains code "] = A[");
  Alcotest.(check bool) "statement terminated" true (contains code ";")

let test_validation () =
  Alcotest.check_raises "bad tile arity"
    (Invalid_argument "Codegen.emit: tile arity mismatch") (fun () ->
    ignore (Codegen.emit mm_small ~tile:[| 2 |]));
  (match Codegen.emit ~body:"$9 += $1" mm_small ~tile:[| 1; 1; 1 |] with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "mentions $9" true (contains msg "$9")
  | _ -> Alcotest.fail "expected invalid body to raise");
  match Codegen.emit ~body:"$ += $1" mm_small ~tile:[| 1; 1; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bare $ to raise"

let test_name_collisions () =
  (* Arrays "A" and "a" collide after lowercasing in OCaml mode. *)
  let spec =
    Spec.create_exn ~name:"clash" ~loops:[| "i"; "j" |] ~bounds:[| 2; 2 |]
      ~arrays:
        [|
          Spec.array_ref ~mode:Spec.Update "A" [ 0; 1 ];
          Spec.array_ref "a" [ 0 ];
          Spec.array_ref "B" [ 1 ];
        |]
  in
  let code = Codegen.emit ~lang:Codegen.OCaml spec ~tile:[| 1; 1 |] in
  Alcotest.(check bool) "fresh name" true (contains code "a_1")

(* ------------------------------------------------------------------ *)
(* Reference interpreter for round-trip checks                        *)
(* ------------------------------------------------------------------ *)

(* Interpret the spec's multiply-accumulate semantics directly: array 0
   accumulates the product of the other arrays, inputs filled with a
   deterministic pattern. *)
let reference spec =
  let lay = Layout.make spec in
  let mem = Array.make (Layout.total_words lay) 0.0 in
  (* inputs: value = 1 + addr mod 7 *)
  for j = 1 to Spec.num_arrays spec - 1 do
    let base = Layout.base lay j in
    let words = Spec.array_words spec j in
    for k = 0 to words - 1 do
      mem.(base + k) <- 1.0 +. float_of_int ((base + k) mod 7)
    done
  done;
  Schedules.iterate spec Schedules.Untiled (fun point ->
    let acc = ref 1.0 in
    for j = 1 to Spec.num_arrays spec - 1 do
      acc := !acc *. mem.(Layout.address lay j point)
    done;
    let out = Layout.address lay 0 point in
    mem.(out) <- mem.(out) +. !acc);
  let out_words = Spec.array_words spec 0 in
  Array.sub mem (Layout.base lay 0) out_words

let run_cmd cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let with_temp_dir f =
  let dir = Filename.temp_file "codegen" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_c_round_trip () =
  let spec = mm_small in
  let tile = [| 4; 2; 3 |] in
  let expected = reference spec in
  with_temp_dir (fun dir ->
    let src = Filename.concat dir "kern.c" in
    let exe = Filename.concat dir "kern" in
    let oc = open_out src in
    output_string oc "#include <stdio.h>\n";
    output_string oc (Codegen.emit ~lang:Codegen.C ~function_name:"kern" spec ~tile);
    (* driver mirrors the reference interpreter's input pattern *)
    let lay = Layout.make spec in
    Printf.fprintf oc "int main(void) {\n";
    Array.iteri
      (fun j (a : Spec.array_ref) ->
        Printf.fprintf oc "  static double %s[%d];\n" a.Spec.aname (Spec.array_words spec j))
      spec.Spec.arrays;
    Array.iteri
      (fun j (a : Spec.array_ref) ->
        if j > 0 then
          Printf.fprintf oc
            "  for (int k = 0; k < %d; k++) %s[k] = 1.0 + (double)((%d + k) %% 7);\n"
            (Spec.array_words spec j) a.Spec.aname (Layout.base lay j))
      spec.Spec.arrays;
    Printf.fprintf oc "  kern(%s);\n"
      (String.concat ", "
         (Array.to_list (Array.map (fun (a : Spec.array_ref) -> a.Spec.aname) spec.Spec.arrays)));
    Printf.fprintf oc "  for (int k = 0; k < %d; k++) printf(\"%%.1f\\n\", %s[k]);\n"
      (Spec.array_words spec 0) spec.Spec.arrays.(0).Spec.aname;
    Printf.fprintf oc "  return 0;\n}\n";
    close_out oc;
    let status = Sys.command (Printf.sprintf "gcc -O1 -o %s %s 2>/dev/null" exe src) in
    Alcotest.(check int) "gcc succeeds" 0 status;
    let _, out = run_cmd exe in
    let got = List.filter_map float_of_string_opt (String.split_on_char '\n' out) in
    Alcotest.(check int) "output length" (Array.length expected) (List.length got);
    List.iteri
      (fun k v ->
        if Float.abs (v -. expected.(k)) > 1e-9 then
          Alcotest.failf "element %d: C gives %f, reference %f" k v expected.(k))
      got)

let test_ocaml_round_trip () =
  let spec = Kernels.pointwise_conv ~b:2 ~c:3 ~k:2 ~w:3 ~h:2 in
  let tile = [| 2; 2; 1; 3; 2 |] in
  let expected = reference spec in
  with_temp_dir (fun dir ->
    let src = Filename.concat dir "kern.ml" in
    let oc = open_out src in
    output_string oc (Codegen.emit ~lang:Codegen.OCaml ~function_name:"kern" spec ~tile);
    let lay = Layout.make spec in
    let params = ref [] in
    Array.iteri
      (fun j (a : Spec.array_ref) ->
        let name = String.lowercase_ascii a.Spec.aname in
        params := name :: !params;
        Printf.fprintf oc "let %s = Array.make %d 0.0\n" name (Spec.array_words spec j);
        if j > 0 then
          Printf.fprintf oc
            "let () = Array.iteri (fun k _ -> %s.(k) <- 1.0 +. float_of_int ((%d + k) mod 7)) %s\n"
            name (Layout.base lay j) name)
      spec.Spec.arrays;
    Printf.fprintf oc "let () = kern %s\n" (String.concat " " (List.rev !params));
    Printf.fprintf oc "let () = Array.iter (fun v -> Printf.printf \"%%.1f\\n\" v) %s\n"
      (String.lowercase_ascii spec.Spec.arrays.(0).Spec.aname);
    close_out oc;
    let _, out = run_cmd (Printf.sprintf "ocaml %s 2>/dev/null" (Filename.quote src)) in
    let got = List.filter_map float_of_string_opt (String.split_on_char '\n' out) in
    Alcotest.(check int) "output length" (Array.length expected) (List.length got);
    List.iteri
      (fun k v ->
        if Float.abs (v -. expected.(k)) > 1e-9 then
          Alcotest.failf "element %d: OCaml gives %f, reference %f" k v expected.(k))
      got)

let test_generated_c_compiles_for_stock_kernels () =
  with_temp_dir (fun dir ->
    List.iteri
      (fun i (name, spec) ->
        let tile = Tiling.optimal spec ~m:256 in
        let src = Filename.concat dir (Printf.sprintf "k%d.c" i) in
        let oc = open_out src in
        output_string oc (Codegen.emit ~lang:Codegen.C ~function_name:("k" ^ string_of_int i) spec ~tile);
        close_out oc;
        let status = Sys.command (Printf.sprintf "gcc -fsyntax-only %s 2>/dev/null" src) in
        Alcotest.(check int) (name ^ " compiles") 0 status)
      (Kernels.all ()))


(* ------------------------------------------------------------------ *)
(* Structural properties on random specs                              *)
(* ------------------------------------------------------------------ *)

let gen_spec_tile =
  QCheck.Gen.(
    int_range 2 4 >>= fun d ->
    array_size (return d) (int_range 1 9) >>= fun bounds ->
    int_range 2 3 >>= fun n ->
    let arrays =
      Array.init n (fun j ->
        Spec.array_ref
          ~mode:(if j = 0 then Spec.Update else Spec.Read)
          (Printf.sprintf "A%d" j)
          (List.filter (fun i -> i mod n = j || (i + j) mod 2 = 0) (List.init d (fun i -> i))))
    in
    let covered = Array.make d false in
    Array.iter (fun (a : Spec.array_ref) -> Array.iter (fun i -> covered.(i) <- true) a.Spec.support) arrays;
    let arrays =
      Array.mapi
        (fun j (a : Spec.array_ref) ->
          if j = 0 then
            Spec.array_ref ~mode:a.Spec.mode a.Spec.aname
              (Array.to_list a.Spec.support
              @ List.filteri (fun i _ -> not covered.(i)) (List.init d (fun i -> i)))
          else a)
        arrays
    in
    let loops = Array.init d (fun i -> Printf.sprintf "x%d" (i + 1)) in
    match Spec.create ~name:"g" ~loops ~bounds ~arrays with
    | Ok s ->
      array_size (return d) (int_range 1 9) >>= fun raw ->
      return (s, Array.mapi (fun i v -> 1 + (v mod s.Spec.bounds.(i))) raw)
    | Error e -> failwith (Spec.string_of_error e))

let arb_spec_tile =
  QCheck.make
    ~print:(fun (s, t) ->
      Format.asprintf "%a tile=%s" Spec.pp s
        (String.concat "x" (Array.to_list (Array.map string_of_int t))))
    gen_spec_tile

let count_substring hay needle =
  let n = String.length needle in
  let rec go from acc =
    match Astring.String.find_sub ~start:from ~sub:needle hay with
    | Some i -> go (i + n) (acc + 1)
    | None -> acc
  in
  go 0 0

let structure_props =
  [
    QCheck.Test.make ~name:"OCaml output balances for/done" ~count:150 arb_spec_tile
      (fun (spec, tile) ->
        let code = Codegen.emit ~lang:Codegen.OCaml spec ~tile in
        count_substring code "for " = count_substring code "done");
    QCheck.Test.make ~name:"C output balances braces and parens" ~count:150 arb_spec_tile
      (fun (spec, tile) ->
        let code = Codegen.emit ~lang:Codegen.C spec ~tile in
        let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 code in
        count '{' = count '}' && count '(' = count ')' && count '[' = count ']');
    QCheck.Test.make ~name:"every array appears in the body" ~count:150 arb_spec_tile
      (fun (spec, tile) ->
        let code = Codegen.emit ~lang:Codegen.C spec ~tile in
        Array.for_all
          (fun (a : Spec.array_ref) -> Astring.String.is_infix ~affix:(a.Spec.aname ^ "[") code)
          spec.Spec.arrays);
  ]

let () =
  Alcotest.run "codegen"
    [
      ( "structure",
        [
          Alcotest.test_case "default body" `Quick test_default_body;
          Alcotest.test_case "C structure" `Quick test_c_structure;
          Alcotest.test_case "OCaml structure" `Quick test_ocaml_structure;
          Alcotest.test_case "untiled" `Quick test_untiled_structure;
          Alcotest.test_case "custom body/name" `Quick test_custom_body_and_name;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "name collisions" `Quick test_name_collisions;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "C executes correctly" `Quick test_c_round_trip;
          Alcotest.test_case "OCaml executes correctly" `Quick test_ocaml_round_trip;
          Alcotest.test_case "stock kernels compile" `Quick test_generated_c_compiles_for_stock_kernels;
        ] );
      ("structure-properties", List.map QCheck_alcotest.to_alcotest structure_props);
    ]
