(* Tests for the cache simulator: hand-traced LRU/FIFO behaviour, Belady
   OPT correctness on small traces (vs brute force), and classical
   replacement-theory properties. *)

let reads addrs = Array.of_list (List.map Trace.read addrs)

let stats_of ?(line_words = 1) policy capacity addrs =
  Trace.simulate ~line_words ~policy ~capacity (reads addrs)

(* ------------------------------------------------------------------ *)
(* Hand-traced behaviour                                              *)
(* ------------------------------------------------------------------ *)

let test_cold_misses () =
  let s = stats_of Policy.Lru 4 [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "misses" 4 s.Cache.misses;
  Alcotest.(check int) "hits" 0 s.Cache.hits;
  Alcotest.(check int) "no evictions" 0 s.Cache.evictions

let test_hits_when_fits () =
  let s = stats_of Policy.Lru 4 [ 0; 1; 2; 3; 0; 1; 2; 3; 3; 2 ] in
  Alcotest.(check int) "misses" 4 s.Cache.misses;
  Alcotest.(check int) "hits" 6 s.Cache.hits

let test_lru_eviction_order () =
  (* capacity 2: 0 1 2 -> evicts 0; touching 0 again misses, 2 hits *)
  let s = stats_of Policy.Lru 2 [ 0; 1; 2; 2; 0 ] in
  Alcotest.(check int) "misses" 4 s.Cache.misses;
  Alcotest.(check int) "hits" 1 s.Cache.hits

let test_lru_recency_update () =
  (* capacity 2: 0 1 0 2 -> on 2, victim is 1 (0 was refreshed); then 0 hits *)
  let s = stats_of Policy.Lru 2 [ 0; 1; 0; 2; 0 ] in
  Alcotest.(check int) "misses" 3 s.Cache.misses;
  Alcotest.(check int) "hits" 2 s.Cache.hits

let test_fifo_ignores_recency () =
  (* same trace under FIFO: victim on 2 is 0 (inserted first) -> final 0 misses *)
  let s = stats_of Policy.Fifo 2 [ 0; 1; 0; 2; 0 ] in
  Alcotest.(check int) "misses" 4 s.Cache.misses;
  Alcotest.(check int) "hits" 1 s.Cache.hits

let test_opt_keeps_nearest_use () =
  (* capacity 2, trace 0 1 2 0: OPT evicts 1 (never reused), keeping 0. *)
  let s = stats_of Policy.Opt 2 [ 0; 1; 2; 0 ] in
  Alcotest.(check int) "misses" 3 s.Cache.misses;
  Alcotest.(check int) "hits" 1 s.Cache.hits

let test_writeback_accounting () =
  let t = [| Trace.write 0; Trace.read 1; Trace.read 2 |] in
  let s = Trace.simulate ~policy:Policy.Lru ~capacity:2 t in
  (* 0 written (dirty), evicted by 2 -> 1 writeback during run; nothing
     dirty at flush. *)
  Alcotest.(check int) "writebacks" 1 s.Cache.writebacks;
  Alcotest.(check int) "words moved" 4 (Cache.words_moved ~line_words:1 s)

let test_flush_writes_dirty () =
  let t = [| Trace.write 0; Trace.write 1 |] in
  let s = Trace.simulate ~policy:Policy.Lru ~capacity:4 t in
  Alcotest.(check int) "flush writebacks" 2 s.Cache.writebacks

let test_clean_eviction_no_writeback () =
  let s = stats_of Policy.Lru 1 [ 0; 1; 2 ] in
  Alcotest.(check int) "no writebacks" 0 s.Cache.writebacks;
  Alcotest.(check int) "evictions" 2 s.Cache.evictions

let test_rewrite_dirty_once () =
  (* Writing the same line twice then evicting = one writeback. *)
  let t = [| Trace.write 5; Trace.write 5; Trace.read 6 |] in
  let s = Trace.simulate ~policy:Policy.Lru ~capacity:1 t in
  Alcotest.(check int) "one writeback" 1 s.Cache.writebacks

let test_line_granularity () =
  (* line_words = 4: addresses 0..7 are 2 lines. *)
  let s = stats_of ~line_words:4 Policy.Lru 8 [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check int) "2 misses" 2 s.Cache.misses;
  Alcotest.(check int) "6 hits" 6 s.Cache.hits;
  Alcotest.(check int) "words moved" 8 (Cache.words_moved ~line_words:4 s)

let test_online_cache_api () =
  let c = Cache.create ~policy:Policy.Lru ~capacity:2 () in
  Cache.access c ~write:false 10;
  Cache.access c ~write:true 11;
  Alcotest.(check bool) "resident" true (Cache.resident c 10);
  Cache.access c ~write:false 12;
  Alcotest.(check bool) "10 evicted" false (Cache.resident c 10);
  Cache.flush c;
  let s = Cache.stats c in
  Alcotest.(check int) "accesses" 3 s.Cache.accesses;
  Alcotest.(check int) "dirty flush" 1 s.Cache.writebacks;
  Alcotest.(check int) "capacity lines" 2 (Cache.capacity_lines c)

let test_create_validation () =
  Alcotest.check_raises "opt online"
    (Invalid_argument "Cache.create: OPT needs the full trace; use Trace.simulate") (fun () ->
    ignore (Cache.create ~policy:Policy.Opt ~capacity:4 ()));
  Alcotest.check_raises "capacity" (Invalid_argument "Cache.create: capacity below one line")
    (fun () -> ignore (Cache.create ~policy:Policy.Lru ~capacity:0 ()));
  Alcotest.check_raises "line_words" (Invalid_argument "Cache.create: line_words must be positive")
    (fun () -> ignore (Cache.create ~line_words:0 ~policy:Policy.Lru ~capacity:4 ()))

let test_words_touched () =
  Alcotest.(check int) "distinct" 3 (Trace.words_touched (reads [ 0; 1; 0; 2; 1 ]))

(* ------------------------------------------------------------------ *)
(* Brute-force OPT verification                                       *)
(* ------------------------------------------------------------------ *)

(* Minimum achievable misses for a read-only trace by exhaustive search
   over eviction choices. Exponential: keep traces tiny. *)
let brute_force_min_misses capacity trace =
  let n = Array.length trace in
  let module SS = Set.Make (Int) in
  let rec go i cached =
    if i = n then 0
    else begin
      let a = trace.(i).Trace.addr in
      if SS.mem a cached then go (i + 1) cached
      else if SS.cardinal cached < capacity then 1 + go (i + 1) (SS.add a cached)
      else begin
        (* try every victim *)
        SS.fold
          (fun victim best ->
            min best (1 + go (i + 1) (SS.add a (SS.remove victim cached))))
          cached max_int
      end
    end
  in
  go 0 SS.empty

let test_opt_matches_brute_force () =
  let cases =
    [
      (2, [ 0; 1; 2; 0; 1; 2 ]);
      (2, [ 0; 1; 2; 1; 0; 2; 0 ]);
      (3, [ 0; 1; 2; 3; 0; 1; 2; 3 ]);
      (2, [ 4; 4; 4; 4 ]);
      (3, [ 0; 1; 2; 3; 2; 1; 0; 3; 1 ]);
    ]
  in
  List.iter
    (fun (cap, addrs) ->
      let t = reads addrs in
      let opt = (Trace.simulate ~policy:Policy.Opt ~capacity:cap t).Cache.misses in
      let best = brute_force_min_misses cap t in
      Alcotest.(check int)
        (Printf.sprintf "cap=%d trace=%s" cap (String.concat "," (List.map string_of_int addrs)))
        best opt)
    cases

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let gen_trace =
  QCheck.Gen.(
    list_size (int_range 1 200) (pair (int_range 0 20) bool) >>= fun l ->
    return (Array.of_list (List.map (fun (a, w) -> { Trace.addr = a; write = w }) l)))

let arb_trace =
  QCheck.make
    ~print:(fun t ->
      String.concat ","
        (Array.to_list (Array.map (fun a -> Printf.sprintf "%s%d" (if a.Trace.write then "w" else "r") a.Trace.addr) t)))
    gen_trace

let arb_trace_cap = QCheck.pair arb_trace (QCheck.int_range 1 8)

let props =
  [
    QCheck.Test.make ~name:"OPT <= LRU misses" ~count:300 arb_trace_cap (fun (t, cap) ->
      (Trace.simulate ~policy:Policy.Opt ~capacity:cap t).Cache.misses
      <= (Trace.simulate ~policy:Policy.Lru ~capacity:cap t).Cache.misses);
    QCheck.Test.make ~name:"OPT <= FIFO misses" ~count:300 arb_trace_cap (fun (t, cap) ->
      (Trace.simulate ~policy:Policy.Opt ~capacity:cap t).Cache.misses
      <= (Trace.simulate ~policy:Policy.Fifo ~capacity:cap t).Cache.misses);
    QCheck.Test.make ~name:"LRU inclusion: more capacity never hurts" ~count:200
      arb_trace_cap (fun (t, cap) ->
        (Trace.simulate ~policy:Policy.Lru ~capacity:(cap + 1) t).Cache.misses
        <= (Trace.simulate ~policy:Policy.Lru ~capacity:cap t).Cache.misses);
    QCheck.Test.make ~name:"misses >= distinct lines (cold)" ~count:200 arb_trace_cap
      (fun (t, cap) ->
        List.for_all
          (fun p -> (Trace.simulate ~policy:p ~capacity:cap t).Cache.misses >= Trace.words_touched t)
          [ Policy.Lru; Policy.Fifo; Policy.Opt ]);
    QCheck.Test.make ~name:"hits + misses = accesses" ~count:200 arb_trace_cap
      (fun (t, cap) ->
        List.for_all
          (fun p ->
            let s = Trace.simulate ~policy:p ~capacity:cap t in
            s.Cache.hits + s.Cache.misses = Array.length t && s.Cache.accesses = Array.length t)
          [ Policy.Lru; Policy.Fifo; Policy.Opt ]);
    QCheck.Test.make ~name:"writebacks bounded by distinct written lines * misses" ~count:200
      arb_trace_cap (fun (t, cap) ->
        List.for_all
          (fun p ->
            let s = Trace.simulate ~policy:p ~capacity:cap t in
            s.Cache.writebacks <= s.Cache.misses (* each writeback needs a prior allocate *))
          [ Policy.Lru; Policy.Fifo; Policy.Opt ]);
    QCheck.Test.make ~name:"big cache: exactly one miss per distinct line" ~count:200 arb_trace
      (fun t ->
        let s = Trace.simulate ~policy:Policy.Lru ~capacity:1024 t in
        s.Cache.misses = Trace.words_touched t && s.Cache.evictions = 0);
    QCheck.Test.make ~name:"OPT matches brute force (tiny)" ~count:60
      (QCheck.pair
         (QCheck.make
            ~print:(fun t -> String.concat "," (Array.to_list (Array.map (fun a -> string_of_int a.Trace.addr) t)))
            QCheck.Gen.(
              list_size (int_range 1 10) (int_range 0 5) >>= fun l ->
              return (Array.of_list (List.map Trace.read l))))
         (QCheck.int_range 1 3))
      (fun (t, cap) ->
        (Trace.simulate ~policy:Policy.Opt ~capacity:cap t).Cache.misses
        = brute_force_min_misses cap t);
  ]


(* ------------------------------------------------------------------ *)
(* Hierarchy                                                          *)
(* ------------------------------------------------------------------ *)

let test_hierarchy_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Hierarchy.create: need at least one level")
    (fun () -> ignore (Hierarchy.create ~capacities:[||] ()));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Hierarchy.create: capacities must be strictly increasing") (fun () ->
    ignore (Hierarchy.create ~capacities:[| 8; 8 |] ()));
  Alcotest.check_raises "opt" (Invalid_argument "Hierarchy.create: OPT is offline-only")
    (fun () -> ignore (Hierarchy.create ~policy:Policy.Opt ~capacities:[| 2; 4 |] ()))

let test_hierarchy_filtering () =
  (* L1 of 2 words, L2 of 4 words; stream 0 1 2 0 1 2:
     L1 thrashes (all 6 miss); L2 holds all three lines (3 misses). *)
  let h = Hierarchy.create ~capacities:[| 2; 4 |] () in
  List.iter (fun a -> Hierarchy.access h ~write:false a) [ 0; 1; 2; 0; 1; 2 ];
  let s = Hierarchy.stats h in
  Alcotest.(check int) "L1 misses" 6 s.(0).Cache.misses;
  Alcotest.(check int) "L2 accesses = L1 misses" 6 s.(1).Cache.accesses;
  Alcotest.(check int) "L2 misses" 3 s.(1).Cache.misses;
  Alcotest.(check int) "L2 hits" 3 s.(1).Cache.hits

let test_hierarchy_hit_in_l1 () =
  let h = Hierarchy.create ~capacities:[| 4; 16 |] () in
  List.iter (fun a -> Hierarchy.access h ~write:false a) [ 7; 7; 7; 7 ];
  let s = Hierarchy.stats h in
  Alcotest.(check int) "one L1 miss" 1 s.(0).Cache.misses;
  Alcotest.(check int) "L2 sees only the miss" 1 s.(1).Cache.accesses

let test_hierarchy_writeback_cascade () =
  (* Dirty line evicted from L1 must be written into L2. *)
  let h = Hierarchy.create ~capacities:[| 1; 8 |] () in
  Hierarchy.access h ~write:true 0;
  Hierarchy.access h ~write:false 1;
  (* evicts dirty 0 from L1 -> write access hits/installs in L2 *)
  let s = Hierarchy.stats h in
  Alcotest.(check int) "L1 writebacks" 1 s.(0).Cache.writebacks;
  (* L2 saw: miss(0), miss(1), writeback-write(0) = 3 accesses *)
  Alcotest.(check int) "L2 accesses" 3 s.(1).Cache.accesses;
  Hierarchy.flush h;
  let s = Hierarchy.stats h in
  (* after flush, the dirty 0 line leaves L2 too *)
  Alcotest.(check bool) "L2 flushed dirty" true (s.(1).Cache.writebacks >= 1)

let test_hierarchy_traffic_vector () =
  let h = Hierarchy.create ~capacities:[| 2; 8 |] () in
  List.iter (fun a -> Hierarchy.access h ~write:false a) [ 0; 1; 2; 3; 0; 1; 2; 3 ];
  Hierarchy.flush h;
  let t = Hierarchy.traffic h in
  Alcotest.(check int) "two boundaries" 2 (Array.length t);
  Alcotest.(check int) "L1 boundary = 8 (thrash)" 8 t.(0);
  Alcotest.(check int) "memory boundary = 4 (fits)" 4 t.(1);
  Alcotest.(check int) "levels" 2 (Hierarchy.levels h)


let test_hierarchy_fifo_and_lines () =
  (* hierarchy honors both policy and line granularity *)
  let h = Hierarchy.create ~line_words:2 ~policy:Policy.Fifo ~capacities:[| 4; 16 |] () in
  List.iter (fun a -> Hierarchy.access h ~write:false a) [ 0; 1; 2; 3; 0; 1 ];
  let s = Hierarchy.stats h in
  (* lines {0,1} and {2,3}: both fit L1 (2 lines) -> 2 misses, 4 hits *)
  Alcotest.(check int) "L1 misses" 2 s.(0).Cache.misses;
  Alcotest.(check int) "L1 hits" 4 s.(0).Cache.hits;
  Hierarchy.flush h;
  Alcotest.(check int) "memory words" 4 (Hierarchy.traffic h).(1)

let hierarchy_props =
  [
    QCheck.Test.make ~name:"level-k accesses = level-(k-1) misses + writebacks" ~count:150
      (QCheck.pair arb_trace (QCheck.int_range 1 6))
      (fun (t, cap) ->
        let h = Hierarchy.create ~capacities:[| cap; 4 * cap |] () in
        Array.iter (fun a -> Hierarchy.access h ~write:a.Trace.write a.Trace.addr) t;
        let s = Hierarchy.stats h in
        (* before flush: every L1 miss and every dirty L1 eviction reaches L2 *)
        s.(1).Cache.accesses = s.(0).Cache.misses + s.(0).Cache.writebacks);
    QCheck.Test.make ~name:"single-level hierarchy = plain cache" ~count:150
      (QCheck.pair arb_trace (QCheck.int_range 1 8))
      (fun (t, cap) ->
        let h = Hierarchy.create ~capacities:[| cap |] () in
        Array.iter (fun a -> Hierarchy.access h ~write:a.Trace.write a.Trace.addr) t;
        Hierarchy.flush h;
        let hs = (Hierarchy.stats h).(0) in
        let cs = Trace.simulate ~policy:Policy.Lru ~capacity:cap t in
        hs.Cache.misses = cs.Cache.misses && hs.Cache.writebacks = cs.Cache.writebacks);
    QCheck.Test.make ~name:"memory traffic <= single-small-cache traffic" ~count:150
      (QCheck.pair arb_trace (QCheck.int_range 1 6))
      (fun (t, cap) ->
        let h = Hierarchy.create ~capacities:[| cap; 8 * cap |] () in
        Array.iter (fun a -> Hierarchy.access h ~write:a.Trace.write a.Trace.addr) t;
        Hierarchy.flush h;
        let mem = (Hierarchy.traffic h).(1) in
        let single = Cache.words_moved ~line_words:1 (Trace.simulate ~policy:Policy.Lru ~capacity:cap t) in
        mem <= single);
  ]

let () =
  Alcotest.run "cachesim"
    [
      ( "unit",
        [
          Alcotest.test_case "cold misses" `Quick test_cold_misses;
          Alcotest.test_case "hits when fits" `Quick test_hits_when_fits;
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "LRU recency" `Quick test_lru_recency_update;
          Alcotest.test_case "FIFO vs recency" `Quick test_fifo_ignores_recency;
          Alcotest.test_case "OPT lookahead" `Quick test_opt_keeps_nearest_use;
          Alcotest.test_case "writeback accounting" `Quick test_writeback_accounting;
          Alcotest.test_case "flush dirty" `Quick test_flush_writes_dirty;
          Alcotest.test_case "clean eviction" `Quick test_clean_eviction_no_writeback;
          Alcotest.test_case "rewrite dirty once" `Quick test_rewrite_dirty_once;
          Alcotest.test_case "line granularity" `Quick test_line_granularity;
          Alcotest.test_case "online API" `Quick test_online_cache_api;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "words_touched" `Quick test_words_touched;
          Alcotest.test_case "OPT = brute force" `Quick test_opt_matches_brute_force;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "validation" `Quick test_hierarchy_validation;
          Alcotest.test_case "filtering" `Quick test_hierarchy_filtering;
          Alcotest.test_case "hit in L1" `Quick test_hierarchy_hit_in_l1;
          Alcotest.test_case "writeback cascade" `Quick test_hierarchy_writeback_cascade;
          Alcotest.test_case "traffic vector" `Quick test_hierarchy_traffic_vector;
          Alcotest.test_case "fifo + lines" `Quick test_hierarchy_fifo_and_lines;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
      ("hierarchy-properties", List.map QCheck_alcotest.to_alcotest hierarchy_props);
    ]
