(* End-to-end pipelines: DSL text -> analysis -> integer tiling ->
   simulated execution, cross-checking analytic and measured traffic
   against the lower bound for each stock kernel. *)

let analyze_text ?name text ~m =
  let spec = Parser.parse_exn ?name text in
  Analyze.run spec ~m

let test_dsl_to_simulation_matmul () =
  let report = analyze_text "i = 48, j = 48, k = 48 : C[i,k] += A[i,j] * B[j,k]" ~m:512 in
  let spec = report.Analyze.spec in
  (* re-derive a tile under the per-array model scaled for a shared cache *)
  let tile = Tiling.optimal spec ~m:(512 / 3) in
  let run = Executor.run spec ~schedule:(Schedules.Tiled tile) ~capacity:512 in
  let ratio = float_of_int run.Executor.words_moved /. report.Analyze.bound.Lower_bound.words in
  Alcotest.(check bool) "1 <= measured/bound <= 8" true (ratio >= 0.999 && ratio <= 8.0)

let test_all_kernels_pipeline () =
  List.iter
    (fun (name, spec) ->
      let m = 1024 in
      let report = Analyze.run spec ~m in
      Alcotest.(check bool) (name ^ ": tile feasible") true
        (Tiling.is_feasible spec ~m report.Analyze.tile);
      Alcotest.(check bool) (name ^ ": bound positive") true
        (report.Analyze.bound.Lower_bound.words > 0.0);
      (* analytic traffic of the constructed tiling never beats the bound *)
      let moved = report.Analyze.traffic.Tiling.reads +. report.Analyze.traffic.Tiling.writes in
      Alcotest.(check bool) (name ^ ": analytic >= bound") true
        (moved >= report.Analyze.bound.Lower_bound.words *. 0.999))
    (Kernels.all ())

let test_small_kernels_measured_vs_analytic () =
  (* For kernels small enough to simulate, LRU-measured traffic of the
     tiled schedule should not exceed the analytic load-per-tile model by
     much (the model is what the theory accounts), and never fall below
     the lower bound. *)
  let cases =
    [
      ("matmul", Kernels.matmul ~l1:24 ~l2:24 ~l3:24, 256);
      ("matvec", Kernels.matvec ~m:64 ~n:64, 256);
      ("conv", Kernels.pointwise_conv ~b:4 ~c:8 ~k:8 ~w:6 ~h:6, 256);
      ("nbody", Kernels.nbody ~l1:128 ~l2:128, 256);
      ("outer", Kernels.outer_product ~m:64 ~n:64, 256);
    ]
  in
  List.iter
    (fun (name, spec, m) ->
      let n = Spec.num_arrays spec in
      let tile = Tiling.optimal spec ~m:(m / n) in
      let run = Executor.run spec ~schedule:(Schedules.Tiled tile) ~capacity:m in
      let analytic = Tiling.analytic_traffic spec tile in
      let analytic_total = analytic.Tiling.reads +. analytic.Tiling.writes in
      let bound = (Lower_bound.communication spec ~m).Lower_bound.words in
      let measured = float_of_int run.Executor.words_moved in
      if measured < bound *. 0.999 then
        Alcotest.failf "%s: measured %.0f below bound %.0f" name measured bound;
      if measured > analytic_total *. 2.0 +. 64.0 then
        Alcotest.failf "%s: measured %.0f far above analytic %.0f" name measured analytic_total)
    cases

let test_conv_motivating_example () =
  (* The paper's ML motivation: pointwise convolution with few channels.
     The classic tiling is infeasible; ours adapts and still attains the
     bound. *)
  let spec = Kernels.pointwise_conv ~b:8 ~c:4 ~k:8 ~w:8 ~h:8 in
  let m = 2048 in
  let classic = Schedules.classic_tile ~clamp:false spec ~m in
  (match Schedules.validate spec (Schedules.Tiled classic) with
  | Ok () -> Alcotest.fail "classic tile should be infeasible (c=4 < side)"
  | Error _ -> ());
  let report = Analyze.run spec ~m in
  Alcotest.(check bool) "our tile feasible" true
    (Tiling.is_feasible spec ~m report.Analyze.tile);
  Alcotest.(check bool) "attainment" true (report.Analyze.attainment <= 8.0)

let test_report_pp_renders () =
  let report = Analyze.run (Kernels.matmul ~l1:32 ~l2:32 ~l3:4) ~m:256 in
  let s = Format.asprintf "%a" Analyze.pp report in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " in report") true (Astring.String.is_infix ~affix:frag s))
    [ "matmul"; "lower bound"; "tile"; "attainment" ]

let test_closed_form_consistent_with_communication () =
  (* Lower_bound.communication and Closed_form agree on the exponent. *)
  let spec = Kernels.matmul ~l1:512 ~l2:512 ~l3:4 in
  let m = 4096 in
  let cf = Closed_form.compute spec in
  let beta = Lower_bound.beta_of_bounds ~m spec.Spec.bounds in
  let k_cf = Closed_form.eval cf beta in
  let b = Lower_bound.communication spec ~m in
  Alcotest.(check bool) "same exponent" true (Rat.equal k_cf b.Lower_bound.exponent.Lower_bound.k_hat)

let test_alpha_family_same_traffic () =
  (* All members of the alpha family generate (nearly) the same measured
     communication — they are all optimal. *)
  let m = 3072 in
  let spec = Kernels.matmul ~l1:128 ~l2:128 ~l3:4 in
  let runs =
    List.map
      (fun (_, tile) ->
        (Executor.run spec ~schedule:(Schedules.Tiled tile) ~capacity:m).Executor.words_moved)
      (Alpha_family.sample ~steps:4 spec ~m:(m / 3))
  in
  let lo = List.fold_left min max_int runs and hi = List.fold_left max 0 runs in
  Alcotest.(check bool)
    (Printf.sprintf "spread [%d, %d] within 2.5x" lo hi)
    true
    (float_of_int hi /. float_of_int lo < 2.5)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "DSL to simulation" `Quick test_dsl_to_simulation_matmul;
          Alcotest.test_case "all kernels analyze" `Quick test_all_kernels_pipeline;
          Alcotest.test_case "measured vs analytic" `Quick test_small_kernels_measured_vs_analytic;
          Alcotest.test_case "conv motivation" `Quick test_conv_motivating_example;
          Alcotest.test_case "report rendering" `Quick test_report_pp_renders;
          Alcotest.test_case "closed form vs communication" `Quick
            test_closed_form_consistent_with_communication;
          Alcotest.test_case "alpha family traffic" `Quick test_alpha_family_same_traffic;
        ] );
    ]
