(* Tests for rational vectors and matrices. *)

let r = Rat.of_int
let rr = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal
let vec = Alcotest.testable Vec.pp Vec.equal
let mat = Alcotest.testable Mat.pp Mat.equal

(* ------------------------------------------------------------------ *)
(* Vec                                                                *)
(* ------------------------------------------------------------------ *)

let test_vec_basics () =
  let v = Vec.of_ints [ 1; 2; 3 ] in
  Alcotest.(check int) "dim" 3 (Vec.dim v);
  Alcotest.check rat "dot" (r 14) (Vec.dot v v);
  Alcotest.check rat "sum" (r 6) (Vec.sum v);
  Alcotest.check vec "add" (Vec.of_ints [ 2; 4; 6 ]) (Vec.add v v);
  Alcotest.check vec "sub to zero" (Vec.zeros 3) (Vec.sub v v);
  Alcotest.check vec "scale" (Vec.of_ints [ 2; 4; 6 ]) (Vec.scale (r 2) v);
  Alcotest.check vec "neg" (Vec.of_ints [ -1; -2; -3 ]) (Vec.neg v);
  Alcotest.(check bool) "is_nonneg" true (Vec.is_nonneg v);
  Alcotest.(check bool) "is_nonneg neg" false (Vec.is_nonneg (Vec.neg v));
  Alcotest.(check bool) "is_zero" true (Vec.is_zero (Vec.zeros 4));
  Alcotest.check vec "basis" (Vec.of_ints [ 0; 1; 0 ]) (Vec.basis 3 1)

let test_vec_dim_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec: dimension mismatch") (fun () ->
    ignore (Vec.dot (Vec.zeros 2) (Vec.zeros 3)))

(* ------------------------------------------------------------------ *)
(* Mat                                                                *)
(* ------------------------------------------------------------------ *)

let test_mat_basics () =
  let a = Mat.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "rows" 2 (Mat.rows a);
  Alcotest.(check int) "cols" 2 (Mat.cols a);
  Alcotest.check rat "get" (r 3) (Mat.get a 1 0);
  Alcotest.check mat "transpose" (Mat.of_int_rows [ [ 1; 3 ]; [ 2; 4 ] ]) (Mat.transpose a);
  Alcotest.check mat "identity mul" a (Mat.mul a (Mat.identity 2));
  Alcotest.check mat "mul"
    (Mat.of_int_rows [ [ 7; 10 ]; [ 15; 22 ] ])
    (Mat.mul a a);
  Alcotest.check vec "mul_vec" (Vec.of_ints [ 5; 11 ]) (Mat.mul_vec a (Vec.of_ints [ 1; 2 ]));
  Alcotest.check mat "add/sub" a (Mat.sub (Mat.add a a) a);
  Alcotest.check mat "scale" (Mat.of_int_rows [ [ 2; 4 ]; [ 6; 8 ] ]) (Mat.scale (r 2) a)

let test_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows") (fun () ->
    ignore (Mat.of_rows [| [| r 1 |]; [| r 1; r 2 |] |]))

let test_rank () =
  Alcotest.(check int) "full rank" 2 (Mat.rank (Mat.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.(check int) "rank deficient" 1
    (Mat.rank (Mat.of_int_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check int) "zero matrix" 0 (Mat.rank (Mat.zeros 3 3));
  Alcotest.(check int) "tall" 2 (Mat.rank (Mat.of_int_rows [ [ 1; 0 ]; [ 0; 1 ]; [ 1; 1 ] ]));
  Alcotest.(check int) "wide" 2 (Mat.rank (Mat.of_int_rows [ [ 1; 0; 1 ]; [ 0; 1; 1 ] ]))

let test_det () =
  Alcotest.check rat "2x2" (r (-2)) (Mat.det (Mat.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.check rat "singular" Rat.zero (Mat.det (Mat.of_int_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.check rat "identity" Rat.one (Mat.det (Mat.identity 4));
  Alcotest.check rat "3x3" (r 2)
    (Mat.det (Mat.of_int_rows [ [ 2; 0; 1 ]; [ 1; 1; 0 ]; [ 3; 1; 2 ] ]));
  (* swap two rows: determinant flips sign *)
  Alcotest.check rat "row swap" (r (-2))
    (Mat.det (Mat.of_int_rows [ [ 1; 1; 0 ]; [ 2; 0; 1 ]; [ 3; 1; 2 ] ]))

let test_inverse () =
  let a = Mat.of_int_rows [ [ 2; 1 ]; [ 1; 1 ] ] in
  (match Mat.inverse a with
  | None -> Alcotest.fail "should be invertible"
  | Some inv ->
    Alcotest.check mat "a * a^-1 = I" (Mat.identity 2) (Mat.mul a inv);
    Alcotest.check mat "a^-1 * a = I" (Mat.identity 2) (Mat.mul inv a));
  Alcotest.(check bool) "singular gives None" true
    (Mat.inverse (Mat.of_int_rows [ [ 1; 2 ]; [ 2; 4 ] ]) = None)

let test_solve () =
  let a = Mat.of_int_rows [ [ 2; 1 ]; [ 1; 3 ] ] in
  let b = Vec.of_ints [ 5; 10 ] in
  (match Mat.solve a b with
  | None -> Alcotest.fail "solvable"
  | Some x -> Alcotest.check vec "a x = b" b (Mat.mul_vec a x));
  (* inconsistent *)
  let a2 = Mat.of_int_rows [ [ 1; 1 ]; [ 1; 1 ] ] in
  Alcotest.(check bool) "inconsistent" true (Mat.solve a2 (Vec.of_ints [ 1; 2 ]) = None);
  (* underdetermined: returns some valid solution *)
  let a3 = Mat.of_int_rows [ [ 1; 1 ] ] in
  (match Mat.solve a3 (Vec.of_ints [ 3 ]) with
  | None -> Alcotest.fail "underdetermined solvable"
  | Some x -> Alcotest.check rat "sums to 3" (r 3) (Vec.sum x))

let test_fractional_elimination () =
  (* Hilbert-like matrix: exact rational elimination must not lose
     precision. *)
  let h = Mat.init 3 3 (fun i j -> rr 1 (i + j + 1)) in
  Alcotest.check rat "hilbert det" (rr 1 2160) (Mat.det h);
  match Mat.inverse h with
  | None -> Alcotest.fail "hilbert invertible"
  | Some inv -> Alcotest.check mat "roundtrip" (Mat.identity 3) (Mat.mul h inv)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let gen_rat_small = QCheck.Gen.(map2 (fun n d -> Rat.of_ints n d) (int_range (-8) 8) (int_range 1 4))

let gen_mat n =
  QCheck.Gen.(
    map
      (fun cells -> Mat.init n n (fun i j -> cells.(i).(j)))
      (array_size (return n) (array_size (return n) gen_rat_small)))

let arb_mat n =
  QCheck.make
    ~print:(fun m -> Format.asprintf "%a" Mat.pp m)
    (gen_mat n)

let props =
  [
    QCheck.Test.make ~name:"det multiplicative" ~count:100
      (QCheck.pair (arb_mat 3) (arb_mat 3))
      (fun (a, b) -> Rat.equal (Mat.det (Mat.mul a b)) (Rat.mul (Mat.det a) (Mat.det b)));
    QCheck.Test.make ~name:"inverse roundtrip" ~count:100 (arb_mat 3) (fun a ->
      match Mat.inverse a with
      | None -> Rat.is_zero (Mat.det a)
      | Some inv -> Mat.equal (Mat.mul a inv) (Mat.identity 3) && not (Rat.is_zero (Mat.det a)));
    QCheck.Test.make ~name:"rank of transpose" ~count:100 (arb_mat 4) (fun a ->
      Mat.rank a = Mat.rank (Mat.transpose a));
    QCheck.Test.make ~name:"solve consistency" ~count:100
      (QCheck.pair (arb_mat 3)
         (QCheck.make ~print:(Format.asprintf "%a" Vec.pp)
            QCheck.Gen.(array_size (return 3) gen_rat_small)))
      (fun (a, b) ->
        match Mat.solve a b with
        | Some x -> Vec.equal (Mat.mul_vec a x) b
        | None -> Mat.rank a < 3 (* inconsistency requires rank deficiency *));
    QCheck.Test.make ~name:"transpose involutive" ~count:100 (arb_mat 3) (fun a ->
      Mat.equal (Mat.transpose (Mat.transpose a)) a);
    QCheck.Test.make ~name:"mul_vec linear" ~count:100
      (QCheck.pair (arb_mat 3)
         (QCheck.make ~print:(Format.asprintf "%a" Vec.pp)
            QCheck.Gen.(array_size (return 3) gen_rat_small)))
      (fun (a, v) ->
        Vec.equal (Mat.mul_vec a (Vec.scale (r 2) v)) (Vec.scale (r 2) (Mat.mul_vec a v)));
  ]

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_dim_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "basics" `Quick test_mat_basics;
          Alcotest.test_case "ragged rejected" `Quick test_ragged_rejected;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "det" `Quick test_det;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "solve" `Quick test_solve;
          Alcotest.test_case "fractional elimination" `Quick test_fractional_elimination;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
