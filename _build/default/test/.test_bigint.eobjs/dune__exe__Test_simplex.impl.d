test/test_simplex.ml: Alcotest Array Float Format Hbl_lp Kernels List Lp QCheck QCheck_alcotest Random Rat Simplex Simplex_float Vec
