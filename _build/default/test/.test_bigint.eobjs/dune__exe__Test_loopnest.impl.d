test/test_loopnest.ml: Alcotest Array Astring Hbl_lp Kernels List Parser Printf QCheck QCheck_alcotest Rat Spec String
