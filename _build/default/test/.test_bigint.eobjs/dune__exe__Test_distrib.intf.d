test/test_distrib.mli:
