test/test_loopexec.mli:
