test/test_loopexec.ml: Alcotest Array Cache Executor Format Hashtbl Kernels Layout List Lower_bound Option Policy Printf QCheck QCheck_alcotest Schedules Spec Tiling Trace
