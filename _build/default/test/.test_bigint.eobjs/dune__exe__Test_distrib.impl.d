test/test_distrib.ml: Alcotest Array Comm_model Float Kernels List Partition Printf QCheck QCheck_alcotest Spec String
