test/test_integration.ml: Alcotest Alpha_family Analyze Astring Closed_form Executor Format Kernels List Lower_bound Parser Printf Rat Schedules Spec Tiling
