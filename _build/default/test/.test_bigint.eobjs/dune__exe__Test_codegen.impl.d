test/test_codegen.ml: Alcotest Array Astring Buffer Codegen Filename Float Format Fun Kernels Layout List Printf QCheck QCheck_alcotest Schedules Spec String Sys Tiling Unix
