test/test_linalg.ml: Alcotest Array Format List Mat QCheck QCheck_alcotest Rat Vec
