test/test_bigint.ml: Alcotest Bigint Float List Printf QCheck QCheck_alcotest
