test/test_loopnest.mli:
