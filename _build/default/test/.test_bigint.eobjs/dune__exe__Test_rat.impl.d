test/test_rat.ml: Alcotest Bigint Float List QCheck QCheck_alcotest Rat
