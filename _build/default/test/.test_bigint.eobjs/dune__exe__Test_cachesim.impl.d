test/test_cachesim.ml: Alcotest Array Cache Hierarchy Int List Policy Printf QCheck QCheck_alcotest Set String Trace
