test/test_cli.ml: Alcotest Astring Buffer List Printf Unix
