test/test_hbl.mli:
