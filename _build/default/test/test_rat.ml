(* Unit and property tests for exact rationals. *)

module B = Bigint

let rat = Alcotest.testable Rat.pp Rat.equal
let check_r = Alcotest.check rat
let r = Rat.of_int
let rr = Rat.of_ints

let test_normalization () =
  check_r "6/4 = 3/2" (rr 3 2) (rr 6 4);
  check_r "-6/4 = -3/2" (rr (-3) 2) (rr (-6) 4);
  check_r "6/-4 = -3/2" (rr (-3) 2) (rr 6 (-4));
  check_r "-6/-4 = 3/2" (rr 3 2) (rr (-6) (-4));
  check_r "0/7 = 0" Rat.zero (rr 0 7);
  Alcotest.(check string) "den positive" "1" (B.to_string (Rat.den (rr 0 (-5))));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () -> ignore (rr 1 0))

let test_arith () =
  check_r "1/2 + 1/3" (rr 5 6) (Rat.add Rat.half (rr 1 3));
  check_r "1/2 - 1/3" (rr 1 6) (Rat.sub Rat.half (rr 1 3));
  check_r "2/3 * 3/4" Rat.half (Rat.mul (rr 2 3) (rr 3 4));
  check_r "(1/2) / (1/4)" Rat.two (Rat.div Rat.half (rr 1 4));
  check_r "mul_int" (rr 3 2) (Rat.mul_int Rat.half 3);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
    ignore (Rat.div Rat.one Rat.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero))

let test_pow () =
  check_r "pow 2 10" (r 1024) (Rat.pow Rat.two 10);
  check_r "pow 1/2 -2" (r 4) (Rat.pow Rat.half (-2));
  check_r "pow x 0" Rat.one (Rat.pow (rr 17 3) 0);
  check_r "pow neg base" (rr 9 4) (Rat.pow (rr (-3) 2) 2)

let test_floor_ceil_round () =
  let cases =
    [
      (rr 7 2, 3, 4, 4);
      (rr (-7) 2, -4, -3, -4);
      (r 5, 5, 5, 5);
      (rr 1 3, 0, 1, 0);
      (rr (-1) 3, -1, 0, 0);
      (rr 5 4, 1, 2, 1);
    ]
  in
  List.iter
    (fun (x, f, c, n) ->
      Alcotest.(check int) ("floor " ^ Rat.to_string x) f (B.to_int (Rat.floor x));
      Alcotest.(check int) ("ceil " ^ Rat.to_string x) c (B.to_int (Rat.ceil x));
      Alcotest.(check int) ("round " ^ Rat.to_string x) n (B.to_int (Rat.round_nearest x)))
    cases

let test_of_float () =
  check_r "0.5" Rat.half (Rat.of_float 0.5);
  check_r "0.25" (rr 1 4) (Rat.of_float 0.25);
  check_r "-1.75" (rr (-7) 4) (Rat.of_float (-1.75));
  check_r "0.0" Rat.zero (Rat.of_float 0.0);
  check_r "3.0" (r 3) (Rat.of_float 3.0);
  Alcotest.check_raises "nan" (Invalid_argument "Rat.of_float: not finite") (fun () ->
    ignore (Rat.of_float Float.nan));
  Alcotest.check_raises "inf" (Invalid_argument "Rat.of_float: not finite") (fun () ->
    ignore (Rat.of_float Float.infinity))

let test_rationalize () =
  check_r "1/3" (rr 1 3) (Rat.rationalize (1.0 /. 3.0));
  check_r "2/7" (rr 2 7) (Rat.rationalize (2.0 /. 7.0));
  check_r "exact int" (r 8) (Rat.rationalize 8.0);
  check_r "negative" (rr (-3) 4) (Rat.rationalize (-0.75));
  check_r "zero" Rat.zero (Rat.rationalize 0.0);
  (* max_den honored *)
  let x = Rat.rationalize ~max_den:10 Float.pi in
  Alcotest.(check bool) "den <= 10" true (B.compare (Rat.den x) (B.of_int 10) <= 0);
  check_r "pi ~ 22/7" (rr 22 7) x

let test_of_string () =
  check_r "p/q" (rr 3 4) (Rat.of_string "3/4");
  check_r "neg p/q" (rr (-3) 4) (Rat.of_string "-3/4");
  check_r "int" (r 17) (Rat.of_string "17");
  check_r "decimal" (rr 13 4) (Rat.of_string "3.25");
  check_r "neg decimal" (rr (-13) 4) (Rat.of_string "-3.25");
  check_r "leading dot" (rr 1 2) (Rat.of_string "0.5");
  List.iter
    (fun s -> Alcotest.(check bool) ("reject " ^ s) true (Rat.of_string_opt s = None))
    [ ""; "1/0"; "1/"; "/2"; "1.2.3"; "abc"; "1."; "3.x" ]

let test_to_string () =
  Alcotest.(check string) "int form" "5" (Rat.to_string (r 5));
  Alcotest.(check string) "frac form" "-3/4" (Rat.to_string (rr (-3) 4))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Rat.compare (rr 1 3) Rat.half < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Rat.compare (rr (-1) 2) (rr 1 3) < 0);
  check_r "min" (rr 1 3) (Rat.min (rr 1 3) Rat.half);
  check_r "max" Rat.half (Rat.max (rr 1 3) Rat.half)

let test_predicates () =
  Alcotest.(check bool) "is_integer 4/2" true (Rat.is_integer (rr 4 2));
  Alcotest.(check bool) "is_integer 1/2" false (Rat.is_integer Rat.half);
  Alcotest.(check int) "to_int_exn" 2 (Rat.to_int_exn (rr 4 2));
  Alcotest.check_raises "to_int_exn non-integer" (Failure "Rat.to_int_exn: not an integer")
    (fun () -> ignore (Rat.to_int_exn Rat.half))

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let gen_rat =
  QCheck.Gen.(
    map2
      (fun n d -> Rat.of_ints n (if d = 0 then 1 else d))
      (int_range (-10000) 10000) (int_range (-100) 100))

let arb_rat = QCheck.make ~print:Rat.to_string gen_rat

let arb_nonzero =
  QCheck.make ~print:Rat.to_string
    (QCheck.Gen.map (fun x -> if Rat.is_zero x then Rat.one else x) gen_rat)

let prop name ?(count = 500) arb f = QCheck.Test.make ~name ~count arb f

let props =
  [
    prop "add commutative" (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a));
    prop "add associative" (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)));
    prop "mul distributes" (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)));
    prop "additive inverse" arb_rat (fun a -> Rat.is_zero (Rat.add a (Rat.neg a)));
    prop "multiplicative inverse" arb_nonzero (fun a ->
      Rat.equal (Rat.mul a (Rat.inv a)) Rat.one);
    prop "canonical form" arb_rat (fun a ->
      B.sign (Rat.den a) > 0 && B.equal (B.gcd (Rat.num a) (Rat.den a)) (B.gcd (Rat.den a) (Rat.num a))
      && (Rat.is_zero a || B.is_one (B.gcd (B.abs (Rat.num a)) (Rat.den a))));
    prop "compare antisymmetric" (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      Rat.compare a b = -Rat.compare b a);
    prop "compare matches sub sign" (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      Rat.compare a b = Rat.sign (Rat.sub a b));
    prop "floor <= x < floor+1" arb_rat (fun a ->
      let f = Rat.of_bigint (Rat.floor a) in
      Rat.compare f a <= 0 && Rat.compare a (Rat.add f Rat.one) < 0);
    prop "ceil - floor in {0,1}" arb_rat (fun a ->
      let d = B.sub (Rat.ceil a) (Rat.floor a) in
      B.is_zero d || B.is_one d);
    prop "round within half" arb_rat (fun a ->
      let n = Rat.of_bigint (Rat.round_nearest a) in
      Rat.compare (Rat.abs (Rat.sub n a)) Rat.half <= 0);
    prop "of_float exact roundtrip" QCheck.(float_range (-1e6) 1e6) (fun f ->
      Rat.to_float (Rat.of_float f) = f);
    prop "string roundtrip" arb_rat (fun a -> Rat.equal (Rat.of_string (Rat.to_string a)) a);
    prop "to_float close" arb_rat (fun a ->
      Float.abs (Rat.to_float a -. (Rat.to_float a)) < 1e-12);
    prop "rationalize recovers small fractions"
      QCheck.(pair (int_range (-999) 999) (int_range 1 999))
      (fun (n, d) ->
        Rat.equal (Rat.rationalize (float_of_int n /. float_of_int d)) (Rat.of_ints n d));
    prop "pow additive in exponent" (QCheck.pair arb_nonzero (QCheck.int_range (-6) 6))
      (fun (a, n) ->
        Rat.equal (Rat.mul (Rat.pow a n) (Rat.pow a 1)) (Rat.pow a (n + 1)));
  ]

let () =
  Alcotest.run "rat"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "floor/ceil/round" `Quick test_floor_ceil_round;
          Alcotest.test_case "of_float" `Quick test_of_float;
          Alcotest.test_case "rationalize" `Quick test_rationalize;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "predicates" `Quick test_predicates;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
