(* Unit and property tests for the arbitrary-precision integers. *)

module B = Bigint

let bi = Alcotest.testable B.pp B.equal

let check_b = Alcotest.check bi

(* ------------------------------------------------------------------ *)
(* Hand-written unit tests                                            *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  check_b "zero" (B.of_int 0) B.zero;
  check_b "one" (B.of_int 1) B.one;
  check_b "two" (B.of_int 2) B.two;
  check_b "minus_one" (B.of_int (-1)) B.minus_one;
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  Alcotest.(check int) "sign one" 1 (B.sign B.one);
  Alcotest.(check int) "sign minus" (-1) (B.sign B.minus_one)

let test_of_to_int () =
  List.iter
    (fun i -> Alcotest.(check int) (string_of_int i) i (B.to_int (B.of_int i)))
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 40; -(1 lsl 40) ]

let test_to_int_overflow () =
  let big = B.pow (B.of_int 2) 100 in
  Alcotest.(check (option int)) "overflow" None (B.to_int_opt big);
  Alcotest.(check bool) "fits_int false" false (B.fits_int big);
  Alcotest.check_raises "to_int raises" (Failure "Bigint.to_int: overflow") (fun () ->
    ignore (B.to_int big))

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [
      "0";
      "1";
      "-1";
      "123456789";
      "-987654321";
      "123456789012345678901234567890";
      "-340282366920938463463374607431768211456";
      "1000000000000000000000000000000000000000000001";
    ]

let test_of_string_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true (B.of_string_opt s = None))
    [ ""; "-"; "+"; "12a"; "a12"; "1.5"; "0x10"; " 12"; "12 "; "--3" ]

let test_of_string_underscores () =
  check_b "1_000_000" (B.of_int 1_000_000) (B.of_string "1_000_000")

let test_add_sub () =
  let a = B.of_string "99999999999999999999999999999999" in
  check_b "a + 1" (B.of_string "100000000000000000000000000000000") (B.add a B.one);
  check_b "a - a" B.zero (B.sub a a);
  check_b "0 - a" (B.neg a) (B.sub B.zero a);
  check_b "a + (-a)" B.zero (B.add a (B.neg a));
  check_b "carry chain" (B.of_string "1073741824") (B.add (B.of_int 1073741823) B.one)

let test_mul () =
  check_b "sign" (B.of_int (-6)) (B.mul (B.of_int 2) (B.of_int (-3)));
  check_b "zero" B.zero (B.mul B.zero (B.of_string "123456789123456789"));
  check_b "2^30 * 2^30" (B.of_string "1152921504606846976")
    (B.mul (B.of_int (1 lsl 30)) (B.of_int (1 lsl 30)));
  (* known big product *)
  check_b "big"
    (B.of_string "121932631137021795226185032733622923332237463801111263526900")
    (B.mul (B.of_string "123456789012345678901234567890") (B.of_string "987654321098765432109876543210"))

let test_karatsuba_matches_schoolbook () =
  (* Force operands across the Karatsuba threshold (32 digits = ~960 bits)
     and validate against an independently computed square. *)
  let x = B.pow (B.of_int 10) 120 in
  let xp1 = B.add x B.one in
  (* (10^120 + 1)^2 = 10^240 + 2*10^120 + 1 *)
  let expect = B.add (B.add (B.pow (B.of_int 10) 240) (B.mul B.two x)) B.one in
  check_b "karatsuba square" expect (B.mul xp1 xp1)

let test_divmod () =
  let q, r = B.divmod (B.of_int 17) (B.of_int 5) in
  check_b "q" (B.of_int 3) q;
  check_b "r" (B.of_int 2) r;
  let q, r = B.divmod (B.of_int (-17)) (B.of_int 5) in
  check_b "q neg" (B.of_int (-3)) q;
  check_b "r neg (truncated)" (B.of_int (-2)) r;
  let q, r = B.divmod (B.of_int 17) (B.of_int (-5)) in
  check_b "q negdiv" (B.of_int (-3)) q;
  check_b "r negdiv" (B.of_int 2) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
    ignore (B.divmod B.one B.zero))

let test_ediv_rem () =
  let q, r = B.ediv_rem (B.of_int (-17)) (B.of_int 5) in
  check_b "eq" (B.of_int (-4)) q;
  check_b "er" (B.of_int 3) r;
  let q, r = B.ediv_rem (B.of_int (-17)) (B.of_int (-5)) in
  check_b "eq2" (B.of_int 4) q;
  check_b "er2" (B.of_int 3) r

let test_knuth_add_back_case () =
  (* A divisor with a high top digit and near-boundary dividend exercises
     the rare "add back" correction of Algorithm D. *)
  let b30 = B.shift_left B.one 30 in
  let v = B.add (B.shift_left b30 30) B.one in
  (* v = 2^60 + 1 *)
  let u = B.sub (B.shift_left B.one 120) B.one in
  (* u = 2^120 - 1 *)
  let q, r = B.divmod u v in
  check_b "reconstruct" u (B.add (B.mul q v) r);
  Alcotest.(check bool) "remainder range" true (B.compare (B.abs r) (B.abs v) < 0)

let test_pow () =
  check_b "2^0" B.one (B.pow B.two 0);
  check_b "2^10" (B.of_int 1024) (B.pow B.two 10);
  check_b "(-2)^3" (B.of_int (-8)) (B.pow (B.of_int (-2)) 3);
  check_b "0^0" B.one (B.pow B.zero 0);
  Alcotest.check_raises "neg exponent" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.two (-1)))

let test_gcd_lcm () =
  check_b "gcd" (B.of_int 6) (B.gcd (B.of_int 54) (B.of_int (-24)));
  check_b "gcd 0 0" B.zero (B.gcd B.zero B.zero);
  check_b "gcd 0 x" (B.of_int 7) (B.gcd B.zero (B.of_int (-7)));
  check_b "lcm" (B.of_int 12) (B.lcm (B.of_int 4) (B.of_int 6));
  check_b "lcm zero" B.zero (B.lcm B.zero (B.of_int 5))

let test_shifts () =
  check_b "shl" (B.of_int 40) (B.shift_left (B.of_int 5) 3);
  check_b "shr" (B.of_int 5) (B.shift_right (B.of_int 40) 3);
  check_b "shr trunc pos" (B.of_int 2) (B.shift_right (B.of_int 5) 1);
  check_b "shr floor neg" (B.of_int (-3)) (B.shift_right (B.of_int (-5)) 1);
  check_b "shr to -1" (B.of_int (-1)) (B.shift_right (B.of_int (-1)) 10);
  check_b "big shl/shr roundtrip"
    (B.of_string "12345678901234567890")
    (B.shift_right (B.shift_left (B.of_string "12345678901234567890") 100) 100)

let test_num_bits () =
  Alcotest.(check int) "bits 0" 0 (B.num_bits B.zero);
  Alcotest.(check int) "bits 1" 1 (B.num_bits B.one);
  Alcotest.(check int) "bits 255" 8 (B.num_bits (B.of_int 255));
  Alcotest.(check int) "bits 256" 9 (B.num_bits (B.of_int 256));
  Alcotest.(check int) "bits 2^100" 101 (B.num_bits (B.pow B.two 100))

let test_compare_order () =
  let xs =
    List.map B.of_string
      [ "-100000000000000000000"; "-3"; "0"; "1"; "2"; "99999999999999999999999" ]
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          Alcotest.(check int)
            (Printf.sprintf "cmp %d %d" i j)
            (compare i j) (B.compare a b))
        xs)
    xs

let test_to_float () =
  Alcotest.(check (float 1e-9)) "to_float small" 42.0 (B.to_float (B.of_int 42));
  Alcotest.(check (float 1e6)) "to_float 2^70" (Float.pow 2.0 70.0)
    (B.to_float (B.pow B.two 70));
  Alcotest.(check (float 1e-9)) "to_float neg" (-42.0) (B.to_float (B.of_int (-42)))


(* Cross-checked against an independent bignum implementation (CPython):
   (a, b, a*b, a/b truncated, a mod b, gcd). *)
let test_python_cross_check () =
  let vectors = [
    ("7973774074630076026515790752299352562055", "3745960613953819179498088", "29869443628130325985890480806266232956647826346917126571773850840", "2128632651642817", "3150906178659920642128159", "1");
    ("-2118486045429191794779416049095632042998", "8374210745835920968119381", "-17740648606536582970550189746301138542927471342821791430989144238", "-252977398076900", "-4366976151767896613644098", "3");
    ("3330338348628822942675641359604901137244", "6864793232352928518366650", "22862084157112571596047273145442674512658601061011176526362512600", "485133089359974", "4913341222120052534670144", "2");
    ("1260383880580476457790468328627474222458", "7971552656085044620174995", "10047216470928072797243732573508139868967806420424900927519037710", "158110212019783", "5736669809954357612296373", "1");
    ("-5525917701126175343031337161428299285608", "3674574408670868610628366", "-20305395768979601425024784164585349925387817483241886673780356528", "-1503825228871867", "-1011730447235268129706286", "2");
    ("-123807504489815866477062892749956956960", "66821771260134422054219", "-8273036745306541288330247770308442365515892665678393369414240", "-1852801896074234", "-52712416896063960063714", "1");
    ("-6300869683611786692121720392525101574275", "3459918913079799702709824", "-21800498187179554453359211868214314676079580952125613565908177600", "-1821103280713348", "-2314966186059573734043523", "1");
    ("-7817247707080413949189546042285803898289", "7253605398719531566816214", "-56703230171206369932781815454269374901157336195885054033612057846", "-1077705124193877", "-4486864417226625640776611", "1");
    ("5515514230425214235396339117679941848694", "6381057585246140293654953", "35194813916587841364360719546351711756636411904992333780969681382", "864357382258674", "4895762072636945994536372", "1");
    ("8756296786401344406201036887820800603816", "4985291354080463807453873", "43652690663009172020840257874863532376579060972620824319967779368", "1756426287750325", "4326386523804333422345091", "1");
    ("-3478781663993134669537634471497017911009", "7466580814036221666468903", "-25974604428592141220439226504709049188761015700682951910519853127", "-465913615701241", "-3295356209472066352902386", "1");
    ("5333426286810618691775936395265731328944", "7506940843511211801901509", "40037715628314976125781335855933904730803856689803199852768976496", "710466007124684", "771015344356452880580788", "1");
  ] in
  List.iter
    (fun (a, b, prod, quot, rem, g) ->
      let a = B.of_string a and b = B.of_string b in
      check_b "product" (B.of_string prod) (B.mul a b);
      let q, r = B.divmod a b in
      check_b "quotient" (B.of_string quot) q;
      check_b "remainder" (B.of_string rem) r;
      check_b "gcd" (B.of_string g) (B.gcd a b))
    vectors

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

(* Values spanning one to ~four digit words, mixed signs. *)
let gen_bigint =
  QCheck.Gen.(
    let small = map B.of_int (int_range (-1000) 1000) in
    let medium = map B.of_int int in
    let large =
      map3
        (fun a b c -> B.add (B.mul (B.of_int a) (B.of_int b)) (B.of_int c))
        int int int
    in
    let huge =
      map2 (fun x sh -> B.shift_left (B.of_int x) sh) int (int_range 0 200)
    in
    oneof [ small; medium; large; huge ])

let arb_bigint = QCheck.make ~print:B.to_string gen_bigint

let arb_nonzero =
  QCheck.make ~print:B.to_string
    (QCheck.Gen.map (fun b -> if B.is_zero b then B.one else b) gen_bigint)

let prop name ?(count = 500) arb f = QCheck.Test.make ~name ~count arb f

let props =
  [
    prop "add commutative" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      B.equal (B.add a b) (B.add b a));
    prop "add associative" (QCheck.triple arb_bigint arb_bigint arb_bigint)
      (fun (a, b, c) -> B.equal (B.add (B.add a b) c) (B.add a (B.add b c)));
    prop "mul commutative" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      B.equal (B.mul a b) (B.mul b a));
    prop "mul associative" (QCheck.triple arb_bigint arb_bigint arb_bigint)
      (fun (a, b, c) -> B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c)));
    prop "distributive" (QCheck.triple arb_bigint arb_bigint arb_bigint) (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "sub inverse" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      B.equal (B.add (B.sub a b) b) a);
    prop "neg involutive" arb_bigint (fun a -> B.equal (B.neg (B.neg a)) a);
    prop "string roundtrip" arb_bigint (fun a -> B.equal (B.of_string (B.to_string a)) a);
    prop "divmod reconstruct" (QCheck.pair arb_bigint arb_nonzero) (fun (a, b) ->
      let q, r = B.divmod a b in
      B.equal (B.add (B.mul q b) r) a && B.compare (B.abs r) (B.abs b) < 0);
    prop "rem sign follows dividend" (QCheck.pair arb_bigint arb_nonzero) (fun (a, b) ->
      let r = B.rem a b in
      B.is_zero r || B.sign r = B.sign a);
    prop "ediv_rem euclidean" (QCheck.pair arb_bigint arb_nonzero) (fun (a, b) ->
      let q, r = B.ediv_rem a b in
      B.equal (B.add (B.mul q b) r) a && B.sign r >= 0 && B.compare r (B.abs b) < 0);
    prop "gcd divides" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      let g = B.gcd a b in
      if B.is_zero g then B.is_zero a && B.is_zero b
      else B.is_zero (B.rem a g) && B.is_zero (B.rem b g));
    prop "gcd linearity" (QCheck.pair arb_bigint arb_nonzero) (fun (a, b) ->
      (* gcd(a + b, b) = gcd(a, b) *)
      B.equal (B.gcd (B.add a b) b) (B.gcd a b));
    prop "shift_left is *2^n" (QCheck.pair arb_bigint (QCheck.int_range 0 80))
      (fun (a, n) -> B.equal (B.shift_left a n) (B.mul a (B.pow B.two n)));
    prop "shift_right is floor div" (QCheck.pair arb_bigint (QCheck.int_range 0 80))
      (fun (a, n) ->
        let q, _ = B.ediv_rem a (B.pow B.two n) in
        B.equal (B.shift_right a n) q);
    prop "compare antisymmetric" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      B.compare a b = -B.compare b a);
    prop "compare consistent with sub" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      B.compare a b = B.sign (B.sub a b));
    prop "abs non-negative" arb_bigint (fun a -> B.sign (B.abs a) >= 0);
    prop "succ/pred" arb_bigint (fun a -> B.equal (B.pred (B.succ a)) a);
    prop "to_int roundtrip when fits" QCheck.int (fun i -> B.to_int (B.of_int i) = i);
    prop "num_bits bounds value" arb_nonzero (fun a ->
      let n = B.num_bits a in
      B.compare (B.abs a) (B.pow B.two n) < 0 && B.compare (B.abs a) (B.pow B.two (n - 1)) >= 0);
    prop "karatsuba vs squaring identity" (QCheck.pair arb_bigint arb_bigint)
      (fun (a, b) ->
        (* (a+b)^2 - (a-b)^2 = 4ab, exercising both mul paths *)
        let lhs = B.sub (B.mul (B.add a b) (B.add a b)) (B.mul (B.sub a b) (B.sub a b)) in
        B.equal lhs (B.mul (B.of_int 4) (B.mul a b)));
  ]

let () =
  Alcotest.run "bigint"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "malformed strings" `Quick test_of_string_malformed;
          Alcotest.test_case "underscores" `Quick test_of_string_underscores;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "karatsuba" `Quick test_karatsuba_matches_schoolbook;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "ediv_rem" `Quick test_ediv_rem;
          Alcotest.test_case "knuth add-back" `Quick test_knuth_add_back_case;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "ordering" `Quick test_compare_order;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "python cross-check" `Quick test_python_cross_check;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
