type lp_solution = { lambda : Rat.t array; value : Rat.t; dual : Rat.t array }

(* Saturating integer arithmetic for footprint/tile-count products.
   Loop bounds near max_int make the naive products wrap negative, which
   silently defeats every "is this bigger than the budget/cap?" guard
   downstream (the PR 2 class of 2^63 regressions). All inputs here are
   non-negative; max_int is as good as the true value for every consumer,
   because they only compare against small budgets and caps. *)
let mul_sat a b = if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b
let add_sat a b = if a > max_int - b then max_int else a + b

(* Search instrumentation (aggregated per search call, never per node in
   a tight loop deeper than this; see the Obs discipline in cache.ml). *)
let c_search_nodes = Obs.counter "tiling.search.nodes"
let c_search_leaves = Obs.counter "tiling.search.leaves"
let c_search_pruned_footprint = Obs.counter "tiling.search.pruned_footprint"
let c_search_pruned_bound = Obs.counter "tiling.search.pruned_bound"
let c_warm_basis_hits = Obs.counter "tiling.search.warm_basis_hits"
let c_float_confirmed = Obs.counter "tiling.search.float_confirmed"
let c_exact_fallbacks = Obs.counter "tiling.search.exact_fallbacks"

let solve_lp spec ~beta =
  let sol = Simplex.solve_exn (Hbl_lp.tiling spec ~beta) in
  { lambda = sol.Simplex.primal; value = sol.Simplex.objective; dual = sol.Simplex.dual }

type basis_hooks = {
  lookup : int -> int array option;
  store : int -> int array -> unit;
}

(* The optimal face of LP (5.1) is rarely a point, and which of its
   vertices the simplex lands on depends on pivot order — too fragile a
   contract for caches that must serve byte-identical answers. The
   lexicographically maximal optimum is unique: fix the value, then
   maximize lambda_0, freeze it, maximize lambda_1, and so on. The last
   coordinate needs no solve — the value equation pins it.

   Each per-k solve consumes only its optimal objective, which is unique
   whatever basis the solver lands on. That makes the per-k solves safe
   to serve from any exactly-certified basis: try a memoized basis from
   an earlier solve of this shape, then the float simplex as a
   pre-screen, and confirm either with Simplex.certify (exact
   arithmetic, zero pivots). Only when certification fails — degenerate
   ties the float solver mis-resolves — does the full exact solver run.
   The base solve stays on the cold exact path: its dual vector is
   returned to callers and is NOT unique on degenerate faces, so serving
   it from a different basis would break byte-identity. *)
let solve_lp_lexmax ?hooks spec ~beta =
  let base = Hbl_lp.tiling spec ~beta in
  let sol0 = Simplex.solve_exn base in
  let v = sol0.Simplex.objective in
  let d = Spec.num_loops spec in
  let lambda = Array.make d Rat.zero in
  let base_constrs = Array.to_list (Lp.constraints base) in
  let sum_row = Lp.constr ~name:"lex_total" (Array.make d Rat.one) Lp.Eq v in
  let lookup k = match hooks with Some h -> h.lookup k | None -> None in
  let store k b = match hooks with Some h -> h.store k b | None -> () in
  let objective_of k lp =
    let warm =
      match lookup k with
      | None -> None
      | Some b -> (
        match Simplex.certify lp ~basis:b with
        | Some s ->
          Obs.incr c_warm_basis_hits;
          Some s
        | None -> None)
    in
    let certified =
      match warm with
      | Some _ -> warm
      | None -> (
        match Simplex_float.solve lp with
        | Simplex_float.Optimal fs -> (
          match Simplex.certify lp ~basis:fs.Simplex_float.basis with
          | Some s ->
            Obs.incr c_float_confirmed;
            store k s.Simplex.basis;
            Some s
          | None -> None)
        | Simplex_float.Unbounded | Simplex_float.Infeasible -> None)
    in
    match certified with
    | Some s -> s.Simplex.objective
    | None ->
      Obs.incr c_exact_fallbacks;
      let s = Simplex.solve_exn lp in
      store k s.Simplex.basis;
      s.Simplex.objective
  in
  for k = 0 to d - 2 do
    let fixed =
      List.init k (fun i ->
        let coeffs = Array.make d Rat.zero in
        coeffs.(i) <- Rat.one;
        Lp.constr ~name:(Printf.sprintf "lex_fix_%d" i) coeffs Lp.Eq lambda.(i))
    in
    let obj = Array.make d Rat.zero in
    obj.(k) <- Rat.one;
    let lp = Lp.make Lp.Maximize obj (base_constrs @ (sum_row :: fixed)) in
    lambda.(k) <- objective_of k lp
  done;
  lambda.(d - 1) <- Array.fold_left Rat.sub v (Array.sub lambda 0 (d - 1));
  { lambda; value = v; dual = sol0.Simplex.dual }

let volume b = Array.fold_left mul_sat 1 b

let footprint spec b j =
  Array.fold_left (fun acc i -> mul_sat acc b.(i)) 1 spec.Spec.arrays.(j).Spec.support

let max_footprint spec b =
  let worst = ref 0 in
  for j = 0 to Spec.num_arrays spec - 1 do
    worst := max !worst (footprint spec b j)
  done;
  !worst

let total_footprint spec b =
  let acc = ref 0 in
  for j = 0 to Spec.num_arrays spec - 1 do
    acc := add_sat !acc (footprint spec b j)
  done;
  !acc

let is_feasible spec ~m b =
  Array.length b = Spec.num_loops spec
  && Array.for_all2 (fun bi li -> 1 <= bi && bi <= li) b spec.Spec.bounds
  && max_footprint spec b <= m

(* Largest b_i keeping every array containing loop i within the memory
   budget, ignoring the current b_i. *)
let cap_for_dim spec ~m b i =
  let cap = ref spec.Spec.bounds.(i) in
  Array.iter
    (fun (a : Spec.array_ref) ->
      if Array.exists (fun k -> k = i) a.Spec.support then begin
        let others =
          Array.fold_left
            (fun acc k -> if k = i then acc else acc * b.(k))
            1 a.Spec.support
        in
        cap := min !cap (m / others)
      end)
    spec.Spec.arrays;
  !cap

let of_lambda spec ~m lambda =
  let d = Spec.num_loops spec in
  if Array.length lambda <> d then invalid_arg "Tiling.of_lambda: arity mismatch";
  if m < 1 then invalid_arg "Tiling.of_lambda: cache size must be positive";
  let log_m = log (float_of_int m) in
  let b =
    Array.init d (fun i ->
      let raw = Float.exp (Rat.to_float lambda.(i) *. log_m) in
      let v = int_of_float (Float.round raw) in
      Stdlib.min spec.Spec.bounds.(i) (Stdlib.max 1 v))
  in
  (* Repair: while some array overflows the budget, scale its largest
     dimension down proportionally. Each step strictly shrinks that
     dimension (integer division with footprint > m), and the all-ones
     tile is feasible, so this terminates. *)
  let overflowing () =
    let bad = ref (-1) in
    for j = 0 to Spec.num_arrays spec - 1 do
      if !bad < 0 && footprint spec b j > m then bad := j
    done;
    !bad
  in
  let rec repair () =
    let j = overflowing () in
    if j >= 0 then begin
      let sup = spec.Spec.arrays.(j).Spec.support in
      let pick = ref sup.(0) in
      Array.iter (fun i -> if b.(i) > b.(!pick) then pick := i) sup;
      let fp = footprint spec b j in
      b.(!pick) <- Stdlib.max 1 (b.(!pick) * m / fp);
      repair ()
    end
  in
  repair ();
  (* Grow to a maximal feasible rectangle; each pass is monotone
     non-decreasing and bounded by the loop bounds, so this terminates. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to d - 1 do
      let cap = cap_for_dim spec ~m b i in
      if cap > b.(i) then begin
        b.(i) <- cap;
        changed := true
      end
    done
  done;
  b

let optimal spec ~m =
  let beta = Lower_bound.beta_of_bounds ~m spec.Spec.bounds in
  let sol = solve_lp spec ~beta in
  of_lambda spec ~m sol.lambda

let num_tiles spec b =
  let acc = ref 1 in
  Array.iteri (fun i l -> acc := mul_sat !acc (((l - 1) / b.(i)) + 1)) spec.Spec.bounds;
  !acc

type traffic = { reads : float; writes : float }

let analytic_traffic spec b =
  let d = Spec.num_loops spec in
  let tiles_along = Array.init d (fun i -> ((spec.Spec.bounds.(i) - 1) / b.(i)) + 1) in
  let reads = ref 0.0 and writes = ref 0.0 in
  Array.iter
    (fun (a : Spec.array_ref) ->
      (* Tile footprints factor per dimension, and clipped edge tiles in a
         support dimension sum back to exactly L_i, so the words moved for
         array j are array_words(j) * prod_{i not in supp} tiles_along(i). *)
      let outside = ref 1.0 in
      for i = 0 to d - 1 do
        if not (Array.exists (fun k -> k = i) a.Spec.support) then
          outside := !outside *. float_of_int tiles_along.(i)
      done;
      (* array_words as a float product: Spec.array_words wraps on huge
         bounds, and a wrapped word count poisons every traffic figure. *)
      let array_words = ref 1.0 in
      Array.iter
        (fun i -> array_words := !array_words *. float_of_int spec.Spec.bounds.(i))
        a.Spec.support;
      let words = !array_words *. !outside in
      (match a.Spec.mode with
      | Spec.Read -> reads := !reads +. words
      | Spec.Write -> writes := !writes +. words
      | Spec.Update ->
        reads := !reads +. words;
        writes := !writes +. words))
    spec.Spec.arrays;
  { reads = !reads; writes = !writes }

(* Reference implementation of the retained model: walk the tile grid in
   lexicographic order and charge an array only when its projected block
   changes. Kept (a) as the executable specification the closed form
   below is property-tested against, and (b) verbatim inside
   [optimal_shared_reference]. The closed form replaced it on the hot
   path: this walk was the dominant cost of [optimal_shared] (up to
   [max_tiles] odometer steps per candidate tile, hundreds of candidates
   per search). *)
let retained_walk_capped ~max_tiles spec b =
  let d = Spec.num_loops spec in
  let n = Spec.num_arrays spec in
  let tiles_along = Array.init d (fun i -> ((spec.Spec.bounds.(i) - 1) / b.(i)) + 1) in
  (* Saturating product: with huge loop bounds the naive product wrapped
     negative, the cap test passed, and the walk ran for billions of
     steps. *)
  let total_tiles = Array.fold_left mul_sat 1 tiles_along in
  if total_tiles > max_tiles then analytic_traffic spec b
  else begin
    (* Walk the tile grid in lexicographic order; an array is (re)loaded
       only when its projected block differs from the previous tile's. *)
    let idx = Array.make d 0 in
    let last = Array.make n (-1) in
    let reads = ref 0.0 and writes = ref 0.0 in
    let charge j =
      let a = spec.Spec.arrays.(j) in
      let fp = ref 1 in
      Array.iter
        (fun i ->
          let o = idx.(i) * b.(i) in
          fp := !fp * Stdlib.min b.(i) (spec.Spec.bounds.(i) - o))
        a.Spec.support;
      let words = float_of_int !fp in
      match a.Spec.mode with
      | Spec.Read -> reads := !reads +. words
      | Spec.Write -> writes := !writes +. words
      | Spec.Update ->
        reads := !reads +. words;
        writes := !writes +. words
    in
    let proj_key (a : Spec.array_ref) =
      (* mixed-radix encoding of the projected tile coordinates *)
      Array.fold_left (fun acc i -> (acc * (tiles_along.(i) + 1)) + idx.(i)) 0 a.Spec.support
    in
    let steps = ref total_tiles in
    let continue = ref (total_tiles > 0) in
    while !continue do
      Array.iteri
        (fun j a ->
          let key = proj_key a in
          if key <> last.(j) then begin
            last.(j) <- key;
            charge j
          end)
        spec.Spec.arrays;
      (* odometer increment, innermost dimension fastest *)
      decr steps;
      if !steps = 0 then continue := false
      else begin
        let p = ref (d - 1) in
        let carrying = ref true in
        while !carrying do
          idx.(!p) <- idx.(!p) + 1;
          if idx.(!p) < tiles_along.(!p) then carrying := false
          else begin
            idx.(!p) <- 0;
            decr p
          end
        done
      end
    done;
    { reads = !reads; writes = !writes }
  end

(* Closed form for the walk above. In lexicographic tile order (innermost
   dimension fastest), the projection of the tile index onto array j's
   support changes exactly at the odometer steps whose carry reaches
   position s'_j = the innermost support dimension with more than one
   tile. So the walk charges one block per combination of the digits at
   positions 0..s'_j; summing the clipped projected footprints over the
   support digits reconstitutes the whole array exactly (clipped edge
   tiles sum back to L_i per dimension), leaving

     retained_j = array_words_j * prod { tiles_i : i < s'_j, i not in supp_j }

   and retained_j = array_words_j when every support dimension has a
   single tile (the projection never changes; the first tile charges the
   whole array). All quantities are integers below 2^53, so the float
   accumulation matches the walk bit for bit. *)
let analytic_traffic_retained_capped ~max_tiles spec b =
  let d = Spec.num_loops spec in
  let tiles_along = Array.init d (fun i -> ((spec.Spec.bounds.(i) - 1) / b.(i)) + 1) in
  let total_tiles = Array.fold_left mul_sat 1 tiles_along in
  if total_tiles > max_tiles then analytic_traffic spec b
  else begin
    let in_support = Array.make d false in
    let reads = ref 0.0 and writes = ref 0.0 in
    Array.iter
      (fun (a : Spec.array_ref) ->
        Array.fill in_support 0 d false;
        let s' = ref (-1) in
        Array.iter
          (fun i ->
            in_support.(i) <- true;
            if tiles_along.(i) > 1 then s' := Stdlib.max !s' i)
          a.Spec.support;
        let words =
          (* array_words, as a float product so huge bounds cannot wrap *)
          let w = ref 1.0 in
          Array.iter (fun i -> w := !w *. float_of_int spec.Spec.bounds.(i)) a.Spec.support;
          for i = 0 to !s' - 1 do
            if not in_support.(i) then w := !w *. float_of_int tiles_along.(i)
          done;
          !w
        in
        match a.Spec.mode with
        | Spec.Read -> reads := !reads +. words
        | Spec.Write -> writes := !writes +. words
        | Spec.Update ->
          reads := !reads +. words;
          writes := !writes +. words)
      spec.Spec.arrays;
    { reads = !reads; writes = !writes }
  end

let analytic_traffic_retained spec b = analytic_traffic_retained_capped ~max_tiles:2_000_000 spec b

let analytic_traffic_retained_walk spec b = retained_walk_capped ~max_tiles:2_000_000 spec b

(* Retention credit is only real when the working set leaves LRU some
   headroom: at exactly-full capacity a cyclic reuse pattern degenerates
   to a full thrash (classic LRU pathology), so tiles above 3/4 of the
   budget are judged by the pessimistic per-tile-reload model.
   [fp <= m - ceil(m/4)] is [4*fp <= 3*m] rewritten overflow-free: the
   footprint saturates at max_int for huge tiles, and [4 * max_int]
   wrapped the old form around (as does [m + 3] for m near max_int —
   hence ceil as [(m - 1) / 4 + 1]). *)
let retain_headroom spec ~m b = total_footprint spec b <= m - (((m - 1) / 4) + 1)

(* The objective the shared-budget search minimizes. The retained model
   is also skipped for candidates with huge tile counts (they are far
   from optimal anyway). *)
let search_traffic spec ~m b =
  let tr =
    if retain_headroom spec ~m b then analytic_traffic_retained_capped ~max_tiles:100_000 spec b
    else analytic_traffic spec b
  in
  tr.reads +. tr.writes

(* Same objective evaluated with the reference grid walk instead of the
   closed form — only [optimal_shared_reference] uses it. *)
let search_traffic_walk spec ~m b =
  let tr =
    if retain_headroom spec ~m b then retained_walk_capped ~max_tiles:100_000 spec b
    else analytic_traffic spec b
  in
  tr.reads +. tr.writes

(* Local search minimizing the analytic traffic of the tiled schedule
   under a *total* footprint budget. The LP optimum is typically a face,
   and different vertices round to integer tiles with very different
   constant factors; a few greedy moves recover most of the gap.
   [traffic_of] is the candidate objective ([search_traffic spec ~m] on
   the production path). *)
let refine_shared_with traffic_of spec ~m b =
  let d = Spec.num_loops spec in
  (* Largest value of dimension i keeping the total footprint <= m. *)
  let shared_cap t i =
    let fixed = ref 0 and per_unit = ref 0 in
    Array.iter
      (fun (a : Spec.array_ref) ->
        let fp =
          Array.fold_left (fun acc k -> acc * (if k = i then 1 else t.(k))) 1 a.Spec.support
        in
        if Array.exists (fun k -> k = i) a.Spec.support then per_unit := !per_unit + fp
        else fixed := !fixed + fp)
      spec.Spec.arrays;
    if !per_unit = 0 then spec.Spec.bounds.(i)
    else Stdlib.min spec.Spec.bounds.(i) ((m - !fixed) / !per_unit)
  in
  let best = Array.copy b in
  let best_traffic = ref (traffic_of best) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 64 do
    improved := false;
    incr rounds;
    for i = 0 to d - 1 do
      let cap = shared_cap best i in
      let candidates =
        [ 1; 2; best.(i) / 2; best.(i) * 2; cap; cap / 2; spec.Spec.bounds.(i) ]
      in
      List.iter
        (fun v ->
          let v = Stdlib.max 1 (Stdlib.min v cap) in
          if v <> best.(i) then begin
            let old = best.(i) in
            best.(i) <- v;
            if total_footprint spec best <= m then begin
              let tr = traffic_of best in
              if tr < !best_traffic -. 0.5 then begin
                best_traffic := tr;
                improved := true
              end
              else best.(i) <- old
            end
            else best.(i) <- old
          end)
        candidates
    done
  done;
  best

(* Power-of-two ladder for one dimension: 1, 2, 4, ..., capped by the
   loop bound itself. Stop doubling once [v] crosses [max_int / 2] —
   beyond that [v * 2] wraps negative and [v >= l] never holds for
   bounds above ~2^62, which looped this ladder forever. *)
let pow2_ladder l =
  let rec pows acc v =
    if v >= l then List.rev (l :: acc)
    else if v > max_int / 2 then List.rev (l :: v :: acc)
    else pows (v :: acc) (v * 2)
  in
  Array.of_list (pows [] 1)

(* Admissible traffic lower bound for a branch-and-bound node: dimensions
   [0, assigned) carry committed tile sizes in [b]; the rest are free.
   Under the retained model, array j's traffic carries a factor
   tiles_along(k) for every non-support dimension k below the innermost
   support dimension with more than one tile. Unassigned dimensions sit
   below (inner to) every assigned one, so completing the assignment can
   only move that innermost dimension further in and multiply by more
   factors >= 1: the value below never exceeds the true retained traffic
   of any completion. The retained model never exceeds the per-tile
   reload model, so the bound is admissible whichever branch of
   [search_traffic] judges the leaf. This is the LP-dual insight of
   Demmel–Rusciano (arXiv:1611.05944) in integer form: committed outer
   tile counts price a subtree's traffic from below, so subtrees that
   cannot beat the incumbent are cut without evaluation. *)
let traffic_lower_bound spec ~assigned b =
  let lb = ref 0.0 in
  Array.iter
    (fun (a : Spec.array_ref) ->
      let s' = ref (-1) in
      Array.iter
        (fun i ->
          if i < assigned && ((spec.Spec.bounds.(i) - 1) / b.(i)) + 1 > 1 then
            s' := Stdlib.max !s' i)
        a.Spec.support;
      let words = ref 1.0 in
      Array.iter (fun i -> words := !words *. float_of_int spec.Spec.bounds.(i)) a.Spec.support;
      for i = 0 to !s' - 1 do
        if not (Array.exists (fun k -> k = i) a.Spec.support) then
          words := !words *. float_of_int (((spec.Spec.bounds.(i) - 1) / b.(i)) + 1)
      done;
      let w = match a.Spec.mode with Spec.Update -> 2.0 | Spec.Read | Spec.Write -> 1.0 in
      lb := !lb +. (w *. !words))
    spec.Spec.arrays;
  !lb

(* Branch-and-bound sweep over log-spaced tile dimensions (powers of two
   plus the loop bound itself), minimizing analytic traffic under the
   shared budget. Greedy single-dimension moves can get trapped (raising
   one dimension may require first lowering another); this global sweep
   cannot. Partial assignments are pruned (a) by the footprint they
   already imply with all remaining dimensions at 1, and (b) by the
   admissible traffic lower bound against the incumbent. The search
   starts from the LP seed's traffic as incumbent and returns [Some]
   only on a strict improvement, preserving the visit order and
   tie-breaking of the exhaustive sweep it replaced (first strict
   minimum wins), so results are byte-identical. *)
let grid_search_shared spec ~m ~incumbent =
  let objective = search_traffic spec ~m in
  let d = Spec.num_loops spec in
  let values = Array.init d (fun i -> pow2_ladder spec.Spec.bounds.(i)) in
  let b = Array.make d 1 in
  let best = ref None in
  let best_traffic = ref incumbent in
  let nodes = ref 0
  and leaves = ref 0
  and pruned_fp = ref 0
  and pruned_bound = ref 0 in
  let rec go i =
    if i = d then begin
      incr leaves;
      if total_footprint spec b <= m then begin
        let t = objective b in
        if t < !best_traffic then begin
          best_traffic := t;
          best := Some (Array.copy b)
        end
      end
    end
    else begin
      incr nodes;
      Array.iter
        (fun v ->
          b.(i) <- v;
          (* prune: remaining dims at 1 already give a footprint floor *)
          let floor_fp =
            let saved = Array.sub b (i + 1) (d - i - 1) in
            Array.fill b (i + 1) (d - i - 1) 1;
            let fp = total_footprint spec b in
            Array.blit saved 0 b (i + 1) (d - i - 1);
            fp
          in
          if floor_fp > m then incr pruned_fp
          else if traffic_lower_bound spec ~assigned:(i + 1) b >= !best_traffic then
            incr pruned_bound
          else go (i + 1))
        values.(i)
    end
  in
  go 0;
  Obs.incr ~by:!nodes c_search_nodes;
  Obs.incr ~by:!leaves c_search_leaves;
  Obs.incr ~by:!pruned_fp c_search_pruned_footprint;
  Obs.incr ~by:!pruned_bound c_search_pruned_bound;
  !best

(* Shrink the per-array budget until the grown tile's total footprint
   fits in the shared cache. Each failed round multiplies the budget by
   at most m/total < 1, so this terminates; budget = 1 always fits. *)
let lp_seed_shared spec ~m =
  let rec search budget rounds =
    let tile = optimal spec ~m:budget in
    let total = total_footprint spec tile in
    if total <= m || budget <= 1 || rounds = 0 then tile
    else begin
      let scaled = budget * m / total in
      let next = if scaled < budget then scaled else budget - 1 in
      search (Stdlib.max 1 next) (rounds - 1)
    end
  in
  search m 32

let shared_validate spec ~m =
  if m < Spec.num_arrays spec then
    invalid_arg "Tiling.optimal_shared: cache smaller than one word per array"

let optimal_shared spec ~m =
  shared_validate spec ~m;
  let lp_seed = lp_seed_shared spec ~m in
  let seed =
    match grid_search_shared spec ~m ~incumbent:(search_traffic spec ~m lp_seed) with
    | Some grid_seed -> grid_seed
    | None -> lp_seed
  in
  refine_shared_with (search_traffic spec ~m) spec ~m seed

(* The pre-closed-form, pre-pruning search, with the walk as objective
   and the exhaustive sweep: the executable specification that
   [optimal_shared] is property-tested against for byte-identical
   tiles. Slow — test-only. *)
let optimal_shared_reference spec ~m =
  shared_validate spec ~m;
  let objective = search_traffic_walk spec ~m in
  let d = Spec.num_loops spec in
  let values = Array.init d (fun i -> pow2_ladder spec.Spec.bounds.(i)) in
  let b = Array.make d 1 in
  let best = Array.make d 1 in
  let best_traffic = ref infinity in
  let rec go i =
    if i = d then begin
      if total_footprint spec b <= m then begin
        let t = objective b in
        if t < !best_traffic then begin
          best_traffic := t;
          Array.blit b 0 best 0 d
        end
      end
    end
    else
      Array.iter
        (fun v ->
          b.(i) <- v;
          let floor_fp =
            let saved = Array.sub b (i + 1) (d - i - 1) in
            Array.fill b (i + 1) (d - i - 1) 1;
            let fp = total_footprint spec b in
            Array.blit saved 0 b (i + 1) (d - i - 1);
            fp
          in
          if floor_fp <= m then go (i + 1))
        values.(i)
  in
  go 0;
  let grid_seed = Array.copy best in
  let lp_seed = lp_seed_shared spec ~m in
  let seed = if objective grid_seed < objective lp_seed then grid_seed else lp_seed in
  refine_shared_with objective spec ~m seed

let nested spec ~ms =
  let n = Array.length ms in
  if n = 0 then invalid_arg "Tiling.nested: need at least one level";
  for k = 1 to n - 1 do
    if ms.(k) <= ms.(k - 1) then
      invalid_arg "Tiling.nested: capacities must be strictly increasing"
  done;
  (* Levels must compose: blocky (per-array-model) tiles nest cleanly,
     whereas the retention-exploiting thin tiles optimal_shared may pick
     for a single level interact badly when run inside outer blocks. So
     each level uses the LP tile for a scaled per-array budget (with the
     usual 3/4 headroom), forced elementwise monotone and shrunk back if
     the merge overflows the level's budget. *)
  let arrays = Spec.num_arrays spec in
  let level m =
    let budget = Stdlib.max 1 (3 * m / (4 * arrays)) in
    optimal spec ~m:budget
  in
  let tiles = Array.map level ms in
  for k = 1 to n - 1 do
    let merged = Array.map2 max tiles.(k) tiles.(k - 1) in
    (* Shrink (never below the inner tile) until the total footprint fits
       the level: halve the largest dimension with slack. *)
    let b = Array.copy merged in
    let budget = Stdlib.max (total_footprint spec tiles.(k - 1)) (3 * ms.(k) / 4) in
    let safety = ref 64 in
    while total_footprint spec b > budget && !safety > 0 do
      decr safety;
      let pick = ref (-1) in
      Array.iteri
        (fun i v -> if v > tiles.(k - 1).(i) && (!pick < 0 || v > b.(!pick)) then pick := i)
        b;
      if !pick < 0 then safety := 0
      else b.(!pick) <- Stdlib.max tiles.(k - 1).(!pick) ((b.(!pick) + 1) / 2)
    done;
    tiles.(k) <- b
  done;
  Array.to_list tiles

let pp spec fmt b =
  Format.fprintf fmt "@[<h>";
  Array.iteri
    (fun i bi ->
      if i > 0 then Format.fprintf fmt " x ";
      Format.fprintf fmt "%d(%s)" bi spec.Spec.loops.(i))
    b;
  Format.fprintf fmt "@]"
