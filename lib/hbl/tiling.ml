type lp_solution = { lambda : Rat.t array; value : Rat.t; dual : Rat.t array }

let solve_lp spec ~beta =
  let sol = Simplex.solve_exn (Hbl_lp.tiling spec ~beta) in
  { lambda = sol.Simplex.primal; value = sol.Simplex.objective; dual = sol.Simplex.dual }

(* The optimal face of LP (5.1) is rarely a point, and which of its
   vertices the simplex lands on depends on pivot order — too fragile a
   contract for caches that must serve byte-identical answers. The
   lexicographically maximal optimum is unique: fix the value, then
   maximize lambda_0, freeze it, maximize lambda_1, and so on. The last
   coordinate needs no solve — the value equation pins it. *)
let solve_lp_lexmax spec ~beta =
  let base = Hbl_lp.tiling spec ~beta in
  let sol0 = Simplex.solve_exn base in
  let v = sol0.Simplex.objective in
  let d = Spec.num_loops spec in
  let lambda = Array.make d Rat.zero in
  let base_constrs = Array.to_list (Lp.constraints base) in
  let sum_row = Lp.constr ~name:"lex_total" (Array.make d Rat.one) Lp.Eq v in
  for k = 0 to d - 2 do
    let fixed =
      List.init k (fun i ->
        let coeffs = Array.make d Rat.zero in
        coeffs.(i) <- Rat.one;
        Lp.constr ~name:(Printf.sprintf "lex_fix_%d" i) coeffs Lp.Eq lambda.(i))
    in
    let obj = Array.make d Rat.zero in
    obj.(k) <- Rat.one;
    let lp = Lp.make Lp.Maximize obj (base_constrs @ (sum_row :: fixed)) in
    lambda.(k) <- (Simplex.solve_exn lp).Simplex.objective
  done;
  lambda.(d - 1) <- Array.fold_left Rat.sub v (Array.sub lambda 0 (d - 1));
  { lambda; value = v; dual = sol0.Simplex.dual }

let volume b = Array.fold_left ( * ) 1 b

let footprint spec b j =
  Array.fold_left (fun acc i -> acc * b.(i)) 1 spec.Spec.arrays.(j).Spec.support

let max_footprint spec b =
  let worst = ref 0 in
  for j = 0 to Spec.num_arrays spec - 1 do
    worst := max !worst (footprint spec b j)
  done;
  !worst

let total_footprint spec b =
  let acc = ref 0 in
  for j = 0 to Spec.num_arrays spec - 1 do
    acc := !acc + footprint spec b j
  done;
  !acc

let is_feasible spec ~m b =
  Array.length b = Spec.num_loops spec
  && Array.for_all2 (fun bi li -> 1 <= bi && bi <= li) b spec.Spec.bounds
  && max_footprint spec b <= m

(* Largest b_i keeping every array containing loop i within the memory
   budget, ignoring the current b_i. *)
let cap_for_dim spec ~m b i =
  let cap = ref spec.Spec.bounds.(i) in
  Array.iter
    (fun (a : Spec.array_ref) ->
      if Array.exists (fun k -> k = i) a.Spec.support then begin
        let others =
          Array.fold_left
            (fun acc k -> if k = i then acc else acc * b.(k))
            1 a.Spec.support
        in
        cap := min !cap (m / others)
      end)
    spec.Spec.arrays;
  !cap

let of_lambda spec ~m lambda =
  let d = Spec.num_loops spec in
  if Array.length lambda <> d then invalid_arg "Tiling.of_lambda: arity mismatch";
  if m < 1 then invalid_arg "Tiling.of_lambda: cache size must be positive";
  let log_m = log (float_of_int m) in
  let b =
    Array.init d (fun i ->
      let raw = Float.exp (Rat.to_float lambda.(i) *. log_m) in
      let v = int_of_float (Float.round raw) in
      Stdlib.min spec.Spec.bounds.(i) (Stdlib.max 1 v))
  in
  (* Repair: while some array overflows the budget, scale its largest
     dimension down proportionally. Each step strictly shrinks that
     dimension (integer division with footprint > m), and the all-ones
     tile is feasible, so this terminates. *)
  let overflowing () =
    let bad = ref (-1) in
    for j = 0 to Spec.num_arrays spec - 1 do
      if !bad < 0 && footprint spec b j > m then bad := j
    done;
    !bad
  in
  let rec repair () =
    let j = overflowing () in
    if j >= 0 then begin
      let sup = spec.Spec.arrays.(j).Spec.support in
      let pick = ref sup.(0) in
      Array.iter (fun i -> if b.(i) > b.(!pick) then pick := i) sup;
      let fp = footprint spec b j in
      b.(!pick) <- Stdlib.max 1 (b.(!pick) * m / fp);
      repair ()
    end
  in
  repair ();
  (* Grow to a maximal feasible rectangle; each pass is monotone
     non-decreasing and bounded by the loop bounds, so this terminates. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to d - 1 do
      let cap = cap_for_dim spec ~m b i in
      if cap > b.(i) then begin
        b.(i) <- cap;
        changed := true
      end
    done
  done;
  b

let optimal spec ~m =
  let beta = Lower_bound.beta_of_bounds ~m spec.Spec.bounds in
  let sol = solve_lp spec ~beta in
  of_lambda spec ~m sol.lambda

let num_tiles spec b =
  let acc = ref 1 in
  Array.iteri (fun i l -> acc := !acc * ((l + b.(i) - 1) / b.(i))) spec.Spec.bounds;
  !acc

type traffic = { reads : float; writes : float }

let analytic_traffic spec b =
  let d = Spec.num_loops spec in
  let tiles_along = Array.init d (fun i -> (spec.Spec.bounds.(i) + b.(i) - 1) / b.(i)) in
  let reads = ref 0.0 and writes = ref 0.0 in
  Array.iteri
    (fun j (a : Spec.array_ref) ->
      (* Tile footprints factor per dimension, and clipped edge tiles in a
         support dimension sum back to exactly L_i, so the words moved for
         array j are array_words(j) * prod_{i not in supp} tiles_along(i). *)
      let outside = ref 1.0 in
      for i = 0 to d - 1 do
        if not (Array.exists (fun k -> k = i) a.Spec.support) then
          outside := !outside *. float_of_int tiles_along.(i)
      done;
      let words = float_of_int (Spec.array_words spec j) *. !outside in
      (match a.Spec.mode with
      | Spec.Read -> reads := !reads +. words
      | Spec.Write -> writes := !writes +. words
      | Spec.Update ->
        reads := !reads +. words;
        writes := !writes +. words))
    spec.Spec.arrays;
  { reads = !reads; writes = !writes }

let analytic_traffic_retained_capped ~max_tiles spec b =
  let d = Spec.num_loops spec in
  let n = Spec.num_arrays spec in
  let tiles_along = Array.init d (fun i -> (spec.Spec.bounds.(i) + b.(i) - 1) / b.(i)) in
  let total_tiles = Array.fold_left ( * ) 1 tiles_along in
  if total_tiles > max_tiles then analytic_traffic spec b
  else begin
    (* Walk the tile grid in lexicographic order; an array is (re)loaded
       only when its projected block differs from the previous tile's. *)
    let idx = Array.make d 0 in
    let last = Array.make n (-1) in
    let reads = ref 0.0 and writes = ref 0.0 in
    let charge j =
      let a = spec.Spec.arrays.(j) in
      let fp = ref 1 in
      Array.iter
        (fun i ->
          let o = idx.(i) * b.(i) in
          fp := !fp * Stdlib.min b.(i) (spec.Spec.bounds.(i) - o))
        a.Spec.support;
      let words = float_of_int !fp in
      match a.Spec.mode with
      | Spec.Read -> reads := !reads +. words
      | Spec.Write -> writes := !writes +. words
      | Spec.Update ->
        reads := !reads +. words;
        writes := !writes +. words
    in
    let proj_key (a : Spec.array_ref) =
      (* mixed-radix encoding of the projected tile coordinates *)
      Array.fold_left (fun acc i -> (acc * (tiles_along.(i) + 1)) + idx.(i)) 0 a.Spec.support
    in
    let steps = ref total_tiles in
    let continue = ref (total_tiles > 0) in
    while !continue do
      Array.iteri
        (fun j a ->
          let key = proj_key a in
          if key <> last.(j) then begin
            last.(j) <- key;
            charge j
          end)
        spec.Spec.arrays;
      (* odometer increment, innermost dimension fastest *)
      decr steps;
      if !steps = 0 then continue := false
      else begin
        let p = ref (d - 1) in
        let carrying = ref true in
        while !carrying do
          idx.(!p) <- idx.(!p) + 1;
          if idx.(!p) < tiles_along.(!p) then carrying := false
          else begin
            idx.(!p) <- 0;
            decr p
          end
        done
      end
    done;
    { reads = !reads; writes = !writes }
  end

let analytic_traffic_retained spec b = analytic_traffic_retained_capped ~max_tiles:2_000_000 spec b

(* The objective the shared-budget search minimizes. Retention credit is
   only real when the working set leaves LRU some headroom: at
   exactly-full capacity a cyclic reuse pattern degenerates to a full
   thrash (classic LRU pathology), so tiles above 3/4 of the budget are
   judged by the pessimistic per-tile-reload model. The grid-walk is also
   skipped for candidates with huge tile counts (they are far from
   optimal anyway). *)
let search_traffic spec ~m b =
  let tr =
    if 4 * total_footprint spec b <= 3 * m then
      analytic_traffic_retained_capped ~max_tiles:100_000 spec b
    else analytic_traffic spec b
  in
  tr.reads +. tr.writes

(* Local search minimizing the analytic traffic of the tiled schedule
   under a *total* footprint budget. The LP optimum is typically a face,
   and different vertices round to integer tiles with very different
   constant factors; a few greedy moves recover most of the gap. *)
let refine_shared spec ~m b =
  let d = Spec.num_loops spec in
  let traffic_of = search_traffic spec ~m in
  (* Largest value of dimension i keeping the total footprint <= m. *)
  let shared_cap t i =
    let fixed = ref 0 and per_unit = ref 0 in
    Array.iter
      (fun (a : Spec.array_ref) ->
        let fp =
          Array.fold_left (fun acc k -> acc * (if k = i then 1 else t.(k))) 1 a.Spec.support
        in
        if Array.exists (fun k -> k = i) a.Spec.support then per_unit := !per_unit + fp
        else fixed := !fixed + fp)
      spec.Spec.arrays;
    if !per_unit = 0 then spec.Spec.bounds.(i)
    else Stdlib.min spec.Spec.bounds.(i) ((m - !fixed) / !per_unit)
  in
  let best = Array.copy b in
  let best_traffic = ref (traffic_of best) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 64 do
    improved := false;
    incr rounds;
    for i = 0 to d - 1 do
      let cap = shared_cap best i in
      let candidates =
        [ 1; 2; best.(i) / 2; best.(i) * 2; cap; cap / 2; spec.Spec.bounds.(i) ]
      in
      List.iter
        (fun v ->
          let v = Stdlib.max 1 (Stdlib.min v cap) in
          if v <> best.(i) then begin
            let old = best.(i) in
            best.(i) <- v;
            if total_footprint spec best <= m then begin
              let tr = traffic_of best in
              if tr < !best_traffic -. 0.5 then begin
                best_traffic := tr;
                improved := true
              end
              else best.(i) <- old
            end
            else best.(i) <- old
          end)
        candidates
    done
  done;
  best

(* Branch-and-bound sweep over log-spaced tile dimensions (powers of two
   plus the loop bound itself), minimizing analytic traffic under the
   shared budget. Greedy single-dimension moves can get trapped (raising
   one dimension may require first lowering another); this global sweep
   cannot. Partial assignments are pruned by the footprint they already
   imply with all remaining dimensions at 1. *)
let grid_search_shared spec ~m =
  let objective = search_traffic spec ~m in
  let d = Spec.num_loops spec in
  let values =
    Array.init d (fun i ->
      let l = spec.Spec.bounds.(i) in
      let rec pows acc v = if v >= l then List.rev (l :: acc) else pows (v :: acc) (v * 2) in
      Array.of_list (pows [] 1))
  in
  let b = Array.make d 1 in
  let best = Array.make d 1 in
  let best_traffic = ref infinity in
  let rec go i =
    if i = d then begin
      if total_footprint spec b <= m then begin
        let t = objective b in
        if t < !best_traffic then begin
          best_traffic := t;
          Array.blit b 0 best 0 d
        end
      end
    end
    else
      Array.iter
        (fun v ->
          b.(i) <- v;
          (* prune: remaining dims at 1 already give a footprint floor *)
          let floor_fp =
            let saved = Array.sub b (i + 1) (d - i - 1) in
            Array.fill b (i + 1) (d - i - 1) 1;
            let fp = total_footprint spec b in
            Array.blit saved 0 b (i + 1) (d - i - 1);
            fp
          in
          if floor_fp <= m then go (i + 1))
        values.(i)
  in
  go 0;
  Array.iteri (fun i v -> b.(i) <- v) best;
  best

let optimal_shared spec ~m =
  if m < Spec.num_arrays spec then
    invalid_arg "Tiling.optimal_shared: cache smaller than one word per array";
  (* Shrink the per-array budget until the grown tile's total footprint
     fits in the shared cache. Each failed round multiplies the budget by
     at most m/total < 1, so this terminates; budget = 1 always fits. *)
  let rec search budget rounds =
    let tile = optimal spec ~m:budget in
    let total = total_footprint spec tile in
    if total <= m || budget <= 1 || rounds = 0 then tile
    else begin
      let scaled = budget * m / total in
      let next = if scaled < budget then scaled else budget - 1 in
      search (Stdlib.max 1 next) (rounds - 1)
    end
  in
  let lp_seed = search m 32 in
  let grid_seed = grid_search_shared spec ~m in
  let seed =
    if search_traffic spec ~m grid_seed < search_traffic spec ~m lp_seed then grid_seed
    else lp_seed
  in
  refine_shared spec ~m seed

let nested spec ~ms =
  let n = Array.length ms in
  if n = 0 then invalid_arg "Tiling.nested: need at least one level";
  for k = 1 to n - 1 do
    if ms.(k) <= ms.(k - 1) then
      invalid_arg "Tiling.nested: capacities must be strictly increasing"
  done;
  (* Levels must compose: blocky (per-array-model) tiles nest cleanly,
     whereas the retention-exploiting thin tiles optimal_shared may pick
     for a single level interact badly when run inside outer blocks. So
     each level uses the LP tile for a scaled per-array budget (with the
     usual 3/4 headroom), forced elementwise monotone and shrunk back if
     the merge overflows the level's budget. *)
  let arrays = Spec.num_arrays spec in
  let level m =
    let budget = Stdlib.max 1 (3 * m / (4 * arrays)) in
    optimal spec ~m:budget
  in
  let tiles = Array.map level ms in
  for k = 1 to n - 1 do
    let merged = Array.map2 max tiles.(k) tiles.(k - 1) in
    (* Shrink (never below the inner tile) until the total footprint fits
       the level: halve the largest dimension with slack. *)
    let b = Array.copy merged in
    let budget = Stdlib.max (total_footprint spec tiles.(k - 1)) (3 * ms.(k) / 4) in
    let safety = ref 64 in
    while total_footprint spec b > budget && !safety > 0 do
      decr safety;
      let pick = ref (-1) in
      Array.iteri
        (fun i v -> if v > tiles.(k - 1).(i) && (!pick < 0 || v > b.(!pick)) then pick := i)
        b;
      if !pick < 0 then safety := 0
      else b.(!pick) <- Stdlib.max tiles.(k - 1).(!pick) ((b.(!pick) + 1) / 2)
    done;
    tiles.(k) <- b
  done;
  Array.to_list tiles

let pp spec fmt b =
  Format.fprintf fmt "@[<h>";
  Array.iteri
    (fun i bi ->
      if i > 0 then Format.fprintf fmt " x ";
      Format.fprintf fmt "%d(%s)" bi spec.Spec.loops.(i))
    b;
  Format.fprintf fmt "@]"
