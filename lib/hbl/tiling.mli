(** Optimal rectangular tilings (Section 5).

    Theorem 3: the rectangle whose per-dimension log-sizes solve LP (5.1)
    matches the Theorem-2 upper bound on tile size, so tiling the
    iteration space with it attains the communication lower bound (up to
    the usual constant factors). This module solves the LP, converts the
    continuous solution into integer tile dimensions, and provides the
    footprint/communication accounting used by the benchmarks. *)

type lp_solution = {
  lambda : Rat.t array;  (** optimal [log_M] block sizes, one per loop *)
  value : Rat.t;  (** [sum lambda_i = k_hat] *)
  dual : Rat.t array;  (** multipliers: [n] array rows then [d] bound rows *)
}

val solve_lp : Spec.t -> beta:Rat.t array -> lp_solution
(** Whichever optimal vertex the simplex pivots to — fine when only the
    objective matters. *)

type basis_hooks = {
  lookup : int -> int array option;
      (** [lookup k] — a previously stored optimal basis for the [k]-th
          lexmax sub-solve of this shape, or [None] *)
  store : int -> int array -> unit;
      (** [store k basis] — remember the optimal basis of sub-solve [k] *)
}
(** Warm-start cache interface for {!solve_lp_lexmax}. The engine backs
    this with a {!Memo} table keyed by shape; a hit turns a simplex solve
    into a single {!Simplex.certify} check. *)

val solve_lp_lexmax : ?hooks:basis_hooks -> Spec.t -> beta:Rat.t array -> lp_solution
(** The {e lexicographically maximal} optimal solution: among all optima
    of (5.1), the one maximizing [lambda_0], then [lambda_1], ... —
    unique, hence safe to compare bit-for-bit across solver paths. This
    is the engine's canonical answer ({!Tiling_plan} reproduces it
    without any simplex solves). Costs [d + 1] simplex solves; [dual] is
    the multiplier vector of the initial value-finding solve.

    The [d] per-[k] sub-solves consume only their (unique) optimal
    objective value, so they may be answered by any certified optimal
    basis: with [hooks] a remembered basis is tried first, then a
    floating-point pre-screen ({!Simplex_float.solve}) whose final basis
    is confirmed exactly by {!Simplex.certify}, and only if both fail
    does the exact solver run from scratch. The initial solve always runs
    exactly because its [dual] vector is consumed and dual multipliers at
    degenerate optima are not unique. Results are bit-identical with and
    without [hooks]. *)

val of_lambda : Spec.t -> m:int -> Rat.t array -> int array
(** Integer tile from a (feasible) continuous LP solution: round
    [b_i = M^(lambda_i)] down, clamp to [[1, L_i]], then repair any
    per-array footprint above [m] and greedily grow every dimension to a
    maximal feasible rectangle. The result always satisfies
    {!is_feasible}. *)

val optimal : Spec.t -> m:int -> int array
(** [of_lambda] applied to the LP solution for
    [beta = beta_of_bounds ~m bounds]. *)

val optimal_shared : Spec.t -> m:int -> int array
(** Like {!optimal}, but for a single cache of [m] words shared by all
    arrays: the {e total} footprint of the result is at most [m]. The
    paper's model charges each array up to [M] words separately;
    executing on one physical cache needs this variant. Internally an LP
    seed (the per-array budget scaled down iteratively until the grown
    tile's total footprint fits) sets the incumbent for a
    branch-and-bound sweep over power-of-two tile grids, pruned by a
    footprint floor and by an admissible traffic lower bound; a local
    refinement pass follows. Emits [tiling.search.*] observability
    counters. *)

val optimal_shared_reference : Spec.t -> m:int -> int array
(** The executable specification of {!optimal_shared}: the original
    unpruned exhaustive sweep with the tile-grid-walk traffic objective.
    Exponentially slower on large shapes; exists so the property tests
    can assert the pruned search returns byte-identical tiles. *)

val nested : Spec.t -> ms:int array -> int array list
(** Tiles for a multi-level memory hierarchy with capacities [ms]
    (strictly increasing, fastest first): one {!optimal_shared} tile per
    level, forced elementwise monotone from inner to outer. The result is
    innermost-first, ready for {!Schedules.Nested}.
    @raise Invalid_argument on an empty or non-increasing ladder. *)

val volume : int array -> int

val footprint : Spec.t -> int array -> int -> int
(** [footprint spec b j] — words of array [j] touched by one full tile:
    [prod_{i in support j} b_i]. *)

val max_footprint : Spec.t -> int array -> int
val total_footprint : Spec.t -> int array -> int

val is_feasible : Spec.t -> m:int -> int array -> bool
(** [1 <= b_i <= L_i] for all loops and [footprint j <= m] for all
    arrays — the paper's per-array memory model. *)

val num_tiles : Spec.t -> int array -> int
(** [prod_i ceil(L_i / b_i)]. *)

type traffic = {
  reads : float;  (** words loaded: each array element once per tile touching it *)
  writes : float;  (** words stored for [Write]/[Update] arrays, same accounting *)
}

val analytic_traffic : Spec.t -> int array -> traffic
(** Exact communication of the tiled schedule under the "load tile
    working set, compute, write back" discipline, counting clipped edge
    tiles exactly. For array [j] this is
    [array_words j * prod_{i not in support j} num_tiles_i]. *)

val analytic_traffic_retained : Spec.t -> int array -> traffic
(** Like {!analytic_traffic}, but consecutive tiles (in the lexicographic
    tile order {!Schedules.Tiled} uses) that touch the {e same} block of
    an array are charged only once — the block stays resident, which is
    what an LRU cache that fits the whole working set actually does.
    Computed in closed form from the carry structure of the tile odometer
    (array [j]'s block changes exactly when the carry reaches its
    innermost multi-tile support dimension); this is the objective
    {!optimal_shared} minimizes. Falls back to {!analytic_traffic} when
    the tile grid exceeds [2*10^6] tiles. *)

val analytic_traffic_retained_walk : Spec.t -> int array -> traffic
(** The original O(num_tiles) implementation of
    {!analytic_traffic_retained}: walk the tile grid and count block
    changes. Kept as the executable specification the closed form is
    property-tested against. Same [2*10^6]-tile fallback. *)

val pp : Spec.t -> Format.formatter -> int array -> unit
