(** Optimal rectangular tilings (Section 5).

    Theorem 3: the rectangle whose per-dimension log-sizes solve LP (5.1)
    matches the Theorem-2 upper bound on tile size, so tiling the
    iteration space with it attains the communication lower bound (up to
    the usual constant factors). This module solves the LP, converts the
    continuous solution into integer tile dimensions, and provides the
    footprint/communication accounting used by the benchmarks. *)

type lp_solution = {
  lambda : Rat.t array;  (** optimal [log_M] block sizes, one per loop *)
  value : Rat.t;  (** [sum lambda_i = k_hat] *)
  dual : Rat.t array;  (** multipliers: [n] array rows then [d] bound rows *)
}

val solve_lp : Spec.t -> beta:Rat.t array -> lp_solution
(** Whichever optimal vertex the simplex pivots to — fine when only the
    objective matters. *)

val solve_lp_lexmax : Spec.t -> beta:Rat.t array -> lp_solution
(** The {e lexicographically maximal} optimal solution: among all optima
    of (5.1), the one maximizing [lambda_0], then [lambda_1], ... —
    unique, hence safe to compare bit-for-bit across solver paths. This
    is the engine's canonical answer ({!Tiling_plan} reproduces it
    without any simplex solves). Costs [d] simplex solves; [dual] is the
    multiplier vector of the initial value-finding solve. *)

val of_lambda : Spec.t -> m:int -> Rat.t array -> int array
(** Integer tile from a (feasible) continuous LP solution: round
    [b_i = M^(lambda_i)] down, clamp to [[1, L_i]], then repair any
    per-array footprint above [m] and greedily grow every dimension to a
    maximal feasible rectangle. The result always satisfies
    {!is_feasible}. *)

val optimal : Spec.t -> m:int -> int array
(** [of_lambda] applied to the LP solution for
    [beta = beta_of_bounds ~m bounds]. *)

val optimal_shared : Spec.t -> m:int -> int array
(** Like {!optimal}, but for a single cache of [m] words shared by all
    arrays: the {e total} footprint of the result is at most [m]. The
    paper's model charges each array up to [M] words separately;
    executing on one physical cache needs this variant. Internally the
    per-array budget is scaled down iteratively until the grown tile's
    total footprint fits. *)

val nested : Spec.t -> ms:int array -> int array list
(** Tiles for a multi-level memory hierarchy with capacities [ms]
    (strictly increasing, fastest first): one {!optimal_shared} tile per
    level, forced elementwise monotone from inner to outer. The result is
    innermost-first, ready for {!Schedules.Nested}.
    @raise Invalid_argument on an empty or non-increasing ladder. *)

val volume : int array -> int

val footprint : Spec.t -> int array -> int -> int
(** [footprint spec b j] — words of array [j] touched by one full tile:
    [prod_{i in support j} b_i]. *)

val max_footprint : Spec.t -> int array -> int
val total_footprint : Spec.t -> int array -> int

val is_feasible : Spec.t -> m:int -> int array -> bool
(** [1 <= b_i <= L_i] for all loops and [footprint j <= m] for all
    arrays — the paper's per-array memory model. *)

val num_tiles : Spec.t -> int array -> int
(** [prod_i ceil(L_i / b_i)]. *)

type traffic = {
  reads : float;  (** words loaded: each array element once per tile touching it *)
  writes : float;  (** words stored for [Write]/[Update] arrays, same accounting *)
}

val analytic_traffic : Spec.t -> int array -> traffic
(** Exact communication of the tiled schedule under the "load tile
    working set, compute, write back" discipline, counting clipped edge
    tiles exactly. For array [j] this is
    [array_words j * prod_{i not in support j} num_tiles_i]. *)

val analytic_traffic_retained : Spec.t -> int array -> traffic
(** Like {!analytic_traffic}, but consecutive tiles (in the lexicographic
    tile order {!Schedules.Tiled} uses) that touch the {e same} block of
    an array are charged only once — the block stays resident, which is
    what an LRU cache that fits the whole working set actually does.
    Computed by walking the tile grid and counting block changes; this is
    the objective {!optimal_shared} minimizes. Falls back to
    {!analytic_traffic} when the tile grid exceeds [2*10^6] tiles. *)

val pp : Spec.t -> Format.formatter -> int array -> unit
