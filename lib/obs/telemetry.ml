(* Periodic metrics exporter: a ticker thread that snapshots the Obs
   registry every interval and either appends JSONL time-series records
   or rewrites an OpenMetrics text exposition, chosen by file suffix.

   The exporter never touches the hot path: instrumented code keeps
   writing atomics; the ticker runs on its own POSIX thread (not a
   domain — it spends its life asleep, so it never competes with Pool
   workers for cores), formats everything locally and does one
   write+flush per tick. A tick is also taken synchronously at start
   and at stop, so even a short-lived process leaves at least two
   timestamped snapshots behind. *)

type format = Jsonl | Openmetrics

type t = {
  path : string;
  fmt : format;
  interval_s : float;
  stop_flag : bool Atomic.t;
  seq : int Atomic.t;
  oc : out_channel option; (* Jsonl sink, kept open in append mode *)
  mutable thread : Thread.t option;
}

let format_of_path path = if Filename.check_suffix path ".om" then Openmetrics else Jsonl

(* ------------------------------------------------------------------ *)
(* JSONL rendering                                                     *)
(* ------------------------------------------------------------------ *)

let json_line ~ts ~seq snap =
  Printf.sprintf "{\"ts\":%.6f,\"seq\":%d,\"obs\":%s}" ts seq (Obs.to_json snap)

(* ------------------------------------------------------------------ *)
(* OpenMetrics rendering                                               *)
(* ------------------------------------------------------------------ *)

(* Exposition metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. Obs
   names are dotted ("serve.queue_depth"), so every other byte maps to
   '_'; the "tilings_" prefix guarantees a valid first character and
   namespaces the process in a shared scrape. *)
let sanitize_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "tilings_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(* Distinct raw names may collide after sanitization ("a.b" and "a_b");
   the exposition format forbids duplicate families, so later claimants
   get a numeric suffix. Deterministic: snapshots are name-sorted. *)
let claim seen base =
  match Hashtbl.find_opt seen base with
  | None ->
    Hashtbl.add seen base 1;
    base
  | Some n ->
    Hashtbl.replace seen base (n + 1);
    Printf.sprintf "%s_%d" base (n + 1)

let openmetrics snap =
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 64 in
  let family name kind =
    let f = claim seen (sanitize_name name) in
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f kind);
    f
  in
  List.iter
    (fun (name, v) ->
      let f = family name "counter" in
      Buffer.add_string buf (Printf.sprintf "%s_total %d\n" f v))
    snap.Obs.scounters;
  List.iter
    (fun (name, g) ->
      let f = family name "gauge" in
      Buffer.add_string buf (Printf.sprintf "%s %d\n" f g.Obs.gvalue);
      let fmin = family (name ^ ".min") "gauge" in
      Buffer.add_string buf (Printf.sprintf "%s %d\n" fmin g.Obs.gmin);
      let fmax = family (name ^ ".max") "gauge" in
      Buffer.add_string buf (Printf.sprintf "%s %d\n" fmax g.Obs.gmax))
    snap.Obs.sgauges;
  let summary name ~count ~sum_s dist =
    let f = family name "summary" in
    List.iter
      (fun (q, p) ->
        Buffer.add_string buf
          (Printf.sprintf "%s{quantile=\"%s\"} %.9f\n" f q (Obs.percentile dist p /. 1e9)))
      [ ("0.5", 50.0); ("0.9", 90.0); ("0.99", 99.0) ];
    Buffer.add_string buf (Printf.sprintf "%s_sum %.9f\n" f sum_s);
    Buffer.add_string buf (Printf.sprintf "%s_count %d\n" f count)
  in
  List.iter
    (fun (name, t) -> summary name ~count:t.Obs.tcalls ~sum_s:t.Obs.tseconds t.Obs.tdist)
    snap.Obs.stimers;
  List.iter
    (fun (name, d) ->
      summary name ~count:d.Obs.dcount
        ~sum_s:(float_of_int d.Obs.dsum_ns /. 1e9)
        d)
    snap.Obs.shists;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Ticker                                                              *)
(* ------------------------------------------------------------------ *)

(* Scrapers may read the .om file at any moment, so it is replaced
   atomically: write a sibling temp file, then rename over. *)
let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let tick t =
  let ts = Unix.gettimeofday () in
  let seq = Atomic.fetch_and_add t.seq 1 in
  let snap = Obs.snapshot () in
  (match (t.fmt, t.oc) with
  | Jsonl, Some oc ->
    output_string oc (json_line ~ts ~seq snap);
    output_char oc '\n';
    flush oc
  | Jsonl, None -> ()
  | Openmetrics, _ -> write_atomic t.path (openmetrics snap));
  (* Each exported interval carries its own gauge excursion. *)
  Obs.rewind_gauges ()

let run t =
  (* Sleep in small increments so stop is prompt even with long
     intervals; drift is irrelevant at telemetry granularity. *)
  let chunk = 0.05 in
  let rec loop slept =
    if not (Atomic.get t.stop_flag) then
      if slept >= t.interval_s then begin
        tick t;
        loop 0.0
      end
      else begin
        Thread.delay (Float.min chunk (t.interval_s -. slept));
        loop (slept +. chunk)
      end
  in
  loop 0.0

let start ?(interval_s = 1.0) path =
  let fmt = format_of_path path in
  let oc =
    match fmt with
    | Openmetrics -> Ok None
    | Jsonl -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | oc -> Ok (Some oc)
      | exception Sys_error msg -> Error msg)
  in
  match oc with
  | Error msg -> Error msg
  | Ok oc ->
    let t =
      {
        path;
        fmt;
        interval_s = Float.max 0.01 interval_s;
        stop_flag = Atomic.make false;
        seq = Atomic.make 0;
        oc;
        thread = None;
      }
    in
    (match tick t with
    | () ->
      t.thread <- Some (Thread.create run t);
      Ok t
    | exception Sys_error msg -> Error msg)

let stop t =
  Atomic.set t.stop_flag true;
  (match t.thread with
  | Some th ->
    t.thread <- None;
    Thread.join th;
    (* Final synchronous tick: the trail always ends with the complete
       end-of-process state, and even an immediate start/stop pair
       leaves >= 2 snapshots. *)
    (try tick t with Sys_error _ -> ())
  | None -> ());
  match t.oc with Some oc -> (try close_out oc with Sys_error _ -> ()) | None -> ()

let interval t = t.interval_s
let path t = t.path
