type counter = { cell : int Atomic.t }

(* Durations accumulate as integer nanoseconds so workers can add spans
   with a single fetch-and-add; 63-bit nanoseconds overflow after ~292
   years of accumulated time. *)
type timer = { ns : int Atomic.t; count : int Atomic.t }

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock (fun () ->
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = { cell = Atomic.make 0 } in
      Hashtbl.add counters name c;
      c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.cell by)

let rec record_max c v =
  let cur = Atomic.get c.cell in
  if v > cur && not (Atomic.compare_and_set c.cell cur v) then record_max c v

let value c = Atomic.get c.cell

let timer name =
  with_lock (fun () ->
    match Hashtbl.find_opt timers name with
    | Some t -> t
    | None ->
      let t = { ns = Atomic.make 0; count = Atomic.make 0 } in
      Hashtbl.add timers name t;
      t)

let add_seconds t s =
  ignore (Atomic.fetch_and_add t.ns (int_of_float (s *. 1e9)));
  ignore (Atomic.fetch_and_add t.count 1)

let time t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_seconds t (Unix.gettimeofday () -. t0)) f

let calls t = Atomic.get t.count
let seconds t = float_of_int (Atomic.get t.ns) /. 1e9

type timer_stat = { tcalls : int; tseconds : float }

type snapshot = {
  scounters : (string * int) list;
  stimers : (string * timer_stat) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  with_lock (fun () ->
    {
      scounters =
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) counters []
        |> List.sort by_name;
      stimers =
        Hashtbl.fold
          (fun name t acc ->
            (name, { tcalls = Atomic.get t.count; tseconds = seconds t }) :: acc)
          timers []
        |> List.sort by_name;
    })

let reset () =
  with_lock (fun () ->
    Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
    Hashtbl.iter
      (fun _ t ->
        Atomic.set t.ns 0;
        Atomic.set t.count 0)
      timers)

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  if s.scounters <> [] then begin
    Format.fprintf fmt "counters:";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "@,  %-36s %12d" name v)
      s.scounters
  end;
  if s.stimers <> [] then begin
    if s.scounters <> [] then Format.fprintf fmt "@,";
    Format.fprintf fmt "timers:%38s %12s" "calls" "seconds";
    List.iter
      (fun (name, t) ->
        Format.fprintf fmt "@,  %-36s %12d %12.6f" name t.tcalls t.tseconds)
      s.stimers
  end;
  if s.scounters = [] && s.stimers = [] then Format.fprintf fmt "(no metrics recorded)";
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    s.scounters;
  Buffer.add_string buf "},\"timers\":{";
  List.iteri
    (fun i (name, t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":{\"calls\":%d,\"seconds\":%.6f}" (json_escape name) t.tcalls
           t.tseconds))
    s.stimers;
  Buffer.add_string buf "}}";
  Buffer.contents buf
