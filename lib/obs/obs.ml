(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

(* Log-bucketed latency histogram. Bucket [b] covers the nanosecond
   range [2^(b/4), 2^((b+1)/4)): four sub-buckets per octave, so any
   percentile estimate is within a factor of 2^(1/4) ~ 19% of the true
   value. 256 buckets cover [1ns, 2^64 ns); everything is an Atomic, so
   recording is lock-free (one bucket fetch-and-add plus the sum/count
   adds and a CAS-loop for the max). *)

let sub_buckets = 4
let num_buckets = 256

type hist = {
  hbuckets : int Atomic.t array;
  hcount : int Atomic.t;
  hsum : int Atomic.t; (* ns *)
  hmax : int Atomic.t; (* ns *)
}

let make_hist () =
  {
    hbuckets = Array.init num_buckets (fun _ -> Atomic.make 0);
    hcount = Atomic.make 0;
    hsum = Atomic.make 0;
    hmax = Atomic.make 0;
  }

let bucket_of_ns v =
  if v <= 1 then 0
  else
    min (num_buckets - 1)
      (int_of_float (float_of_int sub_buckets *. (log (float_of_int v) /. log 2.0)))

(* Geometric midpoint of bucket [b], in nanoseconds. *)
let bucket_mid b = Float.pow 2.0 ((float_of_int b +. 0.5) /. float_of_int sub_buckets)

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

(* Saturating accumulate: the sum cell pegs at [max_int] instead of
   wrapping negative when fed huge samples (e.g. repeated observations
   near [max_int] ns). Monotone, so a CAS loop suffices. *)
let rec atomic_add_sat cell v =
  let cur = Atomic.get cell in
  let sum = if v > 0 && cur > max_int - v then max_int else cur + v in
  if sum <> cur && not (Atomic.compare_and_set cell cur sum) then atomic_add_sat cell v

let hist_observe_ns h ns =
  let ns = max 0 ns in
  ignore (Atomic.fetch_and_add h.hbuckets.(bucket_of_ns ns) 1);
  ignore (Atomic.fetch_and_add h.hcount 1);
  atomic_add_sat h.hsum ns;
  atomic_max h.hmax ns

let hist_reset h =
  Array.iter (fun b -> Atomic.set b 0) h.hbuckets;
  Atomic.set h.hcount 0;
  Atomic.set h.hsum 0;
  Atomic.set h.hmax 0

(* ------------------------------------------------------------------ *)
(* Registries                                                          *)
(* ------------------------------------------------------------------ *)

type counter = { cell : int Atomic.t }

(* A gauge is a level, not a flow: it goes up and down (queue depth,
   in-flight requests, cache entries, idle domains). Besides the current
   value it tracks min/max watermarks since the last {!rewind_gauges},
   so a periodic exporter can report the excursion within each interval
   even when the instantaneous value at tick time looks calm. *)
type gauge = { gcur : int Atomic.t; gwmin : int Atomic.t; gwmax : int Atomic.t }

(* A timer is a histogram of nanosecond durations; total seconds and the
   call count are the histogram's sum and count, so every timer gets
   percentiles for free. 63-bit nanoseconds overflow after ~292 years of
   accumulated time (the sum saturates at [max_int] rather than wrap). *)
type timer = { th : hist }
type histogram = { hh : hist }

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find_or_register table name make =
  with_lock (fun () ->
    match Hashtbl.find_opt table name with
    | Some v -> v
    | None ->
      let v = make () in
      Hashtbl.add table name v;
      v)

let counter name = find_or_register counters name (fun () -> { cell = Atomic.make 0 })
let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.cell by)
let record_max c v = atomic_max c.cell v
let value c = Atomic.get c.cell

let gauge name =
  find_or_register gauges name (fun () ->
    { gcur = Atomic.make 0; gwmin = Atomic.make 0; gwmax = Atomic.make 0 })

let gauge_watermarks g v =
  atomic_min g.gwmin v;
  atomic_max g.gwmax v

let set_gauge g v =
  Atomic.set g.gcur v;
  gauge_watermarks g v

let add_gauge g by =
  let v = Atomic.fetch_and_add g.gcur by + by in
  gauge_watermarks g v

let gauge_value g = Atomic.get g.gcur

(* Start a fresh min/max window on every gauge: both watermarks collapse
   to the current value. The telemetry exporter calls this after each
   snapshot so each exported interval carries its own excursion. *)
let rewind_gauges () =
  with_lock (fun () ->
    Hashtbl.iter
      (fun _ g ->
        let v = Atomic.get g.gcur in
        Atomic.set g.gwmin v;
        Atomic.set g.gwmax v)
      gauges)

let timer name = find_or_register timers name (fun () -> { th = make_hist () })
let histogram name = find_or_register histograms name (fun () -> { hh = make_hist () })

let add_seconds t s = hist_observe_ns t.th (int_of_float (s *. 1e9))

let time t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_seconds t (Unix.gettimeofday () -. t0)) f

let calls t = Atomic.get t.th.hcount
let seconds t = float_of_int (Atomic.get t.th.hsum) /. 1e9

let observe_ns h ns = hist_observe_ns h.hh ns
let observe_s h s = hist_observe_ns h.hh (int_of_float (s *. 1e9))
let observations h = Atomic.get h.hh.hcount

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snap = {
  dbuckets : int array;
  dcount : int;
  dsum_ns : int;
  dmax_ns : int;
}

type timer_stat = { tcalls : int; tseconds : float; tdist : hist_snap }
type gauge_stat = { gvalue : int; gmin : int; gmax : int }

type snapshot = {
  scounters : (string * int) list;
  sgauges : (string * gauge_stat) list;
  stimers : (string * timer_stat) list;
  shists : (string * hist_snap) list;
}

let snap_hist h =
  {
    dbuckets = Array.map Atomic.get h.hbuckets;
    dcount = Atomic.get h.hcount;
    dsum_ns = Atomic.get h.hsum;
    dmax_ns = Atomic.get h.hmax;
  }

let timer_stat_of_snap d =
  { tcalls = d.dcount; tseconds = float_of_int d.dsum_ns /. 1e9; tdist = d }

let by_name (a, _) (b, _) = String.compare a b

(* Rank-based percentile estimate from the log buckets: the geometric
   midpoint of the bucket holding the p-th sample, clamped to the
   recorded max. [p] in [0, 100]. *)
let percentile d p =
  if d.dcount = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int d.dcount)) in
      max 1 (min d.dcount r)
    in
    let b = ref 0 and cum = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         cum := !cum + d.dbuckets.(i);
         if !cum >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min (bucket_mid !b) (float_of_int d.dmax_ns)
  end

let mean_ns d = if d.dcount = 0 then 0.0 else float_of_int d.dsum_ns /. float_of_int d.dcount

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  (* Span-level tracing with zero locking on the hot path. Each domain
     owns a ring buffer found through domain-local storage: begin/end
     touch only that ring (plus two global fetch-and-adds for the span
     id), so worker domains never contend. The registry mutex is taken
     once per domain (ring creation) and on the cold export/reset
     paths only. Ring fields are written by the owning domain alone;
     export reads them after the workers have joined. *)

  type event = {
    ename : string;
    ts_ns : int; (* span start, absolute *)
    dur_ns : int;
    sid : int;
    parent : int; (* 0 = root *)
    tid : int;
    earg : int; (* caller-supplied tag, -1 = none *)
  }

  type ring = {
    rtid : int;
    mutable rname : string;
    buf : event array;
    mutable widx : int; (* total events ever written; slot = widx mod cap *)
    mutable stack : int list; (* sids of open spans, innermost first *)
  }

  let enabled = Atomic.make false
  let epoch_ns = Atomic.make 0
  let next_sid = Atomic.make 1
  let next_tid = Atomic.make 0
  let capacity = ref 16384
  let rings_lock = Mutex.create ()
  let rings : ring list ref = ref []

  let null_event =
    { ename = ""; ts_ns = 0; dur_ns = 0; sid = 0; parent = 0; tid = 0; earg = -1 }

  let dls_ring : ring option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

  (* Ring wrap-around overwrites the oldest span silently; surface each
     overwrite as a counter so drops are visible in --metrics and the
     telemetry stream, not only in the Chrome export's missing spans. *)
  let dropped_counter = counter "obs.trace.dropped"

  let make_ring () =
    let tid = Atomic.fetch_and_add next_tid 1 in
    let r =
      {
        rtid = tid;
        rname = (if tid = 0 then "main" else Printf.sprintf "domain-%d" tid);
        buf = Array.make !capacity null_event;
        widx = 0;
        stack = [];
      }
    in
    Mutex.lock rings_lock;
    rings := r :: !rings;
    Mutex.unlock rings_lock;
    r

  let get_ring () =
    let slot = Domain.DLS.get dls_ring in
    match !slot with
    | Some r -> r
    | None ->
      let r = make_ring () in
      slot := Some r;
      r

  let set_capacity n = capacity := max 16 n
  let is_enabled () = Atomic.get enabled
  let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

  let enable () =
    if Atomic.get epoch_ns = 0 then Atomic.set epoch_ns (now_ns ());
    Atomic.set enabled true

  let disable () = Atomic.set enabled false

  let set_lane_name name =
    if Atomic.get enabled then (get_ring ()).rname <- name

  type span = { span_sid : int; span_name : string; span_start : int; span_parent : int;
                span_arg : int }

  let null_span = { span_sid = -1; span_name = ""; span_start = 0; span_parent = 0;
                    span_arg = -1 }

  let begin_span ?(arg = -1) name =
    if not (Atomic.get enabled) then null_span
    else begin
      let r = get_ring () in
      let sid = Atomic.fetch_and_add next_sid 1 in
      let parent = match r.stack with [] -> 0 | p :: _ -> p in
      r.stack <- sid :: r.stack;
      { span_sid = sid; span_name = name; span_start = now_ns (); span_parent = parent;
        span_arg = arg }
    end

  let end_span s =
    (* No [enabled] check: if the begin ran, the ring exists and the event
       is recorded even when tracing was switched off mid-span. *)
    if s.span_sid >= 0 then begin
      let r = get_ring () in
      let t1 = now_ns () in
      (match r.stack with
      | top :: rest when top = s.span_sid -> r.stack <- rest
      | _ -> r.stack <- List.filter (fun x -> x <> s.span_sid) r.stack);
      let e =
        {
          ename = s.span_name;
          ts_ns = s.span_start;
          dur_ns = max 0 (t1 - s.span_start);
          sid = s.span_sid;
          parent = s.span_parent;
          tid = r.rtid;
          earg = s.span_arg;
        }
      in
      let cap = Array.length r.buf in
      if r.widx >= cap then incr dropped_counter;
      r.buf.(r.widx mod cap) <- e;
      r.widx <- r.widx + 1
    end

  let with_span ?arg name f =
    let s = begin_span ?arg name in
    Fun.protect ~finally:(fun () -> end_span s) f

  let reset () =
    Mutex.lock rings_lock;
    List.iter
      (fun r ->
        r.widx <- 0;
        r.stack <- [])
      !rings;
    Mutex.unlock rings_lock;
    Atomic.set dropped_counter.cell 0;
    Atomic.set next_sid 1;
    Atomic.set epoch_ns (if Atomic.get enabled then now_ns () else 0)

  let span_count () =
    Mutex.lock rings_lock;
    let n = List.fold_left (fun acc r -> acc + r.widx) 0 !rings in
    Mutex.unlock rings_lock;
    n

  let dropped () =
    Mutex.lock rings_lock;
    let n =
      List.fold_left (fun acc r -> acc + max 0 (r.widx - Array.length r.buf)) 0 !rings
    in
    Mutex.unlock rings_lock;
    n

  (* All retained events, oldest-first by start timestamp. *)
  let events () =
    Mutex.lock rings_lock;
    let rs = !rings in
    Mutex.unlock rings_lock;
    let collected =
      List.concat_map
        (fun r ->
          let cap = Array.length r.buf in
          let n = min r.widx cap in
          List.init n (fun i ->
            (* oldest retained slot first when the ring has wrapped *)
            r.buf.((r.widx - n + i) mod cap)))
        rs
    in
    List.sort (fun a b -> compare a.ts_ns b.ts_ns) collected

  let lanes () =
    Mutex.lock rings_lock;
    let rs = !rings in
    Mutex.unlock rings_lock;
    List.sort compare (List.filter_map (fun r -> if r.widx > 0 then Some (r.rtid, r.rname) else None) rs)

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c when Char.code c < 0x20 || Char.code c = 0x7f ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Chrome trace-event JSON (the chrome://tracing / Perfetto format):
     one "M" thread_name metadata record per lane, then every span as a
     complete "X" event sorted by start time, timestamps in microseconds
     relative to {!enable}. *)
  let export_json () =
    let epoch = Atomic.get epoch_ns in
    let evs = events () in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    let first = ref true in
    let emit s =
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf s
    in
    List.iter
      (fun (tid, name) ->
        emit
          (Printf.sprintf
             "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
             tid (json_escape name)))
      (lanes ());
    List.iter
      (fun e ->
        let ts_us = float_of_int (max 0 (e.ts_ns - epoch)) /. 1e3 in
        let dur_us = float_of_int e.dur_ns /. 1e3 in
        let args =
          if e.earg >= 0 then
            Printf.sprintf "{\"sid\":%d,\"parent\":%d,\"i\":%d}" e.sid e.parent e.earg
          else Printf.sprintf "{\"sid\":%d,\"parent\":%d}" e.sid e.parent
        in
        emit
          (Printf.sprintf
             "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}"
             e.tid (json_escape e.ename) ts_us dur_us args))
      evs;
    Buffer.add_string buf "]}";
    Buffer.contents buf

  let write_file path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (export_json ());
        output_char oc '\n')
end

(* ------------------------------------------------------------------ *)
(* Snapshot / reset                                                    *)
(* ------------------------------------------------------------------ *)

let snapshot () =
  with_lock (fun () ->
    {
      scounters =
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) counters []
        |> List.sort by_name;
      sgauges =
        Hashtbl.fold
          (fun name g acc ->
            let v = Atomic.get g.gcur in
            (* Clamp so a watermark read torn against a concurrent update
               never inverts the invariant gmin <= gvalue <= gmax. *)
            ( name,
              {
                gvalue = v;
                gmin = min v (Atomic.get g.gwmin);
                gmax = max v (Atomic.get g.gwmax);
              } )
            :: acc)
          gauges []
        |> List.sort by_name;
      stimers =
        Hashtbl.fold
          (fun name t acc -> (name, timer_stat_of_snap (snap_hist t.th)) :: acc)
          timers []
        |> List.sort by_name;
      shists =
        Hashtbl.fold (fun name h acc -> (name, snap_hist h.hh) :: acc) histograms []
        |> List.sort by_name;
    })

let reset () =
  with_lock (fun () ->
    Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
    Hashtbl.iter
      (fun _ g ->
        Atomic.set g.gcur 0;
        Atomic.set g.gwmin 0;
        Atomic.set g.gwmax 0)
      gauges;
    Hashtbl.iter (fun _ t -> hist_reset t.th) timers;
    Hashtbl.iter (fun _ h -> hist_reset h.hh) histograms);
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Snapshot diff                                                       *)
(* ------------------------------------------------------------------ *)

(* [b - a] per cell, saturating at 0 (a reset between the snapshots, or a
   high-watermark gauge that climbed, keeps the [b] value rather than
   going negative). The max of a distribution delta is unknowable from
   bucket counts alone, so the diff keeps [b]'s max: an upper bound on
   the true window max. *)
let diff_hist a b =
  match a with
  | None -> b
  | Some a ->
    let sub x y = if y > x then x else x - y in
    {
      dbuckets = Array.mapi (fun i v -> sub v a.dbuckets.(i)) b.dbuckets;
      dcount = sub b.dcount a.dcount;
      dsum_ns = sub b.dsum_ns a.dsum_ns;
      dmax_ns = b.dmax_ns;
    }

let diff a b =
  let sub x y = if y > x then x else x - y in
  {
    scounters =
      List.map
        (fun (name, v) ->
          (name, sub v (Option.value ~default:0 (List.assoc_opt name a.scounters))))
        b.scounters;
    (* Gauges are levels, not flows: a windowed delta has no meaning, so
       the diff keeps [b]'s value and watermarks verbatim. *)
    sgauges = b.sgauges;
    stimers =
      List.map
        (fun (name, t) ->
          let prev = Option.map (fun p -> p.tdist) (List.assoc_opt name a.stimers) in
          (name, timer_stat_of_snap (diff_hist prev t.tdist)))
        b.stimers;
    shists =
      List.map
        (fun (name, d) -> (name, diff_hist (List.assoc_opt name a.shists) d))
        b.shists;
  }

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

(* 1234567 -> "1,234,567" *)
let group_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Human duration from nanoseconds: "412ns", "3.4us", "12.8ms", "1.25s". *)
let pp_dur_ns ns =
  if ns < 0.5 then "0"
  else if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let dist_columns d =
  ( pp_dur_ns (mean_ns d),
    pp_dur_ns (percentile d 50.0),
    pp_dur_ns (percentile d 90.0),
    pp_dur_ns (percentile d 99.0),
    pp_dur_ns (float_of_int d.dmax_ns) )

let pp_dist_header fmt label =
  Format.fprintf fmt "%-36s %12s %12s %9s %9s %9s %9s %9s" label "calls" "seconds" "mean"
    "p50" "p90" "p99" "max"

let pp_dist_row fmt name d =
  let mean, p50, p90, p99, mx = dist_columns d in
  Format.fprintf fmt "@,  %-34s %12s %12.6f %9s %9s %9s %9s %9s" name (group_int d.dcount)
    (float_of_int d.dsum_ns /. 1e9)
    mean p50 p90 p99 mx

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  let sections = ref 0 in
  let sep () =
    if !sections > 0 then Format.fprintf fmt "@,";
    Stdlib.incr sections
  in
  if s.scounters <> [] then begin
    sep ();
    Format.fprintf fmt "counters:";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "@,  %-34s %14s" name (group_int v))
      s.scounters
  end;
  if s.sgauges <> [] then begin
    sep ();
    Format.fprintf fmt "%-36s %12s %9s %9s" "gauges:" "value" "min" "max";
    List.iter
      (fun (name, g) ->
        Format.fprintf fmt "@,  %-34s %12s %9s %9s" name (group_int g.gvalue)
          (group_int g.gmin) (group_int g.gmax))
      s.sgauges
  end;
  if s.stimers <> [] then begin
    sep ();
    pp_dist_header fmt "timers:";
    List.iter (fun (name, t) -> pp_dist_row fmt name t.tdist) s.stimers
  end;
  if s.shists <> [] then begin
    sep ();
    pp_dist_header fmt "histograms:";
    List.iter (fun (name, d) -> pp_dist_row fmt name d) s.shists
  end;
  if !sections = 0 then Format.fprintf fmt "(no metrics recorded)";
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape = Trace.json_escape

let json_of_dist d =
  Printf.sprintf
    "\"mean_s\":%.9f,\"p50_s\":%.9f,\"p90_s\":%.9f,\"p99_s\":%.9f,\"max_s\":%.9f"
    (mean_ns d /. 1e9)
    (percentile d 50.0 /. 1e9)
    (percentile d 90.0 /. 1e9)
    (percentile d 99.0 /. 1e9)
    (float_of_int d.dmax_ns /. 1e9)

let to_json s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    s.scounters;
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (name, g) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":{\"value\":%d,\"min\":%d,\"max\":%d}" (json_escape name)
           g.gvalue g.gmin g.gmax))
    s.sgauges;
  Buffer.add_string buf "},\"timers\":{";
  List.iteri
    (fun i (name, t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":{\"calls\":%d,\"seconds\":%.6f,%s}" (json_escape name)
           t.tcalls t.tseconds (json_of_dist t.tdist)))
    s.stimers;
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, d) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":{\"count\":%d,%s}" (json_escape name) d.dcount
           (json_of_dist d)))
    s.shists;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Structured logging                                                  *)
(* ------------------------------------------------------------------ *)

module Log = struct
  (* Leveled JSONL event log. Disabled (no sink) by default: an emit
     then costs one atomic load and one branch, so call sites can log
     unconditionally. Lines are formatted entirely outside the sink
     mutex; the lock covers only the final write, so worker domains
     never serialize on string formatting. *)

  type level = Debug | Info | Warn | Error

  let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
  let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

  let level_of_string s =
    match String.lowercase_ascii s with
    | "debug" -> Some Debug
    | "info" -> Some Info
    | "warn" | "warning" -> Some Warn
    | "error" -> Some Error
    | _ -> None

  type field = string * [ `S of string | `I of int | `F of float | `B of bool ]

  (* [min_rank] is read on every emit; the sink pointer is only mutated
     under [sink_lock] but read without it (a torn read is impossible for
     an immutable record pointer in OCaml). *)
  let min_rank = Atomic.make (rank Info)
  let sink_lock = Mutex.create ()
  let sink : (string -> unit) option ref = ref None
  let owned_chan : out_channel option ref = ref None
  let lines_counter = counter "obs.log.lines"

  let set_level l = Atomic.set min_rank (rank l)

  let current_level () =
    match Atomic.get min_rank with
    | 0 -> Debug
    | 1 -> Info
    | 2 -> Warn
    | _ -> Error

  let close_owned () =
    match !owned_chan with
    | Some oc ->
      owned_chan := None;
      (try close_out oc with Sys_error _ -> ())
    | None -> ()

  let disable () =
    Mutex.lock sink_lock;
    sink := None;
    close_owned ();
    Mutex.unlock sink_lock

  let to_channel oc =
    Mutex.lock sink_lock;
    close_owned ();
    sink := Some (fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc);
    Mutex.unlock sink_lock

  let to_file path =
    match open_out_gen [ Open_append; Open_creat ] 0o644 path with
    | exception Sys_error msg -> Result.error msg
    | oc ->
      Mutex.lock sink_lock;
      close_owned ();
      owned_chan := Some oc;
      sink := Some (fun line ->
        output_string oc line;
        output_char oc '\n';
        flush oc);
      Mutex.unlock sink_lock;
      Result.ok ()

  let is_enabled l = !sink <> None && rank l >= Atomic.get min_rank

  (* Per-domain ambient correlation id: serve mints one per request and
     wraps the pipeline call, so any log line emitted underneath carries
     the request's id without threading it through every signature. *)
  let dls_corr : string option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

  let corr () = !(Domain.DLS.get dls_corr)

  let with_corr id f =
    let slot = Domain.DLS.get dls_corr in
    let saved = !slot in
    slot := Some id;
    Fun.protect ~finally:(fun () -> slot := saved) f

  let add_field buf (k, v) =
    Buffer.add_string buf ",\"";
    Buffer.add_string buf (json_escape k);
    Buffer.add_string buf "\":";
    match v with
    | `S s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
    | `I i -> Buffer.add_string buf (string_of_int i)
    | `F f ->
      (* %g would lose precision on big counters; %.6f covers ms-resolution
         timings and jsonlite parses it back exactly enough. *)
      Buffer.add_string buf (Printf.sprintf "%.6f" f)
    | `B b -> Buffer.add_string buf (if b then "true" else "false")

  let format_line ~ts ~level ~event ~corr fields =
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\"" ts
       (level_name level) (json_escape event));
    (match corr with
    | Some id ->
      Buffer.add_string buf ",\"corr\":\"";
      Buffer.add_string buf (json_escape id);
      Buffer.add_char buf '"'
    | None -> ());
    List.iter (add_field buf) fields;
    Buffer.add_char buf '}';
    Buffer.contents buf

  let log level event fields =
    if is_enabled level then begin
      let line =
        format_line ~ts:(Unix.gettimeofday ()) ~level ~event ~corr:(corr ()) fields
      in
      incr lines_counter;
      Mutex.lock sink_lock;
      (match !sink with Some write -> (try write line with Sys_error _ -> ()) | None -> ());
      Mutex.unlock sink_lock
    end

  let debug event fields = log Debug event fields
  let info event fields = log Info event fields
  let warn event fields = log Warn event fields
  let error event fields = log Error event fields
end
