(* Rendering for `tilings top`: parse the telemetry JSONL trail into
   samples and draw a plain-text frame — counters as rates, gauges with
   sparklines over the recent window, timers with p50/p99 columns. The
   CLI owns the terminal loop (tailing, ANSI clear, interval); this
   module is pure so tests can feed it canned samples and diff
   strings. *)

type dist_row = {
  calls : int;
  total_s : float;
  p50_s : float;
  p99_s : float;
  max_s : float;
}

type sample = {
  ts : float;
  seq : int;
  counters : (string * float) list;
  gauges : (string * (float * float * float)) list; (* value, min, max *)
  timers : (string * dist_row) list;
  hists : (string * dist_row) list;
}

let num ~default name j =
  Option.value ~default (Jsonlite.num_member name j)

let parse_dist ~count_field j =
  {
    calls = int_of_float (num ~default:0.0 count_field j);
    total_s = num ~default:0.0 "seconds" j;
    p50_s = num ~default:0.0 "p50_s" j;
    p99_s = num ~default:0.0 "p99_s" j;
    max_s = num ~default:0.0 "max_s" j;
  }

let obj_members name j =
  match Option.bind (Jsonlite.member name j) Jsonlite.to_obj with
  | Some kvs -> kvs
  | None -> []

let parse_line line =
  match Jsonlite.parse line with
  | Error msg -> Error msg
  | Ok j -> (
    match (Jsonlite.num_member "ts" j, Jsonlite.member "obs" j) with
    | None, _ -> Error "missing \"ts\""
    | _, None -> Error "missing \"obs\""
    | Some ts, Some obs ->
      Ok
        {
          ts;
          seq = int_of_float (num ~default:0.0 "seq" j);
          counters =
            List.filter_map
              (fun (k, v) -> Option.map (fun n -> (k, n)) (Jsonlite.to_num v))
              (obj_members "counters" obs);
          gauges =
            List.map
              (fun (k, v) ->
                ( k,
                  ( num ~default:0.0 "value" v,
                    num ~default:0.0 "min" v,
                    num ~default:0.0 "max" v ) ))
              (obj_members "gauges" obs);
          timers =
            List.map
              (fun (k, v) -> (k, parse_dist ~count_field:"calls" v))
              (obj_members "timers" obs);
          hists =
            List.map
              (fun (k, v) -> (k, parse_dist ~count_field:"count" v))
              (obj_members "histograms" obs);
        })

(* ------------------------------------------------------------------ *)
(* Sparklines                                                          *)
(* ------------------------------------------------------------------ *)

let spark_levels = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                      "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

(* One glyph per value, scaled to the series' own min..max; a flat
   series renders as a low bar so idle gauges read as a quiet floor. *)
let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let lo = List.fold_left Float.min infinity values in
    let hi = List.fold_left Float.max neg_infinity values in
    let buf = Buffer.create (3 * List.length values) in
    List.iter
      (fun v ->
        let idx =
          if hi <= lo then 0
          else
            let r = (v -. lo) /. (hi -. lo) in
            max 0 (min 7 (int_of_float (r *. 7.99)))
        in
        Buffer.add_string buf spark_levels.(idx))
      values;
    Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Frame rendering                                                     *)
(* ------------------------------------------------------------------ *)

let spark_width = 24

(* Rate of change between the last two samples; counters are cumulative
   in the trail, so this is the only derivative worth showing. *)
let rate_of ~prev ~last name get =
  match prev with
  | None -> None
  | Some p ->
    let dt = last.ts -. p.ts in
    if dt <= 0.0 then None
    else
      Option.bind (get last name) (fun nv ->
        Option.map (fun pv -> (nv -. pv) /. dt) (get p name))

let counter_of s name = List.assoc_opt name s.counters
let gauge_of s name = Option.map (fun (v, _, _) -> v) (List.assoc_opt name s.gauges)
let timer_calls s name = Option.map (fun t -> float_of_int t.calls) (List.assoc_opt name s.timers)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let fmt_rate = function
  | None -> "-"
  | Some r when Float.abs r >= 1000.0 -> Printf.sprintf "%.0f/s" r
  | Some r when Float.abs r >= 10.0 -> Printf.sprintf "%.1f/s" r
  | Some r -> Printf.sprintf "%.2f/s" r

let render samples =
  match List.rev samples with
  | [] -> "telemetry: no samples yet\n"
  | last :: older ->
    let prev = match older with p :: _ -> Some p | [] -> None in
    let window = last_n spark_width samples in
    let b = Buffer.create 2048 in
    let span =
      match samples with
      | first :: _ -> last.ts -. first.ts
      | [] -> 0.0
    in
    Buffer.add_string b
      (Printf.sprintf "telemetry  %d sample%s  window %.1fs  seq %d\n"
         (List.length samples)
         (if List.length samples = 1 then "" else "s")
         span last.seq);
    if last.counters <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "\n%-36s %14s %10s\n" "counters" "total" "rate");
      List.iter
        (fun (name, v) ->
          let rate = rate_of ~prev ~last name counter_of in
          Buffer.add_string b
            (Printf.sprintf "  %-34s %14s %10s\n" name
               (Obs.group_int (int_of_float v))
               (fmt_rate rate)))
        last.counters
    end;
    if last.gauges <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "\n%-36s %8s %8s %8s  %s\n" "gauges" "value" "min" "max" "history");
      List.iter
        (fun (name, (v, lo, hi)) ->
          let history =
            List.filter_map (fun s -> gauge_of s name) window
          in
          Buffer.add_string b
            (Printf.sprintf "  %-34s %8s %8s %8s  %s\n" name
               (Obs.group_int (int_of_float v))
               (Obs.group_int (int_of_float lo))
               (Obs.group_int (int_of_float hi))
               (sparkline history)))
        last.gauges
    end;
    let dist_section label rows rate_get =
      if rows <> [] then begin
        Buffer.add_string b
          (Printf.sprintf "\n%-36s %10s %9s %9s %9s %9s\n" label "calls" "rate" "p50" "p99"
             "max");
        List.iter
          (fun (name, t) ->
            let rate = rate_of ~prev ~last name rate_get in
            Buffer.add_string b
              (Printf.sprintf "  %-34s %10s %9s %9s %9s %9s\n" name
                 (Obs.group_int t.calls) (fmt_rate rate)
                 (Obs.pp_dur_ns (t.p50_s *. 1e9))
                 (Obs.pp_dur_ns (t.p99_s *. 1e9))
                 (Obs.pp_dur_ns (t.max_s *. 1e9))))
          rows
      end
    in
    dist_section "timers" last.timers timer_calls;
    dist_section "histograms" last.hists (fun s name ->
      Option.map (fun t -> float_of_int t.calls) (List.assoc_opt name s.hists));
    Buffer.contents b
