(** Frame rendering for [tilings top]: parses the telemetry JSONL trail
    (see {!Telemetry}) into samples and draws a plain-text dashboard —
    counters converted to rates between the last two samples, gauges
    with min/max and a sparkline over the recent window, timers and
    histograms with p50/p99/max columns. Pure string-in/string-out so
    tests can feed canned samples; the CLI owns tailing, the refresh
    loop and ANSI screen clearing. *)

type dist_row = {
  calls : int;
  total_s : float;
  p50_s : float;
  p99_s : float;
  max_s : float;
}

type sample = {
  ts : float;  (** unix seconds of the exporter tick *)
  seq : int;
  counters : (string * float) list;
  gauges : (string * (float * float * float)) list;  (** value, min, max *)
  timers : (string * dist_row) list;
  hists : (string * dist_row) list;
}

val parse_line : string -> (sample, string) result
(** Parse one telemetry JSONL record. Unknown fields are ignored, so
    newer producers stay readable. *)

val sparkline : float list -> string
(** One block glyph per value ([▁]..[█]), scaled to the series' own
    range; a flat series renders as the lowest bar. *)

val render : sample list -> string
(** Render a frame from samples ordered oldest first. Counter/timer
    rates need at least two samples; with fewer the rate column shows
    ["-"]. Percentile columns reflect the trail's cumulative
    distributions (the exporter snapshots totals, not deltas). *)
