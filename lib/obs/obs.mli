(** Lightweight process-wide observability: named counters and timers.

    The paper's whole subject is counting words moved; this module lets
    the tooling count its own work with the same discipline — simplex
    pivots, memo hits, cache-level traffic, pool utilization — without
    ad-hoc printf instrumentation.

    Handles are registered in a global registry keyed by name: asking for
    the same name twice returns the same handle, so call sites can hold a
    module-level handle or re-resolve by name, whichever is convenient.

    Everything is safe to use from {!Pool} worker domains: counter and
    timer cells are atomics, and the registry itself is guarded by a
    mutex (taken only on handle creation and snapshotting, never on the
    increment path). Increments are lock-free and cost one
    fetch-and-add, so instrumenting per-pivot or per-memo-lookup events
    is fine; do not instrument per-simulated-access events — aggregate
    and record once per run instead (see {!Cache.record_obs}). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find or register the counter with this name. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). Monotonic by convention: use non-negative
    increments so snapshots can be diffed across time. *)

val record_max : counter -> int -> unit
(** Raise the counter to [v] if [v] exceeds the current value (a
    high-watermark gauge, e.g. largest tableau seen). Lock-free CAS. *)

val value : counter -> int

(** {1 Timers} *)

type timer

val timer : string -> timer
(** Find or register the timer with this name. A timer accumulates total
    wall-clock seconds and a call count. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall-clock duration to the timer (also on
    exception). *)

val add_seconds : timer -> float -> unit
(** Record an externally-measured span. *)

val calls : timer -> int
val seconds : timer -> float

(** {1 Snapshots} *)

type timer_stat = { tcalls : int; tseconds : float }

type snapshot = {
  scounters : (string * int) list;  (** sorted by name *)
  stimers : (string * timer_stat) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Consistent-enough point-in-time view: each cell is read atomically
    (concurrent increments may or may not be included, but nothing is
    ever lost or double-counted). *)

val reset : unit -> unit
(** Zero every registered counter and timer. Handles stay valid. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable two-section table. *)

val to_json : snapshot -> string
(** One JSON object:
    [{"counters":{name:int,...},"timers":{name:{"calls":int,"seconds":float},...}}].
    This is the ["obs"] section the CLI and bench emit under
    [--metrics]. *)
