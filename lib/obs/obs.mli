(** Lightweight process-wide observability: counters, timers with latency
    histograms, standalone histograms, and span-level tracing.

    The paper's whole subject is counting words moved; this module lets
    the tooling count its own work with the same discipline — simplex
    pivots, memo hits, cache-level traffic, pool utilization — without
    ad-hoc printf instrumentation. PR 3 adds the {e when} and {e where}:
    every timer keeps a lock-free log-bucketed histogram of its samples
    (p50/p90/p99/max for free), and {!Trace} records spans into
    per-domain ring buffers exported as Chrome trace-event JSON.

    Handles are registered in a global registry keyed by name: asking for
    the same name twice returns the same handle, so call sites can hold a
    module-level handle or re-resolve by name, whichever is convenient.

    Everything is safe to use from {!Pool} worker domains: counter,
    timer and histogram cells are atomics, and the registry itself is
    guarded by a mutex (taken only on handle creation and snapshotting,
    never on the increment path). Increments are lock-free; a timer or
    histogram record costs three fetch-and-adds plus a CAS loop for the
    max. Do not instrument per-simulated-access events — aggregate and
    record once per run instead (see {!Cache.record_obs}). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find or register the counter with this name. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). Monotonic by convention: use non-negative
    increments so snapshots can be diffed across time. *)

val record_max : counter -> int -> unit
(** Raise the counter to [v] if [v] exceeds the current value (a
    high-watermark gauge, e.g. largest tableau seen). Lock-free CAS. *)

val value : counter -> int

(** {1 Gauges}

    Levels rather than flows: a gauge goes up and down (queue depth,
    in-flight requests, memo-cache entries, idle pool domains). Each
    gauge tracks its current value plus min/max watermarks since the
    last {!rewind_gauges}, so a periodic exporter can report the full
    excursion inside each interval even when the value at tick time is
    calm. All operations are lock-free atomics; under concurrent
    updates the watermarks may miss a transient peak between the
    value update and the watermark fold, never by more than one
    in-flight update per contender. *)

type gauge

val gauge : string -> gauge
(** Find or register the gauge with this name. Initial value 0. *)

val set_gauge : gauge -> int -> unit
(** Set the current value (and fold it into the window watermarks). *)

val add_gauge : gauge -> int -> unit
(** Add a (possibly negative) delta to the current value. *)

val gauge_value : gauge -> int

val rewind_gauges : unit -> unit
(** Start a fresh watermark window on every registered gauge: min and
    max collapse to the current value. Called by the telemetry exporter
    after each snapshot. *)

(** {1 Timers} *)

type timer

val timer : string -> timer
(** Find or register the timer with this name. A timer accumulates total
    wall-clock seconds and a call count, and buckets every sample into
    its latency histogram. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall-clock duration to the timer (also on
    exception). *)

val add_seconds : timer -> float -> unit
(** Record an externally-measured span. *)

val calls : timer -> int
val seconds : timer -> float

(** {1 Histograms}

    Lock-free log-bucketed distributions of nanosecond values: 4
    sub-buckets per power of two, 256 buckets, so percentile estimates
    carry at most ~19% relative bucket error. Every {!timer} embeds one;
    standalone handles are for latencies measured outside a timer. *)

type histogram

val histogram : string -> histogram
(** Find or register the standalone histogram with this name. *)

val observe_ns : histogram -> int -> unit
(** Record one non-negative nanosecond sample. Lock-free. *)

val observe_s : histogram -> float -> unit
(** [observe_ns] of [seconds *. 1e9]. *)

val observations : histogram -> int

(** {1 Snapshots} *)

type hist_snap = {
  dbuckets : int array;  (** per-bucket sample counts *)
  dcount : int;
  dsum_ns : int;
  dmax_ns : int;
}

type timer_stat = {
  tcalls : int;
  tseconds : float;
  tdist : hist_snap;  (** the timer's latency distribution *)
}

type gauge_stat = {
  gvalue : int;  (** current value at snapshot time *)
  gmin : int;  (** lowest value since the last {!rewind_gauges} *)
  gmax : int;  (** highest value since the last {!rewind_gauges} *)
}

type snapshot = {
  scounters : (string * int) list;  (** sorted by name *)
  sgauges : (string * gauge_stat) list;  (** sorted by name *)
  stimers : (string * timer_stat) list;  (** sorted by name *)
  shists : (string * hist_snap) list;  (** standalone histograms, sorted *)
}

val snapshot : unit -> snapshot
(** Consistent-enough point-in-time view: each cell is read atomically
    (concurrent increments may or may not be included, but nothing is
    ever lost or double-counted). *)

val diff : snapshot -> snapshot -> snapshot
(** [diff before after] is the work between the two snapshots: counters,
    timer/histogram counts, sums and buckets subtract elementwise,
    saturating at 0 (so a high-watermark counter or an interleaved
    {!reset} degrades to the [after] value rather than going negative).
    Distribution maxima are not recoverable from bucket deltas, so the
    diff keeps [after]'s max — an upper bound on the window max. Gauges
    are levels, not flows: the diff keeps [after]'s gauge stats
    verbatim. This is what [sweep --metrics] and the bench emit, so
    their ["obs"] sections are per-invocation, not process-lifetime
    totals. *)

val reset : unit -> unit
(** Zero every registered counter, timer and histogram (buckets
    included) and clear all trace ring buffers. Handles stay valid. *)

val percentile : hist_snap -> float -> float
(** [percentile d p] for [p] in [0,100]: the nanosecond value at the
    p-th percentile, estimated as the geometric midpoint of the bucket
    holding that rank, clamped to the recorded max. 0 when empty. *)

val mean_ns : hist_snap -> float

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table: counters with thousands separators, then
    timers and histograms with calls/total/mean/p50/p90/p99/max
    columns. *)

val group_int : int -> string
(** [group_int 1234567 = "1,234,567"]. *)

val pp_dur_ns : float -> string
(** Compact human duration: ["412ns"], ["3.4us"], ["12.8ms"], ["1.25s"]. *)

val to_json : snapshot -> string
(** One JSON object:
    [{"counters":{name:int,...},
      "gauges":{name:{"value":int,"min":int,"max":int},...},
      "timers":{name:{"calls":int,"seconds":float,"mean_s":...,"p50_s":...,
                      "p90_s":...,"p99_s":...,"max_s":...},...},
      "histograms":{name:{"count":int,"mean_s":...,...},...}}].
    Metric names are JSON-escaped so any registered name parses back
    identically through {!Jsonlite}. This is the ["obs"] section the
    CLI and bench emit under [--metrics]. *)

(** {1 Tracing}

    Span-level tracing across {!Pool} worker domains. Each domain owns a
    ring buffer reached through domain-local storage, so
    {!Trace.begin_span}/{!Trace.end_span} never take a lock — the only
    global operations are two atomic fetch-and-adds (span id) and the
    one-time ring registration per domain. When tracing is disabled
    (the default) a span costs one atomic load.

    Spans must begin and end on the same domain, LIFO within the domain
    (which [with_span] guarantees); parent links come from the
    per-domain stack of open spans. Rings hold the most recent
    [capacity] spans per domain — older ones are overwritten, see
    {!Trace.dropped}. *)

module Trace : sig
  type event = {
    ename : string;
    ts_ns : int;  (** span start, absolute nanoseconds *)
    dur_ns : int;
    sid : int;  (** unique span id, > 0 *)
    parent : int;  (** enclosing span's id, 0 for roots *)
    tid : int;  (** lane: one per domain that ever traced *)
    earg : int;  (** caller tag (e.g. pool task index), -1 = none *)
  }

  val enable : unit -> unit
  (** Start recording. The first call pins the trace epoch; exported
      timestamps are relative to it. *)

  val disable : unit -> unit
  val is_enabled : unit -> bool

  val set_capacity : int -> unit
  (** Ring size (spans per domain) for rings created after this call.
      Default 16384. *)

  type span

  val begin_span : ?arg:int -> string -> span
  (** Open a span named [name]. No-op (and allocation-free) when
      disabled. [arg] is an integer tag exported as [args.i]. *)

  val end_span : span -> unit
  (** Close the span and write the completed event to this domain's
      ring. Must run on the domain that opened it. *)

  val with_span : ?arg:int -> string -> (unit -> 'a) -> 'a
  (** [begin_span]/[end_span] around the thunk (also on exception). *)

  val set_lane_name : string -> unit
  (** Name the calling domain's lane in the exported trace ("worker-3");
      defaults are "main" / "domain-N". No-op when disabled. *)

  val reset : unit -> unit
  (** Clear every ring (also done by {!Obs.reset}). *)

  val span_count : unit -> int
  (** Total spans recorded since the last reset, dropped ones included. *)

  val dropped : unit -> int
  (** Spans overwritten by ring wrap-around since the last reset. Each
      overwrite also increments the ["obs.trace.dropped"] counter, so
      drops show up in metric snapshots and the telemetry stream. *)

  val events : unit -> event list
  (** Retained events across all lanes, sorted by start time. Call after
      parallel work has joined — rings are read without synchronization. *)

  val lanes : unit -> (int * string) list
  (** [(tid, name)] of every lane with at least one retained event. *)

  val export_json : unit -> string
  (** Chrome trace-event JSON ({{:https://ui.perfetto.dev}Perfetto} /
      [chrome://tracing] loadable): one [ph:"M"] thread-name record per
      lane, then every span as a complete [ph:"X"] event with
      microsecond [ts]/[dur] relative to {!enable}, [pid] 1, [tid] per
      lane, and [args] carrying [sid]/[parent] (and [i] when a tag was
      given), sorted by [ts]. *)

  val write_file : string -> unit
  (** {!export_json} to a file (with a trailing newline). *)
end

(** {1 Structured logging}

    Leveled JSONL event log with per-request correlation. Disabled (no
    sink) by default, in which case an emit costs one pointer load and
    one branch — call sites log unconditionally. Lines are formatted
    outside the sink lock; only the final write is serialized, so
    worker domains never contend on formatting.

    Each line is one JSON object:
    [{"ts":<unix seconds>,"level":"info","event":"serve.request",
      "corr":"req-42",<fields>...}]
    with ["corr"] present when an ambient correlation id is set via
    {!Log.with_corr} (the serve layer wraps each request in one, so
    pipeline-level events attribute themselves to the request that
    caused them). *)

module Log : sig
  type level = Debug | Info | Warn | Error

  val level_of_string : string -> level option
  (** ["debug"], ["info"], ["warn"]/["warning"], ["error"]
      (case-insensitive). *)

  val level_name : level -> string

  val set_level : level -> unit
  (** Minimum level that reaches the sink (default [Info]). *)

  val current_level : unit -> level

  val to_channel : out_channel -> unit
  (** Send log lines to [oc], flushed per line (tail-friendly). The
      channel is not closed by {!disable}. *)

  val to_file : string -> (unit, string) result
  (** Append log lines to [path] (created if missing). The file is
      owned: replaced sinks and {!disable} close it. *)

  val disable : unit -> unit
  (** Drop the sink; logging becomes a no-op again. *)

  val is_enabled : level -> bool
  (** True when a sink is set and [level] clears the threshold. Use to
      guard expensive field computation; plain {!log} calls need no
      guard. *)

  type field = string * [ `S of string | `I of int | `F of float | `B of bool ]

  val log : level -> string -> field list -> unit
  (** [log level event fields] emits one JSONL line (no-op when the
      level is below the threshold or no sink is set). [event] is a
      dot-separated name like ["serve.request"]. *)

  val debug : string -> field list -> unit
  val info : string -> field list -> unit
  val warn : string -> field list -> unit
  val error : string -> field list -> unit

  val with_corr : string -> (unit -> 'a) -> 'a
  (** Run the thunk with [id] as the calling domain's ambient
      correlation id: every line logged underneath (on this domain)
      carries ["corr":id]. Nests; restored on exit and exception. *)

  val corr : unit -> string option
  (** The calling domain's current ambient correlation id. *)
end
