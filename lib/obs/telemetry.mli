(** Periodic metrics exporter: a background ticker that snapshots the
    {!Obs} registry every interval and writes a time-series trail,
    either as appended JSONL records or as an OpenMetrics/Prometheus
    text exposition (chosen by file suffix: [*.om] means OpenMetrics,
    anything else JSONL).

    JSONL mode appends one record per tick —
    [{"ts":<unix seconds>,"seq":<n>,"obs":<Obs.to_json snapshot>}] —
    so restarts and replicas writing to the same file leave one
    contiguous, append-only metrics trail that [tilings top] can tail.
    OpenMetrics mode atomically rewrites the file with the current
    exposition each tick (temp file + rename), ready for a scraper.

    The exporter runs on its own POSIX thread and never blocks
    instrumented code: metric updates stay lock-free atomics, and all
    formatting happens on the ticker thread. One tick is taken
    synchronously at {!start} and one at {!stop}, so every run leaves
    at least two timestamped snapshots. After each tick the gauge
    watermark window is rewound ({!Obs.rewind_gauges}), so each
    record's gauge min/max describe that interval alone. *)

type t

val start : ?interval_s:float -> string -> (t, string) result
(** Open the sink, write the first snapshot, and spawn the ticker
    (default interval 1s, clamped to >= 10ms). [Error msg] if the file
    cannot be opened. *)

val stop : t -> unit
(** Stop the ticker (joins the thread), write one final snapshot, and
    close the sink. Idempotent. *)

val interval : t -> float
val path : t -> string

(** {1 Pure renderers} — exposed for tests and one-shot exports. *)

val json_line : ts:float -> seq:int -> Obs.snapshot -> string
(** One JSONL record (no trailing newline). *)

val openmetrics : Obs.snapshot -> string
(** Full OpenMetrics text exposition, [# EOF]-terminated. Counters
    become [<name>_total] counter families, gauges three gauge families
    ([<name>], [<name>_min], [<name>_max] over the current watermark
    window), timers and histograms summary families with
    p50/p90/p99 quantiles, [_sum] seconds and [_count]. Names are
    sanitized to the exposition charset (prefixed [tilings_], invalid
    bytes mapped to [_]) and deduplicated deterministically when
    sanitization collides. *)
