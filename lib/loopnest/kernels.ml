let matmul ~l1 ~l2 ~l3 =
  Spec.create_exn ~name:"matmul"
    ~loops:[| "x1"; "x2"; "x3" |]
    ~bounds:[| l1; l2; l3 |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "C" [ 0; 2 ];
        Spec.array_ref "A" [ 0; 1 ];
        Spec.array_ref "B" [ 1; 2 ];
      |]

let matvec ~m ~n =
  let t = matmul ~l1:m ~l2:n ~l3:1 in
  Spec.create_exn ~name:"matvec" ~loops:t.Spec.loops ~bounds:t.Spec.bounds ~arrays:t.Spec.arrays

let tensor_contraction ~j ~k ~d ~bounds =
  if not (1 <= j && j < k - 1 && k - 1 < d) then
    invalid_arg "Kernels.tensor_contraction: need 1 <= j < k-1 < d";
  if Array.length bounds <> d then invalid_arg "Kernels.tensor_contraction: bounds arity";
  let range a b = List.init (b - a + 1) (fun i -> a + i - 1) (* 1-based -> 0-based *) in
  Spec.create_exn ~name:"tensor_contraction"
    ~loops:(Array.init d (fun i -> Printf.sprintf "x%d" (i + 1)))
    ~bounds
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "A1" (range 1 j @ range k d);
        Spec.array_ref "A2" (range 1 (k - 1));
        Spec.array_ref "A3" (range (j + 1) d);
      |]

let pointwise_conv ~b ~c ~k ~w ~h =
  Spec.create_exn ~name:"pointwise_conv"
    ~loops:[| "b"; "c"; "k"; "w"; "h" |]
    ~bounds:[| b; c; k; w; h |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "Out" [ 0; 2; 3; 4 ];
        Spec.array_ref "Image" [ 0; 1; 3; 4 ];
        Spec.array_ref "Filter" [ 1; 2 ];
      |]

let fully_connected ~batch ~cin ~cout =
  Spec.create_exn ~name:"fully_connected"
    ~loops:[| "b"; "i"; "o" |]
    ~bounds:[| batch; cin; cout |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "Out" [ 0; 2 ];
        Spec.array_ref "In" [ 0; 1 ];
        Spec.array_ref "W" [ 1; 2 ];
      |]

let nbody ~l1 ~l2 =
  Spec.create_exn ~name:"nbody"
    ~loops:[| "x1"; "x2" |]
    ~bounds:[| l1; l2 |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "A1" [ 0 ];
        Spec.array_ref "A2" [ 0 ];
        Spec.array_ref "A3" [ 1 ];
      |]

let outer_product ~m ~n =
  Spec.create_exn ~name:"outer_product"
    ~loops:[| "x1"; "x2" |]
    ~bounds:[| m; n |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "C" [ 0; 1 ];
        Spec.array_ref "a" [ 0 ];
        Spec.array_ref "b" [ 1 ];
      |]

let batched_matmul ~batch ~l1 ~l2 ~l3 =
  Spec.create_exn ~name:"batched_matmul"
    ~loops:[| "b"; "x1"; "x2"; "x3" |]
    ~bounds:[| batch; l1; l2; l3 |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "C" [ 0; 1; 3 ];
        Spec.array_ref "A" [ 0; 1; 2 ];
        Spec.array_ref "B" [ 0; 2; 3 ];
      |]

let mttkrp ~i ~j ~k ~r =
  Spec.create_exn ~name:"mttkrp"
    ~loops:[| "i"; "j"; "k"; "r" |]
    ~bounds:[| i; j; k; r |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "M" [ 0; 3 ];
        Spec.array_ref "T" [ 0; 1; 2 ];
        Spec.array_ref "B" [ 1; 3 ];
        Spec.array_ref "C" [ 2; 3 ];
      |]

let three_body ~l1 ~l2 ~l3 =
  Spec.create_exn ~name:"three_body"
    ~loops:[| "x1"; "x2"; "x3" |]
    ~bounds:[| l1; l2; l3 |]
    ~arrays:
      [|
        Spec.array_ref ~mode:Spec.Update "A1" [ 0 ];
        Spec.array_ref "A2" [ 0 ];
        Spec.array_ref "A3" [ 1 ];
        Spec.array_ref "A4" [ 2 ];
      |]

let all () =
  [
    ("matmul", matmul ~l1:64 ~l2:64 ~l3:64);
    ("matvec", matvec ~m:64 ~n:64);
    ("tensor_contraction", tensor_contraction ~j:1 ~k:3 ~d:4 ~bounds:[| 16; 16; 16; 16 |]);
    ("pointwise_conv", pointwise_conv ~b:8 ~c:16 ~k:32 ~w:14 ~h:14);
    ("fully_connected", fully_connected ~batch:32 ~cin:64 ~cout:64);
    ("nbody", nbody ~l1:256 ~l2:256);
    ("outer_product", outer_product ~m:128 ~n:128);
    ("batched_matmul", batched_matmul ~batch:8 ~l1:32 ~l2:32 ~l3:32);
    ("mttkrp", mttkrp ~i:32 ~j:32 ~k:32 ~r:16);
    ("three_body", three_body ~l1:64 ~l2:64 ~l3:64);
  ]

let aliases =
  [
    ("mm", "matmul");
    ("mv", "matvec");
    ("conv", "pointwise_conv");
    ("fc", "fully_connected");
    ("bmm", "batched_matmul");
  ]

let lookup name =
  let presets = all () in
  let canonical =
    match List.assoc_opt name aliases with Some n -> n | None -> name
  in
  match List.assoc_opt canonical presets with
  | Some s -> Ok s
  | None -> (
    match
      List.filter (fun (n, _) -> String.starts_with ~prefix:canonical n) presets
    with
    | [ (_, s) ] -> Ok s
    | [] ->
      Error
        (Printf.sprintf "unknown kernel %S (try: %s)" name
           (String.concat ", " (List.map fst presets)))
    | multiple ->
      Error
        (Printf.sprintf "ambiguous kernel %S (matches: %s)" name
           (String.concat ", " (List.map fst multiple))))

let resolve name =
  if String.contains name ':' then
    match Parser.parse_string name with
    | Ok s -> Ok s
    | Error msg -> Error (Printf.sprintf "cannot parse kernel: %s" msg)
  else lookup name
