(** Projective nested-loop program descriptions.

    A program is [d] nested loops [x_1 in [L_1], ..., x_d in [L_d]] whose
    body touches [n] multidimensional arrays; array [j] is indexed by the
    projection of the iteration vector onto the loop-index subset
    [support j] (the "projective case" of the paper). This module is the
    IR shared by the lower-bound/tiling machinery ({!module:Hbl_lp} etc.)
    and the execution/simulation stack ({!module:Executor}). *)

type access_mode =
  | Read  (** array is an input: one read per touch *)
  | Write  (** array is overwritten: one write per touch *)
  | Update  (** read-modify-write accumulation, e.g. [C[i,k] += ...] *)

type array_ref = {
  aname : string;
  support : int array;  (** strictly increasing 0-based loop indices *)
  mode : access_mode;
}

type t = private {
  name : string;
  loops : string array;  (** loop-index names, outermost first *)
  bounds : int array;  (** loop bounds [L_i >= 1] *)
  arrays : array_ref array;
}

type error =
  | Empty_loops
  | Bad_bound of { loop : string; bound : int }
  | Duplicate_loop of string
  | Empty_arrays
  | Duplicate_array of string
  | Bad_support of { array_name : string; index : int }
  | Unsorted_support of string
  | Unused_loop of string
      (** every loop must appear in some support (WLOG assumption of the
          paper, following [CDK+13]) *)

val string_of_error : error -> string

val create :
  name:string ->
  loops:string array ->
  bounds:int array ->
  arrays:array_ref array ->
  (t, error) result

val create_exn :
  name:string -> loops:string array -> bounds:int array -> arrays:array_ref array -> t
(** @raise Invalid_argument with a rendered {!error} on invalid input. *)

val array_ref : ?mode:access_mode -> string -> int list -> array_ref
(** Convenience constructor; default mode is [Read]. Sorts and dedupes the
    support. *)

val with_bounds : t -> int array -> t
(** Same program shape with different loop bounds.
    @raise Invalid_argument on arity mismatch or non-positive bound. *)

(** {1 Accessors and derived quantities} *)

val num_loops : t -> int
val num_arrays : t -> int

val support_matrix : t -> int array array
(** [n x d] 0/1 matrix; row [j] is the indicator vector of [support j] —
    exactly the constraint matrix of the HBL LP (3.2). *)

val touching_arrays : t -> int -> int list
(** [touching_arrays t i] is the paper's [R_i]: indices of arrays whose
    support contains loop [i]. *)

val iteration_count : t -> int
(** Total number of iterations [prod_i L_i]. Silently wraps on native-int
    overflow — bounds of [2^21] per loop in 3 loops already exceed 63
    bits. Anything guarding on or reporting the count should use
    {!iteration_count_big}. *)

val iteration_count_big : t -> Bigint.t
(** Exact [prod_i L_i], never overflows. *)

val array_dims : t -> int -> int array
(** Extents of array [j]: the loop bounds of its support, in support
    order. *)

val array_words : t -> int -> int
(** Number of distinct elements of array [j] touched by the full
    iteration space: [prod_{i in support j} L_i]. *)

val total_array_words : t -> int
(** Sum over all arrays — the trivial communication lower bound of
    reading each input / writing each output once. *)

val loop_index : t -> string -> int option
(** Position of a loop name. *)

val equal_shape : t -> t -> bool
(** Equality of everything except array/loop names and bounds: same [d],
    same multiset of (support, mode). *)

val pp : Format.formatter -> t -> unit
(** Renders the program in the paper's pseudo-code style. *)
