(** A tiny textual DSL for projective loop nests.

    Concrete syntax (whitespace-insensitive; [#] starts a line comment):

    {v
      i = 64, j = 64, k = 8 : C[i,k] += A[i,j] * B[j,k]
    v}

    The part before [":"] declares the loops (outermost first) and their
    bounds; the statement after it is one assignment whose left-hand side
    is the output array ([+=] makes it an {!Spec.Update}, [=] a
    {!Spec.Write}) and whose right-hand side is any [*]/[+] combination of
    array references. Bare identifiers on the right (e.g. [alpha]) denote
    scalars and are ignored. Every array index must be a declared loop
    name; repeated indices such as [A[i,i]] collapse to a single support
    entry. *)

type position = { line : int; col : int }

type parse_error = { pos : position; message : string }

val string_of_error : parse_error -> string

val parse : ?name:string -> string -> (Spec.t, parse_error) result
(** Parse a full kernel description (loop declarations + statement). *)

val parse_string : ?name:string -> string -> (Spec.t, string) result
(** {!parse} with the error pre-rendered via {!string_of_error}
    (["line L, col C: message"]) — for callers that only display the
    error: the CLI's [--kernel] path and the serve daemon's request
    decoder both go through this. *)

val parse_exn : ?name:string -> string -> Spec.t
(** @raise Invalid_argument with a rendered error. *)

val to_dsl : Spec.t -> string option
(** Render a spec back into parseable DSL text. [None] if the spec is not
    representable as one assignment: the first array must be the only
    [Write]/[Update] and all others [Read]. Round-trip property:
    [parse (to_dsl s)] reconstructs the same loops, bounds, supports and
    modes. *)
