(** Stock projective loop nests — the kernels studied in the paper.

    Each constructor takes its loop bounds and returns a validated
    {!Spec.t}. These match the programs of Sections 1, 6.1, 6.2 and 6.3 of
    the paper. *)

val matmul : l1:int -> l2:int -> l3:int -> Spec.t
(** [C(x1,x3) += A(x1,x2) * B(x2,x3)] — Section 6.1. With the paper's
    conventions: [phi_1 = (x1,x3)], [phi_2 = (x1,x2)], [phi_3 = (x2,x3)]. *)

val matvec : m:int -> n:int -> Spec.t
(** Matrix-vector multiply: [matmul] with [l3 = 1]. *)

val tensor_contraction : j:int -> k:int -> d:int -> bounds:int array -> Spec.t
(** Section 6.2's generic contraction with [1 <= j < k-1 < d]:
    [A1(x_1..x_j, x_k..x_d) += A2(x_1..x_{k-1}) * A3(x_{j+1}..x_d)].
    [bounds] has length [d]; indices here are 1-based like the paper.
    @raise Invalid_argument if the index pattern is violated. *)

val pointwise_conv : b:int -> c:int -> k:int -> w:int -> h:int -> Spec.t
(** 1x1 ("pointwise") convolution, eq. (6.5):
    [Out(k,h,w,b) += Image(w,h,c,b) * Filter(k,c)]. Loop order
    [b, c, k, w, h]. *)

val fully_connected : batch:int -> cin:int -> cout:int -> Spec.t
(** A fully connected layer [Out(b,o) += In(b,i) * W(i,o)] — structurally
    matmul, listed separately because Section 6.2 calls it out. *)

val nbody : l1:int -> l2:int -> Spec.t
(** Pairwise interactions, Section 6.3:
    [A1(x1) = f(A2(x1), A3(x2))]. *)

val outer_product : m:int -> n:int -> Spec.t
(** [C(x1,x2) += a(x1) * b(x2)] — a 2-loop projective nest whose tile LP
    exercises the [b_i <= L_i] constraints in a different pattern from
    n-body. *)

val batched_matmul : batch:int -> l1:int -> l2:int -> l3:int -> Spec.t
(** [C(b,x1,x3) += A(b,x1,x2) * B(b,x2,x3)] — the batch index appears in
    every support, so the optimal tile never splits more of it than
    necessary. *)

val mttkrp : i:int -> j:int -> k:int -> r:int -> Spec.t
(** Matricized tensor times Khatri-Rao product, the workhorse of sparse
    and dense CP tensor decomposition:
    [M(i,r) += T(i,j,k) * B(j,r) * C(k,r)] — 4 loops, 4 arrays, all
    projective. *)

val three_body : l1:int -> l2:int -> l3:int -> Spec.t
(** Three-way interactions [A1(x1) += f(A2(x1), A3(x2), A4(x3))] — the
    [k]-body generalization of Section 6.3 for [k = 3]. *)

val all : unit -> (string * Spec.t) list
(** A representative instance of every kernel, for tests and demos. *)

(** {1 Name resolution}

    Shared by the CLI's positional-kernel arguments and the serve
    daemon's wire protocol, so both accept exactly the same spellings. *)

val aliases : (string * string) list
(** Shorthand -> preset name: [mm], [mv], [conv], [fc], [bmm]. *)

val lookup : string -> (Spec.t, string) result
(** Resolve a preset name, an alias, or a unique preset-name prefix
    against {!all}. The error message lists the candidates. *)

val resolve : string -> (Spec.t, string) result
(** Resolve a kernel in any accepted spelling: text containing [':'] is
    parsed as the DSL ({!Parser.parse_string}), anything else goes
    through {!lookup}. *)
