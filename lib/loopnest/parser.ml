type position = { line : int; col : int }
type parse_error = { pos : position; message : string }

let string_of_error e = Printf.sprintf "line %d, col %d: %s" e.pos.line e.pos.col e.message

type token =
  | Ident of string
  | Int of int
  | Lbracket
  | Rbracket
  | Comma
  | Colon
  | Equals
  | Plus_equals
  | Star
  | Plus
  | Eof

let string_of_token = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Comma -> "','"
  | Colon -> "':'"
  | Equals -> "'='"
  | Plus_equals -> "'+='"
  | Star -> "'*'"
  | Plus -> "'+'"
  | Eof -> "end of input"

exception Error of parse_error

let fail pos fmt = Printf.ksprintf (fun message -> raise (Error { pos; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type lexer = { src : string; mutable off : int; mutable line : int; mutable col : int }

let lexer_pos lx = { line = lx.line; col = lx.col }

let advance lx =
  (if lx.off < String.length lx.src then
     match lx.src.[lx.off] with
     | '\n' ->
       lx.line <- lx.line + 1;
       lx.col <- 1
     | _ -> lx.col <- lx.col + 1);
  lx.off <- lx.off + 1

let peek_char lx = if lx.off < String.length lx.src then Some lx.src.[lx.off] else None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let rec skip_blanks lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_blanks lx
  | Some '#' ->
    let rec to_eol () =
      match peek_char lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_blanks lx
  | _ -> ()

let next_token lx : position * token =
  skip_blanks lx;
  let pos = lexer_pos lx in
  match peek_char lx with
  | None -> (pos, Eof)
  | Some c ->
    if is_ident_start c then begin
      let start = lx.off in
      while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
        advance lx
      done;
      (pos, Ident (String.sub lx.src start (lx.off - start)))
    end
    else if is_digit c then begin
      let start = lx.off in
      while (match peek_char lx with Some c -> is_digit c || c = '_' | None -> false) do
        advance lx
      done;
      let text = String.sub lx.src start (lx.off - start) in
      match int_of_string_opt text with
      | Some n -> (pos, Int n)
      | None -> fail pos "malformed integer %S" text
    end
    else begin
      advance lx;
      match c with
      | '[' -> (pos, Lbracket)
      | ']' -> (pos, Rbracket)
      | ',' -> (pos, Comma)
      | ':' -> (pos, Colon)
      | '=' -> (pos, Equals)
      | '*' -> (pos, Star)
      | '+' -> (
        match peek_char lx with
        | Some '=' ->
          advance lx;
          (pos, Plus_equals)
        | _ -> (pos, Plus))
      | c -> fail pos "unexpected character %C" c
    end

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { lx : lexer; mutable tok : token; mutable tpos : position }

let bump ps =
  let pos, tok = next_token ps.lx in
  ps.tok <- tok;
  ps.tpos <- pos

let expect ps want =
  if ps.tok = want then bump ps
  else fail ps.tpos "expected %s but found %s" (string_of_token want) (string_of_token ps.tok)

let expect_ident ps what =
  match ps.tok with
  | Ident s ->
    bump ps;
    s
  | t -> fail ps.tpos "expected %s but found %s" what (string_of_token t)

(* loops := IDENT '=' INT (',' IDENT '=' INT)* *)
let parse_loops ps =
  let rec more acc =
    let name = expect_ident ps "a loop name" in
    expect ps Equals;
    let bound =
      match ps.tok with
      | Int n ->
        bump ps;
        n
      | t -> fail ps.tpos "expected a loop bound but found %s" (string_of_token t)
    in
    let acc = (name, bound) :: acc in
    match ps.tok with
    | Comma ->
      bump ps;
      more acc
    | _ -> List.rev acc
  in
  more []

(* ref := IDENT ('[' IDENT (',' IDENT)* ']')?   — bare idents are scalars *)
type rhs_item = Array_ref of string * string list * position | Scalar of string

let parse_ref ps =
  let pos = ps.tpos in
  let name = expect_ident ps "an array name" in
  match ps.tok with
  | Lbracket ->
    bump ps;
    let rec indices acc =
      let i = expect_ident ps "a loop index" in
      match ps.tok with
      | Comma ->
        bump ps;
        indices (i :: acc)
      | _ ->
        expect ps Rbracket;
        List.rev (i :: acc)
    in
    Array_ref (name, indices [], pos)
  | _ -> Scalar name

let parse ?name src =
  try
    let lx = { src; off = 0; line = 1; col = 1 } in
    let ps = { lx; tok = Eof; tpos = { line = 1; col = 1 } } in
    bump ps;
    let loops = parse_loops ps in
    expect ps Colon;
    (* statement := ref ('='|'+=') ref (('*'|'+') ref)* *)
    let target_pos = ps.tpos in
    let target = parse_ref ps in
    let mode =
      match ps.tok with
      | Plus_equals ->
        bump ps;
        Spec.Update
      | Equals ->
        bump ps;
        Spec.Write
      | t -> fail ps.tpos "expected '=' or '+=' but found %s" (string_of_token t)
    in
    let rec rhs acc =
      let r = parse_ref ps in
      match ps.tok with
      | Star | Plus ->
        bump ps;
        rhs (r :: acc)
      | _ -> List.rev (r :: acc)
    in
    let rhs_items = rhs [] in
    expect ps Eof;
    (* Elaborate to a Spec. *)
    let loop_names = Array.of_list (List.map fst loops) in
    let bounds = Array.of_list (List.map snd loops) in
    let index_of pos i =
      let found = ref (-1) in
      Array.iteri (fun k l -> if l = i && !found < 0 then found := k) loop_names;
      if !found < 0 then fail pos "index %s is not a declared loop" i else !found
    in
    let target_name, target_support =
      match target with
      | Array_ref (n, idxs, pos) -> (n, List.map (index_of pos) idxs)
      | Scalar n -> fail target_pos "the assignment target %s must be an array reference" n
    in
    let reads =
      List.filter_map
        (function
          | Array_ref (n, idxs, pos) -> Some (Spec.array_ref n (List.map (index_of pos) idxs))
          | Scalar _ -> None)
        rhs_items
    in
    (* Merge duplicate reads of the same array (same name must have the
       same support to stay projective-well-formed). *)
    let dedup =
      List.fold_left
        (fun acc (r : Spec.array_ref) ->
          match List.find_opt (fun (s : Spec.array_ref) -> s.Spec.aname = r.Spec.aname) acc with
          | Some s ->
            if s.Spec.support <> r.Spec.support then
              fail target_pos "array %s is referenced with two different index sets" r.Spec.aname
            else acc
          | None -> r :: acc)
        [] reads
    in
    let target_ref = Spec.array_ref ~mode target_name target_support in
    (* A self-read like [A[i] += A[i] * ...] is already covered by Update
       mode; a self-reference with a different support is not projective-
       well-formed. *)
    let dedup =
      List.filter
        (fun (r : Spec.array_ref) ->
          if r.Spec.aname <> target_name then true
          else if r.Spec.support = target_ref.Spec.support then false
          else fail target_pos "array %s is referenced with two different index sets" target_name)
        dedup
    in
    let arrays = Array.of_list (target_ref :: List.rev dedup) in
    let kernel_name = match name with Some n -> n | None -> target_name ^ "-kernel" in
    (match Spec.create ~name:kernel_name ~loops:loop_names ~bounds ~arrays with
    | Ok spec -> Ok spec
    | Error e -> fail target_pos "%s" (Spec.string_of_error e))
  with Error e -> Result.Error e

let parse_string ?name src =
  match parse ?name src with
  | Ok spec -> Ok spec
  | Result.Error e -> Result.Error (string_of_error e)

let parse_exn ?name src =
  match parse ?name src with
  | Ok spec -> spec
  | Result.Error e -> invalid_arg ("Parser.parse_exn: " ^ string_of_error e)

let to_dsl (spec : Spec.t) =
  let target = spec.Spec.arrays.(0) in
  let representable =
    (match target.Spec.mode with Spec.Update | Spec.Write -> true | Spec.Read -> false)
    && Array.for_all (fun (a : Spec.array_ref) -> a.Spec.mode = Spec.Read)
         (Array.sub spec.Spec.arrays 1 (Spec.num_arrays spec - 1))
  in
  if not representable then None
  else begin
    let loops =
      String.concat ", "
        (Array.to_list
           (Array.mapi (fun i l -> Printf.sprintf "%s = %d" l spec.Spec.bounds.(i)) spec.Spec.loops))
    in
    let render (a : Spec.array_ref) =
      Printf.sprintf "%s[%s]" a.Spec.aname
        (String.concat ","
           (List.map (fun i -> spec.Spec.loops.(i)) (Array.to_list a.Spec.support)))
    in
    let op = match target.Spec.mode with Spec.Update -> "+=" | _ -> "=" in
    let rhs =
      match Array.to_list (Array.sub spec.Spec.arrays 1 (Spec.num_arrays spec - 1)) with
      | [] -> render target (* degenerate self-assignment *)
      | reads -> String.concat " * " (List.map render reads)
    in
    Some (Printf.sprintf "%s : %s %s %s" loops (render target) op rhs)
  end
