type access_mode = Read | Write | Update

type array_ref = { aname : string; support : int array; mode : access_mode }

type t = {
  name : string;
  loops : string array;
  bounds : int array;
  arrays : array_ref array;
}

type error =
  | Empty_loops
  | Bad_bound of { loop : string; bound : int }
  | Duplicate_loop of string
  | Empty_arrays
  | Duplicate_array of string
  | Bad_support of { array_name : string; index : int }
  | Unsorted_support of string
  | Unused_loop of string

let string_of_error = function
  | Empty_loops -> "a loop nest needs at least one loop"
  | Bad_bound { loop; bound } -> Printf.sprintf "loop %s has non-positive bound %d" loop bound
  | Duplicate_loop l -> Printf.sprintf "duplicate loop name %s" l
  | Empty_arrays -> "a loop nest needs at least one array access"
  | Duplicate_array a -> Printf.sprintf "duplicate array name %s" a
  | Bad_support { array_name; index } ->
    Printf.sprintf "array %s references loop index %d, out of range" array_name index
  | Unsorted_support a ->
    Printf.sprintf "array %s has an unsorted or duplicated support" a
  | Unused_loop l ->
    Printf.sprintf
      "loop %s is not used by any array (remove it; see the WLOG assumption in Section 2 of the paper)"
      l

let has_duplicate (names : string array) =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc n ->
      match acc with
      | Some _ -> acc
      | None ->
        if Hashtbl.mem seen n then Some n
        else begin
          Hashtbl.add seen n ();
          None
        end)
    None names

let create ~name ~loops ~bounds ~arrays =
  let d = Array.length loops in
  let check () =
    if d = 0 then Error Empty_loops
    else if Array.length bounds <> d then
      Error (Bad_bound { loop = "<arity>"; bound = Array.length bounds })
    else begin
      let bad_bound = ref None in
      Array.iteri
        (fun i b -> if b < 1 && !bad_bound = None then bad_bound := Some (loops.(i), b))
        bounds;
      match !bad_bound with
      | Some (loop, bound) -> Error (Bad_bound { loop; bound })
      | None -> (
        match has_duplicate loops with
        | Some l -> Error (Duplicate_loop l)
        | None ->
          if Array.length arrays = 0 then Error Empty_arrays
          else begin
            match has_duplicate (Array.map (fun a -> a.aname) arrays) with
            | Some a -> Error (Duplicate_array a)
            | None ->
              let err = ref None in
              Array.iter
                (fun a ->
                  if !err = None then begin
                    Array.iter
                      (fun i ->
                        if (i < 0 || i >= d) && !err = None then
                          err := Some (Bad_support { array_name = a.aname; index = i }))
                      a.support;
                    if !err = None then begin
                      let sorted = ref true in
                      for k = 1 to Array.length a.support - 1 do
                        if a.support.(k) <= a.support.(k - 1) then sorted := false
                      done;
                      if not !sorted then err := Some (Unsorted_support a.aname)
                    end
                  end)
                arrays;
              (match !err with
              | Some e -> Error e
              | None ->
                let used = Array.make d false in
                Array.iter (fun a -> Array.iter (fun i -> used.(i) <- true) a.support) arrays;
                let unused = ref None in
                Array.iteri (fun i u -> if (not u) && !unused = None then unused := Some i) used;
                (match !unused with
                | Some i -> Error (Unused_loop loops.(i))
                | None -> Ok { name; loops; bounds; arrays }))
          end)
    end
  in
  check ()

let create_exn ~name ~loops ~bounds ~arrays =
  match create ~name ~loops ~bounds ~arrays with
  | Ok t -> t
  | Error e -> invalid_arg ("Spec.create_exn: " ^ string_of_error e)

let array_ref ?(mode = Read) aname support =
  let support = List.sort_uniq Stdlib.compare support in
  { aname; support = Array.of_list support; mode }

let with_bounds t bounds =
  if Array.length bounds <> Array.length t.bounds then
    invalid_arg "Spec.with_bounds: arity mismatch";
  Array.iter (fun b -> if b < 1 then invalid_arg "Spec.with_bounds: non-positive bound") bounds;
  { t with bounds = Array.copy bounds }

let num_loops t = Array.length t.loops
let num_arrays t = Array.length t.arrays

let support_matrix t =
  let d = num_loops t in
  Array.map
    (fun a ->
      let row = Array.make d 0 in
      Array.iter (fun i -> row.(i) <- 1) a.support;
      row)
    t.arrays

let touching_arrays t i =
  let acc = ref [] in
  Array.iteri (fun j a -> if Array.exists (fun k -> k = i) a.support then acc := j :: !acc) t.arrays;
  List.rev !acc

let iteration_count t = Array.fold_left ( * ) 1 t.bounds

let iteration_count_big t =
  Array.fold_left (fun acc l -> Bigint.mul acc (Bigint.of_int l)) Bigint.one t.bounds

let array_dims t j = Array.map (fun i -> t.bounds.(i)) t.arrays.(j).support

let array_words t j = Array.fold_left ( * ) 1 (array_dims t j)

let total_array_words t =
  let acc = ref 0 in
  for j = 0 to num_arrays t - 1 do
    acc := !acc + array_words t j
  done;
  !acc

let loop_index t name =
  let found = ref None in
  Array.iteri (fun i l -> if l = name && !found = None then found := Some i) t.loops;
  !found

let equal_shape a b =
  num_loops a = num_loops b
  && num_arrays a = num_arrays b
  &&
  let key t =
    List.sort Stdlib.compare
      (Array.to_list (Array.map (fun r -> (Array.to_list r.support, r.mode)) t.arrays))
  in
  key a = key b

let pp fmt t =
  Format.fprintf fmt "@[<v># %s@," t.name;
  Format.fprintf fmt "for ";
  Array.iteri
    (fun i l ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s in [%d]" l t.bounds.(i))
    t.loops;
  Format.fprintf fmt ":@,  ";
  Array.iteri
    (fun j a ->
      if j > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s%s[%s]" a.aname
        (match a.mode with Read -> "" | Write -> "(w)" | Update -> "(+=)")
        (String.concat "," (List.map (fun i -> t.loops.(i)) (Array.to_list a.support))))
    t.arrays;
  Format.fprintf fmt "@]"
