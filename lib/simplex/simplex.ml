
(* Two-phase full-tableau primal simplex with Bland's rule, over exact
   rationals. Problem sizes in this project are tiny (tens of rows), so the
   dense tableau is the right tradeoff: simple, exact, and obviously
   correct. *)

type solution = {
  objective : Rat.t;
  primal : Rat.t array;
  dual : Rat.t array;
  pivots : int;
  basis : int array;
}

type result = Optimal of solution | Unbounded of { direction : Rat.t array } | Infeasible

type col_kind = Structural of int | Slack of int | Surplus of int | Artificial of int

type state = {
  m : int;  (** rows *)
  n : int;  (** structural variables *)
  ncols : int;  (** total columns, excluding the rhs *)
  tab : Rat.t array array;  (** m rows of [ncols + 1]; last entry is the rhs *)
  basis : int array;  (** column basic in each row *)
  kinds : col_kind array;
  allowed : bool array;  (** artificials are banned from entering in phase 2 *)
  red : Rat.t array;  (** reduced-cost row for the current phase, length ncols *)
  mutable pivot_count : int;
  mutable bland_ties : int;  (** minimum-ratio ties settled by Bland's index rule *)
}

let c_solves = Obs.counter "simplex.solves"
let c_pivots = Obs.counter "simplex.pivots"
let c_bland_ties = Obs.counter "simplex.bland_ties"
let c_max_rows = Obs.counter "simplex.max_rows"
let c_max_cols = Obs.counter "simplex.max_cols"

let pivot st r c =
  let last = st.ncols in
  let p = st.tab.(r).(c) in
  let inv_p = Rat.inv p in
  for j = 0 to last do
    st.tab.(r).(j) <- Rat.mul inv_p st.tab.(r).(j)
  done;
  for i = 0 to st.m - 1 do
    if i <> r && not (Rat.is_zero st.tab.(i).(c)) then begin
      let f = st.tab.(i).(c) in
      for j = 0 to last do
        st.tab.(i).(j) <- Rat.sub st.tab.(i).(j) (Rat.mul f st.tab.(r).(j))
      done
    end
  done;
  if not (Rat.is_zero st.red.(c)) then begin
    let f = st.red.(c) in
    for j = 0 to st.ncols - 1 do
      st.red.(j) <- Rat.sub st.red.(j) (Rat.mul f st.tab.(r).(j))
    done
  end;
  st.basis.(r) <- c;
  st.pivot_count <- st.pivot_count + 1

(* Recompute the reduced-cost row for cost vector [costs] (length ncols)
   given the current basis. *)
let load_costs st costs =
  Array.blit costs 0 st.red 0 st.ncols;
  for r = 0 to st.m - 1 do
    let cb = costs.(st.basis.(r)) in
    if not (Rat.is_zero cb) then
      for j = 0 to st.ncols - 1 do
        st.red.(j) <- Rat.sub st.red.(j) (Rat.mul cb st.tab.(r).(j))
      done
  done

type phase_outcome = Phase_optimal | Phase_unbounded of int

(* Bland's rule: entering = lowest-index column with negative reduced cost;
   leaving = among minimum-ratio rows, the one with the lowest-index basic
   variable. Guarantees termination even on degenerate problems. *)
let run_phase st : phase_outcome =
  let last = st.ncols in
  let rec step () =
    let entering = ref (-1) in
    (try
       for j = 0 to st.ncols - 1 do
         if st.allowed.(j) && Rat.sign st.red.(j) < 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then Phase_optimal
    else begin
      let c = !entering in
      let leave = ref (-1) in
      let best = ref Rat.zero in
      for r = 0 to st.m - 1 do
        if Rat.sign st.tab.(r).(c) > 0 then begin
          let ratio = Rat.div st.tab.(r).(last) st.tab.(r).(c) in
          if !leave < 0 || Rat.compare ratio !best < 0 then begin
            leave := r;
            best := ratio
          end
          else if Rat.equal ratio !best then begin
            (* Degenerate minimum-ratio tie: Bland's rule picks the row
               whose basic variable has the lowest index. *)
            st.bland_ties <- st.bland_ties + 1;
            if st.basis.(r) < st.basis.(!leave) then leave := r
          end
        end
      done;
      if !leave < 0 then Phase_unbounded c
      else begin
        pivot st !leave c;
        step ()
      end
    end
  in
  step ()

let objective_value st costs =
  let acc = ref Rat.zero in
  for r = 0 to st.m - 1 do
    acc := Rat.add !acc (Rat.mul costs.(st.basis.(r)) st.tab.(r).(st.ncols))
  done;
  !acc

let t_solve = Obs.timer "simplex.solve"

(* Initial tableau plus the metadata needed to read a solution back out:
   rhs-sign flips and, per row, the column whose reduced cost carries that
   row's dual multiplier. Shared by [solve_tableau] and [certify], which
   must agree on the column layout bit for bit (it is also the layout
   [Simplex_float] mirrors, so a float basis indexes directly into it). *)
type prepared = {
  st : state;
  flips : Rat.t array;
  dual_col : int array;
  dual_sign : Rat.t array;
  n_art : int;
}

let prepare (lp : Lp.t) : prepared =
  let m = Lp.num_constraints lp in
  let n = Lp.num_vars lp in
  let constrs = Lp.constraints lp in
  (* Normalize every row to a non-negative rhs; remember the flip so the
     reported duals refer to the constraints as the caller wrote them. *)
  let flips = Array.make m Rat.one in
  let rows =
    Array.mapi
      (fun i (c : Lp.constr) ->
        if Rat.sign c.rhs < 0 then begin
          flips.(i) <- Rat.minus_one;
          let rel = match c.relation with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq in
          (Vec.neg c.coeffs, rel, Rat.neg c.rhs)
        end
        else (Vec.copy c.coeffs, c.relation, c.rhs))
      constrs
  in
  (* Column layout: structurals, then one slack or surplus per inequality,
     then one artificial per Ge/Eq row. *)
  let n_slack = ref 0 and n_art = ref 0 in
  Array.iter
    (fun (_, rel, _) ->
      match rel with
      | Lp.Le -> incr n_slack
      | Lp.Ge ->
        incr n_slack;
        incr n_art
      | Lp.Eq -> incr n_art)
    rows;
  let ncols = n + !n_slack + !n_art in
  let kinds = Array.make ncols (Structural 0) in
  for j = 0 to n - 1 do
    kinds.(j) <- Structural j
  done;
  let tab = Array.init m (fun _ -> Array.make (ncols + 1) Rat.zero) in
  let basis = Array.make m (-1) in
  let dual_col = Array.make m (-1) in
  (* dual_sign.(i): y_i = dual_sign * reduced cost of dual_col at optimum. *)
  let dual_sign = Array.make m Rat.one in
  let next_slack = ref n in
  let next_art = ref (n + !n_slack) in
  Array.iteri
    (fun i (coeffs, rel, rhs) ->
      Array.blit coeffs 0 tab.(i) 0 n;
      tab.(i).(ncols) <- rhs;
      (match rel with
      | Lp.Le ->
        let s = !next_slack in
        incr next_slack;
        kinds.(s) <- Slack i;
        tab.(i).(s) <- Rat.one;
        basis.(i) <- s;
        dual_col.(i) <- s;
        dual_sign.(i) <- Rat.minus_one
      | Lp.Ge ->
        let s = !next_slack in
        incr next_slack;
        kinds.(s) <- Surplus i;
        tab.(i).(s) <- Rat.minus_one;
        dual_col.(i) <- s;
        dual_sign.(i) <- Rat.one;
        let a = !next_art in
        incr next_art;
        kinds.(a) <- Artificial i;
        tab.(i).(a) <- Rat.one;
        basis.(i) <- a
      | Lp.Eq ->
        let a = !next_art in
        incr next_art;
        kinds.(a) <- Artificial i;
        tab.(i).(a) <- Rat.one;
        basis.(i) <- a;
        dual_col.(i) <- a;
        dual_sign.(i) <- Rat.minus_one);
      ())
    rows;
  let st =
    {
      m;
      n;
      ncols;
      tab;
      basis;
      kinds;
      allowed = Array.make ncols true;
      red = Array.make ncols Rat.zero;
      pivot_count = 0;
      bland_ties = 0;
    }
  in
  { st; flips; dual_col; dual_sign; n_art = !n_art }

(* Phase-2 cost row: the user's objective on structural columns,
   normalized to a minimization. *)
let phase2_costs (lp : Lp.t) st =
  let minimize = Lp.direction lp = Lp.Minimize in
  Array.init st.ncols (fun j ->
    match st.kinds.(j) with
    | Structural v ->
      let c = (Lp.objective lp).(v) in
      if minimize then c else Rat.neg c
    | _ -> Rat.zero)

(* Read the optimal solution out of a tableau whose reduced-cost row holds
   the phase-2 costs for the current basis. *)
let extract_solution (lp : Lp.t) { st; flips; dual_col; dual_sign; _ } costs =
  let minimize = Lp.direction lp = Lp.Minimize in
  let primal = Array.make st.n Rat.zero in
  for r = 0 to st.m - 1 do
    match st.kinds.(st.basis.(r)) with
    | Structural v -> primal.(v) <- st.tab.(r).(st.ncols)
    | _ -> ()
  done;
  let obj_min = objective_value st costs in
  let objective = if minimize then obj_min else Rat.neg obj_min in
  let dual =
    Array.init st.m (fun i ->
      let y_min = Rat.mul dual_sign.(i) st.red.(dual_col.(i)) in
      let y_dirfixed = if minimize then y_min else Rat.neg y_min in
      Rat.mul flips.(i) y_dirfixed)
  in
  { objective; primal; dual; pivots = st.pivot_count; basis = Array.copy st.basis }

let solve_tableau (lp : Lp.t) : result =
  let ({ st; n_art; _ } as p) = prepare lp in
  let m = st.m in
  let ncols = st.ncols in
  let record result =
    Obs.incr c_solves;
    Obs.incr ~by:st.pivot_count c_pivots;
    Obs.incr ~by:st.bland_ties c_bland_ties;
    Obs.record_max c_max_rows st.m;
    Obs.record_max c_max_cols st.ncols;
    result
  in
  (* ---- Phase 1: drive the artificials to zero. ---- *)
  let phase1_costs =
    Array.init ncols (fun j -> match st.kinds.(j) with Artificial _ -> Rat.one | _ -> Rat.zero)
  in
  let infeasible =
    if n_art = 0 then false
    else begin
      load_costs st phase1_costs;
      match run_phase st with
      | Phase_unbounded _ ->
        (* Phase-1 objective is bounded below by 0; unbounded is impossible. *)
        assert false
      | Phase_optimal -> Rat.sign (objective_value st phase1_costs) > 0
    end
  in
  if infeasible then record Infeasible
  else begin
    (* Ban artificials and pivot any still-basic (necessarily zero-valued)
       artificial out of the basis when possible; rows where that fails are
       redundant and harmless. *)
    Array.iteri
      (fun j k -> match k with Artificial _ -> st.allowed.(j) <- false | _ -> ())
      st.kinds;
    for r = 0 to m - 1 do
      (match st.kinds.(st.basis.(r)) with
      | Artificial _ ->
        let found = ref false in
        let j = ref 0 in
        while (not !found) && !j < ncols do
          if st.allowed.(!j) && not (Rat.is_zero st.tab.(r).(!j)) then begin
            pivot st r !j;
            found := true
          end;
          incr j
        done
      | _ -> ())
    done;
    (* ---- Phase 2: optimize the user's objective (as a minimization). ---- *)
    let costs = phase2_costs lp st in
    load_costs st costs;
    match run_phase st with
    | Phase_unbounded c ->
      (* Build the improving ray in structural-variable space. *)
      let dir = Array.make st.n Rat.zero in
      (match st.kinds.(c) with Structural v -> dir.(v) <- Rat.one | _ -> ());
      for r = 0 to m - 1 do
        match st.kinds.(st.basis.(r)) with
        | Structural v -> dir.(v) <- Rat.neg st.tab.(r).(c)
        | _ -> ()
      done;
      record (Unbounded { direction = dir })
    | Phase_optimal -> record (Optimal (extract_solution lp p costs))
  end

(* Every exact solve is timed (the histogram prices the exact-arithmetic
   choice, cf. bench E16) and traced as a "simplex.solve" span. *)
let solve lp =
  Obs.Trace.with_span "simplex.solve" (fun () ->
    Obs.time t_solve (fun () -> solve_tableau lp))

let solve_exn lp =
  match solve lp with
  | Optimal s -> s
  | Unbounded _ -> failwith "Simplex.solve_exn: unbounded"
  | Infeasible -> failwith "Simplex.solve_exn: infeasible"

(* Exact optimality certificate for a candidate basis (e.g. the one the
   float solver landed on, or a memoized basis from an earlier solve of
   the same shape). Gauss-Jordan-eliminate the basis columns, then check
   primal feasibility (non-negative basic values) and dual feasibility
   (non-negative reduced costs on every real column). Both checks passing
   proves the basis optimal, so the extracted solution is exact — no
   simplex pivoting ran. Any failure (singular, artificial in the basis,
   an infeasibility) returns [None]; callers fall back to [solve]. *)
let certify (lp : Lp.t) ~basis : solution option =
  let ({ st; _ } as p) = prepare lp in
  let plausible =
    Array.length basis = st.m
    && Array.for_all
         (fun c ->
           c >= 0 && c < st.ncols
           && match st.kinds.(c) with Artificial _ -> false | _ -> true)
         basis
    &&
    let seen = Array.make st.ncols false in
    Array.for_all
      (fun c ->
        if seen.(c) then false
        else begin
          seen.(c) <- true;
          true
        end)
      basis
  in
  if not plausible then None
  else begin
    (* Pivot each basis column into some not-yet-used row; failure to find
       a nonzero entry means the columns are linearly dependent. *)
    let used = Array.make st.m false in
    let singular = ref false in
    Array.iter
      (fun c ->
        if not !singular then begin
          let r = ref (-1) in
          for i = 0 to st.m - 1 do
            if !r < 0 && (not used.(i)) && not (Rat.is_zero st.tab.(i).(c)) then r := i
          done;
          if !r < 0 then singular := true
          else begin
            used.(!r) <- true;
            pivot st !r c
          end
        end)
      basis;
    if !singular then None
    else begin
      let primal_feasible = ref true in
      for r = 0 to st.m - 1 do
        if Rat.sign st.tab.(r).(st.ncols) < 0 then primal_feasible := false
      done;
      if not !primal_feasible then None
      else begin
        let costs = phase2_costs lp st in
        load_costs st costs;
        let dual_feasible = ref true in
        for j = 0 to st.ncols - 1 do
          match st.kinds.(j) with
          | Artificial _ -> ()
          | _ -> if Rat.sign st.red.(j) < 0 then dual_feasible := false
        done;
        if not !dual_feasible then None else Some (extract_solution lp p costs)
      end
    end
  end

let dual_objective lp y =
  let constrs = Lp.constraints lp in
  let acc = ref Rat.zero in
  Array.iteri (fun i (c : Lp.constr) -> acc := Rat.add !acc (Rat.mul y.(i) c.rhs)) constrs;
  !acc
