(** Exact two-phase primal simplex over rationals.

    Pivoting uses Bland's anti-cycling rule, so the solver terminates on
    every input. All arithmetic is exact ({!module:Rat}), which the tiling
    theory requires: the active case of Theorem 2 is decided by exact
    comparisons like [sum_{i in R_j} s_i <= 1] that floating point cannot
    resolve reliably at the boundary. *)

type solution = {
  objective : Rat.t;  (** optimal objective value, in the problem's own direction *)
  primal : Rat.t array;  (** optimal values of the structural variables *)
  dual : Rat.t array;
      (** one multiplier per constraint; [dual.(i)] is the rate of change
          of the optimal objective per unit increase of constraint [i]'s
          right-hand side. At optimality [objective = dual . rhs]. *)
  pivots : int;  (** simplex pivots performed across both phases *)
  basis : int array;
      (** optimal basis: for each constraint row, the tableau column basic
          in it. Column layout: structurals [0..n-1], then one
          slack/surplus per inequality in row order, then one artificial
          per [Ge]/[Eq] row — the same layout {!module:Simplex_float}
          uses, so bases transfer between the two solvers. Feed it back to
          {!certify} to re-derive the exact solution without pivoting. *)
}

type result =
  | Optimal of solution
  | Unbounded of { direction : Rat.t array }
      (** a feasible ray: moving along it from some feasible point improves
          the objective without bound *)
  | Infeasible

val solve : Lp.t -> result

val solve_exn : Lp.t -> solution
(** @raise Failure on [Unbounded] or [Infeasible]. *)

val certify : Lp.t -> basis:int array -> solution option
(** [certify lp ~basis] checks a candidate optimal basis with exact
    arithmetic: eliminate the basis columns, then verify primal
    feasibility (all basic values non-negative) and dual feasibility (all
    reduced costs non-negative). On success the returned solution is
    exactly optimal and was obtained without a single simplex pivot —
    this is how a {!Simplex_float} pre-screen or a memoized basis from a
    previous solve is confirmed. Returns [None] when the basis is
    malformed, singular, contains an artificial column, or is simply not
    optimal for this [lp]; callers then fall back to {!solve}. *)

val dual_objective : Lp.t -> Rat.t array -> Rat.t
(** [dual_objective lp y] is [y . rhs] — equal to the primal optimum at an
    optimal dual solution (strong duality). Exposed for tests and for the
    Theorem 3 machinery. *)
