(* Two-phase primal simplex over IEEE doubles. Structure mirrors
   Simplex.ml; comparisons go through an epsilon tolerance, which is
   precisely the weakness this module exists to exhibit. *)

type solution = { objective : float; primal : float array; basis : int array }
type result = Optimal of solution | Unbounded | Infeasible

type col_kind = Structural of int | Slack | Artificial

type state = {
  m : int;
  n : int;
  ncols : int;
  tab : float array array;
  basis : int array;
  kinds : col_kind array;
  allowed : bool array;
  red : float array;
  eps : float;
}

let pivot st r c =
  let last = st.ncols in
  let p = st.tab.(r).(c) in
  for j = 0 to last do
    st.tab.(r).(j) <- st.tab.(r).(j) /. p
  done;
  for i = 0 to st.m - 1 do
    if i <> r && Float.abs st.tab.(i).(c) > 0.0 then begin
      let f = st.tab.(i).(c) in
      for j = 0 to last do
        st.tab.(i).(j) <- st.tab.(i).(j) -. (f *. st.tab.(r).(j))
      done
    end
  done;
  if Float.abs st.red.(c) > 0.0 then begin
    let f = st.red.(c) in
    for j = 0 to st.ncols - 1 do
      st.red.(j) <- st.red.(j) -. (f *. st.tab.(r).(j))
    done
  end;
  st.basis.(r) <- c

let load_costs st costs =
  Array.blit costs 0 st.red 0 st.ncols;
  for r = 0 to st.m - 1 do
    let cb = costs.(st.basis.(r)) in
    if Float.abs cb > 0.0 then
      for j = 0 to st.ncols - 1 do
        st.red.(j) <- st.red.(j) -. (cb *. st.tab.(r).(j))
      done
  done

type phase_outcome = Phase_optimal | Phase_unbounded

let run_phase st =
  let last = st.ncols in
  (* Hard iteration cap: with float roundoff Bland's rule no longer
     guarantees termination, another hazard of the inexact solver. *)
  let fuel = ref (10_000 + (200 * (st.m + st.ncols))) in
  let rec step () =
    decr fuel;
    if !fuel <= 0 then Phase_optimal
    else begin
      let entering = ref (-1) in
      (try
         for j = 0 to st.ncols - 1 do
           if st.allowed.(j) && st.red.(j) < -.st.eps then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !entering < 0 then Phase_optimal
      else begin
        let c = !entering in
        let leave = ref (-1) in
        let best = ref infinity in
        for r = 0 to st.m - 1 do
          if st.tab.(r).(c) > st.eps then begin
            let ratio = st.tab.(r).(last) /. st.tab.(r).(c) in
            if
              !leave < 0 || ratio < !best -. st.eps
              || (Float.abs (ratio -. !best) <= st.eps && st.basis.(r) < st.basis.(!leave))
            then begin
              leave := r;
              best := ratio
            end
          end
        done;
        if !leave < 0 then Phase_unbounded
        else begin
          pivot st !leave c;
          step ()
        end
      end
    end
  in
  step ()

let objective_value st costs =
  let acc = ref 0.0 in
  for r = 0 to st.m - 1 do
    acc := !acc +. (costs.(st.basis.(r)) *. st.tab.(r).(st.ncols))
  done;
  !acc

let solve ?(eps = 1e-9) (lp : Lp.t) : result =
  let m = Lp.num_constraints lp in
  let n = Lp.num_vars lp in
  let constrs = Lp.constraints lp in
  let rows =
    Array.map
      (fun (c : Lp.constr) ->
        let coeffs = Array.map Rat.to_float c.Lp.coeffs in
        let rhs = Rat.to_float c.Lp.rhs in
        if rhs < 0.0 then
          ( Array.map Float.neg coeffs,
            (match c.Lp.relation with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq),
            -.rhs )
        else (coeffs, c.Lp.relation, rhs))
      constrs
  in
  let n_slack = ref 0 and n_art = ref 0 in
  Array.iter
    (fun (_, rel, _) ->
      match rel with
      | Lp.Le -> incr n_slack
      | Lp.Ge ->
        incr n_slack;
        incr n_art
      | Lp.Eq -> incr n_art)
    rows;
  let ncols = n + !n_slack + !n_art in
  let kinds = Array.make ncols Slack in
  for j = 0 to n - 1 do
    kinds.(j) <- Structural j
  done;
  let tab = Array.init m (fun _ -> Array.make (ncols + 1) 0.0) in
  let basis = Array.make m (-1) in
  let next_slack = ref n in
  let next_art = ref (n + !n_slack) in
  Array.iteri
    (fun i (coeffs, rel, rhs) ->
      Array.blit coeffs 0 tab.(i) 0 n;
      tab.(i).(ncols) <- rhs;
      match rel with
      | Lp.Le ->
        tab.(i).(!next_slack) <- 1.0;
        basis.(i) <- !next_slack;
        incr next_slack
      | Lp.Ge ->
        tab.(i).(!next_slack) <- -1.0;
        incr next_slack;
        kinds.(!next_art) <- Artificial;
        tab.(i).(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        incr next_art
      | Lp.Eq ->
        kinds.(!next_art) <- Artificial;
        tab.(i).(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        incr next_art)
    rows;
  let st =
    { m; n; ncols; tab; basis; kinds; allowed = Array.make ncols true; red = Array.make ncols 0.0; eps }
  in
  let phase1 = Array.init ncols (fun j -> match st.kinds.(j) with Artificial -> 1.0 | _ -> 0.0) in
  let infeasible =
    if !n_art = 0 then false
    else begin
      load_costs st phase1;
      match run_phase st with
      | Phase_unbounded -> false
      | Phase_optimal -> objective_value st phase1 > Float.sqrt eps
    end
  in
  if infeasible then Infeasible
  else begin
    Array.iteri (fun j k -> if k = Artificial then st.allowed.(j) <- false) st.kinds;
    for r = 0 to m - 1 do
      if st.kinds.(st.basis.(r)) = Artificial then begin
        let found = ref false in
        let j = ref 0 in
        while (not !found) && !j < ncols do
          if st.allowed.(!j) && Float.abs st.tab.(r).(!j) > eps then begin
            pivot st r !j;
            found := true
          end;
          incr j
        done
      end
    done;
    let minimize = Lp.direction lp = Lp.Minimize in
    let phase2 =
      Array.init ncols (fun j ->
        match st.kinds.(j) with
        | Structural v ->
          let c = Rat.to_float (Lp.objective lp).(v) in
          if minimize then c else -.c
        | _ -> 0.0)
    in
    load_costs st phase2;
    match run_phase st with
    | Phase_unbounded -> Unbounded
    | Phase_optimal ->
      let primal = Array.make n 0.0 in
      for r = 0 to m - 1 do
        match st.kinds.(st.basis.(r)) with
        | Structural v -> primal.(v) <- st.tab.(r).(st.ncols)
        | _ -> ()
      done;
      let obj = objective_value st phase2 in
      Optimal
        { objective = (if minimize then obj else -.obj); primal; basis = Array.copy st.basis }
  end
