(** Floating-point simplex — the foil for the exact solver.

    Same two-phase algorithm as {!module:Simplex} (Bland's rule, same
    column layout), but over IEEE doubles with an epsilon tolerance
    instead of exact rationals. It exists to make the design argument
    measurable: the tiling theory turns on exact ties
    ([sum_{i in R_j} s_i = 1], degenerate LP faces), and this solver's
    answers drift or mis-classify near them, while {!Simplex} is exact.
    Benchmarked against the exact solver in E16 and cross-checked in the
    test suite on well-conditioned problems.

    Do not use this for the paper's machinery; it is deliberately the
    naive choice. *)

type solution = {
  objective : float;
  primal : float array;
  basis : int array;
      (** the final basis, in {!module:Simplex}'s column layout (the two
          solvers build identical tableaus), so it can be handed to
          {!Simplex.certify} for exact confirmation *)
}

type result = Optimal of solution | Unbounded | Infeasible

val solve : ?eps:float -> Lp.t -> result
(** [eps] (default [1e-9]) is the pivoting/optimality tolerance. Rational
    problem data is converted with {!Rat.to_float}. *)
