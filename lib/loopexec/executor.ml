type result = {
  schedule : Schedules.t;
  policy : Policy.t;
  capacity : int;
  stats : Cache.stats;
  words_moved : int;
}

let accesses_per_point spec =
  Array.fold_left
    (fun acc (a : Spec.array_ref) ->
      acc + (match a.Spec.mode with Spec.Read | Spec.Write -> 1 | Spec.Update -> 2))
    0 spec.Spec.arrays

let trace_length spec = Spec.iteration_count spec * accesses_per_point spec

(* Touch every array of the spec at iteration [point]; [emit] receives
   (address, is_write) in program order: reads before the write for an
   Update. *)
let touch layout spec point emit =
  Array.iteri
    (fun j (a : Spec.array_ref) ->
      let addr = Layout.address layout j point in
      match a.Spec.mode with
      | Spec.Read -> emit addr false
      | Spec.Write -> emit addr true
      | Spec.Update ->
        emit addr false;
        emit addr true)
    spec.Spec.arrays

let trace_of spec ~schedule =
  let layout = Layout.make spec in
  let buf = Array.make (trace_length spec) { Trace.addr = 0; write = false } in
  let pos = ref 0 in
  Schedules.iterate spec schedule (fun point ->
    touch layout spec point (fun addr write ->
      buf.(!pos) <- { Trace.addr; write };
      incr pos));
  assert (!pos = Array.length buf);
  buf

type hierarchy_result = {
  hschedule : Schedules.t;
  capacities : int array;
  hstats : Cache.stats array;
  boundary_words : int array;
}

(* Cache-sim latencies: full simulated executions, the dominant cost of
   any sweep that simulates. Timed + traced so a sweep's trace shows one
   fat span per simulation under the pool.task lanes. *)
let t_run = Obs.timer "executor.run"
let t_run_hierarchy = Obs.timer "executor.run_hierarchy"
let c_batched_runs = Obs.counter "cachesim.batched_runs"

(* Merge strictly consecutive same-line emissions into batched line runs
   and hand each run to [sink] once. An Update's read+write pair always
   merges; unit-stride innermost loops merge [line_words] points' worth
   of touches per array. Only *adjacent* emissions merge — any
   intervening touch of another line ends the run — so the batched
   replay is access-for-access equivalent to the per-word one (the
   cache/hierarchy [access_run] primitives make the same guarantee).
   The run count is aggregated into [cachesim.batched_runs] once per
   simulation, keeping the Obs discipline of this hot path. *)
let with_run_merging ~line_words sink f =
  let line_of addr =
    if addr >= 0 then addr / line_words else -1 - ((-1 - addr) / line_words)
  in
  let runs = ref 0 in
  let pend_line = ref 0
  and pend_addr = ref 0
  and pend_first = ref false
  and pend_any = ref false
  and pend_count = ref 0 in
  let flush_pend () =
    if !pend_count > 0 then begin
      incr runs;
      sink ~first_write:!pend_first ~any_write:!pend_any ~count:!pend_count !pend_addr;
      pend_count := 0
    end
  in
  let emit addr write =
    let line = line_of addr in
    if !pend_count > 0 && line = !pend_line then begin
      pend_count := !pend_count + 1;
      pend_any := !pend_any || write
    end
    else begin
      flush_pend ();
      pend_line := line;
      pend_addr := addr;
      pend_first := write;
      pend_any := write;
      pend_count := 1
    end
  in
  f emit;
  flush_pend ();
  Obs.incr ~by:!runs c_batched_runs

let run_hierarchy ?(line_words = 1) ?(policy = Policy.Lru) spec ~schedule ~capacities =
  Obs.Trace.with_span "executor.run_hierarchy" (fun () ->
  Obs.time t_run_hierarchy (fun () ->
  let h = Hierarchy.create ~line_words ~policy ~capacities () in
  let layout = Layout.make spec in
  with_run_merging ~line_words
    (fun ~first_write ~any_write ~count addr ->
      Hierarchy.access_run h ~first_write ~any_write ~count addr)
    (fun emit ->
      Schedules.iterate spec schedule (fun point -> touch layout spec point emit));
  Hierarchy.flush h;
  Hierarchy.record_obs h;
  {
    hschedule = schedule;
    capacities = Array.copy capacities;
    hstats = Hierarchy.stats h;
    boundary_words = Hierarchy.traffic h;
  }))

let run ?(line_words = 1) ?(policy = Policy.Lru) spec ~schedule ~capacity =
  Obs.Trace.with_span "executor.run" (fun () ->
  Obs.time t_run (fun () ->
  let stats =
    match policy with
    | Policy.Opt ->
      let len = trace_length spec in
      if len > 100_000_000 then
        invalid_arg
          (Printf.sprintf "Executor.run: OPT trace of %d accesses is too large" len);
      Trace.simulate ~line_words ~policy ~capacity (trace_of spec ~schedule)
    | Policy.Lru | Policy.Fifo ->
      let layout = Layout.make spec in
      let cache = Cache.create ~line_words ~policy ~capacity () in
      with_run_merging ~line_words
        (fun ~first_write:_ ~any_write ~count addr ->
          Cache.access_run cache ~write:any_write ~count addr)
        (fun emit ->
          Schedules.iterate spec schedule (fun point -> touch layout spec point emit));
      Cache.flush cache;
      Cache.stats cache
  in
  Cache.record_obs stats;
  {
    schedule;
    policy;
    capacity;
    stats;
    words_moved = Cache.words_moved ~line_words stats;
  }))
