type result = {
  schedule : Schedules.t;
  policy : Policy.t;
  capacity : int;
  stats : Cache.stats;
  words_moved : int;
}

let accesses_per_point spec =
  Array.fold_left
    (fun acc (a : Spec.array_ref) ->
      acc + (match a.Spec.mode with Spec.Read | Spec.Write -> 1 | Spec.Update -> 2))
    0 spec.Spec.arrays

let trace_length spec = Spec.iteration_count spec * accesses_per_point spec

(* Touch every array of the spec at iteration [point]; [emit] receives
   (address, is_write) in program order: reads before the write for an
   Update. *)
let touch layout spec point emit =
  Array.iteri
    (fun j (a : Spec.array_ref) ->
      let addr = Layout.address layout j point in
      match a.Spec.mode with
      | Spec.Read -> emit addr false
      | Spec.Write -> emit addr true
      | Spec.Update ->
        emit addr false;
        emit addr true)
    spec.Spec.arrays

let trace_of spec ~schedule =
  let layout = Layout.make spec in
  let buf = Array.make (trace_length spec) { Trace.addr = 0; write = false } in
  let pos = ref 0 in
  Schedules.iterate spec schedule (fun point ->
    touch layout spec point (fun addr write ->
      buf.(!pos) <- { Trace.addr; write };
      incr pos));
  assert (!pos = Array.length buf);
  buf

type hierarchy_result = {
  hschedule : Schedules.t;
  capacities : int array;
  hstats : Cache.stats array;
  boundary_words : int array;
}

(* Cache-sim latencies: full simulated executions, the dominant cost of
   any sweep that simulates. Timed + traced so a sweep's trace shows one
   fat span per simulation under the pool.task lanes. *)
let t_run = Obs.timer "executor.run"
let t_run_hierarchy = Obs.timer "executor.run_hierarchy"

let run_hierarchy ?(line_words = 1) ?(policy = Policy.Lru) spec ~schedule ~capacities =
  Obs.Trace.with_span "executor.run_hierarchy" (fun () ->
  Obs.time t_run_hierarchy (fun () ->
  let h = Hierarchy.create ~line_words ~policy ~capacities () in
  let layout = Layout.make spec in
  Schedules.iterate spec schedule (fun point ->
    touch layout spec point (fun addr write -> Hierarchy.access h ~write addr));
  Hierarchy.flush h;
  Hierarchy.record_obs h;
  {
    hschedule = schedule;
    capacities = Array.copy capacities;
    hstats = Hierarchy.stats h;
    boundary_words = Hierarchy.traffic h;
  }))

let run ?(line_words = 1) ?(policy = Policy.Lru) spec ~schedule ~capacity =
  Obs.Trace.with_span "executor.run" (fun () ->
  Obs.time t_run (fun () ->
  let stats =
    match policy with
    | Policy.Opt ->
      let len = trace_length spec in
      if len > 100_000_000 then
        invalid_arg
          (Printf.sprintf "Executor.run: OPT trace of %d accesses is too large" len);
      Trace.simulate ~line_words ~policy ~capacity (trace_of spec ~schedule)
    | Policy.Lru | Policy.Fifo ->
      let layout = Layout.make spec in
      let cache = Cache.create ~line_words ~policy ~capacity () in
      Schedules.iterate spec schedule (fun point ->
        touch layout spec point (fun addr write -> Cache.access cache ~write addr));
      Cache.flush cache;
      Cache.stats cache
  in
  Cache.record_obs stats;
  {
    schedule;
    policy;
    capacity;
    stats;
    words_moved = Cache.words_moved ~line_words stats;
  }))
