(* A plan stores, for every loop suffix {k..d-1} of the shape, the full
   vertex set of the suffix's dual polyhedron

     D_k = { (zeta, s) >= 0 : zeta_i + sum_{j : i in supp j} s_j >= 1,
             i in {k..d-1} }

   (variables: s_j for arrays whose support meets the suffix, zeta_i for
   suffix loops). By LP duality the suffix tiling LP with per-array
   capacities c and bounds beta has value min over D_k of
   [s.c + zeta.beta] for every c, beta >= 0, and the minimum is attained
   at a vertex — so the stored sets price every residual subproblem the
   greedy lex-max elimination in [answer] encounters. No box enters
   anywhere: plans are exact for all beta >= 0. *)

type vertex = {
  vs : Rat.t array;  (* s multipliers, one per plan array row (zeros off-support) *)
  vz : Rat.t array;  (* zeta multipliers, one per suffix loop, offset by the level *)
}

type t = {
  key : string;
  d : int;
  supports : int array array;  (* canonical row order, see [shape_key] *)
  levels : vertex list array;  (* length d+1; levels.(d) = [] (empty suffix) *)
}

let string_of_mode = function Spec.Read -> "r" | Spec.Write -> "w" | Spec.Update -> "u"

let render_row mode support =
  Printf.sprintf "%s:%s" (string_of_mode mode)
    (String.concat "," (List.map string_of_int (Array.to_list support)))

let shape_key (spec : Spec.t) =
  let rows =
    Array.to_list spec.Spec.arrays
    |> List.map (fun (a : Spec.array_ref) -> render_row a.Spec.mode a.Spec.support)
    |> List.sort String.compare
  in
  Printf.sprintf "d=%d;A=%s" (Spec.num_loops spec) (String.concat "|" rows)

let key t = t.key
let dims t = (t.d, Array.length t.supports)
let num_pieces t = List.length t.levels.(0)
let num_vertices t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.levels

(* ------------------------------------------------------------------ *)
(* Compilation                                                        *)
(* ------------------------------------------------------------------ *)

let binomial n k =
  let k = min k (n - k) in
  if k < 0 then 0.0
  else begin
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

(* Candidate (S, T) pairs across all levels; each costs one |S| x |S|
   exact solve, so this bounds compile time directly. *)
let enumeration_budget = 200_000.0

let candidate_count ~d ~per_level_arrays =
  let total = ref 0.0 in
  for k = 0 to d - 1 do
    let nj = per_level_arrays.(k) and dk = d - k in
    for m = 0 to min nj dk do
      total := !total +. (binomial nj m *. binomial dk m)
    done
  done;
  !total

let iter_subsets (xs : int array) m f =
  let n = Array.length xs in
  if m = 0 then f [||]
  else begin
    let choice = Array.make m 0 in
    let rec go pos start =
      if pos = m then f (Array.map (fun i -> xs.(i)) choice)
      else
        for i = start to n - (m - pos) do
          choice.(pos) <- i;
          go (pos + 1) (i + 1)
        done
    in
    go 0 0
  end

let mem_support i sup = Array.exists (fun x -> x = i) sup

let compare_rat_arrays a b =
  let n = Array.length a in
  let rec cmp i =
    if i = n then 0
    else
      let c = Rat.compare a.(i) b.(i) in
      if c <> 0 then c else cmp (i + 1)
  in
  cmp 0

let compare_vertex v1 v2 =
  let c = compare_rat_arrays v1.vs v2.vs in
  if c <> 0 then c else compare_rat_arrays v1.vz v2.vz

(* All vertices of D_k: choose the set S of arrays with s_j > 0 and an
   equal-sized set T of suffix loops whose cover constraint is tight
   with zeta = 0; s solves the square system, the remaining zetas are
   forced. Every emitted point is feasible, every vertex of D_k arises
   from some (S, T), and extra (degenerate) feasible points cannot lower
   the minimum below the LP value — so the set is safe to take minima
   over even without an exact vertex test. *)
let enumerate_level ~(supports : int array array) ~d ~k =
  let n = Array.length supports in
  let js =
    Array.init n Fun.id
    |> Array.to_list
    |> List.filter (fun j -> Array.exists (fun i -> i >= k) supports.(j))
    |> Array.of_list
  in
  let dk = d - k in
  let suffix = Array.init dk (fun i -> k + i) in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let emit s_full =
    let z =
      Array.map
        (fun i ->
          let cover = ref Rat.zero in
          for j = 0 to n - 1 do
            if mem_support i supports.(j) then cover := Rat.add !cover s_full.(j)
          done;
          Rat.max Rat.zero (Rat.sub Rat.one !cover))
        suffix
    in
    let render =
      String.concat ","
        (Array.to_list (Array.map Rat.to_string s_full)
        @ Array.to_list (Array.map Rat.to_string z))
    in
    if not (Hashtbl.mem seen render) then begin
      Hashtbl.add seen render ();
      out := { vs = s_full; vz = z } :: !out
    end
  in
  for m = 0 to min (Array.length js) dk do
    iter_subsets js m (fun sel_s ->
      iter_subsets suffix m (fun sel_t ->
        if m = 0 then emit (Array.make n Rat.zero)
        else begin
          let a =
            Mat.init m m (fun r c ->
              if mem_support sel_t.(r) supports.(sel_s.(c)) then Rat.one else Rat.zero)
          in
          match Mat.solve a (Vec.make m Rat.one) with
          | None -> ()
          | Some sv ->
            let ok = ref true in
            for c = 0 to m - 1 do
              if Rat.sign sv.(c) < 0 then ok := false
            done;
            if !ok then begin
              let s_full = Array.make n Rat.zero in
              for c = 0 to m - 1 do
                s_full.(sel_s.(c)) <- sv.(c)
              done;
              emit s_full
            end
        end))
  done;
  List.sort compare_vertex !out

let compile (spec : Spec.t) =
  let d = Spec.num_loops spec in
  let rows =
    Array.to_list spec.Spec.arrays
    |> List.map (fun (a : Spec.array_ref) ->
         (render_row a.Spec.mode a.Spec.support, a.Spec.support))
    |> List.sort (fun (r1, _) (r2, _) -> String.compare r1 r2)
  in
  let supports = Array.of_list (List.map snd rows) in
  let per_level_arrays =
    Array.init d (fun k ->
      Array.fold_left
        (fun acc sup -> if Array.exists (fun i -> i >= k) sup then acc + 1 else acc)
        0 supports)
  in
  let candidates = candidate_count ~d ~per_level_arrays in
  if candidates > enumeration_budget then
    invalid_arg
      (Printf.sprintf
         "Tiling_plan.compile: shape too large for plan compilation (~%.0f candidate \
          bases, budget %.0f)"
         candidates enumeration_budget);
  let levels =
    Array.init (d + 1) (fun k ->
      if k = d then [] else enumerate_level ~supports ~d ~k)
  in
  { key = shape_key spec; d; supports; levels }

(* ------------------------------------------------------------------ *)
(* Answering                                                          *)
(* ------------------------------------------------------------------ *)

(* Objective of one level-k vertex against capacities c and the beta
   suffix starting at loop k. *)
let vertex_value ~k v c beta =
  let acc = ref Rat.zero in
  Array.iteri (fun j sj -> if Rat.sign sj <> 0 then acc := Rat.add !acc (Rat.mul sj c.(j))) v.vs;
  Array.iteri (fun i zi -> if Rat.sign zi <> 0 then acc := Rat.add !acc (Rat.mul zi beta.(k + i))) v.vz;
  !acc

let check_beta t beta =
  if Array.length beta <> t.d then invalid_arg "Tiling_plan.answer: beta arity mismatch";
  Array.iter
    (fun b -> if Rat.sign b < 0 then invalid_arg "Tiling_plan.answer: beta must be non-negative")
    beta

let level_value t ~k c beta =
  match t.levels.(k) with
  | [] -> Rat.zero
  | v0 :: rest ->
    List.fold_left
      (fun acc v -> Rat.min acc (vertex_value ~k v c beta))
      (vertex_value ~k v0 c beta)
      rest

let value t ~beta =
  check_beta t beta;
  let c = Array.make (Array.length t.supports) Rat.one in
  level_value t ~k:0 c beta

let answer t ~beta =
  check_beta t beta;
  let n = Array.length t.supports in
  let c = Array.make n Rat.one in
  let v0 = level_value t ~k:0 c beta in
  let v = ref v0 in
  let lambda = Array.make t.d Rat.zero in
  for k = 0 to t.d - 1 do
    (* Own constraints of lambda_k: its bound and every capacity it draws on. *)
    let u = ref beta.(k) in
    Array.iteri (fun j sup -> if mem_support k sup then u := Rat.min !u c.(j)) t.supports;
    (* Raising lambda_k to t changes the suffix value to
       min_w (a_w - t * s_w.A_k); optimality survives while
       t + suffix(t) >= v, i.e. while every vertex with negative slope
       kappa_w = 1 - s_w.A_k still prices at least v. *)
    let step = ref !u in
    List.iter
      (fun w ->
        let touch = ref Rat.zero in
        Array.iteri
          (fun j sj ->
            if Rat.sign sj <> 0 && mem_support k t.supports.(j) then
              touch := Rat.add !touch sj)
          w.vs;
        let kappa = Rat.sub Rat.one !touch in
        if Rat.sign kappa < 0 then begin
          let a = vertex_value ~k:(k + 1) w c beta in
          step := Rat.min !step (Rat.div (Rat.sub a !v) (Rat.neg kappa))
        end)
      t.levels.(k + 1);
    lambda.(k) <- !step;
    Array.iteri (fun j sup -> if mem_support k sup then c.(j) <- Rat.sub c.(j) !step) t.supports;
    v := Rat.sub !v !step
  done;
  if not (Rat.is_zero !v) then
    failwith "Tiling_plan.answer: plan inconsistent (incomplete vertex set?)";
  (lambda, v0)

let dual t (spec : Spec.t) ~beta =
  if not (String.equal (shape_key spec) t.key) then
    invalid_arg "Tiling_plan.dual: spec shape does not match this plan";
  check_beta t beta;
  let n = Array.length t.supports in
  let c = Array.make n Rat.one in
  let best = ref None in
  List.iter
    (fun w ->
      let v = vertex_value ~k:0 w c beta in
      match !best with
      | Some (bv, _) when Rat.compare bv v <= 0 -> ()
      | _ -> best := Some (v, w))
    t.levels.(0);
  match !best with
  | None -> invalid_arg "Tiling_plan.dual: empty plan"
  | Some (_, w) ->
    (* Stored rows are sorted by their canonical rendering; sorting the
       spec's arrays the same way aligns row r with spec array order.(r)
       (arrays with identical rows are interchangeable multipliers). *)
    let order =
      Array.init n Fun.id |> Array.to_list
      |> List.sort (fun j1 j2 ->
           String.compare
             (render_row spec.Spec.arrays.(j1).Spec.mode spec.Spec.arrays.(j1).Spec.support)
             (render_row spec.Spec.arrays.(j2).Spec.mode spec.Spec.arrays.(j2).Spec.support))
      |> Array.of_list
    in
    let out = Array.make (n + t.d) Rat.zero in
    Array.iteri (fun r j -> out.(j) <- w.vs.(r)) order;
    Array.iteri (fun i zi -> out.(n + i) <- zi) w.vz;
    out

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"shape\":\"%s\",\"d\":%d," (json_escape t.key) t.d);
  Buffer.add_string buf "\"supports\":[";
  Array.iteri
    (fun j sup ->
      if j > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      Array.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int x))
        sup;
      Buffer.add_char buf ']')
    t.supports;
  Buffer.add_string buf "],\"levels\":[";
  Array.iteri
    (fun k verts ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          let rats arr =
            String.concat ","
              (Array.to_list (Array.map (fun r -> "\"" ^ Rat.to_string r ^ "\"") arr))
          in
          Buffer.add_string buf (Printf.sprintf "{\"s\":[%s],\"z\":[%s]}" (rats v.vs) (rats v.vz)))
        verts;
      Buffer.add_char buf ']')
    t.levels;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let* key =
    match Jsonlite.str_member "shape" json with
    | Some s -> Ok s
    | None -> fail "plan: missing \"shape\""
  in
  let* d =
    match Jsonlite.num_member "d" json with
    | Some f when Float.is_integer f && f >= 1.0 && f < 1e6 -> Ok (int_of_float f)
    | _ -> fail "plan: \"d\" must be a positive integer"
  in
  let* supports_json =
    match Jsonlite.list_member "supports" json with
    | Some l -> Ok l
    | None -> fail "plan: missing \"supports\""
  in
  let parse_support v =
    match v with
    | Jsonlite.Arr items ->
      let rec go acc last = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Jsonlite.Num f :: rest when Float.is_integer f ->
          let i = int_of_float f in
          if i < 0 || i >= d then fail "plan: support index out of range"
          else if i <= last then fail "plan: support indices must be strictly increasing"
          else go (i :: acc) i rest
        | _ -> fail "plan: support entries must be integers"
      in
      go [] (-1) items
    | _ -> fail "plan: each support must be an array"
  in
  let* supports =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        let* s = parse_support v in
        Ok (s :: acc))
      (Ok []) supports_json
    |> Result.map (fun l -> Array.of_list (List.rev l))
  in
  let n = Array.length supports in
  if n = 0 then fail "plan: needs at least one array"
  else
    let parse_rats label expected v =
      match v with
      | Jsonlite.Arr items ->
        if List.length items <> expected then fail "plan: %s has wrong arity" label
        else
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match item with
              | Jsonlite.Str s -> (
                match Rat.of_string_opt s with
                | Some r when Rat.sign r >= 0 -> Ok (r :: acc)
                | Some _ -> fail "plan: %s entries must be non-negative" label
                | None -> fail "plan: %s entry %S is not a rational" label s)
              | _ -> fail "plan: %s entries must be rational strings" label)
            (Ok []) items
          |> Result.map (fun l -> Array.of_list (List.rev l))
      | _ -> fail "plan: %s must be an array" label
    in
    let parse_vertex ~k v =
      match v with
      | Jsonlite.Obj _ ->
        let* vs =
          match Jsonlite.member "s" v with
          | Some s -> parse_rats "vertex \"s\"" n s
          | None -> fail "plan: vertex missing \"s\""
        in
        let* vz =
          match Jsonlite.member "z" v with
          | Some z -> parse_rats "vertex \"z\"" (d - k) z
          | None -> fail "plan: vertex missing \"z\""
        in
        (* Dual feasibility over the suffix: a vertex violating it could
           price a residual problem below its true value and corrupt
           answers silently. *)
        let feasible = ref true in
        for i = k to d - 1 do
          let cover = ref vz.(i - k) in
          for j = 0 to n - 1 do
            if mem_support i supports.(j) then cover := Rat.add !cover vs.(j)
          done;
          if Rat.compare !cover Rat.one < 0 then feasible := false
        done;
        if not !feasible then fail "plan: infeasible vertex at level %d" k
        else Ok { vs; vz }
      | _ -> fail "plan: vertices must be objects"
    in
    let* levels_json =
      match Jsonlite.list_member "levels" json with
      | Some l -> Ok l
      | None -> fail "plan: missing \"levels\""
    in
    if List.length levels_json <> d + 1 then fail "plan: expected %d levels" (d + 1)
    else
      let* levels =
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | Jsonlite.Arr items ->
              let* verts =
                List.fold_left
                  (fun acc item ->
                    let* acc = acc in
                    let* vx = parse_vertex ~k item in
                    Ok (vx :: acc))
                  (Ok []) items
              in
              Ok (List.rev verts :: acc)
            | _ -> fail "plan: each level must be an array")
          (Ok [])
          (List.mapi (fun k v -> (k, v)) levels_json)
        |> Result.map (fun l -> Array.of_list (List.rev l))
      in
      if levels.(0) = [] then fail "plan: level 0 must be non-empty"
      else Ok { key; d; supports; levels }
