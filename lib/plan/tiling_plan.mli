(** Compiled per-shape tiling plans (Section 7 made operational).

    Section 7 of the paper proves the optimal tile exponent
    [f(beta) = max sum lambda] of LP (5.1) is piecewise-linear in
    [beta = log_M L]: by LP duality it equals the minimum of
    [sum_j s_j + sum_i zeta_i beta_i] over the vertices of the dual
    polyhedron [D = { (zeta, s) >= 0 : zeta_i + sum_{j : i in supp j} s_j
    >= 1 }] — and [D] depends only on the kernel's {e shape} (the
    multiset of array supports), not on the bounds or the cache size.
    {!Closed_form} enumerates those vertices once per shape to print the
    pieces and critical regions; this module compiles the same vertex
    sets into a {e plan}: a lookup structure that answers any
    [(L_1..L_d, M)] request with pure rational arithmetic — no simplex
    solves — and returns exactly the answer the LP pipeline produces.

    {2 Canonical answers}

    LP (5.1) often has a face of optima, and which vertex the simplex
    returns depends on pivot order — useless as a cache contract. Both
    the plan and the LP fallback therefore return the {e
    lexicographically maximal} optimal solution: among all optimal
    [lambda], the one maximizing [lambda_0], then [lambda_1], and so on.
    This point is unique, so the two paths agree bit-for-bit.

    The plan computes it greedily: besides the level-0 vertex set of [D]
    (which prices the optimal value), it stores the vertex sets of the
    dual polyhedra of every loop {e suffix} [{k..d-1}]. Fixing
    [lambda_k = t] leaves a suffix problem with per-array capacities
    reduced by [t] on arrays containing loop [k]; its value is again a
    vertex minimum, so the largest [t] preserving global optimality is
    the smallest root of [d] one-dimensional piecewise-linear equations
    — [O(d * vertices)] rational operations per query.

    Because the stored vertex sets are {e unpruned} (no box
    restriction), a plan is exact for every [beta >= 0] — including
    bounds past the [M^4] box {!Closed_form} prints regions for. There
    is no out-of-box fallback to take. *)

type t
(** A compiled plan for one kernel shape. Immutable. *)

val shape_key : Spec.t -> string
(** Canonical shape key: loop count plus the sorted (mode, support)
    rows, with absolute 0-based loop indices — {!Memo.key_of_spec}
    without the bounds prefix. Two specs with equal keys have identical
    support structure and share one plan (loop/array names and bounds do
    not appear). *)

val compile : Spec.t -> t
(** Enumerate the [d+1] suffix dual-polyhedron vertex sets for this
    spec's shape. Cost is one small exact linear solve per candidate
    support/loop subset pair; plans for the paper's kernels compile in
    milliseconds.
    @raise Invalid_argument (message containing ["shape too large"],
    classified as [Engine_error.Shape_too_large]) when the candidate
    count exceeds an enumeration budget. *)

val key : t -> string
(** The {!shape_key} this plan was compiled for. *)

val dims : t -> int * int
(** [(d, n)]: loop and array counts of the shape. *)

val num_pieces : t -> int
(** Vertices of the full (level-0) dual polyhedron = unpruned pieces of
    the closed form. Every piece {!Closed_form.compute} keeps appears
    here; this set additionally retains pieces minimal only outside the
    box. *)

val num_vertices : t -> int
(** Total stored vertices across all [d+1] levels. *)

val answer : t -> beta:Rat.t array -> Rat.t array * Rat.t
(** [answer t ~beta] is [(lambda, value)]: the lexicographically maximal
    optimal solution of LP (5.1) and its objective [sum lambda_i],
    exact, for any [beta >= 0] (in or out of the closed form's box).
    Matches {!Tiling.solve_lp_lexmax} bit-for-bit.
    @raise Invalid_argument on arity mismatch or negative [beta].
    @raise Failure if the plan's vertex sets are inconsistent with the
    greedy elimination (possible only for a hand-edited plan file). *)

val value : t -> beta:Rat.t array -> Rat.t
(** The optimal exponent alone: one vertex-minimum, [O(pieces * (d+n))]
    rational operations. *)

val dual : t -> Spec.t -> beta:Rat.t array -> Rat.t array
(** Optimal multipliers for LP (5.1) in [spec]'s constraint order ([n]
    array rows then [d] bound rows), read off the value-minimizing
    level-0 vertex. A valid optimal dual, though not necessarily the one
    the simplex would return ({!Report.to_json} does not render duals,
    so this difference is invisible on the wire).
    @raise Invalid_argument if [spec]'s shape key differs from {!key}. *)

(** {1 Serialization}

    Plans serialize to versioned JSON ([{"v":1,...}] at the container
    level; see [tilings compile]) so serve replicas can boot warm via
    [--plans FILE]. Rationals travel as exact strings ([Rat.to_string]),
    never floats. [to_json] output is canonical: vertices are sorted, so
    equal plans render byte-identically. *)

val to_json : t -> string
(** One JSON object [{"shape":...,"d":...,"supports":...,"levels":...}]
    (no trailing newline). *)

val of_json : Jsonlite.t -> (t, string) result
(** Parse and validate one plan object: arity checks, rational parses,
    non-negativity, and dual feasibility of every stored vertex. Accepts
    exactly what {!to_json} emits. *)
