type t = { caches : Cache.t array; line_words : int }

let create ?(line_words = 1) ?(policy = Policy.Lru) ~capacities () =
  let n = Array.length capacities in
  if n = 0 then invalid_arg "Hierarchy.create: need at least one level";
  for k = 1 to n - 1 do
    if capacities.(k) <= capacities.(k - 1) then
      invalid_arg "Hierarchy.create: capacities must be strictly increasing"
  done;
  if policy = Policy.Opt then invalid_arg "Hierarchy.create: OPT is offline-only";
  (* Build outermost-first so each level's eviction handler can reference
     the next level. *)
  let caches = Array.make n None in
  for k = n - 1 downto 0 do
    let on_evict =
      if k = n - 1 then None
      else begin
        let next =
          match caches.(k + 1) with Some c -> c | None -> assert false
        in
        (* A dirty line leaving level k is written to level k+1; clean
           evictions are silent (lookup-through, non-inclusive). *)
        Some
          (fun ~line ~dirty ->
            if dirty then Cache.access next ~write:true (line * line_words))
      end
    in
    caches.(k) <- Some (Cache.create ~line_words ?on_evict ~policy ~capacity:capacities.(k) ())
  done;
  let caches = Array.map (function Some c -> c | None -> assert false) caches in
  { caches; line_words }

let levels t = Array.length t.caches

(* An access walks down the hierarchy until it hits; each traversed level
   records the access: level k sees the access iff all faster levels
   missed. *)
let access t ~write addr =
  let n = Array.length t.caches in
  let rec go k =
    if k < n then begin
      let c = t.caches.(k) in
      let was_resident = Cache.resident c addr in
      Cache.access c ~write addr;
      if not was_resident then go (k + 1)
    end
  in
  go 0

(* Batched same-line run. L1 absorbs the whole run (Cache.access_run);
   deeper levels see exactly what per-word replay would have shown them:
   one access carrying the run's *first* write flag, and only when L1 was
   not already resident — touches 2..count hit L1 and never descend. L1's
   eviction (which forwards a dirty victim to L2) happens inside
   access_run before the descent, preserving the per-word ordering. *)
let access_run t ~first_write ~any_write ~count addr =
  if count > 0 then begin
    let n = Array.length t.caches in
    let c0 = t.caches.(0) in
    let was_resident = Cache.resident c0 addr in
    Cache.access_run c0 ~write:any_write ~count addr;
    if not was_resident then begin
      let rec go k =
        if k < n then begin
          let c = t.caches.(k) in
          let was = Cache.resident c addr in
          Cache.access c ~write:first_write addr;
          if not was then go (k + 1)
        end
      in
      go 1
    end
  end

let flush t = Array.iter Cache.flush t.caches

let stats t = Array.map Cache.stats t.caches

let traffic t =
  Array.map
    (fun c ->
      let s = Cache.stats c in
      Cache.words_moved ~line_words:t.line_words s)
    t.caches

let record_obs t =
  Array.iteri
    (fun k c ->
      Cache.record_obs ~prefix:(Printf.sprintf "cachesim.L%d" (k + 1)) (Cache.stats c))
    t.caches
