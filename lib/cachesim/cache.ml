type stats = { accesses : int; hits : int; misses : int; evictions : int; writebacks : int }

let words_moved ~line_words s = (s.misses + s.writebacks) * line_words

(* Intrusive doubly-linked list node; the list order encodes recency (LRU)
   or insertion order (FIFO): head = next victim, tail = most recent. *)
type node = {
  line : int;
  mutable dirty : bool;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  policy : Policy.t;
  on_evict : (line:int -> dirty:bool -> unit) option;
  line_words : int;
  cap_lines : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable size : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

let create ?(line_words = 1) ?on_evict ~policy ~capacity () =
  if line_words < 1 then invalid_arg "Cache.create: line_words must be positive";
  if capacity < line_words then invalid_arg "Cache.create: capacity below one line";
  if policy = Policy.Opt then
    invalid_arg "Cache.create: OPT needs the full trace; use Trace.simulate";
  {
    policy;
    on_evict;
    line_words;
    cap_lines = capacity / line_words;
    table = Hashtbl.create 1024;
    head = None;
    tail = None;
    size = 0;
    accesses = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
  }

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_tail t node =
  node.prev <- t.tail;
  node.next <- None;
  (match t.tail with Some old -> old.next <- Some node | None -> t.head <- Some node);
  t.tail <- Some node

let evict_head t =
  match t.head with
  | None -> ()
  | Some victim ->
    unlink t victim;
    Hashtbl.remove t.table victim.line;
    t.size <- t.size - 1;
    t.evictions <- t.evictions + 1;
    if victim.dirty then t.writebacks <- t.writebacks + 1;
    match t.on_evict with
    | Some f -> f ~line:victim.line ~dirty:victim.dirty
    | None -> ()

let access t ~write addr =
  t.accesses <- t.accesses + 1;
  let line = addr / t.line_words in
  match Hashtbl.find_opt t.table line with
  | Some node ->
    t.hits <- t.hits + 1;
    if write then node.dirty <- true;
    if t.policy = Policy.Lru then begin
      (* Move to most-recent position; FIFO leaves insertion order. *)
      unlink t node;
      push_tail t node
    end
  | None ->
    t.misses <- t.misses + 1;
    if t.size >= t.cap_lines then evict_head t;
    let node = { line; dirty = write; prev = None; next = None } in
    Hashtbl.add t.table line node;
    push_tail t node;
    t.size <- t.size + 1

let flush t =
  let rec drain () =
    match t.head with
    | None -> ()
    | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.line;
      t.size <- t.size - 1;
      if node.dirty then t.writebacks <- t.writebacks + 1;
      (match t.on_evict with
      | Some f -> f ~line:node.line ~dirty:node.dirty
      | None -> ());
      drain ()
  in
  drain ()

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    writebacks = t.writebacks;
  }

let capacity_lines t = t.cap_lines
let resident t addr = Hashtbl.mem t.table (addr / t.line_words)

(* Aggregate-at-the-end instrumentation: Cache.access is the hottest loop
   in the repository (one call per touched word), so per-access Obs
   increments are off the table; callers record a finished run's stats in
   one shot instead. *)
let record_obs ?(prefix = "cachesim.L1") (s : stats) =
  let c suffix = Obs.counter (prefix ^ "." ^ suffix) in
  Obs.incr ~by:s.accesses (c "accesses");
  Obs.incr ~by:s.hits (c "hits");
  Obs.incr ~by:s.misses (c "misses");
  Obs.incr ~by:s.evictions (c "evictions");
  Obs.incr ~by:s.writebacks (c "writebacks")
