type stats = { accesses : int; hits : int; misses : int; evictions : int; writebacks : int }

let words_moved ~line_words s = (s.misses + s.writebacks) * line_words

(* Data-oriented layout: the simulator state is a handful of flat int
   arrays indexed by slot, instead of the previous heap-allocated
   intrusive list nodes behind a Hashtbl. One word-touch used to cost a
   Hashtbl probe (hashing, bucket chase) plus pointer-chasing through
   option-wrapped nodes; now it is an open-addressed probe into an int
   array and three int stores for the LRU splice — no allocation on the
   access path at all, and the working state fits in a few cache lines
   of the *host* machine.

   - [lines.(s)] is the line tag resident in slot [s]; [nxt]/[prv] link
     the slots in recency (LRU) or insertion (FIFO) order, head = next
     victim, tail = most recent, [-1] as the null slot.
   - [dirty] packs one bit per slot, 32 per word ([lsr 5] / [land 31]).
   - [tbl] maps line -> slot by open addressing with linear probing
     ([-1] = empty); its size is a power of two at least twice the slot
     allocation, so load factor stays below 1/2. Deletion uses
     backward-shift (no tombstones, probe chains stay contiguous).
   - Slot storage grows lazily from a small initial allocation up to
     [cap_lines]: a capacity-2^40 cache costs a few hundred words until
     it actually holds lines. Slots are reused in place: the victim of
     an eviction hands its slot straight to the incoming line, and
     [flush] resets the fill watermark to zero. Stale dirty bits from a
     previous occupant are harmless — insertion always sets or clears
     the bit explicitly. *)
type t = {
  policy : Policy.t;
  on_evict : (line:int -> dirty:bool -> unit) option;
  line_words : int;
  cap_lines : int;
  mutable lines : int array;
  mutable nxt : int array;
  mutable prv : int array;
  mutable dirty : int array;
  mutable alloc : int;  (* slots allocated *)
  mutable fill : int;  (* fresh-slot watermark: slots >= fill never used *)
  mutable head : int;
  mutable tail : int;
  mutable size : int;
  mutable tbl : int array;
  mutable mask : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

let table_size alloc =
  let rec go s = if s >= 2 * alloc then s else go (s * 2) in
  go 16

let create ?(line_words = 1) ?on_evict ~policy ~capacity () =
  if line_words < 1 then invalid_arg "Cache.create: line_words must be positive";
  if capacity < line_words then invalid_arg "Cache.create: capacity below one line";
  if policy = Policy.Opt then
    invalid_arg "Cache.create: OPT needs the full trace; use Trace.simulate";
  let cap_lines = capacity / line_words in
  let alloc = Stdlib.min cap_lines 256 in
  let ts = table_size alloc in
  {
    policy;
    on_evict;
    line_words;
    cap_lines;
    lines = Array.make alloc (-1);
    nxt = Array.make alloc (-1);
    prv = Array.make alloc (-1);
    dirty = Array.make ((alloc + 31) / 32) 0;
    alloc;
    fill = 0;
    head = -1;
    tail = -1;
    size = 0;
    tbl = Array.make ts (-1);
    mask = ts - 1;
    accesses = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
  }

(* Multiplicative hash; the constant is an odd 62-bit mixer (Lemire's
   splitmix-derived one truncated to fit OCaml's 63-bit int). Product
   wraparound on negative tags is fine — only the mixed high bits are
   kept. *)
let hash t line = ((line * 0x2545F4914F6CDD1D) lsr 24) land t.mask

let dirty_get t s = t.dirty.(s lsr 5) land (1 lsl (s land 31)) <> 0
let dirty_set t s = t.dirty.(s lsr 5) <- t.dirty.(s lsr 5) lor (1 lsl (s land 31))
let dirty_clear t s = t.dirty.(s lsr 5) <- t.dirty.(s lsr 5) land lnot (1 lsl (s land 31))

(* -1 when the line is not resident. *)
let find_slot t line =
  let j = ref (hash t line) in
  let s = ref t.tbl.(!j) in
  while !s <> -1 && t.lines.(!s) <> line do
    j := (!j + 1) land t.mask;
    s := t.tbl.(!j)
  done;
  !s

let tbl_add t line slot =
  let j = ref (hash t line) in
  while t.tbl.(!j) <> -1 do
    j := (!j + 1) land t.mask
  done;
  t.tbl.(!j) <- slot

(* Backward-shift deletion: walk the probe chain after the hole and pull
   back every entry whose home position precedes the hole (cyclically),
   so lookups never need tombstones. *)
let tbl_remove t line =
  let mask = t.mask in
  let j = ref (hash t line) in
  while t.tbl.(!j) = -1 || t.lines.(t.tbl.(!j)) <> line do
    j := (!j + 1) land mask
  done;
  t.tbl.(!j) <- -1;
  let hole = ref !j in
  let k = ref ((!j + 1) land mask) in
  while t.tbl.(!k) <> -1 do
    let home = hash t t.lines.(t.tbl.(!k)) in
    if (!k - home) land mask >= (!k - !hole) land mask then begin
      t.tbl.(!hole) <- t.tbl.(!k);
      t.tbl.(!k) <- -1;
      hole := !k
    end;
    k := (!k + 1) land mask
  done

let unlink t s =
  let p = t.prv.(s) and n = t.nxt.(s) in
  if p = -1 then t.head <- n else t.nxt.(p) <- n;
  if n = -1 then t.tail <- p else t.prv.(n) <- p

let push_tail t s =
  t.prv.(s) <- t.tail;
  t.nxt.(s) <- -1;
  if t.tail = -1 then t.head <- s else t.nxt.(t.tail) <- s;
  t.tail <- s

let grow t =
  let na = Stdlib.min t.cap_lines (t.alloc * 2) in
  let extend a pad = Array.init na (fun i -> if i < t.alloc then a.(i) else pad) in
  t.lines <- extend t.lines (-1);
  t.nxt <- extend t.nxt (-1);
  t.prv <- extend t.prv (-1);
  let nd = Array.make ((na + 31) / 32) 0 in
  Array.blit t.dirty 0 nd 0 (Array.length t.dirty);
  t.dirty <- nd;
  t.alloc <- na;
  let ts = table_size na in
  t.tbl <- Array.make ts (-1);
  t.mask <- ts - 1;
  let s = ref t.head in
  while !s <> -1 do
    tbl_add t t.lines.(!s) !s;
    s := t.nxt.(!s)
  done

(* Evict the head (LRU victim / FIFO oldest) and return its slot for
   immediate reuse by the incoming line. *)
let evict_head t =
  let s = t.head in
  unlink t s;
  tbl_remove t t.lines.(s);
  t.size <- t.size - 1;
  t.evictions <- t.evictions + 1;
  let d = dirty_get t s in
  if d then t.writebacks <- t.writebacks + 1;
  (match t.on_evict with Some f -> f ~line:t.lines.(s) ~dirty:d | None -> ());
  s

(* Floor division so negative addresses map to distinct lines. Truncating
   [addr / line_words] folded e.g. words -3..3 onto lines -1, 0 for
   line_words = 4: line -1 held seven words and hit/miss counts near the
   origin were wrong for any trace with negative addresses. *)
let line_of t addr =
  if addr >= 0 then addr / t.line_words else -1 - ((-1 - addr) / t.line_words)

(* [count] same-line touches in one step. Statistically exact, not an
   approximation: after the first touch the line is resident (and MRU
   under LRU), so touches 2..count are guaranteed hits whatever the
   policy, and a single splice leaves the recency order exactly as
   [count] singleton accesses would. *)
let access_run t ~write ~count addr =
  if count > 0 then begin
    t.accesses <- t.accesses + count;
    let line = line_of t addr in
    let s = find_slot t line in
    if s >= 0 then begin
      t.hits <- t.hits + count;
      if write then dirty_set t s;
      if t.policy = Policy.Lru && s <> t.tail then begin
        unlink t s;
        push_tail t s
      end
    end
    else begin
      t.misses <- t.misses + 1;
      t.hits <- t.hits + (count - 1);
      let slot =
        if t.size >= t.cap_lines then evict_head t
        else begin
          if t.fill >= t.alloc then grow t;
          let s = t.fill in
          t.fill <- t.fill + 1;
          s
        end
      in
      t.lines.(slot) <- line;
      if write then dirty_set t slot else dirty_clear t slot;
      tbl_add t line slot;
      push_tail t slot;
      t.size <- t.size + 1
    end
  end

let access t ~write addr = access_run t ~write ~count:1 addr

let flush t =
  (* Drain in recency order (head first), matching the eviction order the
     old implementation used, so on_evict forwarding is unchanged. Lines
     leaving on a flush are evictions too — the previous implementation
     counted only the writebacks, so [evictions] under-reported by
     exactly the resident line count at every flush. *)
  let s = ref t.head in
  while !s <> -1 do
    let d = dirty_get t !s in
    t.evictions <- t.evictions + 1;
    if d then t.writebacks <- t.writebacks + 1;
    (match t.on_evict with Some f -> f ~line:t.lines.(!s) ~dirty:d | None -> ());
    s := t.nxt.(!s)
  done;
  Array.fill t.tbl 0 (Array.length t.tbl) (-1);
  t.head <- -1;
  t.tail <- -1;
  t.size <- 0;
  t.fill <- 0

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    writebacks = t.writebacks;
  }

let capacity_lines t = t.cap_lines
let resident t addr = find_slot t (line_of t addr) >= 0

(* Aggregate-at-the-end instrumentation: Cache.access is the hottest loop
   in the repository (one call per touched word), so per-access Obs
   increments are off the table; callers record a finished run's stats in
   one shot instead. *)
let record_obs ?(prefix = "cachesim.L1") (s : stats) =
  let c suffix = Obs.counter (prefix ^ "." ^ suffix) in
  Obs.incr ~by:s.accesses (c "accesses");
  Obs.incr ~by:s.hits (c "hits");
  Obs.incr ~by:s.misses (c "misses");
  Obs.incr ~by:s.evictions (c "evictions");
  Obs.incr ~by:s.writebacks (c "writebacks")
