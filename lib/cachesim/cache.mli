(** Online fully-associative cache simulator.

    Models the paper's machine (Section 2): a fast memory of [capacity]
    words in front of an unbounded slow memory. Communication is counted
    in words: every miss moves one line ([line_words], default 1 — the
    paper's model) from slow memory, and every eviction or flush of a
    dirty line moves one line back.

    Supports {!Policy.Lru} and {!Policy.Fifo} online; Belady-OPT needs the
    future and lives in {!Trace.simulate}. Misses on writes allocate
    (write-allocate, write-back). *)

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;  (** dirty lines written back on eviction or flush *)
}

val words_moved : line_words:int -> stats -> int
(** [(misses + writebacks) * line_words] — total slow-memory traffic. *)

type t

val create :
  ?line_words:int ->
  ?on_evict:(line:int -> dirty:bool -> unit) ->
  policy:Policy.t ->
  capacity:int ->
  unit ->
  t
(** [capacity] is in words and must be at least [line_words]. [on_evict]
    is called for every line leaving the cache (evictions and
    {!flush}) — {!module:Hierarchy} uses it to forward dirty write-backs
    to the next level.
    @raise Invalid_argument on a non-positive size, [line_words] not
    dividing into capacity at least once, or [policy = Opt]. *)

val access : t -> write:bool -> int -> unit
(** Touch one word at the given address. Negative addresses are valid;
    line mapping uses floor division so every line spans exactly
    [line_words] words. *)

val access_run : t -> write:bool -> count:int -> int -> unit
(** [access_run t ~write ~count addr] — [count] consecutive touches of
    words on the {e line} containing [addr], in one step. Statistically
    exact, not approximate: after the first touch the line is resident
    (and most-recent under LRU), so the remaining [count - 1] touches are
    guaranteed hits under any policy, and one recency splice equals
    [count] singleton splices. [write] must be true iff {e any} of the
    batched touches writes (write-allocate makes the line dirty either
    way). [count = 0] is a no-op. This is the fast path the loop executor
    uses: it turns per-word simulation into per-line-run simulation. *)

val flush : t -> unit
(** Evict every resident line: counted in [evictions], dirty ones also in
    [writebacks], and [on_evict] fires for each. Call once at the end of
    a computation so output traffic is accounted. *)

val stats : t -> stats
val capacity_lines : t -> int
val resident : t -> int -> bool
(** Is the line containing this word address currently cached? *)

val record_obs : ?prefix:string -> stats -> unit
(** Add a finished run's statistics to the global {!Obs} counters
    [<prefix>.accesses|hits|misses|evictions|writebacks] (default prefix
    ["cachesim.L1"]). Aggregate instrumentation: one call per simulated
    run, never per access — the access path stays instrumentation-free. *)
