type access = { addr : int; write : bool }
type t = access array

let read addr = { addr; write = false }
let write addr = { addr; write = true }

let words_touched trace =
  let seen = Hashtbl.create 1024 in
  Array.iter (fun a -> if not (Hashtbl.mem seen a.addr) then Hashtbl.add seen a.addr ()) trace;
  Hashtbl.length seen

(* ------------------------------------------------------------------ *)
(* Max-heap of (key, line) with lazy invalidation, for Belady MIN.    *)
(* ------------------------------------------------------------------ *)

module Heap = struct
  type entry = { key : int; line : int }
  type h = { mutable a : entry array; mutable len : int }

  let create () = { a = Array.make 64 { key = 0; line = 0 }; len = 0 }

  let grow h =
    let b = Array.make (2 * Array.length h.a) h.a.(0) in
    Array.blit h.a 0 b 0 h.len;
    h.a <- b

  let push h e =
    if h.len = Array.length h.a then grow h;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    (* Sift up. *)
    let i = ref (h.len - 1) in
    while !i > 0 && h.a.((!i - 1) / 2).key < h.a.(!i).key do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.a.(0) <- h.a.(h.len);
        (* Sift down. *)
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let biggest = ref !i in
          if l < h.len && h.a.(l).key > h.a.(!biggest).key then biggest := l;
          if r < h.len && h.a.(r).key > h.a.(!biggest).key then biggest := r;
          if !biggest = !i then continue := false
          else begin
            let tmp = h.a.(!i) in
            h.a.(!i) <- h.a.(!biggest);
            h.a.(!biggest) <- tmp;
            i := !biggest
          end
        done
      end;
      Some top
    end
end

type opt_line = { mutable next : int; mutable dirty : bool }

(* Floor division, matching Cache's line mapping: negative addresses get
   full [line_words]-word lines instead of the truncated-division
   artifact that folded words around the origin onto two lines. *)
let line_of ~line_words addr =
  if addr >= 0 then addr / line_words else -1 - ((-1 - addr) / line_words)

let simulate_opt ~line_words ~cap_lines (trace : t) : Cache.stats =
  let n = Array.length trace in
  (* next_use.(i): index of the next access to the same line after i, or
     max_int if there is none. Computed in one backward pass. *)
  let next_use = Array.make n max_int in
  let last_seen = Hashtbl.create 1024 in
  for i = n - 1 downto 0 do
    let line = line_of ~line_words trace.(i).addr in
    (match Hashtbl.find_opt last_seen line with
    | Some j -> next_use.(i) <- j
    | None -> ());
    Hashtbl.replace last_seen line i
  done;
  let cached : (int, opt_line) Hashtbl.t = Hashtbl.create 1024 in
  let heap = Heap.create () in
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 and writebacks = ref 0 in
  let evict () =
    (* Pop lazily until the heap entry matches the line's live next-use. *)
    let rec go () =
      match Heap.pop heap with
      | None -> ()
      | Some { Heap.key; line } -> (
        match Hashtbl.find_opt cached line with
        | Some ol when ol.next = key ->
          Hashtbl.remove cached line;
          incr evictions;
          if ol.dirty then incr writebacks
        | _ -> go () (* stale entry *))
    in
    go ()
  in
  for i = 0 to n - 1 do
    let a = trace.(i) in
    let line = line_of ~line_words a.addr in
    match Hashtbl.find_opt cached line with
    | Some ol ->
      incr hits;
      ol.next <- next_use.(i);
      if a.write then ol.dirty <- true;
      Heap.push heap { Heap.key = next_use.(i); line }
    | None ->
      incr misses;
      if Hashtbl.length cached >= cap_lines then evict ();
      Hashtbl.add cached line { next = next_use.(i); dirty = a.write };
      Heap.push heap { Heap.key = next_use.(i); line }
  done;
  (* Final flush: every remaining line leaves the cache (an eviction,
     mirroring Cache.flush), and dirty ones are written back. *)
  Hashtbl.iter
    (fun _ ol ->
      incr evictions;
      if ol.dirty then incr writebacks)
    cached;
  {
    Cache.accesses = n;
    hits = !hits;
    misses = !misses;
    evictions = !evictions;
    writebacks = !writebacks;
  }

let simulate ?(line_words = 1) ~policy ~capacity (trace : t) : Cache.stats =
  if capacity < line_words then invalid_arg "Trace.simulate: capacity below one line";
  match policy with
  | Policy.Opt -> simulate_opt ~line_words ~cap_lines:(capacity / line_words) trace
  | Policy.Lru | Policy.Fifo ->
    let cache = Cache.create ~line_words ~policy ~capacity () in
    Array.iter (fun a -> Cache.access cache ~write:a.write a.addr) trace;
    Cache.flush cache;
    Cache.stats cache
