(** Multi-level memory hierarchy simulation.

    The paper's model (one fast memory in front of slow memory) composes:
    between every pair of adjacent levels the same lower bound applies
    with [M] = the size of the faster level. This module chains caches in
    a lookup-through cascade — an access that misses level [k] is
    forwarded to level [k+1]; a dirty line evicted from level [k] is
    written through to level [k+1] — so the traffic across each boundary
    can be compared against the per-level bounds, and nested tilings
    ({!Tiling.nested}, {!Schedules.Nested}) can be validated at every
    level at once. *)

type t

val create : ?line_words:int -> ?policy:Policy.t -> capacities:int array -> unit -> t
(** [capacities] are the level sizes in words, fastest (smallest) first;
    they must be strictly increasing. Default policy is LRU at every
    level.
    @raise Invalid_argument on an empty or non-increasing ladder, or
    [policy = Opt]. *)

val levels : t -> int

val access : t -> write:bool -> int -> unit

val access_run : t -> first_write:bool -> any_write:bool -> count:int -> int -> unit
(** [access_run t ~first_write ~any_write ~count addr] — [count]
    consecutive touches of the line containing [addr], batched. Exactly
    equivalent to replaying the run word by word: the first level absorbs
    the whole run ({!Cache.access_run} with [any_write]); deeper levels
    are visited only when the first level was not already resident, and
    then see a single access carrying [first_write] — the run's touches
    after the first hit the first level and never reach them.
    [count = 0] is a no-op. *)

val flush : t -> unit
(** Flush every level, innermost first, cascading dirty write-backs. *)

val stats : t -> Cache.stats array
(** Per-level statistics. Level [k]'s accesses are exactly level
    [k-1]'s misses plus its forwarded write-backs. *)

val traffic : t -> int array
(** [traffic t] has one entry per boundary: words moved between level
    [k] and level [k+1] (the last entry is the traffic to main memory).
    Entry [k] is [misses_k + writebacks_k] in words. *)

val record_obs : t -> unit
(** Record every level's statistics into the global {!Obs} counters under
    [cachesim.L<k>] (levels numbered from 1, fastest first). Call once
    after {!flush}. *)
