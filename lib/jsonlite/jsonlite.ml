type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let parse_literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

(* Encode a Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if st.pos >= String.length st.src then error st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '"' then Buffer.contents buf
    else if c = '\\' then begin
      (if st.pos >= String.length st.src then error st "unterminated escape";
       let e = st.src.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
         if st.pos + 4 > String.length st.src then error st "short \\u escape";
         let v = ref 0 in
         for i = 0 to 3 do
           let d = hex_digit st.src.[st.pos + i] in
           if d < 0 then error st "bad \\u escape";
           v := (!v * 16) + d
         done;
         st.pos <- st.pos + 4;
         add_utf8 buf !v
       | _ -> error st "bad escape");
      loop ()
    end
    else begin
      Buffer.add_char buf c;
      loop ()
    end
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> Num f
  | None -> error st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ((key, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          Obj (List.rev ((key, v) :: acc))
        | _ -> error st "expected ',' or '}'"
      in
      members []
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          Arr (List.rev (v :: acc))
        | _ -> error st "expected ',' or ']'"
      in
      elements []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st
  | None -> error st "unexpected end of input"

let parse_exn s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let parse s = try Ok (parse_exn s) with Parse_error msg -> Error msg

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_obj = function Obj kvs -> Some kvs | _ -> None

let num_member key j = Option.bind (member key j) to_num
let str_member key j = Option.bind (member key j) to_str
let list_member key j = Option.bind (member key j) to_list
