(** Minimal dependency-free JSON: a value type, a strict recursive-descent
    parser, and a few accessors.

    Exists because the repo's machine-readable outputs (the ["obs"]
    sections, [BENCH_engine.json], Chrome trace files) need to be read
    back by [bench/compare] and by tests, and the toolchain has no JSON
    library installed. Numbers are floats (sufficient for our writers),
    [\uXXXX] escapes decode to UTF-8, surrogate pairs are not combined. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
(** Strict parse of a complete document (trailing whitespace allowed,
    anything else is an error). *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val of_file : string -> (t, string) result

(** {1 Accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_num : t -> float option
val to_str : t -> string option
val to_obj : t -> (string * t) list option
val num_member : string -> t -> float option
val str_member : string -> t -> string option
val list_member : string -> t -> t list option
