(* The distributed-memory partition solver (Section 7 end to end).

   Given (kernel, P processors, M_local words per processor, network
   model), pick the processor grid and per-processor tile minimizing the
   modeled per-processor communication, exactly:

   - gather_words(grid): the block's total footprint
     [sum_j prod_{i in supp j} ceil(L_i/p_i)] — what a processor must
     receive at minimum regardless of local memory (Comm_model.cost).
   - words(grid): the memory-dependent (ITT04-style) prediction — the
     communication-optimal local tile for a cache of M_local words
     (Theorem 2 with M = M_local via Tiling.optimal_shared), charged one
     full tile footprint per tile:
     [prod_i ceil(b_i/t_i) * sum_j prod_{i in supp j} t_i].
     Since the tiles cover the block and each element is charged at
     least once, words >= gather_words always; equality (the tile spans
     the whole block) is the memory-independent regime.

   gather_words is therefore an admissible lower bound on words, which
   is what lets the solver sort candidate grids by gather and skip the
   (comparatively expensive) tile search for any grid whose gather
   already meets the incumbent. *)

type network = Words | Alpha_beta of { alpha : Rat.t; beta : Rat.t }

type regime = Memory_independent | Memory_dependent

type solution = {
  p : int;
  m_local : int;
  net : network;
  grid : int array;
  block : int array;
  tile : int array;
  regime : regime;
  words : Bigint.t;
  gather_words : Bigint.t;
  messages : int;
  time : Rat.t;
  lower_bound : float;
  grids_enumerated : int;
  grids_pruned : int;
}

let net_to_key = function
  | Words -> "words"
  | Alpha_beta { alpha; beta } ->
    Printf.sprintf "ab:%s,%s" (Rat.to_string alpha) (Rat.to_string beta)

let regime_to_string = function
  | Memory_independent -> "memory_independent"
  | Memory_dependent -> "memory_dependent"

let ceil_log2 n =
  let rec go k acc = if acc >= n then k else go (k + 1) (acc * 2) in
  if n <= 1 then 0 else go 0 1

(* Latency term: each array block shared by a fiber of [prod_{i not in
   supp j} p_i] processors is all-gathered along that fiber in
   [ceil(log2 fiber)] rounds. *)
let message_count spec ~grid =
  Array.fold_left
    (fun acc (a : Spec.array_ref) ->
      let fiber = ref 1 in
      Array.iteri
        (fun i p -> if not (Array.exists (fun s -> s = i) a.Spec.support) then fiber := !fiber * p)
        grid;
      acc + ceil_log2 !fiber)
    0 spec.Spec.arrays

let tile_words spec ~block ~tile =
  (* Exact: [prod ceil(b_i/t_i)] tiles, each charged its full footprint. *)
  let tiles =
    ref Bigint.one
  in
  Array.iteri
    (fun i b -> tiles := Bigint.mul !tiles (Bigint.of_int ((b + tile.(i) - 1) / tile.(i))))
    block;
  let footprint =
    Array.fold_left
      (fun acc (a : Spec.array_ref) ->
        Bigint.add acc
          (Array.fold_left
             (fun f i -> Bigint.mul f (Bigint.of_int tile.(i)))
             Bigint.one a.Spec.support))
      Bigint.zero spec.Spec.arrays
  in
  Bigint.mul !tiles footprint

let objective net ~words ~messages =
  match net with
  | Words -> Rat.of_bigint words
  | Alpha_beta { alpha; beta } ->
    Rat.add (Rat.mul_int alpha messages) (Rat.mul beta (Rat.of_bigint words))

type candidate = {
  c_grid : int array;
  c_block : int array;
  c_tile : int array;
  c_words : Bigint.t;
  c_gather : Bigint.t;
  c_messages : int;
  c_time : Rat.t;
}

let solve ?budget spec ~p ~m_local ~net =
  let grids = Partition.grids ?budget spec ~p in
  let enumerated = List.length grids in
  (* Stable sort by gather footprint keeps the underlying ascending
     lexicographic order within each gather class, so ties resolve to
     the lexicographically smallest grid deterministically. *)
  let with_gather =
    List.map (fun grid -> (Comm_model.cost spec ~grid, grid)) grids
  in
  let sorted =
    List.stable_sort
      (fun ((a : Comm_model.grid_cost), _) (b, _) ->
        Bigint.compare a.Comm_model.words b.Comm_model.words)
      with_gather
  in
  let pruned = ref 0 in
  let best = ref None in
  (* Is a candidate with gather footprint [g] already beaten by the
     incumbent before we compute its tile? In Words mode, yes when
     g >= best.words (words >= gather). With alpha/beta, yes when
     beta*g >= best.time — unless beta = 0, where words do not enter the
     objective at all and no gather-based pruning is sound. *)
  let dominated g =
    match !best with
    | None -> false
    | Some b -> (
      match net with
      | Words -> Bigint.compare g b.c_words >= 0
      | Alpha_beta { beta; _ } ->
        Rat.sign beta > 0
        && Rat.compare (Rat.mul beta (Rat.of_bigint g)) b.c_time >= 0)
  in
  List.iter
    (fun ((gc : Comm_model.grid_cost), grid) ->
      if dominated gc.Comm_model.words then incr pruned
      else begin
        let block = gc.Comm_model.block in
        let sub = Spec.with_bounds spec block in
        let tile = Tiling.optimal_shared sub ~m:m_local in
        let words = tile_words spec ~block ~tile in
        let messages = message_count spec ~grid in
        let time = objective net ~words ~messages in
        let c =
          {
            c_grid = grid;
            c_block = block;
            c_tile = tile;
            c_words = words;
            c_gather = gc.Comm_model.words;
            c_messages = messages;
            c_time = time;
          }
        in
        match !best with
        | Some b when Rat.compare b.c_time time <= 0 -> ()
        | _ -> best := Some c
      end)
    sorted;
  match !best with
  | None -> None
  | Some c ->
    let regime =
      if Bigint.equal c.c_words c.c_gather then Memory_independent
      else Memory_dependent
    in
    Some
      {
        p;
        m_local;
        net;
        grid = c.c_grid;
        block = c.c_block;
        tile = c.c_tile;
        regime;
        words = c.c_words;
        gather_words = c.c_gather;
        messages = c.c_messages;
        time = c.c_time;
        lower_bound = Comm_model.lower_bound spec ~p;
        grids_enumerated = enumerated;
        grids_pruned = !pruned;
      }

(* Canonical JSON payload — rendered identically by the CLI subcommand
   and the serve response builder, which is what the byte-identity
   acceptance test compares. Bigints and rationals travel as strings
   (they exceed double precision); the float lower bound uses %.17g so
   the text round-trips the IEEE value exactly. *)
let to_json (s : solution) =
  let ints a =
    "[" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "]"
  in
  let net_json =
    match s.net with
    | Words -> "\"words\""
    | Alpha_beta { alpha; beta } ->
      Printf.sprintf {|{"alpha":"%s","beta":"%s"}|} (Rat.to_string alpha)
        (Rat.to_string beta)
  in
  Printf.sprintf
    {|{"p":%d,"m_local":%d,"net":%s,"grid":%s,"block":%s,"tile":%s,"regime":"%s","words":"%s","gather_words":"%s","messages":%d,"time":"%s","lower_bound":%.17g,"grids_enumerated":%d,"grids_pruned":%d}|}
    s.p s.m_local net_json (ints s.grid) (ints s.block) (ints s.tile)
    (regime_to_string s.regime) (Bigint.to_string s.words)
    (Bigint.to_string s.gather_words) s.messages (Rat.to_string s.time)
    s.lower_bound s.grids_enumerated s.grids_pruned
