let grids spec ~p =
  if p < 1 then invalid_arg "Partition.grids: p must be positive";
  let d = Spec.num_loops spec in
  let bounds = spec.Spec.bounds in
  let acc = ref [] in
  let grid = Array.make d 1 in
  (* Enumerate divisor assignments dimension by dimension. *)
  let rec go i remaining =
    if i = d then begin
      if remaining = 1 then acc := Array.copy grid :: !acc
    end
    else
      for f = 1 to min remaining bounds.(i) do
        if remaining mod f = 0 then begin
          grid.(i) <- f;
          go (i + 1) (remaining / f)
        end
      done
  in
  go 0 p;
  List.rev !acc

let block_dims spec ~grid =
  Array.init (Spec.num_loops spec) (fun i ->
    let l = spec.Spec.bounds.(i) in
    (l + grid.(i) - 1) / grid.(i))

let block_iterations spec ~grid =
  (* Exact: d blocks of ~2^21 iterations each already overflow a 63-bit
     native product. *)
  Array.fold_left
    (fun acc d -> Bigint.mul acc (Bigint.of_int d))
    Bigint.one
    (block_dims spec ~grid)
