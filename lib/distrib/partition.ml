(* Divisors of [n], sorted ascending. Trial division up to sqrt(n) is
   plenty: P is a processor count, not a cryptographic modulus. *)
let divisors n =
  let acc = ref [] in
  let i = ref 1 in
  while !i * !i <= n do
    if n mod !i = 0 then begin
      acc := !i :: !acc;
      let q = n / !i in
      if q <> !i then acc := q :: !acc
    end;
    incr i
  done;
  List.sort compare !acc

let default_budget = 200_000

let grids ?(budget = default_budget) spec ~p =
  if p < 1 then invalid_arg "Partition.grids: p must be positive";
  let d = Spec.num_loops spec in
  let bounds = spec.Spec.bounds in
  (* Divisor ladder: only divisors of [p] can ever appear in a grid, so
     walk the (sorted) divisor list per level instead of every integer
     in [1, min remaining bounds.(i)] — the old sweep was Theta(p) per
     node, which for highly composite p (4096 over 6 dimensions) turned
     enumeration into billions of wasted modulo tests. Ascending order
     per level keeps the output in ascending lexicographic order, which
     [Comm_model.best_grid]'s first-wins tie-breaking depends on. *)
  let divs = Array.of_list (divisors p) in
  let acc = ref [] in
  let grid = Array.make d 1 in
  let nodes = ref 0 in
  let rec go i remaining =
    incr nodes;
    if !nodes > budget then
      invalid_arg
        (Printf.sprintf
           "Partition.grids: shape too large: enumeration budget %d exceeded \
            factoring p=%d over %d dimensions"
           budget p d);
    if i = d then begin
      if remaining = 1 then acc := Array.copy grid :: !acc
    end
    else
      Array.iter
        (fun f ->
          if f <= bounds.(i) && f <= remaining && remaining mod f = 0 then begin
            grid.(i) <- f;
            go (i + 1) (remaining / f)
          end)
        divs
  in
  go 0 p;
  List.rev !acc

let block_dims spec ~grid =
  Array.init (Spec.num_loops spec) (fun i ->
    let l = spec.Spec.bounds.(i) in
    (l + grid.(i) - 1) / grid.(i))

let block_iterations spec ~grid =
  (* Exact: d blocks of ~2^21 iterations each already overflow a 63-bit
     native product. *)
  Array.fold_left
    (fun acc d -> Bigint.mul acc (Bigint.of_int d))
    Bigint.one
    (block_dims spec ~grid)
