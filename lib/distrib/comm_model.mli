(** Distributed-memory communication model (Section 7 extension).

    Model: [P] processors, the arrays initially distributed; a processor
    assigned an iteration block must receive every array element its
    block touches, so its communication volume is the block's total
    footprint [sum_j prod_{i in support j} ceil(L_i / p_i)] (we charge
    output blocks symmetrically as sends). The cost of a grid is the
    maximum over processors, i.e. the cost of one (full-size) block.

    The matching lower bound reuses the sequential machinery: a processor
    executing [V = prod L_i / P] iterations whose per-array footprint is
    [F] covers at most [F^k_hat(F)] iterations (Theorem 2 with [M = F]),
    so its footprint — and hence its received volume — must be at least
    the smallest [F] with [F^k_hat(F) >= V]. *)

type grid_cost = {
  grid : int array;
  block : int array;  (** per-processor block dimensions *)
  words : Bigint.t;
      (** per-processor communication volume; exact, since a full-support
          footprint can exceed [max_int] *)
}

val cost : Spec.t -> grid:int array -> grid_cost

val best_grid : Spec.t -> p:int -> grid_cost option
(** Minimum-cost rectangular grid over all factorizations; [None] when
    [p] does not factor within the loop bounds. *)

val simulated_block : Spec.t -> block:int array -> int
(** Footprint of one block by execution: run the [block]-shaped sub-nest
    and count the distinct words it touches — the data the owning
    processor must receive. *)

val simulated_cost : Spec.t -> grid:int array -> int
(** Cross-check of {!cost} by execution: {!simulated_block} on one
    (full-size) block. Equals [cost] exactly (tested), since a
    rectangular block touches a rectangular sub-array of every array. *)

val block_groups : Spec.t -> grid:int array -> (int array * int) list
(** The distinct per-processor block shapes the grid induces, each with
    the number of processors owning that shape (counts sum to at most
    [prod grid]; processors whose ceiling-allocated slice is empty are
    omitted). At most three shapes per dimension (full, remainder,
    empty), so at most [3^d] groups — this is what lets the Pool
    validator simulate a 4096-processor run with a handful of domains,
    one per group. The full-size block (the grid's cost) is always the
    first entry when it exists. *)

type processor_run = {
  grid : int array;
  m_local : int;  (** per-processor fast-memory words *)
  tile : int array;  (** the local tiling used inside the block *)
  words_per_proc : int;
      (** simulated words moved between one processor's fast memory and
          the network/remote memory while executing its block *)
}

val simulate_processor : Spec.t -> grid:int array -> m_local:int -> processor_run
(** The memory-{e dependent} distributed cost ([ITT04]-style): each
    processor owns a rectangular block of the iteration space and runs it
    through a local cache of [m_local] words using the
    communication-optimal local tiling; everything beyond the cache is
    remote traffic. Compare with {!cost}, the memory-independent gather
    volume: for small [m_local] the simulated cost exceeds it (the
    processor re-fetches data it cannot hold), and as [m_local] grows it
    converges to the footprint.
    @raise Invalid_argument if the block is too large to simulate. *)

val min_footprint : Spec.t -> iterations:float -> float
(** Smallest per-array footprint [F] such that a tile of footprint [F]
    can cover [iterations] points (binary search over Theorem 2 with
    [M = F]). This is the per-processor communication lower bound when
    [iterations = prod L_i / P]. *)

val lower_bound : Spec.t -> p:int -> float
(** [min_footprint] at [iterations = prod L_i / p]. *)
