(** Rectangular partitions of the iteration space across processors.

    Section 7 of the paper argues the memory model extends to
    multiprocessor machines (after [Kni15]/[ITT04]) and that the optimal
    way to split a projective loop nest over [P] processors is to give
    each a rectangular block of the iteration space. This module
    enumerates processor grids [p_1 x ... x p_d] with [prod p_i = P] and
    the per-processor blocks they induce. *)

val grids : Spec.t -> p:int -> int array list
(** All factorizations of [p] into [d] per-dimension counts with
    [1 <= p_i <= L_i]. Empty if [p] cannot be factored within the
    bounds. *)

val block_dims : Spec.t -> grid:int array -> int array
(** Per-processor block dimensions [ceil(L_i / p_i)]. *)

val block_iterations : Spec.t -> grid:int array -> Bigint.t
(** Iterations of the largest block: [prod_i ceil(L_i / p_i)]. Exact —
    a [2^21]-cubed nest on one processor is [2^63] iterations, past
    native int. *)
