(** Rectangular partitions of the iteration space across processors.

    Section 7 of the paper argues the memory model extends to
    multiprocessor machines (after [Kni15]/[ITT04]) and that the optimal
    way to split a projective loop nest over [P] processors is to give
    each a rectangular block of the iteration space. This module
    enumerates processor grids [p_1 x ... x p_d] with [prod p_i = P] and
    the per-processor blocks they induce. *)

val divisors : int -> int list
(** Divisors of a positive integer, ascending. *)

val default_budget : int
(** Default enumeration budget for {!grids} (number of search nodes). *)

val grids : ?budget:int -> Spec.t -> p:int -> int array list
(** All factorizations of [p] into [d] per-dimension counts with
    [1 <= p_i <= L_i], in ascending lexicographic order. Empty if [p]
    cannot be factored within the bounds. Enumeration walks the divisor
    ladder of [p] (never non-divisors), so the node count is bounded by
    the number of ordered factorizations plus dead ends; if it still
    exceeds [budget] (default {!default_budget}), raises
    [Invalid_argument] with the ["shape too large"] marker that
    [Engine_error.of_exn] maps to the typed [Shape_too_large] error. *)

val block_dims : Spec.t -> grid:int array -> int array
(** Per-processor block dimensions [ceil(L_i / p_i)]. *)

val block_iterations : Spec.t -> grid:int array -> Bigint.t
(** Iterations of the largest block: [prod_i ceil(L_i / p_i)]. Exact —
    a [2^21]-cubed nest on one processor is [2^63] iterations, past
    native int. *)
