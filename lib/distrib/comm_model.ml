type grid_cost = { grid : int array; block : int array; words : Bigint.t }

let cost spec ~grid =
  let block = Partition.block_dims spec ~grid in
  (* Exact arithmetic: a full-support array over 2^21-sized blocks has a
     2^63-word footprint, which wraps to a small (or negative) value in
     63-bit native ints and then wrongly wins [best_grid] comparisons. *)
  let words =
    Array.fold_left
      (fun acc (a : Spec.array_ref) ->
        Bigint.add acc
          (Array.fold_left
             (fun f i -> Bigint.mul f (Bigint.of_int block.(i)))
             Bigint.one a.Spec.support))
      Bigint.zero spec.Spec.arrays
  in
  { grid; block; words }

let best_grid spec ~p =
  let candidates = Partition.grids spec ~p in
  List.fold_left
    (fun acc grid ->
      let c = cost spec ~grid in
      match acc with
      | Some best when Bigint.compare best.words c.words <= 0 -> acc
      | _ -> Some c)
    None candidates

let simulated_block spec ~block =
  let sub = Spec.with_bounds spec block in
  let layout = Layout.make sub in
  let seen = Hashtbl.create 1024 in
  Schedules.iterate sub Schedules.Untiled (fun point ->
    for j = 0 to Spec.num_arrays sub - 1 do
      let addr = Layout.address layout j point in
      if not (Hashtbl.mem seen addr) then Hashtbl.add seen addr ()
    done);
  Hashtbl.length seen

let simulated_cost spec ~grid =
  simulated_block spec ~block:(Partition.block_dims spec ~grid)

let block_groups spec ~grid =
  (* Processor [k_1, ..., k_d] owns the slice [k_i*b_i, min((k_i+1)*b_i,
     L_i)) of each dimension, so along dimension i there are at most
     three distinct slice widths: the full b_i (floor(L_i/b_i) of them),
     one remainder L_i mod b_i, and empty slices for the processors the
     ceiling over-provisioned. Grouping processors by block shape turns a
     P-processor simulation into at most 3^d distinct sub-nests — one
     per group, each standing in for [count] identical processors. Empty
     blocks (zero in any dimension) move no words and are dropped. *)
  let d = Spec.num_loops spec in
  let block = Partition.block_dims spec ~grid in
  let parts =
    Array.init d (fun i ->
      let l = spec.Spec.bounds.(i) and p = grid.(i) and b = block.(i) in
      let full = l / b in
      let rem = l - (full * b) in
      let sizes = if rem > 0 then [ (b, full); (rem, 1) ] else [ (b, full) ] in
      let empty = p - full - if rem > 0 then 1 else 0 in
      if empty > 0 then sizes @ [ (0, empty) ] else sizes)
  in
  let acc = ref [] in
  let shape = Array.make d 0 in
  let rec go i count =
    if i = d then begin
      if Array.for_all (fun s -> s > 0) shape then
        acc := (Array.copy shape, count) :: !acc
    end
    else
      List.iter
        (fun (size, n) ->
          shape.(i) <- size;
          go (i + 1) (count * n))
        parts.(i)
  in
  go 0 1;
  List.rev !acc

type processor_run = {
  grid : int array;
  m_local : int;
  tile : int array;
  words_per_proc : int;
}

let simulate_processor spec ~grid ~m_local =
  let block = Partition.block_dims spec ~grid in
  let sub = Spec.with_bounds spec block in
  if Bigint.compare (Spec.iteration_count_big sub) (Bigint.of_int 20_000_000) > 0 then
    invalid_arg "Comm_model.simulate_processor: block too large to simulate";
  let tile = Tiling.optimal_shared sub ~m:m_local in
  let r = Executor.run sub ~schedule:(Schedules.Tiled tile) ~capacity:m_local in
  { grid = Array.copy grid; m_local; tile; words_per_proc = r.Executor.words_moved }

(* Iterations coverable by a tile whose per-array footprint is at most f:
   f^{k_hat} with beta measured in base f. *)
let coverage spec f =
  if f < 2.0 then 1.0
  else begin
    let log_f = log f in
    let beta =
      Array.map
        (fun l -> if l <= 1 then Rat.zero else Rat.rationalize (log (float_of_int l) /. log_f))
        spec.Spec.bounds
    in
    let e = Lower_bound.exponent_by_lp spec ~beta in
    Float.exp (Rat.to_float e.Lower_bound.k_hat *. log_f)
  end

let min_footprint spec ~iterations =
  if iterations <= 1.0 then 1.0
  else begin
    (* Coverage is monotone in f; bisect in the float domain. The search
       used to double a native int, which wraps at 2^62 and then cycles
       at 0 forever when k_hat = 1 forces f past max_int (e.g. a
       full-support array over 2^21-cubed bounds needs f ~ 2^63). Floats
       reach such footprints exactly enough; the bisection stops at one
       part in 10^12, which subsumes the old integer-resolution stop for
       every footprint below 2^52. *)
    let hi = ref 2.0 in
    while coverage spec !hi < iterations do
      hi := !hi *. 2.0
    done;
    let lo = ref (!hi /. 2.0) in
    while !hi -. !lo > Float.max 1.0 (1e-12 *. !hi) do
      let mid = Float.round ((!lo +. !hi) /. 2.0) in
      if mid <= !lo || mid >= !hi then lo := !hi
      else if coverage spec mid >= iterations then hi := mid
      else lo := mid
    done;
    !hi
  end

let lower_bound spec ~p =
  let iterations = Bigint.to_float (Spec.iteration_count_big spec) /. float_of_int p in
  min_footprint spec ~iterations
