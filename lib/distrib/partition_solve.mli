(** Distributed-memory partition solver: optimal processor grid and
    per-processor tile for a kernel on [P] processors with [M_local]
    words of fast memory each, under a pluggable network cost model.

    Two regimes fall out of one exact computation:

    - {e memory-dependent} ([ITT04]-style): the per-processor block is
      executed through a local cache of [M_local] words using the
      communication-optimal local tiling (Theorem 2 with
      [M = M_local]); predicted words are
      [prod_i ceil(b_i/t_i) * sum_j prod_{i in supp j} t_i], exact.
    - {e memory-independent}: when the optimal tile spans the whole
      block, predicted words collapse to the block's gather footprint
      [sum_j prod_{i in supp j} ceil(L_i/p_i)] — the regime whose tight
      closed forms for matrix multiplication are Al Daas–Ballard–
      Grigori–Kumar–Rouse (arXiv:2205.13407); bench E20 validates
      against them.

    The solver enumerates grids via {!Partition.grids}, prunes by the
    gather footprint (an admissible lower bound on predicted words), and
    breaks ties toward the lexicographically smallest grid. *)

type network =
  | Words  (** minimize per-processor words (bandwidth only) *)
  | Alpha_beta of { alpha : Rat.t; beta : Rat.t }
      (** minimize [alpha * messages + beta * words] (latency +
          bandwidth), exact rational arithmetic *)

type regime = Memory_independent | Memory_dependent

type solution = {
  p : int;  (** processor count *)
  m_local : int;  (** per-processor fast-memory words *)
  net : network;
  grid : int array;  (** optimal processor grid, [prod grid = p] *)
  block : int array;  (** per-processor block [ceil(L_i / grid_i)] *)
  tile : int array;  (** local communication-optimal tile inside the block *)
  regime : regime;
  words : Bigint.t;  (** predicted per-processor words, exact *)
  gather_words : Bigint.t;
      (** the block's gather footprint ({!Comm_model.cost}); equals
          [words] exactly in the memory-independent regime *)
  messages : int;
      (** latency term: [sum_j ceil(log2 prod_{i not in supp j} p_i)]
          all-gather rounds *)
  time : Rat.t;
      (** the minimized objective: [words] under {!Words}, else
          [alpha * messages + beta * words] *)
  lower_bound : float;
      (** per-processor word lower bound, Theorem 2 with [M = F]
          ({!Comm_model.lower_bound}) *)
  grids_enumerated : int;  (** candidate grids considered *)
  grids_pruned : int;  (** grids skipped by the gather-footprint bound *)
}

val solve :
  ?budget:int -> Spec.t -> p:int -> m_local:int -> net:network -> solution option
(** [None] when [p] has no factorization within the loop bounds.
    @raise Invalid_argument (with the ["shape too large"] marker) when
    grid enumeration exceeds [budget] — see {!Partition.grids}. *)

val net_to_key : network -> string
(** Canonical short form (["words"] or ["ab:<alpha>,<beta>"]) for memo
    keys. *)

val regime_to_string : regime -> string

val to_json : solution -> string
(** Canonical single-line JSON payload. The CLI ([tilings partition])
    and the serve [op:"partition"] response embed this string verbatim,
    which is what makes the two surfaces byte-identical. *)
