(* ------------------------------------------------------------------ *)
(* JSON writing (mirrors Report's conventions)                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jid = function None -> "null" | Some s -> jstr s

(* Structured, non-fatal decode diagnostics. A v1 client that omits an
   envelope field the v2 schema made explicit still gets its answer —
   plus one of these in the response so operators can find laggards
   before v1 is retired. *)
type warning = { w_code : string; w_field : string; w_message : string }

let deprecated_field ~field ~message =
  { w_code = "deprecated_field"; w_field = field; w_message = message }

let warnings_json = function
  | [] -> ""
  | ws ->
    let one w =
      Printf.sprintf "{\"code\":%s,\"field\":%s,\"message\":%s}" (jstr w.w_code)
        (jstr w.w_field) (jstr w.w_message)
    in
    Printf.sprintf ",\"warnings\":[%s]" (String.concat "," (List.map one ws))

(* Every response envelope echoes the request's wire version, so a v1
   client keeps reading {"v":1,...} lines while a v2 client on the same
   daemon reads {"v":2,...}; [warnings], when present, sits between
   "ok" and the payload. *)

let ok_response ?(warnings = []) ~v ~id ~report_json () =
  Printf.sprintf "{\"v\":%d,\"id\":%s,\"ok\":true%s,\"report\":%s}" v (jid id)
    (warnings_json warnings) report_json

let sweep_response ?(warnings = []) ~v ~id ~report_jsons () =
  Printf.sprintf "{\"v\":%d,\"id\":%s,\"ok\":true%s,\"reports\":[%s]}" v (jid id)
    (warnings_json warnings)
    (String.concat "," report_jsons)

let plan_response ?(warnings = []) ~v ~id ~plan_json () =
  Printf.sprintf "{\"v\":%d,\"id\":%s,\"ok\":true%s,\"plan\":%s}" v (jid id)
    (warnings_json warnings) plan_json

let partition_response ?(warnings = []) ~v ~id ~partition_json () =
  Printf.sprintf "{\"v\":%d,\"id\":%s,\"ok\":true%s,\"partition\":%s}" v (jid id)
    (warnings_json warnings) partition_json

let error_response ~v ~id err =
  let position =
    match err with
    | Engine_error.Parse_error { line; col; _ } when line > 0 ->
      Printf.sprintf ",\"line\":%d,\"col\":%d" line col
    | _ -> ""
  in
  Printf.sprintf "{\"v\":%d,\"id\":%s,\"ok\":false,\"error\":{\"code\":%s,\"message\":%s%s}}"
    v (jid id)
    (jstr (Engine_error.code err))
    (jstr (Engine_error.to_string err))
    position

(* ------------------------------------------------------------------ *)
(* Shared decoding helpers (used by Request.decode)                   *)
(* ------------------------------------------------------------------ *)

let peek_id line =
  match Jsonlite.parse line with
  | Ok json -> Jsonlite.str_member "id" json
  | Error _ -> None

let schedule_of_string = function
  | "optimal" -> Some Pipeline.Optimal
  | "classic" -> Some Pipeline.Classic
  | "untiled" -> Some Pipeline.Untiled
  | _ -> None

let policy_of_string = function
  | "lru" -> Some Policy.Lru
  | "fifo" -> Some Policy.Fifo
  | "opt" -> Some Policy.Opt
  | _ -> None

exception Reject of Engine_error.t

let reject fmt = Printf.ksprintf (fun s -> raise (Reject (Engine_error.Invalid_request s))) fmt

(* A list of strings out of an optional array-of-strings field. *)
let string_list json field ~default =
  match Jsonlite.member field json with
  | None | Some Jsonlite.Null -> default
  | Some (Jsonlite.Arr items) ->
    List.map
      (fun v ->
        match Jsonlite.to_str v with
        | Some s -> s
        | None -> reject "%S must be an array of strings" field)
      items
  | Some _ -> reject "%S must be an array of strings" field

let bool_field json field ~default =
  match Jsonlite.member field json with
  | None | Some Jsonlite.Null -> default
  | Some (Jsonlite.Bool b) -> b
  | Some _ -> reject "%S must be a boolean" field

let int_field json field =
  match Jsonlite.num_member field json with
  | Some v when Float.is_integer v && Float.abs v < 1e15 -> Some (int_of_float v)
  | Some _ -> reject "%S must be an integer" field
  | None -> (
    match Jsonlite.member field json with
    | None | Some Jsonlite.Null -> None
    | Some _ -> reject "%S must be an integer" field)
