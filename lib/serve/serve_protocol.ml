type op = Analyze | Compile

type request = {
  id : string option;
  op : op;
  spec : Spec.t;
  m : int;
  sims : Pipeline.sim_request list;
  shared : bool;
  deadline_s : float option;
  timings : bool;
}

type decode_error = { err_id : string option; err : Engine_error.t }

(* ------------------------------------------------------------------ *)
(* JSON writing (mirrors Report's conventions)                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jid = function None -> "null" | Some s -> jstr s

let ok_response ~id ~report_json =
  Printf.sprintf "{\"v\":%d,\"id\":%s,\"ok\":true,\"report\":%s}" Report.schema_version
    (jid id) report_json

let plan_response ~id ~plan_json =
  Printf.sprintf "{\"v\":%d,\"id\":%s,\"ok\":true,\"plan\":%s}" Report.schema_version
    (jid id) plan_json

let error_response ~id err =
  let position =
    match err with
    | Engine_error.Parse_error { line; col; _ } when line > 0 ->
      Printf.sprintf ",\"line\":%d,\"col\":%d" line col
    | _ -> ""
  in
  Printf.sprintf "{\"v\":%d,\"id\":%s,\"ok\":false,\"error\":{\"code\":%s,\"message\":%s%s}}"
    Report.schema_version (jid id)
    (jstr (Engine_error.code err))
    (jstr (Engine_error.to_string err))
    position

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

let peek_id line =
  match Jsonlite.parse line with
  | Ok json -> Jsonlite.str_member "id" json
  | Error _ -> None

let schedule_of_string = function
  | "optimal" -> Some Pipeline.Optimal
  | "classic" -> Some Pipeline.Classic
  | "untiled" -> Some Pipeline.Untiled
  | _ -> None

let policy_of_string = function
  | "lru" -> Some Policy.Lru
  | "fifo" -> Some Policy.Fifo
  | "opt" -> Some Policy.Opt
  | _ -> None

exception Reject of Engine_error.t

let reject fmt = Printf.ksprintf (fun s -> raise (Reject (Engine_error.Invalid_request s))) fmt

(* A list of strings out of an optional array-of-strings field. *)
let string_list json field ~default =
  match Jsonlite.member field json with
  | None | Some Jsonlite.Null -> default
  | Some (Jsonlite.Arr items) ->
    List.map
      (fun v ->
        match Jsonlite.to_str v with
        | Some s -> s
        | None -> reject "%S must be an array of strings" field)
      items
  | Some _ -> reject "%S must be an array of strings" field

let bool_field json field ~default =
  match Jsonlite.member field json with
  | None | Some Jsonlite.Null -> default
  | Some (Jsonlite.Bool b) -> b
  | Some _ -> reject "%S must be a boolean" field

let int_field json field =
  match Jsonlite.num_member field json with
  | Some v when Float.is_integer v && Float.abs v < 1e15 -> Some (int_of_float v)
  | Some _ -> reject "%S must be an integer" field
  | None -> (
    match Jsonlite.member field json with
    | None | Some Jsonlite.Null -> None
    | Some _ -> reject "%S must be an integer" field)

let decode line =
  match Jsonlite.parse line with
  | Error msg -> Error { err_id = None; err = Parse_error { line = 0; col = 0; message = msg } }
  | Ok json -> (
    let err_id = Jsonlite.str_member "id" json in
    try
      (match json with Jsonlite.Obj _ -> () | _ -> reject "request must be a JSON object");
      (match int_field json "v" with
      | None | Some 1 -> ()
      | Some v -> reject "unsupported schema version %d (this server speaks v1)" v);
      let id =
        match Jsonlite.member "id" json with
        | None | Some Jsonlite.Null -> None
        | Some (Jsonlite.Str s) -> Some s
        | Some _ -> reject "\"id\" must be a string"
      in
      let spec =
        match Jsonlite.str_member "kernel" json with
        | None -> reject "\"kernel\" is required (preset name or DSL)"
        | Some text ->
          if String.contains text ':' then (
            match Parser.parse text with
            | Ok s -> s
            | Error e ->
              raise
                (Reject
                   (Engine_error.Parse_error
                      {
                        line = e.Parser.pos.Parser.line;
                        col = e.Parser.pos.Parser.col;
                        message = e.Parser.message;
                      })))
          else (
            match Kernels.lookup text with
            | Ok s -> s
            | Error msg -> raise (Reject (Engine_error.Invalid_spec msg)))
      in
      let op =
        match Jsonlite.str_member "op" json with
        | None | Some "analyze" -> Analyze
        | Some "compile" -> Compile
        | Some other -> reject "unknown op %S (analyze, compile)" other
      in
      let m =
        match int_field json "m" with
        | Some m -> m
        | None -> (
          match op with
          | Compile -> 0  (* a plan is size-independent; "m" is not needed *)
          | Analyze -> reject "\"m\" (fast-memory words) is required")
      in
      let schedules =
        List.map
          (fun s ->
            match schedule_of_string s with
            | Some sched -> sched
            | None -> reject "unknown schedule %S (optimal, classic, untiled)" s)
          (string_list json "schedules" ~default:[])
      in
      let policies =
        List.map
          (fun s ->
            match policy_of_string s with
            | Some p -> p
            | None -> reject "unknown policy %S (lru, fifo, opt)" s)
          (string_list json "policies" ~default:[ "lru" ])
      in
      let sims =
        List.concat_map
          (fun sched -> List.map (fun policy -> Pipeline.sim ~policy sched) policies)
          schedules
      in
      let deadline_s =
        match Jsonlite.num_member "deadline_ms" json with
        | Some ms when ms >= 0.0 -> Some (ms /. 1000.0)
        | Some _ -> reject "\"deadline_ms\" must be non-negative"
        | None -> (
          match Jsonlite.member "deadline_ms" json with
          | None | Some Jsonlite.Null -> None
          | Some _ -> reject "\"deadline_ms\" must be a number")
      in
      Ok
        {
          id;
          op;
          spec;
          m;
          sims;
          shared = bool_field json "shared" ~default:true;
          deadline_s;
          timings = bool_field json "timings" ~default:false;
        }
    with Reject err -> Error { err_id; err })
