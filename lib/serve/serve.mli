(** The [tilings serve] daemon: a long-running batching front-end over
    the engine pipeline.

    Why a daemon: every one-shot CLI invocation pays process startup and
    a cold memo cache, but the expensive exact-LP stages depend only on
    the canonical [(spec, beta, m)] point — across requests the shared
    {!Memo} tables amortize them, and concurrently-arriving requests
    batch into one {!Pool}-parallel sweep.

    Production semantics:
    - {b Classed admission}: requests are decoded and classified at
      admission — [Analytic] (no simulations: plan/LP/closed-form, the
      sub-millisecond class; compile requests too) or [Simulation]
      (carries simulated executions) — and each class has its own
      [queue_capacity] seats per batch cycle, so a flood of simulation
      work cannot crowd analytic requests out of admission (or vice
      versa). Lines beyond a class's seats are answered with a
      structured [overloaded] error instead of buffered without bound
      (anything not yet read stays in the OS pipe buffer — that is the
      transport's own backpressure). Inside a batch the {!Pool}
      scheduler serves all analytic work ahead of simulation tails.
    - {b Deadlines}: a request's [deadline_ms] budget starts at
      admission (queue wait counts). Expiry returns a [deadline_exceeded]
      response, checked at pipeline stage boundaries
      ({!Pipeline.run_checked}); a [deadline_ms] of 0 fails before any
      work — the liveness probe.
    - {b Ordering}: one response line per request line, in arrival
      order, errors included.
    - {b Drain}: EOF (or a [stop] flag flipped by SIGTERM/SIGINT)
      finishes the admitted batch, flushes its responses, and returns —
      no request is half-answered.
    - {b Isolation}: a malformed or failing request yields an error
      response; the loop keeps serving.
    - {b Plan warm-up}: the daemon runs the pipeline in
      [Plan_deferred] mode (set by the CLI): the first batch touching a
      new kernel shape is answered on the LP path, then — after its
      responses are flushed — the shape's {!Tiling_plan} compiles on the
      pool and installs, so subsequent batches are plan-served with zero
      simplex solves. [--plans FILE] preloads compiled plans at startup
      and skips even the first LP round for those shapes.

    - {b Correlation}: every response carries a non-null ["id"] —
      the client's own when it sent one (echoed byte-for-byte), a
      minted ["srv-N"] otherwise. Mint counters are scoped to the
      session (one pipe, or one accepted connection) in arrival order,
      so each client sees its own [srv-1], [srv-2], ... sequence and a
      connection's transcript is byte-identical to serving it alone.
      The id is also the ambient {!Obs.Log} correlation id while the
      request runs — re-established around each pool stage, since
      staged requests may finish on a different worker domain — so
      [serve.request] / [pipeline.request] log lines join to response
      lines exactly.

    Observability ([serve.*], via {!Obs}): counters [serve.requests],
    [serve.responses], [serve.batches], [serve.errors],
    [serve.parse_errors], [serve.deadline_exceeded],
    [serve.rejected_overloaded], [serve.connections] (total accepted),
    [serve.plan_compiles], high-watermarks
    [serve.batch_size_max] / [serve.queue_depth_max] / [serve.pool_jobs],
    gauges [serve.queue_depth] (depth of the batch cycle being worked,
    0 between batches) with its per-class split
    [serve.queue_depth.analytic] / [serve.queue_depth.simulation],
    [serve.inflight] (requests executing on pool domains right now) and
    [serve.open_connections] (clients currently connected), and timers
    (with latency histograms) [serve.batch] / [serve.request] plus the
    per-class latency histograms [serve.request.analytic] /
    [serve.request.simulation]. Each batch is a [serve.batch] trace
    span with one [serve.request] child per request. Structured log
    events (when a {!Obs.Log} sink is set): [serve.request] (info, per
    request: id/op/status/ms), [serve.slow_request] (warn, see
    [slow_s]), [serve.overloaded] (warn, per rejection), [serve.batch]
    (debug, per cycle), [serve.listen] / [serve.connection] /
    [serve.disconnect] (info, connection lifecycle). *)

type event =
  | Line of string  (** one complete request line, newline stripped *)
  | Wait  (** nothing available without blocking (or interrupted) *)
  | Eof

type config = {
  jobs : int;
      (** pool width for batch execution, resolved {e once} at daemon
          start (never re-read from [PROJTILE_JOBS] per request) *)
  queue_capacity : int;  (** max requests admitted per batch cycle *)
  default_deadline_s : float option;
      (** budget applied when a request carries no [deadline_ms] *)
  slow_s : float option;
      (** requests at least this slow additionally emit a
          [serve.slow_request] warning with per-stage wall times
          (the CLI's [--slow-ms]); [None] disables the slow log *)
}

val default_config : unit -> config
(** [jobs = Pool.default_jobs ()], [queue_capacity = 512], no default
    deadline, no slow-request threshold. *)

val serve :
  ?stop:(unit -> bool) -> config -> next:(block:bool -> event) ->
  emit:(string -> unit) -> unit
(** The transport-agnostic loop: pull lines with [next], push response
    lines (no trailing newline) with [emit]. [next ~block:true] may
    return [Wait] only when interrupted (the loop re-checks [stop] and
    retries); [next ~block:false] returns [Wait] when reading would
    block, which closes the current batch. Returns on [Eof] or when
    [stop] reads true between cycles. *)

(** {1 Transports} *)

val reader_of_fd : Unix.file_descr -> block:bool -> event
(** Buffered line reader over a file descriptor. Non-blocking probes use
    [select]; [EINTR] surfaces as [Wait] so signal flags get checked. *)

val run_pipe : ?stop:(unit -> bool) -> config -> unit
(** Serve stdin -> stdout until EOF. Responses are written and flushed
    line-by-line. A broken stdout ([EPIPE]) drains and returns. *)

val run_daemon :
  ?stop:(unit -> bool) ->
  config ->
  ?socket_path:string ->
  ?tcp_port:int ->
  unit ->
  unit
(** The multi-client daemon: listen on a Unix-domain stream socket at
    [socket_path] (an existing file there is replaced; removed on
    return) and/or on TCP [tcp_port] bound to 127.0.0.1 (0 lets the
    kernel pick; the bound port is announced on stderr as
    ["serve: listening on 127.0.0.1:PORT"]). At least one listener is
    required ([Invalid_argument] otherwise).

    Connections are served {e concurrently} from one loop: each batch
    cycle drains at most one line per connection per round (rotating
    round-robin start, so no connection is structurally first) until
    nothing more is immediately readable, runs the admitted batch on
    the pool, then writes each response back to the connection its
    request came from, in that connection's arrival order. Every
    connection gets its own mint session ([srv-1], [srv-2], ... each),
    its own correlation-id scope, and per-response bytes identical to
    what a one-shot pipe session would produce for the same lines.
    EOF from a client closes its connection after its admitted
    requests are answered; a client that vanishes mid-write is dropped
    without disturbing the others ([stop] and SIGPIPE caveats as in
    {!run_socket}). *)

val run_socket : ?stop:(unit -> bool) -> config -> path:string -> unit
(** [run_daemon] with only the Unix-domain listener at [path]: each
    connection is an NDJSON session with the same per-line semantics as
    {!run_pipe}, and concurrent connections are served fairly from the
    shared batch loop. The socket file is removed on return. Callers
    should ignore [SIGPIPE] so a vanishing client surfaces as [EPIPE]
    (handled per-connection) rather than killing the daemon. *)
