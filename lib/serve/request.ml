(* The typed request union of the serve protocol, with the one versioned
   decoder every transport funnels through. Replaces the old pattern of
   op-specific ad-hoc decoding: serve.ml dispatches on [body], never on
   a raw "op" string. *)

type body =
  | Analyze of {
      m : int;
      sims : Pipeline.sim_request list;
      shared : bool;
      timings : bool;
    }
  | Sweep of {
      ms : int list;
      sims : Pipeline.sim_request list;
      shared : bool;
      timings : bool;
    }
  | Compile
  | Partition of { procs : int; m_local : int; net : Partition_solve.network }

type t = {
  id : string option;
  v : int;
  spec : Spec.t;
  body : body;
  deadline_s : float option;
  warnings : Serve_protocol.warning list;
}

type decode_error = { err_id : string option; err_v : int; err : Engine_error.t }

let supported_version = function 1 | 2 -> true | _ -> false

let op_name = function
  | Analyze _ -> "analyze"
  | Sweep _ -> "sweep"
  | Compile -> "compile"
  | Partition _ -> "partition"

open Serve_protocol

(* A rational out of a JSON number (exact dyadic value of the IEEE
   float) or string ("3", "1/4", "2.5"). *)
let rat_field json field =
  match Jsonlite.member field json with
  | None | Some Jsonlite.Null -> None
  | Some (Jsonlite.Num f) when Float.is_finite f -> Some (Rat.of_float f)
  | Some (Jsonlite.Str s) -> (
    match Rat.of_string_opt s with
    | Some r -> Some r
    | None ->
      raise
        (Reject
           (Engine_error.Network_model_invalid
              (Printf.sprintf "%S is not a rational (%S)" field s))))
  | Some _ ->
    raise
      (Reject
         (Engine_error.Network_model_invalid
            (Printf.sprintf "%S must be a number or a rational string" field)))

let decode_net json =
  match Jsonlite.member "net" json with
  | None | Some Jsonlite.Null -> Partition_solve.Words
  | Some (Jsonlite.Str "words") -> Partition_solve.Words
  | Some (Jsonlite.Str other) ->
    raise
      (Reject
         (Engine_error.Network_model_invalid
            (Printf.sprintf "unknown network model %S (words, or {\"alpha\",\"beta\"})"
               other)))
  | Some (Jsonlite.Obj _ as o) ->
    let alpha = Option.value ~default:Rat.zero (rat_field o "alpha") in
    let beta = Option.value ~default:Rat.one (rat_field o "beta") in
    Partition_solve.Alpha_beta { alpha; beta }
  | Some _ ->
    raise
      (Reject
         (Engine_error.Network_model_invalid
            "\"net\" must be \"words\" or an {\"alpha\",\"beta\"} object"))

let decode_sims json =
  let schedules =
    List.map
      (fun s ->
        match schedule_of_string s with
        | Some sched -> sched
        | None -> reject "unknown schedule %S (optimal, classic, untiled)" s)
      (string_list json "schedules" ~default:[])
  in
  let policies =
    List.map
      (fun s ->
        match policy_of_string s with
        | Some p -> p
        | None -> reject "unknown policy %S (lru, fifo, opt)" s)
      (string_list json "policies" ~default:[ "lru" ])
  in
  List.concat_map
    (fun sched -> List.map (fun policy -> Pipeline.sim ~policy sched) policies)
    schedules

let decode line =
  match Jsonlite.parse line with
  | Error msg ->
    Error
      { err_id = None; err_v = 1; err = Parse_error { line = 0; col = 0; message = msg } }
  | Ok json -> (
    let err_id = Jsonlite.str_member "id" json in
    let v = ref 1 in
    try
      (match json with Jsonlite.Obj _ -> () | _ -> reject "request must be a JSON object");
      (match int_field json "v" with
      | None -> ()
      | Some n when supported_version n -> v := n
      | Some n -> reject "unsupported schema version %d (this server speaks v1 and v2)" n);
      let v = !v in
      let id =
        match Jsonlite.member "id" json with
        | None | Some Jsonlite.Null -> None
        | Some (Jsonlite.Str s) -> Some s
        | Some _ -> reject "\"id\" must be a string"
      in
      let spec =
        match Jsonlite.str_member "kernel" json with
        | None -> reject "\"kernel\" is required (preset name or DSL)"
        | Some text ->
          if String.contains text ':' then (
            match Parser.parse text with
            | Ok s -> s
            | Error e ->
              raise
                (Reject
                   (Engine_error.Parse_error
                      {
                        line = e.Parser.pos.Parser.line;
                        col = e.Parser.pos.Parser.col;
                        message = e.Parser.message;
                      })))
          else (
            match Kernels.lookup text with
            | Ok s -> s
            | Error msg -> raise (Reject (Engine_error.Invalid_spec msg)))
      in
      (* v1 compatibility: a missing "op" means "analyze" (the only
         request kind v1 originally had) and earns a structured
         deprecated_field warning; v2 made the op explicit. *)
      let warnings = ref [] in
      let op =
        match Jsonlite.str_member "op" json with
        | Some op -> op
        | None ->
          if v >= 2 then
            reject "\"op\" is required in v2 (analyze, sweep, compile, partition)"
          else begin
            warnings :=
              [
                deprecated_field ~field:"op"
                  ~message:
                    "requests without \"op\" default to \"analyze\"; v2 requires an \
                     explicit \"op\"";
              ];
            "analyze"
          end
      in
      let body =
        match op with
        | "analyze" ->
          let m =
            match int_field json "m" with
            | Some m -> m
            | None -> reject "\"m\" (fast-memory words) is required"
          in
          Analyze
            {
              m;
              sims = decode_sims json;
              shared = bool_field json "shared" ~default:true;
              timings = bool_field json "timings" ~default:false;
            }
        | "sweep" ->
          let ms =
            match Jsonlite.list_member "ms" json with
            | None ->
              reject "\"ms\" (an array of fast-memory sizes) is required for op:\"sweep\""
            | Some items ->
              List.map
                (fun item ->
                  match Jsonlite.to_num item with
                  | Some f when Float.is_integer f && Float.abs f < 1e15 ->
                    int_of_float f
                  | _ -> reject "\"ms\" must be an array of integers")
                items
          in
          if ms = [] then reject "\"ms\" must not be empty";
          Sweep
            {
              ms;
              sims = decode_sims json;
              shared = bool_field json "shared" ~default:true;
              timings = bool_field json "timings" ~default:false;
            }
        | "compile" -> Compile
        | "partition" ->
          let procs =
            match int_field json "p" with
            | Some p -> p
            | None -> reject "\"p\" (processor count) is required for op:\"partition\""
          in
          let m_local =
            match int_field json "m" with
            | Some m -> m
            | None ->
              reject "\"m\" (per-processor fast-memory words) is required for \
                      op:\"partition\""
          in
          Partition { procs; m_local; net = decode_net json }
        | other -> reject "unknown op %S (analyze, sweep, compile, partition)" other
      in
      let deadline_s =
        match Jsonlite.num_member "deadline_ms" json with
        | Some ms when ms >= 0.0 -> Some (ms /. 1000.0)
        | Some _ -> reject "\"deadline_ms\" must be non-negative"
        | None -> (
          match Jsonlite.member "deadline_ms" json with
          | None | Some Jsonlite.Null -> None
          | Some _ -> reject "\"deadline_ms\" must be a number")
      in
      Ok { id; v; spec; body; deadline_s; warnings = !warnings }
    with Reject err -> Error { err_id; err_v = !v; err })
