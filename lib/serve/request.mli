(** The typed request union of the serve protocol, and the one
    versioned decoder every transport funnels through.

    Request object (v2; v1 differences below):
    {v
      {"v": 2,                  // 1 (or absent = 1) and 2 accepted
       "id": "r42",             // optional, echoed back verbatim;
                                // absent -> daemon mints "srv-N"
       "op": "analyze",         // analyze | sweep | compile | partition
                                // required in v2; v1 defaults to
                                // "analyze" with a deprecated_field
                                // warning
       "kernel": "matmul",      // preset | alias | DSL (all ops)
       "m": 4096,               // analyze: fast-memory words;
                                // partition: per-processor words
       "ms": [256, 1024],       // sweep only: the sizes to sweep
       "p": 64,                 // partition only: processor count
       "net": "words",          // partition only; default "words", or
                                // {"alpha": 2, "beta": "1/2"} with
                                // non-negative rationals (numbers or
                                // "p/q" strings)
       "schedules": ["optimal", "classic", "untiled"],  // default []
       "policies": ["lru", "fifo", "opt"],              // default ["lru"]
       "shared": true,          // default true (analyze/sweep)
       "deadline_ms": 250,      // optional per-request budget
       "timings": false}        // default false (analyze/sweep)
    v}
    Unknown fields are ignored (forward compatibility). The simulations
    run are the cross product [schedules x policies], exactly like
    [tilings sweep].

    v1 compatibility: everything v1 accepted still decodes — ["v"]
    absent or 1, ["op"] optional (missing means ["analyze"], which now
    earns a structured [deprecated_field] warning in the response rather
    than an error). The newer ops are accepted at either version; only
    the "op is required" rule is v2-specific. *)

type body =
  | Analyze of {
      m : int;
      sims : Pipeline.sim_request list;
      shared : bool;
      timings : bool;
    }
  | Sweep of {
      ms : int list;  (** non-empty; one report per size, input order *)
      sims : Pipeline.sim_request list;
      shared : bool;
      timings : bool;
    }
  | Compile  (** the kernel shape's compiled tiling plan *)
  | Partition of {
      procs : int;
      m_local : int;
      net : Partition_solve.network;
    }  (** distributed-memory grid + tile ({!Pipeline.partition_checked}) *)

type t = {
  id : string option;
  v : int;  (** wire version the request arrived at (1 or 2) *)
  spec : Spec.t;
  body : body;
  deadline_s : float option;  (** relative budget in seconds, [>= 0] *)
  warnings : Serve_protocol.warning list;
      (** non-fatal decode diagnostics, echoed in the response *)
}

type decode_error = {
  err_id : string option;
      (** the request's ["id"] when the line parsed far enough to have
          one — so even a rejected request gets a correlatable answer *)
  err_v : int;  (** version to stamp on the error envelope (1 if unknown) *)
  err : Engine_error.t;
}

val decode : string -> (t, decode_error) result
(** Decode one request line. Malformed JSON -> [Parse_error]; a
    non-object or missing/ill-typed field -> [Invalid_request]; an
    unknown preset -> [Invalid_spec]; a DSL kernel that fails to parse
    -> [Parse_error] with the DSL's line/column; a malformed ["net"]
    -> [Network_model_invalid]. *)

val op_name : body -> string
(** ["analyze"] / ["sweep"] / ["compile"] / ["partition"] — for logs. *)
