type event = Line of string | Wait | Eof

type config = {
  jobs : int;
  queue_capacity : int;
  default_deadline_s : float option;
  slow_s : float option;
}

let default_config () =
  {
    jobs = Pool.default_jobs ();
    queue_capacity = 512;
    default_deadline_s = None;
    slow_s = None;
  }

let c_requests = Obs.counter "serve.requests"
let c_responses = Obs.counter "serve.responses"
let c_batches = Obs.counter "serve.batches"
let c_errors = Obs.counter "serve.errors"
let c_parse = Obs.counter "serve.parse_errors"
let c_deadline = Obs.counter "serve.deadline_exceeded"
let c_overloaded = Obs.counter "serve.rejected_overloaded"
let c_connections = Obs.counter "serve.connections"
let c_batch_max = Obs.counter "serve.batch_size_max"
let c_queue_max = Obs.counter "serve.queue_depth_max"
let c_plan_compiles = Obs.counter "serve.plan_compiles"
let t_batch = Obs.timer "serve.batch"
let t_request = Obs.timer "serve.request"

(* Per-class service latency: the split the scheduler exists for.
   Analytic requests must stay in the sub-millisecond mode whatever
   simulations share the batch; these histograms are where to look. *)
let t_request_analytic = Obs.timer "serve.request.analytic"
let t_request_simulation = Obs.timer "serve.request.simulation"

(* Live levels for the dashboard: how deep the current batch cycle is
   (admitted + rejected lines being worked, plus the per-class split of
   the admitted), how many requests are executing on pool domains right
   now, and how many client connections are open. *)
let g_queue = Obs.gauge "serve.queue_depth"
let g_queue_analytic = Obs.gauge "serve.queue_depth.analytic"
let g_queue_simulation = Obs.gauge "serve.queue_depth.simulation"
let g_inflight = Obs.gauge "serve.inflight"
let g_open = Obs.gauge "serve.open_connections"

(* Correlation ids minted for requests that arrive without one: "srv-N",
   N scoped to the session (one stdin/stdout stream, or one accepted
   connection) in arrival order — every client sees its own srv-1,
   srv-2, ... sequence however many neighbors the daemon is serving, so
   a connection's transcript is byte-identical to the one-shot CLI's.
   The minted id is echoed in the response and stamps every log line the
   request produces. *)
type session = { mint : int Atomic.t }

let new_session () = { mint = Atomic.make 1 }
let mint s = Printf.sprintf "srv-%d" (Atomic.fetch_and_add s.mint 1)
let ensure_id s = function Some id -> id | None -> mint s

let count_error err =
  Obs.incr c_errors;
  match (err : Engine_error.t) with
  | Parse_error _ -> Obs.incr c_parse
  | Deadline_exceeded _ -> Obs.incr c_deadline
  | Overloaded _ -> Obs.incr c_overloaded
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Admission                                                          *)
(* ------------------------------------------------------------------ *)

(* Requests are decoded — and classified — at admission, not at
   execution: the class decides which queue the request waits in, so it
   has to be known up front. Analytic = no simulations requested (plan /
   LP / closed-form answers, sub-millisecond); everything else is
   Simulation class. Compile requests are analytic: plan compilation is
   bounded by the enumeration budget and serves the fast path. *)

type item = {
  it_id : string;
  it_v : int;  (** wire version to stamp on the response envelope *)
  it_class : Pool.priority;
  it_warnings : Serve_protocol.warning list;
  it_work : (Request.t * float option, Engine_error.t) result;
      (** decoded request plus its absolute deadline, or the decode error *)
  it_emit : string -> unit;  (** the connection the response goes back to *)
}

let classify_request (req : Request.t) =
  match req.Request.body with
  | Request.Compile | Request.Partition _ -> Pool.Analytic
  | Request.Analyze { sims; _ } | Request.Sweep { sims; _ } ->
    if sims = [] then Pool.Analytic else Pool.Simulation

let decode_line cfg session ~admitted_at ~emit line =
  match Request.decode line with
  | Error { Request.err_id; err_v; err } ->
    { it_id = ensure_id session err_id; it_v = err_v; it_class = Pool.Analytic;
      it_warnings = []; it_work = Error err; it_emit = emit }
  | Ok req ->
    let budget =
      match req.Request.deadline_s with
      | Some _ as b -> b
      | None -> cfg.default_deadline_s
    in
    {
      it_id = ensure_id session req.Request.id;
      it_v = req.Request.v;
      it_class = classify_request req;
      it_warnings = req.Request.warnings;
      it_work = Ok (req, Option.map (fun b -> admitted_at +. b) budget);
      it_emit = emit;
    }

(* Per-class admission: each class has [queue_capacity] seats per batch
   cycle, so a flood of simulation requests can exhaust its own queue
   without costing analytic requests theirs (and vice versa). *)
type admission = {
  mutable adm_analytic : int;
  mutable adm_simulation : int;
  mutable adm_rejected : int;
  mutable adm_admitted_rev : item list;
  mutable adm_rejected_rev : (string * int * (string -> unit)) list;
}

let new_admission () =
  {
    adm_analytic = 0;
    adm_simulation = 0;
    adm_rejected = 0;
    adm_admitted_rev = [];
    adm_rejected_rev = [];
  }

let admit cfg adm item =
  let seats =
    match item.it_class with
    | Pool.Analytic -> adm.adm_analytic
    | Pool.Simulation -> adm.adm_simulation
  in
  if seats < cfg.queue_capacity then begin
    (match item.it_class with
    | Pool.Analytic -> adm.adm_analytic <- adm.adm_analytic + 1
    | Pool.Simulation -> adm.adm_simulation <- adm.adm_simulation + 1);
    adm.adm_admitted_rev <- item :: adm.adm_admitted_rev
  end
  else begin
    adm.adm_rejected <- adm.adm_rejected + 1;
    adm.adm_rejected_rev <- (item.it_id, item.it_v, item.it_emit) :: adm.adm_rejected_rev
  end

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

(* One admitted request as a staged pool task: the analytic half runs at
   the item's class, and a simulation-carrying request returns [More] so
   its heavy tail re-queues at Simulation class (Pipeline.run_staged).
   The serve-level latency clock spans admission-to-finish across both
   stages; the ambient correlation id is re-established inside the
   continuation because it is domain-local and the tail may run on a
   different worker. *)
let run_one cfg item =
  Obs.add_gauge g_inflight 1;
  let t0 = Unix.gettimeofday () in
  let finish ~op res timings =
    let dt = Unix.gettimeofday () -. t0 in
    Obs.add_seconds t_request dt;
    Obs.add_seconds
      (match item.it_class with
      | Pool.Analytic -> t_request_analytic
      | Pool.Simulation -> t_request_simulation)
      dt;
    let status = match res with Ok _ -> "ok" | Error e -> Engine_error.code e in
    Obs.Log.info "serve.request"
      [ ("id", `S item.it_id); ("op", `S op); ("status", `S status); ("ms", `F (1e3 *. dt)) ];
    (* The slow-request log carries the request's own per-stage wall
       times (the same deltas a "timings":true client would receive), so
       triage can tell an LP-bound request from a simulation-bound one
       without re-running it. *)
    (match cfg.slow_s with
    | Some s when dt >= s ->
      Obs.Log.warn "serve.slow_request"
        (("id", `S item.it_id) :: ("op", `S op) :: ("ms", `F (1e3 *. dt))
        :: List.map (fun (stage, d) -> (stage ^ "_ms", `F (1e3 *. d))) timings)
    | _ -> ());
    Obs.add_gauge g_inflight (-1);
    (item, res)
  in
  Obs.Log.with_corr item.it_id @@ fun () ->
  match item.it_work with
  | Error err -> Pool.Done (finish ~op:"invalid" (Error err) [])
  | Ok (req, deadline) -> (
    let spec = req.Request.spec in
    match req.Request.body with
    | Request.Compile ->
      Pool.Done
        (finish ~op:"compile"
           (Result.map (fun plan -> `Plan (Tiling_plan.to_json plan)) (Pipeline.plan_of spec))
           [])
    | Request.Partition { procs; m_local; net } ->
      Pool.Done
        (finish ~op:"partition"
           (Result.map
              (fun sol -> `Partition (Partition_solve.to_json sol))
              (Pipeline.partition_checked ?deadline spec ~p:procs ~m_local ~net))
           [])
    | Request.Sweep { ms; sims; shared; timings } ->
      (* One pool task for the whole sweep: the points share the memo
         caches, each report renders exactly as the one-shot CLI's, and
         the first failing size fails the request. *)
      Pool.Done
        (finish ~op:"sweep"
           (List.fold_left
              (fun acc m ->
                match acc with
                | Error _ as e -> e
                | Ok rendered -> (
                  match
                    Pipeline.run_checked ?deadline
                      (Pipeline.request ~sims ~shared spec ~m)
                  with
                  | Error e -> Error e
                  | Ok rep -> Ok (Report.to_json ~timings rep :: rendered)))
              (Ok []) ms
           |> Result.map (fun rendered -> `Reports (List.rev rendered)))
           [])
    | Request.Analyze { m; sims; shared; timings } -> (
      let preq = Pipeline.request ~sims ~shared spec ~m in
      let render checked =
        let stage_times =
          match checked with Ok rep -> rep.Report.timings | Error _ -> []
        in
        finish ~op:"analyze"
          (Result.map (fun rep -> `Report (Report.to_json ~timings rep)) checked)
          stage_times
      in
      match Pipeline.run_staged ?deadline preq with
      | Pool.Done checked -> Pool.Done (render checked)
      | Pool.More f ->
        Pool.More (fun () -> Obs.Log.with_corr item.it_id (fun () -> render (f ())))))

(* One batch: run every admitted item through the staged pool, then emit
   one response per line in arrival order — admitted first, overload
   rejections after. Each response goes back to the connection it came
   from; with a single session the two are the same stream. *)
let process cfg admitted rejected =
  Obs.incr c_batches;
  let n_admitted = List.length admitted and n_rejected = List.length rejected in
  let depth = n_admitted + n_rejected in
  Obs.incr ~by:depth c_requests;
  Obs.record_max c_batch_max n_admitted;
  Obs.record_max c_queue_max depth;
  Obs.set_gauge g_queue depth;
  let n_analytic =
    List.fold_left
      (fun n i -> if i.it_class = Pool.Analytic then n + 1 else n)
      0 admitted
  in
  Obs.set_gauge g_queue_analytic n_analytic;
  Obs.set_gauge g_queue_simulation (n_admitted - n_analytic);
  Obs.Trace.with_span "serve.batch" @@ fun () ->
  let batch_t0 = Unix.gettimeofday () in
  Obs.time t_batch @@ fun () ->
  let outcomes =
    Pool.map_staged_list ~jobs:cfg.jobs ~classify:(fun i -> i.it_class) (run_one cfg)
      admitted
  in
  List.iter
    (fun (item, res) ->
      let id = Some item.it_id in
      let v = item.it_v and warnings = item.it_warnings in
      let line =
        match res with
        | Ok (`Report report_json) ->
          Serve_protocol.ok_response ~warnings ~v ~id ~report_json ()
        | Ok (`Reports report_jsons) ->
          Serve_protocol.sweep_response ~warnings ~v ~id ~report_jsons ()
        | Ok (`Plan plan_json) ->
          Serve_protocol.plan_response ~warnings ~v ~id ~plan_json ()
        | Ok (`Partition partition_json) ->
          Serve_protocol.partition_response ~warnings ~v ~id ~partition_json ()
        | Error err ->
          count_error err;
          Serve_protocol.error_response ~v ~id err
      in
      Obs.incr c_responses;
      item.it_emit line)
    outcomes;
  List.iter
    (fun (id, v, emit) ->
      let err = Engine_error.Overloaded { capacity = cfg.queue_capacity } in
      count_error err;
      Obs.incr c_responses;
      Obs.Log.warn "serve.overloaded"
        [ ("id", `S id); ("capacity", `I cfg.queue_capacity) ];
      emit (Serve_protocol.error_response ~v ~id:(Some id) err))
    rejected;
  Obs.set_gauge g_queue 0;
  Obs.set_gauge g_queue_analytic 0;
  Obs.set_gauge g_queue_simulation 0;
  Obs.Log.debug "serve.batch"
    [
      ("admitted", `I n_admitted);
      ("rejected", `I n_rejected);
      ("ms", `F (1e3 *. (Unix.gettimeofday () -. batch_t0)));
    ];
  (* Shapes this batch met for the first time (Plan_deferred mode) were
     answered on the LP path; compile their plans now, on the pool,
     after every response line is already out — the batch never waits on
     plan compilation, the next one starts warm. *)
  let compiled = Pipeline.compile_pending ~jobs:cfg.jobs () in
  if compiled > 0 then Obs.incr ~by:compiled c_plan_compiles

let serve ?(stop = fun () -> false) cfg ~next ~emit =
  let session = new_session () in
  let rec loop () =
    if stop () then ()
    else
      match next ~block:true with
      | Eof -> ()
      | Wait -> loop () (* interrupted: re-check [stop] and retry *)
      | Line first ->
        (* Drain what is already waiting into this cycle's batch. Reads
           per cycle are bounded (capacity admitted per class + capacity
           rejected); anything beyond stays in the transport's buffer. *)
        let admitted_at = Unix.gettimeofday () in
        let adm = new_admission () in
        admit cfg adm (decode_line cfg session ~admitted_at ~emit first);
        let saw_eof = ref false in
        let draining = ref true in
        while !draining do
          if adm.adm_rejected >= cfg.queue_capacity then draining := false
          else
            match next ~block:false with
            | Wait -> draining := false
            | Eof ->
              saw_eof := true;
              draining := false
            | Line l -> admit cfg adm (decode_line cfg session ~admitted_at ~emit l)
        done;
        process cfg (List.rev adm.adm_admitted_rev) (List.rev adm.adm_rejected_rev);
        if !saw_eof then () else loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Transports                                                         *)
(* ------------------------------------------------------------------ *)

let reader_of_fd fd =
  let chunk = Bytes.create 65536 in
  let pending = Queue.create () in
  let partial = Buffer.create 256 in
  let eof = ref false in
  let push_chunk n =
    let start = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.get chunk i = '\n' then begin
        Buffer.add_subbytes partial chunk !start (i - !start);
        Queue.add (Buffer.contents partial) pending;
        Buffer.clear partial;
        start := i + 1
      end
    done;
    Buffer.add_subbytes partial chunk !start (n - !start)
  in
  (* `Progress: bytes consumed (or EOF reached); `Would_block; `Interrupted *)
  let try_read ~block =
    let ready =
      block
      ||
      match Unix.select [ fd ] [] [] 0.0 with
      | [], _, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if not ready then `Would_block
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 ->
        eof := true;
        `Progress
      | n ->
        push_chunk n;
        `Progress
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Interrupted
  in
  fun ~block ->
    let rec go () =
      if not (Queue.is_empty pending) then Line (Queue.pop pending)
      else if !eof then
        if Buffer.length partial > 0 then begin
          (* final line without a trailing newline *)
          let l = Buffer.contents partial in
          Buffer.clear partial;
          Line l
        end
        else Eof
      else
        match try_read ~block with
        | `Would_block | `Interrupted -> Wait
        | `Progress -> go ()
    in
    go ()

let write_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let run_pipe ?stop cfg =
  try serve ?stop cfg ~next:(reader_of_fd Unix.stdin) ~emit:(write_line Unix.stdout)
  with Unix.Unix_error (Unix.EPIPE, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* The multi-client daemon                                            *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_fd : Unix.file_descr;
  c_next : block:bool -> event;
  c_session : session;
  c_num : int;
  mutable c_eof : bool;  (** client finished sending; close after replying *)
  mutable c_dead : bool;  (** write failed; stop emitting, close *)
}

let conn_emit c line =
  if not c.c_dead then
    try write_line c.c_fd line with Unix.Unix_error _ -> c.c_dead <- true

type listener = { l_fd : Unix.file_descr; l_transport : string }

let unix_listener path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  { l_fd = fd; l_transport = "unix" }

let tcp_listener port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let actual =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  ({ l_fd = fd; l_transport = "tcp" }, actual)

let daemon_loop ?(stop = fun () -> false) cfg ~listeners () =
  let conns = ref [] in
  let conn_seq = ref 0 in
  let accept_on l =
    match Unix.accept l.l_fd with
    | fd, _ ->
      incr conn_seq;
      Obs.incr c_connections;
      Obs.add_gauge g_open 1;
      Obs.Log.info "serve.connection"
        [ ("conn", `I !conn_seq); ("transport", `S l.l_transport) ];
      conns :=
        !conns
        @ [
            {
              c_fd = fd;
              c_next = reader_of_fd fd;
              c_session = new_session ();
              c_num = !conn_seq;
              c_eof = false;
              c_dead = false;
            };
          ]
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      -> ()
  in
  let close_conn c =
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    Obs.add_gauge g_open (-1);
    Obs.Log.info "serve.disconnect" [ ("conn", `I c.c_num) ]
  in
  let cleanup () =
    let dead, live = List.partition (fun c -> c.c_eof || c.c_dead) !conns in
    List.iter close_conn dead;
    conns := live
  in
  (* Fair batching across connections: pull at most one line per live
     connection per round, rounds starting at a rotating offset, until
     nothing more is immediately readable (or the admission caps are
     hit). A chatty connection cannot starve a quiet one — its surplus
     lines wait in its own reader buffer for the next cycle. *)
  let rotation = ref 0 in
  let drain_multi () =
    let admitted_at = Unix.gettimeofday () in
    let adm = new_admission () in
    let active = Array.of_list !conns in
    let n = Array.length active in
    if n > 0 then begin
      let start = !rotation mod n in
      incr rotation;
      let progress = ref true in
      while !progress && adm.adm_rejected < cfg.queue_capacity do
        progress := false;
        for k = 0 to n - 1 do
          let c = active.((start + k) mod n) in
          if (not c.c_eof) && (not c.c_dead) && adm.adm_rejected < cfg.queue_capacity
          then
            match c.c_next ~block:false with
            | Wait -> ()
            | Eof -> c.c_eof <- true
            | Line l ->
              progress := true;
              admit cfg adm
                (decode_line cfg c.c_session ~admitted_at ~emit:(conn_emit c) l)
            | exception Unix.Unix_error _ -> c.c_eof <- true
        done
      done
    end;
    (List.rev adm.adm_admitted_rev, List.rev adm.adm_rejected_rev)
  in
  let rec loop () =
    if stop () then ()
    else
      (* Buffered lines first: bytes already pulled into a reader can no
         longer trip select. *)
      match drain_multi () with
      | [], [] ->
        cleanup ();
        let fds =
          List.map (fun l -> l.l_fd) listeners
          @ List.map (fun c -> c.c_fd) !conns
        in
        (match Unix.select fds [] [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
          List.iter (fun l -> if List.memq l.l_fd ready then accept_on l) listeners);
        loop ()
      | admitted, rejected ->
        process cfg admitted rejected;
        cleanup ();
        loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter close_conn !conns;
      conns := [])
    loop

let run_daemon ?stop cfg ?socket_path ?tcp_port () =
  let listeners = ref [] and finalizers = ref [] in
  let add l fin =
    listeners := !listeners @ [ l ];
    finalizers := fin :: !finalizers
  in
  (match socket_path with
  | None -> ()
  | Some path ->
    let l = unix_listener path in
    Obs.Log.info "serve.listen" [ ("transport", `S "unix"); ("path", `S path) ];
    add l (fun () ->
        (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ -> ()));
  (match tcp_port with
  | None -> ()
  | Some port ->
    let l, actual = tcp_listener port in
    (* The bound port is announced on stderr (port 0 means "pick one"),
       so scripts can scrape it without racing the daemon. *)
    Printf.eprintf "serve: listening on 127.0.0.1:%d\n%!" actual;
    Obs.Log.info "serve.listen" [ ("transport", `S "tcp"); ("port", `I actual) ];
    add l (fun () -> try Unix.close l.l_fd with Unix.Unix_error _ -> ()));
  if !listeners = [] then
    invalid_arg "Serve.run_daemon: need a socket_path or a tcp_port";
  Fun.protect
    ~finally:(fun () -> List.iter (fun f -> f ()) !finalizers)
    (fun () -> daemon_loop ?stop cfg ~listeners:!listeners ())

let run_socket ?stop cfg ~path = run_daemon ?stop cfg ~socket_path:path ()
