type event = Line of string | Wait | Eof

type config = {
  jobs : int;
  queue_capacity : int;
  default_deadline_s : float option;
  slow_s : float option;
}

let default_config () =
  {
    jobs = Pool.default_jobs ();
    queue_capacity = 512;
    default_deadline_s = None;
    slow_s = None;
  }

let c_requests = Obs.counter "serve.requests"
let c_responses = Obs.counter "serve.responses"
let c_batches = Obs.counter "serve.batches"
let c_errors = Obs.counter "serve.errors"
let c_parse = Obs.counter "serve.parse_errors"
let c_deadline = Obs.counter "serve.deadline_exceeded"
let c_overloaded = Obs.counter "serve.rejected_overloaded"
let c_connections = Obs.counter "serve.connections"
let c_batch_max = Obs.counter "serve.batch_size_max"
let c_queue_max = Obs.counter "serve.queue_depth_max"
let c_plan_compiles = Obs.counter "serve.plan_compiles"
let t_batch = Obs.timer "serve.batch"
let t_request = Obs.timer "serve.request"

(* Live levels for the dashboard: how deep the current batch cycle is
   (admitted + rejected lines being worked), and how many requests are
   executing on pool domains right now. *)
let g_queue = Obs.gauge "serve.queue_depth"
let g_inflight = Obs.gauge "serve.inflight"

(* Correlation ids minted for requests that arrive without one: "srv-N",
   N process-wide in admission order (lines are decoded sequentially, so
   the numbering is deterministic however batches split). The minted id
   is echoed in the response and stamps every log line the request
   produces, so a client that sent no id can still join its response to
   the daemon's log. *)
let next_mint = Atomic.make 1
let mint () = Printf.sprintf "srv-%d" (Atomic.fetch_and_add next_mint 1)
let ensure_id = function Some id -> id | None -> mint ()

let count_error err =
  Obs.incr c_errors;
  match (err : Engine_error.t) with
  | Parse_error _ -> Obs.incr c_parse
  | Deadline_exceeded _ -> Obs.incr c_deadline
  | Overloaded _ -> Obs.incr c_overloaded
  | _ -> ()

(* One batch: decode every admitted line, run them all through the pool
   (decode errors ride along so indices stay aligned), then emit one
   response per line in arrival order — admitted first, overload
   rejections after (they arrived later by construction). *)
let process cfg ~emit admitted rejected =
  Obs.incr c_batches;
  let depth = List.length admitted + List.length rejected in
  Obs.incr ~by:depth c_requests;
  Obs.record_max c_batch_max (List.length admitted);
  Obs.record_max c_queue_max depth;
  Obs.set_gauge g_queue depth;
  Obs.Trace.with_span "serve.batch" @@ fun () ->
  let batch_t0 = Unix.gettimeofday () in
  Obs.time t_batch @@ fun () ->
  let admitted_at = batch_t0 in
  (* Decode sequentially in arrival order; this is also where requests
     without an "id" get their minted correlation id, so the numbering
     is deterministic however the stream splits into batches. *)
  let decoded =
    List.map
      (fun line ->
        match Serve_protocol.decode line with
        | Error { Serve_protocol.err_id; err } -> (ensure_id err_id, Error err)
        | Ok req ->
          let budget =
            match req.Serve_protocol.deadline_s with
            | Some _ as b -> b
            | None -> cfg.default_deadline_s
          in
          (ensure_id req.Serve_protocol.id, Ok (req, Option.map (fun b -> admitted_at +. b) budget)))
      admitted
  in
  let run_one (id, item) =
    Obs.add_gauge g_inflight 1;
    Fun.protect ~finally:(fun () -> Obs.add_gauge g_inflight (-1)) @@ fun () ->
    Obs.Log.with_corr id @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let res, op_name, timings =
      Obs.time t_request @@ fun () ->
      match item with
      | Error err -> (Error err, "invalid", [])
      | Ok (req, deadline) -> (
        match req.Serve_protocol.op with
        | Serve_protocol.Compile ->
          ( Result.map
              (fun plan -> `Plan (Tiling_plan.to_json plan))
              (Pipeline.plan_of req.Serve_protocol.spec),
            "compile",
            [] )
        | Serve_protocol.Analyze ->
          let presq =
            Pipeline.request ~sims:req.Serve_protocol.sims
              ~shared:req.Serve_protocol.shared req.Serve_protocol.spec
              ~m:req.Serve_protocol.m
          in
          let checked = Pipeline.run_checked ?deadline presq in
          let timings =
            match checked with Ok rep -> rep.Report.timings | Error _ -> []
          in
          ( Result.map
              (fun rep -> `Report (Report.to_json ~timings:req.Serve_protocol.timings rep))
              checked,
            "analyze",
            timings ))
    in
    let dt = Unix.gettimeofday () -. t0 in
    let status = match res with Ok _ -> "ok" | Error e -> Engine_error.code e in
    Obs.Log.info "serve.request"
      [ ("id", `S id); ("op", `S op_name); ("status", `S status); ("ms", `F (1e3 *. dt)) ];
    (* The slow-request log carries the request's own per-stage wall
       times (the same deltas a "timings":true client would receive), so
       triage can tell an LP-bound request from a simulation-bound one
       without re-running it. *)
    (match cfg.slow_s with
    | Some s when dt >= s ->
      Obs.Log.warn "serve.slow_request"
        (("id", `S id) :: ("op", `S op_name) :: ("ms", `F (1e3 *. dt))
        :: List.map (fun (stage, d) -> (stage ^ "_ms", `F (1e3 *. d))) timings)
    | _ -> ());
    (id, res)
  in
  let outcomes = Pool.map_list ~jobs:cfg.jobs run_one decoded in
  List.iter
    (fun (id, res) ->
      let id = Some id in
      let line =
        match res with
        | Ok (`Report report_json) -> Serve_protocol.ok_response ~id ~report_json
        | Ok (`Plan plan_json) -> Serve_protocol.plan_response ~id ~plan_json
        | Error err ->
          count_error err;
          Serve_protocol.error_response ~id err
      in
      Obs.incr c_responses;
      emit line)
    outcomes;
  List.iter
    (fun line ->
      let err = Engine_error.Overloaded { capacity = cfg.queue_capacity } in
      count_error err;
      Obs.incr c_responses;
      let id = ensure_id (Serve_protocol.peek_id line) in
      Obs.Log.warn "serve.overloaded"
        [ ("id", `S id); ("capacity", `I cfg.queue_capacity) ];
      emit (Serve_protocol.error_response ~id:(Some id) err))
    rejected;
  Obs.set_gauge g_queue 0;
  Obs.Log.debug "serve.batch"
    [
      ("admitted", `I (List.length admitted));
      ("rejected", `I (List.length rejected));
      ("ms", `F (1e3 *. (Unix.gettimeofday () -. batch_t0)));
    ];
  (* Shapes this batch met for the first time (Plan_deferred mode) were
     answered on the LP path; compile their plans now, on the pool,
     after every response line is already out — the batch never waits on
     plan compilation, the next one starts warm. *)
  let compiled = Pipeline.compile_pending ~jobs:cfg.jobs () in
  if compiled > 0 then Obs.incr ~by:compiled c_plan_compiles

let serve ?(stop = fun () -> false) cfg ~next ~emit =
  let rec loop () =
    if stop () then ()
    else
      match next ~block:true with
      | Eof -> ()
      | Wait -> loop ()  (* interrupted: re-check [stop] and retry *)
      | Line first ->
        (* Drain what is already waiting into this cycle's batch. Reads
           per cycle are bounded (capacity admitted + capacity rejected);
           anything beyond stays in the transport's buffer. *)
        let admitted = ref [ first ] and rejected = ref [] in
        let n_admitted = ref 1 and n_rejected = ref 0 in
        let saw_eof = ref false in
        let draining = ref true in
        while !draining do
          if !n_rejected >= cfg.queue_capacity then draining := false
          else
            match next ~block:false with
            | Wait -> draining := false
            | Eof ->
              saw_eof := true;
              draining := false
            | Line l ->
              if !n_admitted < cfg.queue_capacity then begin
                admitted := l :: !admitted;
                incr n_admitted
              end
              else begin
                rejected := l :: !rejected;
                incr n_rejected
              end
        done;
        process cfg ~emit (List.rev !admitted) (List.rev !rejected);
        if !saw_eof then () else loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Transports                                                         *)
(* ------------------------------------------------------------------ *)

let reader_of_fd fd =
  let chunk = Bytes.create 65536 in
  let pending = Queue.create () in
  let partial = Buffer.create 256 in
  let eof = ref false in
  let push_chunk n =
    let start = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.get chunk i = '\n' then begin
        Buffer.add_subbytes partial chunk !start (i - !start);
        Queue.add (Buffer.contents partial) pending;
        Buffer.clear partial;
        start := i + 1
      end
    done;
    Buffer.add_subbytes partial chunk !start (n - !start)
  in
  (* `Progress: bytes consumed (or EOF reached); `Would_block; `Interrupted *)
  let try_read ~block =
    let ready =
      block
      ||
      match Unix.select [ fd ] [] [] 0.0 with
      | [], _, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if not ready then `Would_block
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 ->
        eof := true;
        `Progress
      | n ->
        push_chunk n;
        `Progress
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Interrupted
  in
  fun ~block ->
    let rec go () =
      if not (Queue.is_empty pending) then Line (Queue.pop pending)
      else if !eof then
        if Buffer.length partial > 0 then begin
          (* final line without a trailing newline *)
          let l = Buffer.contents partial in
          Buffer.clear partial;
          Line l
        end
        else Eof
      else
        match try_read ~block with
        | `Would_block | `Interrupted -> Wait
        | `Progress -> go ()
    in
    go ()

let write_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let run_pipe ?stop cfg =
  try
    serve ?stop cfg ~next:(reader_of_fd Unix.stdin) ~emit:(write_line Unix.stdout)
  with Unix.Unix_error (Unix.EPIPE, _, _) -> ()

let run_socket ?(stop = fun () -> false) cfg ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 16;
  let rec accept_loop () =
    if stop () then ()
    else
      match Unix.accept srv with
      | conn, _ ->
        Obs.incr c_connections;
        (try serve ~stop cfg ~next:(reader_of_fd conn) ~emit:(write_line conn)
         with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
        (try Unix.close conn with Unix.Unix_error _ -> ());
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    accept_loop
