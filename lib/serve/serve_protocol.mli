(** Wire protocol of the [tilings serve] daemon.

    Newline-delimited JSON, one request per line, one response line per
    request, in arrival order. Schema version 1 (the ["v"] field,
    {!Report.schema_version}); a request may omit ["v"] and is then
    treated as v1, but a present-and-different version is refused.

    Request object:
    {v
      {"v": 1,                  // optional, must be 1 when present
       "id": "r42",             // optional, echoed back verbatim;
                                // absent -> daemon mints "srv-N"
       "kernel": "matmul",      // preset | alias | unique prefix | DSL
       "m": 4096,               // required: fast-memory words
       "schedules": ["optimal", "classic", "untiled"],  // default []
       "policies": ["lru", "fifo", "opt"],              // default ["lru"]
       "shared": true,          // default true: also compute shared tile
       "deadline_ms": 250,      // optional per-request budget
       "timings": false}        // default false: stage wall-times in report
    v}
    Unknown fields are ignored (forward compatibility). The simulations
    run are the cross product [schedules x policies], exactly like
    [tilings sweep].

    An optional ["op"] field selects the request kind: ["analyze"] (the
    default, everything above) or ["compile"], which needs only
    ["kernel"] and returns the kernel shape's compiled tiling plan
    ({!Tiling_plan.to_json}) instead of a report — the same object
    [tilings compile] prints, so a client can harvest plans from one
    replica and preload another via [--plans].

    Response lines (see {!ok_response} / {!plan_response} /
    {!error_response}):
    {v
      {"v":1,"id":"r42","ok":true,"report":{...Report.to_json...}}
      {"v":1,"id":"c1","ok":true,"plan":{...Tiling_plan.to_json...}}
      {"v":1,"id":"r42","ok":false,
       "error":{"code":"deadline_exceeded","message":"..."}}
    v}
    The embedded ["report"] object is byte-identical to what the
    one-shot [tilings sweep] emits for the same request. Error ["code"]s
    are {!Engine_error.code} values; [parse_error]s carry ["line"] and
    ["col"] fields too; an oversized ["compile"] fails with
    [shape_too_large]. *)

type op = Analyze | Compile

type request = {
  id : string option;
  op : op;
  spec : Spec.t;
  m : int;  (** 0 when [op = Compile] and no ["m"] was sent *)
  sims : Pipeline.sim_request list;
  shared : bool;
  deadline_s : float option;  (** relative budget in seconds, [>= 0] *)
  timings : bool;
}

type decode_error = {
  err_id : string option;
      (** the request's ["id"] when the line parsed far enough to have
          one — so even a rejected request gets a correlatable answer *)
  err : Engine_error.t;
}

val decode : string -> (request, decode_error) result
(** Decode one request line. Malformed JSON -> [Parse_error]; a non-object
    or missing/ill-typed field -> [Invalid_request]; an unknown preset ->
    [Invalid_spec]; a DSL kernel that fails to parse -> [Parse_error]
    with the DSL's line/column. *)

val peek_id : string -> string option
(** Best-effort ["id"] extraction from a raw line (used for [overloaded]
    rejections, which are answered without full decoding). *)

val ok_response : id:string option -> report_json:string -> string
(** [report_json] must be a pre-rendered JSON object
    ({!Report.to_json}). *)

val plan_response : id:string option -> plan_json:string -> string
(** Success envelope for [op = "compile"]; [plan_json] is
    {!Tiling_plan.to_json} output. *)

val error_response : id:string option -> Engine_error.t -> string
