(** Wire rendering + shared decode helpers of the [tilings serve]
    protocol. The typed request union and its versioned decoder live in
    {!Request}; this module owns the response envelopes (and the small
    JSON field readers the decoder is built from).

    Newline-delimited JSON, one request per line, one response line per
    request, in arrival order. Two schema versions are spoken: a request
    may carry ["v":1] (or omit ["v"], which means v1) or ["v":2]; the
    response envelope echoes the request's version. See {!Request} for
    the request schema and the v1 compatibility rules.

    Response lines:
    {v
      {"v":1,"id":"r42","ok":true,"report":{...Report.to_json...}}
      {"v":2,"id":"s1","ok":true,"reports":[{...},{...}]}
      {"v":1,"id":"c1","ok":true,"plan":{...Tiling_plan.to_json...}}
      {"v":2,"id":"p1","ok":true,"partition":{...Partition_solve.to_json...}}
      {"v":1,"id":"r42","ok":false,
       "error":{"code":"deadline_exceeded","message":"..."}}
    v}
    A non-empty [warnings] list renders between ["ok"] and the payload:
    {v
      {"v":1,"id":"r1","ok":true,
       "warnings":[{"code":"deprecated_field","field":"op","message":"..."}],
       "report":{...}}
    v}
    The embedded ["report"] object is byte-identical to what the
    one-shot [tilings sweep] emits for the same request, and the
    ["partition"] object to what [tilings partition] prints. Error
    ["code"]s are {!Engine_error.code} values; [parse_error]s carry
    ["line"] and ["col"] fields too. *)

type warning = { w_code : string; w_field : string; w_message : string }
(** A structured, non-fatal decode diagnostic echoed in the response. *)

val deprecated_field : field:string -> message:string -> warning
(** The ["deprecated_field"] warning a v1 request earns by omitting an
    envelope field the v2 schema made explicit. *)

val ok_response :
  ?warnings:warning list -> v:int -> id:string option -> report_json:string -> unit -> string
(** [report_json] must be a pre-rendered JSON object
    ({!Report.to_json}). *)

val sweep_response :
  ?warnings:warning list ->
  v:int -> id:string option -> report_jsons:string list -> unit -> string
(** Success envelope for [op = "sweep"]: the reports, in request order,
    as one JSON array. *)

val plan_response :
  ?warnings:warning list -> v:int -> id:string option -> plan_json:string -> unit -> string
(** Success envelope for [op = "compile"]; [plan_json] is
    {!Tiling_plan.to_json} output. *)

val partition_response :
  ?warnings:warning list ->
  v:int -> id:string option -> partition_json:string -> unit -> string
(** Success envelope for [op = "partition"]; [partition_json] is
    {!Partition_solve.to_json} output, embedded verbatim — the CLI
    byte-identity guarantee. *)

val error_response : v:int -> id:string option -> Engine_error.t -> string

val peek_id : string -> string option
(** Best-effort ["id"] extraction from a raw line (used for [overloaded]
    rejections, which are answered without full decoding). *)

(** {1 Decode helpers}

    Building blocks for {!Request.decode}; exposed because the decoder
    lives in its own module and the tests exercise them directly. *)

val json_escape : string -> string
val jstr : string -> string
val jid : string option -> string

val schedule_of_string : string -> Pipeline.schedule_choice option
val policy_of_string : string -> Policy.t option

exception Reject of Engine_error.t
(** Internal control flow of the decoder; never escapes
    {!Request.decode}. *)

val reject : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Reject} with [Invalid_request] of the formatted message. *)

val string_list : Jsonlite.t -> string -> default:string list -> string list
val bool_field : Jsonlite.t -> string -> default:bool -> bool
val int_field : Jsonlite.t -> string -> int option
