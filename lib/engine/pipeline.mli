(** The unified analysis pipeline.

    Every consumer of this repository runs the same sequence: take a
    projective loop nest, solve the bounded tiling LP (5.1), derive the
    lower bound [M^k_hat] and the rectangular tile, then optionally
    validate by cache simulation. This module is that sequence as one
    typed function: a {!request} in, a {!Report.t} out, with the
    expensive exact-LP stages memoized ({!Memo}) and independent sweep
    points parallelized over domains ({!Pool}). *)

type schedule_choice =
  | Optimal  (** shared-cache communication-optimal tile, {!Tiling.optimal_shared} *)
  | Classic  (** clamped large-bounds cube, {!Schedules.classic_tile} *)
  | Untiled
  | Permuted of int array
  | Fixed of int array  (** a caller-supplied tile *)

type sim_request = {
  schedule : schedule_choice;
  policy : Policy.t;
  line_words : int;
}

val sim : ?policy:Policy.t -> ?line_words:int -> schedule_choice -> sim_request
(** Defaults: [Lru], 1-word lines. *)

type request = {
  rspec : Spec.t;
  rm : int;  (** fast-memory size in words *)
  rsims : sim_request list;  (** simulations to run; may be empty *)
  rshared : bool;  (** also compute the shared-cache tile *)
}

val request : ?sims:sim_request list -> ?shared:bool -> Spec.t -> m:int -> request
(** Defaults: no simulations, [shared = false]. The shared tile is
    computed anyway when some simulation asks for [Optimal]. *)

val run : request -> Report.t
(** Execute one request. Analysis (LP, bound, tile) is served from the
    memo cache when an equivalent [(spec, beta, m)] has been analyzed
    before; simulations always execute.
    @raise Invalid_argument on [m < 2] (via {!Lower_bound.beta_of_bounds})
    or a cache smaller than one word per array when a tile is needed. *)

val sweep : ?jobs:int -> request list -> Report.t list
(** Run independent requests in parallel with {!Pool.map_list}. Result
    order matches input order and every report is byte-identical (under
    {!Report.pp}) to what the sequential path produces. *)

(** {1 Memoized stages, usable a la carte} *)

val solve_lp : Spec.t -> beta:Rat.t array -> Tiling.lp_solution
val lower_bound : Spec.t -> m:int -> Lower_bound.bound
val tile : Spec.t -> m:int -> int array
(** Integer tile under the paper's per-array-M model (memoized). *)

val tile_shared : Spec.t -> m:int -> int array
(** Shared-cache tile (memoized — the search is the most expensive
    non-LP stage). *)

val schedule_of : Spec.t -> m:int -> schedule_choice -> Schedules.t
val simulate : Spec.t -> m:int -> sim_request -> Report.sim

(** {1 Multi-level hierarchies} *)

type hierarchy_report = {
  hspec : Spec.t;
  hcapacities : int array;
  htiles : int array list;  (** innermost first, from {!Tiling.nested} *)
  hresult : Executor.hierarchy_result;
}

val hierarchy : ?policy:Policy.t -> Spec.t -> capacities:int array -> hierarchy_report
(** Nested tiling sized for each level, executed against the simulated
    hierarchy. Capacities fastest-first, strictly increasing. *)

(** {1 Cache introspection} *)

val cache_stats : unit -> int * int
(** Total (hits, misses) across the engine's memo tables. *)

val reset_caches : unit -> unit
